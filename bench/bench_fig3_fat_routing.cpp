// Fig 3: a small placed-and-routed design, before (fat wires) and after
// interconnect decomposition (differential pairs).
#include "bench_util.h"
#include "lef/lef.h"
#include "pnr/check.h"
#include "pnr/decompose.h"
#include "pnr/place.h"
#include "pnr/render.h"
#include "pnr/route.h"
#include "synth/hdl.h"
#include "synth/techmap.h"
#include "wddl/cell_substitution.h"
#include "wddl/wddl_library.h"

using namespace secflow;

int main() {
  auto lib = builtin_stdcell018();
  // A ~6-gate design like the figure's example.
  const Netlist rtl = technology_map(parse_hdl(R"(
    module fig3 (input a, input b, input c, input d, output y, output z);
      wire t1, t2;
      assign t1 = a ^ b;
      assign t2 = c & d;
      assign y = t1 | t2;
      assign z = ~(t1 & c);
    endmodule)"),
                                     lib);
  WddlLibrary wlib(lib);
  SubstitutionResult sub = substitute_cells(rtl, wlib);

  LefGenOptions fat_gen;
  fat_gen.wire_scale = 2.0;
  const LefLibrary fat_lef = generate_lef(*wlib.fat_library(), fat_gen);
  DefDesign fat_def = place_design(sub.fat, fat_lef);
  const RouteStats rs = route_design(sub.fat, fat_lef, fat_def);

  const Process018 pr;
  const DefDesign diff_def = decompose_interconnect(
      fat_def, um_to_dbu(pr.wire_pitch_um), um_to_dbu(pr.wire_width_um));

  bench::header("Fig 3", "fat design (left/top) vs differential design");
  bench::row("%zu compound gates placed; fat route: %d nets, %.1f um wire, "
             "%d vias, %d iterations",
             fat_def.components.size(), rs.nets_routed,
             dbu_to_um(rs.wirelength_dbu), rs.vias, rs.iterations);

  bench::row("\n--- fat design (wire width %ld dbu, pitch %ld dbu) ---",
             static_cast<long>(fat_lef.wire_width_dbu()),
             static_cast<long>(fat_lef.track_pitch_dbu()));
  std::fputs(render_design(fat_def).c_str(), stdout);

  bench::row("--- differential design: every fat wire duplicated and");
  bench::row("    translated by one track pitch; width reduced ---");
  std::fputs(render_design(diff_def).c_str(), stdout);

  bench::row("fat nets: %zu -> differential nets: %zu",
             fat_def.nets.size(), diff_def.nets.size());
  const CheckResult sym = check_differential_symmetry(
      diff_def, um_to_dbu(pr.wire_pitch_um));
  bench::row("rail symmetry check: %s (%d pairs: equal lengths, (+p,+p) twins)",
             sym.ok ? "pass" : "FAIL", sym.nets_checked);
  return 0;
}
