// Fig 7 / section 4.2: EMA feasibility.  The probe must distinguish which
// of two rails 1 um apart carried the charge, from 1-10 mm away.  The
// table reports the differential pair's field suppression relative to a
// single wire and the extra measurement precision an EMA needs.
#include "bench_util.h"
#include "sca/ema.h"

using namespace secflow;

int main() {
  bench::header("Fig 7", "EMA measurement geometry (1 um pair, mm probe)");
  bench::row("%-12s %-12s %16s %16s %12s", "length[um]", "probe[mm]",
             "single field", "pair field", "extra bits");
  for (double length : {10.0, 100.0}) {
    for (double dist : {1.0, 3.0, 10.0}) {
      EmaGeometry g;
      g.wire_length_um = length;
      g.probe_distance_mm = dist;
      const EmaFigures f = ema_far_field(g);
      bench::row("%-12.0f %-12.0f %16.3e %16.3e %12.1f", length, dist,
                 f.single_wire_field, f.differential_pair_field,
                 ema_extra_precision_bits(g));
    }
  }
  bench::blank();
  bench::row("reading: even at 1 mm the pair field is ~500x below a single");
  bench::row("wire (9+ bits of extra precision), and many cells broadcast");
  bench::row("simultaneously — matching the paper's argument that no");
  bench::row("published EMA setup resolves individual WDDL rails.");
  return 0;
}
