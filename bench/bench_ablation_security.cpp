// Ablation of the design choices the paper calls out (end of section 3):
// "Shielded lines or a larger pitch, balanced intrinsic capacitances or
// custom designed cells, etc. will improve the security."  We measure the
// secure design's residual DPA signal under:
//   * baseline differential routing,
//   * growing process variation sigma (cap mismatch),
//   * reduced coupling (larger pitch / shielding: coupling halved),
//   * *unmatched* routing: the differential netlist routed as ordinary
//     independent nets (no fat-wire pairing) — the countermeasure without
//     its place & route component.
#include "bench_util.h"
#include "extract/extract.h"
#include "pnr/place.h"
#include "pnr/route.h"
#include "sca/dpa_experiment.h"

using namespace secflow;

namespace {

struct Outcome {
  double correct_pp;
  double band_max;
  bool disclosed;
};

Outcome attack(const Netlist& diff, const CapTable& caps, int n) {
  DesDpaSetup setup;
  setup.n_measurements = n;
  const DpaAnalysis dpa = run_des_dpa_secure(diff, caps, setup);
  const DpaResult r = dpa.analyze(setup.key);
  double band = 0.0;
  for (int g = 0; g < 64; ++g) {
    if (g != static_cast<int>(setup.key)) {
      band = std::max(band, r.peak_to_peak[static_cast<std::size_t>(g)]);
    }
  }
  return Outcome{r.peak_to_peak[setup.key], band, r.disclosed};
}

}  // namespace

int main() {
  bench::DesDesigns d = bench::build_des_designs();
  const int kTraces = 800;

  bench::header("Ablation", "residual DPA signal vs physical-design options");
  bench::row("%-36s %12s %12s %10s", "configuration", "key pp", "band max",
             "disclosed");

  // Baseline: the secure flow as-is.
  {
    const Outcome o = attack(d.secure.diff, d.secure.caps, kTraces);
    bench::row("%-36s %12.4f %12.4f %10s", "differential routing (baseline)",
               o.correct_pp, o.band_max, o.disclosed ? "YES" : "no");
  }

  // Process variation sweep: caps re-extracted with mismatch sigma.
  for (double sigma : {0.02, 0.05, 0.10}) {
    ExtractOptions eo;
    eo.variation_sigma = sigma;
    const Extraction ex =
        extract_parasitics(d.secure.def, d.secure.diff, eo);
    const CapTable caps = build_cap_table(d.secure.diff, ex);
    const Outcome o = attack(d.secure.diff, caps, kTraces);
    bench::row("process variation sigma %.0f%% %21.4f %12.4f %10s",
               100 * sigma, o.correct_pp, o.band_max,
               o.disclosed ? "YES" : "no");
  }

  // Balanced intrinsic capacitances ("custom designed cells"): pad the
  // lighter rail of every pair to match the heavier.
  {
    CapTable caps = d.secure.caps;
    balance_rail_caps(caps, 1.0);
    const Outcome o = attack(d.secure.diff, caps, kTraces);
    bench::row("%-36s %12.4f %12.4f %10s", "balanced intrinsic caps",
               o.correct_pp, o.band_max, o.disclosed ? "YES" : "no");
  }

  // Shielding / larger pitch (real geometry: triple-pitch fat wires with
  // a grounded shield beside every pair; costs area).
  {
    FlowOptions fo;
    fo.shielded_pairs = true;
    const SecureFlowResult sh = run_secure_flow(
        make_des_dpa_circuit(), d.lib, fo);
    const Outcome o = attack(sh.diff, sh.caps, kTraces);
    bench::row("%-36s %12.4f %12.4f %10s", "shielded pairs (3-track pitch)",
               o.correct_pp, o.band_max, o.disclosed ? "YES" : "no");
    bench::row("  (die area %.0f um^2 vs %.0f um^2 unshielded)",
               sh.die_area_um2(), d.secure.die_area_um2());
  }

  // WDDL logic *without* differential routing: route the differential
  // netlist as independent single-ended nets; rails get unmatched wires.
  {
    const LefLibrary lef = generate_lef(*d.lib, {});
    DefDesign def = place_design(d.secure.diff, lef);
    route_design_quick(d.secure.diff, lef, def);
    const Extraction ex = extract_parasitics(def, d.secure.diff, {});
    const CapTable caps = build_cap_table(d.secure.diff, ex);
    const Outcome o = attack(d.secure.diff, caps, kTraces);
    bench::row("%-36s %12.4f %12.4f %10s",
               "WDDL w/o differential routing", o.correct_pp, o.band_max,
               o.disclosed ? "YES" : "no");
    const auto mm = rail_mismatch_ff(ex);
    double worst = 0;
    for (const auto& [net, m] : mm) worst = std::max(worst, m);
    bench::row("  (worst rail mismatch %.1f fF vs matched routing)", worst);
  }

  bench::blank();
  bench::row("reading: matched routing + shielding shrink the correct-key");
  bench::row("signal into the wrong-guess band; unmatched routing or large");
  bench::row("process variation re-opens the leak — the paper's point that");
  bench::row("'the problem has been reduced to a problem of parasitics'.");
  return 0;
}
