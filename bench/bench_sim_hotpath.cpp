// Power-sim hot path: compile-once / simulate-many vs per-trace model
// construction.
//
// The bulk workloads (Fig 6 DPA, the energy table, fuzz oracles) simulate
// thousands of traces of one netlist.  This bench quantifies the split
// introduced by CompiledSimModel: model build cost vs per-trace reset()
// cost, and traces/sec with per-trace construction ("cold", the engine's
// former behaviour) vs one shared model + reset ("reused").  Everything
// runs single-threaded so the numbers are comparable on any machine.
//
// `--json <path>` writes the metrics as BENCH_sim.json for CI trending.
#include <chrono>
#include <string>
#include <vector>

#include "base/rng.h"
#include "bench_util.h"
#include "sim/trace_sim.h"

using namespace secflow;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::vector<PortId> resolve(const Netlist& nl, const std::string& base,
                            int width, const char* suffix) {
  std::vector<PortId> ids;
  for (int i = 0; i < width; ++i) {
    const PortId p = nl.find_port(base + "_" + std::to_string(i) + suffix);
    if (p.valid()) ids.push_back(p);
  }
  return ids;
}

/// The DES testbench interface of one netlist, resolved to ids once.
struct DesPorts {
  std::vector<PortId> k, pl, pr;
  bool differential = false;
  std::vector<PortId> k_f, pl_f, pr_f;

  explicit DesPorts(const Netlist& nl) {
    k = resolve(nl, "k", 6, "");
    differential = k.empty();
    const char* t = differential ? "_t" : "";
    k = resolve(nl, "k", 6, t);
    pl = resolve(nl, "pl", 4, t);
    pr = resolve(nl, "pr", 6, t);
    if (differential) {
      k_f = resolve(nl, "k", 6, "_f");
      pl_f = resolve(nl, "pl", 4, "_f");
      pr_f = resolve(nl, "pr", 6, "_f");
    }
  }

  void drive(PowerSimulator& sim, std::uint32_t kv, std::uint32_t plv,
             std::uint32_t prv) const {
    auto set = [&](const std::vector<PortId>& t, const std::vector<PortId>& f,
                   std::uint32_t v) {
      for (std::size_t i = 0; i < t.size(); ++i) {
        const bool b = (v >> i) & 1;
        sim.set_input(t[i], b);
        if (differential) sim.set_input(f[i], !b);
      }
    };
    set(k, k_f, kv);
    set(pl, pl_f, plv);
    set(pr, pr_f, prv);
  }
};

/// One trace = the 4-cycle DPA mini-campaign of sca/dpa_experiment.
double dpa4_trace(PowerSimulator& sim, const DesPorts& ports, Rng& rng) {
  ports.drive(sim, 46, static_cast<std::uint32_t>(rng.next_below(16)),
              static_cast<std::uint32_t>(rng.next_below(64)));
  sim.settle();
  sim.run_cycle();
  ports.drive(sim, 46, static_cast<std::uint32_t>(rng.next_below(16)),
              static_cast<std::uint32_t>(rng.next_below(64)));
  sim.run_cycle();
  const CycleTrace t = sim.run_cycle();
  sim.run_cycle();
  return t.energy_pj;
}

/// One trace = a single recorded cycle (the finest trace granularity:
/// per-cycle energy signatures, glitch-period probes).
double cycle_trace(PowerSimulator& sim, const DesPorts& ports, Rng& rng) {
  ports.drive(sim, 46, static_cast<std::uint32_t>(rng.next_below(16)),
              static_cast<std::uint32_t>(rng.next_below(64)));
  return sim.run_cycle().energy_pj;
}

using TraceFn = double (*)(PowerSimulator&, const DesPorts&, Rng&);

struct WorkloadResult {
  double cold_tps = 0.0;    ///< traces/sec, pre-split engine per trace
  double reused_tps = 0.0;  ///< traces/sec, shared model + reset
  double checksum = 0.0;
  double speedup() const {
    return cold_tps > 0.0 ? reused_tps / cold_tps : 0.0;
  }
};

WorkloadResult run_workload(const Netlist& nl, const CapTable& caps,
                            const PowerSimOptions& opts,
                            const CompiledSimModel& model,
                            const DesPorts& ports, TraceFn trace, int n_cold,
                            int n_reused) {
  WorkloadResult r;
  {  // cold: per-trace construction, as the engine behaved before the
     // compile-once split — the old constructor took the CapTable by
     // value (a full string-keyed map copy per trace) and rebuilt every
     // derived table (cap resolution, clock, delays) from scratch.
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < n_cold; ++i) {
      const CapTable by_value_copy(caps);
      PowerSimulator sim(nl, by_value_copy, opts);
      Rng rng = Rng::stream(7, static_cast<std::uint64_t>(i));
      r.checksum += trace(sim, ports, rng);
    }
    r.cold_tps = n_cold / seconds_since(t0);
  }
  {  // reused: one simulator on the shared model, reset between traces
    PowerSimulator sim(model);
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < n_reused; ++i) {
      if (i != 0) sim.reset();
      Rng rng = Rng::stream(7, static_cast<std::uint64_t>(i));
      r.checksum += trace(sim, ports, rng);
    }
    r.reused_tps = n_reused / seconds_since(t0);
  }
  return r;
}

struct HotpathResult {
  double build_us = 0.0;  ///< one CompiledSimModel build
  double reset_us = 0.0;  ///< one PowerSimulator::reset()
  WorkloadResult cycle;   ///< 1 recorded cycle per trace
  WorkloadResult dpa4;    ///< 4-cycle DPA mini-campaign per trace
  double checksum = 0.0;
};

HotpathResult run_hotpath(const Netlist& nl, const CapTable& caps,
                          const PowerSimOptions& opts, int n_cold,
                          int n_reused) {
  HotpathResult r;
  const CompiledSimModel model(nl, caps, opts);
  const DesPorts ports(model.netlist());

  {  // model build cost
    const int n = 50;
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < n; ++i) {
      const CompiledSimModel m(nl, caps, opts);
      r.checksum += static_cast<double>(m.n_nets());
    }
    r.build_us = seconds_since(t0) / n * 1e6;
  }
  {  // reset cost
    PowerSimulator sim(model);
    Rng rng = Rng::stream(7, 0);
    dpa4_trace(sim, ports, rng);  // populate state so reset has work to do
    const int n = 2000;
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < n; ++i) sim.reset();
    r.reset_us = seconds_since(t0) / n * 1e6;
  }
  r.cycle = run_workload(nl, caps, opts, model, ports, cycle_trace,
                         4 * n_cold, 4 * n_reused);
  r.dpa4 =
      run_workload(nl, caps, opts, model, ports, dpa4_trace, n_cold, n_reused);
  r.checksum += r.cycle.checksum + r.dpa4.checksum;
  return r;
}

void report_workload(bench::JsonReport& report, const std::string& design,
                     const std::string& workload, const WorkloadResult& w) {
  bench::row("%-10s %-8s %14.1f %14.1f %9.2fx", design.c_str(),
             workload.c_str(), w.cold_tps, w.reused_tps, w.speedup());
  const std::string p = design + "." + workload;
  report.metric(p + ".cold_traces_per_s", w.cold_tps);
  report.metric(p + ".reused_traces_per_s", w.reused_tps);
  report.metric(p + ".speedup", w.speedup());
}

void report_design(bench::JsonReport& report, const std::string& name,
                   const HotpathResult& r) {
  report_workload(report, name, "cycle", r.cycle);
  report_workload(report, name, "dpa4", r.dpa4);
  report.metric(name + ".model_build_us", r.build_us);
  report.metric(name + ".reset_us", r.reset_us);
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport report("bench_sim_hotpath", argc, argv);
  report.note("design", "reduced-DES (Fig 4)");
  report.note("workload", "4-cycle DPA mini-campaign per trace, 1 thread");

  bench::DesDesigns d = bench::build_des_designs();
  bench::header("sim hotpath",
                "compile-once / simulate-many vs per-trace construction");
  bench::row("%-10s %-8s %14s %14s %10s", "netlist", "trace", "cold [tr/s]",
             "reused [tr/s]", "speedup");

  const HotpathResult reg = run_hotpath(d.regular.rtl, d.regular.caps,
                                        PowerSimOptions{}, 60, 300);
  report_design(report, "regular", reg);

  PowerSimOptions sopts;
  sopts.precharge_inputs = true;
  const HotpathResult sec =
      run_hotpath(d.secure.diff, d.secure.caps, sopts, 40, 200);
  report_design(report, "secure", sec);

  bench::blank();
  bench::row("model build: regular %.1f us, secure %.1f us; reset: regular "
             "%.3f us, secure %.3f us",
             reg.build_us, sec.build_us, reg.reset_us, sec.reset_us);
  bench::row("cold reconstructs per trace as the pre-split engine did (by-");
  bench::row("value CapTable copy + cap/clock/delay resolution); reused");
  bench::row("shares one immutable CompiledSimModel and reset()s between");
  bench::row("traces.  'cycle' = one recorded cycle per trace; 'dpa4' = the");
  bench::row("4-cycle DPA mini-campaign.");
  bench::row("checksums: %.3f %.3f", reg.checksum, sec.checksum);
  return 0;
}
