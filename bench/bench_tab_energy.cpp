// Section 3 energy table: mean energy per encryption, normalized energy
// deviation and normalized standard deviation over 2000 random
// encryptions with K = 46 (paper: 27.1 pJ / 6.6% / 0.9% secure vs
// 4.6 pJ / 60% / 12% reference).
#include "bench_util.h"
#include "sca/dpa_experiment.h"

using namespace secflow;

int main() {
  bench::DesDesigns d = bench::build_des_designs();

  DesDpaSetup setup;
  setup.n_measurements = 2000;
  const auto ref =
      run_des_dpa_campaign(d.regular.rtl, d.regular.caps, setup, false);
  const auto sec =
      run_des_dpa_campaign(d.secure.diff, d.secure.caps, setup, true);
  const EnergyStats rs = compute_energy_stats(ref.cycle_energies_pj);
  const EnergyStats ss = compute_energy_stats(sec.cycle_energies_pj);

  bench::header("Table (sec. 3)", "energy per encryption, 2000 measurements");
  bench::row("%-28s %12s %12s", "", "regular", "secure");
  bench::row("%-28s %12.2f %12.2f", "mean energy [pJ]", rs.mean_pj, ss.mean_pj);
  bench::row("%-28s %12.2f %12.2f", "min / cycle [pJ]", rs.min_pj, ss.min_pj);
  bench::row("%-28s %12.2f %12.2f", "max / cycle [pJ]", rs.max_pj, ss.max_pj);
  bench::row("%-28s %11.1f%% %11.1f%%", "normalized energy deviation",
             100 * rs.ned, 100 * ss.ned);
  bench::row("%-28s %11.1f%% %11.1f%%", "normalized std deviation",
             100 * rs.nsd, 100 * ss.nsd);
  bench::row("%-28s %12s %12s", "paper mean [pJ]", "4.6", "27.1");
  bench::row("%-28s %12s %12s", "paper NED / NSD", "60% / 12%", "6.6% / 0.9%");
  bench::blank();
  bench::row("shape check: secure NED << reference NED: %s",
             ss.ned < 0.25 * rs.ned ? "pass" : "FAIL");
  bench::row("shape check: secure NSD << reference NSD: %s",
             ss.nsd < 0.25 * rs.nsd ? "pass" : "FAIL");
  return 0;
}
