// The statistical leakage-assessment engine: accumulator throughput
// (traces/s through the streaming CPA and TVLA statistics), the
// shard-merge cost, and the full DES assessment — CPA ranking, TVLA
// verdict and MTD on both flows at the calibrated attack point, with the
// cold-vs-warm trace-cache replay speedup.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <functional>

#include "bench_util.h"
#include "leakage/accumulators.h"
#include "leakage/assess.h"
#include "leakage/cpa.h"
#include "leakage/tvla.h"
#include "sca/selection.h"

using namespace secflow;

namespace {

double wall_ms(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

std::vector<CpaMeasurement> synthetic_cpa_traces(int n, int n_samples) {
  std::vector<CpaMeasurement> traces;
  traces.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    Rng rng = Rng::stream(77, static_cast<std::uint64_t>(i));
    CpaMeasurement m;
    m.ct = static_cast<std::uint32_t>(rng.next_below(1024));
    m.prev_ct = static_cast<std::uint32_t>(rng.next_below(1024));
    m.samples.resize(static_cast<std::size_t>(n_samples));
    for (double& s : m.samples) s = rng.next_gaussian();
    traces.push_back(std::move(m));
  }
  return traces;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport report("bench_leakage", argc, argv);

  // --- statistics throughput on synthetic traces (no simulator cost) ---
  const int kTraces = 4000, kSamples = 64;
  const std::vector<CpaMeasurement> traces =
      synthetic_cpa_traces(kTraces, kSamples);
  const HypothesisFn hyp = des_hypothesis(PowerModel::kHammingDistance);

  bench::header("throughput", "streaming statistics, synthetic traces");
  CpaOptions serial;
  serial.parallelism.n_threads = 1;
  const double cpa_ser_ms =
      wall_ms([&] { accumulate_cpa(traces, hyp, serial); });
  const double cpa_par_ms = wall_ms([&] { accumulate_cpa(traces, hyp, {}); });
  const int n_par = Parallelism{}.resolved_threads();
  bench::row("CPA  %d traces x %d samples x 64 guesses: "
             "%.0f ms @ 1 thread (%.0f traces/s), %.0f ms @ %d threads",
             kTraces, kSamples, cpa_ser_ms, kTraces / cpa_ser_ms * 1e3,
             cpa_par_ms, n_par);
  report.metric("cpa.serial_traces_per_s", kTraces / cpa_ser_ms * 1e3);
  report.metric("cpa.parallel_traces_per_s", kTraces / cpa_par_ms * 1e3);
  report.metric("cpa.threads", n_par);

  std::vector<TvlaTrace> tvla_traces;
  for (const CpaMeasurement& m : traces) {
    tvla_traces.push_back(
        TvlaTrace{m.samples, (tvla_traces.size() % 2) == 0});
  }
  const double tvla_ms =
      wall_ms([&] { accumulate_tvla(tvla_traces, {}); });
  bench::row("TVLA %d traces x %d samples: %.0f ms (%.0f traces/s)", kTraces,
             kSamples, tvla_ms, kTraces / tvla_ms * 1e3);
  report.metric("tvla.traces_per_s", kTraces / tvla_ms * 1e3);

  // Shard merge: the fixed cost of combining two accumulated halves.
  CpaAccumulator a = accumulate_cpa(traces, hyp, {});
  const CpaAccumulator b = a;
  const double merge_ms = wall_ms([&] {
    for (int i = 0; i < 1000; ++i) a.merge(b);
  });
  bench::row("merge 64x%d-sample accumulators: %.1f us each", kSamples,
             merge_ms);
  report.metric("merge.us", merge_ms);

  // --- the full DES assessment at the calibrated attack point ---
  bench::DesDesigns d = bench::build_des_designs();
  const std::string cache =
      (std::filesystem::temp_directory_path() / "secflow_bench_leakage_ck")
          .string();
  std::filesystem::remove_all(cache);
  LeakageSetup setup;
  setup.design = "des_dpa";
  setup.model = PowerModel::kHammingWeight;
  setup.noise_ma = 0.6;
  setup.tvla_traces = 200;
  setup.cpa_traces = 400;
  setup.mtd.max_traces = 600;
  setup.mtd.step = 200;
  setup.cache_dir = cache;

  bench::header("DES assessment", "hw model, 0.6 mA noise, 400 traces");
  LeakageSetup reg_setup = setup;
  reg_setup.base_key = d.regular.timings.key(FlowStage::kExtraction);
  LeakageReport reg;
  const double reg_cold_ms = wall_ms([&] {
    reg = assess_des_leakage(d.regular.rtl, d.regular.caps,
                             /*differential=*/false, reg_setup);
  });
  LeakageSetup sec_setup = setup;
  sec_setup.base_key = d.secure.timings.key(FlowStage::kExtraction);
  LeakageReport sec;
  const double sec_cold_ms = wall_ms([&] {
    sec = assess_des_leakage(d.secure.diff, d.secure.caps,
                             /*differential=*/true, sec_setup);
  });
  const double sec_warm_ms = wall_ms([&] {
    assess_des_leakage(d.secure.diff, d.secure.caps,
                       /*differential=*/true, sec_setup);
  });

  bench::row("regular: CPA rank %d, TVLA max|t| %.2f, MTD %d  (%.0f ms)",
             static_cast<int>(reg.cpa.correct_rank), reg.tvla.max_abs_t,
             static_cast<int>(reg.mtd.mtd), reg_cold_ms);
  bench::row("secure:  CPA rank %d, TVLA max|t| %.2f, MTD %s  (%.0f ms)",
             static_cast<int>(sec.cpa.correct_rank), sec.tvla.max_abs_t,
             sec.mtd.mtd < 0 ? "hidden" : std::to_string(sec.mtd.mtd).c_str(),
             sec_cold_ms);
  bench::row("warm trace-cache replay: %.0f ms (%.1fx faster than cold)",
             sec_warm_ms, sec_cold_ms / sec_warm_ms);
  const bool headline = mtd_exceeds(static_cast<int>(sec.mtd.mtd),
                                    static_cast<int>(sec.mtd.max_traces),
                                    static_cast<int>(reg.mtd.mtd));
  bench::row("shape check: MTD(secure) exceeds MTD(regular): %s",
             headline ? "pass" : "FAIL");

  report.metric("des.regular.cpa_rank", static_cast<double>(reg.cpa.correct_rank));
  report.metric("des.regular.mtd", static_cast<double>(reg.mtd.mtd));
  report.metric("des.regular.tvla_max_abs_t", reg.tvla.max_abs_t);
  report.metric("des.regular.cold_ms", reg_cold_ms);
  report.metric("des.secure.cpa_rank", static_cast<double>(sec.cpa.correct_rank));
  report.metric("des.secure.mtd", static_cast<double>(sec.mtd.mtd));
  report.metric("des.secure.tvla_max_abs_t", sec.tvla.max_abs_t);
  report.metric("des.secure.cold_ms", sec_cold_ms);
  report.metric("des.secure.warm_ms", sec_warm_ms);
  report.metric("des.cache_replay_speedup", sec_cold_ms / sec_warm_ms);
  report.metric("des.mtd_secure_exceeds_regular", headline ? 1.0 : 0.0);
  report.note("model", "hw");

  std::filesystem::remove_all(cache);
  return headline ? 0 : 1;
}
