// Fig 6: the DPA result.  Top: measurements-to-disclosure (paper: the
// reference design discloses K=46 within ~250 measurements, the secure
// design does not disclose within 2000).  Bottom: the peak-to-peak value
// of the 64 differential traces at 2000 measurements (the secret key
// stands out only for the reference implementation).
#include <algorithm>
#include <chrono>
#include <optional>

#include "base/parallel.h"
#include "bench_util.h"
#include "sca/dpa_experiment.h"

using namespace secflow;

namespace {

void print_pp_series(const DpaResult& r, std::uint32_t key) {
  // Compact 64-entry series, 8 per line, correct key marked.
  for (int g = 0; g < 64; ++g) {
    std::printf("%s%6.3f%s", g == static_cast<int>(key) ? "[" : " ",
                r.peak_to_peak[static_cast<std::size_t>(g)],
                g == static_cast<int>(key) ? "]" : " ");
    if (g % 8 == 7) std::printf("\n");
  }
}

double wall_ms(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport report("bench_fig6_dpa", argc, argv);
  bench::DesDesigns d = bench::build_des_designs();
  DesDpaSetup setup;
  setup.n_measurements = 2000;
  report.note("design", "des");
  report.metric("measurements", setup.n_measurements);

  // Campaign parallelism: serial baseline vs the full thread budget
  // (SECFLOW_THREADS or hardware).  The per-trace RNG streams make the
  // parallel campaign bit-identical to the serial one — verified below.
  DesDpaSetup serial = setup;
  serial.parallelism.n_threads = 1;
  const int n_par = Parallelism{}.resolved_threads();

  std::optional<DpaAnalysis> ref_opt, ref_par_opt;
  const double ser_ms = wall_ms([&] {
    ref_opt = run_des_dpa_regular(d.regular.rtl, d.regular.caps, serial);
  });
  const double par_ms = wall_ms([&] {
    ref_par_opt = run_des_dpa_regular(d.regular.rtl, d.regular.caps, setup);
  });
  const DpaAnalysis& ref = *ref_opt;
  const DpaAnalysis& ref_par = *ref_par_opt;
  const DpaAnalysis sec =
      run_des_dpa_secure(d.secure.diff, d.secure.caps, setup);

  bench::header("parallel campaign", "serial vs parallel trace synthesis");
  bench::row("regular campaign, %d traces: %.0f ms @ 1 thread, "
             "%.0f ms @ %d threads (%.2fx)",
             setup.n_measurements, ser_ms, par_ms, n_par, ser_ms / par_ms);
  report.metric("campaign.serial_ms", ser_ms);
  report.metric("campaign.parallel_ms", par_ms);
  report.metric("campaign.threads", n_par);
  report.metric("campaign.speedup", ser_ms / par_ms);
  {
    const DpaResult a = ref.analyze(setup.key);
    const DpaResult b = ref_par.analyze(setup.key);
    const bool identical = a.peak_to_peak == b.peak_to_peak &&
                           a.best_guess == b.best_guess &&
                           a.disclosed == b.disclosed;
    bench::row("parallel == serial DPA result: %s",
               identical ? "bit-identical" : "MISMATCH");
  }

  std::vector<int> grid;
  for (int m = 100; m <= 2000; m += 100) grid.push_back(m);

  bench::header("Fig 6 (top)", "measurements to disclosure (MTD)");
  bench::row("%-12s %28s %28s", "traces", "regular: key found?",
             "secure: key found?");
  for (int m : grid) {
    const DpaResult rr = ref.analyze(setup.key, m);
    const DpaResult sr = sec.analyze(setup.key, m);
    bench::row("%-12d %17s (guess %2d) %17s (guess %2d)", m,
               rr.disclosed ? "DISCLOSED" : "hidden", rr.best_guess,
               sr.disclosed ? "DISCLOSED" : "hidden", sr.best_guess);
  }
  const int mtd_ref = ref.measurements_to_disclosure(setup.key, grid);
  const int mtd_sec = sec.measurements_to_disclosure(setup.key, grid);
  bench::blank();
  bench::row("MTD regular: %d   [paper: ~250]", mtd_ref);
  const std::string mtd_sec_str =
      mtd_sec < 0 ? "> 2000" : std::to_string(mtd_sec);
  bench::row("MTD secure:  %s   [paper: > 2000]", mtd_sec_str.c_str());
  report.metric("mtd.regular", mtd_ref);
  report.metric("mtd.secure", mtd_sec);

  bench::header("Fig 6 (bottom)",
                "peak-to-peak of differential traces @ 2000 measurements");
  const DpaResult rr = ref.analyze(setup.key);
  const DpaResult sr = sec.analyze(setup.key);
  bench::row("regular flow (correct key bracketed; units mA):");
  print_pp_series(rr, setup.key);
  auto stats = [](const DpaResult& r, std::uint32_t key) {
    std::vector<double> others;
    for (int g = 0; g < 64; ++g) {
      if (g != static_cast<int>(key)) {
        others.push_back(r.peak_to_peak[static_cast<std::size_t>(g)]);
      }
    }
    const double mx = *std::max_element(others.begin(), others.end());
    return std::pair<double, double>(
        r.peak_to_peak[static_cast<std::size_t>(key)], mx);
  };
  auto [rk, rmax] = stats(rr, setup.key);
  bench::row("correct key pp %.3f vs best wrong guess %.3f (%.2fx)", rk, rmax,
             rk / rmax);
  bench::blank();
  bench::row("secure flow:");
  print_pp_series(sr, setup.key);
  auto [sk, smax] = stats(sr, setup.key);
  bench::row("correct key pp %.3f vs best wrong guess %.3f (%.2fx)", sk, smax,
             sk / smax);
  bench::blank();
  bench::row("shape check: regular discloses, secure conforms to the band: %s",
             (rk > 1.3 * rmax && sk < 1.3 * smax) ? "pass" : "FAIL");
  report.metric("pp.regular.correct_key", rk);
  report.metric("pp.regular.best_wrong", rmax);
  report.metric("pp.regular.ratio", rk / rmax);
  report.metric("pp.secure.correct_key", sk);
  report.metric("pp.secure.best_wrong", smax);
  report.metric("pp.secure.ratio", sk / smax);
  return 0;
}
