// Fig 2: the WDDL compound gate construction (AOI32 example) and the
// compound-cell inventory (the paper's library contains 128 cells).
#include <algorithm>
#include <vector>

#include "bench_util.h"
#include "liberty/builtin_lib.h"
#include "wddl/wddl_library.h"

using namespace secflow;

int main() {
  auto lib = builtin_stdcell018();
  WddlLibrary wlib(lib);

  bench::header("Fig 2", "WDDL compound gates from the static CMOS library");

  // The paper's example: AOI32 = !((A0&A1&A2)|(B0&B1)).
  const WddlCompound& aoi = wlib.compound_for_cell(lib->cell("AOI32"), 0);
  const std::vector<std::string> pins = {"A0", "A1", "A2", "B0", "B1"};
  auto sop_text = [&](const std::vector<Cube>& sop) {
    std::string out;
    for (const Cube& c : sop) {
      if (!out.empty()) out += " + ";
      for (int i = 0; i < 5; ++i) {
        if (!((c.mask >> i) & 1u)) continue;
        out += ((c.value >> i) & 1u) ? pins[static_cast<std::size_t>(i)] + "_t"
                                     : pins[static_cast<std::size_t>(i)] + "_f";
        out += ' ';
      }
    }
    return out;
  };
  bench::row("AOI32 single-ended: area %.2f um^2, Y = !((A0&A1&A2)|(B0&B1))",
             lib->cell("AOI32").area_um2);
  bench::row("WDDL AOI32 compound '%s': area %.2f um^2 (%.2fx)",
             aoi.name.c_str(), aoi.area_um2,
             aoi.area_um2 / lib->cell("AOI32").area_um2);
  bench::row("  true  half (%zu cubes): Y_t = %s", aoi.true_sop.size(),
             sop_text(aoi.true_sop).c_str());
  bench::row("  false half (%zu cubes): Y_f = %s   <- Fig 2's AND-AND-OR",
             aoi.false_sop.size(), sop_text(aoi.false_sop).c_str());
  std::vector<std::pair<std::string, int>> prim(aoi.primitives.begin(),
                                                aoi.primitives.end());
  std::sort(prim.begin(), prim.end());
  for (const auto& [cell, count] : prim) {
    bench::row("  primitive %-6s x%d", cell.c_str(), count);
  }

  // Full inventory.
  const int n = wlib.generate_full_inventory();
  bench::blank();
  bench::row("compound inventory (base cells x input-phase variants,");
  bench::row("deduplicated by function): %d cells   [paper: 128]", n);

  // Per-base-cell area overhead table.
  bench::blank();
  bench::row("%-8s %10s %12s %8s", "cell", "CMOS um^2", "WDDL um^2", "ratio");
  for (const char* name : {"NAND2", "NOR2", "AND2", "OR2", "XOR2", "AOI21",
                           "AOI32", "OAI22", "MUX2"}) {
    const CellType& c = lib->cell(name);
    const WddlCompound& w = wlib.compound_for_cell(c, 0);
    bench::row("%-8s %10.2f %12.2f %7.2fx", name, c.area_um2, w.area_um2,
               w.area_um2 / c.area_um2);
  }
  const WddlCompound& ff = wlib.flop_compound(false);
  bench::row("%-8s %10.2f %12.2f %7.2fx", "DFF", lib->cell("DFF").area_um2,
             ff.area_um2, ff.area_um2 / lib->cell("DFF").area_um2);
  return 0;
}
