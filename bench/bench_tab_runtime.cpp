// Section 2.3 runtime claims, as google-benchmark measurements:
//   * cell substitution generated fat.v + diff netlists for a 39K-gate
//     prototype in < 4 minutes (550 MHz SunFire);
//   * interconnect decomposition edited fat.def in ~2 minutes.
// We synthesize an AES S-box array to the paper's gate scale and time the
// same two procedures (absolute numbers differ — modern hardware — but
// the claim under test is that both steps are negligible backend add-ons).
#include <benchmark/benchmark.h>

#include "crypto/aes.h"
#include "flow/flow.h"
#include "lef/lef.h"
#include "liberty/builtin_lib.h"
#include "netlist/verilog_parser.h"
#include "netlist/verilog_writer.h"
#include "pnr/decompose.h"
#include "pnr/place.h"
#include "pnr/route.h"
#include "synth/techmap.h"
#include "wddl/cell_substitution.h"

namespace {

using namespace secflow;

struct BigDesign {
  std::shared_ptr<const CellLibrary> lib;
  Netlist rtl;
  std::size_t gates;
};

/// Synthesize an AES S-box array near the paper's 39 K-gate prototype.
const BigDesign& big_design() {
  static const BigDesign d = [] {
    auto lib = builtin_stdcell018();
    // ~54 boxes x ~700 cells ~= 39 K gates (exact count printed below).
    Netlist rtl = technology_map(make_aes_sbox_array(54), lib,
                                 wddl_synth_constraints());
    const std::size_t gates = rtl.n_instances();
    return BigDesign{lib, std::move(rtl), gates};
  }();
  return d;
}

void BM_CellSubstitution39K(benchmark::State& state) {
  const BigDesign& d = big_design();
  for (auto _ : state) {
    WddlLibrary wlib(d.lib);
    SubstitutionResult res = substitute_cells(d.rtl, wlib);
    benchmark::DoNotOptimize(res.fat.n_instances());
  }
  state.counters["gates"] = static_cast<double>(d.gates);
}
BENCHMARK(BM_CellSubstitution39K)->Unit(benchmark::kMillisecond);

void BM_DifferentialExpansion39K(benchmark::State& state) {
  const BigDesign& d = big_design();
  WddlLibrary wlib(d.lib);
  const SubstitutionResult res = substitute_cells(d.rtl, wlib);
  for (auto _ : state) {
    Netlist diff = expand_differential(res.fat, wlib);
    benchmark::DoNotOptimize(diff.n_instances());
  }
  state.counters["gates"] = static_cast<double>(d.gates);
}
BENCHMARK(BM_DifferentialExpansion39K)->Unit(benchmark::kMillisecond);

void BM_InterconnectDecomposition39K(benchmark::State& state) {
  const BigDesign& d = big_design();
  WddlLibrary wlib(d.lib);
  const SubstitutionResult res = substitute_cells(d.rtl, wlib);
  LefGenOptions fat_gen;
  fat_gen.wire_scale = 2.0;
  const LefLibrary fat_lef = generate_lef(*wlib.fat_library(), fat_gen);
  DefDesign fat_def = place_design(res.fat, fat_lef);
  route_design_quick(res.fat, fat_lef, fat_def);  // geometry to decompose
  const Process018 pr;
  for (auto _ : state) {
    DefDesign diff = decompose_interconnect(
        fat_def, um_to_dbu(pr.wire_pitch_um), um_to_dbu(pr.wire_width_um));
    benchmark::DoNotOptimize(diff.nets.size());
  }
  state.counters["fat_nets"] = static_cast<double>(fat_def.nets.size());
}
BENCHMARK(BM_InterconnectDecomposition39K)->Unit(benchmark::kMillisecond);

void BM_VerilogRoundTrip39K(benchmark::State& state) {
  // The paper's Awk parser timing analogue: write + reparse the netlist.
  const BigDesign& d = big_design();
  for (auto _ : state) {
    const std::string text = write_verilog(d.rtl);
    Netlist back = parse_verilog(text, d.lib);
    benchmark::DoNotOptimize(back.n_instances());
  }
}
BENCHMARK(BM_VerilogRoundTrip39K)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
