// Shared helpers for the reproduction benches: consistent table printing
// and the standard flow setup used across experiments.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <memory>
#include <string>

#include "crypto/des.h"
#include "flow/flow.h"
#include "liberty/builtin_lib.h"

namespace secflow::bench {

inline void header(const std::string& id, const std::string& title) {
  std::printf("\n==== %s: %s ====\n", id.c_str(), title.c_str());
}

inline void row(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
inline void row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

inline void blank() { std::printf("\n"); }

/// The paper's design example through both flows (deterministic).
struct DesDesigns {
  std::shared_ptr<const CellLibrary> lib;
  RegularFlowResult regular;
  SecureFlowResult secure;
};

inline DesDesigns build_des_designs() {
  auto lib = builtin_stdcell018();
  const AigCircuit circuit = make_des_dpa_circuit();
  FlowOptions opts;
  return DesDesigns{lib, run_regular_flow(circuit, lib, opts),
                    run_secure_flow(circuit, lib, opts)};
}

}  // namespace secflow::bench
