// Shared helpers for the reproduction benches: consistent table printing,
// an optional machine-readable JSON report (`--json <path>`), and the
// standard flow setup used across experiments.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "crypto/des.h"
#include "flow/flow.h"
#include "liberty/builtin_lib.h"
#include "obs/json.h"

namespace secflow::bench {

inline void header(const std::string& id, const std::string& title) {
  std::printf("\n==== %s: %s ====\n", id.c_str(), title.c_str());
}

inline void row(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
inline void row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

inline void blank() { std::printf("\n"); }

/// Machine-readable bench results (document `secflow.bench-report/1`).
/// Pass `--json <path>` (or `--json=<path>`) on a bench's command line to
/// write `{"schema", "bench", "metrics": {...}, "notes": {...}}` when the
/// report is destroyed; without the flag the report is a no-op and the
/// bench prints its human tables as before.  CI uploads these files to
/// track the performance trajectory across commits.
class JsonReport {
 public:
  JsonReport(std::string bench_name, int argc, char** argv)
      : bench_(std::move(bench_name)) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--json" && i + 1 < argc) {
        path_ = argv[i + 1];
      } else if (arg.rfind("--json=", 0) == 0) {
        path_ = arg.substr(7);
      }
    }
  }

  bool enabled() const { return !path_.empty(); }

  /// Record one numeric result (e.g. "reused.traces_per_s").
  void metric(const std::string& name, double value) {
    metrics_.set(name, value);
  }
  /// Record one string annotation (e.g. "design" -> "des").
  void note(const std::string& key, const std::string& value) {
    notes_.set(key, value);
  }

  ~JsonReport() {
    if (!enabled()) return;
    JsonValue doc = JsonValue::object();
    doc.set("schema", "secflow.bench-report/1");
    doc.set("bench", bench_);
    doc.set("metrics", std::move(metrics_));
    doc.set("notes", std::move(notes_));
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out << json_dump(doc, 2) << "\n";
  }

  JsonReport(const JsonReport&) = delete;
  JsonReport& operator=(const JsonReport&) = delete;

 private:
  std::string bench_;
  std::string path_;
  JsonValue metrics_ = JsonValue::object();
  JsonValue notes_ = JsonValue::object();
};

/// The paper's design example through both flows (deterministic).
struct DesDesigns {
  std::shared_ptr<const CellLibrary> lib;
  RegularFlowResult regular;
  SecureFlowResult secure;
};

inline DesDesigns build_des_designs() {
  auto lib = builtin_stdcell018();
  const AigCircuit circuit = make_des_dpa_circuit();
  FlowOptions opts;
  return DesDesigns{lib, run_regular_flow(circuit, lib, opts),
                    run_secure_flow(circuit, lib, opts)};
}

}  // namespace secflow::bench
