// Section 4.1: timing side-channel via power.  Idle cycles inserted to
// equalize conditional branches are visible in a regular CMOS design (no
// state change -> no switching -> no current) but indistinguishable in
// WDDL (every gate switches every cycle).
//
// The DES module is a two-stage pipeline (PL/PR then CL/CR), so a cycle is
// power-quiet in the regular design only when the previous *three* driven
// plaintexts were identical (no register reloads anywhere in the pipe).
// We drive bursts of repeated plaintext and label each measured cycle
// accordingly.
#include <vector>

#include "base/rng.h"
#include "bench_util.h"
#include "sim/power_sim.h"

using namespace secflow;

namespace {

void drive(PowerSimulator& sim, std::uint32_t pl, std::uint32_t pr,
           bool differential) {
  auto set = [&](const std::string& base, int width, std::uint32_t v) {
    for (int b = 0; b < width; ++b) {
      const std::string bit = base + "_" + std::to_string(b);
      const bool val = (v >> b) & 1;
      if (differential) {
        sim.set_input(bit + "_t", val);
        sim.set_input(bit + "_f", !val);
      } else {
        sim.set_input(bit, val);
      }
    }
  };
  set("pl", 4, pl);
  set("pr", 6, pr);
}

}  // namespace

int main() {
  bench::DesDesigns d = bench::build_des_designs();

  PowerSimulator ref(d.regular.rtl, d.regular.caps, {});
  PowerSimOptions sopts;
  sopts.precharge_inputs = true;
  PowerSimulator sec(d.secure.diff, d.secure.caps, sopts);

  for (int b = 0; b < 6; ++b) {
    const bool v = (46u >> b) & 1;
    ref.set_input("k_" + std::to_string(b), v);
    sec.set_input("k_" + std::to_string(b) + "_t", v);
    sec.set_input("k_" + std::to_string(b) + "_f", !v);
  }

  // Bursts: new plaintext held for 4 cycles, so the middle cycles of each
  // burst are true idle cycles for the whole pipeline.
  Rng rng(99);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> inputs;
  for (int burst = 0; burst < 5; ++burst) {
    const std::uint32_t pl = static_cast<std::uint32_t>(rng.next_below(16));
    const std::uint32_t pr = static_cast<std::uint32_t>(rng.next_below(64));
    for (int i = 0; i < 4; ++i) inputs.emplace_back(pl, pr);
  }

  bench::header("Sec 4.1", "idle-cycle visibility (timing attack via power)");
  bench::row("%-8s %-8s %16s %16s", "cycle", "kind", "regular E [pJ]",
             "WDDL E [pJ]");

  double ref_active_min = 1e30, ref_idle_max = 0.0;
  double sec_active_min = 1e30, sec_idle_max = 0.0;
  for (std::size_t k = 0; k < inputs.size(); ++k) {
    drive(ref, inputs[k].first, inputs[k].second, false);
    drive(sec, inputs[k].first, inputs[k].second, true);
    const double re = ref.run_cycle().energy_pj;
    const double se = sec.run_cycle().energy_pj;
    if (k < 3) continue;  // pipeline warm-up
    // active: this cycle loads fresh plaintext into PL/PR.
    // pipe:   only the second stage (CL/CR) reloads.
    // IDLE:   nothing in the pipeline changes.
    const bool stage1 = inputs[k - 1] != inputs[k - 2];
    const bool stage2 = !stage1 && inputs[k - 2] != inputs[k - 3];
    const char* kind = stage1 ? "active" : stage2 ? "pipe" : "IDLE";
    bench::row("%-8zu %-8s %16.3f %16.3f", k, kind, re, se);
    if (stage1) {
      ref_active_min = std::min(ref_active_min, re);
      sec_active_min = std::min(sec_active_min, se);
    } else if (!stage2) {
      ref_idle_max = std::max(ref_idle_max, re);
      sec_idle_max = std::max(sec_idle_max, se);
    }
  }
  bench::blank();
  bench::row("regular: idle max %.3f pJ vs active min %.3f pJ -> idle cycles "
             "%s",
             ref_idle_max, ref_active_min,
             ref_idle_max < 0.5 * ref_active_min ? "EXPOSED" : "hidden");
  bench::row("WDDL:    idle max %.3f pJ vs active min %.3f pJ -> idle cycles "
             "%s",
             sec_idle_max, sec_active_min,
             sec_idle_max > 0.8 * sec_active_min ? "indistinguishable"
                                                 : "EXPOSED");
  bench::row("paper: 'Every gate has a switching event in every cycle,");
  bench::row("whether or not useful data is processed.'");
  return 0;
}
