// Section 4.3: DFA countermeasure.  A clock-glitch attack shortens the
// period so the evaluation wave cannot reach the registers; WDDL's
// redundant encoding detects it — a register rail pair still (0,0) at the
// capture edge raises the alarm.  We sweep the glitched period and report
// the alarm behaviour across the boundary.
#include "base/rng.h"
#include "bench_util.h"
#include "sca/dfa.h"
#include "sim/power_sim.h"

using namespace secflow;

namespace {

void drive(PowerSimulator& sim, std::uint32_t pl, std::uint32_t pr,
           std::uint32_t k) {
  auto rails = [&](const std::string& base, int width, std::uint32_t v) {
    for (int b = 0; b < width; ++b) {
      sim.set_input(base + "_" + std::to_string(b) + "_t", (v >> b) & 1);
      sim.set_input(base + "_" + std::to_string(b) + "_f", !((v >> b) & 1));
    }
  };
  rails("pl", 4, pl);
  rails("pr", 6, pr);
  rails("k", 6, k);
}

}  // namespace

int main() {
  bench::DesDesigns d = bench::build_des_designs();
  const DfaMonitor monitor(d.secure.diff);

  bench::header("Sec 4.3",
                "DFA clock-glitch detection via redundant encoding");
  bench::row("monitored WDDL registers: %d", monitor.n_monitored_registers());
  bench::row("%-14s %10s %14s", "period [ps]", "alarms", "verdict");

  Rng rng(31);
  double detect_from = -1.0, clean_from = -1.0;
  for (double period : {400.0, 800.0, 1200.0, 1600.0, 2000.0, 2400.0, 2800.0,
                        3200.0, 4800.0, 8000.0}) {
    PowerSimOptions opts;
    opts.precharge_inputs = true;
    PowerSimulator sim(d.secure.diff, d.secure.caps, opts);
    // Two normal cycles establish valid state, then the glitched cycle.
    drive(sim, 5, 21, 46);
    sim.run_cycle();
    drive(sim, static_cast<std::uint32_t>(rng.next_below(16)),
          static_cast<std::uint32_t>(rng.next_below(64)), 46);
    sim.run_cycle();
    drive(sim, static_cast<std::uint32_t>(rng.next_below(16)),
          static_cast<std::uint32_t>(rng.next_below(64)), 46);
    sim.run_cycle(period);
    const auto alarms = monitor.check(sim);
    bench::row("%-14.0f %10zu %14s", period, alarms.size(),
               alarms.empty() ? "ok" : "ALARM");
    if (!alarms.empty()) detect_from = period;
    if (alarms.empty() && clean_from < 0) clean_from = period;
  }
  bench::blank();
  bench::row("glitches at or below %.0f ps are detected; the nominal", detect_from);
  bench::row("8000 ps cycle (and any period past the critical path) is clean.");
  bench::row("A regular CMOS design has no such invalid state to detect:");
  bench::row("a glitched capture silently latches a wrong-but-valid value.");
  return 0;
}
