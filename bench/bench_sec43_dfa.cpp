// Section 4.3: DFA countermeasure.  A clock-glitch attack shortens the
// period so the evaluation wave cannot reach the registers; WDDL's
// redundant encoding detects it — a register rail pair still (0,0) at the
// capture edge raises the alarm.  We sweep the glitched period and report
// the alarm behaviour across the boundary.
#include "base/rng.h"
#include "bench_util.h"
#include "sca/dfa.h"
#include "sim/power_sim.h"

using namespace secflow;

namespace {

/// Rail port ids of one bit-blasted input, resolved once.
struct RailPorts {
  std::vector<std::pair<PortId, PortId>> bits;
  RailPorts(const Netlist& nl, const std::string& base, int width) {
    for (int b = 0; b < width; ++b) {
      const std::string bit = base + "_" + std::to_string(b);
      bits.emplace_back(nl.find_port(bit + "_t"), nl.find_port(bit + "_f"));
    }
  }
  void drive(PowerSimulator& sim, std::uint32_t v) const {
    for (std::size_t b = 0; b < bits.size(); ++b) {
      sim.set_input(bits[b].first, (v >> b) & 1);
      sim.set_input(bits[b].second, !((v >> b) & 1));
    }
  }
};

struct DrivePorts {
  RailPorts pl, pr, k;
  explicit DrivePorts(const Netlist& nl)
      : pl(nl, "pl", 4), pr(nl, "pr", 6), k(nl, "k", 6) {}
  void drive(PowerSimulator& sim, std::uint32_t plv, std::uint32_t prv,
             std::uint32_t kv) const {
    pl.drive(sim, plv);
    pr.drive(sim, prv);
    k.drive(sim, kv);
  }
};

}  // namespace

int main() {
  bench::DesDesigns d = bench::build_des_designs();
  const DfaMonitor monitor(d.secure.diff);
  // One compiled model for the whole period sweep; reset() per period.
  const CompiledSimModel model = compile_power_model(d.secure);
  const DrivePorts ports(d.secure.diff);
  PowerSimulator sim(model);

  bench::header("Sec 4.3",
                "DFA clock-glitch detection via redundant encoding");
  bench::row("monitored WDDL registers: %d", monitor.n_monitored_registers());
  bench::row("%-14s %10s %14s", "period [ps]", "alarms", "verdict");

  Rng rng(31);
  double detect_from = -1.0, clean_from = -1.0;
  bool first = true;
  for (double period : {400.0, 800.0, 1200.0, 1600.0, 2000.0, 2400.0, 2800.0,
                        3200.0, 4800.0, 8000.0}) {
    if (!first) sim.reset();
    first = false;
    // Two normal cycles establish valid state, then the glitched cycle.
    ports.drive(sim, 5, 21, 46);
    sim.run_cycle();
    ports.drive(sim, static_cast<std::uint32_t>(rng.next_below(16)),
                static_cast<std::uint32_t>(rng.next_below(64)), 46);
    sim.run_cycle();
    ports.drive(sim, static_cast<std::uint32_t>(rng.next_below(16)),
                static_cast<std::uint32_t>(rng.next_below(64)), 46);
    sim.run_cycle(period);
    const auto alarms = monitor.check(sim);
    bench::row("%-14.0f %10zu %14s", period, alarms.size(),
               alarms.empty() ? "ok" : "ALARM");
    if (!alarms.empty()) detect_from = period;
    if (alarms.empty() && clean_from < 0) clean_from = period;
  }
  bench::blank();
  bench::row("glitches at or below %.0f ps are detected; the nominal", detect_from);
  bench::row("8000 ps cycle (and any period past the critical path) is clean.");
  bench::row("A regular CMOS design has no such invalid state to detect:");
  bench::row("a glitched capture silently latches a wrong-but-valid value.");
  return 0;
}
