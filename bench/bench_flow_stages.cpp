// Fig 1: the secure digital design flow, stage by stage, with per-stage
// artifact statistics and CPU time on the paper's design example — plus the
// checkpoint store in action: a cold cached run, a warm rerun (every stage
// a cache hit), and a routing-option change (only routing onward re-runs).
#include <chrono>
#include <filesystem>
#include <fstream>

#include "bench_util.h"
#include "ckpt/hash.h"
#include "netlist/netlist_ops.h"
#include "netlist/verilog_writer.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"

using namespace secflow;

namespace {

double wall_ms(const std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  const auto lib = builtin_stdcell018();
  const AigCircuit circuit = make_des_dpa_circuit();

  // True cold start: wipe any checkpoint state from a previous bench run.
  const std::string cache_dir = "bench_flow_stages_out/ckpt";
  std::filesystem::remove_all("bench_flow_stages_out");
  FlowOptions opts;
  opts.cache_dir = cache_dir;

  auto t0 = std::chrono::steady_clock::now();
  const RegularFlowResult regular = run_regular_flow(circuit, lib, opts);
  const SecureFlowResult secure = run_secure_flow(circuit, lib, opts);
  const double cold_ms = wall_ms(t0);

  bench::header("Fig 1", "secure digital design flow stages (DES module)");
  bench::row("%-28s %-34s %10s", "stage", "artifact", "time [ms]");
  bench::row("%-28s %-34s %10s", "logic design", "behavior (AIG circuit)",
             "-");
  bench::row("%-28s rtl.v: %4zu cells, %4zu nets %14.1f", "logic synthesis",
             secure.rtl.n_instances(), secure.rtl.n_nets(),
             secure.timings.synthesis_ms);
  bench::row("%-28s fat.v: %4zu compounds (+diff) %12.1f",
             "cell substitution*", secure.fat.n_instances(),
             secure.timings.substitution_ms);
  bench::row("%-28s %-34s %10s", "", "  (LEC fat.v == rtl.v: pass)", "");
  bench::row("%-28s fat.def: %4zu nets routed %15.1f", "place & route",
             secure.fat_def.nets.size(),
             secure.timings.place_ms + secure.timings.route_ms);
  bench::row("%-28s diff.def: %4zu rail nets %15.1f",
             "interconnect decomposition*", secure.def.nets.size(),
             secure.timings.decomposition_ms);
  bench::row("%-28s layout + parasitics %20.1f", "stream out / extraction",
             secure.timings.extraction_ms);
  bench::blank();
  bench::row("* = the two steps the secure flow adds to a regular flow.");
  const double extra =
      secure.timings.substitution_ms + secure.timings.decomposition_ms;
  const double total = secure.timings.total_ms();
  bench::row("added steps: %.1f ms of %.1f ms total (%.1f%%) — the paper",
             extra, total, 100.0 * extra / total);
  bench::row("reports ~6 CPU minutes for both steps on a 39K-gate IC");
  bench::row("(550 MHz SunFire), 'a negligible overhead in design time'.");

  bench::row("\nregular flow for comparison:\n%s",
             flow_report(regular).c_str());
  bench::row("secure flow:\n%s", flow_report(secure).c_str());

  // Emit the first lines of the actual artifacts for inspection.
  const std::string fat_v = write_verilog(secure.fat);
  bench::row("fat.v (first 400 chars):\n%.400s...", fat_v.c_str());

  // --- checkpoint store: warm rerun and selective invalidation -------------
  bench::header("ckpt", "stage-artifact cache (content-addressed)");

  t0 = std::chrono::steady_clock::now();
  const SecureFlowResult warm = run_secure_flow(circuit, lib, opts);
  const double warm_ms = wall_ms(t0);

  FlowOptions rerouted = opts;
  rerouted.route.via_cost += 2;
  t0 = std::chrono::steady_clock::now();
  const SecureFlowResult changed = run_secure_flow(circuit, lib, rerouted);
  const double changed_ms = wall_ms(t0);

  bench::row("%-16s %-7s %-7s %-12s %-18s", "stage", "cold", "warm",
             "route change", "cache key (warm)");
  for (int i = 0; i < kNumFlowStages; ++i) {
    const FlowStage s = static_cast<FlowStage>(i);
    bench::row("%-16s %-7s %-7s %-12s %-18s", flow_stage_name(s),
               cache_outcome_name(secure.timings.outcome(s)),
               cache_outcome_name(warm.timings.outcome(s)),
               cache_outcome_name(changed.timings.outcome(s)),
               hash_hex(warm.timings.key(s)).c_str());
  }
  bench::blank();
  bench::row("cold (both flows) %9.1f ms", cold_ms);
  bench::row("warm rerun        %9.1f ms  (%.0fx faster, %d/%d stages hit)",
             warm_ms, cold_ms / warm_ms, warm.timings.cache_hits(),
             kNumFlowStages);
  bench::row("via_cost change   %9.1f ms  (%d stages hit, %d re-run)",
             changed_ms, changed.timings.cache_hits(),
             changed.timings.cache_misses());

  // --- observability: disabled-probe overhead + machine-readable report ----
  bench::header("obs", "observability cost and the JSON flow report");

  // Per-call price of a suppressed probe — what the flow's hot loops pay
  // when tracing/metrics are off (one relaxed atomic load each).
  constexpr int kProbes = 1'000'000;
  t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kProbes; ++i) {
    Span probe("probe", "bench");
    (void)probe;
  }
  const double span_ns = wall_ms(t0) * 1e6 / kProbes;
  t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kProbes; ++i) Metrics::global().add("probe");
  const double counter_ns = wall_ms(t0) * 1e6 / kProbes;

  // An instrumented (uncached, metrics+tracing on) secure flow, to count
  // how many probes one run actually fires and to produce the report.
  FlowOptions uncached;
  Tracer::global().set_enabled(true);
  Tracer::global().clear();
  Metrics::global().set_enabled(true);
  Metrics::global().reset();
  t0 = std::chrono::steady_clock::now();
  const SecureFlowResult traced = run_secure_flow(circuit, lib, uncached);
  const double traced_ms = wall_ms(t0);
  const MetricsSnapshot snap = Metrics::global().snapshot();
  const std::size_t n_spans = Tracer::global().n_events();
  Tracer::global().set_enabled(false);
  Metrics::global().set_enabled(false);

  const auto ctr = [&](const char* name) -> std::uint64_t {
    const auto it = snap.counters.find(name);
    return it == snap.counters.end() ? 0 : it->second;
  };
  // add() call sites fired by one run: 3 per SA batch, 2 per route
  // iteration, 1 per routed design and per checkpoint-store access.
  const std::uint64_t n_counts =
      ctr("pnr.place.sa_batches") * 3 + ctr("pnr.route.iterations") * 2 +
      ctr("ckpt.store.hits") + ctr("ckpt.store.misses") +
      ctr("ckpt.store.saves") + 1;
  // Projected cost of the same probes when DISABLED, as a fraction of the
  // uninstrumented flow: (#spans + #counter bumps) * per-probe ns.
  const double disabled_cost_ms =
      (static_cast<double>(n_spans) * span_ns +
       static_cast<double>(n_counts) * counter_ns) /
      1e6;
  bench::row("suppressed probe   %8.2f ns/span  %8.2f ns/counter", span_ns,
             counter_ns);
  bench::row("one secure flow    %8zu spans   %8llu counter bumps", n_spans,
             static_cast<unsigned long long>(n_counts));
  bench::row("disabled overhead  %8.3f ms of %.1f ms flow (%.3f%%)",
             disabled_cost_ms, traced_ms,
             100.0 * disabled_cost_ms / traced_ms);
  bench::row("(measured projection, not asserted; target < 2%%)");

  // The unified machine-readable report for the traced run.
  FlowReport report = build_flow_report(traced);
  attach_metrics(report, snap);
  const std::string report_path = "bench_flow_stages_out/flow_report.json";
  std::ofstream rf(report_path);
  rf << flow_report_json(report);
  bench::row("\nflow report: %s (%zu stages, %zu metric counters)",
             report_path.c_str(), report.stages.size(),
             report.metrics.counters.size());
  return 0;
}
