// Fig 1: the secure digital design flow, stage by stage, with per-stage
// artifact statistics and CPU time on the paper's design example.
#include "bench_util.h"
#include "netlist/netlist_ops.h"
#include "netlist/verilog_writer.h"

using namespace secflow;

int main() {
  bench::DesDesigns d = bench::build_des_designs();

  bench::header("Fig 1", "secure digital design flow stages (DES module)");
  bench::row("%-28s %-34s %10s", "stage", "artifact", "time [ms]");
  bench::row("%-28s %-34s %10s", "logic design", "behavior (AIG circuit)",
             "-");
  bench::row("%-28s rtl.v: %4zu cells, %4zu nets %14.1f", "logic synthesis",
             d.secure.rtl.n_instances(), d.secure.rtl.n_nets(),
             d.secure.timings.synthesis_ms);
  bench::row("%-28s fat.v: %4zu compounds (+diff) %12.1f",
             "cell substitution*", d.secure.fat.n_instances(),
             d.secure.timings.substitution_ms);
  bench::row("%-28s %-34s %10s", "", "  (LEC fat.v == rtl.v: pass)", "");
  bench::row("%-28s fat.def: %4zu nets routed %15.1f", "place & route",
             d.secure.fat_def.nets.size(),
             d.secure.timings.place_ms + d.secure.timings.route_ms);
  bench::row("%-28s diff.def: %4zu rail nets %15.1f",
             "interconnect decomposition*", d.secure.def.nets.size(),
             d.secure.timings.decomposition_ms);
  bench::row("%-28s layout + parasitics %20.1f", "stream out / extraction",
             d.secure.timings.extraction_ms);
  bench::blank();
  bench::row("* = the two steps the secure flow adds to a regular flow.");
  const double extra =
      d.secure.timings.substitution_ms + d.secure.timings.decomposition_ms;
  const double total = d.secure.timings.synthesis_ms +
                       d.secure.timings.substitution_ms +
                       d.secure.timings.place_ms + d.secure.timings.route_ms +
                       d.secure.timings.decomposition_ms +
                       d.secure.timings.extraction_ms;
  bench::row("added steps: %.1f ms of %.1f ms total (%.1f%%) — the paper",
             extra, total, 100.0 * extra / total);
  bench::row("reports ~6 CPU minutes for both steps on a 39K-gate IC");
  bench::row("(550 MHz SunFire), 'a negligible overhead in design time'.");

  bench::row("\nregular flow for comparison:\n%s",
             flow_report(d.regular).c_str());
  bench::row("secure flow:\n%s", flow_report(d.secure).c_str());

  // Emit the first lines of the actual artifacts for inspection.
  const std::string fat_v = write_verilog(d.secure.fat);
  bench::row("fat.v (first 400 chars):\n%.400s...", fat_v.c_str());
  return 0;
}
