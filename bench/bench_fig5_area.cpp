// Fig 5: layouts of the paper's design example through the regular and
// secure flows, with the area comparison (paper: 3782 vs 12880 um^2).
#include "bench_util.h"
#include "netlist/netlist_ops.h"
#include "pnr/render.h"

using namespace secflow;

int main() {
  bench::DesDesigns d = bench::build_des_designs();

  bench::header("Fig 5", "layout area: regular vs secure flow");
  bench::row("%-24s %14s %14s", "", "regular flow", "secure flow");
  bench::row("%-24s %14zu %14zu", "logic cells",
             d.regular.rtl.n_instances(), d.secure.diff.n_instances());
  bench::row("%-24s %14.0f %14.0f", "cell area [um^2]",
             d.regular.rtl.total_area_um2(), d.secure.diff.total_area_um2());
  bench::row("%-24s %14.0f %14.0f", "die area [um^2]",
             d.regular.die_area_um2(), d.secure.die_area_um2());
  bench::row("%-24s %14s %14.2f", "area ratio", "1.00x",
             d.secure.die_area_um2() / d.regular.die_area_um2());
  bench::row("%-24s %14s %14s", "paper [um^2]", "3782", "12880 (3.41x)");
  bench::row("%-24s %14.0f %14.0f", "wirelength [um]",
             dbu_to_um(d.regular.def.total_wirelength()),
             dbu_to_um(d.secure.def.total_wirelength()));

  bench::row("\n--- regular flow layout ---");
  RenderOptions ro;
  ro.max_cols = 80;
  std::fputs(render_design(d.regular.def, ro).c_str(), stdout);
  bench::row("--- secure flow layout (differential, after decomposition) ---");
  std::fputs(render_design(d.secure.def, ro).c_str(), stdout);
  return 0;
}
