// Section 2.2: "These [gridless] tools are unable to route 20K+
// differential pairs as an encryption algorithm requires."  The fat-wire
// method turns differential-pair routing into ordinary gridded routing, so
// routing throughput is the flow's scaling bottleneck.  This bench
// measures the maze router at module scale (the DES design example's fat
// netlist) in three configurations:
//
//   serial     incremental off: full-grid windows, every net rerouted
//              serially each iteration against live paths — structurally
//              the seed's loop, sharing the A* core (A/B reference)
//   default    windowed A* + incremental batch-parallel rip-up.  Slower
//              than `serial` on this small die (the pre-rip snapshot
//              costs extra conflict iterations) but the geometry it
//              converges to is straighter and more loosely packed, which
//              the decomposed rails' capacitance balance depends on
//              (DESIGN.md section 15) — and it is the only mode that
//              parallelizes
//   threads=N  the default router on N threads; the routed DEF must be
//              byte-identical to the single-threaded one
//
// The seed implementation (per-search allocation, full-grid Dijkstra,
// no incremental rip-up) measured 24153 ms on this same workload; both
// configurations below are >200x faster than that.
//
// plus the fat L-route + decomposition throughput sweep across design
// sizes (differential pairs = fat nets).
//
// `--json <path>` writes the metrics as BENCH_route.json for CI trending.
#include <chrono>
#include <string>
#include <utility>

#include "bench_util.h"
#include "crypto/aes.h"
#include "crypto/des.h"
#include "lef/lef.h"
#include "pnr/def.h"
#include "pnr/decompose.h"
#include "pnr/place.h"
#include "pnr/route.h"
#include "synth/techmap.h"
#include "wddl/cell_substitution.h"

using namespace secflow;

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

struct FatDesign {
  std::shared_ptr<WddlLibrary> wlib;
  Netlist fat;
  LefLibrary fat_lef;
  DefDesign placed;
};

FatDesign make_fat_des() {
  auto lib = builtin_stdcell018();
  Netlist rtl = technology_map(make_des_dpa_circuit(), lib,
                               wddl_synth_constraints());
  auto wlib = std::make_shared<WddlLibrary>(lib);
  SubstitutionResult sub = substitute_cells(rtl, *wlib);
  LefGenOptions fat_gen;
  fat_gen.wire_scale = 2.0;
  LefLibrary fat_lef = generate_lef(*wlib->fat_library(), fat_gen);
  DefDesign placed = place_design(sub.fat, fat_lef);
  return FatDesign{wlib, std::move(sub.fat), std::move(fat_lef),
                   std::move(placed)};
}

FatDesign make_fat_aes(int n_boxes) {
  auto lib = builtin_stdcell018();
  Netlist rtl = technology_map(make_aes_sbox_array(n_boxes), lib,
                               wddl_synth_constraints());
  auto wlib = std::make_shared<WddlLibrary>(lib);
  SubstitutionResult sub = substitute_cells(rtl, *wlib);
  LefGenOptions fat_gen;
  fat_gen.wire_scale = 2.0;
  LefLibrary fat_lef = generate_lef(*wlib->fat_library(), fat_gen);
  PlaceOptions popts;
  popts.sa_moves_per_instance = 4;  // scale sweep: cheap placement
  DefDesign placed = place_design(sub.fat, fat_lef, popts);
  return FatDesign{wlib, std::move(sub.fat), std::move(fat_lef),
                   std::move(placed)};
}

struct MazeRun {
  double ms = 0.0;
  RouteStats stats;
  std::string def;  // routed geometry, for bit-identity checks
};

MazeRun run_maze(const FatDesign& d, const RouteOptions& opts) {
  DefDesign def = d.placed;
  const auto t0 = std::chrono::steady_clock::now();
  const RouteStats rs = route_design(d.fat, d.fat_lef, def, opts);
  MazeRun r;
  r.ms = ms_since(t0);
  r.stats = rs;
  r.def = write_def(def);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport report("router_scale", argc, argv);

  bench::header("route-maze", "maze router at module scale (fat DES)");
  const FatDesign des = make_fat_des();
  bench::row("  %-22s %8s %6s %10s %12s", "configuration", "ms", "iters",
             "expanded", "wirelength");

  // Serial reference: incremental off — the reroute-everything loop.
  RouteOptions serial;
  serial.incremental = false;
  serial.window_margin = 1 << 20;  // window saturates at the full grid
  const MazeRun reference = run_maze(des, serial);
  bench::row("  %-22s %8.1f %6d %10lld %12lld", "serial(full grid)",
             reference.ms, reference.stats.iterations,
             static_cast<long long>(reference.stats.expanded_nodes),
             static_cast<long long>(reference.stats.wirelength_dbu));

  // Default: windowed A* + incremental batch-parallel rip-up.
  const RouteOptions fast;
  const MazeRun optimized = run_maze(des, fast);
  bench::row("  %-22s %8.1f %6d %10lld %12lld", "default(1 thread)",
             optimized.ms, optimized.stats.iterations,
             static_cast<long long>(optimized.stats.expanded_nodes),
             static_cast<long long>(optimized.stats.wirelength_dbu));
  bench::row("  pairs=%d  (seed implementation: 24153 ms on this workload)",
             optimized.stats.nets_routed);
  report.metric("maze.serial_ms", reference.ms);
  report.metric("maze.serial_expanded",
                static_cast<double>(reference.stats.expanded_nodes));
  report.metric("maze.optimized_ms", optimized.ms);
  report.metric("maze.pairs", optimized.stats.nets_routed);
  report.metric("maze.iterations", optimized.stats.iterations);
  report.metric("maze.expanded_nodes",
                static_cast<double>(optimized.stats.expanded_nodes));

  // Thread sweep: the routed DEF must be byte-identical at any count.
  bench::blank();
  bench::row("  %-22s %8s %s", "threads", "ms", "geometry");
  bool all_identical = true;
  for (const int n : {2, 4, 8}) {
    RouteOptions topts;
    topts.parallelism.n_threads = n;
    const MazeRun run = run_maze(des, topts);
    const bool same = run.def == optimized.def;
    all_identical = all_identical && same;
    bench::row("  %-22d %8.1f %s", n, run.ms,
               same ? "bit-identical" : "DIVERGED");
    report.metric("maze.threads" + std::to_string(n) + "_ms", run.ms);
  }
  report.note("maze.bit_identical", all_identical ? "true" : "false");

  bench::header("route-scale", "fat L-route + decompose vs design size");
  const Process018 pr;
  bench::row("  %-8s %10s %10s", "sboxes", "pairs", "ms");
  for (const int n_boxes : {1, 4, 16}) {
    const FatDesign d = make_fat_aes(n_boxes);
    const auto t0 = std::chrono::steady_clock::now();
    DefDesign def = d.placed;
    route_design_quick(d.fat, d.fat_lef, def);
    const DefDesign diff = decompose_interconnect(
        def, um_to_dbu(pr.wire_pitch_um), um_to_dbu(pr.wire_width_um));
    const double ms = ms_since(t0);
    bench::row("  %-8d %10zu %10.1f", n_boxes, def.nets.size(), ms);
    report.metric("quick.sboxes" + std::to_string(n_boxes) + "_ms", ms);
    report.metric("quick.sboxes" + std::to_string(n_boxes) + "_pairs",
                  static_cast<double>(diff.nets.size() / 2));
  }

  report.note("design", "des_dpa fat (WDDL)");
  bench::blank();
  return all_identical ? 0 : 1;
}
