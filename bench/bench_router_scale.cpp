// Section 2.2: "These [gridless] tools are unable to route 20K+
// differential pairs as an encryption algorithm requires."  The fat-wire
// method turns differential-pair routing into ordinary gridded routing, so
// throughput scales like a normal router.  This bench measures fat-route +
// decomposition throughput against design size (differential pair count).
#include <benchmark/benchmark.h>

#include "crypto/aes.h"
#include "crypto/des.h"
#include "flow/flow.h"
#include "lef/lef.h"
#include "liberty/builtin_lib.h"
#include "pnr/decompose.h"
#include "pnr/place.h"
#include "pnr/route.h"
#include "synth/techmap.h"
#include "wddl/cell_substitution.h"

namespace {

using namespace secflow;

struct FatDesign {
  std::shared_ptr<WddlLibrary> wlib;
  Netlist fat;
  LefLibrary fat_lef;
  DefDesign placed;
};

FatDesign make_fat(int n_boxes) {
  auto lib = builtin_stdcell018();
  Netlist rtl = technology_map(make_aes_sbox_array(n_boxes), lib,
                               wddl_synth_constraints());
  auto wlib = std::make_shared<WddlLibrary>(lib);
  SubstitutionResult sub = substitute_cells(rtl, *wlib);
  LefGenOptions fat_gen;
  fat_gen.wire_scale = 2.0;
  LefLibrary fat_lef = generate_lef(*wlib->fat_library(), fat_gen);
  PlaceOptions popts;
  popts.sa_moves_per_instance = 4;  // scale sweep: cheap placement
  DefDesign placed = place_design(sub.fat, fat_lef, popts);
  return FatDesign{wlib, std::move(sub.fat), std::move(fat_lef),
                   std::move(placed)};
}

/// Fat L-routing + decomposition across design sizes (differential pairs =
/// fat nets).  The maze router is exercised separately at small scale.
void BM_FatRouteAndDecompose(benchmark::State& state) {
  const FatDesign d = make_fat(static_cast<int>(state.range(0)));
  const Process018 pr;
  std::int64_t pairs = 0;
  for (auto _ : state) {
    DefDesign def = d.placed;
    route_design_quick(d.fat, d.fat_lef, def);
    DefDesign diff = decompose_interconnect(
        def, um_to_dbu(pr.wire_pitch_um), um_to_dbu(pr.wire_width_um));
    pairs = static_cast<std::int64_t>(def.nets.size());
    benchmark::DoNotOptimize(diff.nets.size());
  }
  state.counters["diff_pairs"] = static_cast<double>(pairs);
}
BENCHMARK(BM_FatRouteAndDecompose)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(48)
    ->Unit(benchmark::kMillisecond);

/// Conflict-free maze routing at module scale (the DES design example).
void BM_MazeRouteDesModule(benchmark::State& state) {
  auto lib = builtin_stdcell018();
  Netlist rtl = technology_map(make_des_dpa_circuit(), lib,
                               wddl_synth_constraints());
  auto wlib = std::make_shared<WddlLibrary>(lib);
  SubstitutionResult sub = substitute_cells(rtl, *wlib);
  LefGenOptions fat_gen;
  fat_gen.wire_scale = 2.0;
  LefLibrary fat_lef = generate_lef(*wlib->fat_library(), fat_gen);
  const DefDesign placed = place_design(sub.fat, fat_lef);
  for (auto _ : state) {
    DefDesign def = placed;
    const RouteStats rs = route_design(sub.fat, fat_lef, def);
    benchmark::DoNotOptimize(rs.wirelength_dbu);
    state.counters["pairs"] = static_cast<double>(rs.nets_routed);
    state.counters["iterations"] = rs.iterations;
  }
}
BENCHMARK(BM_MazeRouteDesModule)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
