#include "sta/sta.h"

#include <algorithm>
#include <sstream>

#include "base/error.h"

namespace secflow {
namespace {

double net_load_ff(const Netlist& nl, NetId id, const CapTable& caps) {
  const auto it = caps.find(nl.net(id).name);
  if (it != caps.end()) return it->second;
  double c = 1.0;
  for (const PinRef& p : nl.net(id).pins) {
    const CellType& type = nl.cell_of(p.inst);
    const PinDef& pin = type.pins[static_cast<std::size_t>(p.pin)];
    if (pin.dir == PinDir::kInput) c += pin.cap_ff;
  }
  return c;
}

}  // namespace

TimingReport analyze_timing(const Netlist& nl, const CapTable& caps,
                            const TimingOptions& opts) {
  TimingReport report;
  const std::size_t n = nl.n_nets();
  report.net_arrival_ps.assign(n, 0.0);
  // Who set each net's arrival (for path reconstruction).
  std::vector<InstId> net_driver(n);
  std::vector<NetId> net_prev(n);

  // Sources: input ports and sequential/constant outputs.
  for (PortId pid : nl.port_ids()) {
    const Port& p = nl.port(pid);
    if (p.dir != PinDir::kInput) continue;
    report.net_arrival_ps[p.net.index()] = opts.input_delay_ps;
  }
  for (InstId iid : nl.instance_ids()) {
    const CellType& type = nl.cell_of(iid);
    if (type.kind == CellKind::kCombinational) continue;
    const int out_pin = type.output_pin();
    if (out_pin < 0) continue;
    const NetId q =
        nl.instance(iid).conns[static_cast<std::size_t>(out_pin)];
    if (!q.valid()) continue;
    const double t = type.kind == CellKind::kFlop
                         ? (opts.clk_to_q_ps > 0.0 ? opts.clk_to_q_ps
                                                   : type.intrinsic_delay_ps)
                         : 0.0;
    report.net_arrival_ps[q.index()] =
        std::max(report.net_arrival_ps[q.index()], t);
    net_driver[q.index()] = iid;
  }

  // Forward propagation in topological order.
  for (InstId iid : nl.topological_order()) {
    const Instance& in = nl.instance(iid);
    const CellType& type = nl.cell_of(iid);
    if (type.kind != CellKind::kCombinational) continue;
    const int out_pin = type.output_pin();
    if (out_pin < 0) continue;
    const NetId out = in.conns[static_cast<std::size_t>(out_pin)];
    if (!out.valid()) continue;
    double worst_in = 0.0;
    NetId worst_net;
    for (int pin : type.input_pins()) {
      const NetId net = in.conns[static_cast<std::size_t>(pin)];
      if (!net.valid()) continue;
      if (report.net_arrival_ps[net.index()] >= worst_in) {
        worst_in = report.net_arrival_ps[net.index()];
        worst_net = net;
      }
    }
    const double delay =
        type.intrinsic_delay_ps + type.drive_res_kohm * net_load_ff(nl, out, caps);
    const double arrival = worst_in + delay;
    if (arrival > report.net_arrival_ps[out.index()]) {
      report.net_arrival_ps[out.index()] = arrival;
      net_driver[out.index()] = iid;
      net_prev[out.index()] = worst_net;
    }
  }

  // Endpoints: flop D pins and output ports.
  NetId worst_endpoint;
  auto consider = [&](NetId net, const std::string& name) {
    if (!net.valid()) return;
    if (report.net_arrival_ps[net.index()] > report.critical_delay_ps) {
      report.critical_delay_ps = report.net_arrival_ps[net.index()];
      report.endpoint = name;
      worst_endpoint = net;
    }
  };
  for (InstId iid : nl.instance_ids()) {
    const CellType& type = nl.cell_of(iid);
    if (type.kind != CellKind::kFlop) continue;
    consider(nl.instance(iid).conns[static_cast<std::size_t>(type.d_pin())],
             nl.instance(iid).name + "/D");
  }
  for (PortId pid : nl.port_ids()) {
    const Port& p = nl.port(pid);
    if (p.dir == PinDir::kOutput) consider(p.net, "port " + p.name);
  }

  // Critical path reconstruction.
  for (NetId net = worst_endpoint; net.valid(); net = net_prev[net.index()]) {
    PathNode node;
    node.net = nl.net(net).name;
    node.arrival_ps = report.net_arrival_ps[net.index()];
    if (net_driver[net.index()].valid()) {
      node.instance = nl.instance(net_driver[net.index()]).name;
    } else if (const auto port = nl.driving_port(net)) {
      node.instance = "<" + nl.port(*port).name + ">";
    }
    report.critical_path.push_back(node);
    if (!net_driver[net.index()].valid()) break;
    if (!net_prev[net.index()].valid()) break;
  }
  std::reverse(report.critical_path.begin(), report.critical_path.end());

  report.min_period_ps = report.critical_delay_ps;  // plus setup ~ 0 here
  return report;
}

std::string timing_report_text(const TimingReport& r) {
  std::ostringstream os;
  os << "critical delay: " << r.critical_delay_ps << " ps to " << r.endpoint
     << "\n";
  for (const PathNode& n : r.critical_path) {
    os << "  " << n.arrival_ps << " ps  net " << n.net;
    if (!n.instance.empty()) os << "  (driven by " << n.instance << ")";
    os << "\n";
  }
  return os.str();
}

}  // namespace secflow
