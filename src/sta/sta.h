// Static timing analysis over the linear delay model used by the router
// and power simulator: gate delay = intrinsic + drive_resistance * C_load.
//
// Computes arrival times from sequential/primary sources, the critical
// path, and the minimum clock period.  In the secure flow the combinational
// depth must fit the *evaluate half-cycle* (the WDDL masters capture at the
// falling edge), so the WDDL fmax check uses period/2; this analysis also
// predicts the clock-glitch detection boundary of the DFA experiment.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.h"
#include "sim/power_sim.h"

namespace secflow {

struct TimingOptions {
  /// Input-port data arrival after the active edge [ps] (matches the
  /// power simulator's input_delay_ps).
  double input_delay_ps = 100.0;
  /// Clock-to-Q of sequential sources [ps]; 0 = use each flop's intrinsic.
  double clk_to_q_ps = 0.0;
};

struct PathNode {
  std::string instance;  ///< driving instance ("<port>" for port sources)
  std::string net;
  double arrival_ps = 0.0;
};

struct TimingReport {
  double critical_delay_ps = 0.0;       ///< worst arrival at any endpoint
  std::vector<PathNode> critical_path;  ///< source -> endpoint
  std::string endpoint;                 ///< flop D or output port name
  /// Minimum clock period for a regular design [ps].
  double min_period_ps = 0.0;
  /// Arrival time per net [ps], indexed by net id.
  std::vector<double> net_arrival_ps;
};

/// Analyze `nl` with per-net loads from `caps` (falls back to pin caps for
/// missing nets, like the power simulator).
TimingReport analyze_timing(const Netlist& nl, const CapTable& caps,
                            const TimingOptions& opts = {});

/// Render a human-readable critical-path report.
std::string timing_report_text(const TimingReport& r);

}  // namespace secflow
