// Fuzz-program AST: the differential flow-fuzzer's model of a mini-HDL
// module (synth/hdl.h subset).
//
// The fuzzer never manipulates HDL as raw text: the generator builds a
// FuzzProgram, the metamorphic transforms permute/rename it structurally,
// the minimizer shrinks it, and emit_hdl() prints the mini-HDL the flow
// actually consumes.  parse_fuzz_program() inverts emit_hdl() (for the
// emitted subset only), which makes fuzz-corpus reproducers self-contained:
// a stored .v round-trips back into the AST so a replay can re-run every
// oracle — including the metamorphic ones that need the structure.
//
// Width model: every signal is either scalar (width 1) or a [W-1:0]
// vector; expressions carry the width of their context (binary operands
// match, a mux condition and a bit-select are scalar).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace secflow {

struct FuzzExpr {
  enum class Kind { kConst, kRef, kBitSel, kNot, kAnd, kOr, kXor, kMux };

  Kind kind = Kind::kConst;
  std::uint64_t value = 0;      ///< kConst: low `width` bits
  std::string ref;              ///< kRef / kBitSel: signal name
  int bit = 0;                  ///< kBitSel: selected bit
  /// kNot: 1 child; kAnd/kOr/kXor: 2; kMux: 3 (cond, then, else).
  std::vector<FuzzExpr> kids;

  bool operator==(const FuzzExpr&) const = default;
};

/// One `assign` (comb) or one nonblocking `<=` (seq) statement.
struct FuzzStmt {
  std::string target;
  int target_bit = -1;  ///< -1 = whole signal, else single-bit assignment
  FuzzExpr rhs;

  bool operator==(const FuzzStmt&) const = default;
};

struct FuzzSignal {
  std::string name;
  int width = 1;

  bool operator==(const FuzzSignal&) const = default;
};

struct FuzzProgram {
  std::string name = "fz";
  std::vector<FuzzSignal> ports_in;   ///< data inputs (clk is implicit)
  std::vector<FuzzSignal> ports_out;
  std::vector<FuzzSignal> wires;
  std::vector<FuzzSignal> regs;
  bool has_clk = false;        ///< emit the clk port (required when regs)
  bool split_always = false;   ///< one always block per seq statement
  std::vector<FuzzStmt> comb;  ///< assign statements, emission order
  std::vector<FuzzStmt> seq;   ///< nonblocking statements, emission order

  bool operator==(const FuzzProgram&) const = default;
};

/// Print the program as mini-HDL (one declaration/statement per line).
std::string emit_hdl(const FuzzProgram& p);

/// Lines of emit_hdl() output — the minimizer's size objective and the
/// "reproducer of N HDL lines" metric.
int hdl_line_count(const FuzzProgram& p);

/// Inverse of emit_hdl() for the emitted subset (strict: throws ParseError
/// on anything the emitter would not produce, e.g. unparenthesized binary
/// chains).  emit_hdl(parse_fuzz_program(emit_hdl(p))) == emit_hdl(p).
FuzzProgram parse_fuzz_program(const std::string& hdl);

/// Width of a declared signal; 0 when undeclared.
int signal_width(const FuzzProgram& p, const std::string& name);

// --- metamorphic transforms -------------------------------------------------
//
// Each returns a semantically equivalent variant.  rename/shuffle are
// *digest-neutral*: elaboration is demand-driven from the (unchanged)
// port/register declarations, so the AigCircuit — and with it every stage
// key of the checkpoint chain and every flow artifact — is bit-identical.
// Port permutation genuinely reorders the netlist's ports (the artifacts
// differ byte-wise), so its oracle is logical equivalence instead.

/// Rename every wire (ports, regs and the module name stay — those names
/// are part of the artifacts).
FuzzProgram rename_wires(const FuzzProgram& p, std::uint64_t seed);

/// Permute assign order, nonblocking-assignment order, wire-declaration
/// order, and toggle whether the always block is emitted split.
FuzzProgram shuffle_statements(const FuzzProgram& p, std::uint64_t seed);

/// Permute the input and output port declaration orders.
FuzzProgram permute_ports(const FuzzProgram& p, std::uint64_t seed);

}  // namespace secflow
