// Deliberate bug injection for fuzzer self-tests.
//
// The oracle catalogue is only trustworthy if it demonstrably *fails* when
// the flow is broken.  Each FaultKind plants one representative class of
// backend bug into a specific intermediate artifact; the fuzz tests assert
// the battery catches each one and that the minimizer shrinks the
// triggering design.  kNone is the production setting.
#pragma once

#include <string>

#include "extract/extract.h"
#include "netlist/netlist.h"

namespace secflow {

enum class FaultKind {
  kNone = 0,
  /// Cell-substitution bug: swap two input pins of a fat compound whose
  /// function is not symmetric under that swap.  The fat netlist then
  /// computes the wrong function — LEC(fat == rtl) and fat-vs-original
  /// simulation must both object.
  kSubstitutionPinSwap,
  /// Decomposition/expansion bug: cross the _t and _f driver connections
  /// of one differential rail pair.  The pair stays complementary and
  /// still switches exactly once per phase (the switching oracles stay
  /// quiet by design), but the decomposed design computes the wrong
  /// value — only the differential-vs-reference simulation catches it.
  kRailSwap,
  /// Extraction/balancing bug: add capacitance to one rail of one pair,
  /// breaking the DESIGN.md §5 matched-load bound.
  kCapImbalance,
};

/// "none" | "pin-swap" | "rail-swap" | "cap-imbalance".
const char* fault_kind_name(FaultKind k);
/// Inverse of fault_kind_name; throws Error on unknown names.
FaultKind parse_fault_kind(const std::string& name);

/// Apply kSubstitutionPinSwap to a fat netlist.  Returns a description of
/// the edit ("inst/pin_i<->pin_j"), or "" when no instance offers two
/// distinct nets on an asymmetric pin pair (the caller treats the case as
/// not-injectable and skips it).
std::string inject_pin_swap(Netlist& fat);

/// Apply kRailSwap to a differential netlist.  Returns "net_t<->net_f" or
/// "" when no instance-driven rail pair exists.
std::string inject_rail_swap(Netlist& diff);

/// Apply kCapImbalance: add `extra_ff` to the true rail of the first rail
/// pair (in deterministic net-name order) present in the extraction.
/// Returns the victim net name or "".
std::string inject_cap_imbalance(Extraction& ex, double extra_ff = 25.0);

}  // namespace secflow
