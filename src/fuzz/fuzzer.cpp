#include "fuzz/fuzzer.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "base/error.h"
#include "base/rng.h"
#include "ckpt/hash.h"
#include "fuzz/generator.h"
#include "fuzz/minimize.h"
#include "obs/json.h"

namespace secflow {
namespace {

/// Oracles that need opts.deep to run at all; a failure in one forces the
/// minimizer to re-run full flows per predicate evaluation, so it gets a
/// smaller attempt budget.
bool is_deep_oracle(const std::string& oracle) {
  return oracle == "secure-flow" || oracle == "flow-thread-obs-invariance" ||
         oracle == "wddl-cap-mismatch";
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot read '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw Error("cannot write '" + path + "'");
  out << content;
  SECFLOW_CHECK(out.good(), "write to '" + path + "' failed");
}

JsonValue oracle_options_json(const OracleOptions& o) {
  JsonValue j = JsonValue::object();
  j.set("seed", hash_hex(o.seed));
  j.set("n_vectors", o.n_vectors);
  j.set("n_cycles", o.n_cycles);
  j.set("cap_worst_ff", o.cap_worst_ff);
  j.set("cap_mean_ff", o.cap_mean_ff);
  j.set("deep", o.deep);
  j.set("inject", fault_kind_name(o.inject));
  return j;
}

OracleOptions oracle_options_from_json(const JsonValue& j) {
  OracleOptions o;
  const JsonValue* v = nullptr;
  SECFLOW_CHECK((v = j.find("seed")) && v->is_string(), "repro: bad seed");
  o.seed = parse_hash_hex(v->as_string());
  SECFLOW_CHECK((v = j.find("n_vectors")) && v->is_number(),
                "repro: bad n_vectors");
  o.n_vectors = static_cast<int>(v->as_number());
  SECFLOW_CHECK((v = j.find("n_cycles")) && v->is_number(),
                "repro: bad n_cycles");
  o.n_cycles = static_cast<int>(v->as_number());
  SECFLOW_CHECK((v = j.find("cap_worst_ff")) && v->is_number(),
                "repro: bad cap_worst_ff");
  o.cap_worst_ff = v->as_number();
  SECFLOW_CHECK((v = j.find("cap_mean_ff")) && v->is_number(),
                "repro: bad cap_mean_ff");
  o.cap_mean_ff = v->as_number();
  SECFLOW_CHECK((v = j.find("deep")) && v->is_bool(), "repro: bad deep");
  o.deep = v->as_bool();
  SECFLOW_CHECK((v = j.find("inject")) && v->is_string(), "repro: bad inject");
  o.inject = parse_fault_kind(v->as_string());
  return o;
}

}  // namespace

std::string write_repro_json(const FuzzProgram& original,
                             const FuzzProgram& minimized,
                             const FuzzCaseResult& c, const FuzzOptions& opts,
                             std::uint64_t battery_digest) {
  OracleOptions oracle_opts = opts.oracles;
  oracle_opts.seed = c.design_seed;
  oracle_opts.deep = is_deep_oracle(c.oracle);
  oracle_opts.inject = opts.inject;

  JsonValue j = JsonValue::object();
  j.set("schema", "secflow.fuzz-repro/1");
  j.set("run_seed", hash_hex(opts.seed));
  j.set("index", c.index);
  j.set("design_seed", hash_hex(c.design_seed));
  j.set("oracle", c.oracle);
  j.set("detail", c.detail);
  j.set("oracle_options", oracle_options_json(oracle_opts));
  j.set("battery_digest", hash_hex(battery_digest));
  j.set("hdl", emit_hdl(original));
  j.set("minimized_hdl", emit_hdl(minimized));
  j.set("minimized_lines", hdl_line_count(minimized));
  return json_dump(j, 2) + "\n";
}

FuzzRunResult run_fuzz(const FuzzOptions& opts) {
  SECFLOW_CHECK(opts.count > 0, "fuzz: count must be positive");
  FuzzRunResult run;
  for (int i = 0; i < opts.count; ++i) {
    FuzzCaseResult c;
    c.index = i;
    c.design_seed = Rng::stream(opts.seed, static_cast<std::uint64_t>(i))
                        .next_u64();
    const FuzzProgram program = generate_program(c.design_seed);

    OracleOptions oracle_opts = opts.oracles;
    oracle_opts.seed = c.design_seed;
    oracle_opts.deep = opts.deep_every > 0 && i % opts.deep_every == 0;
    oracle_opts.inject = opts.inject;

    const OracleReport rep = run_oracle_battery(program, oracle_opts);
    if (!rep.injectable) {
      // The requested fault has no site in this design (e.g. pin-swap on a
      // design mapping to symmetric gates only) — not a pass, not a fail.
      c.skipped = true;
      ++run.n_skipped;
      run.cases.push_back(std::move(c));
      continue;
    }
    if (rep.all_ok()) {
      ++run.n_ok;
      run.cases.push_back(std::move(c));
      continue;
    }

    const OracleVerdict* fail = rep.first_failure();
    c.ok = false;
    c.oracle = fail->oracle;
    c.detail = fail->detail;
    ++run.n_failed;

    // Shrink while the same oracle keeps failing (and the fault, when one
    // is planted, keeps finding a site).
    OracleOptions pred_opts = oracle_opts;
    pred_opts.deep = is_deep_oracle(c.oracle);
    const auto still_fails = [&](const FuzzProgram& cand) {
      try {
        const OracleReport r = run_oracle_battery(cand, pred_opts);
        if (!r.injectable) return false;
        const OracleVerdict* f = r.first_failure();
        return f != nullptr && f->oracle == c.oracle;
      } catch (const std::exception&) {
        return false;
      }
    };
    FuzzProgram minimized = program;
    if (opts.minimize) {
      MinimizeOptions mopts;
      mopts.max_attempts = pred_opts.deep
                               ? std::max(1, opts.minimize_attempts / 10)
                               : opts.minimize_attempts;
      minimized = minimize_program(program, still_fails, mopts).program;
    }
    c.minimized_lines = hdl_line_count(minimized);

    const std::uint64_t digest =
        run_oracle_battery(minimized, pred_opts).digest();
    std::filesystem::create_directories(opts.corpus_dir);
    const std::string stem = opts.corpus_dir + "/repro-" +
                             hash_hex(opts.seed) + "-" + std::to_string(i);
    write_file(stem + ".v", emit_hdl(minimized));
    write_file(stem + ".json",
               write_repro_json(program, minimized, c, opts, digest));
    c.repro_path = stem + ".json";
    run.cases.push_back(std::move(c));
    if (opts.stop_on_failure) break;
  }
  return run;
}

ReplayResult replay_repro(const std::string& path) {
  const JsonValue j = json_parse(read_file(path));
  const JsonValue* schema = j.find("schema");
  SECFLOW_CHECK(schema && schema->is_string() &&
                    schema->as_string() == "secflow.fuzz-repro/1",
                "'" + path + "' is not a secflow.fuzz-repro/1 document");
  const JsonValue* hdl = j.find("minimized_hdl");
  SECFLOW_CHECK(hdl && hdl->is_string(), "repro: missing minimized_hdl");
  const JsonValue* oo = j.find("oracle_options");
  SECFLOW_CHECK(oo && oo->is_object(), "repro: missing oracle_options");
  const JsonValue* stored = j.find("battery_digest");
  SECFLOW_CHECK(stored && stored->is_string(),
                "repro: missing battery_digest");

  const FuzzProgram program = parse_fuzz_program(hdl->as_string());
  const OracleReport rep =
      run_oracle_battery(program, oracle_options_from_json(*oo));

  ReplayResult res;
  res.stored_digest = parse_hash_hex(stored->as_string());
  res.replayed_digest = rep.digest();
  res.digest_match = res.stored_digest == res.replayed_digest;
  const OracleVerdict* fail = rep.first_failure();
  res.still_fails = fail != nullptr && rep.injectable;
  if (fail) res.oracle = fail->oracle;
  return res;
}

}  // namespace secflow
