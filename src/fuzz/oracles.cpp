#include "fuzz/oracles.h"

#include <optional>
#include <utility>

#include "base/error.h"
#include "base/rng.h"
#include "campaign/campaign.h"
#include "ckpt/fingerprint.h"
#include "ckpt/hash.h"
#include "flow/flow.h"
#include "fuzz/generator.h"
#include "liberty/builtin_lib.h"
#include "lec/lec.h"
#include "netlist/netlist_ops.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "synth/hdl.h"
#include "synth/techmap.h"
#include "wddl/cell_substitution.h"
#include "wddl/wddl_library.h"

namespace secflow {

bool OracleReport::all_ok() const {
  for (const auto& v : verdicts)
    if (!v.ok) return false;
  return true;
}

const OracleVerdict* OracleReport::first_failure() const {
  for (const auto& v : verdicts)
    if (!v.ok) return &v;
  return nullptr;
}

std::uint64_t OracleReport::digest() const {
  Hasher h;
  h.add("secflow.fuzz-battery/1");
  for (const auto& v : verdicts) h.add(v.oracle).add(v.ok).add(v.detail);
  h.add(injected_edit).add(injectable);
  return h.digest();
}

namespace {

std::vector<std::string> blast(const FuzzSignal& s) {
  if (s.width == 1) return {s.name};
  std::vector<std::string> out;
  for (int b = 0; b < s.width; ++b)
    out.push_back(s.name + "_" + std::to_string(b));
  return out;
}

std::vector<std::string> input_bits(const FuzzProgram& p) {
  std::vector<std::string> out;
  for (const auto& s : p.ports_in)
    for (auto& n : blast(s)) out.push_back(std::move(n));
  return out;
}

std::vector<std::string> output_bits(const FuzzProgram& p) {
  std::vector<std::string> out;
  for (const auto& s : p.ports_out)
    for (auto& n : blast(s)) out.push_back(std::move(n));
  return out;
}

/// The single-ended artifacts of one program, built the way the secure
/// flow's front half builds them (same synthesis constraints).
struct Built {
  AigCircuit circuit;
  Netlist rtl;
  Netlist fat;
  Netlist diff;
};

Built build_artifacts(const FuzzProgram& p, WddlLibrary& wlib,
                      FaultKind inject, std::string* edit, bool* injectable) {
  AigCircuit circuit = parse_hdl(emit_hdl(p));
  Netlist rtl =
      technology_map(circuit, wlib.base_library(), wddl_synth_constraints());
  SubstitutionResult sub = substitute_cells(rtl, wlib);
  Netlist fat = std::move(sub.fat);
  if (inject == FaultKind::kSubstitutionPinSwap) {
    *edit = inject_pin_swap(fat);
    if (edit->empty()) *injectable = false;
  }
  Netlist diff = expand_differential(fat, wlib);
  if (inject == FaultKind::kRailSwap) {
    *edit = inject_rail_swap(diff);
    if (edit->empty()) *injectable = false;
  }
  return Built{std::move(circuit), std::move(rtl), std::move(fat),
               std::move(diff)};
}

/// Full digest chain of a circuit: its fingerprint plus both flows' stage
/// key chains under default options.
struct DigestChain {
  std::uint64_t circuit_fp = 0;
  std::array<std::uint64_t, kNumFlowStages> regular{};
  std::array<std::uint64_t, kNumFlowStages> secure{};
  bool operator==(const DigestChain&) const = default;
};

DigestChain digest_chain(const AigCircuit& c, const CellLibrary& lib) {
  DigestChain d;
  d.circuit_fp = fingerprint(c);
  const FlowOptions opts;
  d.regular = compute_stage_keys(FlowKind::kRegular, c, lib, opts);
  d.secure = compute_stage_keys(FlowKind::kSecure, c, lib, opts);
  return d;
}

OracleVerdict digest_neutral_oracle(const std::string& name,
                                    const FuzzProgram& variant,
                                    const DigestChain& base,
                                    const CellLibrary& lib) {
  OracleVerdict v{name, true, ""};
  try {
    const DigestChain got = digest_chain(parse_hdl(emit_hdl(variant)), lib);
    if (!(got == base)) {
      v.ok = false;
      v.detail = "stage key chain changed (circuit fp " +
                 hash_hex(base.circuit_fp) + " -> " +
                 hash_hex(got.circuit_fp) + ")";
    }
  } catch (const std::exception& e) {
    v.ok = false;
    v.detail = std::string("variant failed to elaborate: ") + e.what();
  }
  return v;
}

std::string lec_detail(const LecResult& r) {
  if (r.equivalent) return "";
  std::string d = "not equivalent (" + std::to_string(r.mismatches.size()) +
                  " mismatches";
  if (!r.mismatches.empty())
    d += "; first: " + r.mismatches.front().what + " @ " +
         r.mismatches.front().counterexample;
  return d + ")";
}

/// Resolve bit-blasted port names on a netlist once, so per-vector loops
/// use the id-based sim API instead of hashing names every cycle.
std::vector<PortId> resolve_ports(const Netlist& nl,
                                  const std::vector<std::string>& names) {
  std::vector<PortId> ids;
  ids.reserve(names.size());
  for (const auto& n : names) {
    const PortId pid = nl.find_port(n);
    SECFLOW_CHECK(pid.valid(), "unknown port: " + n);
    ids.push_back(pid);
  }
  return ids;
}

/// Fat-vs-original lockstep simulation over random vectors (sequential
/// designs advance the clock between vectors, so state diverges too).
OracleVerdict sim_agreement_oracle(const FuzzProgram& p, const Netlist& rtl,
                                   const Netlist& fat,
                                   const OracleOptions& opts) {
  OracleVerdict v{"cross-sim-fat-rtl", true, ""};
  const auto ins = input_bits(p);
  const auto outs = output_bits(p);
  const auto a_ins = resolve_ports(rtl, ins);
  const auto b_ins = resolve_ports(fat, ins);
  const auto a_outs = resolve_ports(rtl, outs);
  const auto b_outs = resolve_ports(fat, outs);
  FunctionalSim a(rtl);
  FunctionalSim b(fat);
  a.propagate();
  b.propagate();
  Rng rng = Rng::stream(opts.seed, 1);
  const bool seq = !p.regs.empty();
  for (int i = 0; i < opts.n_vectors && v.ok; ++i) {
    for (std::size_t k = 0; k < ins.size(); ++k) {
      const bool bit = rng.next_bool();
      a.set_input(a_ins[k], bit);
      b.set_input(b_ins[k], bit);
    }
    a.propagate();
    b.propagate();
    for (std::size_t k = 0; k < outs.size(); ++k) {
      if (a.output(a_outs[k]) != b.output(b_outs[k])) {
        v.ok = false;
        v.detail = "vector " + std::to_string(i) + ": output " + outs[k] +
                   " rtl=" + std::to_string(a.output(a_outs[k])) +
                   " fat=" + std::to_string(b.output(b_outs[k]));
        break;
      }
    }
    if (seq) {
      a.step_clock();
      b.step_clock();
    }
  }
  return v;
}

/// The differential-netlist security battery, one simulation shared by
/// three oracles: precharge-zero, rails-one-hot (exactly one switching
/// event per pair per phase) and lockstep agreement with the single-ended
/// reference.
std::vector<OracleVerdict> wddl_sim_oracles(const FuzzProgram& p,
                                            const Netlist& rtl,
                                            const Netlist& diff,
                                            const OracleOptions& opts) {
  OracleVerdict pre{"wddl-precharge-zero", true, ""};
  OracleVerdict hot{"wddl-rails-one-hot", true, ""};
  OracleVerdict agree{"wddl-seq-agreement", true, ""};

  const auto ins = input_bits(p);
  const auto outs = output_bits(p);
  const bool seq = !p.regs.empty();
  const PortId diff_clk = diff.find_port("clk");

  // Resolve every rail/reference port once; the per-cycle lambdas below
  // run on ids only.
  std::vector<PortId> in_t(ins.size()), in_f(ins.size());
  for (std::size_t i = 0; i < ins.size(); ++i) {
    in_t[i] = diff.find_port(ins[i] + "_t");
    in_f[i] = diff.find_port(ins[i] + "_f");
    SECFLOW_CHECK(in_t[i].valid() && in_f[i].valid(),
                  "missing rail ports: " + ins[i]);
  }
  std::vector<PortId> out_t(outs.size()), out_f(outs.size());
  for (std::size_t i = 0; i < outs.size(); ++i) {
    out_t[i] = diff.find_port(outs[i] + "_t");
    out_f[i] = diff.find_port(outs[i] + "_f");
    SECFLOW_CHECK(out_t[i].valid() && out_f[i].valid(),
                  "missing rail ports: " + outs[i]);
  }
  const auto ref_ins = resolve_ports(rtl, ins);
  const auto ref_outs = resolve_ports(rtl, outs);

  // Differential rail pairs, in deterministic net-id order.
  std::vector<std::pair<NetId, NetId>> pairs;
  for (NetId id : diff.net_ids()) {
    const std::string& name = diff.net(id).name;
    if (name.size() < 2 || name.compare(name.size() - 2, 2, "_t") != 0)
      continue;
    const NetId f = diff.find_net(name.substr(0, name.size() - 2) + "_f");
    if (f.valid()) pairs.emplace_back(id, f);
  }

  FunctionalSim ref(rtl);
  ref.propagate();
  FunctionalSim sim(diff);
  if (seq) {
    // WDDL registers power up in the invalid (0,0) rail state; start every
    // false-rail master/slave at 1 = a valid differential 0, matching the
    // reference sim's all-zero reset state.
    for (InstId id : diff.instance_ids()) {
      if (diff.cell_of(id).kind != CellKind::kFlop) continue;
      const std::string& name = diff.instance(id).name;
      if (name.ends_with("_f_mst") || name.ends_with("_f_slv"))
        sim.set_flop_state(id, true);
    }
  }

  auto drive_eval = [&](const std::vector<bool>& v) {
    if (diff_clk.valid()) sim.set_input(diff_clk, true);
    for (std::size_t i = 0; i < ins.size(); ++i) {
      sim.set_input(in_t[i], v[i]);
      sim.set_input(in_f[i], !v[i]);
    }
    sim.propagate();
  };
  auto drive_precharge = [&] {
    if (diff_clk.valid()) sim.set_input(diff_clk, false);
    for (std::size_t i = 0; i < ins.size(); ++i) {
      sim.set_input(in_t[i], false);
      sim.set_input(in_f[i], false);
    }
    sim.propagate();
  };
  auto compare_outputs = [&](int cycle, const std::vector<bool>& v) {
    if (!agree.ok) return;
    for (std::size_t i = 0; i < ins.size(); ++i) ref.set_input(ref_ins[i], v[i]);
    ref.propagate();
    for (std::size_t i = 0; i < outs.size(); ++i) {
      const bool want = ref.output(ref_outs[i]);
      if (sim.output(out_t[i]) != want || sim.output(out_f[i]) != !want) {
        agree.ok = false;
        agree.detail = "cycle " + std::to_string(cycle) + ": output " +
                       outs[i] + " ref=" + std::to_string(want) + " rails=(" +
                       std::to_string(sim.output(out_t[i])) + "," +
                       std::to_string(sim.output(out_f[i])) + ")";
        return;
      }
    }
  };

  Rng rng = Rng::stream(opts.seed, 2);
  // Initial evaluate phase carries the all-zero vector.
  std::vector<bool> v(ins.size(), false);
  drive_eval(v);
  compare_outputs(0, v);
  if (seq) ref.step_clock();

  for (int cycle = 1; cycle <= opts.n_cycles; ++cycle) {
    for (std::size_t i = 0; i < ins.size(); ++i) v[i] = rng.next_bool();
    // Falling edge: masters capture the settled evaluate rails.
    if (seq) sim.step_edge(false);
    drive_precharge();
    if (pre.ok) {
      for (const auto& [t, f] : pairs) {
        if (sim.net_value(t) || sim.net_value(f)) {
          pre.ok = false;
          pre.detail = "cycle " + std::to_string(cycle) + ": pair " +
                       diff.net(t).name + " not precharged (" +
                       std::to_string(sim.net_value(t)) + "," +
                       std::to_string(sim.net_value(f)) + ")";
          break;
        }
      }
    }
    if (seq) sim.step_edge(true);
    drive_eval(v);
    if (hot.ok) {
      // Both rails left precharge at 0, so "exactly one high now" is
      // exactly one switching event this evaluate phase (and the matching
      // single fall next precharge): the 100% switching factor.
      for (const auto& [t, f] : pairs) {
        if (sim.net_value(t) == sim.net_value(f)) {
          hot.ok = false;
          hot.detail = "cycle " + std::to_string(cycle) + ": pair " +
                       diff.net(t).name + " rails both " +
                       std::to_string(sim.net_value(t));
          break;
        }
      }
    }
    compare_outputs(cycle, v);
    if (seq) ref.step_clock();
  }
  return {std::move(pre), std::move(hot), std::move(agree)};
}

/// Deep tier: two full secure-flow runs (serial vs 2 threads with tracing
/// and metrics enabled) must produce byte-identical artifacts, and the
/// extracted differential layout must satisfy the §5 matched-load bound.
std::vector<OracleVerdict> deep_flow_oracles(
    const Built& built, const std::shared_ptr<const CellLibrary>& base,
    const OracleOptions& opts, std::string* edit, bool* injectable) {
  std::vector<OracleVerdict> out;
  FlowOptions fopts;
  fopts.parallelism.n_threads = 1;
  std::optional<SecureFlowResult> r1;
  try {
    r1.emplace(run_secure_flow(built.circuit, base, fopts));
  } catch (const Error& e) {
    const std::string what = e.what();
    if (what.find("does not fit the evaluate half-cycle") !=
        std::string::npos) {
      // Correct rejection of a timing-infeasible design, not a bug.
      out.push_back({"secure-flow", true, "skipped: timing-infeasible"});
      return out;
    }
    out.push_back({"secure-flow", false, what});
    return out;
  }

  {
    OracleVerdict v{"flow-thread-obs-invariance", true, ""};
    try {
      FlowOptions fopts2 = fopts;
      fopts2.parallelism.n_threads = 2;
      Tracer::global().set_enabled(true);
      Metrics::global().set_enabled(true);
      SecureFlowResult r2 = run_secure_flow(built.circuit, base, fopts2);
      Tracer::global().set_enabled(false);
      Metrics::global().set_enabled(false);
      const auto d1 = artifact_digests(*r1);
      const auto d2 = artifact_digests(r2);
      if (d1 != d2) {
        v.ok = false;
        for (std::size_t i = 0; i < d1.size() && i < d2.size(); ++i) {
          if (d1[i] != d2[i]) {
            v.detail = "artifact " + d1[i].first + " differs: " +
                       d1[i].second + " vs " + d2[i].second;
            break;
          }
        }
        if (v.detail.empty()) v.detail = "artifact lists differ in length";
      }
    } catch (const std::exception& e) {
      Tracer::global().set_enabled(false);
      Metrics::global().set_enabled(false);
      v.ok = false;
      v.detail = std::string("second run failed: ") + e.what();
    }
    out.push_back(std::move(v));
  }

  {
    OracleVerdict v{"wddl-cap-mismatch", true, ""};
    Extraction ex = r1->extraction;
    if (opts.inject == FaultKind::kCapImbalance) {
      *edit = inject_cap_imbalance(ex);
      if (edit->empty()) *injectable = false;
    }
    const auto mm = rail_mismatch_ff(ex);
    double worst = 0.0, sum = 0.0;
    std::string worst_net;
    for (const auto& [net, m] : mm) {
      sum += m;
      if (m > worst) {
        worst = m;
        worst_net = net;
      }
    }
    const double mean = mm.empty() ? 0.0 : sum / static_cast<double>(mm.size());
    if (worst >= opts.cap_worst_ff || mean >= opts.cap_mean_ff) {
      v.ok = false;
      v.detail = "pair " + worst_net + " worst " + std::to_string(worst) +
                 " fF (bound " + std::to_string(opts.cap_worst_ff) +
                 "), mean " + std::to_string(mean) + " fF (bound " +
                 std::to_string(opts.cap_mean_ff) + ")";
    }
    out.push_back(std::move(v));
  }
  return out;
}

}  // namespace

OracleReport run_oracle_battery(const FuzzProgram& p,
                                const OracleOptions& opts) {
  OracleReport rep;
  auto base = builtin_stdcell018();
  WddlLibrary wlib(base);

  std::optional<Built> built;
  try {
    built.emplace(build_artifacts(p, wlib, opts.inject, &rep.injected_edit,
                                  &rep.injectable));
  } catch (const std::exception& e) {
    rep.verdicts.push_back(
        {"pipeline", false, std::string("exception: ") + e.what()});
    return rep;
  }

  // --- tier 1: metamorphic ---------------------------------------------------
  try {
    const DigestChain chain = digest_chain(built->circuit, *base);
    rep.verdicts.push_back(
        digest_neutral_oracle("metamorphic-rename-digest",
                              rename_wires(p, opts.seed ^ 0x11), chain, *base));
    rep.verdicts.push_back(digest_neutral_oracle(
        "metamorphic-shuffle-digest", shuffle_statements(p, opts.seed ^ 0x22),
        chain, *base));
  } catch (const std::exception& e) {
    rep.verdicts.push_back({"metamorphic-rename-digest", false,
                            std::string("exception: ") + e.what()});
  }
  {
    // Port permutation reorders the netlist boundary, so artifacts may
    // legitimately differ byte-wise; the invariant is logical equivalence
    // under the name-based correspondence.
    OracleVerdict v{"metamorphic-port-permutation", true, ""};
    try {
      const FuzzProgram variant = permute_ports(p, opts.seed ^ 0x33);
      const Netlist vrtl = technology_map(parse_hdl(emit_hdl(variant)),
                                          base, wddl_synth_constraints());
      v.detail = lec_detail(check_equivalence(vrtl, built->rtl));
      v.ok = v.detail.empty();
    } catch (const std::exception& e) {
      v.ok = false;
      v.detail = std::string("exception: ") + e.what();
    }
    rep.verdicts.push_back(std::move(v));
  }

  // --- tier 3: cross-checks (cheap ones before the simulations) -------------
  {
    OracleVerdict v{"cross-lec-fat-rtl", true, ""};
    try {
      v.detail = lec_detail(check_equivalence(built->fat, built->rtl));
      v.ok = v.detail.empty();
    } catch (const std::exception& e) {
      v.ok = false;
      v.detail = std::string("exception: ") + e.what();
    }
    rep.verdicts.push_back(std::move(v));
  }
  try {
    rep.verdicts.push_back(
        sim_agreement_oracle(p, built->rtl, built->fat, opts));
  } catch (const std::exception& e) {
    rep.verdicts.push_back(
        {"cross-sim-fat-rtl", false, std::string("exception: ") + e.what()});
  }

  // --- tier 2: security invariants on the differential netlist --------------
  try {
    for (auto& v : wddl_sim_oracles(p, built->rtl, built->diff, opts))
      rep.verdicts.push_back(std::move(v));
  } catch (const std::exception& e) {
    rep.verdicts.push_back(
        {"wddl-sim", false, std::string("exception: ") + e.what()});
  }

  // --- deep tier: full flow --------------------------------------------------
  if (opts.deep) {
    try {
      for (auto& v : deep_flow_oracles(*built, base, opts, &rep.injected_edit,
                                       &rep.injectable))
        rep.verdicts.push_back(std::move(v));
    } catch (const std::exception& e) {
      rep.verdicts.push_back(
          {"secure-flow", false, std::string("exception: ") + e.what()});
    }
  }
  return rep;
}

}  // namespace secflow
