#include "fuzz/generator.h"

#include <string>
#include <vector>

#include "base/error.h"
#include "base/rng.h"

namespace secflow {
namespace {

/// A signal the expression builder may reference, with the rank barrier
/// that prevents combinational loops: the assign producing rank r may only
/// read signals of rank < r.  Inputs and registers are rank 0 (a register
/// read is the *previous* cycle's value, so reading it never forms a
/// combinational cycle).
struct Avail {
  std::string name;
  int width = 1;
  int rank = 0;
};

class Generator {
 public:
  Generator(std::uint64_t seed, const GeneratorOptions& opts)
      : rng_(Rng::stream(seed, 0x66757a7aull /* "fuzz" */)), opts_(opts) {}

  FuzzProgram run() {
    FuzzProgram p;
    p.name = "fz";
    width_ = 2 + static_cast<int>(rng_.next_below(
                     static_cast<std::uint64_t>(opts_.max_width - 1)));
    const bool sequential = rng_.next_double() < opts_.seq_bias;
    const bool has_reset =
        sequential && rng_.next_double() < opts_.reset_bias;

    const int n_in = opts_.min_inputs +
                     static_cast<int>(rng_.next_below(static_cast<std::uint64_t>(
                         opts_.max_inputs - opts_.min_inputs + 1)));
    if (has_reset) {
      p.ports_in.push_back({"rst", 1});
      avail_.push_back({"rst", 1, 0});
    }
    for (int i = 0; i < n_in; ++i) {
      FuzzSignal s{"in" + std::to_string(i), pick_width()};
      avail_.push_back({s.name, s.width, 0});
      p.ports_in.push_back(std::move(s));
    }

    const int n_regs =
        sequential ? 1 + static_cast<int>(rng_.next_below(
                             static_cast<std::uint64_t>(opts_.max_regs)))
                   : 0;
    for (int i = 0; i < n_regs; ++i) {
      FuzzSignal s{"r" + std::to_string(i), pick_width()};
      avail_.push_back({s.name, s.width, 0});
      p.regs.push_back(std::move(s));
    }
    p.has_clk = n_regs > 0;

    // Wires at ranks 1..n_wires: wire k may read anything of lower rank.
    const int n_wires = static_cast<int>(
        rng_.next_below(static_cast<std::uint64_t>(opts_.max_wires + 1)));
    for (int i = 0; i < n_wires; ++i) {
      FuzzSignal s{"w" + std::to_string(i), pick_width()};
      drive(p, s, /*max_rank=*/i + 1, /*seq=*/false);
      avail_.push_back({s.name, s.width, i + 1});
      p.wires.push_back(std::move(s));
    }

    // Outputs sit above every wire; they may read anything.
    const int top = n_wires + 1;
    const int n_out = 1 + static_cast<int>(rng_.next_below(
                              static_cast<std::uint64_t>(opts_.max_outputs)));
    for (int i = 0; i < n_out; ++i) {
      FuzzSignal s{"out" + std::to_string(i), pick_width()};
      drive(p, s, top, /*seq=*/false);
      p.ports_out.push_back(std::move(s));
    }

    // Register next-state logic; a reset design clears under rst.
    for (const auto& r : p.regs) {
      FuzzExpr next = expr(r.width, top, opts_.max_depth);
      if (has_reset) {
        FuzzExpr mux;
        mux.kind = FuzzExpr::Kind::kMux;
        mux.kids.push_back(ref_expr("rst", 1));
        mux.kids.push_back(const_expr(0, r.width));
        mux.kids.push_back(std::move(next));
        next = std::move(mux);
      }
      p.seq.push_back({r.name, -1, std::move(next)});
    }
    p.split_always = !p.seq.empty() && rng_.next_bool();
    return p;
  }

 private:
  int pick_width() { return rng_.next_below(3) == 0 ? 1 : width_; }

  /// Emit the assign(s) driving `s`: usually one whole-signal assign,
  /// sometimes one assign per bit (bit-granular driving is a distinct
  /// elaboration path worth fuzzing).
  void drive(FuzzProgram& p, const FuzzSignal& s, int max_rank, bool seq) {
    auto& list = seq ? p.seq : p.comb;
    if (s.width > 1 && rng_.next_below(4) == 0) {
      for (int b = 0; b < s.width; ++b)
        list.push_back({s.name, b, expr(1, max_rank, opts_.max_depth)});
    } else {
      list.push_back({s.name, -1, expr(s.width, max_rank, opts_.max_depth)});
    }
  }

  FuzzExpr const_expr(std::uint64_t value, int width) {
    FuzzExpr e;
    e.kind = FuzzExpr::Kind::kConst;
    e.bit = width;
    e.value = value & ((width >= 64) ? ~0ull : ((1ull << width) - 1));
    return e;
  }

  FuzzExpr ref_expr(const std::string& name, int /*width*/) {
    FuzzExpr e;
    e.kind = FuzzExpr::Kind::kRef;
    e.ref = name;
    return e;
  }

  /// A random leaf of the requested width readable below `max_rank`:
  /// a ref of matching width, a bit-select (scalar context only), or a
  /// constant as last resort.
  FuzzExpr leaf(int width, int max_rank) {
    std::vector<const Avail*> full, wide;
    for (const auto& a : avail_) {
      if (a.rank >= max_rank) continue;
      if (a.width == width) full.push_back(&a);
      if (width == 1 && a.width > 1) wide.push_back(&a);
    }
    const std::size_t n = full.size() + wide.size();
    // Small constant probability keeps reconvergence interesting without
    // degenerating into constant folding.
    if (n == 0 || rng_.next_below(8) == 0)
      return const_expr(rng_.next_u64(), width);
    const std::size_t pick = rng_.next_below(n);
    if (pick < full.size()) return ref_expr(full[pick]->name, width);
    const Avail* a = wide[pick - full.size()];
    FuzzExpr e;
    e.kind = FuzzExpr::Kind::kBitSel;
    e.ref = a->name;
    e.bit = static_cast<int>(rng_.next_below(static_cast<std::uint64_t>(a->width)));
    return e;
  }

  FuzzExpr expr(int width, int max_rank, int depth) {
    if (depth <= 0 || rng_.next_below(4) == 0) return leaf(width, max_rank);
    FuzzExpr e;
    switch (rng_.next_below(5)) {
      case 0:
        e.kind = FuzzExpr::Kind::kNot;
        e.kids.push_back(expr(width, max_rank, depth - 1));
        break;
      case 1:
        e.kind = FuzzExpr::Kind::kAnd;
        break;
      case 2:
        e.kind = FuzzExpr::Kind::kOr;
        break;
      case 3:
        e.kind = FuzzExpr::Kind::kXor;
        break;
      case 4:
        e.kind = FuzzExpr::Kind::kMux;
        e.kids.push_back(expr(1, max_rank, depth - 1));
        e.kids.push_back(expr(width, max_rank, depth - 1));
        e.kids.push_back(expr(width, max_rank, depth - 1));
        return e;
    }
    if (e.kids.empty()) {  // binary ops
      e.kids.push_back(expr(width, max_rank, depth - 1));
      e.kids.push_back(expr(width, max_rank, depth - 1));
    }
    return e;
  }

  Rng rng_;
  GeneratorOptions opts_;
  int width_ = 2;        ///< the design's vector width
  std::vector<Avail> avail_;
};

}  // namespace

FuzzProgram generate_program(std::uint64_t seed, const GeneratorOptions& opts) {
  SECFLOW_CHECK(opts.max_width >= 2 && opts.max_width <= 8,
                "max_width out of range");
  SECFLOW_CHECK(opts.min_inputs >= 1 && opts.max_inputs >= opts.min_inputs,
                "bad input bounds");
  SECFLOW_CHECK(opts.max_outputs >= 1, "need at least one output");
  return Generator(seed, opts).run();
}

}  // namespace secflow
