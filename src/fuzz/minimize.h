// Delta-debugging reproducer minimizer.
//
// Given a program on which some oracle fails, shrink it while the *same*
// oracle keeps failing (checked through a caller-supplied predicate, so the
// minimizer never misattributes a new, different failure to the original
// bug).  Passes run to a fixpoint under an attempt budget: drop outputs,
// turn registers into inputs, eliminate wires, drop unused ports,
// scalarize all vectors to 1 bit, and hill-climb each expression tree down
// to a child or a constant.  Every pass keeps the program well-formed —
// a candidate that no longer elaborates simply fails the predicate.
#pragma once

#include <functional>

#include "fuzz/program.h"

namespace secflow {

struct MinimizeOptions {
  /// Upper bound on predicate evaluations (each one re-runs the oracle
  /// battery, which for deep-tier failures means full flow runs).
  int max_attempts = 2000;
};

struct MinimizeResult {
  FuzzProgram program;
  int attempts = 0;       ///< predicate evaluations spent
  int initial_lines = 0;  ///< hdl_line_count before
  int final_lines = 0;    ///< hdl_line_count after
};

/// Shrink `p` while `still_fails` holds.  `still_fails(p)` must be true on
/// entry (the unminimized reproducer).  Deterministic: same program, same
/// predicate behaviour, same result.
MinimizeResult minimize_program(
    const FuzzProgram& p,
    const std::function<bool(const FuzzProgram&)>& still_fails,
    const MinimizeOptions& opts = {});

}  // namespace secflow
