// The fuzzer's oracle catalogue.
//
// Three tiers over one generated design (DESIGN.md §12):
//
//   metamorphic   wire renaming and statement shuffling must leave the
//                 whole checkpoint digest chain bit-identical; port
//                 permutation must stay logically equivalent; thread count
//                 and observability must never change flow artifacts.
//   security      the decomposed WDDL netlist, simulated over random
//                 plaintexts: precharge drives every rail pair to (0,0),
//                 evaluation raises exactly one rail per pair (one
//                 switching event per gate per phase, complementary
//                 rails), and per-pair extracted capacitance mismatch
//                 stays under the DESIGN.md §5 bound.
//   cross-check   LEC(fat == rtl), fat-vs-original simulation agreement on
//                 random vectors, and differential-vs-reference lockstep
//                 simulation over random cycles.
//
// Every verdict is deterministic in (program, OracleOptions): details
// embed no pointers, timings or paths, so a replay reproduces the battery
// digest bit-exactly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/inject.h"
#include "fuzz/program.h"

namespace secflow {

struct OracleOptions {
  /// Randomness for test vectors and transform seeds (derived from the
  /// design seed by the fuzzer, so one seed fixes the whole case).
  std::uint64_t seed = 0;
  int n_vectors = 1000;  ///< fat-vs-original agreement vectors/cycles
  int n_cycles = 16;     ///< WDDL differential simulation cycles
  /// DESIGN.md §5 matched-load bound: worst and mean per-pair
  /// |C(n_t) - C(n_f)| over the extracted differential layout.
  double cap_worst_ff = 20.0;
  double cap_mean_ff = 1.5;
  /// Run the expensive flow-level oracles (two full secure-flow runs plus
  /// extraction analysis).  The fuzzer enables this every Nth case.
  bool deep = false;
  FaultKind inject = FaultKind::kNone;
};

struct OracleVerdict {
  std::string oracle;  ///< catalogue name, e.g. "wddl-rails-one-hot"
  bool ok = true;
  std::string detail;  ///< deterministic description; "" when ok
};

struct OracleReport {
  std::vector<OracleVerdict> verdicts;
  /// Description of the planted fault, "" when none was requested or the
  /// design offered no usable site.
  std::string injected_edit;
  /// False when a fault was requested but the design has no site for it
  /// (e.g. pin-swap on a design with only symmetric gates).
  bool injectable = true;

  bool all_ok() const;
  const OracleVerdict* first_failure() const;
  /// Order-sensitive FNV digest of (oracle, ok, detail) — the value
  /// replays compare bit-exactly.
  std::uint64_t digest() const;
};

/// Run the battery on one program.  Never throws: infrastructure
/// exceptions become failing verdicts (a crash on generated input is a
/// finding, not a fuzzer error).
OracleReport run_oracle_battery(const FuzzProgram& p,
                                const OracleOptions& opts = {});

}  // namespace secflow
