#include "fuzz/minimize.h"

#include <algorithm>
#include <set>

#include "base/error.h"

namespace secflow {
namespace {

void collect_refs(const FuzzExpr& e, std::set<std::string>& out) {
  if (!e.ref.empty()) out.insert(e.ref);
  for (const auto& k : e.kids) collect_refs(k, out);
}

/// Every signal referenced on a right-hand side or as a target.
std::set<std::string> used_signals(const FuzzProgram& p) {
  std::set<std::string> out;
  for (const auto* stmts : {&p.comb, &p.seq})
    for (const auto& st : *stmts) {
      out.insert(st.target);
      collect_refs(st.rhs, out);
    }
  return out;
}

void substitute_ref(FuzzExpr& e, const std::string& name,
                    const FuzzExpr& repl) {
  if (e.ref == name &&
      (e.kind == FuzzExpr::Kind::kRef || e.kind == FuzzExpr::Kind::kBitSel)) {
    // A bit-select of the replaced signal collapses to the replacement
    // only when the replacement is scalar-compatible; the caller passes a
    // constant, which we re-width here.
    FuzzExpr r = repl;
    if (e.kind == FuzzExpr::Kind::kBitSel && r.kind == FuzzExpr::Kind::kConst)
      r.bit = 1;
    e = std::move(r);
    return;
  }
  for (auto& k : e.kids) substitute_ref(k, name, repl);
}

FuzzExpr const0(int width) {
  FuzzExpr e;
  e.kind = FuzzExpr::Kind::kConst;
  e.bit = width;
  e.value = 0;
  return e;
}

// --- expression node addressing (pre-order) ---------------------------------

int count_nodes(const FuzzExpr& e) {
  int n = 1;
  for (const auto& k : e.kids) n += count_nodes(k);
  return n;
}

/// Pre-order node `idx` of `e`, plus the width of its context (root width
/// given by the caller; mux conditions and bit-selects are scalar).
struct NodeAt {
  FuzzExpr* node = nullptr;
  int width = 0;
};

NodeAt find_node(FuzzExpr& e, int& idx, int width) {
  if (idx == 0) return {&e, width};
  --idx;
  for (std::size_t k = 0; k < e.kids.size(); ++k) {
    const int kid_width =
        (e.kind == FuzzExpr::Kind::kMux && k == 0) ? 1 : width;
    NodeAt r = find_node(e.kids[k], idx, kid_width);
    if (r.node) return r;
  }
  return {};
}

class Minimizer {
 public:
  Minimizer(const FuzzProgram& p,
            const std::function<bool(const FuzzProgram&)>& pred,
            const MinimizeOptions& opts)
      : cur_(p), pred_(pred), opts_(opts) {}

  MinimizeResult run() {
    MinimizeResult res;
    res.initial_lines = hdl_line_count(cur_);
    bool changed = true;
    while (changed && !exhausted()) {
      changed = false;
      changed |= drop_outputs();
      changed |= regs_to_inputs();
      changed |= eliminate_wires();
      changed |= shrink_exprs();
      changed |= drop_unused_inputs();
      changed |= scalarize();
    }
    res.program = cur_;
    res.attempts = attempts_;
    res.final_lines = hdl_line_count(res.program);
    return res;
  }

 private:
  bool exhausted() const { return attempts_ >= opts_.max_attempts; }

  /// One predicate evaluation; commits `cand` when it still fails.
  bool accept(const FuzzProgram& cand) {
    if (exhausted()) return false;
    ++attempts_;
    if (!pred_(cand)) return false;
    cur_ = cand;
    return true;
  }

  bool drop_outputs() {
    bool any = false;
    for (std::size_t i = cur_.ports_out.size(); i-- > 0;) {
      if (cur_.ports_out.size() <= 1 || exhausted()) break;
      FuzzProgram cand = cur_;
      const std::string name = cand.ports_out[i].name;
      cand.ports_out.erase(cand.ports_out.begin() + i);
      std::erase_if(cand.comb,
                    [&](const FuzzStmt& st) { return st.target == name; });
      any |= accept(cand);
    }
    return any;
  }

  /// A register becomes a free input: its next-state logic disappears and
  /// every reader keeps a legal signal to read.
  bool regs_to_inputs() {
    bool any = false;
    for (std::size_t i = cur_.regs.size(); i-- > 0;) {
      if (exhausted()) break;
      FuzzProgram cand = cur_;
      FuzzSignal reg = cand.regs[i];
      cand.regs.erase(cand.regs.begin() + i);
      std::erase_if(cand.seq,
                    [&](const FuzzStmt& st) { return st.target == reg.name; });
      cand.ports_in.push_back(reg);
      if (cand.regs.empty()) {
        cand.has_clk = false;
        cand.split_always = false;
      }
      any |= accept(cand);
    }
    return any;
  }

  /// Replace every read of a wire with 0 and delete its declaration and
  /// drivers.
  bool eliminate_wires() {
    bool any = false;
    for (std::size_t i = cur_.wires.size(); i-- > 0;) {
      if (exhausted()) break;
      FuzzProgram cand = cur_;
      const FuzzSignal wire = cand.wires[i];
      cand.wires.erase(cand.wires.begin() + i);
      std::erase_if(cand.comb,
                    [&](const FuzzStmt& st) { return st.target == wire.name; });
      const FuzzExpr zero = const0(wire.width);
      for (auto* stmts : {&cand.comb, &cand.seq})
        for (auto& st : *stmts) substitute_ref(st.rhs, wire.name, zero);
      any |= accept(cand);
    }
    return any;
  }

  bool drop_unused_inputs() {
    bool any = false;
    const std::set<std::string> used = used_signals(cur_);
    for (std::size_t i = cur_.ports_in.size(); i-- > 0;) {
      if (cur_.ports_in.size() <= 1 || exhausted()) break;
      if (used.count(cur_.ports_in[i].name)) continue;
      FuzzProgram cand = cur_;
      cand.ports_in.erase(cand.ports_in.begin() + i);
      any |= accept(cand);
    }
    return any;
  }

  /// Hill-climb every statement's expression: try to replace each node by
  /// a same-width child, then by constant 0.
  bool shrink_exprs() {
    bool any = false;
    for (auto* stmts : {&cur_.comb, &cur_.seq}) {
      for (std::size_t s = 0; s < stmts->size(); ++s) {
        int idx = 0;
        while (!exhausted()) {
          // Re-resolve against cur_ every iteration: accept() replaces it.
          auto& live = (stmts == &cur_.comb ? cur_.comb : cur_.seq);
          if (s >= live.size()) break;
          FuzzStmt& st = live[s];
          const int root_w = st.target_bit >= 0
                                 ? 1
                                 : std::max(1, signal_width(cur_, st.target));
          if (idx >= count_nodes(st.rhs)) break;
          bool replaced = false;
          for (const FuzzExpr& cand_repl : candidates(st.rhs, idx, root_w)) {
            FuzzProgram cand = cur_;
            auto& cstmts = (stmts == &cur_.comb ? cand.comb : cand.seq);
            int j = idx;
            NodeAt at = find_node(cstmts[s].rhs, j, root_w);
            *at.node = cand_repl;
            if (accept(cand)) {
              replaced = true;
              any = true;
              break;
            }
            if (exhausted()) break;
          }
          // On success re-try the same index (the subtree changed);
          // otherwise move on.
          if (!replaced) ++idx;
        }
      }
    }
    return any;
  }

  std::vector<FuzzExpr> candidates(FuzzExpr& root, int idx, int root_w) {
    int j = idx;
    NodeAt at = find_node(root, j, root_w);
    std::vector<FuzzExpr> out;
    if (!at.node) return out;
    const FuzzExpr& e = *at.node;
    switch (e.kind) {
      case FuzzExpr::Kind::kNot:
        out.push_back(e.kids[0]);
        break;
      case FuzzExpr::Kind::kAnd:
      case FuzzExpr::Kind::kOr:
      case FuzzExpr::Kind::kXor:
        out.push_back(e.kids[0]);
        out.push_back(e.kids[1]);
        break;
      case FuzzExpr::Kind::kMux:
        out.push_back(e.kids[1]);
        out.push_back(e.kids[2]);
        break;
      case FuzzExpr::Kind::kConst:
        return out;  // already minimal; constant-0 attempt below is a dup
      case FuzzExpr::Kind::kRef:
      case FuzzExpr::Kind::kBitSel:
        break;
    }
    if (!(e.kind == FuzzExpr::Kind::kConst && e.value == 0))
      out.push_back(const0(at.width));
    return out;
  }

  /// Collapse every vector to 1 bit in one shot: decls become scalar,
  /// bit-selects become plain refs, per-bit assigns fold to bit 0.
  bool scalarize() {
    bool vectors = false;
    for (const auto* v : {&cur_.ports_in, &cur_.ports_out, &cur_.wires,
                          &cur_.regs})
      for (const auto& s : *v) vectors |= s.width > 1;
    if (!vectors || exhausted()) return false;

    FuzzProgram cand = cur_;
    for (auto* v : {&cand.ports_in, &cand.ports_out, &cand.wires, &cand.regs})
      for (auto& s : *v) s.width = 1;
    for (auto* stmts : {&cand.comb, &cand.seq}) {
      // Per-bit assigns to one signal collapse to the bit-0 statement.
      std::erase_if(*stmts,
                    [](const FuzzStmt& st) { return st.target_bit > 0; });
      for (auto& st : *stmts) {
        st.target_bit = -1;
        scalarize_expr(st.rhs);
      }
    }
    return accept(cand);
  }

  static void scalarize_expr(FuzzExpr& e) {
    if (e.kind == FuzzExpr::Kind::kBitSel) {
      e.kind = FuzzExpr::Kind::kRef;
      e.bit = 0;
    } else if (e.kind == FuzzExpr::Kind::kConst) {
      e.value &= 1;
      e.bit = 1;
    }
    for (auto& k : e.kids) scalarize_expr(k);
  }

  FuzzProgram cur_;
  const std::function<bool(const FuzzProgram&)>& pred_;
  MinimizeOptions opts_;
  int attempts_ = 0;
};

}  // namespace

MinimizeResult minimize_program(
    const FuzzProgram& p,
    const std::function<bool(const FuzzProgram&)>& still_fails,
    const MinimizeOptions& opts) {
  SECFLOW_CHECK(still_fails(p),
                "minimize_program: predicate does not hold on the input");
  return Minimizer(p, still_fails, opts).run();
}

}  // namespace secflow
