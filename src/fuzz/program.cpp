#include "fuzz/program.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <sstream>

#include "base/error.h"
#include "base/rng.h"

namespace secflow {
namespace {

void emit_expr(std::ostream& os, const FuzzExpr& e) {
  switch (e.kind) {
    case FuzzExpr::Kind::kConst:
      // Width is recovered at parse time from the target's declaration;
      // emit as decimal so any width 1..64 round-trips.  The emitter does
      // not know the context width, so the generator stores it in `bit`.
      os << e.bit << "'d" << e.value;
      break;
    case FuzzExpr::Kind::kRef:
      os << e.ref;
      break;
    case FuzzExpr::Kind::kBitSel:
      os << e.ref << "[" << e.bit << "]";
      break;
    case FuzzExpr::Kind::kNot:
      os << "~";
      emit_expr(os, e.kids[0]);
      break;
    case FuzzExpr::Kind::kAnd:
    case FuzzExpr::Kind::kOr:
    case FuzzExpr::Kind::kXor: {
      const char* op = e.kind == FuzzExpr::Kind::kAnd   ? " & "
                       : e.kind == FuzzExpr::Kind::kOr ? " | "
                                                       : " ^ ";
      os << "(";
      emit_expr(os, e.kids[0]);
      os << op;
      emit_expr(os, e.kids[1]);
      os << ")";
      break;
    }
    case FuzzExpr::Kind::kMux:
      os << "(";
      emit_expr(os, e.kids[0]);
      os << " ? ";
      emit_expr(os, e.kids[1]);
      os << " : ";
      emit_expr(os, e.kids[2]);
      os << ")";
      break;
  }
}

void emit_decl(std::ostream& os, const char* cls, const FuzzSignal& s) {
  os << "  " << cls << " ";
  if (s.width > 1) os << "[" << s.width - 1 << ":0] ";
  os << s.name << ";\n";
}

void emit_stmt_target(std::ostream& os, const FuzzStmt& st) {
  os << st.target;
  if (st.target_bit >= 0) os << "[" << st.target_bit << "]";
}

}  // namespace

std::string emit_hdl(const FuzzProgram& p) {
  std::ostringstream os;
  os << "module " << p.name << " (";
  bool first = true;
  auto port = [&](const char* dir, const FuzzSignal& s) {
    if (!first) os << ", ";
    first = false;
    os << dir << " ";
    if (s.width > 1) os << "[" << s.width - 1 << ":0] ";
    os << s.name;
  };
  if (p.has_clk) port("input", FuzzSignal{"clk", 1});
  for (const auto& s : p.ports_in) port("input", s);
  for (const auto& s : p.ports_out) port("output", s);
  os << ");\n";
  for (const auto& s : p.wires) emit_decl(os, "wire", s);
  for (const auto& s : p.regs) emit_decl(os, "reg", s);
  for (const auto& st : p.comb) {
    os << "  assign ";
    emit_stmt_target(os, st);
    os << " = ";
    emit_expr(os, st.rhs);
    os << ";\n";
  }
  if (!p.seq.empty()) {
    if (p.split_always) {
      for (const auto& st : p.seq) {
        os << "  always @(posedge clk) ";
        emit_stmt_target(os, st);
        os << " <= ";
        emit_expr(os, st.rhs);
        os << ";\n";
      }
    } else {
      os << "  always @(posedge clk) begin\n";
      for (const auto& st : p.seq) {
        os << "    ";
        emit_stmt_target(os, st);
        os << " <= ";
        emit_expr(os, st.rhs);
        os << ";\n";
      }
      os << "  end\n";
    }
  }
  os << "endmodule\n";
  return os.str();
}

int hdl_line_count(const FuzzProgram& p) {
  const std::string text = emit_hdl(p);
  return static_cast<int>(std::count(text.begin(), text.end(), '\n'));
}

int signal_width(const FuzzProgram& p, const std::string& name) {
  for (const auto* v : {&p.ports_in, &p.ports_out, &p.wires, &p.regs})
    for (const auto& s : *v)
      if (s.name == name) return s.width;
  return 0;
}

// --- parser -----------------------------------------------------------------
//
// A strict recursive-descent reader of exactly the emit_hdl() output
// language.  It exists for replay (corpus .v → FuzzProgram), so it rejects
// anything the emitter cannot produce rather than guessing.

namespace {

class ProgramParser {
 public:
  explicit ProgramParser(const std::string& src) : src_(src) {}

  FuzzProgram parse() {
    FuzzProgram p;
    keyword("module");
    p.name = ident();
    punct("(");
    bool first = true;
    while (!peek_punct(")")) {
      if (!first) punct(",");
      first = false;
      const std::string dir = ident();
      FuzzSignal s;
      s.width = opt_range();
      s.name = ident();
      if (dir == "input") {
        if (s.name == "clk") {
          if (s.width != 1 || p.has_clk || !p.ports_in.empty())
            fail("clk must be the first scalar input");
          p.has_clk = true;
        } else {
          p.ports_in.push_back(std::move(s));
        }
      } else if (dir == "output") {
        p.ports_out.push_back(std::move(s));
      } else {
        fail("expected input/output, got '" + dir + "'");
      }
    }
    punct(")");
    punct(";");
    bool saw_always = false;
    while (!peek_keyword("endmodule")) {
      const std::string head = ident();
      if (head == "wire" || head == "reg") {
        FuzzSignal s;
        s.width = opt_range();
        s.name = ident();
        punct(";");
        (head == "wire" ? p.wires : p.regs).push_back(std::move(s));
      } else if (head == "assign") {
        p.comb.push_back(stmt("="));
        punct(";");
      } else if (head == "always") {
        punct("@");
        punct("(");
        keyword("posedge");
        keyword("clk");
        punct(")");
        if (peek_keyword("begin")) {
          keyword("begin");
          if (saw_always) fail("multiple begin/end always blocks");
          while (!peek_keyword("end")) {
            p.seq.push_back(stmt("<="));
            punct(";");
          }
          keyword("end");
        } else {
          p.split_always = true;
          p.seq.push_back(stmt("<="));
          punct(";");
        }
        saw_always = true;
      } else {
        fail("unexpected item '" + head + "'");
      }
    }
    keyword("endmodule");
    skip_ws();
    if (pos_ != src_.size()) fail("trailing input after endmodule");
    if (!p.seq.empty() && !p.has_clk) fail("sequential program without clk");
    return p;
  }

 private:
  FuzzStmt stmt(const char* op) {
    FuzzStmt st;
    st.target = ident();
    if (peek_punct("[")) {
      punct("[");
      st.target_bit = number();
      punct("]");
    }
    punct(op);
    st.rhs = expr();
    return st;
  }

  // The emitter parenthesizes every binary/mux node, so an expression is:
  //   primary | ~expr | ( expr OP expr ) | ( expr ? expr : expr )
  FuzzExpr expr() {
    skip_ws();
    FuzzExpr e;
    if (peek_punct("~")) {
      punct("~");
      e.kind = FuzzExpr::Kind::kNot;
      e.kids.push_back(expr());
      return e;
    }
    if (peek_punct("(")) {
      punct("(");
      FuzzExpr lhs = expr();
      skip_ws();
      if (peek_punct("?")) {
        punct("?");
        e.kind = FuzzExpr::Kind::kMux;
        e.kids.push_back(std::move(lhs));
        e.kids.push_back(expr());
        punct(":");
        e.kids.push_back(expr());
      } else {
        if (peek_punct("&")) {
          punct("&");
          e.kind = FuzzExpr::Kind::kAnd;
        } else if (peek_punct("|")) {
          punct("|");
          e.kind = FuzzExpr::Kind::kOr;
        } else if (peek_punct("^")) {
          punct("^");
          e.kind = FuzzExpr::Kind::kXor;
        } else {
          fail("expected binary operator");
        }
        e.kids.push_back(std::move(lhs));
        e.kids.push_back(expr());
      }
      punct(")");
      return e;
    }
    if (std::isdigit(static_cast<unsigned char>(cur()))) {
      const int width = number();
      punct("'");
      if (cur() != 'd') fail("expected decimal literal");
      ++pos_;
      e.kind = FuzzExpr::Kind::kConst;
      e.bit = width;
      e.value = static_cast<std::uint64_t>(number64());
      return e;
    }
    e.ref = ident();
    if (peek_punct("[")) {
      punct("[");
      e.kind = FuzzExpr::Kind::kBitSel;
      e.bit = number();
      punct("]");
    } else {
      e.kind = FuzzExpr::Kind::kRef;
    }
    return e;
  }

  // [W-1:0] or nothing.
  int opt_range() {
    skip_ws();
    if (!peek_punct("[")) return 1;
    punct("[");
    const int msb = number();
    punct(":");
    if (number() != 0) fail("range must end at bit 0");
    punct("]");
    return msb + 1;
  }

  char cur() { return pos_ < src_.size() ? src_[pos_] : '\0'; }

  void skip_ws() {
    while (pos_ < src_.size() &&
           std::isspace(static_cast<unsigned char>(src_[pos_])))
      ++pos_;
  }

  bool peek_punct(const std::string& tok) {
    skip_ws();
    return src_.compare(pos_, tok.size(), tok) == 0;
  }

  void punct(const std::string& tok) {
    if (!peek_punct(tok)) fail("expected '" + tok + "'");
    pos_ += tok.size();
  }

  std::string ident() {
    skip_ws();
    std::size_t start = pos_;
    while (pos_ < src_.size() &&
           (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
            src_[pos_] == '_'))
      ++pos_;
    if (pos_ == start) fail("expected identifier");
    return src_.substr(start, pos_ - start);
  }

  bool peek_keyword(const std::string& kw) {
    skip_ws();
    if (src_.compare(pos_, kw.size(), kw) != 0) return false;
    const std::size_t after = pos_ + kw.size();
    if (after < src_.size() &&
        (std::isalnum(static_cast<unsigned char>(src_[after])) ||
         src_[after] == '_'))
      return false;
    return true;
  }

  void keyword(const std::string& kw) {
    if (!peek_keyword(kw)) fail("expected '" + kw + "'");
    pos_ += kw.size();
  }

  int number() {
    const std::int64_t v = number64();
    if (v > 1'000'000) fail("number out of range");
    return static_cast<int>(v);
  }

  std::int64_t number64() {
    skip_ws();
    std::size_t start = pos_;
    while (pos_ < src_.size() &&
           std::isdigit(static_cast<unsigned char>(src_[pos_])))
      ++pos_;
    if (pos_ == start) fail("expected number");
    return std::stoll(src_.substr(start, pos_ - start));
  }

  [[noreturn]] void fail(const std::string& what) {
    throw ParseError("fuzz-program:" + std::to_string(pos_), what);
  }

  const std::string& src_;
  std::size_t pos_ = 0;
};

/// Fisher–Yates with the repo's deterministic Rng.
template <typename T>
void shuffle_vec(std::vector<T>& v, Rng& rng) {
  for (std::size_t i = v.size(); i > 1; --i)
    std::swap(v[i - 1], v[rng.next_below(i)]);
}

void rename_in_expr(FuzzExpr& e,
                    const std::map<std::string, std::string>& table) {
  if (!e.ref.empty()) {
    auto it = table.find(e.ref);
    if (it != table.end()) e.ref = it->second;
  }
  for (auto& k : e.kids) rename_in_expr(k, table);
}

}  // namespace

FuzzProgram parse_fuzz_program(const std::string& hdl) {
  return ProgramParser(hdl).parse();
}

FuzzProgram rename_wires(const FuzzProgram& p, std::uint64_t seed) {
  FuzzProgram out = p;
  Rng rng(seed);
  std::map<std::string, std::string> table;
  std::set<std::string> taken;
  for (const auto* v : {&p.ports_in, &p.ports_out, &p.regs})
    for (const auto& s : *v) taken.insert(s.name);
  taken.insert("clk");
  for (auto& s : out.wires) {
    std::string fresh;
    do {
      fresh = "mw" + std::to_string(rng.next_below(100000));
    } while (!taken.insert(fresh).second);
    table[s.name] = fresh;
    s.name = fresh;
  }
  for (auto* stmts : {&out.comb, &out.seq})
    for (auto& st : *stmts) {
      auto it = table.find(st.target);
      if (it != table.end()) st.target = it->second;
      rename_in_expr(st.rhs, table);
    }
  return out;
}

FuzzProgram shuffle_statements(const FuzzProgram& p, std::uint64_t seed) {
  FuzzProgram out = p;
  Rng rng(seed);
  shuffle_vec(out.wires, rng);
  shuffle_vec(out.comb, rng);
  shuffle_vec(out.seq, rng);
  out.split_always = rng.next_bool();
  return out;
}

FuzzProgram permute_ports(const FuzzProgram& p, std::uint64_t seed) {
  FuzzProgram out = p;
  Rng rng(seed);
  shuffle_vec(out.ports_in, rng);
  shuffle_vec(out.ports_out, rng);
  return out;
}

}  // namespace secflow
