// Random mini-HDL design generator.
//
// Produces small *sequential* FuzzPrograms — registers, synchronous
// resets, multi-output modules, bit-granular assigns — deterministically
// from a seed: the same (seed, options) pair yields the same program on
// every platform, which is what makes corpus seeds replayable.
//
// Designs are kept shallow on purpose: the secure flow rejects circuits
// whose critical path exceeds half the clock cycle (the WDDL precharge
// wave must settle), and a fuzzer that mostly generates designs the flow
// refuses to build tests nothing.
#pragma once

#include <cstdint>

#include "fuzz/program.h"

namespace secflow {

struct GeneratorOptions {
  int max_width = 4;   ///< vector signals are [W-1:0], W in [2, max_width]
  int min_inputs = 2;
  int max_inputs = 4;
  int max_outputs = 3;
  int max_regs = 3;
  int max_wires = 3;
  int max_depth = 3;   ///< expression tree depth
  /// Probability a design is sequential (has >= 1 register).
  double seq_bias = 0.8;
  /// Probability a sequential design gets a synchronous reset input.
  double reset_bias = 0.5;
};

/// Generate a random well-formed program.  Every output bit is driven,
/// wires are ranked so combinational assigns cannot form loops, and every
/// register has exactly one nonblocking assignment.
FuzzProgram generate_program(std::uint64_t seed,
                             const GeneratorOptions& opts = {});

}  // namespace secflow
