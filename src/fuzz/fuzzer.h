// The fuzzing campaign driver: generate -> oracle battery -> on failure,
// minimize and write a replayable reproducer into the corpus directory.
//
// Determinism contract: case i of a run is fully determined by
// (options.seed, i) — Rng::stream(seed, i) seeds the generator and the
// oracle vectors — so `fuzz --seed N --count M` is bit-reproducible, and a
// stored reproducer (`secflow.fuzz-repro/1` JSON + .v sidecar) replays to
// the identical oracle-battery digest on any machine at any thread count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/oracles.h"

namespace secflow {

struct FuzzOptions {
  std::uint64_t seed = 1;
  int count = 100;
  /// Every deep_every-th case also runs the flow-level deep oracles
  /// (two full secure-flow runs); 0 disables the deep tier.
  int deep_every = 10;
  std::string corpus_dir = "fuzz-corpus";
  FaultKind inject = FaultKind::kNone;
  bool stop_on_failure = true;
  bool minimize = true;
  /// Predicate-evaluation budget for the minimizer (each evaluation
  /// re-runs the battery); deep-tier failures get a tenth of it.
  int minimize_attempts = 400;
  /// Oracle workload knobs (vectors/cycles/§5 bounds).
  OracleOptions oracles;
};

struct FuzzCaseResult {
  int index = 0;
  std::uint64_t design_seed = 0;
  bool ok = true;
  bool skipped = false;      ///< inject requested but not applicable
  std::string oracle;        ///< failing oracle name ("" when ok)
  std::string detail;
  std::string repro_path;    ///< corpus JSON written on failure ("" when ok)
  int minimized_lines = 0;   ///< reproducer size after shrinking
};

struct FuzzRunResult {
  std::vector<FuzzCaseResult> cases;
  int n_ok = 0;
  int n_failed = 0;
  int n_skipped = 0;
  bool all_ok() const { return n_failed == 0; }
};

/// Run a fuzzing campaign.  Failures are minimized and written to
/// opts.corpus_dir as `repro-<seed>-<index>.json` (+ `.v` sidecar).
FuzzRunResult run_fuzz(const FuzzOptions& opts);

/// Re-run a stored reproducer: parse the minimized HDL back into a
/// program, run the identical battery and compare the battery digest
/// bit-exactly against the stored one.  Returns the verdict of the
/// comparison; throws Error on a malformed file.
struct ReplayResult {
  bool digest_match = false;
  bool still_fails = false;
  std::string oracle;         ///< failing oracle on replay ("" if none)
  std::uint64_t stored_digest = 0;
  std::uint64_t replayed_digest = 0;
};
ReplayResult replay_repro(const std::string& path);

/// Serialize one failing case (used by run_fuzz; exposed for tests).
std::string write_repro_json(const FuzzProgram& original,
                             const FuzzProgram& minimized,
                             const FuzzCaseResult& c, const FuzzOptions& opts,
                             std::uint64_t battery_digest);

}  // namespace secflow
