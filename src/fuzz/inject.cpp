#include "fuzz/inject.h"

#include <algorithm>
#include <map>
#include <vector>

#include "base/error.h"

namespace secflow {

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kNone: return "none";
    case FaultKind::kSubstitutionPinSwap: return "pin-swap";
    case FaultKind::kRailSwap: return "rail-swap";
    case FaultKind::kCapImbalance: return "cap-imbalance";
  }
  return "?";
}

FaultKind parse_fault_kind(const std::string& name) {
  for (FaultKind k : {FaultKind::kNone, FaultKind::kSubstitutionPinSwap,
                      FaultKind::kRailSwap, FaultKind::kCapImbalance}) {
    if (name == fault_kind_name(k)) return k;
  }
  throw Error("unknown fault kind '" + name +
              "' (none|pin-swap|rail-swap|cap-imbalance)");
}

namespace {

/// Does swapping function inputs i and j change the function?
bool swap_matters(const LogicFn& fn, int i, int j) {
  const int n = fn.n_inputs();
  for (std::uint64_t x = 0; x < (1ull << n); ++x) {
    const std::uint64_t bi = (x >> i) & 1, bj = (x >> j) & 1;
    if (bi == bj) continue;
    const std::uint64_t y = (x & ~((1ull << i) | (1ull << j))) | (bi << j) |
                            (bj << i);
    if (fn.eval(x) != fn.eval(y)) return true;
  }
  return false;
}

}  // namespace

std::string inject_pin_swap(Netlist& fat) {
  for (InstId id : fat.instance_ids()) {
    const CellType& cell = fat.cell_of(id);
    if (cell.kind != CellKind::kCombinational || cell.n_inputs() < 2) continue;
    const std::vector<int> ins = cell.input_pins();
    for (std::size_t a = 0; a < ins.size(); ++a) {
      for (std::size_t b = a + 1; b < ins.size(); ++b) {
        const NetId na = fat.instance(id).conns[ins[a]];
        const NetId nb = fat.instance(id).conns[ins[b]];
        if (!na.valid() || !nb.valid() || na == nb) continue;
        if (!swap_matters(cell.function, static_cast<int>(a),
                          static_cast<int>(b)))
          continue;
        fat.disconnect(id, ins[a]);
        fat.disconnect(id, ins[b]);
        fat.connect(id, ins[a], nb);
        fat.connect(id, ins[b], na);
        return fat.instance(id).name + "/" + cell.pins[ins[a]].name + "<->" +
               cell.pins[ins[b]].name;
      }
    }
  }
  return "";
}

std::string inject_rail_swap(Netlist& diff) {
  // Deterministic order: scan nets by name so the same design always gets
  // the same injected fault.
  std::map<std::string, NetId> by_name;
  for (NetId id : diff.net_ids()) by_name.emplace(diff.net(id).name, id);
  for (const auto& [name, t] : by_name) {
    if (name.size() < 2 || name.compare(name.size() - 2, 2, "_t") != 0)
      continue;
    const NetId f = diff.find_net(name.substr(0, name.size() - 2) + "_f");
    if (!f.valid()) continue;
    const auto dt = diff.driver(t);
    const auto df = diff.driver(f);
    if (!dt || !df) continue;  // port-driven rails cannot be crossed here
    diff.disconnect(dt->inst, dt->pin);
    diff.disconnect(df->inst, df->pin);
    diff.connect(dt->inst, dt->pin, f);
    diff.connect(df->inst, df->pin, t);
    return name + "<->" + name.substr(0, name.size() - 2) + "_f";
  }
  return "";
}

std::string inject_cap_imbalance(Extraction& ex, double extra_ff) {
  std::vector<std::string> names;
  names.reserve(ex.nets.size());
  for (const auto& [name, np] : ex.nets) names.push_back(name);
  std::sort(names.begin(), names.end());
  for (const std::string& name : names) {
    if (name.size() < 2 || name.compare(name.size() - 2, 2, "_t") != 0)
      continue;
    if (!ex.find(name.substr(0, name.size() - 2) + "_f")) continue;
    ex.nets[name].wire_cap_ff += extra_ff;
    return name;
  }
  return "";
}

}  // namespace secflow
