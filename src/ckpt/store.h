// Content-addressed stage-artifact store.
//
// Files live flat under one directory as `<stage>-<key>.ckpt`, where the
// key is the 16-hex-digit hash of everything that determines the stage's
// output (upstream chain + stage options + library fingerprint).  Lookups
// therefore never need invalidation logic: a changed input changes the
// key, and the old entry is simply never addressed again.
//
// `load` is cache-lenient — a missing or undecodable file reads as a miss
// (nullopt) so a damaged cache degrades to recomputation, never to a wrong
// artifact (the container checksum guarantees that).  Use
// parse_artifact_file directly when corruption should be an error.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "ckpt/artifact.h"

namespace secflow {

class ArtifactStore {
 public:
  /// The directory is created lazily on the first save.
  explicit ArtifactStore(std::string dir);

  const std::string& dir() const { return dir_; }

  std::string path_for(std::string_view stage, std::uint64_t key) const;

  bool contains(std::string_view stage, std::uint64_t key) const;

  /// The artifact for (stage, key), or nullopt when absent or undecodable.
  std::optional<Artifact> load(std::string_view stage,
                               std::uint64_t key) const;

  /// Persist `a` under (a.kind, a.key), atomically (write temp + rename) so
  /// a crashed writer never leaves a truncated entry under the final name.
  void save(const Artifact& a) const;

  /// Number of .ckpt entries currently in the store directory.
  std::size_t size() const;

 private:
  std::optional<Artifact> load_impl(std::string_view stage,
                                    std::uint64_t key) const;

  std::string dir_;
};

}  // namespace secflow
