#include "ckpt/store.h"

#include <atomic>
#include <filesystem>

#include "base/error.h"
#include "ckpt/hash.h"
#include "obs/log.h"
#include "obs/metrics.h"

namespace secflow {

namespace fs = std::filesystem;

ArtifactStore::ArtifactStore(std::string dir) : dir_(std::move(dir)) {
  SECFLOW_CHECK(!dir_.empty(), "ArtifactStore: directory must not be empty");
}

std::string ArtifactStore::path_for(std::string_view stage,
                                    std::uint64_t key) const {
  return (fs::path(dir_) /
          (std::string(stage) + "-" + hash_hex(key) + ".ckpt"))
      .string();
}

bool ArtifactStore::contains(std::string_view stage,
                             std::uint64_t key) const {
  std::error_code ec;
  return fs::is_regular_file(path_for(stage, key), ec);
}

std::optional<Artifact> ArtifactStore::load(std::string_view stage,
                                            std::uint64_t key) const {
  std::optional<Artifact> a = load_impl(stage, key);
  Metrics::global().add(a ? "ckpt.store.hits" : "ckpt.store.misses");
  SECFLOW_LOG_DEBUG("ckpt", a ? "cache hit" : "cache miss",
                    LogField("stage", stage), LogField("key", hash_hex(key)));
  return a;
}

std::optional<Artifact> ArtifactStore::load_impl(std::string_view stage,
                                                 std::uint64_t key) const {
  if (!contains(stage, key)) return std::nullopt;
  try {
    Artifact a = parse_artifact_file(path_for(stage, key));
    // A decodable file under the wrong name is still not this entry.
    if (a.kind != stage || a.key != key) return std::nullopt;
    return a;
  } catch (const Error&) {
    return std::nullopt;
  }
}

void ArtifactStore::save(const Artifact& a) const {
  SECFLOW_CHECK(!a.kind.empty(), "ArtifactStore::save: artifact has no kind");
  std::error_code ec;
  fs::create_directories(dir_, ec);
  SECFLOW_CHECK(!ec, "ArtifactStore: cannot create directory " + dir_);
  const std::string final_path = path_for(a.kind, a.key);
  // Unique temp name per save: concurrent writers of the same entry (e.g.
  // two campaign jobs recomputing a shared stage after their producer
  // failed) each write their own temp file; the renames then race
  // harmlessly — both sides rename identical bytes onto the final name.
  static std::atomic<std::uint64_t> save_seq{0};
  const std::string tmp_path =
      final_path + ".tmp." + std::to_string(save_seq.fetch_add(1));
  write_artifact_file(a, tmp_path);
  fs::rename(tmp_path, final_path, ec);
  SECFLOW_CHECK(!ec, "ArtifactStore: cannot rename into " + final_path);
  Metrics::global().add("ckpt.store.saves");
  SECFLOW_LOG_DEBUG("ckpt", "artifact saved", LogField("stage", a.kind),
                    LogField("key", hash_hex(a.key)));
}

std::size_t ArtifactStore::size() const {
  std::error_code ec;
  std::size_t n = 0;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (entry.path().extension() == ".ckpt") ++n;
  }
  return n;
}

}  // namespace secflow
