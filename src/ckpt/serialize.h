// Text serializers for every stage-boundary artifact that does not already
// have a flow format of its own (netlists round-trip through the Verilog
// writer/parser, layouts through the DEF writer/parser).
//
// Format contract, relied on by the cache keys and the golden-file tests:
//  * deterministic — map-backed containers are emitted in sorted order, so
//    the same value always produces the same bytes;
//  * save -> load -> save is byte-identical (doubles are printed with 17
//    significant digits, which round-trips IEEE-754 exactly);
//  * parsers fully validate and throw ParseError on malformed input.
#pragma once

#include <string>

#include "extract/extract.h"
#include "lec/lec.h"
#include "netlist/cell_library.h"
#include "pnr/check.h"
#include "pnr/route.h"
#include "sca/dpa.h"
#include "sim/power_sim.h"
#include "sta/sta.h"
#include "wddl/cell_substitution.h"

namespace secflow {

/// Full-fidelity cell library (logic functions, pins, geometry, electrical
/// data) — enough to reparse a cached fat netlist without regenerating the
/// WDDL compound inventory.
std::string write_cell_library(const CellLibrary& lib);
CellLibrary parse_cell_library(const std::string& text);

/// Per-net parasitics (RC + coupling list).
std::string write_extraction(const Extraction& ex);
Extraction parse_extraction(const std::string& text);

/// Switched-capacitance table for the power simulator.
std::string write_cap_table(const CapTable& caps);
CapTable parse_cap_table(const std::string& text);

/// STA summary: critical path, period, per-net arrivals.
std::string write_timing_report(const TimingReport& r);
TimingReport parse_timing_report(const std::string& text);

std::string write_route_stats(const RouteStats& s);
RouteStats parse_route_stats(const std::string& text);

std::string write_substitution_stats(const SubstitutionStats& s);
SubstitutionStats parse_substitution_stats(const std::string& text);

std::string write_lec_result(const LecResult& r);
LecResult parse_lec_result(const std::string& text);

std::string write_check_result(const CheckResult& r);
CheckResult parse_check_result(const std::string& text);

/// DPA-experiment summaries, so side-channel campaigns can be checkpointed
/// alongside the flow artifacts.
std::string write_energy_stats(const EnergyStats& s);
EnergyStats parse_energy_stats(const std::string& text);

std::string write_dpa_result(const DpaResult& r);
DpaResult parse_dpa_result(const std::string& text);

}  // namespace secflow
