#include "ckpt/serialize.h"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <vector>

#include "base/error.h"
#include "ckpt/hash.h"

namespace secflow {
namespace {

/// Output stream with the precision every serializer needs: 17 significant
/// digits round-trip any finite double exactly through decimal text.
std::ostringstream make_out() {
  std::ostringstream os;
  os << std::setprecision(17);
  return os;
}

/// Free text that may contain spaces (but no newlines are required either):
/// length-prefixed as `<n>:<bytes>`.
void put_str(std::ostream& os, const std::string& s) {
  os << s.size() << ':' << s;
}

/// Whitespace-token reader over a serializer payload.
class TokenReader {
 public:
  TokenReader(const std::string& text, std::string what)
      : is_(text), what_(std::move(what)) {}

  void expect(const char* kw) {
    const std::string t = word();
    if (t != kw) {
      fail("expected '" + std::string(kw) + "', got '" + t + "'");
    }
  }

  std::string word() {
    std::string t;
    if (!(is_ >> t)) fail("unexpected end of input");
    return t;
  }

  long long integer() {
    long long v = 0;
    if (!(is_ >> v)) fail("expected integer");
    return v;
  }

  double real() {
    double v = 0;
    if (!(is_ >> v)) fail("expected number");
    return v;
  }

  bool boolean() {
    const long long v = integer();
    if (v != 0 && v != 1) fail("expected 0/1 flag");
    return v == 1;
  }

  /// Inverse of put_str.
  std::string sized_str() {
    std::size_t n = 0;
    if (!(is_ >> n)) fail("expected string length");
    if (is_.get() != ':') fail("expected ':' after string length");
    std::string s(n, '\0');
    if (n > 0 && !is_.read(s.data(), static_cast<std::streamsize>(n))) {
      fail("truncated string payload");
    }
    return s;
  }

  void done() {
    std::string t;
    if (is_ >> t) fail("trailing data '" + t + "'");
  }

  [[noreturn]] void fail(const std::string& msg) {
    throw ParseError("ckpt:" + what_, msg);
  }

 private:
  std::istringstream is_;
  std::string what_;
};

}  // namespace

// --- CellLibrary -----------------------------------------------------------

std::string write_cell_library(const CellLibrary& lib) {
  std::ostringstream os = make_out();
  os << "CELLLIB ";
  put_str(os, lib.name());
  os << ' ' << lib.size() << '\n';
  for (const CellTypeId id : lib.all()) {
    const CellType& c = lib.cell(id);
    os << "CELL " << c.name << ' ' << static_cast<int>(c.kind) << ' '
       << (c.negedge_clock ? 1 : 0) << ' ' << c.function.n_inputs() << ' '
       << hash_hex(c.function.table()) << ' ' << c.area_um2 << ' ' << c.width_um << ' '
       << c.height_um << ' ' << c.intrinsic_delay_ps << ' '
       << c.drive_res_kohm << ' ' << c.internal_cap_ff << ' ' << c.pins.size()
       << '\n';
    for (const PinDef& p : c.pins) {
      os << "PIN " << p.name << ' ' << (p.dir == PinDir::kOutput ? 1 : 0)
         << ' ' << p.cap_ff << '\n';
    }
  }
  return os.str();
}

CellLibrary parse_cell_library(const std::string& text) {
  TokenReader ts(text, "cell_library");
  ts.expect("CELLLIB");
  CellLibrary lib(ts.sized_str());
  const long long n = ts.integer();
  for (long long i = 0; i < n; ++i) {
    ts.expect("CELL");
    CellType c;
    c.name = ts.word();
    const long long kind = ts.integer();
    if (kind < 0 || kind > 2) ts.fail("bad cell kind");
    c.kind = static_cast<CellKind>(kind);
    c.negedge_clock = ts.boolean();
    const int fn_inputs = static_cast<int>(ts.integer());
    const std::uint64_t table = parse_hash_hex(ts.word());
    c.function = LogicFn(fn_inputs, table);
    c.area_um2 = ts.real();
    c.width_um = ts.real();
    c.height_um = ts.real();
    c.intrinsic_delay_ps = ts.real();
    c.drive_res_kohm = ts.real();
    c.internal_cap_ff = ts.real();
    const long long npins = ts.integer();
    for (long long p = 0; p < npins; ++p) {
      ts.expect("PIN");
      PinDef pin;
      pin.name = ts.word();
      pin.dir = ts.boolean() ? PinDir::kOutput : PinDir::kInput;
      pin.cap_ff = ts.real();
      c.pins.push_back(std::move(pin));
    }
    lib.add(std::move(c));
  }
  ts.done();
  lib.validate();
  return lib;
}

// --- Extraction ------------------------------------------------------------

std::string write_extraction(const Extraction& ex) {
  std::vector<const std::string*> names;
  names.reserve(ex.nets.size());
  for (const auto& [name, p] : ex.nets) names.push_back(&name);
  std::sort(names.begin(), names.end(),
            [](const std::string* a, const std::string* b) { return *a < *b; });

  std::ostringstream os = make_out();
  os << "EXTRACTION " << ex.nets.size() << '\n';
  for (const std::string* name : names) {
    const NetParasitics& p = ex.nets.at(*name);
    os << "NET " << *name << ' ' << p.wire_cap_ff << ' ' << p.pin_cap_ff
       << ' ' << p.coupling_cap_ff << ' ' << p.res_kohm << ' '
       << p.couplings.size() << '\n';
    for (const auto& [other, cc] : p.couplings) {
      os << "COUPLE " << other << ' ' << cc << '\n';
    }
  }
  return os.str();
}

Extraction parse_extraction(const std::string& text) {
  TokenReader ts(text, "extraction");
  ts.expect("EXTRACTION");
  const long long n = ts.integer();
  Extraction ex;
  ex.nets.reserve(static_cast<std::size_t>(n));
  for (long long i = 0; i < n; ++i) {
    ts.expect("NET");
    const std::string name = ts.word();
    NetParasitics p;
    p.wire_cap_ff = ts.real();
    p.pin_cap_ff = ts.real();
    p.coupling_cap_ff = ts.real();
    p.res_kohm = ts.real();
    const long long nc = ts.integer();
    p.couplings.reserve(static_cast<std::size_t>(nc));
    for (long long c = 0; c < nc; ++c) {
      ts.expect("COUPLE");
      const std::string other = ts.word();
      const double cc = ts.real();
      p.couplings.emplace_back(other, cc);
    }
    if (!ex.nets.emplace(name, std::move(p)).second) {
      ts.fail("duplicate net '" + name + "'");
    }
  }
  ts.done();
  return ex;
}

// --- CapTable --------------------------------------------------------------

std::string write_cap_table(const CapTable& caps) {
  std::vector<const std::string*> names;
  names.reserve(caps.size());
  for (const auto& [name, ff] : caps) names.push_back(&name);
  std::sort(names.begin(), names.end(),
            [](const std::string* a, const std::string* b) { return *a < *b; });

  std::ostringstream os = make_out();
  os << "CAPTABLE " << caps.size() << '\n';
  for (const std::string* name : names) {
    os << "CAP " << *name << ' ' << caps.at(*name) << '\n';
  }
  return os.str();
}

CapTable parse_cap_table(const std::string& text) {
  TokenReader ts(text, "cap_table");
  ts.expect("CAPTABLE");
  const long long n = ts.integer();
  CapTable caps;
  caps.reserve(static_cast<std::size_t>(n));
  for (long long i = 0; i < n; ++i) {
    ts.expect("CAP");
    const std::string name = ts.word();
    const double ff = ts.real();
    if (!caps.emplace(name, ff).second) {
      ts.fail("duplicate net '" + name + "'");
    }
  }
  ts.done();
  return caps;
}

// --- TimingReport ----------------------------------------------------------

std::string write_timing_report(const TimingReport& r) {
  std::ostringstream os = make_out();
  os << "TIMING " << r.critical_delay_ps << ' ' << r.min_period_ps << ' ';
  put_str(os, r.endpoint);
  os << '\n';
  os << "PATH " << r.critical_path.size() << '\n';
  for (const PathNode& n : r.critical_path) {
    os << "NODE ";
    put_str(os, n.instance);
    os << ' ';
    put_str(os, n.net);
    os << ' ' << n.arrival_ps << '\n';
  }
  os << "ARRIVALS " << r.net_arrival_ps.size() << '\n';
  for (const double a : r.net_arrival_ps) os << "A " << a << '\n';
  return os.str();
}

TimingReport parse_timing_report(const std::string& text) {
  TokenReader ts(text, "timing_report");
  TimingReport r;
  ts.expect("TIMING");
  r.critical_delay_ps = ts.real();
  r.min_period_ps = ts.real();
  r.endpoint = ts.sized_str();
  ts.expect("PATH");
  const long long np = ts.integer();
  r.critical_path.reserve(static_cast<std::size_t>(np));
  for (long long i = 0; i < np; ++i) {
    ts.expect("NODE");
    PathNode n;
    n.instance = ts.sized_str();
    n.net = ts.sized_str();
    n.arrival_ps = ts.real();
    r.critical_path.push_back(std::move(n));
  }
  ts.expect("ARRIVALS");
  const long long na = ts.integer();
  r.net_arrival_ps.reserve(static_cast<std::size_t>(na));
  for (long long i = 0; i < na; ++i) {
    ts.expect("A");
    r.net_arrival_ps.push_back(ts.real());
  }
  ts.done();
  return r;
}

// --- small stats structs ---------------------------------------------------

std::string write_route_stats(const RouteStats& s) {
  std::ostringstream os = make_out();
  os << "ROUTESTATS " << s.wirelength_dbu << ' ' << s.vias << ' '
     << s.nets_routed << ' ' << s.iterations << ' ' << s.expanded_nodes
     << ' ' << s.window_escalations << ' ' << s.full_grid_searches << ' '
     << s.nets_ripped << '\n';
  return os.str();
}

RouteStats parse_route_stats(const std::string& text) {
  TokenReader ts(text, "route_stats");
  ts.expect("ROUTESTATS");
  RouteStats s;
  s.wirelength_dbu = ts.integer();
  s.vias = static_cast<int>(ts.integer());
  s.nets_routed = static_cast<int>(ts.integer());
  s.iterations = static_cast<int>(ts.integer());
  s.expanded_nodes = ts.integer();
  s.window_escalations = static_cast<int>(ts.integer());
  s.full_grid_searches = static_cast<int>(ts.integer());
  s.nets_ripped = ts.integer();
  ts.done();
  return s;
}

std::string write_substitution_stats(const SubstitutionStats& s) {
  std::ostringstream os = make_out();
  os << "SUBSTATS " << s.inverters_removed << ' ' << s.buffers_removed << ' '
     << s.gates_substituted << ' ' << s.flops_substituted << ' '
     << s.ties_substituted << ' ' << s.port_buffers_added << '\n';
  return os.str();
}

SubstitutionStats parse_substitution_stats(const std::string& text) {
  TokenReader ts(text, "substitution_stats");
  ts.expect("SUBSTATS");
  SubstitutionStats s;
  s.inverters_removed = static_cast<int>(ts.integer());
  s.buffers_removed = static_cast<int>(ts.integer());
  s.gates_substituted = static_cast<int>(ts.integer());
  s.flops_substituted = static_cast<int>(ts.integer());
  s.ties_substituted = static_cast<int>(ts.integer());
  s.port_buffers_added = static_cast<int>(ts.integer());
  ts.done();
  return s;
}

std::string write_lec_result(const LecResult& r) {
  std::ostringstream os = make_out();
  os << "LEC " << (r.equivalent ? 1 : 0) << ' ' << r.compared_points << ' '
     << r.mismatches.size() << '\n';
  for (const LecMismatch& m : r.mismatches) {
    os << "MISMATCH ";
    put_str(os, m.what);
    os << ' ';
    put_str(os, m.counterexample);
    os << '\n';
  }
  return os.str();
}

LecResult parse_lec_result(const std::string& text) {
  TokenReader ts(text, "lec_result");
  ts.expect("LEC");
  LecResult r;
  r.equivalent = ts.boolean();
  r.compared_points = static_cast<int>(ts.integer());
  const long long n = ts.integer();
  r.mismatches.reserve(static_cast<std::size_t>(n));
  for (long long i = 0; i < n; ++i) {
    ts.expect("MISMATCH");
    LecMismatch m;
    m.what = ts.sized_str();
    m.counterexample = ts.sized_str();
    r.mismatches.push_back(std::move(m));
  }
  ts.done();
  return r;
}

std::string write_check_result(const CheckResult& r) {
  std::ostringstream os = make_out();
  os << "CHECK " << (r.ok ? 1 : 0) << ' ' << r.nets_checked << ' '
     << r.pins_checked << ' ' << r.issues.size() << '\n';
  for (const CheckIssue& i : r.issues) {
    os << "ISSUE ";
    put_str(os, i.net);
    os << ' ';
    put_str(os, i.what);
    os << '\n';
  }
  return os.str();
}

CheckResult parse_check_result(const std::string& text) {
  TokenReader ts(text, "check_result");
  ts.expect("CHECK");
  CheckResult r;
  r.ok = ts.boolean();
  r.nets_checked = static_cast<int>(ts.integer());
  r.pins_checked = static_cast<int>(ts.integer());
  const long long n = ts.integer();
  r.issues.reserve(static_cast<std::size_t>(n));
  for (long long i = 0; i < n; ++i) {
    ts.expect("ISSUE");
    CheckIssue issue;
    issue.net = ts.sized_str();
    issue.what = ts.sized_str();
    r.issues.push_back(std::move(issue));
  }
  ts.done();
  return r;
}

// --- DPA summaries ---------------------------------------------------------

std::string write_energy_stats(const EnergyStats& s) {
  std::ostringstream os = make_out();
  os << "ENERGY " << s.mean_pj << ' ' << s.min_pj << ' ' << s.max_pj << ' '
     << s.ned << ' ' << s.nsd << '\n';
  return os.str();
}

EnergyStats parse_energy_stats(const std::string& text) {
  TokenReader ts(text, "energy_stats");
  ts.expect("ENERGY");
  EnergyStats s;
  s.mean_pj = ts.real();
  s.min_pj = ts.real();
  s.max_pj = ts.real();
  s.ned = ts.real();
  s.nsd = ts.real();
  ts.done();
  return s;
}

std::string write_dpa_result(const DpaResult& r) {
  std::ostringstream os = make_out();
  os << "DPA " << r.n_measurements << ' ' << r.best_guess << ' '
     << (r.disclosed ? 1 : 0) << ' ' << r.peak_to_peak.size() << '\n';
  for (const double p : r.peak_to_peak) os << "P " << p << '\n';
  return os.str();
}

DpaResult parse_dpa_result(const std::string& text) {
  TokenReader ts(text, "dpa_result");
  ts.expect("DPA");
  DpaResult r;
  r.n_measurements = static_cast<int>(ts.integer());
  r.best_guess = static_cast<int>(ts.integer());
  r.disclosed = ts.boolean();
  const long long n = ts.integer();
  r.peak_to_peak.reserve(static_cast<std::size_t>(n));
  for (long long i = 0; i < n; ++i) {
    ts.expect("P");
    r.peak_to_peak.push_back(ts.real());
  }
  ts.done();
  return r;
}

}  // namespace secflow
