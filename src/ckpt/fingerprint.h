// Content fingerprints of the flow's cache-key inputs.
//
// A stage's cache key is a hash chain: H(schema, flow kind, circuit,
// library) -> synthesis -> ... -> extraction, each link folding in exactly
// the options that influence that stage's artifact.  Anything that cannot
// change the produced bytes (thread counts, verbosity) is deliberately
// excluded, so a run with different parallelism still hits the cache —
// the flow is bit-identical for any thread count by design.
#pragma once

#include <cstdint>

#include "base/units.h"
#include "extract/extract.h"
#include "netlist/cell_library.h"
#include "pnr/place.h"
#include "pnr/route.h"
#include "synth/circuit.h"
#include "synth/techmap.h"

namespace secflow {

/// Structural hash of the AIG plus its named boundary (inputs, outputs,
/// registers, module name, clock).
std::uint64_t fingerprint(const AigCircuit& circuit);

/// Every cell's logical, physical and electrical data, in library order.
std::uint64_t fingerprint(const CellLibrary& lib);

std::uint64_t fingerprint(const Process018& p);
std::uint64_t fingerprint(const SynthConstraints& c);
/// Excludes PlaceOptions::parallelism (does not change the placement).
std::uint64_t fingerprint(const PlaceOptions& o);
/// Excludes RouteOptions::verbose (logging only) and ::parallelism (the
/// routed geometry is bit-identical at any thread count).
std::uint64_t fingerprint(const RouteOptions& o);
/// Excludes ExtractOptions::parallelism; includes the process constants.
std::uint64_t fingerprint(const ExtractOptions& o);

}  // namespace secflow
