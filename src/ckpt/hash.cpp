#include "ckpt/hash.h"

#include <cstring>

#include "base/error.h"

namespace secflow {

namespace {
constexpr std::uint64_t kFnvPrime = 1099511628211ull;
}  // namespace

Hasher& Hasher::bytes(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h_ ^= p[i];
    h_ *= kFnvPrime;
  }
  return *this;
}

Hasher& Hasher::add(std::string_view s) {
  add(static_cast<std::uint64_t>(s.size()));
  return bytes(s.data(), s.size());
}

Hasher& Hasher::add(std::uint64_t v) {
  unsigned char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<unsigned char>(v >> (8 * i));
  return bytes(buf, 8);
}

Hasher& Hasher::add(std::int64_t v) {
  return add(static_cast<std::uint64_t>(v));
}

Hasher& Hasher::add(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return add(bits);
}

std::uint64_t fnv1a(std::string_view s) {
  return Hasher().bytes(s.data(), s.size()).digest();
}

std::string hash_hex(std::uint64_t h) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[h & 0xf];
    h >>= 4;
  }
  return out;
}

std::uint64_t parse_hash_hex(std::string_view hex) {
  if (hex.size() != 16) {
    throw ParseError("hash", "expected 16 hex digits, got '" +
                                 std::string(hex) + "'");
  }
  std::uint64_t h = 0;
  for (const char c : hex) {
    int d = 0;
    if (c >= '0' && c <= '9') {
      d = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      d = c - 'a' + 10;
    } else {
      throw ParseError("hash", std::string("bad hex digit '") + c + "'");
    }
    h = (h << 4) | static_cast<std::uint64_t>(d);
  }
  return h;
}

}  // namespace secflow
