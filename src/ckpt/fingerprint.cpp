#include "ckpt/fingerprint.h"

#include "ckpt/hash.h"

namespace secflow {

std::uint64_t fingerprint(const AigCircuit& circuit) {
  Hasher h;
  h.add(circuit.name).add(circuit.clock);
  const Aig& aig = circuit.aig;
  h.add(static_cast<std::uint64_t>(aig.n_nodes()));
  for (std::uint32_t node = 0; node < aig.n_nodes(); ++node) {
    if (aig.is_input(node)) {
      h.add("i").add(aig.input_name(node));
    } else if (aig.is_and(node)) {
      h.add("a")
          .add(static_cast<std::uint64_t>(aig.fanin0(node)))
          .add(static_cast<std::uint64_t>(aig.fanin1(node)));
    } else {
      h.add("c");
    }
  }
  h.add(static_cast<std::uint64_t>(circuit.inputs.size()));
  for (const CircuitBit& b : circuit.inputs) {
    h.add(b.name).add(static_cast<std::uint64_t>(b.lit));
  }
  h.add(static_cast<std::uint64_t>(circuit.outputs.size()));
  for (const CircuitBit& b : circuit.outputs) {
    h.add(b.name).add(static_cast<std::uint64_t>(b.lit));
  }
  h.add(static_cast<std::uint64_t>(circuit.regs.size()));
  for (const CircuitReg& r : circuit.regs) {
    h.add(r.name)
        .add(static_cast<std::uint64_t>(r.q))
        .add(static_cast<std::uint64_t>(r.next));
  }
  return h.digest();
}

std::uint64_t fingerprint(const CellLibrary& lib) {
  Hasher h;
  h.add(lib.name()).add(static_cast<std::uint64_t>(lib.size()));
  for (const CellTypeId id : lib.all()) {
    const CellType& c = lib.cell(id);
    h.add(c.name)
        .add(static_cast<int>(c.kind))
        .add(c.function.n_inputs())
        .add(c.function.table())
        .add(c.area_um2)
        .add(c.width_um)
        .add(c.height_um)
        .add(c.intrinsic_delay_ps)
        .add(c.drive_res_kohm)
        .add(c.internal_cap_ff)
        .add(c.negedge_clock)
        .add(static_cast<std::uint64_t>(c.pins.size()));
    for (const PinDef& p : c.pins) {
      h.add(p.name).add(static_cast<int>(p.dir)).add(p.cap_ff);
    }
  }
  return h.digest();
}

std::uint64_t fingerprint(const Process018& p) {
  return Hasher()
      .add(p.vdd_v)
      .add(p.wire_c_area_ff_per_um2)
      .add(p.wire_c_fringe_ff_per_um)
      .add(p.wire_c_couple_ff_per_um)
      .add(p.wire_r_ohm_per_sq)
      .add(p.via_r_ohm)
      .add(p.via_c_ff)
      .add(p.wire_width_um)
      .add(p.wire_pitch_um)
      .digest();
}

std::uint64_t fingerprint(const SynthConstraints& c) {
  Hasher h;
  h.add(static_cast<std::uint64_t>(c.allowed_cells.size()));
  for (const std::string& cell : c.allowed_cells) h.add(cell);
  h.add(c.max_cut_size).add(c.max_cuts_per_node);
  return h.digest();
}

std::uint64_t fingerprint(const PlaceOptions& o) {
  return Hasher()
      .add(o.aspect_ratio)
      .add(o.fill_factor)
      .add(o.seed)
      .add(o.sa_moves_per_instance)
      .add(o.margin_tracks)
      .add(o.sa_batch)
      .digest();
}

std::uint64_t fingerprint(const RouteOptions& o) {
  Hasher h;
  h.add(o.via_cost).add(o.max_iterations);
  h.add(o.window_margin).add(o.window_escalation).add(o.incremental);
  h.add(static_cast<std::uint64_t>(o.skip_nets.size()));
  for (const std::string& n : o.skip_nets) h.add(n);
  return h.digest();
}

std::uint64_t fingerprint(const ExtractOptions& o) {
  return Hasher()
      .add(fingerprint(o.process))
      .add(o.coupling_max_sep_um)
      .add(o.variation_sigma)
      .add(o.seed)
      .digest();
}

}  // namespace secflow
