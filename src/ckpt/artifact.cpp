#include "ckpt/artifact.h"

#include <fstream>
#include <sstream>

#include "base/error.h"
#include "ckpt/hash.h"

namespace secflow {
namespace {

std::uint64_t content_checksum(const Artifact& a) {
  Hasher h;
  h.add(a.kind).add(a.key);
  h.add(static_cast<std::uint64_t>(a.sections.size()));
  for (const auto& [name, payload] : a.sections) h.add(name).add(payload);
  return h.digest();
}

/// Cursor over the container text that understands "one header line, then
/// raw payload bytes" framing.  Every under-run throws ParseError.
class Cursor {
 public:
  explicit Cursor(const std::string& text) : text_(text) {}

  /// The next '\n'-terminated line (without the terminator).
  std::string line() {
    const std::size_t nl = text_.find('\n', pos_);
    if (nl == std::string::npos) {
      throw ParseError("ckpt", "truncated file: missing newline");
    }
    std::string out = text_.substr(pos_, nl - pos_);
    pos_ = nl + 1;
    return out;
  }

  /// Exactly n raw bytes followed by a '\n'.
  std::string payload(std::size_t n) {
    if (pos_ + n + 1 > text_.size()) {
      throw ParseError("ckpt", "truncated section payload");
    }
    std::string out = text_.substr(pos_, n);
    pos_ += n;
    if (text_[pos_] != '\n') {
      throw ParseError("ckpt", "section payload not newline-terminated");
    }
    ++pos_;
    return out;
  }

  bool at_end() const { return pos_ >= text_.size(); }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

void Artifact::add(std::string name, std::string payload) {
  sections.emplace_back(std::move(name), std::move(payload));
}

const std::string* Artifact::find_section(std::string_view name) const {
  for (const auto& [n, payload] : sections) {
    if (n == name) return &payload;
  }
  return nullptr;
}

const std::string& Artifact::section(std::string_view name) const {
  const std::string* p = find_section(name);
  SECFLOW_CHECK(p != nullptr,
                "ckpt artifact '" + kind + "' has no section '" +
                    std::string(name) + "'");
  return *p;
}

std::string write_artifact(const Artifact& a) {
  std::ostringstream os;
  os << "SECFLOW-CKPT " << kCkptFormatVersion << ' ' << a.kind << ' '
     << hash_hex(a.key) << '\n';
  for (const auto& [name, payload] : a.sections) {
    os << "SECTION " << name << ' ' << payload.size() << '\n'
       << payload << '\n';
  }
  os << "CHECKSUM " << hash_hex(content_checksum(a)) << '\n';
  os << "END\n";
  return os.str();
}

Artifact parse_artifact(const std::string& text) {
  Cursor cur(text);
  Artifact a;

  {
    std::istringstream hdr(cur.line());
    std::string magic, key_hex;
    int version = 0;
    hdr >> magic >> version >> a.kind >> key_hex;
    if (!hdr || magic != "SECFLOW-CKPT") {
      throw ParseError("ckpt", "bad header (not a SECFLOW-CKPT file)");
    }
    if (version != kCkptFormatVersion) {
      throw ParseError("ckpt", "unsupported format version " +
                                   std::to_string(version));
    }
    a.key = parse_hash_hex(key_hex);
  }

  bool saw_end = false;
  std::uint64_t declared_checksum = 0;
  bool saw_checksum = false;
  while (!saw_end) {
    std::istringstream ls(cur.line());
    std::string kw;
    ls >> kw;
    if (kw == "SECTION") {
      std::string name;
      std::size_t nbytes = 0;
      ls >> name >> nbytes;
      if (!ls || name.empty()) {
        throw ParseError("ckpt", "malformed SECTION header");
      }
      a.sections.emplace_back(std::move(name), cur.payload(nbytes));
    } else if (kw == "CHECKSUM") {
      std::string hex;
      ls >> hex;
      if (!ls) throw ParseError("ckpt", "malformed CHECKSUM line");
      declared_checksum = parse_hash_hex(hex);
      saw_checksum = true;
    } else if (kw == "END") {
      saw_end = true;
    } else {
      throw ParseError("ckpt", "unknown keyword '" + kw + "'");
    }
  }
  if (!saw_checksum) throw ParseError("ckpt", "missing CHECKSUM");
  if (declared_checksum != content_checksum(a)) {
    throw ParseError("ckpt", "checksum mismatch (corrupted artifact)");
  }
  return a;
}

void write_artifact_file(const Artifact& a, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  SECFLOW_CHECK(f.good(), "cannot open for write: " + path);
  f << write_artifact(a);
  SECFLOW_CHECK(f.good(), "write failed: " + path);
}

Artifact parse_artifact_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  SECFLOW_CHECK(f.good(), "cannot open: " + path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return parse_artifact(ss.str());
}

}  // namespace secflow
