// Stable content hashing for the checkpoint subsystem.
//
// Stage-artifact cache keys and file checksums both need a hash that is
// identical across runs, processes and thread counts.  FNV-1a over a
// canonical byte stream gives that: every value is folded in with a fixed
// width (strings length-prefixed, numbers as 8-byte little-endian bit
// patterns), so two keys collide only when the hashed content matches.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace secflow {

/// Incremental FNV-1a (64-bit).  Chain `add` calls and read `digest`.
class Hasher {
 public:
  Hasher& bytes(const void* data, std::size_t n);
  /// Length-prefixed, so add("ab").add("c") != add("a").add("bc").
  Hasher& add(std::string_view s);
  /// String literals must hash as text — without this overload the
  /// pointer-to-bool standard conversion would win over string_view.
  Hasher& add(const char* s) { return add(std::string_view(s)); }
  Hasher& add(std::uint64_t v);
  Hasher& add(std::int64_t v);
  Hasher& add(int v) { return add(static_cast<std::int64_t>(v)); }
  Hasher& add(bool v) { return add(static_cast<std::int64_t>(v ? 1 : 0)); }
  /// Hashes the IEEE-754 bit pattern (exact, no formatting round trip).
  Hasher& add(double v);

  std::uint64_t digest() const { return h_; }

 private:
  std::uint64_t h_ = 14695981039346656037ull;  // FNV offset basis
};

/// One-shot hash of a byte string.
std::uint64_t fnv1a(std::string_view s);

/// 16 lowercase hex digits (fixed width, zero padded).
std::string hash_hex(std::uint64_t h);

/// Inverse of hash_hex; throws ParseError on malformed input.
std::uint64_t parse_hash_hex(std::string_view hex);

}  // namespace secflow
