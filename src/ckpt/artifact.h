// Versioned checkpoint container for stage artifacts.
//
// One artifact file holds everything a pipeline stage produced, as named
// sections of raw bytes (Verilog text, DEF text, parasitics tables, ...):
//
//   SECFLOW-CKPT <version> <kind> <key>
//   SECTION <name> <nbytes>
//   <nbytes of payload>
//   ...
//   CHECKSUM <hex>
//   END
//
// `kind` is the stage name, `key` the 16-hex-digit content-address the
// store files it under.  The checksum (FNV-1a over kind, key and every
// section) plus the explicit byte counts and END marker make truncated or
// corrupted files detectable: parse_artifact throws ParseError instead of
// returning partial data.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace secflow {

/// The on-disk format version; bump when any serializer changes shape so
/// stale caches read as misses instead of parse errors.
inline constexpr int kCkptFormatVersion = 1;

struct Artifact {
  std::string kind;        ///< stage name ("synthesis", "routing", ...)
  std::uint64_t key = 0;   ///< content-address (hash of the stage's inputs)
  std::vector<std::pair<std::string, std::string>> sections;

  Artifact() = default;
  Artifact(std::string kind, std::uint64_t key)
      : kind(std::move(kind)), key(key) {}

  void add(std::string name, std::string payload);
  /// Section payload by name; throws Error when absent.
  const std::string& section(std::string_view name) const;
  const std::string* find_section(std::string_view name) const;
};

/// Serialize to the container format (deterministic byte-for-byte).
std::string write_artifact(const Artifact& a);

/// Parse and fully verify a container; throws ParseError on any truncation,
/// corruption, checksum mismatch or version skew.
Artifact parse_artifact(const std::string& text);

void write_artifact_file(const Artifact& a, const std::string& path);
Artifact parse_artifact_file(const std::string& path);

}  // namespace secflow
