#include "pnr/place.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <deque>
#include <unordered_map>

#include "base/error.h"
#include "base/rng.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace secflow {
namespace {

/// Row-major placement state used during annealing: per row, an ordered
/// list of instance indices; x positions are derived by left-packing.
struct PlacerState {
  std::vector<std::vector<std::size_t>> rows;   // instance indices
  std::vector<std::size_t> row_of;              // per instance
  std::vector<std::int64_t> x_of;               // packed x [DBU]
  std::vector<std::int64_t> width;              // per instance
};

void pack_row(PlacerState& st, std::size_t row, std::int64_t pitch) {
  std::int64_t x = 0;
  for (std::size_t idx : st.rows[row]) {
    // Snap each origin up to the track grid.
    x = ((x + pitch - 1) / pitch) * pitch;
    st.x_of[idx] = x;
    x += st.width[idx];
  }
}

}  // namespace

Floorplan make_floorplan(const Netlist& nl, const LefLibrary& lef,
                         const PlaceOptions& opts) {
  SECFLOW_CHECK(opts.fill_factor > 0.0 && opts.fill_factor <= 1.0,
                "fill factor out of range");
  SECFLOW_CHECK(opts.aspect_ratio > 0.0, "aspect ratio out of range");
  const std::int64_t snap = lef.track_pitch_dbu();
  double cell_area = 0.0;     // um^2, with widths snapped to the track grid
  std::int64_t row_h = 0;
  std::int64_t max_w = 0;
  for (InstId id : nl.instance_ids()) {
    const LefMacro& m = lef.macro(nl.cell_of(id).name);
    const std::int64_t w_snapped = ((m.width_dbu + snap - 1) / snap) * snap;
    cell_area += dbu_to_um(w_snapped) * dbu_to_um(m.height_dbu);
    row_h = std::max(row_h, m.height_dbu);
    max_w = std::max(max_w, w_snapped);
  }
  SECFLOW_CHECK(row_h > 0, "empty netlist");
  const double core_area = cell_area / opts.fill_factor;
  const double height_um = std::sqrt(core_area / opts.aspect_ratio);

  Floorplan fp;
  fp.row_height_dbu = row_h;
  fp.n_rows = std::max<int>(
      1, static_cast<int>(std::ceil(um_to_dbu(height_um) /
                                    static_cast<double>(row_h))));
  const double width_um = core_area / (fp.n_rows * dbu_to_um(row_h));
  const std::int64_t pitch = lef.track_pitch_dbu();
  std::int64_t row_w = um_to_dbu(width_um);
  row_w = std::max(row_w, max_w);
  row_w = ((row_w + pitch - 1) / pitch) * pitch;
  fp.row_width_dbu = row_w;

  const std::int64_t margin = opts.margin_tracks * pitch;
  fp.core = Rect{{margin, margin},
                 {margin + row_w, margin + fp.n_rows * row_h}};
  fp.die = fp.core.inflated(margin);
  fp.die.lo = {0, 0};
  fp.die.hi = {fp.core.hi.x + margin, fp.core.hi.y + margin};
  return fp;
}

DefDesign place_design(const Netlist& nl, const LefLibrary& lef,
                       const PlaceOptions& opts) {
  Floorplan fp = make_floorplan(nl, lef, opts);
  const std::int64_t pitch = lef.track_pitch_dbu();
  const std::vector<InstId> insts = nl.instance_ids();
  const std::size_t n = insts.size();

  PlacerState st;
  st.rows.resize(static_cast<std::size_t>(fp.n_rows));
  st.row_of.resize(n);
  st.x_of.resize(n);
  st.width.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    st.width[i] = lef.macro(nl.cell_of(insts[i]).name).width_dbu;
  }

  // Initial order: BFS over net connectivity from the first instance, so
  // tightly connected cells land in nearby slots (serpentine fill).
  std::vector<std::size_t> order;
  {
    std::vector<bool> seen(n, false);
    std::unordered_map<std::int32_t, std::size_t> index_of;
    for (std::size_t i = 0; i < n; ++i) index_of[insts[i].value()] = i;
    for (std::size_t start = 0; start < n; ++start) {
      if (seen[start]) continue;
      std::deque<std::size_t> queue{start};
      seen[start] = true;
      while (!queue.empty()) {
        const std::size_t i = queue.front();
        queue.pop_front();
        order.push_back(i);
        const Instance& in = nl.instance(insts[i]);
        for (const NetId net : in.conns) {
          if (!net.valid()) continue;
          if (nl.net(net).pins.size() > 12) continue;  // skip clock-like nets
          for (const PinRef& p : nl.net(net).pins) {
            const std::size_t j = index_of.at(p.inst.value());
            if (!seen[j]) {
              seen[j] = true;
              queue.push_back(j);
            }
          }
        }
      }
    }
  }

  // Serpentine fill with row capacity = row width.  Uneven cell widths can
  // make the area-derived row width too tight; widen and retry.
  for (int attempt = 0;; ++attempt) {
    SECFLOW_CHECK(attempt < 16, "placement overflow: die sizing failed");
    bool overflow = false;
    for (auto& row : st.rows) row.clear();
    std::size_t row = 0;
    bool forward = true;
    std::int64_t used = 0;
    for (std::size_t idx : order) {
      const std::int64_t w = ((st.width[idx] + pitch - 1) / pitch) * pitch;
      if (used + w > fp.row_width_dbu && row + 1 < st.rows.size()) {
        ++row;
        forward = !forward;
        used = 0;
      }
      if (used + w > fp.row_width_dbu && !st.rows[row].empty()) {
        overflow = true;
        break;
      }
      if (forward) {
        st.rows[row].push_back(idx);
      } else {
        st.rows[row].insert(st.rows[row].begin(), idx);
      }
      st.row_of[idx] = row;
      used += w;
    }
    if (!overflow) break;
    // Widen rows by 1/8 (snapped to pitch) and regrow the die.
    fp.row_width_dbu += std::max<std::int64_t>(
        pitch, ((fp.row_width_dbu / 8 + pitch - 1) / pitch) * pitch);
    fp.core.hi.x = fp.core.lo.x + fp.row_width_dbu;
    fp.die.hi.x = fp.core.hi.x + (fp.core.lo.x - fp.die.lo.x);
  }
  for (std::size_t r = 0; r < st.rows.size(); ++r) pack_row(st, r, pitch);

  auto origin_of = [&](std::size_t idx) {
    return Point{fp.core.lo.x + st.x_of[idx],
                 fp.core.lo.y + static_cast<std::int64_t>(st.row_of[idx]) *
                                    fp.row_height_dbu};
  };
  std::unordered_map<std::int32_t, std::size_t> index_of;
  for (std::size_t i = 0; i < n; ++i) index_of[insts[i].value()] = i;

  // Simulated annealing: swap two instances (re-pack their rows).  Each
  // temperature step proposes a fixed batch of candidate swaps; all
  // candidates are costed read-only against the same placement snapshot
  // (in parallel when enabled), then commits run serially in proposal
  // order, skipping candidates whose rows an earlier commit of the batch
  // already moved (their costs are stale).  The batch structure and all
  // RNG draws are independent of the thread count, so the refined
  // placement is bit-identical from 1 to N threads.
  if (opts.sa_moves_per_instance > 0 && n > 2) {
    Span sa_span("place.sa", "pnr");
    sa_span.arg("instances", static_cast<std::uint64_t>(n));
    Rng rng(opts.seed);
    // Nets touching each instance, for incremental cost.
    std::vector<std::vector<NetId>> nets_of(n);
    for (std::size_t i = 0; i < n; ++i) {
      for (const NetId net : nl.instance(insts[i]).conns) {
        if (net.valid()) nets_of[i].push_back(net);
      }
    }

    // Cost of the nets touching a and b under a position lookup
    // (idx -> x, row), so a candidate can be evaluated without mutating
    // the shared placement state.
    auto local_cost = [&](std::size_t a, std::size_t b, const auto& pos_of) {
      std::int64_t c = 0;
      auto one_net = [&](NetId net) {
        const Net& nn = nl.net(net);
        if (nn.pins.size() < 2) return std::int64_t{0};
        std::int64_t lx = INT64_MAX, ly = INT64_MAX, hx = INT64_MIN,
                     hy = INT64_MIN;
        for (const PinRef& p : nn.pins) {
          const std::size_t i = index_of.at(p.inst.value());
          const LefMacro& m = lef.macro(nl.cell_of(p.inst).name);
          const auto [x, row] = pos_of(i);
          const Point pos =
              Point{fp.core.lo.x + x,
                    fp.core.lo.y +
                        static_cast<std::int64_t>(row) * fp.row_height_dbu} +
              m.pins[static_cast<std::size_t>(p.pin)].offset;
          lx = std::min(lx, pos.x);
          hx = std::max(hx, pos.x);
          ly = std::min(ly, pos.y);
          hy = std::max(hy, pos.y);
        }
        return (hx - lx) + (hy - ly);
      };
      for (NetId net : nets_of[a]) c += one_net(net);
      for (NetId net : nets_of[b]) c += one_net(net);
      return c;
    };
    const auto global_pos = [&](std::size_t i) {
      return std::pair<std::int64_t, std::size_t>(st.x_of[i], st.row_of[i]);
    };

    struct Proposal {
      std::size_t a = 0, b = 0;
      double accept_u = 0.0;  // Metropolis draw, pre-generated
      double delta = 0.0;
      bool feasible = false;
    };

    // Read-only evaluation of swapping a and b: repack copies of their
    // rows and cost the touched nets against hypothetical positions.
    auto evaluate = [&](Proposal& p) {
      const std::size_t ra = st.row_of[p.a], rb = st.row_of[p.b];
      std::vector<std::size_t> row_u = st.rows[ra];
      std::vector<std::size_t> row_v = ra == rb ? std::vector<std::size_t>{}
                                                : st.rows[rb];
      if (ra == rb) {
        const auto ia = std::find(row_u.begin(), row_u.end(), p.a);
        const auto ib = std::find(row_u.begin(), row_u.end(), p.b);
        std::iter_swap(ia, ib);
      } else {
        *std::find(row_u.begin(), row_u.end(), p.a) = p.b;
        *std::find(row_v.begin(), row_v.end(), p.b) = p.a;
      }
      auto pack_local = [&](const std::vector<std::size_t>& row,
                            std::vector<std::int64_t>& xs) {
        xs.resize(row.size());
        std::int64_t x = 0;
        for (std::size_t k = 0; k < row.size(); ++k) {
          x = ((x + pitch - 1) / pitch) * pitch;
          xs[k] = x;
          x += st.width[row[k]];
        }
        return row.empty() || x <= fp.row_width_dbu;
      };
      std::vector<std::int64_t> xu, xv;
      p.feasible = pack_local(row_u, xu) && pack_local(row_v, xv);
      if (!p.feasible) return;
      auto hypo_pos = [&](std::size_t i) {
        for (std::size_t k = 0; k < row_u.size(); ++k) {
          if (row_u[k] == i) return std::pair<std::int64_t, std::size_t>(
              xu[k], ra);
        }
        for (std::size_t k = 0; k < row_v.size(); ++k) {
          if (row_v[k] == i) return std::pair<std::int64_t, std::size_t>(
              xv[k], rb);
        }
        return global_pos(i);
      };
      p.delta = static_cast<double>(local_cost(p.a, p.b, hypo_pos) -
                                    local_cost(p.a, p.b, global_pos));
    };

    const long total_moves =
        static_cast<long>(opts.sa_moves_per_instance) * static_cast<long>(n);
    double temperature = static_cast<double>(fp.row_width_dbu) / 2;
    const double cooling =
        std::pow(1e-3, 1.0 / std::max<long>(total_moves, 1));
    const int batch = std::max(1, opts.sa_batch);
    std::vector<Proposal> proposals;
    std::vector<char> row_dirty(st.rows.size(), 0);
    for (long done = 0; done < total_moves; done += batch) {
      Span batch_span("place.sa_batch", "pnr");
      const auto k_count = static_cast<std::size_t>(
          std::min<long>(batch, total_moves - done));
      proposals.assign(k_count, Proposal{});
      for (Proposal& p : proposals) {
        p.a = rng.next_below(n);
        p.b = rng.next_below(n);
        p.accept_u = rng.next_double();
      }
      parallel_for(k_count, opts.parallelism,
                   [&](std::size_t begin, std::size_t end) {
                     for (std::size_t k = begin; k < end; ++k) {
                       if (proposals[k].a != proposals[k].b) {
                         evaluate(proposals[k]);
                       }
                     }
                   });
      std::fill(row_dirty.begin(), row_dirty.end(), 0);
      std::uint64_t accepted = 0, stale = 0;
      for (Proposal& p : proposals) {
        const std::size_t ra = st.row_of[p.a], rb = st.row_of[p.b];
        // An earlier commit of this batch moved a row this proposal
        // costed against: its parallel evaluation is stale, so redo it
        // serially against the current state (deterministic — staleness
        // depends only on proposal order, never on thread scheduling).
        if (p.a != p.b && (row_dirty[ra] || row_dirty[rb])) {
          evaluate(p);
          ++stale;
        }
        const bool keep =
            p.a != p.b && p.feasible &&
            (p.delta <= 0 ||
             p.accept_u < std::exp(-p.delta / temperature));
        if (keep) {
          ++accepted;
          auto& row_a = st.rows[ra];
          auto& row_b = st.rows[rb];
          const auto ia = std::find(row_a.begin(), row_a.end(), p.a);
          const auto ib = std::find(row_b.begin(), row_b.end(), p.b);
          std::iter_swap(ia, ib);
          std::swap(st.row_of[p.a], st.row_of[p.b]);
          pack_row(st, ra, pitch);
          if (rb != ra) pack_row(st, rb, pitch);
          row_dirty[ra] = 1;
          row_dirty[rb] = 1;
        }
        temperature *= cooling;
      }
      batch_span.arg("proposals", static_cast<std::uint64_t>(k_count));
      batch_span.arg("accepted", accepted);
      Metrics::global().add("pnr.place.sa_batches");
      Metrics::global().add("pnr.place.sa_accepted", accepted);
      Metrics::global().add("pnr.place.sa_stale_reevals", stale);
    }
  }

  DefDesign d;
  d.name = nl.name();
  d.die = fp.die;
  d.row_height_dbu = fp.row_height_dbu;
  d.track_pitch_dbu = pitch;
  for (std::size_t i = 0; i < n; ++i) {
    d.components.push_back(DefComponent{nl.instance(insts[i]).name,
                                        nl.cell_of(insts[i]).name,
                                        origin_of(i)});
  }
  for (NetId net : nl.net_ids()) {
    d.nets.push_back(DefNet{nl.net(net).name, {}, {}});
  }
  return d;
}

std::int64_t placement_hpwl(const Netlist& nl, const LefLibrary& lef,
                            const DefDesign& d) {
  std::int64_t total = 0;
  for (NetId net : nl.net_ids()) {
    const Net& nn = nl.net(net);
    if (nn.pins.size() < 2) continue;
    std::int64_t lx = INT64_MAX, ly = INT64_MAX, hx = INT64_MIN,
                 hy = INT64_MIN;
    for (const PinRef& p : nn.pins) {
      const CellType& type = nl.cell_of(p.inst);
      const Point pos = d.pin_position(
          lef, nl.instance(p.inst).name,
          type.pins[static_cast<std::size_t>(p.pin)].name);
      lx = std::min(lx, pos.x);
      hx = std::max(hx, pos.x);
      ly = std::min(ly, pos.y);
      hy = std::max(hy, pos.y);
    }
    total += (hx - lx) + (hy - ly);
  }
  return total;
}

}  // namespace secflow
