#include "pnr/place.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <deque>
#include <unordered_map>

#include "base/error.h"
#include "base/rng.h"

namespace secflow {
namespace {

/// Row-major placement state used during annealing: per row, an ordered
/// list of instance indices; x positions are derived by left-packing.
struct PlacerState {
  std::vector<std::vector<std::size_t>> rows;   // instance indices
  std::vector<std::size_t> row_of;              // per instance
  std::vector<std::int64_t> x_of;               // packed x [DBU]
  std::vector<std::int64_t> width;              // per instance
};

void pack_row(PlacerState& st, std::size_t row, std::int64_t pitch) {
  std::int64_t x = 0;
  for (std::size_t idx : st.rows[row]) {
    // Snap each origin up to the track grid.
    x = ((x + pitch - 1) / pitch) * pitch;
    st.x_of[idx] = x;
    x += st.width[idx];
  }
}

}  // namespace

Floorplan make_floorplan(const Netlist& nl, const LefLibrary& lef,
                         const PlaceOptions& opts) {
  SECFLOW_CHECK(opts.fill_factor > 0.0 && opts.fill_factor <= 1.0,
                "fill factor out of range");
  SECFLOW_CHECK(opts.aspect_ratio > 0.0, "aspect ratio out of range");
  const std::int64_t snap = lef.track_pitch_dbu();
  double cell_area = 0.0;     // um^2, with widths snapped to the track grid
  std::int64_t row_h = 0;
  std::int64_t max_w = 0;
  for (InstId id : nl.instance_ids()) {
    const LefMacro& m = lef.macro(nl.cell_of(id).name);
    const std::int64_t w_snapped = ((m.width_dbu + snap - 1) / snap) * snap;
    cell_area += dbu_to_um(w_snapped) * dbu_to_um(m.height_dbu);
    row_h = std::max(row_h, m.height_dbu);
    max_w = std::max(max_w, w_snapped);
  }
  SECFLOW_CHECK(row_h > 0, "empty netlist");
  const double core_area = cell_area / opts.fill_factor;
  const double height_um = std::sqrt(core_area / opts.aspect_ratio);

  Floorplan fp;
  fp.row_height_dbu = row_h;
  fp.n_rows = std::max<int>(
      1, static_cast<int>(std::ceil(um_to_dbu(height_um) /
                                    static_cast<double>(row_h))));
  const double width_um = core_area / (fp.n_rows * dbu_to_um(row_h));
  const std::int64_t pitch = lef.track_pitch_dbu();
  std::int64_t row_w = um_to_dbu(width_um);
  row_w = std::max(row_w, max_w);
  row_w = ((row_w + pitch - 1) / pitch) * pitch;
  fp.row_width_dbu = row_w;

  const std::int64_t margin = opts.margin_tracks * pitch;
  fp.core = Rect{{margin, margin},
                 {margin + row_w, margin + fp.n_rows * row_h}};
  fp.die = fp.core.inflated(margin);
  fp.die.lo = {0, 0};
  fp.die.hi = {fp.core.hi.x + margin, fp.core.hi.y + margin};
  return fp;
}

DefDesign place_design(const Netlist& nl, const LefLibrary& lef,
                       const PlaceOptions& opts) {
  Floorplan fp = make_floorplan(nl, lef, opts);
  const std::int64_t pitch = lef.track_pitch_dbu();
  const std::vector<InstId> insts = nl.instance_ids();
  const std::size_t n = insts.size();

  PlacerState st;
  st.rows.resize(static_cast<std::size_t>(fp.n_rows));
  st.row_of.resize(n);
  st.x_of.resize(n);
  st.width.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    st.width[i] = lef.macro(nl.cell_of(insts[i]).name).width_dbu;
  }

  // Initial order: BFS over net connectivity from the first instance, so
  // tightly connected cells land in nearby slots (serpentine fill).
  std::vector<std::size_t> order;
  {
    std::vector<bool> seen(n, false);
    std::unordered_map<std::int32_t, std::size_t> index_of;
    for (std::size_t i = 0; i < n; ++i) index_of[insts[i].value()] = i;
    for (std::size_t start = 0; start < n; ++start) {
      if (seen[start]) continue;
      std::deque<std::size_t> queue{start};
      seen[start] = true;
      while (!queue.empty()) {
        const std::size_t i = queue.front();
        queue.pop_front();
        order.push_back(i);
        const Instance& in = nl.instance(insts[i]);
        for (const NetId net : in.conns) {
          if (!net.valid()) continue;
          if (nl.net(net).pins.size() > 12) continue;  // skip clock-like nets
          for (const PinRef& p : nl.net(net).pins) {
            const std::size_t j = index_of.at(p.inst.value());
            if (!seen[j]) {
              seen[j] = true;
              queue.push_back(j);
            }
          }
        }
      }
    }
  }

  // Serpentine fill with row capacity = row width.  Uneven cell widths can
  // make the area-derived row width too tight; widen and retry.
  for (int attempt = 0;; ++attempt) {
    SECFLOW_CHECK(attempt < 16, "placement overflow: die sizing failed");
    bool overflow = false;
    for (auto& row : st.rows) row.clear();
    std::size_t row = 0;
    bool forward = true;
    std::int64_t used = 0;
    for (std::size_t idx : order) {
      const std::int64_t w = ((st.width[idx] + pitch - 1) / pitch) * pitch;
      if (used + w > fp.row_width_dbu && row + 1 < st.rows.size()) {
        ++row;
        forward = !forward;
        used = 0;
      }
      if (used + w > fp.row_width_dbu && !st.rows[row].empty()) {
        overflow = true;
        break;
      }
      if (forward) {
        st.rows[row].push_back(idx);
      } else {
        st.rows[row].insert(st.rows[row].begin(), idx);
      }
      st.row_of[idx] = row;
      used += w;
    }
    if (!overflow) break;
    // Widen rows by 1/8 (snapped to pitch) and regrow the die.
    fp.row_width_dbu += std::max<std::int64_t>(
        pitch, ((fp.row_width_dbu / 8 + pitch - 1) / pitch) * pitch);
    fp.core.hi.x = fp.core.lo.x + fp.row_width_dbu;
    fp.die.hi.x = fp.core.hi.x + (fp.core.lo.x - fp.die.lo.x);
  }
  for (std::size_t r = 0; r < st.rows.size(); ++r) pack_row(st, r, pitch);

  auto origin_of = [&](std::size_t idx) {
    return Point{fp.core.lo.x + st.x_of[idx],
                 fp.core.lo.y + static_cast<std::int64_t>(st.row_of[idx]) *
                                    fp.row_height_dbu};
  };
  std::unordered_map<std::int32_t, std::size_t> index_of;
  for (std::size_t i = 0; i < n; ++i) index_of[insts[i].value()] = i;

  auto net_hpwl = [&](NetId net) -> std::int64_t {
    const Net& nn = nl.net(net);
    if (nn.pins.size() < 2) return 0;
    std::int64_t lx = INT64_MAX, ly = INT64_MAX, hx = INT64_MIN,
                 hy = INT64_MIN;
    for (const PinRef& p : nn.pins) {
      const std::size_t i = index_of.at(p.inst.value());
      const LefMacro& m = lef.macro(nl.cell_of(p.inst).name);
      const Point pos =
          origin_of(i) +
          m.pins[static_cast<std::size_t>(p.pin)].offset;
      lx = std::min(lx, pos.x);
      hx = std::max(hx, pos.x);
      ly = std::min(ly, pos.y);
      hy = std::max(hy, pos.y);
    }
    return (hx - lx) + (hy - ly);
  };

  // Simulated annealing: swap two instances (re-pack their rows).
  if (opts.sa_moves_per_instance > 0 && n > 2) {
    Rng rng(opts.seed);
    // Nets touching each instance, for incremental cost.
    std::vector<std::vector<NetId>> nets_of(n);
    for (std::size_t i = 0; i < n; ++i) {
      for (const NetId net : nl.instance(insts[i]).conns) {
        if (net.valid()) nets_of[i].push_back(net);
      }
    }
    auto local_cost = [&](std::size_t a, std::size_t b) {
      std::int64_t c = 0;
      for (NetId net : nets_of[a]) c += net_hpwl(net);
      for (NetId net : nets_of[b]) c += net_hpwl(net);
      return c;
    };
    const long total_moves =
        static_cast<long>(opts.sa_moves_per_instance) * static_cast<long>(n);
    double temperature = static_cast<double>(fp.row_width_dbu) / 2;
    const double cooling =
        std::pow(1e-3, 1.0 / std::max<long>(total_moves, 1));
    for (long move = 0; move < total_moves; ++move) {
      const std::size_t a = rng.next_below(n);
      const std::size_t b = rng.next_below(n);
      if (a == b) continue;
      const std::int64_t before = local_cost(a, b);
      // Swap slots.
      const std::size_t ra = st.row_of[a], rb = st.row_of[b];
      auto& row_a = st.rows[ra];
      auto& row_b = st.rows[rb];
      const auto ia = std::find(row_a.begin(), row_a.end(), a);
      const auto ib = std::find(row_b.begin(), row_b.end(), b);
      std::iter_swap(ia, ib);
      std::swap(st.row_of[a], st.row_of[b]);
      pack_row(st, ra, pitch);
      if (rb != ra) pack_row(st, rb, pitch);
      bool keep = true;
      // Reject if a row overflowed.
      for (std::size_t r : {ra, rb}) {
        if (!st.rows[r].empty()) {
          const std::size_t last = st.rows[r].back();
          if (st.x_of[last] + st.width[last] > fp.row_width_dbu) keep = false;
        }
      }
      std::int64_t after = keep ? local_cost(a, b) : 0;
      if (keep) {
        const double delta = static_cast<double>(after - before);
        keep = delta <= 0 ||
               rng.next_double() < std::exp(-delta / temperature);
      }
      if (!keep) {
        const auto ja = std::find(st.rows[st.row_of[a]].begin(),
                                  st.rows[st.row_of[a]].end(), a);
        const auto jb = std::find(st.rows[st.row_of[b]].begin(),
                                  st.rows[st.row_of[b]].end(), b);
        std::iter_swap(ja, jb);
        std::swap(st.row_of[a], st.row_of[b]);
        pack_row(st, ra, pitch);
        if (rb != ra) pack_row(st, rb, pitch);
      }
      temperature *= cooling;
    }
  }

  DefDesign d;
  d.name = nl.name();
  d.die = fp.die;
  d.row_height_dbu = fp.row_height_dbu;
  d.track_pitch_dbu = pitch;
  for (std::size_t i = 0; i < n; ++i) {
    d.components.push_back(DefComponent{nl.instance(insts[i]).name,
                                        nl.cell_of(insts[i]).name,
                                        origin_of(i)});
  }
  for (NetId net : nl.net_ids()) {
    d.nets.push_back(DefNet{nl.net(net).name, {}, {}});
  }
  return d;
}

std::int64_t placement_hpwl(const Netlist& nl, const LefLibrary& lef,
                            const DefDesign& d) {
  std::int64_t total = 0;
  for (NetId net : nl.net_ids()) {
    const Net& nn = nl.net(net);
    if (nn.pins.size() < 2) continue;
    std::int64_t lx = INT64_MAX, ly = INT64_MAX, hx = INT64_MIN,
                 hy = INT64_MIN;
    for (const PinRef& p : nn.pins) {
      const CellType& type = nl.cell_of(p.inst);
      const Point pos = d.pin_position(
          lef, nl.instance(p.inst).name,
          type.pins[static_cast<std::size_t>(p.pin)].name);
      lx = std::min(lx, pos.x);
      hx = std::max(hx, pos.x);
      ly = std::min(ly, pos.y);
      hy = std::max(hy, pos.y);
    }
    total += (hx - lx) + (hy - ly);
  }
  return total;
}

}  // namespace secflow
