// Floorplanning and row-based standard-cell placement.
//
// Mirrors the paper's Silicon Ensemble setup: aspect ratio 1, fill factor
// 80 %.  Cells go into uniform rows; an initial connectivity-driven order
// is refined by simulated annealing on half-perimeter wirelength.
#pragma once

#include <cstdint>

#include "base/parallel.h"
#include "netlist/netlist.h"
#include "pnr/def.h"

namespace secflow {

struct PlaceOptions {
  double aspect_ratio = 1.0;  ///< die width / height target
  double fill_factor = 0.8;   ///< cell area / core area (paper: 80 %)
  std::uint64_t seed = 1;     ///< annealing seed (deterministic runs)
  /// Annealing moves per instance; 0 disables refinement.
  int sa_moves_per_instance = 60;
  /// Extra routing margin around the core, in track pitches.
  int margin_tracks = 8;
  /// Candidate swaps proposed per temperature step.  All candidates of a
  /// step are evaluated read-only (in parallel when `parallelism` allows)
  /// against the same placement snapshot; commits then run serially in
  /// proposal order, skipping proposals whose rows an earlier commit of
  /// the same step already touched.  The batch structure is fixed, so the
  /// refined placement is identical for any thread count.
  int sa_batch = 16;
  /// Candidate-evaluation parallelism.
  Parallelism parallelism;
};

/// Compute die and row geometry for `nl` under `opts`.
struct Floorplan {
  Rect die;
  Rect core;
  std::int64_t row_height_dbu = 0;
  int n_rows = 0;
  std::int64_t row_width_dbu = 0;
};

Floorplan make_floorplan(const Netlist& nl, const LefLibrary& lef,
                         const PlaceOptions& opts);

/// Place all instances of `nl`; returns a DefDesign with components placed
/// and nets declared (no routing).  Throws if the cells cannot fit.
DefDesign place_design(const Netlist& nl, const LefLibrary& lef,
                       const PlaceOptions& opts = {});

/// Total half-perimeter wirelength of the placement [DBU] (metric used by
/// the annealer; exposed for tests/benchmarks).
std::int64_t placement_hpwl(const Netlist& nl, const LefLibrary& lef,
                            const DefDesign& d);

}  // namespace secflow
