// ASCII rendering of placed-and-routed designs (used to reproduce the
// *pictures* of Fig 3 and Fig 5 in terminal form).
#pragma once

#include <string>

#include "pnr/def.h"

namespace secflow {

struct RenderOptions {
  int max_cols = 100;   ///< character budget; geometry is downsampled
  bool show_layers = false;  ///< label wires 1/2/3 instead of - and |
};

/// Render components ('#' outlines) and wires ('-', '|', '+' at vias).
std::string render_design(const DefDesign& d, const RenderOptions& opts = {});

}  // namespace secflow
