#include "pnr/def.h"

#include <fstream>
#include <sstream>

#include "base/error.h"
#include "base/units.h"

namespace secflow {

const DefComponent* DefDesign::find_component(const std::string& n) const {
  for (const DefComponent& c : components) {
    if (c.name == n) return &c;
  }
  return nullptr;
}

const DefNet* DefDesign::find_net(const std::string& n) const {
  for (const DefNet& net : nets) {
    if (net.name == n) return &net;
  }
  return nullptr;
}

DefNet* DefDesign::find_net(const std::string& n) {
  for (DefNet& net : nets) {
    if (net.name == n) return &net;
  }
  return nullptr;
}

std::int64_t DefDesign::total_wirelength() const {
  std::int64_t wl = 0;
  for (const DefNet& n : nets) wl += n.total_wirelength();
  return wl;
}

int DefDesign::total_vias() const {
  int v = 0;
  for (const DefNet& n : nets) v += static_cast<int>(n.vias.size());
  return v;
}

double DefDesign::die_area_um2() const {
  return dbu_to_um(die.width()) * dbu_to_um(die.height());
}

Point DefDesign::pin_position(const LefLibrary& lef,
                              const std::string& component,
                              const std::string& pin) const {
  const DefComponent* c = find_component(component);
  SECFLOW_CHECK(c != nullptr, "no component " + component);
  const LefMacro& m = lef.macro(c->macro);
  const LefPin* p = m.find_pin(pin);
  SECFLOW_CHECK(p != nullptr, "no pin " + pin + " on macro " + c->macro);
  return c->origin + p->offset;
}

std::string write_def(const DefDesign& d) {
  std::ostringstream os;
  os << "DESIGN " << d.name << " ;\n";
  os << "DIEAREA ( " << d.die.lo.x << ' ' << d.die.lo.y << " ) ( "
     << d.die.hi.x << ' ' << d.die.hi.y << " ) ;\n";
  os << "ROWHEIGHT " << d.row_height_dbu << " ;\n";
  os << "TRACKPITCH " << d.track_pitch_dbu << " ;\n";
  os << "COMPONENTS " << d.components.size() << " ;\n";
  for (const DefComponent& c : d.components) {
    os << "- " << c.name << ' ' << c.macro << " PLACED ( " << c.origin.x
       << ' ' << c.origin.y << " ) ;\n";
  }
  os << "END COMPONENTS\n";
  os << "NETS " << d.nets.size() << " ;\n";
  for (const DefNet& n : d.nets) {
    os << "- " << n.name << "\n";
    for (const Segment& s : n.wires) {
      os << "  ROUTED M" << (s.layer + 1) << ' ' << s.width << " ( " << s.a.x
         << ' ' << s.a.y << " ) ( " << s.b.x << ' ' << s.b.y << " )\n";
    }
    for (const DefVia& v : n.vias) {
      os << "  VIA M" << (v.from_layer + 1) << " M" << (v.to_layer + 1)
         << " ( " << v.at.x << ' ' << v.at.y << " )\n";
    }
    os << "  ;\n";
  }
  os << "END NETS\n";
  os << "END DESIGN\n";
  return os.str();
}

void write_def_file(const DefDesign& d, const std::string& path) {
  std::ofstream f(path);
  SECFLOW_CHECK(f.good(), "cannot open for write: " + path);
  f << write_def(d);
  SECFLOW_CHECK(f.good(), "write failed: " + path);
}

namespace {

class DefTokens {
 public:
  explicit DefTokens(const std::string& text) {
    std::istringstream is(text);
    std::string t;
    while (is >> t) toks_.push_back(t);
  }
  bool done() const { return pos_ >= toks_.size(); }
  const std::string& peek() const {
    static const std::string kEnd = "<eof>";
    return done() ? kEnd : toks_[pos_];
  }
  std::string next() {
    SECFLOW_CHECK(!done(), "unexpected end of DEF");
    return toks_[pos_++];
  }
  void expect(const std::string& kw) {
    const std::string t = next();
    if (t != kw) {
      throw ParseError("def", "expected '" + kw + "', got '" + t + "'");
    }
  }
  std::int64_t integer() {
    const std::string t = next();
    try {
      return std::stoll(t);
    } catch (const std::exception&) {
      throw ParseError("def", "expected integer, got '" + t + "'");
    }
  }
  Point point() {
    expect("(");
    const std::int64_t x = integer();
    const std::int64_t y = integer();
    expect(")");
    return Point{x, y};
  }
  int layer() {
    const std::string t = next();
    if (t.size() < 2 || t[0] != 'M') {
      throw ParseError("def", "expected layer, got '" + t + "'");
    }
    try {
      return std::stoi(t.substr(1)) - 1;
    } catch (const std::exception&) {
      throw ParseError("def", "bad layer name '" + t + "'");
    }
  }

 private:
  std::vector<std::string> toks_;
  std::size_t pos_ = 0;
};

}  // namespace

DefDesign parse_def(const std::string& text) {
  DefTokens ts(text);
  DefDesign d;
  ts.expect("DESIGN");
  d.name = ts.next();
  ts.expect(";");
  while (!ts.done()) {
    const std::string kw = ts.next();
    if (kw == "DIEAREA") {
      d.die.lo = ts.point();
      d.die.hi = ts.point();
      ts.expect(";");
    } else if (kw == "ROWHEIGHT") {
      d.row_height_dbu = ts.integer();
      ts.expect(";");
    } else if (kw == "TRACKPITCH") {
      d.track_pitch_dbu = ts.integer();
      ts.expect(";");
    } else if (kw == "COMPONENTS") {
      const std::int64_t n = ts.integer();
      ts.expect(";");
      for (std::int64_t i = 0; i < n; ++i) {
        ts.expect("-");
        DefComponent c;
        c.name = ts.next();
        c.macro = ts.next();
        ts.expect("PLACED");
        c.origin = ts.point();
        ts.expect(";");
        d.components.push_back(std::move(c));
      }
      ts.expect("END");
      ts.expect("COMPONENTS");
    } else if (kw == "NETS") {
      const std::int64_t n = ts.integer();
      ts.expect(";");
      for (std::int64_t i = 0; i < n; ++i) {
        ts.expect("-");
        DefNet net;
        net.name = ts.next();
        while (ts.peek() != ";") {
          const std::string item = ts.next();
          if (item == "ROUTED") {
            Segment s;
            s.layer = ts.layer();
            s.width = ts.integer();
            s.a = ts.point();
            s.b = ts.point();
            net.wires.push_back(s);
          } else if (item == "VIA") {
            DefVia v;
            v.from_layer = ts.layer();
            v.to_layer = ts.layer();
            v.at = ts.point();
            net.vias.push_back(v);
          } else {
            throw ParseError("def", "unknown net item: " + item);
          }
        }
        ts.expect(";");
        d.nets.push_back(std::move(net));
      }
      ts.expect("END");
      ts.expect("NETS");
    } else if (kw == "END") {
      ts.expect("DESIGN");
      break;
    } else {
      throw ParseError("def", "unknown keyword: " + kw);
    }
  }
  return d;
}

DefDesign parse_def_file(const std::string& path) {
  std::ifstream f(path);
  SECFLOW_CHECK(f.good(), "cannot open: " + path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return parse_def(ss.str());
}

}  // namespace secflow
