#include "pnr/check.h"

#include <algorithm>
#include <unordered_map>

#include "base/error.h"

namespace secflow {
namespace {

/// Union-find over small index sets.
class DisjointSet {
 public:
  explicit DisjointSet(std::size_t n) : parent_(n) {
    for (std::size_t i = 0; i < n; ++i) parent_[i] = i;
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

/// Distance from point `p` to segment `s` when p projects onto the span;
/// otherwise distance to the nearest endpoint (Manhattan-ish, exact for
/// axis-parallel segments).
std::int64_t point_segment_distance(const Point& p, const Segment& s) {
  const std::int64_t lx = std::min(s.a.x, s.b.x);
  const std::int64_t hx = std::max(s.a.x, s.b.x);
  const std::int64_t ly = std::min(s.a.y, s.b.y);
  const std::int64_t hy = std::max(s.a.y, s.b.y);
  const std::int64_t cx = std::clamp(p.x, lx, hx);
  const std::int64_t cy = std::clamp(p.y, ly, hy);
  return std::llabs(p.x - cx) + std::llabs(p.y - cy);
}

/// True when two same-layer axis-parallel segments touch (share a point).
bool segments_touch(const Segment& a, const Segment& b) {
  if (a.layer != b.layer) return false;
  const Rect ra = Rect::spanning(a.a, a.b);
  const Rect rb = Rect::spanning(b.a, b.b);
  return ra.overlaps(rb);
}

}  // namespace

CheckResult check_connectivity(const Netlist& nl, const LefLibrary& lef,
                               const DefDesign& routed,
                               std::int64_t tolerance_dbu) {
  CheckResult result;
  for (NetId nid : nl.net_ids()) {
    const Net& net = nl.net(nid);
    if (net.pins.size() < 2) continue;
    const DefNet* dnet = routed.find_net(net.name);
    if (dnet == nullptr) {
      result.ok = false;
      result.issues.push_back({net.name, "net missing from DEF"});
      continue;
    }
    ++result.nets_checked;
    // Elements: segments (0..S-1) and vias (S..S+V-1).
    const std::size_t S = dnet->wires.size();
    const std::size_t V = dnet->vias.size();
    if (S + V == 0) {
      // Legal only when every pin landed on the same spot (the router
      // collapsed the net); all pins must be mutually within tolerance.
      Point anchor;
      bool first = true;
      for (const PinRef& p : net.pins) {
        ++result.pins_checked;
        const CellType& type = nl.cell_of(p.inst);
        const Point pos = routed.pin_position(
            lef, nl.instance(p.inst).name,
            type.pins[static_cast<std::size_t>(p.pin)].name);
        if (first) {
          anchor = pos;
          first = false;
        } else if (manhattan(anchor, pos) > 2 * tolerance_dbu) {
          result.ok = false;
          result.issues.push_back({net.name, "net has no routing"});
          break;
        }
      }
      continue;
    }
    DisjointSet ds(S + V);
    for (std::size_t i = 0; i < S; ++i) {
      for (std::size_t j = i + 1; j < S; ++j) {
        if (segments_touch(dnet->wires[i], dnet->wires[j])) ds.unite(i, j);
      }
    }
    for (std::size_t v = 0; v < V; ++v) {
      const DefVia& via = dnet->vias[v];
      for (std::size_t i = 0; i < S; ++i) {
        const Segment& s = dnet->wires[i];
        if ((s.layer == via.from_layer || s.layer == via.to_layer) &&
            point_segment_distance(via.at, s) == 0) {
          ds.unite(S + v, i);
        }
      }
      // Stacked vias (M1->M2->M3 at one point) connect directly.
      for (std::size_t w = v + 1; w < V; ++w) {
        const DefVia& other = dnet->vias[w];
        if (via.at == other.at &&
            (via.from_layer == other.to_layer ||
             via.to_layer == other.from_layer ||
             via.from_layer == other.from_layer ||
             via.to_layer == other.to_layer)) {
          ds.unite(S + v, S + w);
        }
      }
    }
    // All elements connected?
    const std::size_t root = ds.find(0);
    for (std::size_t i = 1; i < S + V; ++i) {
      if (ds.find(i) != root) {
        result.ok = false;
        result.issues.push_back({net.name, "routing is disconnected"});
        break;
      }
    }
    // Every pin reached (within tolerance of some element of the net)?
    for (const PinRef& p : net.pins) {
      ++result.pins_checked;
      const CellType& type = nl.cell_of(p.inst);
      const std::string& pin_name =
          type.pins[static_cast<std::size_t>(p.pin)].name;
      const Point pos =
          routed.pin_position(lef, nl.instance(p.inst).name, pin_name);
      std::int64_t best = INT64_MAX;
      for (const Segment& s : dnet->wires) {
        best = std::min(best, point_segment_distance(pos, s));
      }
      for (const DefVia& v : dnet->vias) {
        best = std::min(best, manhattan(pos, v.at));
      }
      if (best > tolerance_dbu) {
        result.ok = false;
        result.issues.push_back(
            {net.name, "pin " + nl.instance(p.inst).name + "/" + pin_name +
                           " not reached (distance " + std::to_string(best) +
                           " dbu)"});
      }
    }
  }
  return result;
}

CheckResult check_shorts(const DefDesign& routed, std::int64_t pitch_dbu) {
  CheckResult result;
  SECFLOW_CHECK(pitch_dbu > 0, "bad pitch");
  std::unordered_map<std::uint64_t, const DefNet*> occupancy;
  auto key = [&](int layer, std::int64_t x, std::int64_t y) {
    return (static_cast<std::uint64_t>(layer) << 60) |
           (static_cast<std::uint64_t>((x / pitch_dbu) & 0x3FFFFFFF) << 30) |
           static_cast<std::uint64_t>((y / pitch_dbu) & 0x3FFFFFFF);
  };
  for (const DefNet& net : routed.nets) {
    ++result.nets_checked;
    for (const Segment& s : net.wires) {
      const std::int64_t steps = s.length() / pitch_dbu;
      for (std::int64_t i = 0; i <= steps; ++i) {
        const Point p = s.horizontal()
                            ? Point{std::min(s.a.x, s.b.x) + i * pitch_dbu, s.a.y}
                            : Point{s.a.x, std::min(s.a.y, s.b.y) + i * pitch_dbu};
        const auto [it, inserted] = occupancy.emplace(key(s.layer, p.x, p.y), &net);
        if (!inserted && it->second != &net) {
          result.ok = false;
          result.issues.push_back(
              {net.name, "short with " + it->second->name + " on M" +
                             std::to_string(s.layer + 1)});
        }
      }
    }
  }
  return result;
}

namespace {

/// Distance from a point to the nearest element (wire or via) of a net.
std::int64_t distance_to_net(const DefNet& net, const Point& pos) {
  std::int64_t best = INT64_MAX;
  for (const Segment& s : net.wires) {
    best = std::min(best, point_segment_distance(pos, s));
  }
  for (const DefVia& v : net.vias) {
    best = std::min(best, manhattan(pos, v.at));
  }
  return best;
}

}  // namespace

CheckResult check_stream_out(const Netlist& fat, const LefLibrary& diff_lef,
                             const DefDesign& diff,
                             std::int64_t tolerance_dbu) {
  CheckResult result;
  for (NetId nid : fat.net_ids()) {
    const Net& net = fat.net(nid);
    if (net.pins.size() < 2) continue;
    const DefNet* t_rail = diff.find_net(net.name + "_t");
    const DefNet* f_rail = diff.find_net(net.name + "_f");
    const DefNet* single = diff.find_net(net.name);
    if (t_rail == nullptr && f_rail == nullptr && single == nullptr) {
      result.ok = false;
      result.issues.push_back({net.name, "net missing from diff design"});
      continue;
    }
    ++result.nets_checked;
    for (const PinRef& p : net.pins) {
      const CellType& type = fat.cell_of(p.inst);
      const std::string& pin_name =
          type.pins[static_cast<std::size_t>(p.pin)].name;
      const std::string& comp = fat.instance(p.inst).name;
      const DefComponent* c = diff.find_component(comp);
      if (c == nullptr) {
        result.ok = false;
        result.issues.push_back({net.name, "component " + comp + " missing"});
        continue;
      }
      const LefMacro& macro = diff_lef.macro(c->macro);
      auto check_pin = [&](const DefNet* rail, const std::string& lef_pin) {
        if (rail == nullptr) {
          result.ok = false;
          result.issues.push_back({net.name, "rail missing for " + lef_pin});
          return;
        }
        const LefPin* lp = macro.find_pin(lef_pin);
        if (lp == nullptr) {
          result.ok = false;
          result.issues.push_back(
              {net.name, "diff LEF lacks pin " + lef_pin + " on " + c->macro});
          return;
        }
        ++result.pins_checked;
        const Point pos = c->origin + lp->offset;
        if (distance_to_net(*rail, pos) > tolerance_dbu) {
          result.ok = false;
          result.issues.push_back(
              {rail->name, "pin " + comp + "/" + lef_pin + " not reached"});
        }
      };
      if (pin_name == "CK" || single != nullptr) {
        check_pin(single, pin_name);
      } else {
        check_pin(t_rail, pin_name + "_t");
        check_pin(f_rail, pin_name + "_f");
      }
    }
  }
  return result;
}

CheckResult check_differential_symmetry(const DefDesign& diff,
                                        std::int64_t fine_pitch_dbu) {
  CheckResult result;
  for (const DefNet& net : diff.nets) {
    if (net.name.size() < 2 ||
        net.name.substr(net.name.size() - 2) != "_t") {
      continue;
    }
    const std::string base = net.name.substr(0, net.name.size() - 2);
    const DefNet* twin = diff.find_net(base + "_f");
    if (twin == nullptr) {
      result.ok = false;
      result.issues.push_back({net.name, "missing false rail"});
      continue;
    }
    ++result.nets_checked;
    if (net.total_wirelength() != twin->total_wirelength()) {
      result.ok = false;
      result.issues.push_back({net.name, "rail length mismatch"});
    }
    if (net.vias.size() != twin->vias.size()) {
      result.ok = false;
      result.issues.push_back({net.name, "rail via count mismatch"});
    }
    if (net.wires.size() != twin->wires.size()) {
      result.ok = false;
      result.issues.push_back({net.name, "rail segment count mismatch"});
      continue;
    }
    for (std::size_t i = 0; i < net.wires.size(); ++i) {
      const Segment expected =
          net.wires[i].translated(fine_pitch_dbu, fine_pitch_dbu);
      if (!(expected == twin->wires[i])) {
        result.ok = false;
        result.issues.push_back(
            {net.name, "segment " + std::to_string(i) + " not a (+p,+p) twin"});
        break;
      }
    }
  }
  return result;
}

}  // namespace secflow
