// Placed-and-routed design data (DEF-lite), the fat.def / diff.def
// artifacts of the flow.
//
// A DefDesign references a netlist by component/net names and a LefLibrary
// by macro names; geometry is DBU.  Wires are axis-parallel segments plus
// explicit vias (layer changes at a point).
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "base/geometry.h"
#include "lef/lef.h"

namespace secflow {

struct DefComponent {
  std::string name;   ///< instance name
  std::string macro;  ///< LEF macro name
  Point origin;       ///< lower-left corner [DBU]
};

struct DefVia {
  Point at;
  int from_layer = 0;
  int to_layer = 0;
};

struct DefNet {
  std::string name;
  std::vector<Segment> wires;
  std::vector<DefVia> vias;

  std::int64_t total_wirelength() const {
    std::int64_t wl = 0;
    for (const Segment& s : wires) wl += s.length();
    return wl;
  }
};

struct DefDesign {
  std::string name;
  Rect die;
  std::int64_t row_height_dbu = 0;
  std::int64_t track_pitch_dbu = 0;  ///< pitch the wires are drawn on
  std::vector<DefComponent> components;
  std::vector<DefNet> nets;

  const DefComponent* find_component(const std::string& name) const;
  const DefNet* find_net(const std::string& name) const;
  DefNet* find_net(const std::string& name);

  std::int64_t total_wirelength() const;
  int total_vias() const;
  /// Die area in um^2.
  double die_area_um2() const;

  /// Absolute position of a component pin (component origin + LEF offset).
  Point pin_position(const LefLibrary& lef, const std::string& component,
                     const std::string& pin) const;
};

/// DEF-lite text round-trip.
std::string write_def(const DefDesign& d);
void write_def_file(const DefDesign& d, const std::string& path);
DefDesign parse_def(const std::string& text);
DefDesign parse_def_file(const std::string& path);

}  // namespace secflow
