// Physical verification of routed designs.
//
// Two checks mirror the paper's stream-out validation:
//  * geometric connectivity: each net's wires+vias form one connected
//    component that reaches every pin the netlist says it must connect;
//  * short check: no two different nets share a grid point on a layer.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.h"
#include "pnr/def.h"

namespace secflow {

struct CheckIssue {
  std::string net;
  std::string what;
};

struct CheckResult {
  bool ok = true;
  std::vector<CheckIssue> issues;
  int nets_checked = 0;
  int pins_checked = 0;
};

/// Verify that `routed` implements the connectivity of `nl` (pin-name
/// based; nets with fewer than 2 pins are skipped).  `tolerance_dbu` is
/// the pin-to-wire snap distance the router was allowed.
CheckResult check_connectivity(const Netlist& nl, const LefLibrary& lef,
                               const DefDesign& routed,
                               std::int64_t tolerance_dbu);

/// Verify no two nets overlap on the same layer (grid-point sampling at
/// `pitch_dbu` granularity along every segment).
CheckResult check_shorts(const DefDesign& routed, std::int64_t pitch_dbu);

/// Verify the decomposition invariants on a differential design: for each
/// _t/_f pair, equal wire length, equal via count and every segment's twin
/// translated by exactly (+p, +p).
CheckResult check_differential_symmetry(const DefDesign& diff,
                                        std::int64_t fine_pitch_dbu);

/// The paper's stream-out verification: importing the differential netlist
/// must match the decomposed design.  For every fat net and every fat pin
/// (component, pin) it connects, the diff design's n_t / n_f rails must
/// reach the pin_t / pin_f offsets of the differential LEF macro.
/// Single-ended nets (clock) are checked against their unsplit pin.
CheckResult check_stream_out(const Netlist& fat, const LefLibrary& diff_lef,
                             const DefDesign& diff,
                             std::int64_t tolerance_dbu);

}  // namespace secflow
