#include "pnr/decompose.h"

#include <unordered_set>

#include "base/error.h"
#include "wddl/cell_substitution.h"

namespace secflow {

DefDesign decompose_interconnect(const DefDesign& fat,
                                 std::int64_t fine_pitch,
                                 std::int64_t fine_width,
                                 const DecomposeOptions& opts) {
  SECFLOW_CHECK(fine_pitch > 0 && fine_width > 0, "bad fine wire definition");
  std::unordered_set<std::string> single(opts.single_ended_nets.begin(),
                                         opts.single_ended_nets.end());
  DefDesign diff;
  diff.name = fat.name + "_diff";
  diff.die = fat.die;
  diff.row_height_dbu = fat.row_height_dbu;
  diff.track_pitch_dbu = fine_pitch;
  diff.components = fat.components;  // same placement, differential macros

  DefNet shield;
  shield.name = opts.shield_net;

  for (const DefNet& net : fat.nets) {
    if (single.contains(net.name)) {
      DefNet out;
      out.name = net.name;
      out.vias = net.vias;
      for (const Segment& s : net.wires) {
        out.wires.push_back(Segment{s.a, s.b, s.layer, fine_width});
      }
      diff.nets.push_back(std::move(out));
      continue;
    }
    DefNet t_rail;
    t_rail.name = rail_name(net.name, false);
    DefNet f_rail;
    f_rail.name = rail_name(net.name, true);
    for (const Segment& s : net.wires) {
      t_rail.wires.push_back(Segment{s.a, s.b, s.layer, fine_width});
      Segment shifted = s.translated(fine_pitch, fine_pitch);
      shifted.width = fine_width;
      f_rail.wires.push_back(shifted);
    }
    for (const DefVia& v : net.vias) {
      t_rail.vias.push_back(v);
      f_rail.vias.push_back(DefVia{
          {v.at.x + fine_pitch, v.at.y + fine_pitch}, v.from_layer,
          v.to_layer});
    }
    if (opts.add_shields) {
      for (const Segment& s : net.wires) {
        Segment sh = s.translated(2 * fine_pitch, 2 * fine_pitch);
        sh.width = fine_width;
        shield.wires.push_back(sh);
      }
    }
    diff.nets.push_back(std::move(t_rail));
    diff.nets.push_back(std::move(f_rail));
  }
  if (opts.add_shields && !shield.wires.empty()) {
    diff.nets.push_back(std::move(shield));
  }
  return diff;
}

LefLibrary make_diff_lef(const LefLibrary& fat_lef, double fine_pitch_um,
                         double fine_width_um) {
  LefLibrary diff("diff_lib");
  for (const LefLayer& l : fat_lef.layers()) {
    diff.add_layer(LefLayer{l.name, l.dir, fine_pitch_um, fine_width_um});
  }
  const std::int64_t p = um_to_dbu(fine_pitch_um);
  for (const LefMacro& m : fat_lef.macros()) {
    LefMacro out;
    out.name = m.name;
    out.width_dbu = m.width_dbu;
    out.height_dbu = m.height_dbu;
    for (const LefPin& pin : m.pins) {
      if (pin.name == "CK") {
        out.pins.push_back(pin);  // the clock stays single-ended
        continue;
      }
      out.pins.push_back(LefPin{pin.name + "_t", pin.dir, pin.offset});
      out.pins.push_back(LefPin{pin.name + "_f", pin.dir,
                                {pin.offset.x + p, pin.offset.y + p}});
    }
    diff.add_macro(std::move(out));
  }
  return diff;
}

}  // namespace secflow
