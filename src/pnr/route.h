// Gridded multi-layer maze router (the Silicon Ensemble stand-in).
//
// Routes on the track grid defined by the LEF in use: with the normal LEF
// this is single-width routing; with the fat LEF (doubled pitch and width)
// every wire reserves the space of two adjacent fine tracks — the paper's
// "fat wire" trick falls out of just swapping the library (section 2.2).
//
// Layers: M1/M3 horizontal, M2 vertical.  Negotiated-congestion routing
// (PathFinder-style): all nets are routed each iteration with rising
// penalties on shared nodes until no node is shared.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.h"
#include "pnr/def.h"

namespace secflow {

struct RouteOptions {
  int via_cost = 3;
  int max_iterations = 48;
  /// Print per-iteration congestion to stderr (debugging).
  bool verbose = false;
  /// Nets to skip entirely (e.g. power; empty by default).
  std::vector<std::string> skip_nets;
};

struct RouteStats {
  std::int64_t wirelength_dbu = 0;
  int vias = 0;
  int nets_routed = 0;
  int iterations = 0;
};

/// Route all multi-pin nets of `nl` into `placed` (wires filled in).
/// Throws Error when congestion cannot be resolved.
RouteStats route_design(const Netlist& nl, const LefLibrary& lef,
                        DefDesign& placed, const RouteOptions& opts = {});

/// Fast non-conflict-checked L-routing used by scale benchmarks: every net
/// gets an L-shaped two-segment route between consecutive pins.  Geometry
/// is legal DEF but may overlap; decomposition and parser timing do not
/// care.  Returns the same stats structure.
RouteStats route_design_quick(const Netlist& nl, const LefLibrary& lef,
                              DefDesign& placed);

}  // namespace secflow
