// Gridded multi-layer maze router (the Silicon Ensemble stand-in).
//
// Routes on the track grid defined by the LEF in use: with the normal LEF
// this is single-width routing; with the fat LEF (doubled pitch and width)
// every wire reserves the space of two adjacent fine tracks — the paper's
// "fat wire" trick falls out of just swapping the library (section 2.2).
//
// Layers: M1/M3 horizontal, M2 vertical.  Negotiated-congestion routing
// (PathFinder-style) with a throughput-oriented core (DESIGN.md §15):
//  * allocation-free A* search over persistent epoch-stamped state — no
//    per-sink full-grid refills, admissible Manhattan + via lower bound;
//  * bounded search windows around each net's pin bounding box, grown on
//    a deterministic escalation schedule until they cover the full grid;
//  * incremental rip-up-and-reroute — after the first iteration only nets
//    overlapping congested nodes are ripped, usage is maintained
//    incrementally;
//  * deterministic parallel net routing — spatially disjoint window
//    batches routed concurrently, committed in fixed net order, so the
//    routed geometry is bit-identical at any SECFLOW_THREADS.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "base/parallel.h"
#include "netlist/netlist.h"
#include "pnr/def.h"

namespace secflow {

struct RouteOptions {
  int via_cost = 3;
  int max_iterations = 48;
  /// Initial search-window margin in tracks around a net's pin bounding
  /// box (0 = the bounding box itself).  A net that stays congested after
  /// a reroute has its margin multiplied by `window_escalation` before the
  /// next attempt, saturating at the full grid, so window pruning never
  /// costs completeness — only early-iteration search breadth.
  int window_margin = 64;
  /// Multiplier applied to the window margin per escalation step (>= 2).
  int window_escalation = 4;
  /// After the first full iteration, rip up and reroute only the nets that
  /// overlap congested (shared) nodes instead of every net; every
  /// iteration routes batch-parallel against one pre-rip usage snapshot.
  /// Off = the classic serial reroute-everything loop where each net is
  /// ripped just before its search and negotiates against everyone
  /// else's live path (the bench's A/B reference).
  bool incremental = true;
  /// Threads for in-iteration batch routing; 0 = auto (SECFLOW_THREADS,
  /// else hardware).  Results are bit-identical at any thread count.
  Parallelism parallelism;
  /// Print per-iteration congestion to stderr (debugging).
  bool verbose = false;
  /// Nets to skip entirely (e.g. power; empty by default).
  std::vector<std::string> skip_nets;
};

struct RouteStats {
  std::int64_t wirelength_dbu = 0;
  int vias = 0;
  int nets_routed = 0;
  int iterations = 0;
  /// A* node expansions (heap pops) across all searches — the router's
  /// work metric; window pruning shows up here first.
  std::int64_t expanded_nodes = 0;
  /// Net reroutes attempted with an escalated (grown) window.
  int window_escalations = 0;
  /// Net routing passes whose window saturated at the full grid.
  int full_grid_searches = 0;
  /// Nets ripped up and rerouted after the first iteration.
  std::int64_t nets_ripped = 0;
};

/// Route all multi-pin nets of `nl` into `placed` (wires filled in).
/// Throws Error when congestion cannot be resolved.
RouteStats route_design(const Netlist& nl, const LefLibrary& lef,
                        DefDesign& placed, const RouteOptions& opts = {});

/// Fast non-conflict-checked L-routing used by scale benchmarks: every net
/// gets an L-shaped two-segment route between consecutive pins.  Geometry
/// is legal DEF but may overlap; decomposition and parser timing do not
/// care.  Returns the same stats structure.
RouteStats route_design_quick(const Netlist& nl, const LefLibrary& lef,
                              DefDesign& placed);

}  // namespace secflow
