// Interconnect decomposition (paper section 2.3): fat.def -> diff.def.
//
// Every fat wire is duplicated and translated: the true rail keeps the fat
// centre-line coordinates, the false rail is the same geometry translated
// by one fine track pitch diagonally (+p, +p) — a uniform translation
// preserves junction connectivity, parallel runs and equal lengths, which
// is exactly what makes the two rails' parasitics match.  Width is reduced
// to the normal wire width during stream-out (the diff LEF carries the
// normal wire definition).  Single-ended nets (the clock) are translated
// to the true-rail position only.
#pragma once

#include <string>
#include <vector>

#include "lef/lef.h"
#include "pnr/def.h"

namespace secflow {

struct DecomposeOptions {
  /// Nets kept single-ended (clock, power); width-reduced but not split.
  std::vector<std::string> single_ended_nets;
  /// The paper's "shielded lines" option: emit a grounded shield wire at
  /// (+2p, +2p) alongside every differential pair, so cross-talk couples
  /// to a static net instead of a neighbouring pair.  Requires the fat
  /// wires to have been routed with wire_scale = 3 (three fine tracks per
  /// fat wire: t rail, f rail, shield).
  bool add_shields = false;
  /// Name of the shield net ("VSS" by convention).
  std::string shield_net = "VSS";
};

/// Decompose a routed fat design.  `fine_pitch`/`fine_width` come from the
/// normal (non-fat) wire definition.
DefDesign decompose_interconnect(const DefDesign& fat,
                                 std::int64_t fine_pitch,
                                 std::int64_t fine_width,
                                 const DecomposeOptions& opts = {});

/// Differential physical library (diff_lib.lef): fat macros with each data
/// pin split into _t (original offset) and _f (offset + (p, p)) and the
/// normal wire definition.  Flop CK pins stay single-ended.
LefLibrary make_diff_lef(const LefLibrary& fat_lef, double fine_pitch_um,
                         double fine_width_um);

}  // namespace secflow
