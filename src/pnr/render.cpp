#include "pnr/render.h"

#include <algorithm>
#include <vector>

#include "base/error.h"

namespace secflow {

std::string render_design(const DefDesign& d, const RenderOptions& opts) {
  SECFLOW_CHECK(opts.max_cols > 10, "render budget too small");
  const std::int64_t w = std::max<std::int64_t>(d.die.width(), 1);
  const std::int64_t h = std::max<std::int64_t>(d.die.height(), 1);
  const int cols = opts.max_cols;
  // Terminal characters are ~2x taller than wide; halve the row count.
  const int rows = std::max(
      4, static_cast<int>(h * cols / (2 * w)));
  std::vector<std::string> canvas(static_cast<std::size_t>(rows),
                                  std::string(static_cast<std::size_t>(cols), '.'));
  auto to_col = [&](std::int64_t x) {
    return static_cast<int>(
        std::clamp<std::int64_t>((x - d.die.lo.x) * (cols - 1) / w, 0, cols - 1));
  };
  auto to_row = [&](std::int64_t y) {
    // y grows upward; rows grow downward.
    return static_cast<int>(std::clamp<std::int64_t>(
        (rows - 1) - (y - d.die.lo.y) * (rows - 1) / h, 0, rows - 1));
  };
  auto put = [&](int r, int c, char ch) {
    canvas[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] = ch;
  };

  // Component footprints.
  for (const DefComponent& c : d.components) {
    const int c0 = to_col(c.origin.x);
    const int r0 = to_row(c.origin.y);
    put(r0, c0, '#');
  }
  // Wires.
  for (const DefNet& net : d.nets) {
    for (const Segment& s : net.wires) {
      const char ch = opts.show_layers
                          ? static_cast<char>('1' + s.layer)
                          : (s.horizontal() ? '-' : '|');
      if (s.horizontal()) {
        const int r = to_row(s.a.y);
        const int ca = to_col(std::min(s.a.x, s.b.x));
        const int cb = to_col(std::max(s.a.x, s.b.x));
        for (int c = ca; c <= cb; ++c) put(r, c, ch);
      } else {
        const int c = to_col(s.a.x);
        const int ra = to_row(std::max(s.a.y, s.b.y));
        const int rb = to_row(std::min(s.a.y, s.b.y));
        for (int r = ra; r <= rb; ++r) put(r, c, ch);
      }
    }
    for (const DefVia& v : net.vias) {
      put(to_row(v.at.y), to_col(v.at.x), '+');
    }
  }

  std::string out;
  for (const std::string& line : canvas) {
    out += line;
    out += '\n';
  }
  return out;
}

}  // namespace secflow
