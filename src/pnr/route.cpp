#include "pnr/route.h"

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "base/error.h"
#include "base/parallel.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace secflow {
namespace {

struct Grid {
  std::int64_t pitch = 0;
  std::int64_t x0 = 0, y0 = 0;
  int nx = 0, ny = 0;
  int layers = 3;

  int nodes() const { return layers * nx * ny; }
  int node(int layer, int xi, int yi) const {
    return (layer * ny + yi) * nx + xi;
  }
  int layer_of(int n) const { return n / (nx * ny); }
  int yi_of(int n) const { return (n / nx) % ny; }
  int xi_of(int n) const { return n % nx; }
  Point pos(int n) const {
    return {x0 + static_cast<std::int64_t>(xi_of(n)) * pitch,
            y0 + static_cast<std::int64_t>(yi_of(n)) * pitch};
  }
  bool horizontal(int layer) const { return layer % 2 == 0; }

  int snap_xi(std::int64_t x) const {
    const std::int64_t xi = (x - x0 + pitch / 2) / pitch;
    return static_cast<int>(std::clamp<std::int64_t>(xi, 0, nx - 1));
  }
  int snap_yi(std::int64_t y) const {
    const std::int64_t yi = (y - y0 + pitch / 2) / pitch;
    return static_cast<int>(std::clamp<std::int64_t>(yi, 0, ny - 1));
  }
};

/// Inclusive rectangle of grid columns/rows (all layers) a net's search
/// may touch.  Both the A* expansion and the committed path stay inside
/// the window, so two nets with disjoint windows never read or write the
/// same grid node — the invariant batch-parallel routing relies on.
struct Window {
  int x0 = 0, y0 = 0, x1 = 0, y1 = 0;
  bool contains(int xi, int yi) const {
    return xi >= x0 && xi <= x1 && yi >= y0 && yi <= y1;
  }
};

struct NetTask {
  std::size_t net_index = 0;       // into DefDesign.nets
  std::vector<int> pin_nodes;      // one node per netlist pin (layer 0)
  std::vector<int> distinct_pins;  // deduplicated; usage-counted once
  std::vector<int> path;           // routed non-pin tree nodes
  int bb_x0 = 0, bb_x1 = 0, bb_y0 = 0, bb_y1 = 0;  // pin bounding box
  int escalations = 0;  // reroutes attempted with a grown window
};

/// Persistent per-thread search scratch, full-grid sized but never
/// refilled between searches: a slot is valid only while its generation
/// stamp matches the current epoch, so starting a new search or moving to
/// the next net is O(1) and steady-state routing allocates nothing.
class RouterSearchState {
 public:
  void prepare(int n_nodes) {
    if (static_cast<int>(dist_.size()) != n_nodes) {
      dist_.assign(static_cast<std::size_t>(n_nodes), 0);
      prev_.assign(static_cast<std::size_t>(n_nodes), -1);
      search_mark_.assign(static_cast<std::size_t>(n_nodes), 0);
      tree_mark_.assign(static_cast<std::size_t>(n_nodes), 0);
      pin_mark_.assign(static_cast<std::size_t>(n_nodes), 0);
      search_epoch_ = tree_epoch_ = pin_epoch_ = 0;
    }
  }

  void begin_search() {
    bump(search_epoch_, search_mark_);
    heap_.clear();
  }
  void begin_net() {
    bump(tree_epoch_, tree_mark_);
    bump(pin_epoch_, pin_mark_);
  }

  bool visited(int n) const { return search_mark_[n] == search_epoch_; }
  int dist(int n) const { return dist_[n]; }
  int prev(int n) const { return prev_[n]; }
  void set(int n, int d, int from) {
    dist_[n] = d;
    prev_[n] = from;
    search_mark_[n] = search_epoch_;
  }

  bool in_tree(int n) const { return tree_mark_[n] == tree_epoch_; }
  void add_tree(int n) { tree_mark_[n] = tree_epoch_; }
  bool is_self_pin(int n) const { return pin_mark_[n] == pin_epoch_; }
  void mark_self_pin(int n) { pin_mark_[n] = pin_epoch_; }

  /// Min-heap of (f = g + h, node), reused across searches.
  std::vector<std::pair<int, int>>& heap() { return heap_; }
  /// Scratch for the nodes a search adds to the tree, reused across nets.
  std::vector<int>& new_nodes() { return new_nodes_; }

 private:
  static void bump(std::uint32_t& epoch, std::vector<std::uint32_t>& mark) {
    if (++epoch == 0) {  // wrapped: stale stamps could alias — hard reset
      std::fill(mark.begin(), mark.end(), 0u);
      epoch = 1;
    }
  }

  std::vector<int> dist_;
  std::vector<int> prev_;
  std::vector<std::uint32_t> search_mark_;
  std::vector<std::uint32_t> tree_mark_;
  std::vector<std::uint32_t> pin_mark_;
  std::uint32_t search_epoch_ = 0, tree_epoch_ = 0, pin_epoch_ = 0;
  std::vector<std::pair<int, int>> heap_;
  std::vector<int> new_nodes_;
};

/// Each pool worker (and the caller) keeps one persistent state; the
/// routed result never depends on a state's history thanks to the epoch
/// stamps, so which thread routes which net is invisible in the output.
RouterSearchState& thread_state() {
  thread_local RouterSearchState state;
  return state;
}

/// Admissible (and consistent) cost-to-go lower bound on the via-cost
/// grid: every planar step enters a node costing >= 1, reaching the
/// target's layer takes >= |dL| via edges costing >= via_cost + 1 each,
/// and a same-layer detour through another layer (needed when movement in
/// the required direction is impossible on this layer) costs two more via
/// edges.  See DESIGN.md §15 for the admissibility argument.
int heuristic(const Grid& g, int u, int txi, int tyi, int tlayer,
              int via_cost) {
  const int dx = std::abs(g.xi_of(u) - txi);
  const int dy = std::abs(g.yi_of(u) - tyi);
  const int layer = g.layer_of(u);
  int h = dx + dy + std::abs(layer - tlayer) * (via_cost + 1);
  if (layer == tlayer && ((dx > 0 && !g.horizontal(layer)) ||
                          (dy > 0 && g.horizontal(layer)))) {
    h += 2 * (via_cost + 1);
  }
  return h;
}

/// A* from the net's current tree (sources, g = 0) to `target`, expanding
/// only nodes inside `win`.  On success fills st.new_nodes() with the
/// found path's nodes that are not yet in the tree (source-to-target
/// order, target included) and returns true.  Reads the shared
/// usage/history arrays only at nodes inside the window.
bool astar_connect(const Grid& g, RouterSearchState& st,
                   const std::vector<int>& tree, int target,
                   const Window& win, const RouteOptions& opts,
                   const std::vector<int>& usage,
                   const std::vector<int>& history,
                   const std::vector<int>& pin_owner, int self,
                   int iteration, std::int64_t& expanded) {
  st.begin_search();
  auto& heap = st.heap();
  const int txi = g.xi_of(target), tyi = g.yi_of(target);
  const int tlayer = g.layer_of(target);
  const auto h_of = [&](int n) {
    return heuristic(g, n, txi, tyi, tlayer, opts.via_cost);
  };
  const auto push = [&](int n, int d, int from) {
    st.set(n, d, from);
    heap.emplace_back(d + h_of(n), n);
    std::push_heap(heap.begin(), heap.end(), std::greater<>());
  };
  const int congestion_penalty = 8 * iteration + 8;
  const auto node_cost = [&](int n) {
    int c = 1 + history[n];
    const int foreign = usage[n] - (st.is_self_pin(n) ? 1 : 0);
    if (foreign > 0) c += foreign * congestion_penalty;
    return c;
  };
  for (int s : tree) push(s, 0, -1);

  while (!heap.empty()) {
    const auto [f, u] = heap.front();
    std::pop_heap(heap.begin(), heap.end(), std::greater<>());
    heap.pop_back();
    if (f != st.dist(u) + h_of(u)) continue;  // stale heap entry
    ++expanded;
    if (u == target) {
      // Walk the prev chain back to the tree, collecting the new nodes.
      auto& fresh = st.new_nodes();
      fresh.clear();
      for (int n = target; n != -1 && !st.in_tree(n); n = st.prev(n)) {
        fresh.push_back(n);
      }
      std::reverse(fresh.begin(), fresh.end());
      return true;
    }
    const int d = st.dist(u);
    const int layer = g.layer_of(u);
    const int xi = g.xi_of(u);
    const int yi = g.yi_of(u);
    const auto relax = [&](int v, int extra) {
      // Another net's pin node is a hard obstacle: its owner can never
      // move it, so a conflict there is unresolvable by negotiation.
      // Pins exist only on layer 0 and every layer-0 node has a pin-free
      // via neighbor above, so blocking them cannot trap a net.
      if (pin_owner[v] >= 0 && pin_owner[v] != self) return;
      const int nd = d + node_cost(v) + extra;
      if (!st.visited(v) || nd < st.dist(v)) push(v, nd, u);
    };
    if (g.horizontal(layer)) {
      if (xi > win.x0) relax(u - 1, 0);
      if (xi < win.x1) relax(u + 1, 0);
    } else {
      if (yi > win.y0) relax(u - g.nx, 0);
      if (yi < win.y1) relax(u + g.nx, 0);
    }
    if (layer > 0) relax(u - g.nx * g.ny, opts.via_cost);
    if (layer + 1 < g.layers) relax(u + g.nx * g.ny, opts.via_cost);
  }
  return false;
}

/// Outcome of routing one net inside its window.  Workers fill these
/// without touching shared state; the caller commits them in fixed net
/// order after the batch joins.
struct PassResult {
  bool ok = false;
  std::vector<int> path;  // new tree nodes beyond the pins
  std::int64_t expanded = 0;
};

/// Route every sink of `t` inside `win` against the current usage and
/// history.  Pure with respect to shared arrays: reads only nodes inside
/// the window, writes nothing global.
PassResult route_net_pass(const Grid& g, const NetTask& t, const Window& win,
                          const RouteOptions& opts,
                          const std::vector<int>& usage,
                          const std::vector<int>& history,
                          const std::vector<int>& pin_owner, int iteration) {
  RouterSearchState& st = thread_state();
  st.prepare(g.nodes());
  st.begin_net();
  for (int n : t.distinct_pins) st.mark_self_pin(n);

  PassResult r;
  std::vector<int> tree = {t.pin_nodes.front()};
  st.add_tree(tree.front());
  for (std::size_t pi = 1; pi < t.pin_nodes.size(); ++pi) {
    const int target = t.pin_nodes[pi];
    if (st.in_tree(target)) continue;
    if (!astar_connect(g, st, tree, target, win, opts, usage, history,
                       pin_owner, static_cast<int>(t.net_index), iteration,
                       r.expanded)) {
      return r;  // window too small (cannot happen once it spans the grid)
    }
    for (int n : st.new_nodes()) {
      st.add_tree(n);
      tree.push_back(n);
      // The committed path carries only non-pin nodes: pin nodes are
      // usage-counted once at init and never ripped, so a pin reached or
      // crossed by the search must not be counted a second time.
      if (!st.is_self_pin(n)) r.path.push_back(n);
    }
  }
  r.ok = true;
  return r;
}

/// Convert a net's tree (pins + routed nodes) into merged DEF segments and
/// vias.  Membership is an epoch-stamped flat array instead of a per-net
/// hash set; a planar segment is emitted once per maximal run (at the run
/// start), a via once per stacked pair.
class GeometryEmitter {
 public:
  explicit GeometryEmitter(const Grid& g) : g_(g) {
    mark_.assign(static_cast<std::size_t>(g.nodes()), 0);
  }

  void emit(const NetTask& t, std::int64_t width, DefNet& net) {
    if (++epoch_ == 0) {
      std::fill(mark_.begin(), mark_.end(), 0u);
      epoch_ = 1;
    }
    nodes_.clear();
    const auto add = [&](int n) {
      if (mark_[n] != epoch_) {
        mark_[n] = epoch_;
        nodes_.push_back(n);
      }
    };
    for (int n : t.pin_nodes) add(n);
    for (int n : t.path) add(n);

    const auto in_tree = [&](int n) { return mark_[n] == epoch_; };
    for (const int u : nodes_) {
      const int layer = g_.layer_of(u);
      const int step = g_.horizontal(layer) ? 1 : g_.nx;
      const auto has_planar = [&](int n, int delta) {
        return g_.horizontal(layer)
                   ? (delta > 0 ? g_.xi_of(n) + 1 < g_.nx : g_.xi_of(n) > 0)
                   : (delta > 0 ? g_.yi_of(n) + 1 < g_.ny : g_.yi_of(n) > 0);
      };
      // Emit each maximal planar run once, from its low end.
      if (!(has_planar(u, -1) && in_tree(u - step))) {
        int end = u;
        while (has_planar(end, +1) && in_tree(end + step)) end += step;
        if (end != u) {
          net.wires.push_back(Segment{g_.pos(u), g_.pos(end), layer, width});
        }
      }
      if (layer + 1 < g_.layers && in_tree(u + g_.nx * g_.ny)) {
        net.vias.push_back(DefVia{g_.pos(u), layer, layer + 1});
      }
    }
  }

 private:
  const Grid& g_;
  std::vector<std::uint32_t> mark_;
  std::vector<int> nodes_;
  std::uint32_t epoch_ = 0;
};

/// The deterministic window-escalation schedule: a net rerouted `c` times
/// while still congested searches inside its pin bounding box expanded by
/// margin(c) tracks; margin(0) = window_margin, then x window_escalation
/// per step, saturating at the full grid.
Window window_of(const Grid& g, const NetTask& t, const RouteOptions& opts,
                 bool* full_grid) {
  std::int64_t m = opts.window_margin;
  for (int c = 0; c < t.escalations; ++c) {
    m = std::max<std::int64_t>(m, 1) * opts.window_escalation;
    if (m >= std::max(g.nx, g.ny)) break;  // saturated
  }
  Window w;
  w.x0 = static_cast<int>(std::max<std::int64_t>(0, t.bb_x0 - m));
  w.y0 = static_cast<int>(std::max<std::int64_t>(0, t.bb_y0 - m));
  w.x1 = static_cast<int>(std::min<std::int64_t>(g.nx - 1, t.bb_x1 + m));
  w.y1 = static_cast<int>(std::min<std::int64_t>(g.ny - 1, t.bb_y1 + m));
  if (full_grid != nullptr) {
    *full_grid = w.x0 == 0 && w.y0 == 0 && w.x1 == g.nx - 1 &&
                 w.y1 == g.ny - 1;
  }
  return w;
}

/// Greedy first-fit coloring of the pending nets' windows into batches of
/// pairwise-disjoint windows (conservatively at coarse-tile granularity).
/// Deterministic: depends only on the pending order and the windows.
/// Nets that do not fit in `kMaxBatches` go to the serial tail.
struct BatchPlan {
  std::vector<std::vector<std::size_t>> batches;  // indices into pending
  std::vector<std::size_t> serial_tail;
};

BatchPlan plan_batches(const Grid& g, const std::vector<Window>& windows,
                       std::size_t n_pending) {
  constexpr std::size_t kMaxBatches = 32;
  constexpr int kTile = 32;  // grid cells per tile edge
  const int tx = (g.nx + kTile - 1) / kTile;
  const int ty = (g.ny + kTile - 1) / kTile;
  const std::size_t words =
      (static_cast<std::size_t>(tx) * static_cast<std::size_t>(ty) + 63) / 64;

  BatchPlan plan;
  std::vector<std::vector<std::uint64_t>> occupancy;
  for (std::size_t i = 0; i < n_pending; ++i) {
    const Window& w = windows[i];
    const int tx0 = w.x0 / kTile, tx1 = w.x1 / kTile;
    const int ty0 = w.y0 / kTile, ty1 = w.y1 / kTile;
    const auto tiles_clear = [&](const std::vector<std::uint64_t>& occ) {
      for (int yt = ty0; yt <= ty1; ++yt) {
        for (int xt = tx0; xt <= tx1; ++xt) {
          const std::size_t bit =
              static_cast<std::size_t>(yt) * static_cast<std::size_t>(tx) +
              static_cast<std::size_t>(xt);
          if ((occ[bit >> 6] >> (bit & 63)) & 1u) return false;
        }
      }
      return true;
    };
    const auto tiles_set = [&](std::vector<std::uint64_t>& occ) {
      for (int yt = ty0; yt <= ty1; ++yt) {
        for (int xt = tx0; xt <= tx1; ++xt) {
          const std::size_t bit =
              static_cast<std::size_t>(yt) * static_cast<std::size_t>(tx) +
              static_cast<std::size_t>(xt);
          occ[bit >> 6] |= std::uint64_t{1} << (bit & 63);
        }
      }
    };
    bool placed = false;
    for (std::size_t b = 0; b < plan.batches.size(); ++b) {
      if (tiles_clear(occupancy[b])) {
        tiles_set(occupancy[b]);
        plan.batches[b].push_back(i);
        placed = true;
        break;
      }
    }
    if (!placed && plan.batches.size() < kMaxBatches) {
      occupancy.emplace_back(words, 0u);
      tiles_set(occupancy.back());
      plan.batches.emplace_back(1, i);
      placed = true;
    }
    if (!placed) plan.serial_tail.push_back(i);
  }
  return plan;
}

}  // namespace

RouteStats route_design(const Netlist& nl, const LefLibrary& lef,
                        DefDesign& placed, const RouteOptions& opts) {
  Grid g;
  g.pitch = lef.track_pitch_dbu();
  g.x0 = placed.die.lo.x;
  g.y0 = placed.die.lo.y;
  g.nx = static_cast<int>(placed.die.width() / g.pitch) + 1;
  g.ny = static_cast<int>(placed.die.height() / g.pitch) + 1;
  g.layers = static_cast<int>(lef.layers().size());
  const std::int64_t width = lef.wire_width_dbu();

  std::unordered_set<std::string> skip(opts.skip_nets.begin(),
                                       opts.skip_nets.end());

  // Pin landing nodes, with conflict-avoiding spiral search on M1.  The
  // radius escalates deterministically until a free node is found or the
  // whole grid has been scanned.  The owner array lives on after landing:
  // the search treats foreign-owned pin nodes as hard obstacles.
  std::vector<int> owner(static_cast<std::size_t>(g.nodes()), -1);
  std::vector<NetTask> tasks;
  std::unordered_map<std::string, std::size_t> net_index;
  for (std::size_t i = 0; i < placed.nets.size(); ++i) {
    net_index.emplace(placed.nets[i].name, i);
    placed.nets[i].wires.clear();
    placed.nets[i].vias.clear();
  }

  for (NetId nid : nl.net_ids()) {
    const Net& net = nl.net(nid);
    if (net.pins.size() < 2) continue;
    if (skip.contains(net.name)) continue;
    NetTask task;
    task.net_index = net_index.at(net.name);
    const int self = static_cast<int>(task.net_index);
    for (const PinRef& p : net.pins) {
      const CellType& type = nl.cell_of(p.inst);
      const Point pos = placed.pin_position(
          lef, nl.instance(p.inst).name,
          type.pins[static_cast<std::size_t>(p.pin)].name);
      const int base_xi = g.snap_xi(pos.x);
      const int base_yi = g.snap_yi(pos.y);
      int found = -1;
      int occupied = 0;
      const int r_max = std::max(g.nx, g.ny);
      for (int r = 0; r <= r_max && found < 0; ++r) {
        for (int dx = -r; dx <= r && found < 0; ++dx) {
          for (int dy = -r; dy <= r && found < 0; ++dy) {
            if (std::max(std::abs(dx), std::abs(dy)) != r) continue;
            const int xi = base_xi + dx, yi = base_yi + dy;
            if (xi < 0 || xi >= g.nx || yi < 0 || yi >= g.ny) continue;
            const int node = g.node(0, xi, yi);
            if (owner[node] == -1 || owner[node] == self) {
              found = node;
            } else {
              ++occupied;
            }
          }
        }
      }
      SECFLOW_CHECK(
          found >= 0,
          "no free pin landing for net " + net.name + ": every M1 node of "
          "the " + std::to_string(g.nx) + "x" + std::to_string(g.ny) +
          " grid near (" + std::to_string(pos.x) + ", " +
          std::to_string(pos.y) + ") is owned by another net (" +
          std::to_string(occupied) + " occupied nodes scanned)");
      owner[found] = self;
      task.pin_nodes.push_back(found);
    }
    task.distinct_pins = task.pin_nodes;
    std::sort(task.distinct_pins.begin(), task.distinct_pins.end());
    task.distinct_pins.erase(
        std::unique(task.distinct_pins.begin(), task.distinct_pins.end()),
        task.distinct_pins.end());
    task.bb_x0 = g.nx - 1;
    task.bb_y0 = g.ny - 1;
    task.bb_x1 = task.bb_y1 = 0;
    for (int n : task.distinct_pins) {
      task.bb_x0 = std::min(task.bb_x0, g.xi_of(n));
      task.bb_x1 = std::max(task.bb_x1, g.xi_of(n));
      task.bb_y0 = std::min(task.bb_y0, g.yi_of(n));
      task.bb_y1 = std::max(task.bb_y1, g.yi_of(n));
    }
    tasks.push_back(std::move(task));
  }

  // Incrementally maintained congestion state: usage counts every net's
  // distinct pin nodes once, plus every node of every committed path.
  std::vector<int> usage(static_cast<std::size_t>(g.nodes()), 0);
  std::vector<int> history(static_cast<std::size_t>(g.nodes()), 0);
  for (const NetTask& t : tasks) {
    for (int n : t.distinct_pins) ++usage[n];
  }

  RouteStats stats;
  bool converged = tasks.empty();
  // Pending nets for the current iteration (all of them initially; after
  // an iteration only the nets overlapping shared nodes — unless
  // incremental is off, which restores the reroute-everything loop).
  std::vector<std::size_t> pending(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) pending[i] = i;
  std::vector<char> was_pending(tasks.size(), 0);

  for (int iter = 0; iter < opts.max_iterations && !converged; ++iter) {
    Span iter_span("route.iteration", "pnr");
    iter_span.arg("iter", iter);
    iter_span.arg("pending", static_cast<int>(pending.size()));
    stats.iterations = iter + 1;
    if (iter > 0) {
      stats.nets_ripped += static_cast<std::int64_t>(pending.size());
      // Rotate the reroute order so no net permanently wins ties.
      std::rotate(pending.begin(), pending.begin() + 1 + (pending.size() / 3),
                  pending.end());
    }

    // Window per pending net under the escalation schedule.
    std::vector<Window> windows(pending.size());
    for (std::size_t i = 0; i < pending.size(); ++i) {
      const NetTask& t = tasks[pending[i]];
      bool full_grid = false;
      windows[i] = window_of(g, t, opts, &full_grid);
      if (t.escalations > 0) ++stats.window_escalations;
      if (full_grid) ++stats.full_grid_searches;
    }

    const auto rip = [&](NetTask& t) {
      for (int n : t.path) --usage[n];
      t.path.clear();
    };
    const auto commit = [&](PassResult& r, NetTask& t) {
      SECFLOW_CHECK(r.ok, "maze router: unreachable pin on net " +
                              placed.nets[t.net_index].name);
      stats.expanded_nodes += r.expanded;
      for (int n : r.path) ++usage[n];
      t.path = std::move(r.path);
    };

    // Batch-parallel routing: each batch's nets have pairwise-disjoint
    // windows, so routing them concurrently reads/writes disjoint node
    // sets and the committed result is bit-identical to routing them one
    // by one.  Commit happens serially in batch order after the join.
    const auto route_one = [&](std::size_t pi) {
      return route_net_pass(g, tasks[pending[pi]], windows[pi], opts,
                            usage, history, owner, iter);
    };
    if (opts.incremental) {
      // Rip every pending net before any search starts, so the usage the
      // searches read is independent of the order within this iteration
      // and the whole iteration routes against one clean snapshot.  Nets
      // take their simultaneous shortest paths and negotiate purely
      // through history — which keeps the converged geometry straight and
      // loosely packed, a property the differential decomposition's rail
      // balance depends on (DESIGN.md §15).
      for (std::size_t ti : pending) rip(tasks[ti]);

      // Batch-parallel routing: each batch's nets have pairwise-disjoint
      // windows, so routing them concurrently reads/writes disjoint node
      // sets and the committed result is bit-identical to routing them
      // one by one.  Commit happens serially in batch order after the
      // join.
      const BatchPlan plan = plan_batches(g, windows, pending.size());
      for (std::size_t b = 0; b < plan.batches.size(); ++b) {
        Span batch_span("route.batch", "pnr");
        batch_span.arg("iter", iter);
        batch_span.arg("batch", static_cast<int>(b));
        batch_span.arg("nets", static_cast<int>(plan.batches[b].size()));
        const std::vector<std::size_t>& batch = plan.batches[b];
        std::vector<PassResult> results;
        if (batch.size() > 1) {
          results = parallel_map(batch.size(), opts.parallelism,
                                 [&](std::size_t k) {
                                   return route_one(batch[k]);
                                 });
        } else {
          results.push_back(route_one(batch.front()));
        }
        for (std::size_t k = 0; k < batch.size(); ++k) {
          commit(results[k], tasks[pending[batch[k]]]);
        }
      }
      if (!plan.serial_tail.empty()) {
        // The tail routes against the same pre-rip snapshot as the
        // batches (routes first, commits after), so whether a net landed
        // in a batch or the tail does not change what its search sees.
        Span tail_span("route.serial_tail", "pnr");
        tail_span.arg("nets", static_cast<int>(plan.serial_tail.size()));
        std::vector<PassResult> results;
        results.reserve(plan.serial_tail.size());
        for (std::size_t pi : plan.serial_tail) {
          results.push_back(route_one(pi));
        }
        for (std::size_t k = 0; k < plan.serial_tail.size(); ++k) {
          commit(results[k], tasks[pending[plan.serial_tail[k]]]);
        }
      }
    } else {
      // Non-incremental mode reroutes every net each iteration with
      // one-at-a-time negotiation: each net is ripped just before its
      // search and committed right after, so it routes against everyone
      // else's current path.  Serial and trivially deterministic; this is
      // the reference loop the bench compares the incremental router to.
      Span span("route.serial_reroute", "pnr");
      span.arg("nets", static_cast<int>(pending.size()));
      for (std::size_t pi = 0; pi < pending.size(); ++pi) {
        NetTask& t = tasks[pending[pi]];
        rip(t);
        PassResult r = route_one(pi);
        commit(r, t);
      }
    }

    // Sharing check: one linear pass over the usage array (a node is
    // shared when more than one net occupies it; pins are unique per net
    // by construction, so usage > 1 always means a genuine conflict).
    int shared = 0;
    for (int n = 0; n < g.nodes(); ++n) {
      if (usage[n] > 1) {
        ++shared;
        history[n] += 1 + iter / 2;
      }
    }
    converged = shared == 0;

    // Next iteration's pending set: the nets touching a shared node (or
    // everyone when incremental is off).  A net that was just rerouted
    // and is still congested escalates its window.
    if (!converged) {
      std::fill(was_pending.begin(), was_pending.end(), 0);
      for (std::size_t ti : pending) was_pending[ti] = 1;
      pending.clear();
      for (std::size_t ti = 0; ti < tasks.size(); ++ti) {
        NetTask& t = tasks[ti];
        const auto overused = [&](const std::vector<int>& nodes) {
          for (int n : nodes) {
            if (usage[n] > 1) return true;
          }
          return false;
        };
        const bool congested = overused(t.distinct_pins) || overused(t.path);
        if (congested && was_pending[ti]) ++t.escalations;
        if (congested || !opts.incremental) pending.push_back(ti);
      }
    }

    iter_span.arg("shared_nodes", shared);
    Metrics::global().add("pnr.route.iterations");
    Metrics::global().add("pnr.route.shared_nodes",
                          static_cast<std::uint64_t>(shared));
    // verbose promotes the per-iteration line to info; silent by default.
    SECFLOW_LOG_AT(opts.verbose ? LogLevel::kInfo : LogLevel::kDebug, "pnr",
                   "route iteration", LogField("iter", iter),
                   LogField("shared_nodes", shared),
                   LogField("pending", static_cast<int>(pending.size())));
  }
  SECFLOW_CHECK(converged, "routing failed to converge (congestion)");

  // Emit geometry.
  GeometryEmitter emitter(g);
  for (const NetTask& t : tasks) {
    DefNet& net = placed.nets[t.net_index];
    emitter.emit(t, width, net);
    stats.wirelength_dbu += net.total_wirelength();
    stats.vias += static_cast<int>(net.vias.size());
    ++stats.nets_routed;
  }
  Metrics::global().add("pnr.route.nets_routed",
                        static_cast<std::uint64_t>(stats.nets_routed));
  Metrics::global().add("pnr.route.expanded_nodes",
                        static_cast<std::uint64_t>(stats.expanded_nodes));
  Metrics::global().add("pnr.route.window_escalations",
                        static_cast<std::uint64_t>(stats.window_escalations));
  Metrics::global().add("pnr.route.ripped_nets",
                        static_cast<std::uint64_t>(stats.nets_ripped));
  return stats;
}

RouteStats route_design_quick(const Netlist& nl, const LefLibrary& lef,
                              DefDesign& placed) {
  RouteStats stats;
  const std::int64_t width = lef.wire_width_dbu();
  std::unordered_map<std::string, std::size_t> net_index;
  for (std::size_t i = 0; i < placed.nets.size(); ++i) {
    net_index.emplace(placed.nets[i].name, i);
  }
  for (NetId nid : nl.net_ids()) {
    const Net& net = nl.net(nid);
    if (net.pins.size() < 2) continue;
    DefNet& dnet = placed.nets[net_index.at(net.name)];
    Point prev;
    bool first = true;
    for (const PinRef& p : net.pins) {
      const CellType& type = nl.cell_of(p.inst);
      const Point pos = placed.pin_position(
          lef, nl.instance(p.inst).name,
          type.pins[static_cast<std::size_t>(p.pin)].name);
      if (!first && pos != prev) {
        // L-route: horizontal on M1, vertical on M2; vias at both ends of
        // the vertical so consecutive L's (which restart on M1) connect.
        const Point corner{pos.x, prev.y};
        if (corner != prev) {
          dnet.wires.push_back(Segment{prev, corner, 0, width});
        }
        if (corner != pos) {
          dnet.wires.push_back(Segment{corner, pos, 1, width});
          dnet.vias.push_back(DefVia{corner, 0, 1});
          dnet.vias.push_back(DefVia{pos, 0, 1});
        }
      }
      prev = pos;
      first = false;
    }
    stats.wirelength_dbu += dnet.total_wirelength();
    stats.vias += static_cast<int>(dnet.vias.size());
    ++stats.nets_routed;
  }
  stats.iterations = 1;
  return stats;
}

}  // namespace secflow
