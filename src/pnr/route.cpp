#include "pnr/route.h"

#include <algorithm>
#include <queue>
#include <unordered_map>
#include <unordered_set>

#include "base/error.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace secflow {
namespace {

struct Grid {
  std::int64_t pitch = 0;
  std::int64_t x0 = 0, y0 = 0;
  int nx = 0, ny = 0;
  int layers = 3;

  int nodes() const { return layers * nx * ny; }
  int node(int layer, int xi, int yi) const {
    return (layer * ny + yi) * nx + xi;
  }
  int layer_of(int n) const { return n / (nx * ny); }
  int yi_of(int n) const { return (n / nx) % ny; }
  int xi_of(int n) const { return n % nx; }
  Point pos(int n) const {
    return {x0 + static_cast<std::int64_t>(xi_of(n)) * pitch,
            y0 + static_cast<std::int64_t>(yi_of(n)) * pitch};
  }
  bool horizontal(int layer) const { return layer % 2 == 0; }

  int snap_xi(std::int64_t x) const {
    const std::int64_t xi = (x - x0 + pitch / 2) / pitch;
    return static_cast<int>(std::clamp<std::int64_t>(xi, 0, nx - 1));
  }
  int snap_yi(std::int64_t y) const {
    const std::int64_t yi = (y - y0 + pitch / 2) / pitch;
    return static_cast<int>(std::clamp<std::int64_t>(yi, 0, ny - 1));
  }
};

struct NetTask {
  std::size_t net_index;       // into DefDesign.nets
  std::vector<int> pin_nodes;  // grid nodes (layer 0)
  std::vector<int> path;       // routed nodes (tree), filled by router
};

/// Dijkstra from the current tree (sources) to the target node.
/// Returns the path from a source to the target (inclusive), or empty.
std::vector<int> shortest_path(const Grid& g, const std::vector<int>& sources,
                               int target, const RouteOptions& opts,
                               const std::vector<int>& usage,
                               const std::vector<int>& history,
                               const std::vector<int>& owner, int self,
                               int iteration) {
  const int n = g.nodes();
  std::vector<int> dist(n, INT32_MAX);
  std::vector<int> prev(n, -1);
  using QE = std::pair<int, int>;  // (dist, node)
  std::priority_queue<QE, std::vector<QE>, std::greater<>> pq;
  for (int s : sources) {
    dist[s] = 0;
    pq.push({0, s});
  }
  auto node_cost = [&](int node) {
    // Base cost 1; congestion-negotiated penalties on foreign usage.
    int c = 1;
    const int foreign = usage[node] - (owner[node] == self ? 1 : 0);
    if (foreign > 0) c += foreign * (8 * iteration + 8);
    c += history[node];
    return c;
  };
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d != dist[u]) continue;
    if (u == target) break;
    const int layer = g.layer_of(u);
    const int xi = g.xi_of(u);
    const int yi = g.yi_of(u);
    auto relax = [&](int v, int extra) {
      const int nd = d + node_cost(v) + extra;
      if (nd < dist[v]) {
        dist[v] = nd;
        prev[v] = u;
        pq.push({nd, v});
      }
    };
    if (g.horizontal(layer)) {
      if (xi > 0) relax(u - 1, 0);
      if (xi + 1 < g.nx) relax(u + 1, 0);
    } else {
      if (yi > 0) relax(u - g.nx, 0);
      if (yi + 1 < g.ny) relax(u + g.nx, 0);
    }
    if (layer > 0) relax(u - g.nx * g.ny, opts.via_cost);
    if (layer + 1 < g.layers) relax(u + g.nx * g.ny, opts.via_cost);
  }
  if (dist[target] == INT32_MAX) return {};
  std::vector<int> path;
  for (int u = target; u != -1; u = prev[u]) path.push_back(u);
  std::reverse(path.begin(), path.end());
  return path;
}

/// Convert a set of tree nodes into merged DEF segments + vias.
void emit_geometry(const Grid& g, const std::vector<int>& tree,
                   std::int64_t width, DefNet& net) {
  std::unordered_set<int> in_tree(tree.begin(), tree.end());
  std::unordered_set<std::int64_t> edge_done;
  auto edge_key = [](int a, int b) {
    if (a > b) std::swap(a, b);
    return (static_cast<std::int64_t>(a) << 32) | static_cast<std::int64_t>(b);
  };
  for (int u : tree) {
    const int layer = g.layer_of(u);
    // Planar edges: walk maximal runs.
    const int step = g.horizontal(layer) ? 1 : g.nx;
    const int nb = u + step;
    const bool nb_ok = g.horizontal(layer)
                           ? g.xi_of(u) + 1 < g.nx
                           : g.yi_of(u) + 1 < g.ny;
    if (nb_ok && in_tree.contains(nb) && g.layer_of(nb) == layer &&
        !edge_done.contains(edge_key(u, nb))) {
      // Extend the run as far as possible.
      int start = u;
      while (true) {
        const int prev_n = start - step;
        const bool prev_ok = g.horizontal(layer)
                                 ? g.xi_of(start) > 0
                                 : g.yi_of(start) > 0;
        if (prev_ok && in_tree.contains(prev_n) &&
            g.layer_of(prev_n) == layer &&
            !edge_done.contains(edge_key(prev_n, start))) {
          start = prev_n;
        } else {
          break;
        }
      }
      int end = start;
      while (true) {
        const int next_n = end + step;
        const bool next_ok = g.horizontal(layer)
                                 ? g.xi_of(end) + 1 < g.nx
                                 : g.yi_of(end) + 1 < g.ny;
        if (next_ok && in_tree.contains(next_n) &&
            g.layer_of(next_n) == layer) {
          edge_done.insert(edge_key(end, next_n));
          end = next_n;
        } else {
          break;
        }
      }
      if (start != end) {
        net.wires.push_back(
            Segment{g.pos(start), g.pos(end), layer, width});
      }
    }
    // Vias.
    if (layer + 1 < g.layers) {
      const int up = u + g.nx * g.ny;
      if (in_tree.contains(up) && !edge_done.contains(edge_key(u, up))) {
        edge_done.insert(edge_key(u, up));
        net.vias.push_back(DefVia{g.pos(u), layer, layer + 1});
      }
    }
  }
}

}  // namespace

RouteStats route_design(const Netlist& nl, const LefLibrary& lef,
                        DefDesign& placed, const RouteOptions& opts) {
  Grid g;
  g.pitch = lef.track_pitch_dbu();
  g.x0 = placed.die.lo.x;
  g.y0 = placed.die.lo.y;
  g.nx = static_cast<int>(placed.die.width() / g.pitch) + 1;
  g.ny = static_cast<int>(placed.die.height() / g.pitch) + 1;
  g.layers = static_cast<int>(lef.layers().size());
  const std::int64_t width = lef.wire_width_dbu();

  std::unordered_set<std::string> skip(opts.skip_nets.begin(),
                                       opts.skip_nets.end());

  // Pin landing nodes, with conflict-avoiding neighbour search on M1.
  std::vector<int> owner(static_cast<std::size_t>(g.nodes()), -1);
  std::vector<NetTask> tasks;
  std::unordered_map<std::string, std::size_t> net_index;
  for (std::size_t i = 0; i < placed.nets.size(); ++i) {
    net_index.emplace(placed.nets[i].name, i);
    placed.nets[i].wires.clear();
    placed.nets[i].vias.clear();
  }

  for (NetId nid : nl.net_ids()) {
    const Net& net = nl.net(nid);
    if (net.pins.size() < 2) continue;
    if (skip.contains(net.name)) continue;
    NetTask task;
    task.net_index = net_index.at(net.name);
    const int self = static_cast<int>(task.net_index);
    for (const PinRef& p : net.pins) {
      const CellType& type = nl.cell_of(p.inst);
      const Point pos = placed.pin_position(
          lef, nl.instance(p.inst).name,
          type.pins[static_cast<std::size_t>(p.pin)].name);
      const int base_xi = g.snap_xi(pos.x);
      const int base_yi = g.snap_yi(pos.y);
      // Spiral search for a node free or already ours.
      int found = -1;
      for (int r = 0; r < 4 && found < 0; ++r) {
        for (int dx = -r; dx <= r && found < 0; ++dx) {
          for (int dy = -r; dy <= r && found < 0; ++dy) {
            if (std::max(std::abs(dx), std::abs(dy)) != r) continue;
            const int xi = base_xi + dx, yi = base_yi + dy;
            if (xi < 0 || xi >= g.nx || yi < 0 || yi >= g.ny) continue;
            const int node = g.node(0, xi, yi);
            if (owner[node] == -1 || owner[node] == self) found = node;
          }
        }
      }
      SECFLOW_CHECK(found >= 0, "no free pin landing near " + net.name);
      owner[found] = self;
      task.pin_nodes.push_back(found);
    }
    tasks.push_back(std::move(task));
  }

  // Negotiated congestion loop.
  std::vector<int> usage(static_cast<std::size_t>(g.nodes()), 0);
  std::vector<int> history(static_cast<std::size_t>(g.nodes()), 0);
  // Pin nodes always count as used by their net.
  auto reset_usage = [&] {
    std::fill(usage.begin(), usage.end(), 0);
    for (const NetTask& t : tasks) {
      for (int n : t.pin_nodes) ++usage[n];
    }
  };

  RouteStats stats;
  bool converged = false;
  std::vector<std::size_t> order(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) order[i] = i;
  for (int iter = 0; iter < opts.max_iterations && !converged; ++iter) {
    Span iter_span("route.iteration", "pnr");
    iter_span.arg("iter", iter);
    stats.iterations = iter + 1;
    reset_usage();
    std::vector<int> node_net(static_cast<std::size_t>(g.nodes()), -1);
    for (const NetTask& t : tasks) {
      for (int n : t.pin_nodes) node_net[n] = static_cast<int>(t.net_index);
    }
    // Rotate the routing order so no net permanently wins ties.
    if (iter > 0 && !order.empty()) {
      std::rotate(order.begin(), order.begin() + 1 + (order.size() / 3),
                  order.end());
    }
    for (std::size_t oi : order) {
      NetTask& t = tasks[oi];
      const int self = static_cast<int>(t.net_index);
      t.path.clear();  // usage was reset; paths rebuild from scratch
      std::vector<int> tree = {t.pin_nodes.front()};
      std::unordered_set<int> tree_set(tree.begin(), tree.end());
      for (std::size_t pi = 1; pi < t.pin_nodes.size(); ++pi) {
        const int target = t.pin_nodes[pi];
        if (tree_set.contains(target)) continue;
        const std::vector<int> path = shortest_path(
            g, tree, target, opts, usage, history, node_net, self, iter);
        SECFLOW_CHECK(!path.empty(),
                      "maze router: unreachable pin on net " +
                          placed.nets[t.net_index].name);
        for (int n : path) {
          if (tree_set.insert(n).second) {
            tree.push_back(n);
            t.path.push_back(n);
            ++usage[n];
            if (node_net[n] == -1) node_net[n] = self;
          }
        }
      }
    }
    // Check for sharing.
    converged = true;
    int shared = 0;
    std::unordered_map<int, int> seen;  // node -> net
    for (const NetTask& t : tasks) {
      for (int n : t.pin_nodes) seen.emplace(n, static_cast<int>(t.net_index));
    }
    for (const NetTask& t : tasks) {
      for (int n : t.path) {
        const auto [it, inserted] =
            seen.emplace(n, static_cast<int>(t.net_index));
        if (!inserted && it->second != static_cast<int>(t.net_index)) {
          converged = false;
          ++shared;
          history[n] += 1 + iter / 2;
        }
      }
    }
    iter_span.arg("shared_nodes", shared);
    Metrics::global().add("pnr.route.iterations");
    Metrics::global().add("pnr.route.shared_nodes",
                          static_cast<std::uint64_t>(shared));
    // verbose promotes the per-iteration line to info; silent by default.
    SECFLOW_LOG_AT(opts.verbose ? LogLevel::kInfo : LogLevel::kDebug, "pnr",
                   "route iteration", LogField("iter", iter),
                   LogField("shared_nodes", shared));
  }
  SECFLOW_CHECK(converged, "routing failed to converge (congestion)");

  // Emit geometry.
  for (const NetTask& t : tasks) {
    std::vector<int> tree = t.pin_nodes;
    tree.insert(tree.end(), t.path.begin(), t.path.end());
    DefNet& net = placed.nets[t.net_index];
    emit_geometry(g, tree, width, net);
    stats.wirelength_dbu += net.total_wirelength();
    stats.vias += static_cast<int>(net.vias.size());
    ++stats.nets_routed;
  }
  Metrics::global().add("pnr.route.nets_routed",
                        static_cast<std::uint64_t>(stats.nets_routed));
  return stats;
}

RouteStats route_design_quick(const Netlist& nl, const LefLibrary& lef,
                              DefDesign& placed) {
  RouteStats stats;
  const std::int64_t width = lef.wire_width_dbu();
  std::unordered_map<std::string, std::size_t> net_index;
  for (std::size_t i = 0; i < placed.nets.size(); ++i) {
    net_index.emplace(placed.nets[i].name, i);
  }
  for (NetId nid : nl.net_ids()) {
    const Net& net = nl.net(nid);
    if (net.pins.size() < 2) continue;
    DefNet& dnet = placed.nets[net_index.at(net.name)];
    Point prev;
    bool first = true;
    for (const PinRef& p : net.pins) {
      const CellType& type = nl.cell_of(p.inst);
      const Point pos = placed.pin_position(
          lef, nl.instance(p.inst).name,
          type.pins[static_cast<std::size_t>(p.pin)].name);
      if (!first && pos != prev) {
        // L-route: horizontal on M1, vertical on M2; vias at both ends of
        // the vertical so consecutive L's (which restart on M1) connect.
        const Point corner{pos.x, prev.y};
        if (corner != prev) {
          dnet.wires.push_back(Segment{prev, corner, 0, width});
        }
        if (corner != pos) {
          dnet.wires.push_back(Segment{corner, pos, 1, width});
          dnet.vias.push_back(DefVia{corner, 0, 1});
          dnet.vias.push_back(DefVia{pos, 0, 1});
        }
      }
      prev = pos;
      first = false;
    }
    stats.wirelength_dbu += dnet.total_wirelength();
    stats.vias += static_cast<int>(dnet.vias.size());
    ++stats.nets_routed;
  }
  stats.iterations = 1;
  return stats;
}

}  // namespace secflow
