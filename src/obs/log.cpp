#include "obs/log.h"

#include <cstdio>
#include <cstdlib>

namespace secflow {
namespace {

bool needs_quoting(std::string_view v) {
  if (v.empty()) return true;
  for (const char c : v) {
    if (c == ' ' || c == '\t' || c == '=' || c == '"' || c == '\n') {
      return true;
    }
  }
  return false;
}

LogLevel level_from_env() {
  const char* env = std::getenv("SECFLOW_LOG");
  if (env == nullptr) return LogLevel::kWarn;
  if (const auto l = parse_log_level(env)) return *l;
  std::fprintf(stderr,
               "secflow: ignoring unknown SECFLOW_LOG value '%s' "
               "(want off|error|warn|info|debug|trace)\n",
               env);
  return LogLevel::kWarn;
}

}  // namespace

const char* log_level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kOff: return "off";
    case LogLevel::kError: return "error";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kInfo: return "info";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kTrace: return "trace";
  }
  return "?";
}

std::optional<LogLevel> parse_log_level(std::string_view s) {
  std::string lower(s);
  for (char& c : lower) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  for (const LogLevel l : {LogLevel::kOff, LogLevel::kError, LogLevel::kWarn,
                           LogLevel::kInfo, LogLevel::kDebug,
                           LogLevel::kTrace}) {
    if (lower == log_level_name(l)) return l;
  }
  return std::nullopt;
}

LogField::LogField(std::string_view k, double v) : key(k) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  value = buf;
}

Logger& Logger::global() {
  static Logger* logger = new Logger(level_from_env());
  return *logger;
}

Logger::Logger(LogLevel level) : level_(static_cast<int>(level)) {}

void Logger::set_sink(Sink sink) {
  std::lock_guard<std::mutex> lock(sink_mu_);
  sink_ = std::move(sink);
}

void Logger::log(LogLevel l, std::string_view component,
                 std::string_view message,
                 std::initializer_list<LogField> fields) {
  if (!enabled(l)) return;
  std::string line;
  line.reserve(64);
  line += log_level_name(l);
  line += " [";
  line += component;
  line += "] ";
  line += message;
  for (const LogField& f : fields) {
    line += ' ';
    line += f.key;
    line += '=';
    if (needs_quoting(f.value)) {
      line += '"';
      for (const char c : f.value) {
        if (c == '"' || c == '\\') line += '\\';
        line += c == '\n' ? ' ' : c;
      }
      line += '"';
    } else {
      line += f.value;
    }
  }
  std::lock_guard<std::mutex> lock(sink_mu_);
  if (sink_) {
    sink_(l, line);
  } else {
    std::fprintf(stderr, "secflow %s\n", line.c_str());
  }
}

}  // namespace secflow
