// Unified machine-readable flow report.
//
// One JSON document per run merging everything the flow knows about
// itself: per-stage wall times with cache outcomes and content-address
// keys (StageTimings), routing statistics and rip-up iteration counts
// (RouteStats), STA timing, the secure flow's verification verdicts,
// optional DPA/energy results, and a metrics snapshot.  This is the
// structured counterpart of flow_report()'s human text — `secflow_cli
// flow ... --report out.json` dumps it, CI archives it, and scripts diff
// it across runs.
//
// The document is plain data (strings and numbers only), so this header
// depends on nothing above base; the builders that know about flow/sca
// types live in those layers (build_flow_report in flow/, attach_dpa in
// sca/).  Schema identifier: "secflow.flow-report/1".  validate checks a
// parsed document against that schema; parse_flow_report round-trips the
// JSON back into the struct.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"

namespace secflow {

inline constexpr const char* kFlowReportSchema = "secflow.flow-report/1";

/// One pipeline stage: name, wall time, cache verdict ("not-run", "off",
/// "miss", "hit") and the 16-hex-digit content-address key ("" when the
/// stage was never keyed).
struct StageEntry {
  std::string name;
  double ms = 0.0;
  std::string cache;
  std::string cache_key;

  bool operator==(const StageEntry&) const = default;
};

/// Secure-flow-only section (present == false for the regular flow).
struct SecureSection {
  bool present = false;
  std::uint64_t fat_cells = 0;
  std::uint64_t diff_cells = 0;
  std::int64_t inverters_removed = 0;
  bool lec_equivalent = false;
  std::int64_t lec_points = 0;
  bool stream_check_ok = false;

  bool operator==(const SecureSection&) const = default;
};

/// DPA campaign section (attached by sca/ when a campaign ran).
struct DpaSection {
  bool present = false;
  std::int64_t n_measurements = 0;
  std::int64_t best_guess = -1;
  bool disclosed = false;
  double best_peak = 0.0;        ///< peak-to-peak of the best key guess
  double runner_up_peak = 0.0;   ///< peak-to-peak of the second best
  double mean_cycle_energy_pj = 0.0;

  bool operator==(const DpaSection&) const = default;
};

/// Statistical leakage-assessment summary (attached by leakage/ via
/// attach_leakage when an assessment ran).  A digest of the full
/// secflow.leakage-report/1 document, kept flat so flow/campaign reports
/// stay scannable.
struct LeakageSection {
  bool present = false;
  std::string model;  ///< CPA power model: "hw" | "hd" | "" (TVLA only)
  std::int64_t cpa_traces = 0;
  std::int64_t cpa_best_guess = -1;
  std::int64_t cpa_correct_rank = 0;  ///< 0 when CPA did not run
  bool cpa_disclosed = false;
  double tvla_max_abs_t = 0.0;
  std::int64_t tvla_leaks = 0;  ///< samples with |t| above threshold
  std::int64_t mtd = -1;        ///< -1 = hidden at the trace budget
  std::int64_t mtd_max_traces = 0;

  bool operator==(const LeakageSection&) const = default;
};

struct FlowReport {
  std::string schema = kFlowReportSchema;
  std::string flow;   ///< "regular" | "secure"
  std::string design;
  std::string completed_through;  ///< last stage that produced artifacts
  std::int64_t n_threads = 1;

  std::uint64_t cells = 0;       ///< instances in the final netlist
  double cell_area_um2 = 0.0;
  double die_area_um2 = 0.0;
  double wirelength_um = 0.0;
  std::int64_t vias = 0;
  std::int64_t route_nets = 0;
  std::int64_t route_iterations = 0;  ///< rip-up iterations to converge
  double critical_delay_ps = 0.0;

  double total_ms = 0.0;
  std::vector<StageEntry> stages;  ///< all pipeline stages, in order

  SecureSection secure;
  DpaSection dpa;
  LeakageSection leakage;
  MetricsSnapshot metrics;

  bool operator==(const FlowReport&) const = default;
};

/// The report as pretty-printed JSON (ends with a newline).
std::string flow_report_json(const FlowReport& r);

/// Inverse of flow_report_json; validates first.  Throws Error/ParseError
/// on malformed or schema-violating input.
FlowReport parse_flow_report(const std::string& json);

/// The report as a JSON document — what flow_report_json serializes.
/// Exposed so aggregating documents (the campaign report) can embed
/// per-job flow reports as objects instead of re-parsing strings.
JsonValue flow_report_to_json(const FlowReport& r);

/// Inverse of flow_report_to_json; validates against the schema first.
FlowReport flow_report_from_json(const JsonValue& doc);

/// Check a parsed document against the secflow.flow-report/1 schema:
/// required members present with the right types, stage cache verdicts
/// from the known vocabulary, metrics section well-formed.  Throws Error
/// naming the first violation.
void validate_flow_report(const JsonValue& doc);

/// Fold a metrics snapshot into the report (normally Metrics::global()'s,
/// taken after the run).
void attach_metrics(FlowReport& r, const MetricsSnapshot& snapshot);

}  // namespace secflow
