// Span-based tracing with a Chrome trace-event exporter.
//
// A Span is an RAII scope marker: construction stamps the start time,
// destruction records one complete ("ph":"X") event into the tracer.
// Every flow stage, router rip-up iteration, SA placement batch and
// trace-simulation / DPA worker chunk opens a span, so a single run
// renders as a per-thread timeline in chrome://tracing or Perfetto
// (load the file written by write_chrome_trace, e.g. via the CLI's
// `--trace out.trace.json`).
//
// Tracks: each OS thread gets a stable small integer `tid` on its first
// recorded event, so pool workers show as parallel tracks.
//
// Cost contract: with the tracer disabled (the default) constructing a
// Span is one relaxed atomic load — no clock read, no allocation.  Spans
// never feed back into the flow: artifacts are bit-identical with
// tracing on or off.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace secflow {

struct TraceEvent {
  std::string name;
  std::string cat;
  int tid = 0;
  std::int64_t ts_us = 0;   ///< start, microseconds since the tracer epoch
  std::int64_t dur_us = 0;  ///< duration, microseconds
  std::vector<std::pair<std::string, std::string>> args;
};

class Tracer {
 public:
  /// The process-wide tracer all Spans default to.  Disabled until
  /// someone (CLI --trace, a bench, a test) enables it.
  static Tracer& global();

  Tracer();

  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void clear();
  std::vector<TraceEvent> events() const;
  std::size_t n_events() const;

  /// The collected events as a Chrome trace-event JSON document:
  /// {"traceEvents": [...], "displayTimeUnit": "ms"} with one complete
  /// ("X") event per span plus thread-name metadata events.
  std::string chrome_trace_json() const;
  void write_chrome_trace(const std::string& path) const;

  /// Microseconds since this tracer's epoch (used by Span).
  std::int64_t now_us() const;
  void record(TraceEvent e);

 private:
  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

/// RAII tracing scope.  Name/category pointers must outlive the span
/// (string literals at every call site).  arg() attaches key=value pairs
/// shown in the trace viewer's detail pane; like construction, it is a
/// no-op when the tracer is disabled.
class Span {
 public:
  explicit Span(const char* name, const char* cat = "flow",
                Tracer* tracer = nullptr);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  void arg(std::string key, std::string value);
  void arg(std::string key, std::int64_t value);
  void arg(std::string key, int value) {
    arg(std::move(key), static_cast<std::int64_t>(value));
  }
  void arg(std::string key, std::uint64_t value) {
    arg(std::move(key), static_cast<std::int64_t>(value));
  }
  void arg(std::string key, double value);

 private:
  Tracer* tracer_ = nullptr;  ///< nullptr = tracing was off at construction
  TraceEvent ev_;
};

}  // namespace secflow
