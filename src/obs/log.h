// Leveled, thread-safe structured logging for the flow.
//
// Library code logs through Logger::global() instead of printing to
// stderr, so verbosity is one knob (`SECFLOW_LOG` environment variable,
// or FlowOptions::log_level per run) and every line carries structured
// key=value fields a human or a script can grep.  The default level is
// `warn`: a normal run prints nothing.
//
// Cost contract: a suppressed log statement is one relaxed atomic load —
// no field formatting, no allocation, no lock.  The SECFLOW_LOG_* macros
// guarantee this by checking the level before evaluating their field
// arguments.  Emission serializes on a mutex, so interleaved lines from
// `parallel_for` workers never shear.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

namespace secflow {

enum class LogLevel {
  kOff = 0,   ///< suppress everything
  kError,
  kWarn,      ///< the default
  kInfo,      ///< per-stage progress
  kDebug,     ///< per-iteration detail (router congestion, cache keys)
  kTrace,     ///< firehose
};

/// "off", "error", "warn", "info", "debug", "trace".
const char* log_level_name(LogLevel l);

/// Inverse of log_level_name (case-insensitive); nullopt on junk.
std::optional<LogLevel> parse_log_level(std::string_view s);

/// One structured key=value field attached to a log line.  Values are
/// pre-rendered to text at the call site (only ever reached when the
/// level is enabled).
struct LogField {
  std::string key;
  std::string value;

  LogField(std::string_view k, std::string_view v) : key(k), value(v) {}
  LogField(std::string_view k, const char* v) : key(k), value(v) {}
  LogField(std::string_view k, const std::string& v) : key(k), value(v) {}
  LogField(std::string_view k, bool v)
      : key(k), value(v ? "true" : "false") {}
  LogField(std::string_view k, int v) : key(k), value(std::to_string(v)) {}
  LogField(std::string_view k, long v) : key(k), value(std::to_string(v)) {}
  LogField(std::string_view k, long long v)
      : key(k), value(std::to_string(v)) {}
  LogField(std::string_view k, unsigned v)
      : key(k), value(std::to_string(v)) {}
  LogField(std::string_view k, unsigned long v)
      : key(k), value(std::to_string(v)) {}
  LogField(std::string_view k, unsigned long long v)
      : key(k), value(std::to_string(v)) {}
  LogField(std::string_view k, double v);
};

class Logger {
 public:
  /// The process-wide logger.  Its initial level comes from SECFLOW_LOG
  /// (read once at first use); set_level overrides it afterwards.
  static Logger& global();

  /// A fresh logger at `level` writing to stderr (tests use private
  /// instances so they never disturb the global one).
  explicit Logger(LogLevel level = LogLevel::kWarn);

  LogLevel level() const {
    return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
  }
  void set_level(LogLevel l) {
    level_.store(static_cast<int>(l), std::memory_order_relaxed);
  }
  bool enabled(LogLevel l) const {
    const int lvl = level_.load(std::memory_order_relaxed);
    return lvl != 0 && static_cast<int>(l) <= lvl;
  }

  /// Redirect formatted lines (tests); nullptr restores stderr.
  using Sink = std::function<void(LogLevel, std::string_view line)>;
  void set_sink(Sink sink);

  /// Emit one line: `LEVEL [component] message key=value ...`.  Values
  /// containing whitespace or '=' are double-quoted.  Callers normally go
  /// through the SECFLOW_LOG_* macros, which skip this entirely when the
  /// level is suppressed.
  void log(LogLevel l, std::string_view component, std::string_view message,
           std::initializer_list<LogField> fields = {});

 private:
  std::atomic<int> level_;
  std::mutex sink_mu_;
  Sink sink_;  // empty = stderr
};

}  // namespace secflow

/// Leveled log statements against Logger::global().  Field arguments are
/// not evaluated when the level is suppressed.
#define SECFLOW_LOG_AT(lvl, component, message, ...)                       \
  do {                                                                     \
    if (::secflow::Logger::global().enabled(lvl)) {                        \
      ::secflow::Logger::global().log(lvl, component, message,             \
                                      {__VA_ARGS__});                      \
    }                                                                      \
  } while (0)

#define SECFLOW_LOG_ERROR(component, message, ...) \
  SECFLOW_LOG_AT(::secflow::LogLevel::kError, component, message, __VA_ARGS__)
#define SECFLOW_LOG_WARN(component, message, ...) \
  SECFLOW_LOG_AT(::secflow::LogLevel::kWarn, component, message, __VA_ARGS__)
#define SECFLOW_LOG_INFO(component, message, ...) \
  SECFLOW_LOG_AT(::secflow::LogLevel::kInfo, component, message, __VA_ARGS__)
#define SECFLOW_LOG_DEBUG(component, message, ...) \
  SECFLOW_LOG_AT(::secflow::LogLevel::kDebug, component, message, __VA_ARGS__)
#define SECFLOW_LOG_TRACE(component, message, ...) \
  SECFLOW_LOG_AT(::secflow::LogLevel::kTrace, component, message, __VA_ARGS__)
