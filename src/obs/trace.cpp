#include "obs/trace.h"

#include <cstdio>
#include <fstream>
#include <set>

#include "base/error.h"
#include "obs/json.h"

namespace secflow {
namespace {

/// Stable per-OS-thread track id, assigned on first use.  Shared across
/// tracer instances — tids only label tracks, they carry no meaning
/// beyond "same thread".
int thread_track_id() {
  static std::atomic<int> next{1};
  thread_local int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace

Tracer& Tracer::global() {
  static Tracer* t = new Tracer();
  return *t;
}

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

std::vector<TraceEvent> Tracer::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::size_t Tracer::n_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::int64_t Tracer::now_us() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void Tracer::record(TraceEvent e) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(e));
}

std::string Tracer::chrome_trace_json() const {
  const std::vector<TraceEvent> evs = events();
  JsonValue arr = JsonValue::array();

  // Metadata: name the process and each thread track so the viewer shows
  // "secflow" lanes instead of bare numbers.
  JsonValue proc = JsonValue::object();
  proc.set("name", "process_name")
      .set("ph", "M")
      .set("pid", 1)
      .set("tid", 0);
  proc.set("args", JsonValue::object().set("name", "secflow"));
  arr.push_back(std::move(proc));
  std::set<int> tids;
  for (const TraceEvent& e : evs) tids.insert(e.tid);
  for (const int tid : tids) {
    JsonValue th = JsonValue::object();
    th.set("name", "thread_name").set("ph", "M").set("pid", 1).set("tid", tid);
    th.set("args", JsonValue::object().set(
                       "name", "track " + std::to_string(tid)));
    arr.push_back(std::move(th));
  }

  for (const TraceEvent& e : evs) {
    JsonValue ev = JsonValue::object();
    ev.set("name", e.name)
        .set("cat", e.cat)
        .set("ph", "X")
        .set("ts", static_cast<std::int64_t>(e.ts_us))
        .set("dur", static_cast<std::int64_t>(e.dur_us))
        .set("pid", 1)
        .set("tid", e.tid);
    if (!e.args.empty()) {
      JsonValue args = JsonValue::object();
      for (const auto& [k, v] : e.args) args.set(k, v);
      ev.set("args", std::move(args));
    }
    arr.push_back(std::move(ev));
  }

  JsonValue doc = JsonValue::object();
  doc.set("traceEvents", std::move(arr));
  doc.set("displayTimeUnit", "ms");
  return json_dump(doc, 1);
}

void Tracer::write_chrome_trace(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  SECFLOW_CHECK(out.good(), "Tracer: cannot write " + path);
  out << chrome_trace_json() << '\n';
  SECFLOW_CHECK(out.good(), "Tracer: write to " + path + " failed");
}

Span::Span(const char* name, const char* cat, Tracer* tracer) {
  Tracer* t = tracer != nullptr ? tracer : &Tracer::global();
  if (!t->enabled()) return;
  tracer_ = t;
  ev_.name = name;
  ev_.cat = cat;
  ev_.ts_us = t->now_us();
}

Span::~Span() {
  if (tracer_ == nullptr) return;
  ev_.dur_us = tracer_->now_us() - ev_.ts_us;
  ev_.tid = thread_track_id();
  tracer_->record(std::move(ev_));
}

void Span::arg(std::string key, std::string value) {
  if (tracer_ == nullptr) return;
  ev_.args.emplace_back(std::move(key), std::move(value));
}

void Span::arg(std::string key, std::int64_t value) {
  if (tracer_ == nullptr) return;
  ev_.args.emplace_back(std::move(key), std::to_string(value));
}

void Span::arg(std::string key, double value) {
  if (tracer_ == nullptr) return;
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  ev_.args.emplace_back(std::move(key), buf);
}

}  // namespace secflow
