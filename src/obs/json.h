// Minimal JSON document model for the observability subsystem.
//
// The observability outputs (Chrome trace files, FlowReport documents)
// are JSON, and the tests must be able to parse those files back to
// verify well-formedness and round-trip fidelity — so this module carries
// both a writer and a strict recursive-descent parser.  It is not a
// general-purpose JSON library: numbers are doubles (integral values are
// emitted without a decimal point; 64-bit identifiers such as cache keys
// travel as hex strings, never as numbers), object member order is
// preserved, and duplicate keys are rejected on parse.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace secflow {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;                      // null
  JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}
  JsonValue(double v) : kind_(Kind::kNumber), num_(v) {}
  JsonValue(int v) : JsonValue(static_cast<double>(v)) {}
  JsonValue(std::int64_t v) : JsonValue(static_cast<double>(v)) {}
  JsonValue(std::uint64_t v) : JsonValue(static_cast<double>(v)) {}
  JsonValue(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}
  JsonValue(const char* s) : JsonValue(std::string(s)) {}

  static JsonValue array() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static JsonValue object() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; SECFLOW_CHECK on kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& items() const;
  std::vector<JsonValue>& items();
  const std::vector<std::pair<std::string, JsonValue>>& members() const;

  /// Array append / object insert (the value must already be that kind).
  JsonValue& push_back(JsonValue v);
  JsonValue& set(std::string key, JsonValue v);

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;
  JsonValue* find(std::string_view key);

  bool operator==(const JsonValue& o) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<JsonValue> arr_;
  std::vector<std::pair<std::string, JsonValue>> obj_;
};

/// Serialize.  indent > 0 pretty-prints with that many spaces per level;
/// 0 emits the compact single-line form.  Doubles are printed with enough
/// digits to round-trip IEEE-754 exactly; integral values (within the
/// 2^53 exact range) print without a decimal point.
std::string json_dump(const JsonValue& v, int indent = 0);

/// Strict parse of a complete JSON document (trailing garbage is an
/// error).  Throws ParseError with a byte offset on malformed input.
JsonValue json_parse(std::string_view text);

}  // namespace secflow
