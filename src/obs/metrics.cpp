#include "obs/metrics.h"

#include <algorithm>

namespace secflow {
namespace {

std::uint64_t next_registry_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

void HistogramStat::observe(double v) {
  if (count == 0) {
    min = max = v;
  } else {
    min = std::min(min, v);
    max = std::max(max, v);
  }
  ++count;
  sum += v;
}

void HistogramStat::merge(const HistogramStat& o) {
  if (o.count == 0) return;
  if (count == 0) {
    *this = o;
    return;
  }
  min = std::min(min, o.min);
  max = std::max(max, o.max);
  count += o.count;
  sum += o.sum;
}

struct Metrics::Shard {
  std::mutex mu;  ///< owner thread vs snapshot()/reset(), never two writers
  std::map<std::string, std::uint64_t, std::less<>> counters;
  std::map<std::string, double, std::less<>> gauges;
  std::map<std::string, HistogramStat, std::less<>> histograms;
};

namespace {

/// Thread-local shard cache.  Keyed by the registry's process-unique id
/// (never recycled), so an entry left behind by a destroyed registry can
/// never be mistaken for a shard of a new registry at the same address.
struct ShardRef {
  std::uint64_t registry_id;
  void* shard;  ///< Metrics::Shard*, opaque here (the type is private)
};
thread_local std::vector<ShardRef> t_shards;

}  // namespace

Metrics& Metrics::global() {
  static Metrics* m = new Metrics();
  return *m;
}

Metrics::Metrics() : id_(next_registry_id()) {}

Metrics::~Metrics() = default;

Metrics::Shard& Metrics::local_shard() {
  for (const ShardRef& ref : t_shards) {
    if (ref.registry_id == id_) return *static_cast<Shard*>(ref.shard);
  }
  std::lock_guard<std::mutex> lock(mu_);
  shards_.push_back(std::make_unique<Shard>());
  Shard* shard = shards_.back().get();
  t_shards.push_back(ShardRef{id_, shard});
  return *shard;
}

void Metrics::add(std::string_view counter, std::uint64_t delta) {
  if (!enabled()) return;
  Shard& s = local_shard();
  std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.counters.find(counter);
  if (it != s.counters.end()) {
    it->second += delta;
  } else {
    s.counters.emplace(std::string(counter), delta);
  }
}

void Metrics::gauge_max(std::string_view gauge, double v) {
  if (!enabled()) return;
  Shard& s = local_shard();
  std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.gauges.find(gauge);
  if (it != s.gauges.end()) {
    it->second = std::max(it->second, v);
  } else {
    s.gauges.emplace(std::string(gauge), v);
  }
}

void Metrics::observe(std::string_view histogram, double v) {
  if (!enabled()) return;
  Shard& s = local_shard();
  std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.histograms.find(histogram);
  if (it != s.histograms.end()) {
    it->second.observe(v);
  } else {
    HistogramStat h;
    h.observe(v);
    s.histograms.emplace(std::string(histogram), h);
  }
}

MetricsSnapshot Metrics::snapshot() const {
  MetricsSnapshot out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    for (const auto& [name, v] : shard->counters) out.counters[name] += v;
    for (const auto& [name, v] : shard->gauges) {
      const auto [it, inserted] = out.gauges.emplace(name, v);
      if (!inserted) it->second = std::max(it->second, v);
    }
    for (const auto& [name, h] : shard->histograms) {
      out.histograms[name].merge(h);
    }
  }
  return out;
}

void Metrics::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    shard->counters.clear();
    shard->gauges.clear();
    shard->histograms.clear();
  }
}

}  // namespace secflow
