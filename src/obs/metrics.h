// Metrics registry: counters, gauges and histograms, sharded per thread.
//
// Hot loops under `parallel_for` record into a private per-thread shard
// (one uncontended mutex each, taken only by its owning thread and by
// snapshot()), so instrumentation never serializes workers against each
// other.  snapshot() merges all shards into one name-sorted view — the
// shard-and-merge structure makes aggregation deterministic:
//
//  * counters sum 64-bit integers (exact and commutative, so totals are
//    identical at any SECFLOW_THREADS),
//  * histogram count/min/max merge commutatively and are exact; the
//    running `sum` of doubles can differ in final ulps across thread
//    counts (floating-point addition is not associative),
//  * gauges aggregate by maximum (the only order-free choice for
//    last-value semantics across racing shards).
//
// Everything is off by default: a disabled registry's record methods are
// one relaxed atomic load and a return — cheap enough to leave in the
// innermost flow loops.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace secflow {

struct HistogramStat {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< meaningful only when count > 0
  double max = 0.0;

  void observe(double v);
  void merge(const HistogramStat& o);
  double mean() const { return count == 0 ? 0.0 : sum / double(count); }
  bool operator==(const HistogramStat&) const = default;
};

/// One deterministic, name-sorted aggregation of a registry.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramStat> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
  bool operator==(const MetricsSnapshot&) const = default;
};

class Metrics {
 public:
  /// The process-wide registry the flow instrumentation records into.
  /// Disabled until someone (CLI --report, a bench, a test) enables it.
  static Metrics& global();

  Metrics();
  ~Metrics();
  Metrics(const Metrics&) = delete;
  Metrics& operator=(const Metrics&) = delete;

  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// counter += delta.
  void add(std::string_view counter, std::uint64_t delta = 1);
  /// gauge = max(gauge, v) under aggregation.
  void gauge_max(std::string_view gauge, double v);
  /// Record one histogram observation.
  void observe(std::string_view histogram, double v);

  /// Merge every shard (deterministic; see file comment).  Safe to call
  /// concurrently with writers — each shard is locked while read.
  MetricsSnapshot snapshot() const;

  /// Drop all recorded values (shards stay registered).
  void reset();

 private:
  struct Shard;
  Shard& local_shard();

  std::atomic<bool> enabled_{false};
  const std::uint64_t id_;  ///< process-unique, guards thread-local caches
  mutable std::mutex mu_;   ///< protects shards_ (the vector, not contents)
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace secflow
