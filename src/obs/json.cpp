#include "obs/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "base/error.h"

namespace secflow {
namespace {

std::string kind_name(JsonValue::Kind k) {
  switch (k) {
    case JsonValue::Kind::kNull: return "null";
    case JsonValue::Kind::kBool: return "bool";
    case JsonValue::Kind::kNumber: return "number";
    case JsonValue::Kind::kString: return "string";
    case JsonValue::Kind::kArray: return "array";
    case JsonValue::Kind::kObject: return "object";
  }
  return "?";
}

void append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double v) {
  char buf[40];
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 9.0e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else if (std::isfinite(v)) {
    // 17 significant digits round-trip an IEEE-754 double exactly.
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  } else {
    // JSON has no Inf/NaN; null is the conventional degradation.
    std::snprintf(buf, sizeof(buf), "null");
  }
  out += buf;
}

void dump_rec(const JsonValue& v, int indent, int depth, std::string& out) {
  const std::string pad(indent > 0 ? static_cast<std::size_t>(indent) *
                                         (static_cast<std::size_t>(depth) + 1)
                                   : 0,
                        ' ');
  const std::string close_pad(
      indent > 0 ? static_cast<std::size_t>(indent) *
                       static_cast<std::size_t>(depth)
                 : 0,
      ' ');
  const char* nl = indent > 0 ? "\n" : "";
  switch (v.kind()) {
    case JsonValue::Kind::kNull: out += "null"; break;
    case JsonValue::Kind::kBool: out += v.as_bool() ? "true" : "false"; break;
    case JsonValue::Kind::kNumber: append_number(out, v.as_number()); break;
    case JsonValue::Kind::kString: append_escaped(out, v.as_string()); break;
    case JsonValue::Kind::kArray: {
      if (v.items().empty()) {
        out += "[]";
        break;
      }
      out += '[';
      out += nl;
      for (std::size_t i = 0; i < v.items().size(); ++i) {
        out += pad;
        dump_rec(v.items()[i], indent, depth + 1, out);
        if (i + 1 < v.items().size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += ']';
      break;
    }
    case JsonValue::Kind::kObject: {
      if (v.members().empty()) {
        out += "{}";
        break;
      }
      out += '{';
      out += nl;
      for (std::size_t i = 0; i < v.members().size(); ++i) {
        out += pad;
        append_escaped(out, v.members()[i].first);
        out += indent > 0 ? ": " : ":";
        dump_rec(v.members()[i].second, indent, depth + 1, out);
        if (i + 1 < v.members().size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += '}';
      break;
    }
  }
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw ParseError("json:" + std::to_string(pos_), what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_word(std::string_view w) {
    if (text_.substr(pos_, w.size()) != w) return false;
    pos_ += w.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{' || c == '[') {
      // Recursion guard: parse_object/parse_array recurse through here, so
      // a deeply nested document would otherwise overflow the stack.
      if (depth_ >= kMaxDepth) {
        fail("nesting depth exceeds " + std::to_string(kMaxDepth));
      }
      ++depth_;
      JsonValue v = c == '{' ? parse_object() : parse_array();
      --depth_;
      return v;
    }
    if (c == '"') return JsonValue(parse_string());
    if (consume_word("null")) return JsonValue();
    if (consume_word("true")) return JsonValue(true);
    if (consume_word("false")) return JsonValue(false);
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
    fail("unexpected character");
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape digit");
          }
          // UTF-8 encode (surrogate pairs are not needed by our writers).
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string tok(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size() || tok.empty()) fail("bad number");
    return JsonValue(v);
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue out = JsonValue::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return out;
    }
    while (true) {
      out.push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return out;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue out = JsonValue::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return out;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      if (out.find(key) != nullptr) fail("duplicate object key '" + key + "'");
      skip_ws();
      expect(':');
      out.set(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return out;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  /// Deeper than any document our writers emit, far shallower than the
  /// stack can take at this frame size.
  static constexpr int kMaxDepth = 256;

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

bool JsonValue::as_bool() const {
  SECFLOW_CHECK(kind_ == Kind::kBool,
                "JsonValue: expected bool, have " + kind_name(kind_));
  return bool_;
}

double JsonValue::as_number() const {
  SECFLOW_CHECK(kind_ == Kind::kNumber,
                "JsonValue: expected number, have " + kind_name(kind_));
  return num_;
}

const std::string& JsonValue::as_string() const {
  SECFLOW_CHECK(kind_ == Kind::kString,
                "JsonValue: expected string, have " + kind_name(kind_));
  return str_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  SECFLOW_CHECK(kind_ == Kind::kArray,
                "JsonValue: expected array, have " + kind_name(kind_));
  return arr_;
}

std::vector<JsonValue>& JsonValue::items() {
  SECFLOW_CHECK(kind_ == Kind::kArray,
                "JsonValue: expected array, have " + kind_name(kind_));
  return arr_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  SECFLOW_CHECK(kind_ == Kind::kObject,
                "JsonValue: expected object, have " + kind_name(kind_));
  return obj_;
}

JsonValue& JsonValue::push_back(JsonValue v) {
  SECFLOW_CHECK(kind_ == Kind::kArray,
                "JsonValue: push_back on " + kind_name(kind_));
  arr_.push_back(std::move(v));
  return *this;
}

JsonValue& JsonValue::set(std::string key, JsonValue v) {
  SECFLOW_CHECK(kind_ == Kind::kObject,
                "JsonValue: set on " + kind_name(kind_));
  for (auto& [k, existing] : obj_) {
    if (k == key) {
      existing = std::move(v);
      return *this;
    }
  }
  obj_.emplace_back(std::move(key), std::move(v));
  return *this;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

JsonValue* JsonValue::find(std::string_view key) {
  if (kind_ != Kind::kObject) return nullptr;
  for (auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool JsonValue::operator==(const JsonValue& o) const {
  if (kind_ != o.kind_) return false;
  switch (kind_) {
    case Kind::kNull: return true;
    case Kind::kBool: return bool_ == o.bool_;
    case Kind::kNumber: return num_ == o.num_;
    case Kind::kString: return str_ == o.str_;
    case Kind::kArray: return arr_ == o.arr_;
    case Kind::kObject: return obj_ == o.obj_;
  }
  return false;
}

std::string json_dump(const JsonValue& v, int indent) {
  std::string out;
  dump_rec(v, indent, 0, out);
  return out;
}

JsonValue json_parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace secflow
