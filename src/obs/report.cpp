#include "obs/report.h"

#include "base/error.h"

namespace secflow {
namespace {

const char* const kCacheVocabulary[] = {"not-run", "off", "miss", "hit"};

JsonValue metrics_to_json(const MetricsSnapshot& m) {
  JsonValue counters = JsonValue::object();
  for (const auto& [name, v] : m.counters) counters.set(name, v);
  JsonValue gauges = JsonValue::object();
  for (const auto& [name, v] : m.gauges) gauges.set(name, v);
  JsonValue hists = JsonValue::object();
  for (const auto& [name, h] : m.histograms) {
    JsonValue hv = JsonValue::object();
    hv.set("count", h.count).set("sum", h.sum);
    hv.set("min", h.min).set("max", h.max);
    hists.set(name, std::move(hv));
  }
  JsonValue out = JsonValue::object();
  out.set("counters", std::move(counters));
  out.set("gauges", std::move(gauges));
  out.set("histograms", std::move(hists));
  return out;
}

/// Required typed member access with schema-style error messages.
const JsonValue& member(const JsonValue& obj, std::string_view key,
                        JsonValue::Kind kind, const char* where) {
  const JsonValue* v = obj.find(key);
  SECFLOW_CHECK(v != nullptr, std::string("flow report: ") + where +
                                  " lacks required member '" +
                                  std::string(key) + "'");
  SECFLOW_CHECK(v->kind() == kind, std::string("flow report: ") + where +
                                       " member '" + std::string(key) +
                                       "' has the wrong type");
  return *v;
}

double num(const JsonValue& obj, std::string_view key, const char* where) {
  return member(obj, key, JsonValue::Kind::kNumber, where).as_number();
}

std::string str(const JsonValue& obj, std::string_view key,
                const char* where) {
  return member(obj, key, JsonValue::Kind::kString, where).as_string();
}

bool boolean(const JsonValue& obj, std::string_view key, const char* where) {
  return member(obj, key, JsonValue::Kind::kBool, where).as_bool();
}

MetricsSnapshot metrics_from_json(const JsonValue& v) {
  MetricsSnapshot m;
  for (const auto& [name, c] :
       member(v, "counters", JsonValue::Kind::kObject, "metrics").members()) {
    m.counters[name] = static_cast<std::uint64_t>(c.as_number());
  }
  for (const auto& [name, g] :
       member(v, "gauges", JsonValue::Kind::kObject, "metrics").members()) {
    m.gauges[name] = g.as_number();
  }
  for (const auto& [name, h] :
       member(v, "histograms", JsonValue::Kind::kObject, "metrics")
           .members()) {
    HistogramStat stat;
    stat.count = static_cast<std::uint64_t>(num(h, "count", "histogram"));
    stat.sum = num(h, "sum", "histogram");
    stat.min = num(h, "min", "histogram");
    stat.max = num(h, "max", "histogram");
    m.histograms[name] = stat;
  }
  return m;
}

}  // namespace

void attach_metrics(FlowReport& r, const MetricsSnapshot& snapshot) {
  r.metrics = snapshot;
}

std::string flow_report_json(const FlowReport& r) {
  return json_dump(flow_report_to_json(r), 2) + "\n";
}

JsonValue flow_report_to_json(const FlowReport& r) {
  JsonValue doc = JsonValue::object();
  doc.set("schema", r.schema);
  doc.set("flow", r.flow);
  doc.set("design", r.design);
  doc.set("completed_through", r.completed_through);
  doc.set("n_threads", r.n_threads);

  JsonValue design = JsonValue::object();
  design.set("cells", r.cells);
  design.set("cell_area_um2", r.cell_area_um2);
  design.set("die_area_um2", r.die_area_um2);
  design.set("wirelength_um", r.wirelength_um);
  design.set("vias", r.vias);
  doc.set("design_stats", std::move(design));

  JsonValue route = JsonValue::object();
  route.set("nets", r.route_nets);
  route.set("iterations", r.route_iterations);
  doc.set("route", std::move(route));

  doc.set("timing",
          JsonValue::object().set("critical_delay_ps", r.critical_delay_ps));

  JsonValue stages = JsonValue::array();
  for (const StageEntry& s : r.stages) {
    JsonValue sv = JsonValue::object();
    sv.set("name", s.name).set("ms", s.ms).set("cache", s.cache);
    sv.set("cache_key", s.cache_key);
    stages.push_back(std::move(sv));
  }
  doc.set("stages", std::move(stages));
  doc.set("total_ms", r.total_ms);

  if (r.secure.present) {
    JsonValue sec = JsonValue::object();
    sec.set("fat_cells", r.secure.fat_cells);
    sec.set("diff_cells", r.secure.diff_cells);
    sec.set("inverters_removed", r.secure.inverters_removed);
    sec.set("lec_equivalent", r.secure.lec_equivalent);
    sec.set("lec_points", r.secure.lec_points);
    sec.set("stream_check_ok", r.secure.stream_check_ok);
    doc.set("secure", std::move(sec));
  } else {
    doc.set("secure", JsonValue());
  }

  if (r.dpa.present) {
    JsonValue dpa = JsonValue::object();
    dpa.set("n_measurements", r.dpa.n_measurements);
    dpa.set("best_guess", r.dpa.best_guess);
    dpa.set("disclosed", r.dpa.disclosed);
    dpa.set("best_peak", r.dpa.best_peak);
    dpa.set("runner_up_peak", r.dpa.runner_up_peak);
    dpa.set("mean_cycle_energy_pj", r.dpa.mean_cycle_energy_pj);
    doc.set("dpa", std::move(dpa));
  } else {
    doc.set("dpa", JsonValue());
  }

  if (r.leakage.present) {
    JsonValue lk = JsonValue::object();
    lk.set("model", r.leakage.model);
    lk.set("cpa_traces", r.leakage.cpa_traces);
    lk.set("cpa_best_guess", r.leakage.cpa_best_guess);
    lk.set("cpa_correct_rank", r.leakage.cpa_correct_rank);
    lk.set("cpa_disclosed", r.leakage.cpa_disclosed);
    lk.set("tvla_max_abs_t", r.leakage.tvla_max_abs_t);
    lk.set("tvla_leaks", r.leakage.tvla_leaks);
    lk.set("mtd", r.leakage.mtd);
    lk.set("mtd_max_traces", r.leakage.mtd_max_traces);
    doc.set("leakage", std::move(lk));
  } else {
    doc.set("leakage", JsonValue());
  }

  doc.set("metrics", metrics_to_json(r.metrics));
  return doc;
}

void validate_flow_report(const JsonValue& doc) {
  SECFLOW_CHECK(doc.is_object(), "flow report: document is not an object");
  const std::string schema = str(doc, "schema", "document");
  SECFLOW_CHECK(schema == kFlowReportSchema,
                "flow report: unknown schema '" + schema + "' (want " +
                    kFlowReportSchema + ")");
  const std::string flow = str(doc, "flow", "document");
  SECFLOW_CHECK(flow == "regular" || flow == "secure",
                "flow report: flow must be 'regular' or 'secure', got '" +
                    flow + "'");
  str(doc, "design", "document");
  str(doc, "completed_through", "document");
  num(doc, "n_threads", "document");
  num(doc, "total_ms", "document");

  const JsonValue& design =
      member(doc, "design_stats", JsonValue::Kind::kObject, "document");
  for (const char* key :
       {"cells", "cell_area_um2", "die_area_um2", "wirelength_um", "vias"}) {
    num(design, key, "design_stats");
  }
  const JsonValue& route =
      member(doc, "route", JsonValue::Kind::kObject, "document");
  num(route, "nets", "route");
  num(route, "iterations", "route");
  num(member(doc, "timing", JsonValue::Kind::kObject, "document"),
      "critical_delay_ps", "timing");

  const JsonValue& stages =
      member(doc, "stages", JsonValue::Kind::kArray, "document");
  SECFLOW_CHECK(!stages.items().empty(), "flow report: stages is empty");
  for (const JsonValue& s : stages.items()) {
    SECFLOW_CHECK(s.is_object(), "flow report: stage entry is not an object");
    str(s, "name", "stage");
    num(s, "ms", "stage");
    const std::string cache = str(s, "cache", "stage");
    bool known = false;
    for (const char* v : kCacheVocabulary) known = known || cache == v;
    SECFLOW_CHECK(known,
                  "flow report: unknown stage cache verdict '" + cache + "'");
    const std::string key = str(s, "cache_key", "stage");
    SECFLOW_CHECK(key.empty() || key.size() == 16,
                  "flow report: cache_key must be empty or 16 hex digits");
  }

  const JsonValue* secure = doc.find("secure");
  SECFLOW_CHECK(secure != nullptr && (secure->is_null() || secure->is_object()),
                "flow report: secure must be null or an object");
  if (secure->is_object()) {
    num(*secure, "fat_cells", "secure");
    num(*secure, "diff_cells", "secure");
    num(*secure, "inverters_removed", "secure");
    boolean(*secure, "lec_equivalent", "secure");
    num(*secure, "lec_points", "secure");
    boolean(*secure, "stream_check_ok", "secure");
  }
  const JsonValue* dpa = doc.find("dpa");
  SECFLOW_CHECK(dpa != nullptr && (dpa->is_null() || dpa->is_object()),
                "flow report: dpa must be null or an object");
  if (dpa->is_object()) {
    num(*dpa, "n_measurements", "dpa");
    num(*dpa, "best_guess", "dpa");
    boolean(*dpa, "disclosed", "dpa");
    num(*dpa, "best_peak", "dpa");
    num(*dpa, "runner_up_peak", "dpa");
    num(*dpa, "mean_cycle_energy_pj", "dpa");
  }
  const JsonValue* leakage = doc.find("leakage");
  SECFLOW_CHECK(
      leakage != nullptr && (leakage->is_null() || leakage->is_object()),
      "flow report: leakage must be null or an object");
  if (leakage->is_object()) {
    const std::string model = str(*leakage, "model", "leakage");
    SECFLOW_CHECK(model.empty() || model == "hw" || model == "hd",
                  "flow report: leakage model must be '', 'hw' or 'hd'");
    num(*leakage, "cpa_traces", "leakage");
    num(*leakage, "cpa_best_guess", "leakage");
    num(*leakage, "cpa_correct_rank", "leakage");
    boolean(*leakage, "cpa_disclosed", "leakage");
    num(*leakage, "tvla_max_abs_t", "leakage");
    num(*leakage, "tvla_leaks", "leakage");
    num(*leakage, "mtd", "leakage");
    num(*leakage, "mtd_max_traces", "leakage");
  }
  metrics_from_json(member(doc, "metrics", JsonValue::Kind::kObject,
                           "document"));  // type-checks every entry
}

FlowReport parse_flow_report(const std::string& json) {
  return flow_report_from_json(json_parse(json));
}

FlowReport flow_report_from_json(const JsonValue& doc) {
  validate_flow_report(doc);

  FlowReport r;
  r.schema = str(doc, "schema", "document");
  r.flow = str(doc, "flow", "document");
  r.design = str(doc, "design", "document");
  r.completed_through = str(doc, "completed_through", "document");
  r.n_threads = static_cast<std::int64_t>(num(doc, "n_threads", "document"));

  const JsonValue& design =
      member(doc, "design_stats", JsonValue::Kind::kObject, "document");
  r.cells = static_cast<std::uint64_t>(num(design, "cells", "design_stats"));
  r.cell_area_um2 = num(design, "cell_area_um2", "design_stats");
  r.die_area_um2 = num(design, "die_area_um2", "design_stats");
  r.wirelength_um = num(design, "wirelength_um", "design_stats");
  r.vias = static_cast<std::int64_t>(num(design, "vias", "design_stats"));

  const JsonValue& route =
      member(doc, "route", JsonValue::Kind::kObject, "document");
  r.route_nets = static_cast<std::int64_t>(num(route, "nets", "route"));
  r.route_iterations =
      static_cast<std::int64_t>(num(route, "iterations", "route"));
  r.critical_delay_ps =
      num(member(doc, "timing", JsonValue::Kind::kObject, "document"),
          "critical_delay_ps", "timing");
  r.total_ms = num(doc, "total_ms", "document");

  for (const JsonValue& s : doc.find("stages")->items()) {
    StageEntry e;
    e.name = str(s, "name", "stage");
    e.ms = num(s, "ms", "stage");
    e.cache = str(s, "cache", "stage");
    e.cache_key = str(s, "cache_key", "stage");
    r.stages.push_back(std::move(e));
  }

  const JsonValue* secure = doc.find("secure");
  if (secure->is_object()) {
    r.secure.present = true;
    r.secure.fat_cells =
        static_cast<std::uint64_t>(num(*secure, "fat_cells", "secure"));
    r.secure.diff_cells =
        static_cast<std::uint64_t>(num(*secure, "diff_cells", "secure"));
    r.secure.inverters_removed = static_cast<std::int64_t>(
        num(*secure, "inverters_removed", "secure"));
    r.secure.lec_equivalent = boolean(*secure, "lec_equivalent", "secure");
    r.secure.lec_points =
        static_cast<std::int64_t>(num(*secure, "lec_points", "secure"));
    r.secure.stream_check_ok = boolean(*secure, "stream_check_ok", "secure");
  }

  const JsonValue* dpa = doc.find("dpa");
  if (dpa->is_object()) {
    r.dpa.present = true;
    r.dpa.n_measurements =
        static_cast<std::int64_t>(num(*dpa, "n_measurements", "dpa"));
    r.dpa.best_guess =
        static_cast<std::int64_t>(num(*dpa, "best_guess", "dpa"));
    r.dpa.disclosed = boolean(*dpa, "disclosed", "dpa");
    r.dpa.best_peak = num(*dpa, "best_peak", "dpa");
    r.dpa.runner_up_peak = num(*dpa, "runner_up_peak", "dpa");
    r.dpa.mean_cycle_energy_pj = num(*dpa, "mean_cycle_energy_pj", "dpa");
  }

  const JsonValue* leakage = doc.find("leakage");
  if (leakage->is_object()) {
    r.leakage.present = true;
    r.leakage.model = str(*leakage, "model", "leakage");
    r.leakage.cpa_traces =
        static_cast<std::int64_t>(num(*leakage, "cpa_traces", "leakage"));
    r.leakage.cpa_best_guess = static_cast<std::int64_t>(
        num(*leakage, "cpa_best_guess", "leakage"));
    r.leakage.cpa_correct_rank = static_cast<std::int64_t>(
        num(*leakage, "cpa_correct_rank", "leakage"));
    r.leakage.cpa_disclosed = boolean(*leakage, "cpa_disclosed", "leakage");
    r.leakage.tvla_max_abs_t = num(*leakage, "tvla_max_abs_t", "leakage");
    r.leakage.tvla_leaks =
        static_cast<std::int64_t>(num(*leakage, "tvla_leaks", "leakage"));
    r.leakage.mtd = static_cast<std::int64_t>(num(*leakage, "mtd", "leakage"));
    r.leakage.mtd_max_traces = static_cast<std::int64_t>(
        num(*leakage, "mtd_max_traces", "leakage"));
  }

  r.metrics = metrics_from_json(
      member(doc, "metrics", JsonValue::Kind::kObject, "document"));
  return r;
}

}  // namespace secflow
