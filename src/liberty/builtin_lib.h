// Built-in single-ended standard-cell library ("stdcell018").
//
// A representative 0.18 um, 1.8 V static CMOS library: the cell set a
// vendor kit would offer for synthesis, with areas/footprints on a 5.04 um
// row grid and first-order electrical data.  This plays the role of the
// vendor lib the paper's flow starts from; the WDDL compound library is
// generated from it (src/wddl/wddl_library.h).
#pragma once

#include <memory>
#include <string>

#include "netlist/cell_library.h"

namespace secflow {

/// The Liberty-lite source text of the built-in library.
const std::string& builtin_stdcell018_liberty();

/// Parse and return the built-in library (fresh instance per call).
std::shared_ptr<CellLibrary> builtin_stdcell018();

/// Uniform standard-cell row height of the built-in library [um].
inline constexpr double kRowHeightUm = 5.04;

}  // namespace secflow
