// Boolean expression parser for Liberty `function` attributes.
//
// Supported syntax: identifiers, constants 0/1, parentheses, and operators
// ! (or postfix ') & (or *) ^ | (or +), with precedence ! > & > ^ > |.
#pragma once

#include <string>
#include <vector>

#include "netlist/logic_fn.h"

namespace secflow {

/// Parse `expr` into a LogicFn over `input_names` (which defines variable
/// order: input_names[i] is LogicFn input i).  Throws ParseError on syntax
/// errors or unknown identifiers.
LogicFn parse_bool_expr(const std::string& expr,
                        const std::vector<std::string>& input_names);

}  // namespace secflow
