// Liberty-lite parser.
//
// Accepts the subset of the Liberty format needed to describe the cells in
// this flow:
//
//   library(NAME) {
//     cell(NAME) {
//       area : 6.65;
//       width : 1.32;            /* secflow extension: footprint [um] */
//       height : 5.04;
//       intrinsic_delay : 28;    /* ps */
//       drive_resistance : 4.0;  /* kohm */
//       internal_cap : 1.2;      /* fF */
//       ff : true;               /* marks a D flip-flop */
//       tie : true;              /* marks a constant driver */
//       pin(A) { direction : input; capacitance : 2.1; }
//       pin(Y) { direction : output; function : "!(A&B)"; }
//       pin(CK) { direction : input; clock : true; capacitance : 1.4; }
//     }
//   }
//
// Comments (/* */ and //) are allowed anywhere.  Exactly one output pin per
// cell.  For combinational cells the output `function` is mandatory; flops
// use pins D/CK/Q by name; ties state their constant via function "0"/"1".
#pragma once

#include <memory>
#include <string>

#include "netlist/cell_library.h"

namespace secflow {

/// Parse Liberty-lite text into a validated CellLibrary.
std::shared_ptr<CellLibrary> parse_liberty(const std::string& text);

/// Parse a Liberty-lite file.
std::shared_ptr<CellLibrary> parse_liberty_file(const std::string& path);

/// Render a CellLibrary back to Liberty-lite text (round-trips through
/// parse_liberty; used for the flow's lib.v artifact and tests).
std::string write_liberty(const CellLibrary& lib);

}  // namespace secflow
