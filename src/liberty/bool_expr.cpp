#include "liberty/bool_expr.h"

#include <cctype>

#include "base/error.h"

namespace secflow {
namespace {

// Truth tables are manipulated directly as 64-bit masks over the full
// variable set; `ones` is the mask of valid rows.
class ExprParser {
 public:
  ExprParser(const std::string& text, const std::vector<std::string>& names)
      : text_(text), names_(names) {
    SECFLOW_CHECK(names.size() <= LogicFn::kMaxInputs,
                  "too many inputs for bool expr");
    const unsigned rows = 1u << names_.size();
    ones_ = rows >= 64 ? ~std::uint64_t{0}
                       : ((std::uint64_t{1} << rows) - 1);
  }

  LogicFn parse() {
    const std::uint64_t t = parse_or();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return LogicFn(static_cast<int>(names_.size()), t);
  }

 private:
  std::uint64_t parse_or() {
    std::uint64_t t = parse_xor();
    for (;;) {
      skip_ws();
      if (peek() == '|' || peek() == '+') {
        ++pos_;
        t |= parse_xor();
      } else {
        return t;
      }
    }
  }

  std::uint64_t parse_xor() {
    std::uint64_t t = parse_and();
    for (;;) {
      skip_ws();
      if (peek() == '^') {
        ++pos_;
        t ^= parse_and();
      } else {
        return t;
      }
    }
  }

  std::uint64_t parse_and() {
    std::uint64_t t = parse_unary();
    for (;;) {
      skip_ws();
      const char c = peek();
      if (c == '&' || c == '*') {
        ++pos_;
        t &= parse_unary();
      } else if (c == '!' || c == '(' || c == '0' || c == '1' ||
                 std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        // Liberty allows juxtaposition as AND ("A B").
        t &= parse_unary();
      } else {
        return t;
      }
    }
  }

  std::uint64_t parse_unary() {
    skip_ws();
    std::uint64_t t;
    if (peek() == '!') {
      ++pos_;
      t = ~parse_unary() & ones_;
    } else if (peek() == '(') {
      ++pos_;
      t = parse_or();
      skip_ws();
      if (peek() != ')') fail("expected ')'");
      ++pos_;
    } else if (peek() == '0') {
      ++pos_;
      t = 0;
    } else if (peek() == '1') {
      ++pos_;
      t = ones_;
    } else {
      t = parse_var();
    }
    // Postfix complement (Liberty: A').
    for (;;) {
      skip_ws();
      if (peek() == '\'') {
        ++pos_;
        t = ~t & ones_;
      } else {
        break;
      }
    }
    return t;
  }

  std::uint64_t parse_var() {
    std::string name;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
        name += c;
        ++pos_;
      } else {
        break;
      }
    }
    if (name.empty()) fail("expected identifier");
    for (std::size_t i = 0; i < names_.size(); ++i) {
      if (names_[i] == name) return var_table(static_cast<int>(i));
    }
    fail("unknown identifier: " + name);
  }

  std::uint64_t var_table(int i) const {
    const unsigned rows = 1u << names_.size();
    std::uint64_t t = 0;
    for (unsigned row = 0; row < rows; ++row) {
      if (row & (1u << i)) t |= std::uint64_t{1} << row;
    }
    return t;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  [[noreturn]] void fail(const std::string& msg) const {
    throw ParseError("bool expr '" + text_ + "' pos " + std::to_string(pos_),
                     msg);
  }

  const std::string& text_;
  const std::vector<std::string>& names_;
  std::uint64_t ones_ = 0;
  std::size_t pos_ = 0;
};

}  // namespace

LogicFn parse_bool_expr(const std::string& expr,
                        const std::vector<std::string>& input_names) {
  return ExprParser(expr, input_names).parse();
}

}  // namespace secflow
