#include "liberty/builtin_lib.h"

#include "liberty/liberty_parser.h"

namespace secflow {

const std::string& builtin_stdcell018_liberty() {
  // Areas are width*height with height 5.04 um; caps in fF, delays in ps,
  // resistances in kohm.  Values are representative of published 180 nm
  // standard-cell data (not vendor-exact; see DESIGN.md section 1).
  static const std::string kText = R"LIB(
library(stdcell018) {
  cell(INV) {
    area : 6.6528; width : 1.32; height : 5.04;
    intrinsic_delay : 22; drive_resistance : 4.2; internal_cap : 0.8;
    pin(A) { direction : input; capacitance : 2.0; }
    pin(Y) { direction : output; function : "!A"; }
  }
  cell(BUF) {
    area : 9.9792; width : 1.98; height : 5.04;
    intrinsic_delay : 45; drive_resistance : 3.2; internal_cap : 1.4;
    pin(A) { direction : input; capacitance : 1.8; }
    pin(Y) { direction : output; function : "A"; }
  }
  cell(NAND2) {
    area : 9.9792; width : 1.98; height : 5.04;
    intrinsic_delay : 32; drive_resistance : 4.6; internal_cap : 1.1;
    pin(A) { direction : input; capacitance : 2.1; }
    pin(B) { direction : input; capacitance : 2.1; }
    pin(Y) { direction : output; function : "!(A&B)"; }
  }
  cell(NAND3) {
    area : 13.3056; width : 2.64; height : 5.04;
    intrinsic_delay : 41; drive_resistance : 5.0; internal_cap : 1.5;
    pin(A) { direction : input; capacitance : 2.2; }
    pin(B) { direction : input; capacitance : 2.2; }
    pin(C) { direction : input; capacitance : 2.2; }
    pin(Y) { direction : output; function : "!(A&B&C)"; }
  }
  cell(NOR2) {
    area : 9.9792; width : 1.98; height : 5.04;
    intrinsic_delay : 38; drive_resistance : 5.4; internal_cap : 1.1;
    pin(A) { direction : input; capacitance : 2.1; }
    pin(B) { direction : input; capacitance : 2.1; }
    pin(Y) { direction : output; function : "!(A|B)"; }
  }
  cell(NOR3) {
    area : 13.3056; width : 2.64; height : 5.04;
    intrinsic_delay : 52; drive_resistance : 6.1; internal_cap : 1.5;
    pin(A) { direction : input; capacitance : 2.2; }
    pin(B) { direction : input; capacitance : 2.2; }
    pin(C) { direction : input; capacitance : 2.2; }
    pin(Y) { direction : output; function : "!(A|B|C)"; }
  }
  cell(AND2) {
    area : 13.3056; width : 2.64; height : 5.04;
    intrinsic_delay : 55; drive_resistance : 3.8; internal_cap : 1.6;
    pin(A) { direction : input; capacitance : 1.9; }
    pin(B) { direction : input; capacitance : 1.9; }
    pin(Y) { direction : output; function : "A&B"; }
  }
  cell(AND3) {
    area : 16.632; width : 3.30; height : 5.04;
    intrinsic_delay : 62; drive_resistance : 3.9; internal_cap : 2.0;
    pin(A) { direction : input; capacitance : 2.0; }
    pin(B) { direction : input; capacitance : 2.0; }
    pin(C) { direction : input; capacitance : 2.0; }
    pin(Y) { direction : output; function : "A&B&C"; }
  }
  cell(OR2) {
    area : 13.3056; width : 2.64; height : 5.04;
    intrinsic_delay : 58; drive_resistance : 3.8; internal_cap : 1.6;
    pin(A) { direction : input; capacitance : 1.9; }
    pin(B) { direction : input; capacitance : 1.9; }
    pin(Y) { direction : output; function : "A|B"; }
  }
  cell(OR3) {
    area : 16.632; width : 3.30; height : 5.04;
    intrinsic_delay : 68; drive_resistance : 3.9; internal_cap : 2.0;
    pin(A) { direction : input; capacitance : 2.0; }
    pin(B) { direction : input; capacitance : 2.0; }
    pin(C) { direction : input; capacitance : 2.0; }
    pin(Y) { direction : output; function : "A|B|C"; }
  }
  cell(XOR2) {
    area : 23.2848; width : 4.62; height : 5.04;
    intrinsic_delay : 75; drive_resistance : 4.4; internal_cap : 2.6;
    pin(A) { direction : input; capacitance : 2.9; }
    pin(B) { direction : input; capacitance : 2.9; }
    pin(Y) { direction : output; function : "A^B"; }
  }
  cell(XNOR2) {
    area : 23.2848; width : 4.62; height : 5.04;
    intrinsic_delay : 75; drive_resistance : 4.4; internal_cap : 2.6;
    pin(A) { direction : input; capacitance : 2.9; }
    pin(B) { direction : input; capacitance : 2.9; }
    pin(Y) { direction : output; function : "!(A^B)"; }
  }
  cell(AOI21) {
    area : 13.3056; width : 2.64; height : 5.04;
    intrinsic_delay : 44; drive_resistance : 5.2; internal_cap : 1.4;
    pin(A0) { direction : input; capacitance : 2.2; }
    pin(A1) { direction : input; capacitance : 2.2; }
    pin(B0) { direction : input; capacitance : 2.2; }
    pin(Y) { direction : output; function : "!((A0&A1)|B0)"; }
  }
  cell(AOI22) {
    area : 16.632; width : 3.30; height : 5.04;
    intrinsic_delay : 50; drive_resistance : 5.5; internal_cap : 1.8;
    pin(A0) { direction : input; capacitance : 2.3; }
    pin(A1) { direction : input; capacitance : 2.3; }
    pin(B0) { direction : input; capacitance : 2.3; }
    pin(B1) { direction : input; capacitance : 2.3; }
    pin(Y) { direction : output; function : "!((A0&A1)|(B0&B1))"; }
  }
  cell(AOI32) {
    area : 19.9584; width : 3.96; height : 5.04;
    intrinsic_delay : 57; drive_resistance : 5.8; internal_cap : 2.2;
    pin(A0) { direction : input; capacitance : 2.4; }
    pin(A1) { direction : input; capacitance : 2.4; }
    pin(A2) { direction : input; capacitance : 2.4; }
    pin(B0) { direction : input; capacitance : 2.4; }
    pin(B1) { direction : input; capacitance : 2.4; }
    pin(Y) { direction : output; function : "!((A0&A1&A2)|(B0&B1))"; }
  }
  cell(OAI21) {
    area : 13.3056; width : 2.64; height : 5.04;
    intrinsic_delay : 44; drive_resistance : 5.2; internal_cap : 1.4;
    pin(A0) { direction : input; capacitance : 2.2; }
    pin(A1) { direction : input; capacitance : 2.2; }
    pin(B0) { direction : input; capacitance : 2.2; }
    pin(Y) { direction : output; function : "!((A0|A1)&B0)"; }
  }
  cell(OAI22) {
    area : 16.632; width : 3.30; height : 5.04;
    intrinsic_delay : 50; drive_resistance : 5.5; internal_cap : 1.8;
    pin(A0) { direction : input; capacitance : 2.3; }
    pin(A1) { direction : input; capacitance : 2.3; }
    pin(B0) { direction : input; capacitance : 2.3; }
    pin(B1) { direction : input; capacitance : 2.3; }
    pin(Y) { direction : output; function : "!((A0|A1)&(B0|B1))"; }
  }
  cell(MUX2) {
    area : 23.2848; width : 4.62; height : 5.04;
    intrinsic_delay : 70; drive_resistance : 4.3; internal_cap : 2.4;
    pin(D0) { direction : input; capacitance : 2.1; }
    pin(D1) { direction : input; capacitance : 2.1; }
    pin(S) { direction : input; capacitance : 2.7; }
    pin(Y) { direction : output; function : "(D0&!S)|(D1&S)"; }
  }
  cell(DFF) {
    area : 46.5696; width : 9.24; height : 5.04;
    intrinsic_delay : 180; drive_resistance : 4.0; internal_cap : 4.5;
    ff : true;
    pin(D) { direction : input; capacitance : 2.0; }
    pin(CK) { direction : input; capacitance : 1.6; }
    pin(Q) { direction : output; }
  }
  cell(DFFN) {
    area : 46.5696; width : 9.24; height : 5.04;
    intrinsic_delay : 180; drive_resistance : 4.0; internal_cap : 4.5;
    ff_negedge : true;
    pin(D) { direction : input; capacitance : 2.0; }
    pin(CK) { direction : input; capacitance : 1.6; }
    pin(Q) { direction : output; }
  }
  cell(TIE0) {
    area : 6.6528; width : 1.32; height : 5.04;
    intrinsic_delay : 0; drive_resistance : 8.0; internal_cap : 0.0;
    tie : true;
    pin(Y) { direction : output; function : "0"; }
  }
  cell(TIE1) {
    area : 6.6528; width : 1.32; height : 5.04;
    intrinsic_delay : 0; drive_resistance : 8.0; internal_cap : 0.0;
    tie : true;
    pin(Y) { direction : output; function : "1"; }
  }
}
)LIB";
  return kText;
}

std::shared_ptr<CellLibrary> builtin_stdcell018() {
  return parse_liberty(builtin_stdcell018_liberty());
}

}  // namespace secflow
