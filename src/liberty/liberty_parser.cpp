#include "liberty/liberty_parser.h"

#include <cctype>
#include <fstream>
#include <sstream>

#include "base/error.h"
#include "liberty/bool_expr.h"

namespace secflow {
namespace {

class LibertyLexer {
 public:
  explicit LibertyLexer(const std::string& text) : text_(text) {}

  struct Token {
    enum Kind { kIdent, kNumber, kString, kPunct, kEnd } kind = kEnd;
    std::string text;
    int line = 0;
  };

  Token next() {
    skip();
    if (pos_ >= text_.size()) return {Token::kEnd, "", line_};
    const char c = text_[pos_];
    if (c == '"') {
      ++pos_;
      std::string s;
      while (pos_ < text_.size() && text_[pos_] != '"') {
        if (text_[pos_] == '\n') ++line_;
        s += text_[pos_++];
      }
      if (pos_ >= text_.size()) {
        throw ParseError("liberty line " + std::to_string(line_),
                         "unterminated string");
      }
      ++pos_;
      return {Token::kString, s, line_};
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string s;
      while (pos_ < text_.size()) {
        const char d = text_[pos_];
        if (std::isalnum(static_cast<unsigned char>(d)) || d == '_') {
          s += d;
          ++pos_;
        } else {
          break;
        }
      }
      return {Token::kIdent, s, line_};
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' || c == '.') {
      std::string s;
      while (pos_ < text_.size()) {
        const char d = text_[pos_];
        if (std::isdigit(static_cast<unsigned char>(d)) || d == '.' ||
            d == '-' || d == '+' || d == 'e' || d == 'E') {
          s += d;
          ++pos_;
        } else {
          break;
        }
      }
      return {Token::kNumber, s, line_};
    }
    ++pos_;
    return {Token::kPunct, std::string(1, c), line_};
  }

 private:
  void skip() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '/' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '/') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else if (c == '/' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '*') {
        pos_ += 2;
        while (pos_ + 1 < text_.size() &&
               !(text_[pos_] == '*' && text_[pos_ + 1] == '/')) {
          if (text_[pos_] == '\n') ++line_;
          ++pos_;
        }
        pos_ = std::min(pos_ + 2, text_.size());
      } else {
        break;
      }
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

struct PinSpec {
  PinDef def;
  std::string function;  // output pins only
};

class LibertyParser {
 public:
  explicit LibertyParser(const std::string& text) : lexer_(text) { advance(); }

  std::shared_ptr<CellLibrary> parse() {
    expect_ident("library");
    expect_punct("(");
    const std::string lib_name = expect_name("library name");
    expect_punct(")");
    expect_punct("{");
    auto lib = std::make_shared<CellLibrary>(lib_name);
    while (!at_punct("}")) {
      expect_ident("cell");
      lib->add(parse_cell());
    }
    expect_punct("}");
    lib->validate();
    return lib;
  }

 private:
  CellType parse_cell() {
    expect_punct("(");
    CellType cell;
    cell.name = expect_name("cell name");
    expect_punct(")");
    expect_punct("{");
    std::vector<PinSpec> pins;
    bool is_ff = false, is_tie = false;
    while (!at_punct("}")) {
      const std::string key = expect_name("attribute or pin");
      if (key == "pin") {
        pins.push_back(parse_pin());
        continue;
      }
      expect_punct(":");
      const std::string value = expect_value();
      expect_punct(";");
      if (key == "area") {
        cell.area_um2 = to_double(value);
      } else if (key == "width") {
        cell.width_um = to_double(value);
      } else if (key == "height") {
        cell.height_um = to_double(value);
      } else if (key == "intrinsic_delay") {
        cell.intrinsic_delay_ps = to_double(value);
      } else if (key == "drive_resistance") {
        cell.drive_res_kohm = to_double(value);
      } else if (key == "internal_cap") {
        cell.internal_cap_ff = to_double(value);
      } else if (key == "ff") {
        is_ff = (value == "true" || value == "1");
      } else if (key == "ff_negedge") {
        if (value == "true" || value == "1") {
          is_ff = true;
          cell.negedge_clock = true;
        }
      } else if (key == "tie") {
        is_tie = (value == "true" || value == "1");
      }
      // Unknown attributes are ignored (Liberty files carry many).
    }
    expect_punct("}");

    SECFLOW_CHECK(!(is_ff && is_tie), "cell " + cell.name + " ff and tie");
    cell.kind = is_ff    ? CellKind::kFlop
                : is_tie ? CellKind::kTie
                         : CellKind::kCombinational;
    std::vector<std::string> input_names;
    std::string out_function;
    for (const PinSpec& p : pins) {
      cell.pins.push_back(p.def);
      if (p.def.dir == PinDir::kInput) {
        input_names.push_back(p.def.name);
      } else {
        out_function = p.function;
      }
    }
    switch (cell.kind) {
      case CellKind::kCombinational:
        if (out_function.empty()) {
          fail("cell " + cell.name + " output has no function");
        }
        cell.function = parse_bool_expr(out_function, input_names);
        break;
      case CellKind::kFlop:
        cell.function = LogicFn::identity();
        break;
      case CellKind::kTie:
        if (out_function.empty()) {
          fail("tie cell " + cell.name + " needs function \"0\" or \"1\"");
        }
        cell.function = parse_bool_expr(out_function, {});
        break;
    }
    if (cell.width_um <= 0 && cell.height_um > 0 && cell.area_um2 > 0) {
      cell.width_um = cell.area_um2 / cell.height_um;
    }
    return cell;
  }

  PinSpec parse_pin() {
    expect_punct("(");
    PinSpec pin;
    pin.def.name = expect_name("pin name");
    expect_punct(")");
    expect_punct("{");
    while (!at_punct("}")) {
      const std::string key = expect_name("pin attribute");
      expect_punct(":");
      const std::string value = expect_value();
      expect_punct(";");
      if (key == "direction") {
        if (value == "input") {
          pin.def.dir = PinDir::kInput;
        } else if (value == "output") {
          pin.def.dir = PinDir::kOutput;
        } else {
          fail("bad pin direction: " + value);
        }
      } else if (key == "capacitance") {
        pin.def.cap_ff = to_double(value);
      } else if (key == "function") {
        pin.function = value;
      }
      // clock : true etc. are accepted and ignored (CK is found by name).
    }
    expect_punct("}");
    return pin;
  }

  double to_double(const std::string& s) {
    try {
      return std::stod(s);
    } catch (const std::exception&) {
      fail("expected number, got '" + s + "'");
    }
  }

  void advance() { cur_ = lexer_.next(); }
  [[noreturn]] void fail(const std::string& msg) {
    throw ParseError("liberty line " + std::to_string(cur_.line), msg);
  }
  bool at_punct(const std::string& p) const {
    return cur_.kind == LibertyLexer::Token::kPunct && cur_.text == p;
  }
  void expect_punct(const std::string& p) {
    if (!at_punct(p)) fail("expected '" + p + "', got '" + cur_.text + "'");
    advance();
  }
  void expect_ident(const std::string& s) {
    if (cur_.kind != LibertyLexer::Token::kIdent || cur_.text != s) {
      fail("expected '" + s + "', got '" + cur_.text + "'");
    }
    advance();
  }
  /// Identifier or number token (cell names like AOI32 lex as ident).
  std::string expect_name(const std::string& what) {
    if (cur_.kind != LibertyLexer::Token::kIdent &&
        cur_.kind != LibertyLexer::Token::kNumber) {
      fail("expected " + what + ", got '" + cur_.text + "'");
    }
    std::string s = cur_.text;
    advance();
    return s;
  }
  /// Attribute value: ident, number or quoted string.
  std::string expect_value() {
    if (cur_.kind == LibertyLexer::Token::kEnd ||
        cur_.kind == LibertyLexer::Token::kPunct) {
      fail("expected value, got '" + cur_.text + "'");
    }
    std::string s = cur_.text;
    advance();
    return s;
  }

  LibertyLexer lexer_;
  LibertyLexer::Token cur_;
};

}  // namespace

std::shared_ptr<CellLibrary> parse_liberty(const std::string& text) {
  return LibertyParser(text).parse();
}

std::shared_ptr<CellLibrary> parse_liberty_file(const std::string& path) {
  std::ifstream f(path);
  SECFLOW_CHECK(f.good(), "cannot open: " + path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return parse_liberty(ss.str());
}

std::string write_liberty(const CellLibrary& lib) {
  std::ostringstream os;
  os << "library(" << lib.name() << ") {\n";
  for (CellTypeId id : lib.all()) {
    const CellType& c = lib.cell(id);
    os << "  cell(" << c.name << ") {\n";
    os << "    area : " << c.area_um2 << ";\n";
    os << "    width : " << c.width_um << ";\n";
    os << "    height : " << c.height_um << ";\n";
    os << "    intrinsic_delay : " << c.intrinsic_delay_ps << ";\n";
    os << "    drive_resistance : " << c.drive_res_kohm << ";\n";
    os << "    internal_cap : " << c.internal_cap_ff << ";\n";
    if (c.kind == CellKind::kFlop) {
      os << (c.negedge_clock ? "    ff_negedge : true;\n" : "    ff : true;\n");
    }
    if (c.kind == CellKind::kTie) os << "    tie : true;\n";
    std::vector<std::string> input_names;
    for (const PinDef& p : c.pins) {
      if (p.dir == PinDir::kInput) input_names.push_back(p.name);
    }
    for (const PinDef& p : c.pins) {
      os << "    pin(" << p.name << ") {\n";
      os << "      direction : " << (p.dir == PinDir::kInput ? "input" : "output")
         << ";\n";
      if (p.dir == PinDir::kInput) {
        os << "      capacitance : " << p.cap_ff << ";\n";
      } else if (c.kind == CellKind::kCombinational ||
                 c.kind == CellKind::kTie) {
        os << "      function : \"" << c.function.to_sop_string(input_names)
           << "\";\n";
      }
      os << "    }\n";
    }
    os << "  }\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace secflow
