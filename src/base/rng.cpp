#include "base/rng.h"

#include <cmath>

#include "base/error.h"

namespace secflow {
namespace {

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

/// splitmix64, used to expand the seed into the xoshiro state.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t n) {
  SECFLOW_CHECK(n > 0, "next_below(0)");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return v % n;
}

double Rng::next_double() {
  // 53 high bits -> [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::next_gaussian() {
  if (have_spare_gaussian_) {
    have_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u1, u2;
  do {
    u1 = next_double();
  } while (u1 <= 0.0);
  u2 = next_double();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  const double two_pi = 6.283185307179586;
  spare_gaussian_ = mag * std::sin(two_pi * u2);
  have_spare_gaussian_ = true;
  return mag * std::cos(two_pi * u2);
}

Rng Rng::fork() { return Rng(next_u64() ^ 0xD1B54A32D192ED03ull); }

Rng Rng::stream(std::uint64_t master_seed, std::uint64_t stream) {
  // Two rounds of splitmix64 over (seed, stream) decorrelate neighbouring
  // stream indices; the Rng constructor expands the result further.
  std::uint64_t sm = master_seed;
  std::uint64_t mixed = splitmix64(sm);
  sm = mixed ^ (stream * 0xD1B54A32D192ED03ull + 0x8CB92BA72F3D8DD7ull);
  mixed = splitmix64(sm);
  return Rng(mixed);
}

}  // namespace secflow
