// Small declarative argv parser shared by every CLI subcommand.
//
// Declare the accepted flags, options and positionals up front, then
// parse().  Both `--key value` and `--key=value` spellings are accepted
// for options; `--help` is always available and prints the generated
// usage text.  Unknown arguments, missing option values and missing
// required positionals raise Error with a message naming the offender.
//
//   ArgParser p("secflow_cli flow", "run the flow on a design");
//   p.positional("design.v", "mini-HDL input file");
//   p.flag("regular", "run the regular flow instead of the secure one");
//   p.option("out", "DIR", "artifact output directory");
//   if (!p.parse(argc, argv)) return 0;   // --help was printed
//   if (p.has("regular")) ...
//   std::string dir = p.get("out", "default_out");
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace secflow {

class ArgParser {
 public:
  ArgParser(std::string program, std::string description);

  /// A boolean switch: present or absent, takes no value.
  ArgParser& flag(std::string name, std::string help);

  /// An option taking one value, `--name VALUE` or `--name=VALUE`.
  ArgParser& option(std::string name, std::string value_name,
                    std::string help);

  /// A positional argument, consumed in declaration order.  Optional
  /// positionals must come after all required ones.
  ArgParser& positional(std::string name, std::string help,
                        bool required = true);

  /// Parse argv (NOT including the program/subcommand words — pass the
  /// tail).  Returns false when --help was requested, after printing
  /// the usage text to stdout.  Throws Error on malformed input.
  bool parse(int argc, char** argv);

  /// True when the flag was passed or the option was given a value.
  bool has(std::string_view name) const;

  /// The option's value, or `fallback` when it was not passed.
  std::string get(std::string_view name, std::string fallback = "") const;

  /// The positional's value ("" when an optional one was omitted).
  std::string pos(std::string_view name) const;

  /// The generated usage/help text.
  std::string usage() const;

 private:
  struct Spec {
    std::string name;
    std::string value_name;  ///< empty for flags
    std::string help;
    bool is_flag = false;
    bool seen = false;
    std::string value;
  };
  struct Positional {
    std::string name;
    std::string help;
    bool required = true;
    std::string value;
  };

  Spec* find(std::string_view name);
  const Spec* find(std::string_view name) const;

  std::string program_;
  std::string description_;
  std::vector<Spec> specs_;
  std::vector<Positional> positionals_;
};

}  // namespace secflow
