#include "base/error.h"

#include <sstream>

namespace secflow {

void check_failed(const char* file, int line, const char* expr,
                  const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": check failed: (" << expr << ") " << msg;
  throw Error(os.str());
}

}  // namespace secflow
