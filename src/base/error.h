// Error handling for secflow.
//
// Library code throws secflow::Error (a std::runtime_error carrying a
// formatted message).  SECFLOW_CHECK is used for precondition / invariant
// checks that must stay on in release builds: a failed check is a usage or
// internal-consistency error, never a recoverable condition.
#pragma once

#include <stdexcept>
#include <string>

namespace secflow {

/// Base exception for all secflow library errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Error raised while parsing one of the text formats (Verilog subset,
/// Liberty-lite, LEF-lite, DEF-lite, mini-HDL).  Carries a location string.
class ParseError : public Error {
 public:
  ParseError(const std::string& where, const std::string& what)
      : Error(where + ": " + what), where_(where) {}

  const std::string& where() const { return where_; }

 private:
  std::string where_;
};

[[noreturn]] void check_failed(const char* file, int line, const char* expr,
                               const std::string& msg);

}  // namespace secflow

/// Always-on invariant check; throws secflow::Error on failure.
#define SECFLOW_CHECK(expr, msg)                                    \
  do {                                                              \
    if (!(expr)) ::secflow::check_failed(__FILE__, __LINE__, #expr, (msg)); \
  } while (false)
