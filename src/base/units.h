// Physical units and technology constants.
//
// Layout geometry is integer DBU (database units); electrical quantities are
// double in SI-derived engineering units chosen so typical values are O(1):
// femtofarads, kilo-ohms, picoseconds, picojoules, milliamperes, microns.
#pragma once

#include <cstdint>

namespace secflow {

/// Database units per micron (LEF "DATABASE MICRONS 1000").
inline constexpr std::int64_t kDbuPerMicron = 1000;

inline constexpr double dbu_to_um(std::int64_t dbu) {
  return static_cast<double>(dbu) / static_cast<double>(kDbuPerMicron);
}
inline constexpr std::int64_t um_to_dbu(double um) {
  return static_cast<std::int64_t>(um * static_cast<double>(kDbuPerMicron) +
                                   (um >= 0 ? 0.5 : -0.5));
}

/// Representative 0.18 um, 1.8 V process constants.  Values are of the
/// magnitude published for 180 nm nodes (ITRS 2001/2003); they give
/// dimensionally consistent energy numbers, not vendor-exact ones.
struct Process018 {
  double vdd_v = 1.8;                ///< supply voltage [V]
  double wire_c_area_ff_per_um2 = 0.04;   ///< area cap to substrate [fF/um^2]
  double wire_c_fringe_ff_per_um = 0.04;  ///< fringe cap per edge [fF/um]
  double wire_c_couple_ff_per_um = 0.08;  ///< coupling cap at min pitch [fF/um]
  double wire_r_ohm_per_sq = 0.08;   ///< sheet resistance [ohm/sq]
  double via_r_ohm = 4.0;            ///< single via resistance [ohm]
  double via_c_ff = 0.3;             ///< via capacitance [fF]
  double wire_width_um = 0.28;       ///< minimum routed wire width [um]
  double wire_pitch_um = 0.56;       ///< routing track pitch [um]

  /// Energy to charge capacitance c_ff to vdd: E = C*V^2 (the gate then
  /// dissipates C*V^2 total over charge+discharge; we book it at charge
  /// time, matching a supply-current measurement).  Returns picojoules.
  double switch_energy_pj(double c_ff) const {
    return c_ff * vdd_v * vdd_v * 1e-3;
  }
};

/// Clock and sampling parameters from the paper's design example:
/// 125 MHz clock, 800 samples per clock cycle.
struct SamplingSpec {
  double clock_hz = 125e6;
  int samples_per_cycle = 800;

  double cycle_s() const { return 1.0 / clock_hz; }
  double sample_dt_s() const { return cycle_s() / samples_per_cycle; }
};

}  // namespace secflow
