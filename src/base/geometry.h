// Integer rectilinear geometry used by placement, routing, decomposition and
// extraction.  All coordinates are in layout database units (DBU); the
// conversion to microns lives in base/units.h.
#pragma once

#include <algorithm>
#include <cstdint>
#include <iosfwd>
#include <vector>

namespace secflow {

/// A point in layout database units.
struct Point {
  std::int64_t x = 0;
  std::int64_t y = 0;

  friend bool operator==(const Point&, const Point&) = default;
  friend auto operator<=>(const Point&, const Point&) = default;

  Point operator+(const Point& o) const { return {x + o.x, y + o.y}; }
  Point operator-(const Point& o) const { return {x - o.x, y - o.y}; }
};

std::ostream& operator<<(std::ostream& os, const Point& p);

/// Manhattan distance between two points.
std::int64_t manhattan(const Point& a, const Point& b);

/// Axis-aligned rectangle, inclusive low edge, exclusive high edge is not
/// assumed: [lo, hi] both corners are part of the rect.  Degenerate rects
/// (zero width or height) represent wire centre-line spans.
struct Rect {
  Point lo;
  Point hi;

  friend bool operator==(const Rect&, const Rect&) = default;

  std::int64_t width() const { return hi.x - lo.x; }
  std::int64_t height() const { return hi.y - lo.y; }
  std::int64_t area() const { return width() * height(); }
  Point center() const { return {(lo.x + hi.x) / 2, (lo.y + hi.y) / 2}; }

  bool contains(const Point& p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
  }
  bool overlaps(const Rect& o) const {
    return lo.x <= o.hi.x && o.lo.x <= hi.x && lo.y <= o.hi.y && o.lo.y <= hi.y;
  }
  /// Grow by `m` on every side.
  Rect inflated(std::int64_t m) const {
    return {{lo.x - m, lo.y - m}, {hi.x + m, hi.y + m}};
  }
  /// Normalise so lo <= hi componentwise.
  static Rect spanning(const Point& a, const Point& b) {
    return {{std::min(a.x, b.x), std::min(a.y, b.y)},
            {std::max(a.x, b.x), std::max(a.y, b.y)}};
  }
};

std::ostream& operator<<(std::ostream& os, const Rect& r);

/// Bounding box of a set of points; empty input yields a zero rect.
Rect bounding_box(const std::vector<Point>& pts);

/// An axis-parallel wire segment on a named routing layer.  `a` and `b`
/// share an x or a y coordinate (checked by callers); `width` is the drawn
/// wire width in DBU.
struct Segment {
  Point a;
  Point b;
  int layer = 0;
  std::int64_t width = 0;

  friend bool operator==(const Segment&, const Segment&) = default;

  bool horizontal() const { return a.y == b.y; }
  bool vertical() const { return a.x == b.x; }
  std::int64_t length() const { return manhattan(a, b); }
  /// Segment translated by (dx, dy).
  Segment translated(std::int64_t dx, std::int64_t dy) const {
    return {{a.x + dx, a.y + dy}, {b.x + dx, b.y + dy}, layer, width};
  }
};

std::ostream& operator<<(std::ostream& os, const Segment& s);

/// Length of the overlap of [a1,a2] and [b1,b2] on a single axis
/// (inputs need not be ordered).  Zero when disjoint.
std::int64_t interval_overlap(std::int64_t a1, std::int64_t a2,
                              std::int64_t b1, std::int64_t b2);

/// Length over which two parallel same-layer segments run side by side
/// (used for coupling-capacitance extraction).  Returns 0 for segments on
/// different layers, perpendicular segments or non-overlapping spans.
/// `*separation` (optional) receives the centre-line distance.
std::int64_t parallel_run_length(const Segment& s, const Segment& t,
                                 std::int64_t* separation = nullptr);

}  // namespace secflow
