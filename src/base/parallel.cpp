#include "base/parallel.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>

#include "base/error.h"

namespace secflow {
namespace {

/// Set while a pool worker executes a task; parallel_for uses it to run
/// nested invocations inline instead of waiting on the pool.
thread_local bool t_on_pool_worker = false;

int read_env_threads() {
  const char* env = std::getenv("SECFLOW_THREADS");
  if (env == nullptr || *env == '\0') return 0;
  const long v = std::strtol(env, nullptr, 10);
  if (v < 1 || v > 1024) return 0;
  return static_cast<int>(v);
}

}  // namespace

int default_thread_count() {
  static const int count = [] {
    if (const int env = read_env_threads(); env > 0) return env;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }();
  return count;
}

int Parallelism::resolved_threads() const {
  if (n_threads > 0) return n_threads;
  return default_thread_count();
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::ensure_workers(int n) {
  std::lock_guard<std::mutex> lock(mu_);
  SECFLOW_CHECK(n <= 1024, "unreasonable thread count");
  while (static_cast<int>(workers_.size()) < n) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

int ThreadPool::n_workers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(workers_.size());
}

bool ThreadPool::on_worker_thread() const { return t_on_pool_worker; }

void ThreadPool::worker_loop() {
  t_on_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // tasks are noexcept wrappers built by parallel_for
  }
}

ThreadPool& ThreadPool::global() {
  // Leaked on purpose: worker threads may outlive static destruction
  // order, and the process exit reclaims everything anyway.
  static ThreadPool* pool = new ThreadPool();
  return *pool;
}

void parallel_for(std::size_t n, const Parallelism& par,
                  const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  const int threads = par.resolved_threads();
  const std::size_t min_chunk = par.min_chunk == 0 ? 1 : par.min_chunk;
  // Serial paths: single thread, tiny range, or nested inside a pool task
  // (running inline keeps workers non-blocking => no deadlock).
  if (threads <= 1 || n <= min_chunk ||
      ThreadPool::global().on_worker_thread()) {
    body(0, n);
    return;
  }

  struct Control {
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex error_mu;
    std::mutex done_mu;
    std::condition_variable done_cv;
    int pending = 0;
  };
  auto ctl = std::make_shared<Control>();
  // Chunks several times smaller than a fair share let fast threads steal
  // from slow ones while keeping claim traffic low.
  const std::size_t chunk = std::max(
      min_chunk, n / (static_cast<std::size_t>(threads) * 8 + 1) + 1);

  auto run_chunks = [ctl, n, chunk, &body] {
    for (;;) {
      const std::size_t begin = ctl->next.fetch_add(chunk);
      if (begin >= n || ctl->failed.load(std::memory_order_relaxed)) return;
      try {
        body(begin, std::min(begin + chunk, n));
      } catch (...) {
        std::lock_guard<std::mutex> lock(ctl->error_mu);
        if (!ctl->error) ctl->error = std::current_exception();
        ctl->failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  const int helpers = threads - 1;
  ThreadPool& pool = ThreadPool::global();
  pool.ensure_workers(helpers);
  ctl->pending = helpers;
  for (int h = 0; h < helpers; ++h) {
    pool.submit([ctl, run_chunks] {
      run_chunks();
      {
        std::lock_guard<std::mutex> lock(ctl->done_mu);
        --ctl->pending;
      }
      ctl->done_cv.notify_one();
    });
  }
  run_chunks();  // the caller works too
  {
    std::unique_lock<std::mutex> lock(ctl->done_mu);
    ctl->done_cv.wait(lock, [&] { return ctl->pending == 0; });
  }
  if (ctl->error) std::rethrow_exception(ctl->error);
}

}  // namespace secflow
