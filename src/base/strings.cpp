#include "base/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace secflow {

std::vector<std::string> split(std::string_view s, std::string_view delims) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || delims.find(s[i]) != std::string_view::npos) {
      if (i > start) out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

bool is_identifier(std::string_view s) {
  if (s.empty()) return false;
  const auto head = static_cast<unsigned char>(s[0]);
  if (!std::isalpha(head) && s[0] != '_') return false;
  for (char c : s.substr(1)) {
    const auto u = static_cast<unsigned char>(c);
    if (!std::isalnum(u) && c != '_' && c != '$') return false;
  }
  return true;
}

std::string strfmt(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(n > 0 ? static_cast<std::size_t>(n) : 0, '\0');
  if (n > 0) std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  va_end(args2);
  return out;
}

}  // namespace secflow
