// Small string helpers shared by the text-format parsers and report
// writers.  Kept minimal; anything format-specific lives with its parser.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace secflow {

/// Split on any character in `delims`, dropping empty fields.
std::vector<std::string> split(std::string_view s, std::string_view delims);

/// Trim ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Join with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Case-sensitive identifier check: [A-Za-z_][A-Za-z0-9_$]*.
bool is_identifier(std::string_view s);

/// printf-style formatting into a std::string.
std::string strfmt(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace secflow
