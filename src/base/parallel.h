// Parallel execution primitives for the flow's embarrassingly parallel
// hot loops (trace synthesis, DPA guess sweeps, SA move evaluation,
// coupling extraction).
//
// Design rules, chosen so every caller stays bit-identical to its serial
// execution:
//  * work is split into index chunks claimed from a shared atomic cursor
//    (work stealing at chunk granularity — fast chunks steal the slow
//    ones' leftovers);
//  * each index writes only its own output slot, so the result never
//    depends on thread scheduling;
//  * stochastic tasks take an explicit per-index RNG stream split from a
//    master seed (see Rng::stream) instead of sharing one generator.
//
// Thread count resolution order: explicit Parallelism::n_threads, then
// the SECFLOW_THREADS environment variable, then hardware concurrency.
// Nested parallel_for calls run serially inline on the caller's thread,
// which keeps pool workers non-blocking and the pool deadlock-free.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace secflow {

/// Per-call parallelism knob carried by the option structs of every
/// parallelized stage (PlaceOptions, ExtractOptions, DpaOptions, ...).
struct Parallelism {
  /// Threads to use; 0 = auto (SECFLOW_THREADS env var, else hardware).
  int n_threads = 0;
  /// Minimum indices per claimed chunk (amortizes per-chunk overhead for
  /// cheap bodies).
  std::size_t min_chunk = 1;

  /// The thread count this request resolves to (always >= 1).
  int resolved_threads() const;
};

/// Threads implied by SECFLOW_THREADS / hardware (the `n_threads = 0`
/// resolution, cached after the first call).
int default_thread_count();

/// A lazily grown pool of worker threads shared process-wide.  Tasks must
/// never block on other pool tasks: parallel_for guarantees this by
/// running nested calls inline.
class ThreadPool {
 public:
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue one task for any idle worker.
  void submit(std::function<void()> task);

  /// Grow the pool so at least `n` workers exist (no-op if already there).
  void ensure_workers(int n);

  int n_workers() const;

  /// True when the calling thread is one of this pool's workers.
  bool on_worker_thread() const;

  /// The process-wide shared pool.
  static ThreadPool& global();

 private:
  ThreadPool() = default;
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
};

/// Run body(begin, end) over disjoint chunks covering [0, n).  Chunks are
/// claimed dynamically; the caller participates, so the call completes
/// even with zero pool workers.  The first exception thrown by any chunk
/// is rethrown on the caller after all workers quiesce.
void parallel_for(std::size_t n, const Parallelism& par,
                  const std::function<void(std::size_t, std::size_t)>& body);

/// Deterministic map: out[i] = fn(i).  Each slot is written exactly once,
/// so the result is identical for any thread count.
template <typename Fn>
auto parallel_map(std::size_t n, const Parallelism& par, Fn&& fn)
    -> std::vector<decltype(fn(std::size_t{}))> {
  std::vector<decltype(fn(std::size_t{}))> out(n);
  parallel_for(n, par, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) out[i] = fn(i);
  });
  return out;
}

}  // namespace secflow
