#include "base/arg_parser.h"

#include <cstdio>

#include "base/error.h"

namespace secflow {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

ArgParser& ArgParser::flag(std::string name, std::string help) {
  Spec s;
  s.name = std::move(name);
  s.help = std::move(help);
  s.is_flag = true;
  specs_.push_back(std::move(s));
  return *this;
}

ArgParser& ArgParser::option(std::string name, std::string value_name,
                             std::string help) {
  Spec s;
  s.name = std::move(name);
  s.value_name = std::move(value_name);
  s.help = std::move(help);
  specs_.push_back(std::move(s));
  return *this;
}

ArgParser& ArgParser::positional(std::string name, std::string help,
                                 bool required) {
  if (required && !positionals_.empty()) {
    SECFLOW_CHECK(positionals_.back().required,
                  "ArgParser: required positional '" + name +
                      "' declared after an optional one");
  }
  Positional p;
  p.name = std::move(name);
  p.help = std::move(help);
  p.required = required;
  positionals_.push_back(std::move(p));
  return *this;
}

ArgParser::Spec* ArgParser::find(std::string_view name) {
  for (Spec& s : specs_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const ArgParser::Spec* ArgParser::find(std::string_view name) const {
  for (const Spec& s : specs_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

bool ArgParser::parse(int argc, char** argv) {
  std::size_t next_positional = 0;
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) == 0) {
      // --key or --key=value.
      const std::size_t eq = arg.find('=');
      const std::string_view key =
          arg.substr(2, eq == std::string_view::npos ? eq : eq - 2);
      Spec* spec = find(key);
      SECFLOW_CHECK(spec != nullptr, program_ + ": unknown option '--" +
                                         std::string(key) + "'");
      spec->seen = true;
      if (spec->is_flag) {
        SECFLOW_CHECK(eq == std::string_view::npos,
                      program_ + ": flag '--" + spec->name +
                          "' does not take a value");
      } else if (eq != std::string_view::npos) {
        spec->value = std::string(arg.substr(eq + 1));
      } else {
        SECFLOW_CHECK(i + 1 < argc, program_ + ": option '--" + spec->name +
                                        "' needs a value");
        spec->value = argv[++i];
      }
    } else {
      SECFLOW_CHECK(next_positional < positionals_.size(),
                    program_ + ": unexpected argument '" + std::string(arg) +
                        "'");
      positionals_[next_positional++].value = std::string(arg);
    }
  }
  for (const Positional& p : positionals_) {
    SECFLOW_CHECK(!p.required || !p.value.empty(),
                  program_ + ": missing required argument <" + p.name + ">");
  }
  return true;
}

bool ArgParser::has(std::string_view name) const {
  const Spec* s = find(name);
  return s != nullptr && s->seen;
}

std::string ArgParser::get(std::string_view name, std::string fallback) const {
  const Spec* s = find(name);
  SECFLOW_CHECK(s != nullptr && !s->is_flag,
                "ArgParser: get() on undeclared option '" + std::string(name) +
                    "'");
  return s->seen ? s->value : std::move(fallback);
}

std::string ArgParser::pos(std::string_view name) const {
  for (const Positional& p : positionals_) {
    if (p.name == name) return p.value;
  }
  throw Error("ArgParser: pos() on undeclared positional '" +
              std::string(name) + "'");
}

std::string ArgParser::usage() const {
  std::string text = "usage: " + program_;
  for (const Positional& p : positionals_) {
    text += p.required ? " <" + p.name + ">" : " [" + p.name + "]";
  }
  if (!specs_.empty()) text += " [options]";
  text += "\n\n" + description_ + "\n";
  if (!positionals_.empty()) {
    text += "\narguments:\n";
    for (const Positional& p : positionals_) {
      text += "  " + p.name;
      if (p.name.size() < 22) text.append(22 - p.name.size(), ' ');
      text += "  " + p.help + "\n";
    }
  }
  text += "\noptions:\n";
  for (const Spec& s : specs_) {
    std::string lhs = "--" + s.name;
    if (!s.is_flag) lhs += " " + s.value_name;
    text += "  " + lhs;
    if (lhs.size() < 22) text.append(22 - lhs.size(), ' ');
    text += "  " + s.help + "\n";
  }
  text += "  --help                  show this message\n";
  return text;
}

}  // namespace secflow
