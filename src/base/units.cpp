#include "base/units.h"

// Header-only constants; this translation unit exists so the library has a
// stable archive member for the module and a place for future non-inline
// unit helpers.
namespace secflow {}
