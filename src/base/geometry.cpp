#include "base/geometry.h"

#include <cstdlib>
#include <ostream>

namespace secflow {

std::ostream& operator<<(std::ostream& os, const Point& p) {
  return os << '(' << p.x << ',' << p.y << ')';
}

std::ostream& operator<<(std::ostream& os, const Rect& r) {
  return os << '[' << r.lo << ' ' << r.hi << ']';
}

std::ostream& operator<<(std::ostream& os, const Segment& s) {
  return os << "M" << s.layer << ' ' << s.a << "->" << s.b << " w" << s.width;
}

std::int64_t manhattan(const Point& a, const Point& b) {
  return std::llabs(a.x - b.x) + std::llabs(a.y - b.y);
}

Rect bounding_box(const std::vector<Point>& pts) {
  if (pts.empty()) return {};
  Rect r{pts.front(), pts.front()};
  for (const Point& p : pts) {
    r.lo.x = std::min(r.lo.x, p.x);
    r.lo.y = std::min(r.lo.y, p.y);
    r.hi.x = std::max(r.hi.x, p.x);
    r.hi.y = std::max(r.hi.y, p.y);
  }
  return r;
}

std::int64_t interval_overlap(std::int64_t a1, std::int64_t a2,
                              std::int64_t b1, std::int64_t b2) {
  const std::int64_t alo = std::min(a1, a2), ahi = std::max(a1, a2);
  const std::int64_t blo = std::min(b1, b2), bhi = std::max(b1, b2);
  return std::max<std::int64_t>(0, std::min(ahi, bhi) - std::max(alo, blo));
}

std::int64_t parallel_run_length(const Segment& s, const Segment& t,
                                 std::int64_t* separation) {
  if (s.layer != t.layer) return 0;
  if (s.horizontal() && t.horizontal()) {
    const std::int64_t run = interval_overlap(s.a.x, s.b.x, t.a.x, t.b.x);
    if (run > 0 && separation) *separation = std::llabs(s.a.y - t.a.y);
    return run;
  }
  if (s.vertical() && t.vertical()) {
    const std::int64_t run = interval_overlap(s.a.y, s.b.y, t.a.y, t.b.y);
    if (run > 0 && separation) *separation = std::llabs(s.a.x - t.a.x);
    return run;
  }
  return 0;
}

}  // namespace secflow
