// Deterministic pseudo-random number generation.
//
// Experiments must be reproducible run-to-run, so all stochastic steps
// (placement annealing, plaintext generation, process variation) take an
// explicit Rng seeded by the caller.  The generator is xoshiro256**.
#pragma once

#include <cstdint>

namespace secflow {

/// xoshiro256** PRNG (Blackman & Vigna).  Deterministic across platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform integer in [0, n).  n must be > 0.
  std::uint64_t next_below(std::uint64_t n);

  /// Uniform double in [0, 1).
  double next_double();

  /// Standard normal variate (Box-Muller, uses two uniforms per pair).
  double next_gaussian();

  /// Uniform bool.
  bool next_bool() { return (next_u64() >> 63) != 0; }

  /// Fork a statistically independent child stream (for per-module seeding).
  Rng fork();

  /// Statistically independent stream #`stream` of a master seed, without
  /// consuming master state: stream i is the same generator no matter how
  /// many sibling streams exist or in which order they are created.  This
  /// is the substrate of deterministic parallelism — give task i stream i
  /// and the task's randomness is identical whether tasks run serially or
  /// on any number of threads.
  static Rng stream(std::uint64_t master_seed, std::uint64_t stream);

 private:
  std::uint64_t s_[4];
  bool have_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace secflow
