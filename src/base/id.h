// Strongly-typed integer ids for netlist/layout object references.
//
// Ids index into per-container vectors; Id<Tag> for different Tags do not
// convert to each other, which catches net-vs-instance mixups at compile
// time while keeping storage as dense arrays (the standard EDA pattern).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace secflow {

template <typename Tag>
class Id {
 public:
  constexpr Id() = default;
  constexpr explicit Id(std::int32_t v) : v_(v) {}

  constexpr bool valid() const { return v_ >= 0; }
  constexpr std::int32_t value() const { return v_; }
  constexpr std::size_t index() const { return static_cast<std::size_t>(v_); }

  friend constexpr bool operator==(Id, Id) = default;
  friend constexpr auto operator<=>(Id, Id) = default;

 private:
  std::int32_t v_ = -1;
};

}  // namespace secflow

template <typename Tag>
struct std::hash<secflow::Id<Tag>> {
  std::size_t operator()(secflow::Id<Tag> id) const noexcept {
    return std::hash<std::int32_t>{}(id.value());
  }
};
