#include "netlist/netlist.h"

#include <algorithm>
#include <deque>

#include "base/error.h"

namespace secflow {

Netlist::Netlist(std::string name, std::shared_ptr<const CellLibrary> library)
    : name_(std::move(name)), library_(std::move(library)) {
  SECFLOW_CHECK(library_ != nullptr, "netlist needs a library");
}

NetId Netlist::add_net(const std::string& name) {
  SECFLOW_CHECK(!net_by_name_.contains(name), "duplicate net: " + name);
  const NetId id(static_cast<std::int32_t>(nets_.size()));
  nets_.push_back(Net{name, {}, {}});
  net_by_name_.emplace(name, id);
  return id;
}

NetId Netlist::get_or_add_net(const std::string& name) {
  const auto it = net_by_name_.find(name);
  return it != net_by_name_.end() ? it->second : add_net(name);
}

PortId Netlist::add_port(const std::string& name, PinDir dir, NetId net) {
  SECFLOW_CHECK(!port_by_name_.contains(name), "duplicate port: " + name);
  SECFLOW_CHECK(net.valid() && net.index() < nets_.size(), "bad net id");
  const PortId id(static_cast<std::int32_t>(ports_.size()));
  ports_.push_back(Port{name, dir, net});
  nets_[net.index()].ports.push_back(id);
  port_by_name_.emplace(name, id);
  return id;
}

InstId Netlist::add_instance(const std::string& name, CellTypeId cell) {
  SECFLOW_CHECK(!inst_by_name_.contains(name), "duplicate instance: " + name);
  const CellType& type = library_->cell(cell);  // validates the id
  const InstId id(static_cast<std::int32_t>(insts_.size()));
  insts_.push_back(Instance{name, cell, std::vector<NetId>(type.pins.size())});
  inst_by_name_.emplace(name, id);
  return id;
}

void Netlist::connect(InstId inst, int pin, NetId net) {
  SECFLOW_CHECK(inst.valid() && inst.index() < insts_.size(), "bad inst id");
  SECFLOW_CHECK(net.valid() && net.index() < nets_.size(), "bad net id");
  Instance& in = insts_[inst.index()];
  SECFLOW_CHECK(pin >= 0 && pin < static_cast<int>(in.conns.size()),
                "bad pin index");
  SECFLOW_CHECK(!in.conns[static_cast<std::size_t>(pin)].valid(),
                "pin already connected: " + in.name);
  in.conns[static_cast<std::size_t>(pin)] = net;
  nets_[net.index()].pins.push_back(PinRef{inst, pin});
}

void Netlist::disconnect(InstId inst, int pin) {
  SECFLOW_CHECK(inst.valid() && inst.index() < insts_.size(), "bad inst id");
  Instance& in = insts_[inst.index()];
  SECFLOW_CHECK(pin >= 0 && pin < static_cast<int>(in.conns.size()),
                "bad pin index");
  const NetId net = in.conns[static_cast<std::size_t>(pin)];
  if (!net.valid()) return;
  in.conns[static_cast<std::size_t>(pin)] = NetId{};
  auto& pins = nets_[net.index()].pins;
  pins.erase(std::remove(pins.begin(), pins.end(), PinRef{inst, pin}),
             pins.end());
}

const Net& Netlist::net(NetId id) const {
  SECFLOW_CHECK(id.valid() && id.index() < nets_.size(), "bad net id");
  return nets_[id.index()];
}

const Instance& Netlist::instance(InstId id) const {
  SECFLOW_CHECK(id.valid() && id.index() < insts_.size(), "bad inst id");
  return insts_[id.index()];
}

const Port& Netlist::port(PortId id) const {
  SECFLOW_CHECK(id.valid() && id.index() < ports_.size(), "bad port id");
  return ports_[id.index()];
}

const CellType& Netlist::cell_of(InstId id) const {
  return library_->cell(instance(id).cell);
}

NetId Netlist::find_net(const std::string& name) const {
  const auto it = net_by_name_.find(name);
  return it == net_by_name_.end() ? NetId{} : it->second;
}

InstId Netlist::find_instance(const std::string& name) const {
  const auto it = inst_by_name_.find(name);
  return it == inst_by_name_.end() ? InstId{} : it->second;
}

PortId Netlist::find_port(const std::string& name) const {
  const auto it = port_by_name_.find(name);
  return it == port_by_name_.end() ? PortId{} : it->second;
}

std::vector<NetId> Netlist::net_ids() const {
  std::vector<NetId> out;
  out.reserve(nets_.size());
  for (std::size_t i = 0; i < nets_.size(); ++i) {
    out.emplace_back(static_cast<std::int32_t>(i));
  }
  return out;
}

std::vector<InstId> Netlist::instance_ids() const {
  std::vector<InstId> out;
  out.reserve(insts_.size());
  for (std::size_t i = 0; i < insts_.size(); ++i) {
    out.emplace_back(static_cast<std::int32_t>(i));
  }
  return out;
}

std::vector<PortId> Netlist::port_ids() const {
  std::vector<PortId> out;
  out.reserve(ports_.size());
  for (std::size_t i = 0; i < ports_.size(); ++i) {
    out.emplace_back(static_cast<std::int32_t>(i));
  }
  return out;
}

std::optional<PinRef> Netlist::driver(NetId id) const {
  for (const PinRef& p : net(id).pins) {
    const CellType& type = cell_of(p.inst);
    if (type.pins[static_cast<std::size_t>(p.pin)].dir == PinDir::kOutput) {
      return p;
    }
  }
  return std::nullopt;
}

std::optional<PortId> Netlist::driving_port(NetId id) const {
  for (PortId pid : net(id).ports) {
    if (port(pid).dir == PinDir::kInput) return pid;
  }
  return std::nullopt;
}

std::vector<PinRef> Netlist::sinks(NetId id) const {
  std::vector<PinRef> out;
  for (const PinRef& p : net(id).pins) {
    const CellType& type = cell_of(p.inst);
    if (type.pins[static_cast<std::size_t>(p.pin)].dir == PinDir::kInput) {
      out.push_back(p);
    }
  }
  return out;
}

int Netlist::fanout(NetId id) const {
  int n = static_cast<int>(sinks(id).size());
  for (PortId pid : net(id).ports) {
    if (port(pid).dir == PinDir::kOutput) ++n;
  }
  return n;
}

std::vector<InstId> Netlist::topological_order() const {
  // Kahn's algorithm over combinational edges.  Flops and ties have no
  // combinational fan-in: their outputs are sequential/constant sources.
  std::vector<int> pending(insts_.size(), 0);
  for (std::size_t i = 0; i < insts_.size(); ++i) {
    const Instance& in = insts_[i];
    const CellType& type = library_->cell(in.cell);
    if (type.kind != CellKind::kCombinational) continue;
    for (int pin : type.input_pins()) {
      const NetId net_id = in.conns[static_cast<std::size_t>(pin)];
      if (!net_id.valid()) continue;
      const auto drv = driver(net_id);
      if (!drv) continue;
      if (library_->cell(insts_[drv->inst.index()].cell).kind ==
          CellKind::kCombinational) {
        ++pending[i];
      }
    }
  }
  std::deque<InstId> ready;
  std::vector<InstId> order;
  order.reserve(insts_.size());
  // Sequential/constant sources (flops, ties) strictly precede every
  // combinational gate, regardless of instance insertion order: consumers
  // walking the order may read a source's output net from any gate.
  for (std::size_t i = 0; i < insts_.size(); ++i) {
    const CellType& type = library_->cell(insts_[i].cell);
    if (type.kind != CellKind::kCombinational) {
      ready.emplace_back(static_cast<std::int32_t>(i));
    }
  }
  for (std::size_t i = 0; i < insts_.size(); ++i) {
    const CellType& type = library_->cell(insts_[i].cell);
    if (type.kind == CellKind::kCombinational && pending[i] == 0) {
      ready.emplace_back(static_cast<std::int32_t>(i));
    }
  }
  while (!ready.empty()) {
    const InstId id = ready.front();
    ready.pop_front();
    order.push_back(id);
    const Instance& in = insts_[id.index()];
    const CellType& type = library_->cell(in.cell);
    const int out_pin = type.output_pin();
    if (out_pin < 0) continue;
    const NetId out_net = in.conns[static_cast<std::size_t>(out_pin)];
    if (!out_net.valid()) continue;
    for (const PinRef& sink : sinks(out_net)) {
      const CellType& sink_type = cell_of(sink.inst);
      if (sink_type.kind != CellKind::kCombinational) continue;
      if (library_->cell(in.cell).kind != CellKind::kCombinational) continue;
      if (--pending[sink.inst.index()] == 0) ready.push_back(sink.inst);
    }
  }
  SECFLOW_CHECK(order.size() == insts_.size(),
                "combinational cycle in netlist " + name_);
  return order;
}

std::vector<int> Netlist::levels() const {
  std::vector<int> level(insts_.size(), 0);
  for (InstId id : topological_order()) {
    const Instance& in = insts_[id.index()];
    const CellType& type = library_->cell(in.cell);
    if (type.kind != CellKind::kCombinational) continue;
    int lvl = 0;
    for (int pin : type.input_pins()) {
      const NetId net_id = in.conns[static_cast<std::size_t>(pin)];
      if (!net_id.valid()) continue;
      const auto drv = driver(net_id);
      if (!drv) continue;
      if (cell_of(drv->inst).kind == CellKind::kCombinational) {
        lvl = std::max(lvl, level[drv->inst.index()] + 1);
      }
    }
    level[id.index()] = lvl;
  }
  return level;
}

double Netlist::total_area_um2() const {
  double a = 0.0;
  for (const Instance& in : insts_) a += library_->cell(in.cell).area_um2;
  return a;
}

int Netlist::count_kind(CellKind kind) const {
  int n = 0;
  for (const Instance& in : insts_) {
    if (library_->cell(in.cell).kind == kind) ++n;
  }
  return n;
}

void Netlist::validate() const {
  for (std::size_t i = 0; i < nets_.size(); ++i) {
    const NetId id(static_cast<std::int32_t>(i));
    int drivers = 0;
    for (const PinRef& p : nets_[i].pins) {
      const CellType& type = cell_of(p.inst);
      if (type.pins[static_cast<std::size_t>(p.pin)].dir == PinDir::kOutput) {
        ++drivers;
      }
    }
    if (driving_port(id)) ++drivers;
    SECFLOW_CHECK(drivers <= 1, "multiply driven net: " + nets_[i].name);
  }
  for (const Instance& in : insts_) {
    const CellType& type = library_->cell(in.cell);
    for (int pin : type.input_pins()) {
      SECFLOW_CHECK(in.conns[static_cast<std::size_t>(pin)].valid(),
                    "floating input pin " +
                        type.pins[static_cast<std::size_t>(pin)].name +
                        " on instance " + in.name);
    }
  }
}

}  // namespace secflow
