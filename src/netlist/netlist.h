// Gate-level structural netlist.
//
// A Netlist is a flat module: ports, nets, and cell instances referencing a
// CellLibrary.  Storage is id-indexed vectors; names are unique within
// their object class.  The same data structure represents every flow
// artifact: rtl.v, the fat netlist and the differential netlist.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/id.h"
#include "netlist/cell_library.h"

namespace secflow {

struct NetTag {};
struct InstTag {};
struct PortTag {};
using NetId = Id<NetTag>;
using InstId = Id<InstTag>;
using PortId = Id<PortTag>;

/// One instance pin: (instance, pin index within the cell type).
struct PinRef {
  InstId inst;
  int pin = -1;
  friend bool operator==(const PinRef&, const PinRef&) = default;
};

struct Net {
  std::string name;
  std::vector<PinRef> pins;    ///< all instance pins on the net
  std::vector<PortId> ports;   ///< module ports attached to the net
};

struct Instance {
  std::string name;
  CellTypeId cell;
  std::vector<NetId> conns;    ///< indexed by pin index; invalid = open
};

struct Port {
  std::string name;
  PinDir dir = PinDir::kInput;
  NetId net;
};

class Netlist {
 public:
  Netlist(std::string name, std::shared_ptr<const CellLibrary> library);

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }
  const CellLibrary& library() const { return *library_; }
  const std::shared_ptr<const CellLibrary>& library_ptr() const {
    return library_;
  }

  // --- construction -------------------------------------------------------
  NetId add_net(const std::string& name);
  /// Returns the existing net of that name, or creates one.
  NetId get_or_add_net(const std::string& name);
  PortId add_port(const std::string& name, PinDir dir, NetId net);
  InstId add_instance(const std::string& name, CellTypeId cell);
  void connect(InstId inst, int pin, NetId net);
  void disconnect(InstId inst, int pin);

  // --- access -------------------------------------------------------------
  std::size_t n_nets() const { return nets_.size(); }
  std::size_t n_instances() const { return insts_.size(); }
  std::size_t n_ports() const { return ports_.size(); }
  const Net& net(NetId id) const;
  const Instance& instance(InstId id) const;
  const Port& port(PortId id) const;
  const CellType& cell_of(InstId id) const;

  NetId find_net(const std::string& name) const;
  InstId find_instance(const std::string& name) const;
  PortId find_port(const std::string& name) const;

  std::vector<NetId> net_ids() const;
  std::vector<InstId> instance_ids() const;
  std::vector<PortId> port_ids() const;

  /// The unique driving pin of a net (output pin of some instance), or
  /// nullopt if the net is driven by an input port or floating.
  std::optional<PinRef> driver(NetId id) const;
  /// The input port driving this net, if any.
  std::optional<PortId> driving_port(NetId id) const;
  /// All sink pins (input pins of instances) on a net.
  std::vector<PinRef> sinks(NetId id) const;
  /// Number of instance input pins + output ports on the net.
  int fanout(NetId id) const;

  // --- derived ------------------------------------------------------------
  /// Instances in topological order: combinational gates ordered so every
  /// gate appears after its combinational drivers.  Flops come first (their
  /// outputs are sequential sources).  Throws on a combinational cycle.
  std::vector<InstId> topological_order() const;

  /// Combinational depth (levels) of each instance, flops/ties at level 0.
  std::vector<int> levels() const;

  /// Sum of instance areas [um^2].
  double total_area_um2() const;
  /// Instance count by cell kind.
  int count_kind(CellKind kind) const;

  /// Structural checks: unique single driver per net, no floating instance
  /// input pins, function arity consistency.  Throws Error on violation.
  void validate() const;

 private:
  std::string name_;
  std::shared_ptr<const CellLibrary> library_;
  std::vector<Net> nets_;
  std::vector<Instance> insts_;
  std::vector<Port> ports_;
  std::unordered_map<std::string, NetId> net_by_name_;
  std::unordered_map<std::string, InstId> inst_by_name_;
  std::unordered_map<std::string, PortId> port_by_name_;
};

}  // namespace secflow
