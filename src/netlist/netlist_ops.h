// Convenience operations on netlists: gate construction helpers, statistics
// and a zero-delay functional evaluator used by verification and tests.
// (The timed, power-aware event simulator lives in src/sim.)
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "netlist/netlist.h"

namespace secflow {

/// Create an instance of `cell_name`, connect `inputs` to its input pins in
/// pin order and `output` to its output pin.  Returns the new instance.
InstId add_gate(Netlist& nl, const std::string& cell_name,
                const std::string& inst_name, const std::vector<NetId>& inputs,
                NetId output);

/// Create a D flip-flop instance (cell must be kFlop) with D, CK, Q nets.
InstId add_flop(Netlist& nl, const std::string& cell_name,
                const std::string& inst_name, NetId d, NetId ck, NetId q);

/// Instance count per cell-type name.
std::unordered_map<std::string, int> cell_histogram(const Netlist& nl);

/// Zero-delay functional evaluation of a (possibly sequential) netlist.
/// Combinational logic settles instantly; step_clock() models one rising
/// clock edge on all flops.  Used by equivalence checks and unit tests.
class FunctionalSim {
 public:
  explicit FunctionalSim(const Netlist& nl);

  /// Drive an input port.  propagate() must be called before reading.
  void set_input(const std::string& port_name, bool value);
  void set_input(PortId port, bool value);

  /// Settle all combinational logic from current inputs and flop states.
  void propagate();

  /// Rising clock edge: posedge flops capture D simultaneously, then
  /// combinational logic settles.  Equivalent to step_edge(true).
  void step_clock() { step_edge(true); }

  /// One clock edge: flops sensitive to this edge (rising = plain DFF,
  /// falling = negedge_clock cells) capture their D input — transformed by
  /// the flop's function, identity for a plain DFF — then logic settles.
  /// The clock's own net value (when the clock feeds gates, as in WDDL
  /// compound registers) must be updated by the caller via set_input()
  /// before calling this; capture uses pre-edge data values.
  void step_edge(bool rising);

  /// Force a flop's state (for test setup); call propagate() afterwards.
  void set_flop_state(InstId flop, bool value);

  bool net_value(NetId id) const;
  bool net_value(const std::string& name) const;
  bool output(const std::string& port_name) const;
  bool output(PortId port) const;
  bool flop_state(InstId flop) const;

 private:
  const Netlist& nl_;
  std::vector<InstId> topo_;
  std::vector<char> net_val_;
  std::vector<char> flop_state_;   // indexed by instance id; valid for flops
  std::vector<char> port_drive_;   // indexed by port id; input port values

  bool eval_instance(const Instance& in, const CellType& type) const;
};

}  // namespace secflow
