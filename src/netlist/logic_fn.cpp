#include "netlist/logic_fn.h"

#include <bit>

#include "base/error.h"

namespace secflow {

LogicFn::LogicFn(int n_inputs, std::uint64_t table) : n_inputs_(n_inputs) {
  SECFLOW_CHECK(n_inputs >= 0 && n_inputs <= kMaxInputs,
                "LogicFn supports 0..6 inputs");
  table_ = table & mask();
}

LogicFn LogicFn::constant(bool value) {
  return LogicFn(0, value ? 1u : 0u);
}

LogicFn LogicFn::identity() { return LogicFn(1, 0b10); }
LogicFn LogicFn::inverter() { return LogicFn(1, 0b01); }

LogicFn LogicFn::and_n(int n) {
  SECFLOW_CHECK(n >= 1 && n <= kMaxInputs, "and_n arity");
  const unsigned rows = 1u << n;
  return LogicFn(n, std::uint64_t{1} << (rows - 1));
}

LogicFn LogicFn::or_n(int n) {
  SECFLOW_CHECK(n >= 1 && n <= kMaxInputs, "or_n arity");
  return and_n(n).dual();
}

LogicFn LogicFn::nand_n(int n) { return and_n(n).complemented(); }
LogicFn LogicFn::nor_n(int n) { return or_n(n).complemented(); }

LogicFn LogicFn::xor_n(int n) {
  SECFLOW_CHECK(n >= 1 && n <= kMaxInputs, "xor_n arity");
  std::uint64_t t = 0;
  const unsigned rows = 1u << n;
  for (unsigned i = 0; i < rows; ++i) {
    if (std::popcount(i) & 1) t |= std::uint64_t{1} << i;
  }
  return LogicFn(n, t);
}

LogicFn LogicFn::xnor_n(int n) { return xor_n(n).complemented(); }

LogicFn LogicFn::mux2() {
  // inputs: bit0=d0, bit1=d1, bit2=sel
  std::uint64_t t = 0;
  for (unsigned i = 0; i < 8; ++i) {
    const bool d0 = i & 1, d1 = i & 2, sel = i & 4;
    if (sel ? d1 : d0) t |= std::uint64_t{1} << i;
  }
  return LogicFn(3, t);
}

bool LogicFn::eval(std::uint64_t inputs) const {
  const std::uint64_t row = inputs & ((std::uint64_t{1} << n_inputs_) - 1);
  return (table_ >> row) & 1;
}

LogicFn LogicFn::complemented() const {
  return LogicFn(n_inputs_, ~table_ & mask());
}

LogicFn LogicFn::dual() const {
  const unsigned rows = 1u << n_inputs_;
  std::uint64_t t = 0;
  for (unsigned i = 0; i < rows; ++i) {
    const std::uint64_t flipped = ~i & (rows - 1);
    if (!((table_ >> flipped) & 1)) t |= std::uint64_t{1} << i;
  }
  return LogicFn(n_inputs_, t);
}

LogicFn LogicFn::with_input_inverted(int i) const {
  SECFLOW_CHECK(i >= 0 && i < n_inputs_, "input index");
  const unsigned rows = 1u << n_inputs_;
  std::uint64_t t = 0;
  for (unsigned row = 0; row < rows; ++row) {
    const unsigned src = row ^ (1u << i);
    if ((table_ >> src) & 1) t |= std::uint64_t{1} << row;
  }
  return LogicFn(n_inputs_, t);
}

bool LogicFn::is_positive_unate() const {
  const unsigned rows = 1u << n_inputs_;
  for (int i = 0; i < n_inputs_; ++i) {
    for (unsigned row = 0; row < rows; ++row) {
      if (row & (1u << i)) continue;  // consider rows with input i == 0
      const bool lo = (table_ >> row) & 1;
      const bool hi = (table_ >> (row | (1u << i))) & 1;
      if (lo && !hi) return false;
    }
  }
  return true;
}

bool LogicFn::depends_on(int i) const {
  SECFLOW_CHECK(i >= 0 && i < n_inputs_, "input index");
  const unsigned rows = 1u << n_inputs_;
  for (unsigned row = 0; row < rows; ++row) {
    if (row & (1u << i)) continue;
    if (((table_ >> row) & 1) != ((table_ >> (row | (1u << i))) & 1)) {
      return true;
    }
  }
  return false;
}

int LogicFn::onset_size() const { return std::popcount(table_ & mask()); }

std::string LogicFn::to_sop_string(
    const std::vector<std::string>& input_names) const {
  SECFLOW_CHECK(static_cast<int>(input_names.size()) >= n_inputs_,
                "input_names too short");
  if (table_ == 0) return "0";
  if ((table_ & mask()) == mask()) return "1";
  std::string out;
  const unsigned rows = 1u << n_inputs_;
  for (unsigned row = 0; row < rows; ++row) {
    if (!((table_ >> row) & 1)) continue;
    if (!out.empty()) out += " | ";
    for (int i = 0; i < n_inputs_; ++i) {
      if (i) out += "&";
      if (!(row & (1u << i))) out += "!";
      out += input_names[static_cast<std::size_t>(i)];
    }
  }
  return out;
}

}  // namespace secflow
