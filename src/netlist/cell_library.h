// Standard-cell library model.
//
// A CellType describes one library cell: pins, logic function, area,
// physical footprint, and first-order electrical data (pin capacitance,
// drive resistance) sufficient for the switched-capacitance power model and
// linear delay model used throughout the flow.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/id.h"
#include "netlist/logic_fn.h"

namespace secflow {

struct CellTypeTag {};
using CellTypeId = Id<CellTypeTag>;

enum class PinDir { kInput, kOutput };

enum class CellKind {
  kCombinational,  ///< output = LogicFn(inputs)
  kFlop,           ///< rising-edge D flip-flop (pins D, CK, Q)
  kTie,            ///< constant driver (TIE0 / TIE1)
};

struct PinDef {
  std::string name;
  PinDir dir = PinDir::kInput;
  double cap_ff = 0.0;  ///< input pin capacitance; 0 for outputs
};

struct CellType {
  std::string name;
  CellKind kind = CellKind::kCombinational;
  std::vector<PinDef> pins;
  /// Function of the single output in terms of the *input pins in pin
  /// order* (skipping output pins).  For kFlop this is the D->Q identity;
  /// for kTie the constant.
  LogicFn function;
  double area_um2 = 0.0;
  /// Footprint for placement/LEF; height is uniform per library (row height).
  double width_um = 0.0;
  double height_um = 0.0;
  /// Linear delay model: d = intrinsic_ps + drive_res_kohm * C_load_ff.
  double intrinsic_delay_ps = 0.0;
  double drive_res_kohm = 0.0;
  /// Internal switched capacitance booked per output transition (models the
  /// cell's internal node charge; part of the data-independent floor).
  double internal_cap_ff = 0.0;
  /// kFlop only: captures on the falling clock edge instead of the rising
  /// one (used by the WDDL master latch).
  bool negedge_clock = false;

  int n_inputs() const;
  int output_pin() const;            ///< pin index of the (single) output
  std::vector<int> input_pins() const;
  int pin_index(const std::string& pin_name) const;  ///< -1 if absent
  /// For kFlop: indices of the D and CK pins.
  int d_pin() const;
  int ck_pin() const;
};

/// An immutable collection of cell types with name lookup.
class CellLibrary {
 public:
  explicit CellLibrary(std::string name = "lib") : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  CellTypeId add(CellType cell);

  std::size_t size() const { return cells_.size(); }
  const CellType& cell(CellTypeId id) const;
  CellTypeId find(const std::string& name) const;  ///< invalid id if absent
  const CellType& cell(const std::string& name) const;  ///< throws if absent
  bool contains(const std::string& name) const { return find(name).valid(); }

  /// All ids, in insertion order.
  std::vector<CellTypeId> all() const;

  /// Verify internal consistency (single output, function arity matches
  /// input count, flop pin roles present).  Throws Error on violation.
  void validate() const;

 private:
  std::string name_;
  std::vector<CellType> cells_;
  std::unordered_map<std::string, CellTypeId> by_name_;
};

}  // namespace secflow
