// Boolean functions of up to kMaxInputs variables, stored as truth tables.
//
// A LogicFn with n inputs stores its truth table in the low 2^n bits of a
// 64-bit word: bit i is the output for the input assignment whose j-th bit
// is ((i >> j) & 1).  Input 0 is the least significant selector.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace secflow {

class LogicFn {
 public:
  static constexpr int kMaxInputs = 6;

  LogicFn() = default;
  /// Build from an explicit truth table; bits above 2^n are ignored.
  LogicFn(int n_inputs, std::uint64_t table);

  static LogicFn constant(bool value);
  static LogicFn identity();                    ///< buffer, 1 input
  static LogicFn inverter();                    ///< NOT, 1 input
  static LogicFn and_n(int n);
  static LogicFn or_n(int n);
  static LogicFn nand_n(int n);
  static LogicFn nor_n(int n);
  static LogicFn xor_n(int n);
  static LogicFn xnor_n(int n);
  /// 2:1 mux: inputs (d0, d1, sel); output = sel ? d1 : d0.
  static LogicFn mux2();

  int n_inputs() const { return n_inputs_; }
  std::uint64_t table() const { return table_; }

  /// Evaluate for the input assignment packed into the low bits of `inputs`.
  bool eval(std::uint64_t inputs) const;

  /// Complemented function.
  LogicFn complemented() const;
  /// Dual function: f_dual(x) = !f(!x).  WDDL false-rail gates compute the
  /// dual of the true-rail function.
  LogicFn dual() const;
  /// Function with input `i` complemented.
  LogicFn with_input_inverted(int i) const;

  /// True if the function never decreases when any input goes 0 -> 1.
  /// Positive-monotone functions are exactly those a WDDL compound may use
  /// internally (the precharge wave then propagates: all-0 in => 0 out).
  bool is_positive_unate() const;

  /// True if input i affects the output for some assignment of the others.
  bool depends_on(int i) const;

  /// Number of minterms (input assignments with output 1).
  int onset_size() const;

  /// Canonical text like "A&B|!C" reconstructed as sum-of-products (for
  /// diagnostics only; not parsed back).
  std::string to_sop_string(const std::vector<std::string>& input_names) const;

  friend bool operator==(const LogicFn&, const LogicFn&) = default;

 private:
  int n_inputs_ = 0;
  std::uint64_t table_ = 0;

  std::uint64_t mask() const {
    return n_inputs_ >= 6 ? ~std::uint64_t{0}
                          : ((std::uint64_t{1} << (1u << n_inputs_)) - 1);
  }
};

}  // namespace secflow
