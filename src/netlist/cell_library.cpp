#include "netlist/cell_library.h"

#include "base/error.h"

namespace secflow {

int CellType::n_inputs() const {
  int n = 0;
  for (const PinDef& p : pins) {
    if (p.dir == PinDir::kInput) ++n;
  }
  return n;
}

int CellType::output_pin() const {
  for (std::size_t i = 0; i < pins.size(); ++i) {
    if (pins[i].dir == PinDir::kOutput) return static_cast<int>(i);
  }
  return -1;
}

std::vector<int> CellType::input_pins() const {
  std::vector<int> out;
  for (std::size_t i = 0; i < pins.size(); ++i) {
    if (pins[i].dir == PinDir::kInput) out.push_back(static_cast<int>(i));
  }
  return out;
}

int CellType::pin_index(const std::string& pin_name) const {
  for (std::size_t i = 0; i < pins.size(); ++i) {
    if (pins[i].name == pin_name) return static_cast<int>(i);
  }
  return -1;
}

int CellType::d_pin() const { return pin_index("D"); }
int CellType::ck_pin() const { return pin_index("CK"); }

CellTypeId CellLibrary::add(CellType cell) {
  SECFLOW_CHECK(!by_name_.contains(cell.name),
                "duplicate cell type: " + cell.name);
  const CellTypeId id(static_cast<std::int32_t>(cells_.size()));
  by_name_.emplace(cell.name, id);
  cells_.push_back(std::move(cell));
  return id;
}

const CellType& CellLibrary::cell(CellTypeId id) const {
  SECFLOW_CHECK(id.valid() && id.index() < cells_.size(), "bad CellTypeId");
  return cells_[id.index()];
}

CellTypeId CellLibrary::find(const std::string& name) const {
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? CellTypeId{} : it->second;
}

const CellType& CellLibrary::cell(const std::string& name) const {
  const CellTypeId id = find(name);
  SECFLOW_CHECK(id.valid(), "unknown cell type: " + name);
  return cells_[id.index()];
}

std::vector<CellTypeId> CellLibrary::all() const {
  std::vector<CellTypeId> out;
  out.reserve(cells_.size());
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    out.emplace_back(static_cast<std::int32_t>(i));
  }
  return out;
}

void CellLibrary::validate() const {
  for (const CellType& c : cells_) {
    int n_out = 0;
    for (const PinDef& p : c.pins) {
      if (p.dir == PinDir::kOutput) ++n_out;
    }
    SECFLOW_CHECK(n_out == 1, "cell " + c.name + " must have exactly 1 output");
    switch (c.kind) {
      case CellKind::kCombinational:
        SECFLOW_CHECK(c.function.n_inputs() == c.n_inputs(),
                      "cell " + c.name + " function arity mismatch");
        break;
      case CellKind::kFlop:
        SECFLOW_CHECK(c.d_pin() >= 0 && c.ck_pin() >= 0,
                      "flop " + c.name + " needs D and CK pins");
        break;
      case CellKind::kTie:
        SECFLOW_CHECK(c.n_inputs() == 0, "tie " + c.name + " takes no inputs");
        break;
    }
    SECFLOW_CHECK(c.area_um2 > 0.0, "cell " + c.name + " has no area");
    SECFLOW_CHECK(c.width_um > 0.0 && c.height_um > 0.0,
                  "cell " + c.name + " has no footprint");
  }
}

}  // namespace secflow
