// Parser for the scalar structural-Verilog subset used by the flow.
//
// Grammar (comments // and /* */ allowed anywhere):
//   module NAME ( port {, port} ) ;
//   { input NAME ; | output NAME ; | wire NAME ; | CELL INST ( conns ) ; }
//   endmodule
// conns are named only: .PIN(NET) {, .PIN(NET)}.
//
// All referenced cells must exist in the provided library.  Undeclared
// nets appearing in connections are created implicitly (matching common
// netlist-tool behaviour); ports must be declared.
#pragma once

#include <memory>
#include <string>

#include "netlist/netlist.h"

namespace secflow {

/// Parse structural Verilog text into a Netlist.  Throws ParseError.
Netlist parse_verilog(const std::string& text,
                      std::shared_ptr<const CellLibrary> library);

/// Parse a file; throws Error/ParseError.
Netlist parse_verilog_file(const std::string& path,
                           std::shared_ptr<const CellLibrary> library);

}  // namespace secflow
