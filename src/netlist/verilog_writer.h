// Structural-Verilog writer for flow artifacts (rtl.v, fat.v, diff.v).
//
// Output is the scalar structural subset accepted by verilog_parser.h:
// module header with port list, input/output/wire declarations, and cell
// instances with named port connections.
#pragma once

#include <string>

#include "netlist/netlist.h"

namespace secflow {

/// Render `nl` as structural Verilog text.
std::string write_verilog(const Netlist& nl);

/// Write to a file; throws Error on I/O failure.
void write_verilog_file(const Netlist& nl, const std::string& path);

}  // namespace secflow
