#include "netlist/netlist_ops.h"

#include "base/error.h"

namespace secflow {

InstId add_gate(Netlist& nl, const std::string& cell_name,
                const std::string& inst_name, const std::vector<NetId>& inputs,
                NetId output) {
  const CellTypeId cell = nl.library().find(cell_name);
  SECFLOW_CHECK(cell.valid(), "unknown cell: " + cell_name);
  const CellType& type = nl.library().cell(cell);
  const std::vector<int> in_pins = type.input_pins();
  SECFLOW_CHECK(in_pins.size() == inputs.size(),
                "gate " + cell_name + " input count mismatch");
  const InstId inst = nl.add_instance(inst_name, cell);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    nl.connect(inst, in_pins[i], inputs[i]);
  }
  if (type.output_pin() >= 0 && output.valid()) {
    nl.connect(inst, type.output_pin(), output);
  }
  return inst;
}

InstId add_flop(Netlist& nl, const std::string& cell_name,
                const std::string& inst_name, NetId d, NetId ck, NetId q) {
  const CellTypeId cell = nl.library().find(cell_name);
  SECFLOW_CHECK(cell.valid(), "unknown cell: " + cell_name);
  const CellType& type = nl.library().cell(cell);
  SECFLOW_CHECK(type.kind == CellKind::kFlop, cell_name + " is not a flop");
  const InstId inst = nl.add_instance(inst_name, cell);
  nl.connect(inst, type.d_pin(), d);
  nl.connect(inst, type.ck_pin(), ck);
  nl.connect(inst, type.output_pin(), q);
  return inst;
}

std::unordered_map<std::string, int> cell_histogram(const Netlist& nl) {
  std::unordered_map<std::string, int> hist;
  for (InstId id : nl.instance_ids()) {
    ++hist[nl.cell_of(id).name];
  }
  return hist;
}

FunctionalSim::FunctionalSim(const Netlist& nl)
    : nl_(nl),
      topo_(nl.topological_order()),
      net_val_(nl.n_nets(), 0),
      flop_state_(nl.n_instances(), 0),
      port_drive_(nl.n_ports(), 0) {}

void FunctionalSim::set_input(const std::string& port_name, bool value) {
  const PortId pid = nl_.find_port(port_name);
  SECFLOW_CHECK(pid.valid(), "unknown port: " + port_name);
  set_input(pid, value);
}

void FunctionalSim::set_input(PortId pid, bool value) {
  SECFLOW_CHECK(nl_.port(pid).dir == PinDir::kInput,
                "not an input port: " + nl_.port(pid).name);
  port_drive_[pid.index()] = value ? 1 : 0;
}

bool FunctionalSim::eval_instance(const Instance& in,
                                  const CellType& type) const {
  std::uint64_t bits = 0;
  int k = 0;
  for (int pin : type.input_pins()) {
    const NetId net = in.conns[static_cast<std::size_t>(pin)];
    SECFLOW_CHECK(net.valid(), "floating input during simulation: " + in.name);
    if (net_val_[net.index()]) bits |= std::uint64_t{1} << k;
    ++k;
  }
  return type.function.eval(bits);
}

void FunctionalSim::propagate() {
  // Input ports drive their nets.
  for (PortId pid : nl_.port_ids()) {
    const Port& p = nl_.port(pid);
    if (p.dir == PinDir::kInput) {
      net_val_[p.net.index()] = port_drive_[pid.index()];
    }
  }
  // Flop outputs and ties drive first, then combinational gates settle in
  // one topological pass.  (The topological order guarantees gate-to-gate
  // dependencies; sequential sources must be driven before any gate runs.)
  for (InstId id : topo_) {
    const Instance& in = nl_.instance(id);
    const CellType& type = nl_.library().cell(in.cell);
    if (type.kind == CellKind::kCombinational) continue;
    const int out_pin = type.output_pin();
    if (out_pin < 0) continue;
    const NetId out = in.conns[static_cast<std::size_t>(out_pin)];
    if (!out.valid()) continue;
    net_val_[out.index()] = type.kind == CellKind::kFlop
                                ? flop_state_[id.index()]
                                : (type.function.eval(0) ? 1 : 0);
  }
  for (InstId id : topo_) {
    const Instance& in = nl_.instance(id);
    const CellType& type = nl_.library().cell(in.cell);
    if (type.kind != CellKind::kCombinational) continue;
    const int out_pin = type.output_pin();
    if (out_pin < 0) continue;
    const NetId out = in.conns[static_cast<std::size_t>(out_pin)];
    if (!out.valid()) continue;
    net_val_[out.index()] = eval_instance(in, type) ? 1 : 0;
  }
}

void FunctionalSim::step_edge(bool rising) {
  // Capture all matching D inputs simultaneously from the settled values...
  std::vector<char> next(flop_state_);
  for (InstId id : nl_.instance_ids()) {
    const Instance& in = nl_.instance(id);
    const CellType& type = nl_.library().cell(in.cell);
    if (type.kind != CellKind::kFlop) continue;
    if (type.negedge_clock == rising) continue;
    const NetId d = in.conns[static_cast<std::size_t>(type.d_pin())];
    SECFLOW_CHECK(d.valid(), "flop with floating D: " + in.name);
    // Apply the flop's input function (identity for DFF; an inverting
    // variant models WDDL's rail-swapped register input).
    next[id.index()] =
        type.function.eval(net_val_[d.index()] ? 1 : 0) ? 1 : 0;
  }
  flop_state_ = std::move(next);
  // ...then settle the new half-cycle.
  propagate();
}

void FunctionalSim::set_flop_state(InstId flop, bool value) {
  SECFLOW_CHECK(nl_.cell_of(flop).kind == CellKind::kFlop,
                "not a flop: " + nl_.instance(flop).name);
  flop_state_[flop.index()] = value ? 1 : 0;
}

bool FunctionalSim::net_value(NetId id) const {
  SECFLOW_CHECK(id.valid() && id.index() < net_val_.size(), "bad net id");
  return net_val_[id.index()] != 0;
}

bool FunctionalSim::net_value(const std::string& name) const {
  const NetId id = nl_.find_net(name);
  SECFLOW_CHECK(id.valid(), "unknown net: " + name);
  return net_value(id);
}

bool FunctionalSim::output(const std::string& port_name) const {
  const PortId pid = nl_.find_port(port_name);
  SECFLOW_CHECK(pid.valid(), "unknown port: " + port_name);
  return output(pid);
}

bool FunctionalSim::output(PortId pid) const {
  return net_value(nl_.port(pid).net);
}

bool FunctionalSim::flop_state(InstId flop) const {
  return flop_state_[flop.index()] != 0;
}

}  // namespace secflow
