#include "netlist/verilog_parser.h"

#include <cctype>
#include <fstream>
#include <sstream>

#include "base/error.h"
#include "base/strings.h"

namespace secflow {
namespace {

struct Token {
  enum Kind { kIdent, kPunct, kEnd } kind = kEnd;
  std::string text;
  int line = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  Token next() {
    skip_ws_and_comments();
    if (pos_ >= text_.size()) return Token{Token::kEnd, "", line_};
    const char c = text_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '\\') {
      return lex_ident();
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      // Allow numeric-literal-ish tokens (e.g. 1'b0) as identifiers so
      // callers can reject them with a useful message.
      return lex_ident();
    }
    ++pos_;
    return Token{Token::kPunct, std::string(1, c), line_};
  }

 private:
  void skip_ws_and_comments() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '/' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '/') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else if (c == '/' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '*') {
        pos_ += 2;
        while (pos_ + 1 < text_.size() &&
               !(text_[pos_] == '*' && text_[pos_ + 1] == '/')) {
          if (text_[pos_] == '\n') ++line_;
          ++pos_;
        }
        pos_ = std::min(pos_ + 2, text_.size());
      } else {
        break;
      }
    }
  }

  Token lex_ident() {
    const int line = line_;
    std::string s;
    if (text_[pos_] == '\\') {
      // Escaped identifier: up to whitespace.
      ++pos_;
      while (pos_ < text_.size() &&
             !std::isspace(static_cast<unsigned char>(text_[pos_]))) {
        s += text_[pos_++];
      }
      return Token{Token::kIdent, s, line};
    }
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '$' || c == '\'') {
        s += c;
        ++pos_;
      } else {
        break;
      }
    }
    return Token{Token::kIdent, s, line};
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

class Parser {
 public:
  Parser(const std::string& text, std::shared_ptr<const CellLibrary> library)
      : lexer_(text), library_(std::move(library)) {
    advance();
  }

  Netlist parse() {
    expect_ident("module");
    const std::string mod_name = expect_any_ident("module name");
    Netlist nl(mod_name, library_);
    expect_punct("(");
    std::vector<std::string> port_order;
    if (!at_punct(")")) {
      for (;;) {
        port_order.push_back(expect_any_ident("port name"));
        if (at_punct(")")) break;
        expect_punct(",");
      }
    }
    expect_punct(")");
    expect_punct(";");

    while (!at_ident("endmodule")) {
      if (cur_.kind == Token::kEnd) fail("unexpected end of file");
      const std::string head = expect_any_ident("statement");
      if (head == "input" || head == "output") {
        const PinDir dir =
            head == "input" ? PinDir::kInput : PinDir::kOutput;
        for (;;) {
          const std::string name = expect_any_ident("port name");
          const NetId net = nl.get_or_add_net(name);
          nl.add_port(name, dir, net);
          if (at_punct(";")) break;
          expect_punct(",");
        }
        expect_punct(";");
      } else if (head == "wire") {
        for (;;) {
          const std::string name = expect_any_ident("wire name");
          nl.get_or_add_net(name);
          if (at_punct(";")) break;
          expect_punct(",");
        }
        expect_punct(";");
      } else {
        parse_instance(nl, head);
      }
    }
    expect_ident("endmodule");
    // Every port named in the header must have been declared.
    for (const std::string& p : port_order) {
      if (!nl.find_port(p).valid()) {
        fail("port " + p + " named in header but never declared");
      }
    }
    return nl;
  }

 private:
  void parse_instance(Netlist& nl, const std::string& cell_name) {
    const CellTypeId cell = library_->find(cell_name);
    if (!cell.valid()) fail("unknown cell type: " + cell_name);
    const CellType& type = library_->cell(cell);
    const std::string inst_name = expect_any_ident("instance name");
    const InstId inst = nl.add_instance(inst_name, cell);
    expect_punct("(");
    if (!at_punct(")")) {
      for (;;) {
        expect_punct(".");
        const std::string pin_name = expect_any_ident("pin name");
        const int pin = type.pin_index(pin_name);
        if (pin < 0) {
          fail("cell " + cell_name + " has no pin " + pin_name);
        }
        expect_punct("(");
        const std::string net_name = expect_any_ident("net name");
        expect_punct(")");
        nl.connect(inst, pin, nl.get_or_add_net(net_name));
        if (at_punct(")")) break;
        expect_punct(",");
      }
    }
    expect_punct(")");
    expect_punct(";");
  }

  void advance() { cur_ = lexer_.next(); }

  [[noreturn]] void fail(const std::string& msg) {
    throw ParseError("verilog line " + std::to_string(cur_.line), msg);
  }

  bool at_punct(const std::string& p) const {
    return cur_.kind == Token::kPunct && cur_.text == p;
  }
  bool at_ident(const std::string& s) const {
    return cur_.kind == Token::kIdent && cur_.text == s;
  }
  void expect_punct(const std::string& p) {
    if (!at_punct(p)) fail("expected '" + p + "', got '" + cur_.text + "'");
    advance();
  }
  void expect_ident(const std::string& s) {
    if (!at_ident(s)) fail("expected '" + s + "', got '" + cur_.text + "'");
    advance();
  }
  std::string expect_any_ident(const std::string& what) {
    if (cur_.kind != Token::kIdent) {
      fail("expected " + what + ", got '" + cur_.text + "'");
    }
    std::string s = cur_.text;
    advance();
    return s;
  }

  Lexer lexer_;
  Token cur_;
  std::shared_ptr<const CellLibrary> library_;
};

}  // namespace

Netlist parse_verilog(const std::string& text,
                      std::shared_ptr<const CellLibrary> library) {
  SECFLOW_CHECK(library != nullptr, "parse_verilog needs a library");
  return Parser(text, std::move(library)).parse();
}

Netlist parse_verilog_file(const std::string& path,
                           std::shared_ptr<const CellLibrary> library) {
  std::ifstream f(path);
  SECFLOW_CHECK(f.good(), "cannot open: " + path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return parse_verilog(ss.str(), std::move(library));
}

}  // namespace secflow
