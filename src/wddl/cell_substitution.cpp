#include "wddl/cell_substitution.h"

#include <functional>

#include "base/error.h"
#include "netlist/netlist_ops.h"

namespace secflow {

std::string rail_name(const std::string& net, bool false_rail) {
  return net + (false_rail ? "_f" : "_t");
}

namespace {

/// (root net, accumulated inversion parity) for a net whose driver may be a
/// chain of inverters/buffers.
struct RootRef {
  NetId root;
  bool inverted = false;
};

class Substituter {
 public:
  Substituter(const Netlist& rtl, WddlLibrary& wlib)
      : rtl_(rtl), wlib_(wlib) {}

  SubstitutionResult run() {
    rtl_.validate();
    find_clock();
    resolve_roots();

    Netlist fat(rtl_.name(), wlib_.fat_library());
    fat_ = &fat;

    // Nets: every root net and every output-port net exists in the fat
    // netlist under its original name.
    for (NetId id : rtl_.net_ids()) {
      if (is_root_[id.index()]) fat.add_net(rtl_.net(id).name);
    }

    // Ports.
    for (PortId pid : rtl_.port_ids()) {
      const Port& p = rtl_.port(pid);
      if (p.dir == PinDir::kInput) {
        fat.add_port(p.name, PinDir::kInput, fat.find_net(rtl_.net(p.net).name));
        continue;
      }
      const RootRef r = root_of(p.net);
      NetId pnet = fat.find_net(rtl_.net(p.net).name);
      if (!pnet.valid()) pnet = fat.add_net(rtl_.net(p.net).name);
      if (p.net != r.root || r.inverted) {
        // Materialize the absorbed inversion/buffering at the boundary.
        const WddlCompound& buf = wlib_.comb_compound(
            r.inverted ? LogicFn::inverter() : LogicFn::identity());
        const InstId bi =
            fat.add_instance("pbuf_" + p.name, buf.fat_cell);
        fat.connect(bi, 0, fat.find_net(rtl_.net(r.root).name));
        fat.connect(bi, 1, pnet);
        ++stats_.port_buffers_added;
      }
      fat.add_port(p.name, PinDir::kOutput, pnet);
    }

    // Instances.
    for (InstId iid : rtl_.instance_ids()) {
      const Instance& in = rtl_.instance(iid);
      const CellType& type = rtl_.cell_of(iid);
      switch (type.kind) {
        case CellKind::kCombinational: {
          if (type.function == LogicFn::inverter()) {
            ++stats_.inverters_removed;
            continue;
          }
          if (type.function == LogicFn::identity()) {
            ++stats_.buffers_removed;
            continue;
          }
          substitute_gate(fat, iid, in, type);
          ++stats_.gates_substituted;
          break;
        }
        case CellKind::kFlop: {
          substitute_flop(fat, iid, in, type);
          ++stats_.flops_substituted;
          break;
        }
        case CellKind::kTie: {
          const WddlCompound& c = wlib_.tie_compound(type.function.eval(0));
          const InstId fi = fat.add_instance(in.name, c.fat_cell);
          fat.connect(fi, 0, fat_net(in.conns[0]));
          ++stats_.ties_substituted;
          break;
        }
      }
    }

    fat.validate();
    return SubstitutionResult{std::move(fat), stats_};
  }

 private:
  void find_clock() {
    for (InstId iid : rtl_.instance_ids()) {
      const CellType& type = rtl_.cell_of(iid);
      if (type.kind != CellKind::kFlop) continue;
      const NetId ck = rtl_.instance(iid).conns[
          static_cast<std::size_t>(type.ck_pin())];
      SECFLOW_CHECK(ck.valid(), "flop without clock");
      SECFLOW_CHECK(!clock_.valid() || clock_ == ck,
                    "multiple clock nets in " + rtl_.name());
      clock_ = ck;
    }
    if (clock_.valid()) {
      // The clock must not feed data pins: WDDL keeps it single-ended.
      for (const PinRef& p : rtl_.net(clock_).pins) {
        const CellType& type = rtl_.cell_of(p.inst);
        SECFLOW_CHECK(type.kind == CellKind::kFlop && p.pin == type.ck_pin(),
                      "clock net drives data logic; unsupported in WDDL");
      }
    }
  }

  void resolve_roots() {
    is_root_.assign(rtl_.n_nets(), false);
    roots_.assign(rtl_.n_nets(), RootRef{});
    for (NetId id : rtl_.net_ids()) {
      const auto drv = rtl_.driver(id);
      bool root = true;
      if (drv) {
        const CellType& type = rtl_.cell_of(drv->inst);
        if (type.kind == CellKind::kCombinational &&
            (type.function == LogicFn::inverter() ||
             type.function == LogicFn::identity())) {
          root = false;
        }
      }
      is_root_[id.index()] = root;
    }
  }

  RootRef root_of(NetId id) {
    if (is_root_[id.index()]) return RootRef{id, false};
    if (roots_[id.index()].root.valid()) return roots_[id.index()];
    const auto drv = rtl_.driver(id);
    SECFLOW_CHECK(drv.has_value(), "undriven non-root net");
    const Instance& in = rtl_.instance(drv->inst);
    const CellType& type = rtl_.cell_of(drv->inst);
    const NetId src = in.conns[static_cast<std::size_t>(type.input_pins()[0])];
    RootRef r = root_of(src);
    if (type.function == LogicFn::inverter()) r.inverted = !r.inverted;
    roots_[id.index()] = r;
    return r;
  }

  NetId fat_net(NetId rtl_net) {
    // Valid only for root nets (callers resolve first).
    return fat_net_by_name(rtl_.net(rtl_net).name);
  }

  NetId fat_net_by_name(const std::string& name) {
    const NetId id = fat_->find_net(name);
    SECFLOW_CHECK(id.valid(), "internal: fat net missing: " + name);
    return id;
  }

  void substitute_gate(Netlist& fat, InstId /*iid*/, const Instance& in,
                       const CellType& type) {
    fat_ = &fat;
    unsigned mask = 0;
    std::vector<NetId> fat_inputs;
    int bit = 0;
    for (int pin : type.input_pins()) {
      const RootRef r = root_of(in.conns[static_cast<std::size_t>(pin)]);
      SECFLOW_CHECK(r.root != clock_, "clock reaches a data input");
      if (r.inverted) mask |= 1u << bit;
      fat_inputs.push_back(fat.find_net(rtl_.net(r.root).name));
      ++bit;
    }
    const WddlCompound& c = wlib_.compound_for_cell(type, mask);
    const InstId fi = fat.add_instance(in.name, c.fat_cell);
    const CellType& fat_cell = fat.library().cell(c.fat_cell);
    const auto in_pins = fat_cell.input_pins();
    for (std::size_t i = 0; i < fat_inputs.size(); ++i) {
      fat.connect(fi, in_pins[i], fat_inputs[i]);
    }
    const NetId out =
        in.conns[static_cast<std::size_t>(type.output_pin())];
    if (out.valid()) fat.connect(fi, fat_cell.output_pin(), fat_net(out));
  }

  void substitute_flop(Netlist& fat, InstId /*iid*/, const Instance& in,
                       const CellType& type) {
    fat_ = &fat;
    const RootRef d = root_of(in.conns[static_cast<std::size_t>(type.d_pin())]);
    SECFLOW_CHECK(d.root != clock_, "clock reaches a data input");
    const WddlCompound& c = wlib_.flop_compound(d.inverted);
    const InstId fi = fat.add_instance(in.name, c.fat_cell);
    const CellType& fat_cell = fat.library().cell(c.fat_cell);
    fat.connect(fi, fat_cell.pin_index("D"),
                fat.find_net(rtl_.net(d.root).name));
    fat.connect(fi, fat_cell.pin_index("CK"),
                fat.find_net(rtl_.net(clock_).name));
    const NetId q = in.conns[static_cast<std::size_t>(type.output_pin())];
    if (q.valid()) fat.connect(fi, fat_cell.pin_index("Q"), fat_net(q));
  }

  const Netlist& rtl_;
  WddlLibrary& wlib_;
  Netlist* fat_ = nullptr;
  NetId clock_;
  std::vector<bool> is_root_;
  std::vector<RootRef> roots_;
  SubstitutionStats stats_;
};

// --- differential expansion --------------------------------------------------

class Expander {
 public:
  Expander(const Netlist& fat, const WddlLibrary& wlib)
      : fat_(fat), wlib_(wlib) {}

  Netlist run() {
    Netlist diff(fat_.name() + "_diff", wlib_.base_library());
    diff_ = &diff;
    find_clock();

    // Rails for every data net; the clock stays single.
    for (NetId id : fat_.net_ids()) {
      const std::string& name = fat_.net(id).name;
      if (id == clock_) {
        diff.add_net(name);
      } else {
        diff.add_net(rail_name(name, false));
        diff.add_net(rail_name(name, true));
      }
    }
    const bool needs_clock = clock_.valid() || design_has_ties();
    if (!clock_.valid() && needs_clock) {
      clock_name_ = "clk";
      diff.add_net(clock_name_);
      diff.add_port(clock_name_, PinDir::kInput, diff.find_net(clock_name_));
    }

    // Ports.
    for (PortId pid : fat_.port_ids()) {
      const Port& p = fat_.port(pid);
      if (p.net == clock_) {
        diff.add_port(p.name, p.dir, diff.find_net(fat_.net(p.net).name));
        continue;
      }
      const std::string& net = fat_.net(p.net).name;
      diff.add_port(rail_name(p.name, false), p.dir,
                    diff.find_net(rail_name(net, false)));
      diff.add_port(rail_name(p.name, true), p.dir,
                    diff.find_net(rail_name(net, true)));
    }

    for (InstId iid : fat_.instance_ids()) expand_instance(iid);

    diff.validate();
    return diff;
  }

 private:
  void find_clock() {
    for (InstId iid : fat_.instance_ids()) {
      const CellType& type = fat_.cell_of(iid);
      if (type.kind != CellKind::kFlop) continue;
      const NetId ck =
          fat_.instance(iid).conns[static_cast<std::size_t>(type.ck_pin())];
      clock_ = ck;
      clock_name_ = fat_.net(ck).name;
      return;
    }
  }

  bool design_has_ties() const {
    for (InstId iid : fat_.instance_ids()) {
      if (fat_.cell_of(iid).kind == CellKind::kTie) return true;
    }
    return false;
  }

  NetId clock_net() {
    const NetId id = diff_->find_net(clock_name_);
    SECFLOW_CHECK(id.valid(), "internal: no clock in differential netlist");
    return id;
  }

  NetId rail(NetId fat_net, bool false_rail) {
    return diff_->find_net(rail_name(fat_.net(fat_net).name, false_rail));
  }

  void expand_instance(InstId iid) {
    const Instance& in = fat_.instance(iid);
    const WddlCompound& c = wlib_.compound_of(in.cell);
    const CellType& fat_cell = fat_.library().cell(in.cell);
    switch (c.kind) {
      case WddlKind::kComb: {
        std::vector<NetId> t_rails, f_rails;
        for (int pin : fat_cell.input_pins()) {
          const NetId net = in.conns[static_cast<std::size_t>(pin)];
          t_rails.push_back(rail(net, false));
          f_rails.push_back(rail(net, true));
        }
        const NetId out =
            in.conns[static_cast<std::size_t>(fat_cell.output_pin())];
        emit_sop(c.true_sop, t_rails, f_rails, rail(out, false),
                 in.name + "_T");
        emit_sop(c.false_sop, t_rails, f_rails, rail(out, true),
                 in.name + "_F");
        break;
      }
      case WddlKind::kFlop: {
        const NetId d = in.conns[static_cast<std::size_t>(
            fat_cell.pin_index("D"))];
        const NetId q = in.conns[static_cast<std::size_t>(
            fat_cell.pin_index("Q"))];
        const bool swap = c.function == LogicFn::inverter();
        expand_flop_rail(in.name + "_t", rail(d, swap), rail(q, false));
        expand_flop_rail(in.name + "_f", rail(d, !swap), rail(q, true));
        break;
      }
      case WddlKind::kTie: {
        const NetId y = in.conns[static_cast<std::size_t>(
            fat_cell.output_pin())];
        const bool one = c.function.eval(0);
        // Active rail follows the evaluate window (buffered clock); the
        // inactive rail is a hard 0.
        add_gate(*diff_, "BUF", in.name + "_w", {clock_net()}, rail(y, !one));
        add_gate(*diff_, "TIE0", in.name + "_z", {}, rail(y, one));
        break;
      }
    }
  }

  /// master (negedge) -> slave (posedge) -> AND2 with the clock.
  void expand_flop_rail(const std::string& prefix, NetId d, NetId q) {
    const NetId m = diff_->add_net(prefix + "_m");
    const NetId s = diff_->add_net(prefix + "_s");
    add_flop(*diff_, "DFFN", prefix + "_mst", d, clock_net(), m);
    add_flop(*diff_, "DFF", prefix + "_slv", m, clock_net(), s);
    add_gate(*diff_, "AND2", prefix + "_en", {s, clock_net()}, q);
  }

  /// Positive SOP -> AND/OR trees ending exactly on `out`.
  void emit_sop(const std::vector<Cube>& sop, const std::vector<NetId>& t,
                const std::vector<NetId>& f, NetId out,
                const std::string& prefix) {
    SECFLOW_CHECK(!sop.empty(), "empty SOP in comb compound");
    std::vector<NetId> products;
    for (std::size_t ci = 0; ci < sop.size(); ++ci) {
      std::vector<NetId> lits;
      const Cube& cube = sop[ci];
      for (int i = 0; i < static_cast<int>(t.size()); ++i) {
        if (!((cube.mask >> i) & 1u)) continue;
        const bool positive = (cube.value >> i) & 1u;
        lits.push_back(positive ? t[static_cast<std::size_t>(i)]
                                : f[static_cast<std::size_t>(i)]);
      }
      SECFLOW_CHECK(!lits.empty(), "empty cube in comb compound");
      const bool is_final = sop.size() == 1;
      products.push_back(reduce(lits, /*use_and=*/true,
                                prefix + "_p" + std::to_string(ci),
                                is_final ? out : NetId{}));
    }
    if (sop.size() > 1) {
      reduce(products, /*use_and=*/false, prefix + "_s", out);
    }
  }

  /// Tree-reduce `ops` with AND or OR gates.  If `target` is valid the
  /// final gate drives it (a BUF is inserted for a single operand).
  /// Returns the net carrying the result.
  NetId reduce(std::vector<NetId> ops, bool use_and, const std::string& prefix,
               NetId target) {
    int counter = 0;
    if (ops.size() == 1) {
      if (!target.valid()) return ops[0];
      add_gate(*diff_, "BUF", prefix + "_b", {ops[0]}, target);
      return target;
    }
    const std::vector<int> plan = plan_reduction_tree(
        static_cast<int>(ops.size()));
    for (std::size_t step = 0; step < plan.size(); ++step) {
      const int arity = plan[step];
      std::vector<NetId> ins(ops.begin(), ops.begin() + arity);
      ops.erase(ops.begin(), ops.begin() + arity);
      const bool last = step + 1 == plan.size();
      NetId out;
      if (last && target.valid()) {
        out = target;
      } else {
        out = diff_->add_net(prefix + "_n" + std::to_string(counter++));
      }
      const std::string cell =
          (use_and ? "AND" : "OR") + std::to_string(arity);
      add_gate(*diff_, cell, prefix + "_g" + std::to_string(step), ins, out);
      ops.push_back(out);
    }
    SECFLOW_CHECK(ops.size() == 1, "reduction tree did not converge");
    return ops[0];
  }

  const Netlist& fat_;
  const WddlLibrary& wlib_;
  Netlist* diff_ = nullptr;
  NetId clock_;
  std::string clock_name_;
};

}  // namespace

SubstitutionResult substitute_cells(const Netlist& rtl, WddlLibrary& wlib) {
  SECFLOW_CHECK(rtl.library_ptr() == wlib.base_library(),
                "rtl must be mapped onto the WDDL base library");
  return Substituter(rtl, wlib).run();
}

Netlist expand_differential(const Netlist& fat, const WddlLibrary& wlib) {
  SECFLOW_CHECK(fat.library_ptr() == wlib.fat_library(),
                "fat netlist must reference this WddlLibrary's fat library");
  return Expander(fat, wlib).run();
}

}  // namespace secflow
