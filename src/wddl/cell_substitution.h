// Cell substitution (paper section 2.3): single-ended gate-level netlist ->
// fat netlist + differential netlist.
//
// The fat netlist replaces every gate by its WDDL compound (one fat cell
// per compound) and removes inverters/buffers: an inverter is implemented
// by swapping the differential rails, which in the fat abstraction becomes
// an input-phase variant of the sink compound.  Inversions that reach an
// output port are realized as rail-swapped buffer compounds so the fat
// netlist stays logically equivalent to the original (checked by the LEC).
//
// The differential netlist expands each fat instance into the base-library
// primitives of its compound, with every fat net split into a _t/_f rail
// pair.  It is used for verification and for the power simulation.
#pragma once

#include <string>
#include <unordered_map>

#include "netlist/netlist.h"
#include "wddl/wddl_library.h"

namespace secflow {

struct SubstitutionStats {
  int inverters_removed = 0;
  int buffers_removed = 0;
  int gates_substituted = 0;
  int flops_substituted = 0;
  int ties_substituted = 0;
  int port_buffers_added = 0;
};

struct SubstitutionResult {
  Netlist fat;
  SubstitutionStats stats;
};

/// Transform `rtl` (over the WDDL base library) into the fat netlist.
/// The clock net (the one driving flop CK pins) stays single-ended.
/// Throws Error if the netlist mixes clock and data on one net.
SubstitutionResult substitute_cells(const Netlist& rtl, WddlLibrary& wlib);

/// Expand a fat netlist into the differential netlist over the base
/// library.  Every data net n becomes rails n_t / n_f; data ports double;
/// the clock port stays single and also feeds the compounds' precharge
/// gating.  Combinational-only designs get a clock port added when any
/// compound (register or tie) needs the evaluate window.
Netlist expand_differential(const Netlist& fat, const WddlLibrary& wlib);

/// True-rail / false-rail net names for fat net `name`.
std::string rail_name(const std::string& net, bool false_rail);

}  // namespace secflow
