#include "wddl/qm.h"

#include <algorithm>
#include <set>

#include "base/error.h"

namespace secflow {
namespace {

/// Cube ordering for deterministic sets.
struct CubeLess {
  bool operator()(const Cube& a, const Cube& b) const {
    return a.mask != b.mask ? a.mask < b.mask : a.value < b.value;
  }
};

}  // namespace

bool eval_sop(const std::vector<Cube>& sop, unsigned assignment) {
  for (const Cube& c : sop) {
    if (c.covers(assignment)) return true;
  }
  return false;
}

int sop_literals(const std::vector<Cube>& sop) {
  int n = 0;
  for (const Cube& c : sop) n += c.n_literals();
  return n;
}

std::vector<Cube> minimize_sop(const LogicFn& f) {
  const int n = f.n_inputs();
  const unsigned rows = 1u << n;
  const unsigned full_mask = rows - 1;

  std::vector<unsigned> minterms;
  for (unsigned r = 0; r < rows; ++r) {
    if (f.eval(r)) minterms.push_back(r);
  }
  if (minterms.empty()) return {};
  if (minterms.size() == rows) return {Cube{0, 0}};

  // Prime implicant generation: repeatedly merge cubes differing in one
  // cared literal.
  std::set<Cube, CubeLess> current;
  for (unsigned m : minterms) current.insert(Cube{full_mask, m});
  std::set<Cube, CubeLess> primes;
  while (!current.empty()) {
    std::set<Cube, CubeLess> next;
    std::set<Cube, CubeLess> merged;
    std::vector<Cube> cur(current.begin(), current.end());
    for (std::size_t i = 0; i < cur.size(); ++i) {
      for (std::size_t j = i + 1; j < cur.size(); ++j) {
        if (cur[i].mask != cur[j].mask) continue;
        const unsigned diff = (cur[i].value ^ cur[j].value) & cur[i].mask;
        if (__builtin_popcount(diff) != 1) continue;
        next.insert(Cube{cur[i].mask & ~diff, cur[i].value & ~diff});
        merged.insert(cur[i]);
        merged.insert(cur[j]);
      }
    }
    for (const Cube& c : cur) {
      if (!merged.contains(c)) primes.insert(c);
    }
    current = std::move(next);
  }

  // Greedy cover (essential primes first, then max coverage).
  std::vector<Cube> prime_list(primes.begin(), primes.end());
  std::vector<std::vector<std::size_t>> covers(minterms.size());
  for (std::size_t mi = 0; mi < minterms.size(); ++mi) {
    for (std::size_t pi = 0; pi < prime_list.size(); ++pi) {
      if (prime_list[pi].covers(minterms[mi])) covers[mi].push_back(pi);
    }
    SECFLOW_CHECK(!covers[mi].empty(), "QM internal: uncovered minterm");
  }
  std::vector<bool> chosen(prime_list.size(), false);
  std::vector<bool> done(minterms.size(), false);
  // Essential primes.
  for (std::size_t mi = 0; mi < minterms.size(); ++mi) {
    if (covers[mi].size() == 1) chosen[covers[mi][0]] = true;
  }
  auto mark_done = [&] {
    for (std::size_t mi = 0; mi < minterms.size(); ++mi) {
      if (done[mi]) continue;
      for (std::size_t pi : covers[mi]) {
        if (chosen[pi]) {
          done[mi] = true;
          break;
        }
      }
    }
  };
  mark_done();
  // Greedy: repeatedly take the prime covering the most remaining
  // minterms (ties broken by fewer literals, then cube order).
  for (;;) {
    std::size_t best = prime_list.size();
    int best_gain = 0;
    for (std::size_t pi = 0; pi < prime_list.size(); ++pi) {
      if (chosen[pi]) continue;
      int gain = 0;
      for (std::size_t mi = 0; mi < minterms.size(); ++mi) {
        if (!done[mi] && prime_list[pi].covers(minterms[mi])) ++gain;
      }
      if (gain > best_gain ||
          (gain == best_gain && gain > 0 && best < prime_list.size() &&
           prime_list[pi].n_literals() < prime_list[best].n_literals())) {
        best = pi;
        best_gain = gain;
      }
    }
    if (best_gain == 0) break;
    chosen[best] = true;
    mark_done();
  }

  std::vector<Cube> out;
  for (std::size_t pi = 0; pi < prime_list.size(); ++pi) {
    if (chosen[pi]) out.push_back(prime_list[pi]);
  }
  // Self-check: the cover must equal f exactly.
  for (unsigned r = 0; r < rows; ++r) {
    SECFLOW_CHECK(eval_sop(out, r) == f.eval(r), "QM produced a wrong cover");
  }
  return out;
}

}  // namespace secflow
