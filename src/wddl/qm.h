// Two-level logic minimization (Quine-McCluskey) for WDDL compound-cell
// construction.
//
// A WDDL compound realizes a function f as a positive network over the
// input rails: each cube of a sum-of-products of f becomes an AND of rails
// (x_t for positive literals, x_f for negative ones) and the cubes are
// OR-ed.  Minimizing the SOP first keeps the compound close to the
// hand-crafted WDDL cells of the paper (e.g. WDDL NAND2 = OR2 + AND2).
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/logic_fn.h"

namespace secflow {

/// A product term: for input i, (mask >> i) & 1 says the literal appears;
/// (value >> i) & 1 gives its polarity (1 = positive literal).
struct Cube {
  unsigned mask = 0;
  unsigned value = 0;

  friend bool operator==(const Cube&, const Cube&) = default;

  int n_literals() const { return __builtin_popcount(mask); }
  /// True when `assignment` (bit i = input i) is covered by this cube.
  bool covers(unsigned assignment) const {
    return (assignment & mask) == (value & mask);
  }
};

/// Minimal (prime-implicant, greedy-cover) sum-of-products for `f`.
/// Returns an empty vector for f == 0; a single empty cube (mask == 0)
/// for f == 1.  Deterministic.
std::vector<Cube> minimize_sop(const LogicFn& f);

/// Evaluate a SOP (used by tests and the compound generator's self-check).
bool eval_sop(const std::vector<Cube>& sop, unsigned assignment);

/// Total literal count of a SOP.
int sop_literals(const std::vector<Cube>& sop);

}  // namespace secflow
