// WDDL compound-cell library generation (paper section 2.1).
//
// A WDDL compound gate realizes a single-ended cell as a pair of *positive
// monotone* networks over the differential input rails:
//   true  half: minimal SOP of f   (negative literals read the false rail),
//   false half: minimal SOP of !f  (ditto),
// built from ordinary static CMOS AND2/AND3/OR2/OR3/BUF cells of the base
// library — exactly how the paper derives its WDDL cells from the vendor
// 0.18 um library (Fig 2 shows the AOI32 compound).
//
// Because inverters are eliminated by swapping rails, each combinational
// compound also exists in "input phase" variants (the rails of some inputs
// arrive swapped); enumerating base cells x phase masks and deduplicating
// by function yields the compound inventory (the paper's "128 cells").
//
// The compound's single-ended view is registered as a cell type in the
// *fat library*: the netlist over fat cells is the fat netlist of Fig 1.
//
// WDDL registers launch the precharge wave: each rail passes through a
// negedge master (captures at the end of the evaluate phase), a posedge
// slave, and an output AND2 gated by the clock, so register outputs are
// (0,0) during the precharge half-cycle and the wave of zeros sweeps the
// combinational logic.
#pragma once

#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "netlist/cell_library.h"
#include "wddl/qm.h"

namespace secflow {

enum class WddlKind { kComb, kFlop, kTie };

struct WddlCompound {
  std::string name;
  WddlKind kind = WddlKind::kComb;
  /// Single-ended (fat netlist) function.  For kFlop: identity (plain) or
  /// inverter (rail-swapped D variant).  For kTie: the constant.
  LogicFn function;
  /// Positive SOPs realizing the two rails (kComb only).
  std::vector<Cube> true_sop;
  std::vector<Cube> false_sop;
  /// Cell type of the compound in fat_library().
  CellTypeId fat_cell;
  /// Total area of the differential realization [um^2].
  double area_um2 = 0.0;
  /// Base-library primitive histogram of the realization.
  std::unordered_map<std::string, int> primitives;
};

/// Deterministic reduction-tree plan: arities (2 or 3) of the gates needed
/// to reduce `n` operands to one with 2/3-input gates, in evaluation order.
/// Empty for n <= 1.
std::vector<int> plan_reduction_tree(int n);

class WddlLibrary {
 public:
  explicit WddlLibrary(std::shared_ptr<const CellLibrary> base);

  /// Compound realizing `cell` with the given input phase mask (bit i set:
  /// input i arrives with swapped rails).  Compounds are deduplicated by
  /// function; the first requester names them.
  const WddlCompound& compound_for_cell(const CellType& cell,
                                        unsigned phase_mask);

  /// Compound for an arbitrary combinational function (used for the port
  /// buffers the substitution inserts).
  const WddlCompound& comb_compound(const LogicFn& fn);
  const WddlCompound& flop_compound(bool inverted_d);
  const WddlCompound& tie_compound(bool one);

  /// Pre-generate compounds for every base combinational cell x every
  /// input phase mask, plus registers and ties.  Returns the number of
  /// distinct compounds (the paper reports 128 for its library).
  int generate_full_inventory();

  std::size_t n_compounds() const { return compounds_.size(); }
  std::vector<const WddlCompound*> all() const;

  const std::shared_ptr<const CellLibrary>& base_library() const {
    return base_;
  }
  /// The fat library: one single-ended cell per compound.  Grows as
  /// compounds are created; ids stay stable.
  std::shared_ptr<const CellLibrary> fat_library() const { return fat_; }

  /// Compound backing a fat cell (for differential expansion).
  const WddlCompound& compound_of(CellTypeId fat_cell) const;

 private:
  const WddlCompound& get_or_create(WddlKind kind, const LogicFn& fn,
                                    const std::string& preferred_name);
  void realize_comb(WddlCompound& c) const;
  void realize_flop(WddlCompound& c) const;
  void realize_tie(WddlCompound& c) const;
  CellType make_fat_cell(const WddlCompound& c) const;
  /// Primitive count/area for one SOP half; appends to the histogram.
  void cost_sop(const std::vector<Cube>& sop,
                std::unordered_map<std::string, int>& hist) const;

  std::shared_ptr<const CellLibrary> base_;
  std::shared_ptr<CellLibrary> fat_;
  std::deque<WddlCompound> compounds_;
  std::unordered_map<std::uint64_t, std::size_t> by_function_;
  std::unordered_map<std::int32_t, std::size_t> by_fat_cell_;
};

}  // namespace secflow
