#include "wddl/wddl_library.h"

#include <algorithm>

#include "base/error.h"
#include "base/strings.h"

namespace secflow {
namespace {

std::uint64_t function_key(WddlKind kind, const LogicFn& fn) {
  return (static_cast<std::uint64_t>(kind) << 62) |
         (static_cast<std::uint64_t>(fn.n_inputs()) << 58) | fn.table();
}

}  // namespace

std::vector<int> plan_reduction_tree(int n) {
  std::vector<int> arities;
  while (n > 1) {
    // Prefer 3-input gates; avoid leaving a single leftover operand.
    int take;
    if (n == 2) {
      take = 2;
    } else if (n == 4) {
      take = 2;  // 2+2 beats 3+1
    } else {
      take = 3;
    }
    arities.push_back(take);
    n = n - take + 1;
  }
  return arities;
}

WddlLibrary::WddlLibrary(std::shared_ptr<const CellLibrary> base)
    : base_(std::move(base)),
      fat_(std::make_shared<CellLibrary>("wddl_fat")) {
  SECFLOW_CHECK(base_ != nullptr, "WddlLibrary needs a base library");
  // The realization depends on these primitives being available.
  for (const char* name : {"AND2", "AND3", "OR2", "OR3", "BUF", "DFF", "DFFN",
                           "TIE0", "TIE1"}) {
    SECFLOW_CHECK(base_->contains(name),
                  std::string("base library lacks ") + name);
  }
}

const WddlCompound& WddlLibrary::compound_for_cell(const CellType& cell,
                                                   unsigned phase_mask) {
  SECFLOW_CHECK(cell.kind == CellKind::kCombinational,
                "compound_for_cell expects a combinational cell");
  LogicFn fn = cell.function;
  for (int i = 0; i < fn.n_inputs(); ++i) {
    if ((phase_mask >> i) & 1u) fn = fn.with_input_inverted(i);
  }
  std::string name = "WDDL_" + cell.name;
  if (phase_mask != 0) name += "_N" + strfmt("%X", phase_mask);
  return get_or_create(WddlKind::kComb, fn, name);
}

const WddlCompound& WddlLibrary::comb_compound(const LogicFn& fn) {
  return get_or_create(WddlKind::kComb, fn,
                       strfmt("WDDL_F%d_%llX", fn.n_inputs(),
                              static_cast<unsigned long long>(fn.table())));
}

const WddlCompound& WddlLibrary::flop_compound(bool inverted_d) {
  return get_or_create(WddlKind::kFlop,
                       inverted_d ? LogicFn::inverter() : LogicFn::identity(),
                       inverted_d ? "WDDL_DFF_N" : "WDDL_DFF");
}

const WddlCompound& WddlLibrary::tie_compound(bool one) {
  return get_or_create(WddlKind::kTie, LogicFn::constant(one),
                       one ? "WDDL_TIE1" : "WDDL_TIE0");
}

const WddlCompound& WddlLibrary::get_or_create(
    WddlKind kind, const LogicFn& fn, const std::string& preferred_name) {
  const std::uint64_t key = function_key(kind, fn);
  if (const auto it = by_function_.find(key); it != by_function_.end()) {
    return compounds_[it->second];
  }
  if (kind == WddlKind::kComb) {
    SECFLOW_CHECK(fn.n_inputs() >= 1, "constant compounds are ties");
    SECFLOW_CHECK(fn.onset_size() != 0 &&
                      fn.onset_size() != (1 << fn.n_inputs()),
                  "constant function passed as comb compound");
  }
  WddlCompound c;
  c.name = preferred_name;
  c.kind = kind;
  c.function = fn;
  switch (kind) {
    case WddlKind::kComb: realize_comb(c); break;
    case WddlKind::kFlop: realize_flop(c); break;
    case WddlKind::kTie: realize_tie(c); break;
  }
  c.fat_cell = fat_->add(make_fat_cell(c));
  compounds_.push_back(std::move(c));
  const std::size_t idx = compounds_.size() - 1;
  by_function_.emplace(key, idx);
  by_fat_cell_.emplace(compounds_[idx].fat_cell.value(), idx);
  return compounds_[idx];
}

void WddlLibrary::realize_comb(WddlCompound& c) const {
  c.true_sop = minimize_sop(c.function);
  c.false_sop = minimize_sop(c.function.complemented());
  cost_sop(c.true_sop, c.primitives);
  cost_sop(c.false_sop, c.primitives);
  c.area_um2 = 0.0;
  for (const auto& [cell, count] : c.primitives) {
    c.area_um2 += base_->cell(cell).area_um2 * count;
  }
}

void WddlLibrary::cost_sop(const std::vector<Cube>& sop,
                           std::unordered_map<std::string, int>& hist) const {
  SECFLOW_CHECK(!sop.empty() && sop.front().mask != 0,
                "constant SOP in comb compound");
  int or_operands = 0;
  for (const Cube& cube : sop) {
    const int k = cube.n_literals();
    for (int arity : plan_reduction_tree(k)) {
      ++hist[arity == 3 ? "AND3" : "AND2"];
    }
    ++or_operands;
  }
  if (or_operands == 1) {
    // Single cube: if it is a bare literal the half is just a buffer.
    if (sop.front().n_literals() == 1) ++hist["BUF"];
    return;
  }
  for (int arity : plan_reduction_tree(or_operands)) {
    ++hist[arity == 3 ? "OR3" : "OR2"];
  }
}

void WddlLibrary::realize_flop(WddlCompound& c) const {
  // Per rail: negedge master + posedge slave + clock-gating AND2.
  c.primitives = {{"DFFN", 2}, {"DFF", 2}, {"AND2", 2}};
  c.area_um2 = 2 * base_->cell("DFFN").area_um2 +
               2 * base_->cell("DFF").area_um2 +
               2 * base_->cell("AND2").area_um2;
}

void WddlLibrary::realize_tie(WddlCompound& c) const {
  // Active rail follows the evaluate window (a buffered clock) so the
  // precharge wave still propagates; the other rail is a constant 0.
  c.primitives = {{"BUF", 1}, {"TIE0", 1}};
  c.area_um2 = base_->cell("BUF").area_um2 + base_->cell("TIE0").area_um2;
}

CellType WddlLibrary::make_fat_cell(const WddlCompound& c) const {
  CellType cell;
  cell.name = c.name;
  cell.function = c.function;
  cell.area_um2 = c.area_um2;
  cell.height_um = base_->cell("AND2").height_um;
  cell.width_um = cell.area_um2 / cell.height_um;
  cell.internal_cap_ff = 2.0;
  cell.intrinsic_delay_ps = 60.0;
  cell.drive_res_kohm = 3.8;
  switch (c.kind) {
    case WddlKind::kComb: {
      cell.kind = CellKind::kCombinational;
      for (int i = 0; i < c.function.n_inputs(); ++i) {
        // Fat pin cap: both rails' worth of sink gate input capacitance.
        cell.pins.push_back(PinDef{"A" + std::to_string(i), PinDir::kInput,
                                   2 * base_->cell("AND2").pins[0].cap_ff});
      }
      cell.pins.push_back(PinDef{"Y", PinDir::kOutput, 0.0});
      break;
    }
    case WddlKind::kFlop: {
      cell.kind = CellKind::kFlop;
      cell.intrinsic_delay_ps = base_->cell("DFF").intrinsic_delay_ps;
      cell.pins.push_back(PinDef{"D", PinDir::kInput,
                                 2 * base_->cell("DFFN").pins[0].cap_ff});
      cell.pins.push_back(PinDef{"CK", PinDir::kInput,
                                 2 * base_->cell("DFFN").pins[1].cap_ff +
                                     2 * base_->cell("DFF").pins[1].cap_ff +
                                     2 * base_->cell("AND2").pins[0].cap_ff});
      cell.pins.push_back(PinDef{"Q", PinDir::kOutput, 0.0});
      break;
    }
    case WddlKind::kTie: {
      cell.kind = CellKind::kTie;
      cell.pins.push_back(PinDef{"Y", PinDir::kOutput, 0.0});
      break;
    }
  }
  return cell;
}

int WddlLibrary::generate_full_inventory() {
  for (CellTypeId id : base_->all()) {
    const CellType& cell = base_->cell(id);
    if (cell.kind != CellKind::kCombinational) continue;
    if (cell.name == "INV") continue;  // inverters become rail swaps
    const int n = cell.n_inputs();
    for (unsigned mask = 0; mask < (1u << n); ++mask) {
      compound_for_cell(cell, mask);
    }
  }
  flop_compound(false);
  flop_compound(true);
  tie_compound(false);
  tie_compound(true);
  return static_cast<int>(compounds_.size());
}

std::vector<const WddlCompound*> WddlLibrary::all() const {
  std::vector<const WddlCompound*> out;
  out.reserve(compounds_.size());
  for (const WddlCompound& c : compounds_) out.push_back(&c);
  return out;
}

const WddlCompound& WddlLibrary::compound_of(CellTypeId fat_cell) const {
  const auto it = by_fat_cell_.find(fat_cell.value());
  SECFLOW_CHECK(it != by_fat_cell_.end(), "unknown fat cell");
  return compounds_[it->second];
}

}  // namespace secflow
