#include "leakage/tvla.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "base/error.h"

namespace secflow {

WelchAccumulator accumulate_tvla(const std::vector<TvlaTrace>& traces,
                                 const TvlaOptions& opts) {
  SECFLOW_CHECK(!traces.empty(), "TVLA: no traces to accumulate");
  const std::size_t n_samples = traces.front().samples.size();
  SECFLOW_CHECK(n_samples > 0, "TVLA: empty trace");

  const std::size_t n_shards =
      (traces.size() + kLeakageShardTraces - 1) / kLeakageShardTraces;
  std::vector<WelchAccumulator> shards = parallel_map(
      n_shards, opts.parallelism, [&](std::size_t shard) {
        const std::size_t begin = shard * kLeakageShardTraces;
        const std::size_t end =
            std::min(begin + kLeakageShardTraces, traces.size());
        WelchAccumulator acc(n_samples);
        for (std::size_t i = begin; i < end; ++i) {
          const TvlaTrace& t = traces[i];
          SECFLOW_CHECK(t.samples.size() == n_samples,
                        "TVLA trace " + std::to_string(i) + ": " +
                            std::to_string(t.samples.size()) +
                            " samples, expected " +
                            std::to_string(n_samples));
          acc.add(t.fixed, t.samples.data());
        }
        return acc;
      });
  WelchAccumulator total = std::move(shards.front());
  for (std::size_t i = 1; i < shards.size(); ++i) total.merge(shards[i]);
  return total;
}

double tvla_max_abs_t(const WelchAccumulator& acc) {
  double best = 0.0;
  for (double t : acc.t_statistic()) best = std::max(best, std::fabs(t));
  return best;
}

std::vector<std::size_t> tvla_leaky_samples(const WelchAccumulator& acc,
                                            double threshold) {
  std::vector<std::size_t> out;
  const std::vector<double> t = acc.t_statistic();
  for (std::size_t s = 0; s < t.size(); ++s) {
    if (std::fabs(t[s]) > threshold) out.push_back(s);
  }
  return out;
}

}  // namespace secflow
