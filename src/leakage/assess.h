// Leakage-assessment campaigns: the bridge between the simulation engine
// and the statistical machinery.
//
// assess_des_leakage mounts the full battery on a reduced-DES
// implementation (regular or WDDL): fixed-vs-random TVLA, CPA key
// recovery under a Hamming-weight or Hamming-distance model, success-rate
// / guessing-entropy curves over repeated independent sub-campaigns
// (disjoint Rng::stream bases), and MTD estimation with early stop.
// assess_tvla_leakage runs the model-free TVLA alone on any design by
// driving every non-clock input lane, so the detection test needs no
// knowledge of the circuit.
//
// Traces are synthesized through the compile-once / simulate-many path
// (sim/trace_sim.h) in fixed blocks; when LeakageSetup::cache_dir is set,
// each block is checkpointed in the ArtifactStore under a content-address
// chained from the flow's extraction-stage key (LeakageSetup::base_key),
// so a re-assessment of an unchanged design replays traces from disk
// instead of re-simulating.  Per-phase obs spans and metrics are emitted
// throughout.
#pragma once

#include <cstdint>
#include <string>

#include "base/parallel.h"
#include "leakage/cpa.h"
#include "leakage/report.h"
#include "leakage/tvla.h"
#include "netlist/netlist.h"
#include "sca/selection.h"
#include "sim/power_sim.h"

namespace secflow {

struct LeakageSetup {
  std::uint64_t seed = 2025;
  std::string design;  ///< report label

  // TVLA (fixed-vs-random Welch-t).
  bool with_tvla = true;
  int tvla_traces = 600;  ///< total, interleaved fixed/random by parity
  double tvla_threshold = 4.5;

  // CPA key recovery (DES interface only).
  bool with_cpa = true;
  int cpa_traces = 800;
  std::uint32_t key = 46;  ///< the paper's secret key
  int sbox = 1;
  PowerModel model = PowerModel::kHammingDistance;
  double margin = 0.05;

  // Success-rate / guessing-entropy curves; 0 campaigns disables.
  int ge_campaigns = 0;

  // MTD estimation (requires with_cpa).
  bool with_mtd = true;
  MtdOptions mtd;

  /// Gaussian measurement noise per sample [mA].  TVLA needs a nonzero
  /// value: a noiseless fixed-plaintext class has zero variance and the
  /// Welch denominator collapses.
  double noise_ma = 0.05;

  /// Trace checkpoint cache; "" disables caching.
  std::string cache_dir;
  /// Content-address of the upstream flow state (normally the
  /// extraction-stage key from compute_stage_keys); chains the trace
  /// cache to the design so a changed netlist misses cleanly.
  std::uint64_t base_key = 0;

  Parallelism parallelism;
};

/// Full assessment of a reduced-DES implementation.  The model must be
/// compiled with precharge_inputs == differential.
LeakageReport assess_des_leakage(const CompiledSimModel& model,
                                 bool differential,
                                 const LeakageSetup& setup);

/// Convenience: compile the model, then assess.
LeakageReport assess_des_leakage(const Netlist& nl, const CapTable& caps,
                                 bool differential,
                                 const LeakageSetup& setup);

/// Model-free TVLA on an arbitrary design: drives every non-clock input
/// lane (rail pairs fold into one lane on differential netlists) with
/// fixed or fresh random values and runs the Welch-t detection test.
/// The returned report carries only the tvla section.
LeakageReport assess_tvla_leakage(const CompiledSimModel& model,
                                  bool differential,
                                  const LeakageSetup& setup);

LeakageReport assess_tvla_leakage(const Netlist& nl, const CapTable& caps,
                                  bool differential,
                                  const LeakageSetup& setup);

}  // namespace secflow
