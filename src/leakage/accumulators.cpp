#include "leakage/accumulators.h"

#include <cmath>

#include "base/error.h"

namespace secflow {

void Moment::add(double x) {
  ++n;
  const double d = x - mean;
  mean += d / static_cast<double>(n);
  m2 += d * (x - mean);
}

void Moment::merge(const Moment& o) {
  if (o.n == 0) return;
  if (n == 0) {
    *this = o;
    return;
  }
  const double na = static_cast<double>(n), nb = static_cast<double>(o.n);
  const double nt = na + nb;
  const double delta = o.mean - mean;
  mean += delta * (nb / nt);
  m2 += o.m2 + delta * delta * (na * nb / nt);
  n += o.n;
}

double Moment::variance() const {
  return n < 2 ? 0.0 : m2 / static_cast<double>(n - 1);
}

WelchAccumulator::WelchAccumulator(std::size_t n_samples)
    : fixed_(n_samples), random_(n_samples) {
  SECFLOW_CHECK(n_samples > 0, "Welch accumulator needs at least 1 sample");
}

std::uint64_t WelchAccumulator::n(bool fixed_group) const {
  return (fixed_group ? fixed_ : random_).front().n;
}

void WelchAccumulator::add(bool fixed_group, const double* samples) {
  std::vector<Moment>& group = fixed_group ? fixed_ : random_;
  for (std::size_t s = 0; s < group.size(); ++s) group[s].add(samples[s]);
}

void WelchAccumulator::merge(const WelchAccumulator& o) {
  SECFLOW_CHECK(n_samples() == o.n_samples(),
                "Welch merge: sample-count mismatch");
  for (std::size_t s = 0; s < fixed_.size(); ++s) {
    fixed_[s].merge(o.fixed_[s]);
    random_[s].merge(o.random_[s]);
  }
}

std::vector<double> WelchAccumulator::t_statistic() const {
  std::vector<double> t(n_samples(), 0.0);
  for (std::size_t s = 0; s < t.size(); ++s) {
    const Moment& f = fixed_[s];
    const Moment& r = random_[s];
    if (f.n < 2 || r.n < 2) continue;
    const double denom2 = f.variance() / static_cast<double>(f.n) +
                          r.variance() / static_cast<double>(r.n);
    if (denom2 <= 0.0) continue;
    t[s] = (f.mean - r.mean) / std::sqrt(denom2);
  }
  return t;
}

CpaAccumulator::CpaAccumulator(int n_guesses, int n_samples)
    : mean_t_(static_cast<std::size_t>(n_samples), 0.0),
      m2_t_(static_cast<std::size_t>(n_samples), 0.0),
      mean_h_(static_cast<std::size_t>(n_guesses), 0.0),
      m2_h_(static_cast<std::size_t>(n_guesses), 0.0),
      c_(static_cast<std::size_t>(n_guesses) *
             static_cast<std::size_t>(n_samples),
         0.0),
      dt_old_(static_cast<std::size_t>(n_samples), 0.0) {
  SECFLOW_CHECK(n_guesses > 1, "CPA needs at least 2 key guesses");
  SECFLOW_CHECK(n_samples > 0, "CPA needs at least 1 sample");
}

void CpaAccumulator::add(const double* samples, const double* hypotheses) {
  ++n_;
  const double inv_n = 1.0 / static_cast<double>(n_);
  const std::size_t S = mean_t_.size();
  const std::size_t G = mean_h_.size();
  // Trace moments; keep the pre-update deviations for the co-moment rows.
  for (std::size_t s = 0; s < S; ++s) {
    const double x = samples[s];
    const double d = x - mean_t_[s];
    dt_old_[s] = d;
    mean_t_[s] += d * inv_n;
    m2_t_[s] += d * (x - mean_t_[s]);
  }
  // Hypothesis moments and the co-moment matrix.  The pairwise-exact
  // cross update is C += (h - mean_h_new) * (t - mean_t_old).
  for (std::size_t g = 0; g < G; ++g) {
    const double h = hypotheses[g];
    const double dh = h - mean_h_[g];
    mean_h_[g] += dh * inv_n;
    m2_h_[g] += dh * (h - mean_h_[g]);
    const double dh_new = h - mean_h_[g];
    double* row = c_.data() + g * S;
    for (std::size_t s = 0; s < S; ++s) row[s] += dh_new * dt_old_[s];
  }
}

void CpaAccumulator::merge(const CpaAccumulator& o) {
  SECFLOW_CHECK(n_guesses() == o.n_guesses() && n_samples() == o.n_samples(),
                "CPA merge: shape mismatch");
  if (o.n_ == 0) return;
  if (n_ == 0) {
    n_ = o.n_;
    mean_t_ = o.mean_t_;
    m2_t_ = o.m2_t_;
    mean_h_ = o.mean_h_;
    m2_h_ = o.m2_h_;
    c_ = o.c_;
    return;
  }
  const double na = static_cast<double>(n_), nb = static_cast<double>(o.n_);
  const double nt = na + nb;
  const double w = na * nb / nt;
  const std::size_t S = mean_t_.size();
  const std::size_t G = mean_h_.size();
  // Co-moments first: they need the pre-merge means of both sides.
  for (std::size_t g = 0; g < G; ++g) {
    const double dh = o.mean_h_[g] - mean_h_[g];
    double* row = c_.data() + g * S;
    const double* orow = o.c_.data() + g * S;
    for (std::size_t s = 0; s < S; ++s) {
      row[s] += orow[s] + dh * (o.mean_t_[s] - mean_t_[s]) * w;
    }
  }
  for (std::size_t s = 0; s < S; ++s) {
    const double d = o.mean_t_[s] - mean_t_[s];
    mean_t_[s] += d * (nb / nt);
    m2_t_[s] += o.m2_t_[s] + d * d * w;
  }
  for (std::size_t g = 0; g < G; ++g) {
    const double d = o.mean_h_[g] - mean_h_[g];
    mean_h_[g] += d * (nb / nt);
    m2_h_[g] += o.m2_h_[g] + d * d * w;
  }
  n_ += o.n_;
}

double CpaAccumulator::correlation(int guess, int sample) const {
  SECFLOW_CHECK(guess >= 0 && guess < n_guesses(), "CPA guess out of range");
  SECFLOW_CHECK(sample >= 0 && sample < n_samples(),
                "CPA sample out of range");
  if (n_ < 2) return 0.0;
  const double mh = m2_h_[static_cast<std::size_t>(guess)];
  const double mt = m2_t_[static_cast<std::size_t>(sample)];
  if (mh <= 0.0 || mt <= 0.0) return 0.0;
  const double c = c_[static_cast<std::size_t>(guess) * mean_t_.size() +
                      static_cast<std::size_t>(sample)];
  return c / std::sqrt(mh * mt);
}

std::vector<double> CpaAccumulator::scores() const {
  std::vector<double> out(mean_h_.size(), 0.0);
  for (int g = 0; g < n_guesses(); ++g) {
    double best = 0.0;
    for (int s = 0; s < n_samples(); ++s) {
      const double r = std::fabs(correlation(g, s));
      if (r > best) best = r;
    }
    out[static_cast<std::size_t>(g)] = best;
  }
  return out;
}

}  // namespace secflow
