#include "leakage/assess.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <sstream>
#include <utility>

#include "base/error.h"
#include "base/rng.h"
#include "ckpt/hash.h"
#include "ckpt/store.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sca/dpa_experiment.h"
#include "sim/trace_sim.h"

namespace secflow {
namespace {

constexpr const char* kTraceKind = "leakage-traces";
// Fixed-class plaintext of the DES TVLA campaign (any constant works; the
// test is fixed-VS-random, not about the value itself).
constexpr std::uint32_t kFixedPl = 0x5;
constexpr std::uint32_t kFixedPr = 0x2A;
// TVLA draws from a disjoint stream range so its traces never alias the
// CPA/MTD traces (which use stream_base 0).
constexpr std::uint64_t kTvlaStreamBase = 1ull << 40;
// Stream id of the generic campaign's fixed-class lane pattern.
constexpr std::uint64_t kFixedPatternStream = 0x5EC0FA57ull;

/// Trace checkpointing: blocks of simulated measurements stored under a
/// content-address chained from the upstream flow key.
struct TraceCache {
  std::unique_ptr<ArtifactStore> store;  ///< null = caching disabled
  std::uint64_t base = 0;
  std::int64_t hits = 0;
  std::int64_t misses = 0;
};

TraceCache make_cache(const LeakageSetup& s) {
  TraceCache c;
  if (!s.cache_dir.empty()) {
    c.store = std::make_unique<ArtifactStore>(s.cache_dir);
  }
  c.base = s.base_key;
  return c;
}

std::uint64_t block_key(const TraceCache& cache, const char* purpose,
                        const LeakageSetup& s, bool differential,
                        std::uint64_t stream_base, int begin, int end) {
  Hasher h;
  h.add(cache.base).add(purpose).add(s.seed).add(stream_base);
  h.add(begin).add(end);
  h.add(s.noise_ma).add(differential);
  h.add(static_cast<std::int64_t>(s.key)).add(s.sbox);
  return h.digest();
}

Artifact make_block_artifact(std::uint64_t key,
                             const std::vector<CpaMeasurement>& block) {
  const std::size_t n = block.size();
  const std::size_t s = block.front().samples.size();
  Artifact a(kTraceKind, key);
  a.add("meta", std::to_string(n) + " " + std::to_string(s) + "\n");
  std::string samples(n * s * sizeof(double), '\0');
  for (std::size_t i = 0; i < n; ++i) {
    std::memcpy(samples.data() + i * s * sizeof(double),
                block[i].samples.data(), s * sizeof(double));
  }
  a.add("samples", std::move(samples));
  std::string obs(n * 2 * sizeof(std::uint32_t), '\0');
  for (std::size_t i = 0; i < n; ++i) {
    std::memcpy(obs.data() + (2 * i) * sizeof(std::uint32_t), &block[i].ct,
                sizeof(std::uint32_t));
    std::memcpy(obs.data() + (2 * i + 1) * sizeof(std::uint32_t),
                &block[i].prev_ct, sizeof(std::uint32_t));
  }
  a.add("obs", std::move(obs));
  return a;
}

/// Lenient decode: any shape mismatch reads as a miss (the store already
/// rejected corruption via its checksum), so a stale entry degrades to
/// re-simulation, never to wrong traces.
bool unpack_block(const Artifact& a, int expect_n,
                  std::vector<CpaMeasurement>* out) {
  const std::string* meta = a.find_section("meta");
  const std::string* samples = a.find_section("samples");
  const std::string* obs = a.find_section("obs");
  if (meta == nullptr || samples == nullptr || obs == nullptr) return false;
  std::istringstream ms(*meta);
  std::size_t n = 0, s = 0;
  if (!(ms >> n >> s) || s == 0) return false;
  if (n != static_cast<std::size_t>(expect_n)) return false;
  if (samples->size() != n * s * sizeof(double)) return false;
  if (obs->size() != n * 2 * sizeof(std::uint32_t)) return false;
  out->resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    CpaMeasurement& m = (*out)[i];
    m.samples.resize(s);
    std::memcpy(m.samples.data(), samples->data() + i * s * sizeof(double),
                s * sizeof(double));
    std::memcpy(&m.ct, obs->data() + (2 * i) * sizeof(std::uint32_t),
                sizeof(std::uint32_t));
    std::memcpy(&m.prev_ct, obs->data() + (2 * i + 1) * sizeof(std::uint32_t),
                sizeof(std::uint32_t));
  }
  return true;
}

/// Like TraceTask but indexed by the absolute trace index, with the RNG
/// already re-keyed to Rng::stream(seed, stream_base + abs_index) — so a
/// block's traces are identical no matter which batch boundaries fetched
/// them.
using AbsTraceTask =
    std::function<SimTrace(PowerSimulator& sim, Rng& rng, int abs_index)>;

std::vector<CpaMeasurement> fetch_block(
    const CompiledSimModel& model, TraceCache& cache, const char* purpose,
    const LeakageSetup& s, bool differential, std::uint64_t stream_base,
    int begin, int end, const AbsTraceTask& task) {
  SECFLOW_CHECK(end > begin, "leakage: empty trace block");
  const std::uint64_t key =
      block_key(cache, purpose, s, differential, stream_base, begin, end);
  if (cache.store) {
    if (std::optional<Artifact> a = cache.store->load(kTraceKind, key)) {
      std::vector<CpaMeasurement> out;
      if (unpack_block(*a, end - begin, &out)) {
        ++cache.hits;
        Metrics::global().add("leakage.trace_cache.hit");
        return out;
      }
    }
  }
  std::vector<SimTrace> sims = simulate_traces(
      model, end - begin, s.seed,
      [&](PowerSimulator& sim, Rng&, int i) {
        Rng rng = Rng::stream(
            s.seed, stream_base + static_cast<std::uint64_t>(begin + i));
        return task(sim, rng, begin + i);
      },
      s.parallelism);
  std::vector<CpaMeasurement> out(sims.size());
  for (std::size_t i = 0; i < sims.size(); ++i) {
    out[i].samples = std::move(sims[i].cycle.current_ma);
    out[i].ct = sims[i].observable & 0x3FF;
    out[i].prev_ct = (sims[i].observable >> 10) & 0x3FF;
  }
  ++cache.misses;
  Metrics::global().add("leakage.trace_cache.miss");
  Metrics::global().add("leakage.traces_simulated",
                        static_cast<std::uint64_t>(out.size()));
  if (cache.store) cache.store->save(make_block_artifact(key, out));
  return out;
}

/// Fetch [0, n) in fixed `step`-wide blocks (the MTD feed granularity, so
/// CPA, GE and MTD address identical cache entries for shared ranges).
std::vector<CpaMeasurement> fetch_range(
    const CompiledSimModel& model, TraceCache& cache, const char* purpose,
    const LeakageSetup& s, bool differential, std::uint64_t stream_base,
    int begin, int end, int step, const AbsTraceTask& task) {
  std::vector<CpaMeasurement> all;
  all.reserve(static_cast<std::size_t>(end - begin));
  for (int b = begin; b < end; b += step) {
    std::vector<CpaMeasurement> block =
        fetch_block(model, cache, purpose, s, differential, stream_base, b,
                    std::min(b + step, end), task);
    for (CpaMeasurement& m : block) all.push_back(std::move(m));
  }
  return all;
}

// --- DES campaign tasks ---------------------------------------------------

/// The DPA experiment's four-cycle mini-campaign, extended to read both
/// ciphertext observables: the previous encryption's result lands in the
/// CL/CR output registers one cycle before the target's, so prev_ct is
/// read after the recorded cycle and ct after the next one.  A WDDL
/// design is observable only during the evaluate phase (output_at_eval).
SimTrace des_cpa_trace(PowerSimulator& sim, Rng& rng, const DesPortMap& ports,
                       const LeakageSetup& s) {
  const auto prev_pl = static_cast<std::uint32_t>(rng.next_below(16));
  const auto prev_pr = static_cast<std::uint32_t>(rng.next_below(64));
  const auto pl = static_cast<std::uint32_t>(rng.next_below(16));
  const auto pr = static_cast<std::uint32_t>(rng.next_below(64));
  ports.drive(sim, ports.k, s.key);
  ports.drive(sim, ports.pl, prev_pl);
  ports.drive(sim, ports.pr, prev_pr);
  sim.settle();
  sim.run_cycle();
  ports.drive(sim, ports.pl, pl);
  ports.drive(sim, ports.pr, pr);
  sim.run_cycle();
  SimTrace out;
  out.cycle = sim.run_cycle();
  const std::uint32_t prev_ct =
      ports.read(sim, ports.cl) | (ports.read(sim, ports.cr) << 4);
  sim.run_cycle();
  const std::uint32_t ct =
      ports.read(sim, ports.cl) | (ports.read(sim, ports.cr) << 4);
  out.observable = ct | (prev_ct << 10);
  if (s.noise_ma > 0.0) {
    for (double& v : out.cycle.current_ma) {
      v += s.noise_ma * rng.next_gaussian();
    }
  }
  return out;
}

/// Fixed-vs-random DES trace: previous plaintext always random, target
/// plaintext fixed (even indices) or random (odd).  The random draws are
/// consumed in both classes so the per-trace stream stays aligned.
SimTrace des_tvla_trace(PowerSimulator& sim, Rng& rng,
                        const DesPortMap& ports, const LeakageSetup& s,
                        bool fixed) {
  const auto prev_pl = static_cast<std::uint32_t>(rng.next_below(16));
  const auto prev_pr = static_cast<std::uint32_t>(rng.next_below(64));
  const auto rnd_pl = static_cast<std::uint32_t>(rng.next_below(16));
  const auto rnd_pr = static_cast<std::uint32_t>(rng.next_below(64));
  const std::uint32_t pl = fixed ? kFixedPl : rnd_pl;
  const std::uint32_t pr = fixed ? kFixedPr : rnd_pr;
  ports.drive(sim, ports.k, s.key);
  ports.drive(sim, ports.pl, prev_pl);
  ports.drive(sim, ports.pr, prev_pr);
  sim.settle();
  sim.run_cycle();
  ports.drive(sim, ports.pl, pl);
  ports.drive(sim, ports.pr, pr);
  sim.run_cycle();
  SimTrace out;
  out.cycle = sim.run_cycle();
  if (s.noise_ma > 0.0) {
    for (double& v : out.cycle.current_ma) {
      v += s.noise_ma * rng.next_gaussian();
    }
  }
  return out;
}

// --- generic (model-free) input lanes -------------------------------------

/// One logical input bit: a single-ended port, or a *_t/*_f rail pair on
/// differential netlists.
std::vector<DesBitPorts> input_lanes(const Netlist& nl, bool differential) {
  std::vector<DesBitPorts> lanes;
  for (PortId id : nl.port_ids()) {
    const Port& p = nl.port(id);
    if (p.dir != PinDir::kInput) continue;
    if (p.name == "clk") continue;
    DesBitPorts lane{id, PortId()};
    if (differential) {
      if (p.name.size() > 2 &&
          p.name.compare(p.name.size() - 2, 2, "_f") == 0) {
        continue;  // folded into its *_t partner
      }
      if (p.name.size() > 2 &&
          p.name.compare(p.name.size() - 2, 2, "_t") == 0) {
        lane.f = nl.find_port(p.name.substr(0, p.name.size() - 2) + "_f");
      }
    }
    lanes.push_back(lane);
  }
  SECFLOW_CHECK(!lanes.empty(), "TVLA: design has no drivable input lanes");
  return lanes;
}

void drive_lane(PowerSimulator& sim, const DesBitPorts& lane, bool v) {
  sim.set_input(lane.t, v);
  if (lane.f.valid()) sim.set_input(lane.f, !v);
}

SimTrace generic_tvla_trace(PowerSimulator& sim, Rng& rng,
                            const std::vector<DesBitPorts>& lanes,
                            const std::vector<char>& fixed_bits,
                            const LeakageSetup& s, bool fixed) {
  for (const DesBitPorts& lane : lanes) drive_lane(sim, lane, rng.next_bool());
  sim.settle();
  sim.run_cycle();
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    const bool rnd = rng.next_bool();  // consumed in both classes
    drive_lane(sim, lanes[i], fixed ? fixed_bits[i] != 0 : rnd);
  }
  SimTrace out;
  out.cycle = sim.run_cycle();
  if (s.noise_ma > 0.0) {
    for (double& v : out.cycle.current_ma) {
      v += s.noise_ma * rng.next_gaussian();
    }
  }
  return out;
}

// --- assessment phases ----------------------------------------------------

TvlaSummary run_tvla_phase(const CompiledSimModel& model, TraceCache& cache,
                           const LeakageSetup& s, bool differential,
                           const AbsTraceTask& task) {
  Span span("leakage.tvla", "leakage");
  span.arg("traces", s.tvla_traces);
  SECFLOW_CHECK(s.tvla_traces >= 4,
                "TVLA needs at least 4 traces (2 per class)");
  std::vector<CpaMeasurement> raw =
      fetch_range(model, cache, "tvla", s, differential, kTvlaStreamBase, 0,
                  s.tvla_traces, std::max(s.mtd.step, 1), task);
  std::vector<TvlaTrace> traces(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    traces[i].samples = std::move(raw[i].samples);
    traces[i].fixed = (i % 2) == 0;
  }
  TvlaOptions opts;
  opts.threshold = s.tvla_threshold;
  opts.parallelism = s.parallelism;
  const WelchAccumulator acc = accumulate_tvla(traces, opts);

  TvlaSummary out;
  out.present = true;
  out.n_fixed = static_cast<std::int64_t>(acc.n(true));
  out.n_random = static_cast<std::int64_t>(acc.n(false));
  out.n_samples = static_cast<std::int64_t>(acc.n_samples());
  out.threshold = s.tvla_threshold;
  out.max_abs_t = tvla_max_abs_t(acc);
  out.leaky_samples = static_cast<std::int64_t>(
      tvla_leaky_samples(acc, s.tvla_threshold).size());
  out.leaks = out.max_abs_t > s.tvla_threshold;
  Metrics::global().gauge_max("leakage.tvla.max_abs_t", out.max_abs_t);
  SECFLOW_LOG_INFO("leakage", "TVLA done",
                   LogField("max_abs_t", out.max_abs_t),
                   LogField("leaks", out.leaks));
  return out;
}

CpaOptions cpa_options(const LeakageSetup& s) {
  CpaOptions opts;
  opts.n_guesses = kDesKeyGuesses;
  opts.margin = s.margin;
  opts.parallelism = s.parallelism;
  return opts;
}

CpaSummary run_cpa_phase(const CompiledSimModel& model, TraceCache& cache,
                         const LeakageSetup& s, bool differential,
                         const HypothesisFn& hyp, const AbsTraceTask& task) {
  Span span("leakage.cpa", "leakage");
  span.arg("traces", s.cpa_traces);
  span.arg("model", power_model_name(s.model));
  const std::vector<CpaMeasurement> traces =
      fetch_range(model, cache, "cpa", s, differential, 0, 0, s.cpa_traces,
                  std::max(s.mtd.step, 1), task);
  const CpaAccumulator acc = accumulate_cpa(traces, hyp, cpa_options(s));
  const CpaRanking ranking = cpa_ranking(acc);

  CpaSummary out;
  out.present = true;
  out.model = power_model_name(s.model);
  out.n_traces = static_cast<std::int64_t>(traces.size());
  out.best_guess = ranking.best_guess;
  out.best_score = ranking.best_score;
  out.runner_up_score = ranking.runner_up_score;
  out.correct_key = static_cast<std::int64_t>(s.key);
  out.correct_rank = ranking.rank_of(static_cast<int>(s.key));
  out.disclosed = ranking.disclosed(s.key, s.margin);
  Metrics::global().gauge_max("leakage.cpa.best_score", out.best_score);
  SECFLOW_LOG_INFO("leakage", "CPA done",
                   LogField("best_guess", out.best_guess),
                   LogField("correct_rank", out.correct_rank),
                   LogField("disclosed", out.disclosed));
  return out;
}

GeSummary run_ge_phase(const CompiledSimModel& model, TraceCache& cache,
                       const LeakageSetup& s, bool differential,
                       const HypothesisFn& hyp, const AbsTraceTask& task) {
  Span span("leakage.guessing_entropy", "leakage");
  span.arg("campaigns", s.ge_campaigns);
  // Grid: quarters of the CPA budget, deduplicated and > 0.
  std::vector<int> grid;
  for (int q = 1; q <= 4; ++q) {
    const int t = s.cpa_traces * q / 4;
    if (t > 0 && (grid.empty() || grid.back() != t)) grid.push_back(t);
  }
  // Campaign k draws from streams [(k+1)*range, (k+2)*range) — disjoint
  // from each other and from the CPA/MTD range [0, range).
  const std::uint64_t range = static_cast<std::uint64_t>(
      std::max(std::max(s.cpa_traces, s.mtd.max_traces), s.tvla_traces));
  std::vector<double> rank_sum(grid.size(), 0.0);
  std::vector<double> success(grid.size(), 0.0);
  for (int k = 0; k < s.ge_campaigns; ++k) {
    const std::uint64_t stream_base = range * static_cast<std::uint64_t>(k + 1);
    CpaAccumulator acc;
    bool have_shape = false;
    int fed = 0;
    for (std::size_t gi = 0; gi < grid.size(); ++gi) {
      std::vector<CpaMeasurement> chunk =
          fetch_range(model, cache, "ge", s, differential, stream_base, fed,
                      grid[gi], std::max(s.mtd.step, 1), task);
      if (!have_shape) {
        acc = CpaAccumulator(kDesKeyGuesses,
                             static_cast<int>(chunk.front().samples.size()));
        have_shape = true;
      }
      acc.merge(accumulate_cpa(chunk, hyp, cpa_options(s)));
      fed = grid[gi];
      const CpaRanking ranking = cpa_ranking(acc);
      const int rank = ranking.rank_of(static_cast<int>(s.key));
      rank_sum[gi] += rank;
      if (rank == 1) success[gi] += 1.0;
    }
  }
  GeSummary out;
  out.present = true;
  out.n_campaigns = s.ge_campaigns;
  for (std::size_t gi = 0; gi < grid.size(); ++gi) {
    out.trace_grid.push_back(grid[gi]);
    out.guessing_entropy.push_back(rank_sum[gi] /
                                   static_cast<double>(s.ge_campaigns));
    out.success_rate.push_back(success[gi] /
                               static_cast<double>(s.ge_campaigns));
  }
  return out;
}

MtdSummary run_mtd_phase(const CompiledSimModel& model, TraceCache& cache,
                         const LeakageSetup& s, bool differential,
                         const HypothesisFn& hyp, const AbsTraceTask& task) {
  Span span("leakage.mtd", "leakage");
  span.arg("max_traces", s.mtd.max_traces);
  const TraceFeeder feeder = [&](int begin, int end) {
    // stream_base 0: the same trace stream the CPA phase used, so warm
    // cache blocks are shared between the two phases.
    return fetch_range(model, cache, "cpa", s, differential, 0, begin, end,
                       std::max(s.mtd.step, 1), task);
  };
  const MtdResult result =
      estimate_mtd(feeder, hyp, s.key, s.mtd, cpa_options(s));

  MtdSummary out;
  out.present = true;
  out.mtd = result.mtd;
  out.max_traces = s.mtd.max_traces;
  out.step = s.mtd.step;
  out.persist = s.mtd.persist;
  out.traces_fed = result.traces_fed;
  out.disclosed = result.disclosed;
  for (int c : result.checkpoints) out.checkpoints.push_back(c);
  for (int r : result.ranks) out.ranks.push_back(r);
  Metrics::global().gauge_max(
      "leakage.mtd", static_cast<double>(result.mtd < 0 ? s.mtd.max_traces
                                                        : result.mtd));
  SECFLOW_LOG_INFO("leakage", "MTD done", LogField("mtd", result.mtd),
                   LogField("traces_fed", result.traces_fed));
  return out;
}

LeakageReport report_shell(const CompiledSimModel& model, bool differential,
                           const LeakageSetup& setup) {
  LeakageReport r;
  r.flow = differential ? "secure" : "regular";
  r.design = setup.design.empty() ? model.netlist().name() : setup.design;
  r.seed = static_cast<std::int64_t>(setup.seed);
  r.n_threads = setup.parallelism.resolved_threads();
  r.noise_ma = setup.noise_ma;
  return r;
}

}  // namespace

LeakageReport assess_des_leakage(const CompiledSimModel& model,
                                 bool differential,
                                 const LeakageSetup& setup) {
  Span span("leakage.assess", "leakage");
  span.arg("flow", differential ? "secure" : "regular");
  SECFLOW_LOG_INFO("leakage", "assessment start",
                   LogField("differential", differential),
                   LogField("cpa_traces", setup.cpa_traces),
                   LogField("tvla_traces", setup.tvla_traces));
  TraceCache cache = make_cache(setup);
  LeakageReport r = report_shell(model, differential, setup);

  const DesPortMap ports = DesPortMap::resolve(model.netlist(), differential);
  if (setup.with_tvla) {
    const AbsTraceTask task = [&](PowerSimulator& sim, Rng& rng, int i) {
      return des_tvla_trace(sim, rng, ports, setup, (i % 2) == 0);
    };
    r.tvla = run_tvla_phase(model, cache, setup, differential, task);
  }
  if (setup.with_cpa) {
    const HypothesisFn hyp = des_hypothesis(setup.model, setup.sbox);
    const AbsTraceTask task = [&](PowerSimulator& sim, Rng& rng, int) {
      return des_cpa_trace(sim, rng, ports, setup);
    };
    r.cpa = run_cpa_phase(model, cache, setup, differential, hyp, task);
    if (setup.ge_campaigns > 0) {
      r.ge = run_ge_phase(model, cache, setup, differential, hyp, task);
    }
    if (setup.with_mtd) {
      r.mtd = run_mtd_phase(model, cache, setup, differential, hyp, task);
    }
  }
  r.trace_cache_hits = cache.hits;
  r.trace_cache_misses = cache.misses;
  return r;
}

LeakageReport assess_des_leakage(const Netlist& nl, const CapTable& caps,
                                 bool differential,
                                 const LeakageSetup& setup) {
  PowerSimOptions opts;
  opts.precharge_inputs = differential;
  const CompiledSimModel model(nl, caps, opts);
  return assess_des_leakage(model, differential, setup);
}

LeakageReport assess_tvla_leakage(const CompiledSimModel& model,
                                  bool differential,
                                  const LeakageSetup& setup) {
  Span span("leakage.assess", "leakage");
  span.arg("flow", differential ? "secure" : "regular");
  TraceCache cache = make_cache(setup);
  LeakageReport r = report_shell(model, differential, setup);

  const std::vector<DesBitPorts> lanes =
      input_lanes(model.netlist(), differential);
  // The fixed-class lane pattern, drawn once per assessment from a
  // dedicated stream (constant across traces, deterministic per seed).
  Rng pattern_rng = Rng::stream(setup.seed, kFixedPatternStream);
  std::vector<char> fixed_bits(lanes.size());
  for (char& b : fixed_bits) b = pattern_rng.next_bool() ? 1 : 0;

  const AbsTraceTask task = [&](PowerSimulator& sim, Rng& rng, int i) {
    return generic_tvla_trace(sim, rng, lanes, fixed_bits, setup,
                              (i % 2) == 0);
  };
  r.tvla = run_tvla_phase(model, cache, setup, differential, task);
  r.trace_cache_hits = cache.hits;
  r.trace_cache_misses = cache.misses;
  return r;
}

LeakageReport assess_tvla_leakage(const Netlist& nl, const CapTable& caps,
                                  bool differential,
                                  const LeakageSetup& setup) {
  PowerSimOptions opts;
  opts.precharge_inputs = differential;
  const CompiledSimModel model(nl, caps, opts);
  return assess_tvla_leakage(model, differential, setup);
}

}  // namespace secflow
