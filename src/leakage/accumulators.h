// Numerically stable one-pass statistical accumulators for streaming
// leakage assessment.
//
// Heavy-traffic evaluation streams millions of traces through the
// statistics — nothing here ever holds a trace matrix.  Each accumulator
// keeps O(state) running moments, updated per trace with the Welford
// recurrences (catastrophic-cancellation-free, unlike naive sum /
// sum-of-squares), and supports an exact pairwise merge (Chan et al.) so
// shards accumulated independently combine into the same statistics.
//
// Determinism contract (DESIGN.md §14): callers shard the trace stream
// into fixed-width index ranges (kLeakageShardTraces, independent of the
// thread count), accumulate each shard serially in index order, and merge
// the shard accumulators in ascending shard order.  Both the in-shard
// update order and the merge order are therefore thread-count-invariant,
// which makes every derived statistic bit-identical at any
// SECFLOW_THREADS.
#pragma once

#include <cstdint>
#include <vector>

namespace secflow {

/// Fixed shard width (traces per shard) of the deterministic
/// shard-and-merge scheme.  A constant, never derived from the thread
/// count: thread counts change which worker computes a shard, never the
/// shard boundaries or the merge order.
inline constexpr std::size_t kLeakageShardTraces = 256;

/// Welford running mean / sum of squared deviations of one scalar stream.
struct Moment {
  std::uint64_t n = 0;
  double mean = 0.0;
  double m2 = 0.0;  ///< sum of squared deviations from the mean

  void add(double x);
  /// Fold another accumulator in (Chan et al. pairwise combination).
  void merge(const Moment& o);
  /// Unbiased sample variance m2/(n-1); 0 when n < 2.
  double variance() const;

  bool operator==(const Moment&) const = default;
};

/// Per-sample Welch-t state: fixed-class and random-class moments for
/// every sample point of the trace.
class WelchAccumulator {
 public:
  /// Empty shell (0 samples) so accumulators can live in containers;
  /// usable only as an assignment target.
  WelchAccumulator() = default;
  explicit WelchAccumulator(std::size_t n_samples);

  std::size_t n_samples() const { return fixed_.size(); }
  std::uint64_t n(bool fixed_group) const;

  /// Fold in one trace of the given class (`samples` has n_samples()).
  void add(bool fixed_group, const double* samples);
  void merge(const WelchAccumulator& o);

  /// Welch's t statistic per sample:
  ///   t = (mean_f - mean_r) / sqrt(var_f/n_f + var_r/n_r).
  /// 0 where either class has fewer than 2 traces or both variances
  /// vanish (no evidence either way, not infinite evidence).
  std::vector<double> t_statistic() const;

 private:
  std::vector<Moment> fixed_;
  std::vector<Moment> random_;
};

/// Streaming Pearson-correlation state for CPA: per-sample trace moments,
/// per-guess hypothesis moments, and the (guess x sample) co-moment
/// matrix, all maintained with one-pass pairwise-mergeable recurrences.
/// State is O(guesses * samples) regardless of the trace count.
class CpaAccumulator {
 public:
  /// Empty shell (0 guesses / 0 samples) so accumulators can live in
  /// containers; usable only as an assignment target.
  CpaAccumulator() = default;
  CpaAccumulator(int n_guesses, int n_samples);

  int n_guesses() const { return static_cast<int>(mean_h_.size()); }
  int n_samples() const { return static_cast<int>(mean_t_.size()); }
  std::uint64_t n() const { return n_; }

  /// Fold in one trace: `samples` has n_samples() entries, `hypotheses`
  /// the predicted leakage per key guess (n_guesses() entries).
  void add(const double* samples, const double* hypotheses);
  void merge(const CpaAccumulator& o);

  /// Pearson correlation between guess g's hypothesis and sample s
  /// across every trace folded in so far; 0 when either variance
  /// vanishes or fewer than 2 traces were seen.
  double correlation(int guess, int sample) const;

  /// Per-guess distinguisher score: max over samples of |correlation|.
  std::vector<double> scores() const;

 private:
  std::uint64_t n_ = 0;
  std::vector<double> mean_t_, m2_t_;  ///< per sample
  std::vector<double> mean_h_, m2_h_;  ///< per guess
  std::vector<double> c_;              ///< co-moments, guess-major [g*S + s]
  std::vector<double> dt_old_;         ///< per-sample scratch for add()
};

}  // namespace secflow
