// Fixed-vs-random Welch-t leakage detection (TVLA, Goodwill et al.).
//
// Non-specific test: one trace population encrypts a fixed plaintext, the
// other random plaintexts.  Any sample whose Welch-t statistic between the
// two classes exceeds the detection threshold (|t| > 4.5 by convention)
// betrays data-dependent power draw — evidence of first-order leakage
// without committing to an attack model.  Accumulation uses the same
// fixed-width shard-and-merge scheme as CPA, so the t curve is
// bit-identical at any thread count.
#pragma once

#include <cstddef>
#include <vector>

#include "base/parallel.h"
#include "leakage/accumulators.h"

namespace secflow {

/// One classified trace of a fixed-vs-random campaign.
struct TvlaTrace {
  std::vector<double> samples;
  bool fixed = false;  ///< fixed-plaintext class (else random class)
};

struct TvlaOptions {
  /// Detection threshold on |t| (4.5 is the conventional TVLA bound,
  /// giving ~1e-5 false-positive odds per sample under the null).
  double threshold = 4.5;
  Parallelism parallelism;
};

/// Accumulate every trace into per-sample two-class Welch state (sharded,
/// merged in deterministic order).  Throws Error on empty input or ragged
/// traces.
WelchAccumulator accumulate_tvla(const std::vector<TvlaTrace>& traces,
                                 const TvlaOptions& opts);

/// max_s |t(s)| of an accumulated campaign (0 when degenerate).
double tvla_max_abs_t(const WelchAccumulator& acc);

/// Sample indices whose |t| exceeds the threshold.
std::vector<std::size_t> tvla_leaky_samples(const WelchAccumulator& acc,
                                            double threshold);

}  // namespace secflow
