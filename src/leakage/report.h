// The machine-readable leakage-assessment report.
//
// One JSON document per assessment carrying every statistic the engine
// produced: the fixed-vs-random TVLA verdict, the CPA key ranking,
// success-rate / guessing-entropy curves over repeated sub-campaigns, and
// the measurements-to-disclosure estimate.  `secflow_cli leakage --out`
// dumps it, CI archives it, and attach_leakage folds a digest into the
// flow report so campaign aggregation sees the verdicts without parsing a
// second document.  Schema identifier: "secflow.leakage-report/1";
// validate/parse follow the flow-report conventions (optional sections
// are null-or-object, strict type checks, Error naming the first
// violation).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/report.h"

namespace secflow {

inline constexpr const char* kLeakageReportSchema =
    "secflow.leakage-report/1";

/// Fixed-vs-random Welch-t verdict.
struct TvlaSummary {
  bool present = false;
  std::int64_t n_fixed = 0;
  std::int64_t n_random = 0;
  std::int64_t n_samples = 0;
  double threshold = 4.5;
  double max_abs_t = 0.0;
  std::int64_t leaky_samples = 0;  ///< samples with |t| > threshold
  bool leaks = false;

  bool operator==(const TvlaSummary&) const = default;
};

/// CPA key-recovery verdict at the full trace budget.
struct CpaSummary {
  bool present = false;
  std::string model;  ///< "hw" | "hd"
  std::int64_t n_traces = 0;
  std::int64_t best_guess = -1;
  double best_score = 0.0;
  double runner_up_score = 0.0;
  std::int64_t correct_key = -1;
  std::int64_t correct_rank = 0;  ///< 1 = recovered
  bool disclosed = false;

  bool operator==(const CpaSummary&) const = default;
};

/// Success-rate and guessing-entropy curves over repeated independent
/// sub-campaigns (disjoint Rng streams).
struct GeSummary {
  bool present = false;
  std::int64_t n_campaigns = 0;
  std::vector<std::int64_t> trace_grid;   ///< trace counts sampled
  std::vector<double> guessing_entropy;   ///< mean correct-key rank
  std::vector<double> success_rate;       ///< fraction with rank 1

  bool operator==(const GeSummary&) const = default;
};

/// Measurements-to-disclosure estimate with the checkpoint trajectory.
struct MtdSummary {
  bool present = false;
  std::int64_t mtd = -1;  ///< -1 = hidden at max_traces
  std::int64_t max_traces = 0;
  std::int64_t step = 0;
  std::int64_t persist = 0;
  std::int64_t traces_fed = 0;
  bool disclosed = false;
  std::vector<std::int64_t> checkpoints;
  std::vector<std::int64_t> ranks;

  bool operator==(const MtdSummary&) const = default;
};

struct LeakageReport {
  std::string schema = kLeakageReportSchema;
  std::string flow;    ///< "regular" | "secure"
  std::string design;
  std::int64_t seed = 0;
  std::int64_t n_threads = 1;
  double noise_ma = 0.0;

  TvlaSummary tvla;
  CpaSummary cpa;
  GeSummary ge;
  MtdSummary mtd;

  std::int64_t trace_cache_hits = 0;
  std::int64_t trace_cache_misses = 0;

  bool operator==(const LeakageReport&) const = default;
};

/// The report as pretty-printed JSON (ends with a newline).
std::string leakage_report_json(const LeakageReport& r);

/// Inverse of leakage_report_json; validates first.
LeakageReport parse_leakage_report(const std::string& json);

/// The report as a JSON document — what leakage_report_json serializes.
JsonValue leakage_report_to_json(const LeakageReport& r);

/// Inverse of leakage_report_to_json; validates against the schema first.
LeakageReport leakage_report_from_json(const JsonValue& doc);

/// Check a parsed document against the secflow.leakage-report/1 schema.
/// Throws Error naming the first violation.
void validate_leakage_report(const JsonValue& doc);

/// Fold the assessment digest into a flow report's leakage section.
void attach_leakage(FlowReport& flow, const LeakageReport& r);

}  // namespace secflow
