// Correlation power analysis (Brier et al.) as a streaming engine.
//
// Each measurement carries the recorded supply-current samples plus the
// two ciphertext observables (target and previous encryption) a
// Hamming-weight or Hamming-distance hypothesis needs.  accumulate_cpa
// shards the measurements into fixed-width index ranges, folds each shard
// serially into its own CpaAccumulator on the shared thread pool, and
// merges the shards in ascending order — bit-identical statistics at any
// SECFLOW_THREADS (see leakage/accumulators.h for the contract).
//
// cpa_ranking turns the accumulated co-moments into the per-guess
// distinguisher scores and key ranking; estimate_mtd feeds traces
// incrementally through a private accumulator and stops early once
// disclosure has persisted, giving the measurements-to-disclosure figure
// without simulating the full budget.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "base/parallel.h"
#include "leakage/accumulators.h"
#include "sca/selection.h"

namespace secflow {

/// One CPA measurement: trace samples plus the attacker's observables.
struct CpaMeasurement {
  std::vector<double> samples;
  std::uint32_t ct = 0;       ///< packed ciphertext of this encryption
  std::uint32_t prev_ct = 0;  ///< packed ciphertext of the previous one
};

struct CpaOptions {
  int n_guesses = kDesKeyGuesses;
  /// Disclosure requires the best guess to beat the runner-up score by
  /// this relative margin (same convention as DpaOptions::margin).
  double margin = 0.05;
  /// Shard accumulation parallelism; results are bit-identical for any
  /// thread count.
  Parallelism parallelism;
};

/// Accumulate every measurement under `hypothesis` (sharded, merged in
/// deterministic order).  Throws Error on empty input or ragged traces.
CpaAccumulator accumulate_cpa(const std::vector<CpaMeasurement>& traces,
                              const HypothesisFn& hypothesis,
                              const CpaOptions& opts);

/// The distinguisher verdict of an accumulated campaign.
struct CpaRanking {
  std::vector<double> scores;  ///< per guess: max_s |rho|
  int best_guess = -1;
  double best_score = 0.0;
  double runner_up_score = 0.0;  ///< best score among the other guesses

  /// 1-based rank of `guess`: 1 + the number of strictly better guesses
  /// (+ equal-scored guesses with a smaller index, so ranks are a
  /// deterministic permutation).
  int rank_of(int guess) const;
  double score_of(int guess) const {
    return scores[static_cast<std::size_t>(guess)];
  }
  /// Correct key ranked first, beating the runner-up by the margin.
  bool disclosed(std::uint32_t correct_key, double margin) const;
};

CpaRanking cpa_ranking(const CpaAccumulator& acc);

/// Produces the measurements for trace indices [begin, end) — from the
/// simulator, a checkpoint cache, or disk.  Indices are absolute, so a
/// feeder backed by Rng::stream(seed, i) yields the same trace for index
/// i regardless of the batch boundaries it is called with.
using TraceFeeder =
    std::function<std::vector<CpaMeasurement>(int begin, int end)>;

struct MtdOptions {
  int max_traces = 2000;  ///< give up (key hidden) beyond this budget
  int step = 100;         ///< feed/check granularity
  /// Early stop once disclosure has held for this many consecutive
  /// checkpoints.  Disclosure still reaching the last checkpoint counts
  /// (the existing DPA grid semantics); a run broken before either bound
  /// resets.
  int persist = 3;
  double margin = 0.05;
};

struct MtdResult {
  /// Smallest checked trace count from which disclosure persisted;
  /// -1 when the key is still hidden at max_traces (MTD > max_traces).
  int mtd = -1;
  int traces_fed = 0;  ///< traces consumed before the early stop / budget
  bool disclosed = false;
  std::vector<int> checkpoints;  ///< every checked trace count
  std::vector<int> ranks;        ///< correct-key rank at each checkpoint
};

/// Incremental MTD estimation: feed `step` traces at a time into a
/// streaming accumulator, rank after each batch, stop early once
/// disclosure persisted `persist` checkpoints.
MtdResult estimate_mtd(const TraceFeeder& feeder,
                       const HypothesisFn& hypothesis,
                       std::uint32_t correct_key, const MtdOptions& mtd,
                       const CpaOptions& opts = {});

/// True when `later` dominates `earlier` as an MTD figure: -1 (hidden at
/// budget `later_budget`) dominates any disclosed count within the
/// budget; otherwise plain >.
bool mtd_exceeds(int later, int later_budget, int earlier);

}  // namespace secflow
