#include "leakage/report.h"

#include <utility>

#include "base/error.h"

namespace secflow {
namespace {

/// Required typed member access with schema-style error messages.
const JsonValue& member(const JsonValue& obj, std::string_view key,
                        JsonValue::Kind kind, const char* where) {
  const JsonValue* v = obj.find(key);
  SECFLOW_CHECK(v != nullptr, std::string("leakage report: ") + where +
                                  " lacks required member '" +
                                  std::string(key) + "'");
  SECFLOW_CHECK(v->kind() == kind, std::string("leakage report: ") + where +
                                       " member '" + std::string(key) +
                                       "' has the wrong type");
  return *v;
}

double num(const JsonValue& obj, std::string_view key, const char* where) {
  return member(obj, key, JsonValue::Kind::kNumber, where).as_number();
}

std::int64_t integer(const JsonValue& obj, std::string_view key,
                     const char* where) {
  return static_cast<std::int64_t>(num(obj, key, where));
}

std::string str(const JsonValue& obj, std::string_view key,
                const char* where) {
  return member(obj, key, JsonValue::Kind::kString, where).as_string();
}

bool boolean(const JsonValue& obj, std::string_view key, const char* where) {
  return member(obj, key, JsonValue::Kind::kBool, where).as_bool();
}

/// An optional section: required member that is null or an object.
const JsonValue* section(const JsonValue& doc, std::string_view key) {
  const JsonValue* v = doc.find(key);
  SECFLOW_CHECK(v != nullptr, "leakage report: document lacks required "
                              "member '" + std::string(key) + "'");
  SECFLOW_CHECK(v->is_null() || v->is_object(),
                "leakage report: '" + std::string(key) +
                    "' must be null or an object");
  return v;
}

template <typename T>
JsonValue num_array(const std::vector<T>& xs) {
  JsonValue a = JsonValue::array();
  for (const T& x : xs) a.push_back(x);
  return a;
}

std::vector<std::int64_t> int_array(const JsonValue& obj,
                                    std::string_view key, const char* where) {
  std::vector<std::int64_t> out;
  for (const JsonValue& v :
       member(obj, key, JsonValue::Kind::kArray, where).items()) {
    SECFLOW_CHECK(v.is_number(), std::string("leakage report: ") + where +
                                     " member '" + std::string(key) +
                                     "' has a non-number element");
    out.push_back(static_cast<std::int64_t>(v.as_number()));
  }
  return out;
}

std::vector<double> double_array(const JsonValue& obj, std::string_view key,
                                 const char* where) {
  std::vector<double> out;
  for (const JsonValue& v :
       member(obj, key, JsonValue::Kind::kArray, where).items()) {
    SECFLOW_CHECK(v.is_number(), std::string("leakage report: ") + where +
                                     " member '" + std::string(key) +
                                     "' has a non-number element");
    out.push_back(v.as_number());
  }
  return out;
}

}  // namespace

std::string leakage_report_json(const LeakageReport& r) {
  return json_dump(leakage_report_to_json(r), 2) + "\n";
}

JsonValue leakage_report_to_json(const LeakageReport& r) {
  JsonValue doc = JsonValue::object();
  doc.set("schema", r.schema);
  doc.set("flow", r.flow);
  doc.set("design", r.design);
  doc.set("seed", r.seed);
  doc.set("n_threads", r.n_threads);
  doc.set("noise_ma", r.noise_ma);

  if (r.tvla.present) {
    JsonValue t = JsonValue::object();
    t.set("n_fixed", r.tvla.n_fixed);
    t.set("n_random", r.tvla.n_random);
    t.set("n_samples", r.tvla.n_samples);
    t.set("threshold", r.tvla.threshold);
    t.set("max_abs_t", r.tvla.max_abs_t);
    t.set("leaky_samples", r.tvla.leaky_samples);
    t.set("leaks", r.tvla.leaks);
    doc.set("tvla", std::move(t));
  } else {
    doc.set("tvla", JsonValue());
  }

  if (r.cpa.present) {
    JsonValue c = JsonValue::object();
    c.set("model", r.cpa.model);
    c.set("n_traces", r.cpa.n_traces);
    c.set("best_guess", r.cpa.best_guess);
    c.set("best_score", r.cpa.best_score);
    c.set("runner_up_score", r.cpa.runner_up_score);
    c.set("correct_key", r.cpa.correct_key);
    c.set("correct_rank", r.cpa.correct_rank);
    c.set("disclosed", r.cpa.disclosed);
    doc.set("cpa", std::move(c));
  } else {
    doc.set("cpa", JsonValue());
  }

  if (r.ge.present) {
    JsonValue g = JsonValue::object();
    g.set("n_campaigns", r.ge.n_campaigns);
    g.set("trace_grid", num_array(r.ge.trace_grid));
    g.set("guessing_entropy", num_array(r.ge.guessing_entropy));
    g.set("success_rate", num_array(r.ge.success_rate));
    doc.set("guessing_entropy", std::move(g));
  } else {
    doc.set("guessing_entropy", JsonValue());
  }

  if (r.mtd.present) {
    JsonValue m = JsonValue::object();
    m.set("mtd", r.mtd.mtd);
    m.set("max_traces", r.mtd.max_traces);
    m.set("step", r.mtd.step);
    m.set("persist", r.mtd.persist);
    m.set("traces_fed", r.mtd.traces_fed);
    m.set("disclosed", r.mtd.disclosed);
    m.set("checkpoints", num_array(r.mtd.checkpoints));
    m.set("ranks", num_array(r.mtd.ranks));
    doc.set("mtd", std::move(m));
  } else {
    doc.set("mtd", JsonValue());
  }

  JsonValue cache = JsonValue::object();
  cache.set("hits", r.trace_cache_hits);
  cache.set("misses", r.trace_cache_misses);
  doc.set("trace_cache", std::move(cache));
  return doc;
}

void validate_leakage_report(const JsonValue& doc) {
  SECFLOW_CHECK(doc.is_object(),
                "leakage report: document is not an object");
  const std::string schema = str(doc, "schema", "document");
  SECFLOW_CHECK(schema == kLeakageReportSchema,
                "leakage report: unknown schema '" + schema + "' (want " +
                    kLeakageReportSchema + ")");
  const std::string flow = str(doc, "flow", "document");
  SECFLOW_CHECK(flow == "regular" || flow == "secure",
                "leakage report: flow must be 'regular' or 'secure', got '" +
                    flow + "'");
  str(doc, "design", "document");
  num(doc, "seed", "document");
  num(doc, "n_threads", "document");
  num(doc, "noise_ma", "document");

  const JsonValue* tvla = section(doc, "tvla");
  if (tvla->is_object()) {
    num(*tvla, "n_fixed", "tvla");
    num(*tvla, "n_random", "tvla");
    num(*tvla, "n_samples", "tvla");
    num(*tvla, "threshold", "tvla");
    num(*tvla, "max_abs_t", "tvla");
    num(*tvla, "leaky_samples", "tvla");
    boolean(*tvla, "leaks", "tvla");
  }

  const JsonValue* cpa = section(doc, "cpa");
  if (cpa->is_object()) {
    const std::string model = str(*cpa, "model", "cpa");
    SECFLOW_CHECK(model == "hw" || model == "hd",
                  "leakage report: cpa model must be 'hw' or 'hd', got '" +
                      model + "'");
    num(*cpa, "n_traces", "cpa");
    num(*cpa, "best_guess", "cpa");
    num(*cpa, "best_score", "cpa");
    num(*cpa, "runner_up_score", "cpa");
    num(*cpa, "correct_key", "cpa");
    const std::int64_t rank = integer(*cpa, "correct_rank", "cpa");
    SECFLOW_CHECK(rank >= 1, "leakage report: cpa correct_rank must be >= 1");
    boolean(*cpa, "disclosed", "cpa");
  }

  const JsonValue* ge = section(doc, "guessing_entropy");
  if (ge->is_object()) {
    const std::int64_t k = integer(*ge, "n_campaigns", "guessing_entropy");
    SECFLOW_CHECK(k >= 1,
                  "leakage report: guessing_entropy needs >= 1 campaign");
    const auto grid = int_array(*ge, "trace_grid", "guessing_entropy");
    const auto gent = double_array(*ge, "guessing_entropy",
                                   "guessing_entropy");
    const auto sr = double_array(*ge, "success_rate", "guessing_entropy");
    SECFLOW_CHECK(grid.size() == gent.size() && grid.size() == sr.size(),
                  "leakage report: guessing_entropy curve length mismatch");
    for (double v : sr) {
      SECFLOW_CHECK(v >= 0.0 && v <= 1.0,
                    "leakage report: success_rate outside [0, 1]");
    }
  }

  const JsonValue* mtd = section(doc, "mtd");
  if (mtd->is_object()) {
    const std::int64_t value = integer(*mtd, "mtd", "mtd");
    const std::int64_t max_traces = integer(*mtd, "max_traces", "mtd");
    SECFLOW_CHECK(value == -1 || (value >= 1 && value <= max_traces),
                  "leakage report: mtd must be -1 or within [1, max_traces]");
    num(*mtd, "step", "mtd");
    num(*mtd, "persist", "mtd");
    num(*mtd, "traces_fed", "mtd");
    boolean(*mtd, "disclosed", "mtd");
    const auto cps = int_array(*mtd, "checkpoints", "mtd");
    const auto ranks = int_array(*mtd, "ranks", "mtd");
    SECFLOW_CHECK(cps.size() == ranks.size(),
                  "leakage report: mtd checkpoints/ranks length mismatch");
  }

  const JsonValue& cache =
      member(doc, "trace_cache", JsonValue::Kind::kObject, "document");
  num(cache, "hits", "trace_cache");
  num(cache, "misses", "trace_cache");
}

LeakageReport parse_leakage_report(const std::string& json) {
  return leakage_report_from_json(json_parse(json));
}

LeakageReport leakage_report_from_json(const JsonValue& doc) {
  validate_leakage_report(doc);

  LeakageReport r;
  r.schema = str(doc, "schema", "document");
  r.flow = str(doc, "flow", "document");
  r.design = str(doc, "design", "document");
  r.seed = integer(doc, "seed", "document");
  r.n_threads = integer(doc, "n_threads", "document");
  r.noise_ma = num(doc, "noise_ma", "document");

  const JsonValue* tvla = doc.find("tvla");
  if (tvla->is_object()) {
    r.tvla.present = true;
    r.tvla.n_fixed = integer(*tvla, "n_fixed", "tvla");
    r.tvla.n_random = integer(*tvla, "n_random", "tvla");
    r.tvla.n_samples = integer(*tvla, "n_samples", "tvla");
    r.tvla.threshold = num(*tvla, "threshold", "tvla");
    r.tvla.max_abs_t = num(*tvla, "max_abs_t", "tvla");
    r.tvla.leaky_samples = integer(*tvla, "leaky_samples", "tvla");
    r.tvla.leaks = boolean(*tvla, "leaks", "tvla");
  }

  const JsonValue* cpa = doc.find("cpa");
  if (cpa->is_object()) {
    r.cpa.present = true;
    r.cpa.model = str(*cpa, "model", "cpa");
    r.cpa.n_traces = integer(*cpa, "n_traces", "cpa");
    r.cpa.best_guess = integer(*cpa, "best_guess", "cpa");
    r.cpa.best_score = num(*cpa, "best_score", "cpa");
    r.cpa.runner_up_score = num(*cpa, "runner_up_score", "cpa");
    r.cpa.correct_key = integer(*cpa, "correct_key", "cpa");
    r.cpa.correct_rank = integer(*cpa, "correct_rank", "cpa");
    r.cpa.disclosed = boolean(*cpa, "disclosed", "cpa");
  }

  const JsonValue* ge = doc.find("guessing_entropy");
  if (ge->is_object()) {
    r.ge.present = true;
    r.ge.n_campaigns = integer(*ge, "n_campaigns", "guessing_entropy");
    r.ge.trace_grid = int_array(*ge, "trace_grid", "guessing_entropy");
    r.ge.guessing_entropy =
        double_array(*ge, "guessing_entropy", "guessing_entropy");
    r.ge.success_rate = double_array(*ge, "success_rate", "guessing_entropy");
  }

  const JsonValue* mtd = doc.find("mtd");
  if (mtd->is_object()) {
    r.mtd.present = true;
    r.mtd.mtd = integer(*mtd, "mtd", "mtd");
    r.mtd.max_traces = integer(*mtd, "max_traces", "mtd");
    r.mtd.step = integer(*mtd, "step", "mtd");
    r.mtd.persist = integer(*mtd, "persist", "mtd");
    r.mtd.traces_fed = integer(*mtd, "traces_fed", "mtd");
    r.mtd.disclosed = boolean(*mtd, "disclosed", "mtd");
    r.mtd.checkpoints = int_array(*mtd, "checkpoints", "mtd");
    r.mtd.ranks = int_array(*mtd, "ranks", "mtd");
  }

  const JsonValue& cache =
      member(doc, "trace_cache", JsonValue::Kind::kObject, "document");
  r.trace_cache_hits = integer(cache, "hits", "trace_cache");
  r.trace_cache_misses = integer(cache, "misses", "trace_cache");
  return r;
}

void attach_leakage(FlowReport& flow, const LeakageReport& r) {
  LeakageSection& s = flow.leakage;
  s.present = true;
  s.model = r.cpa.present ? r.cpa.model : "";
  s.cpa_traces = r.cpa.n_traces;
  s.cpa_best_guess = r.cpa.best_guess;
  s.cpa_correct_rank = r.cpa.correct_rank;
  s.cpa_disclosed = r.cpa.disclosed;
  s.tvla_max_abs_t = r.tvla.max_abs_t;
  s.tvla_leaks = r.tvla.leaky_samples;
  s.mtd = r.mtd.present ? r.mtd.mtd : -1;
  s.mtd_max_traces = r.mtd.max_traces;
}

}  // namespace secflow
