#include "leakage/cpa.h"

#include <algorithm>
#include <utility>

#include "base/error.h"

namespace secflow {
namespace {

// Fold traces [begin, end) serially in index order into a fresh
// accumulator.  Shared by the sharded batch path and the streaming MTD
// path so both produce the same in-shard update order.
CpaAccumulator accumulate_shard(const std::vector<CpaMeasurement>& traces,
                                std::size_t begin, std::size_t end,
                                const HypothesisFn& hypothesis,
                                int n_guesses, int n_samples) {
  CpaAccumulator acc(n_guesses, n_samples);
  std::vector<double> hyp(static_cast<std::size_t>(n_guesses));
  for (std::size_t i = begin; i < end; ++i) {
    const CpaMeasurement& m = traces[i];
    SECFLOW_CHECK(m.samples.size() == static_cast<std::size_t>(n_samples),
                  "CPA trace " + std::to_string(i) + ": " +
                      std::to_string(m.samples.size()) +
                      " samples, expected " + std::to_string(n_samples));
    for (int g = 0; g < n_guesses; ++g) {
      hyp[static_cast<std::size_t>(g)] =
          hypothesis(m.ct, m.prev_ct, static_cast<std::uint32_t>(g));
    }
    acc.add(m.samples.data(), hyp.data());
  }
  return acc;
}

}  // namespace

CpaAccumulator accumulate_cpa(const std::vector<CpaMeasurement>& traces,
                              const HypothesisFn& hypothesis,
                              const CpaOptions& opts) {
  SECFLOW_CHECK(!traces.empty(), "CPA: no traces to accumulate");
  SECFLOW_CHECK(opts.n_guesses > 1, "CPA needs at least 2 key guesses");
  const int n_samples = static_cast<int>(traces.front().samples.size());
  SECFLOW_CHECK(n_samples > 0, "CPA: empty trace");

  const std::size_t n_shards =
      (traces.size() + kLeakageShardTraces - 1) / kLeakageShardTraces;
  std::vector<CpaAccumulator> shards = parallel_map(
      n_shards, opts.parallelism, [&](std::size_t shard) {
        const std::size_t begin = shard * kLeakageShardTraces;
        const std::size_t end =
            std::min(begin + kLeakageShardTraces, traces.size());
        return accumulate_shard(traces, begin, end, hypothesis,
                                opts.n_guesses, n_samples);
      });
  // Serial ascending-order merge: the reduction tree never depends on the
  // thread count, so the result is bit-identical at any SECFLOW_THREADS.
  CpaAccumulator total = std::move(shards.front());
  for (std::size_t i = 1; i < shards.size(); ++i) total.merge(shards[i]);
  return total;
}

int CpaRanking::rank_of(int guess) const {
  const double mine = scores[static_cast<std::size_t>(guess)];
  int rank = 1;
  for (std::size_t g = 0; g < scores.size(); ++g) {
    if (static_cast<int>(g) == guess) continue;
    if (scores[g] > mine ||
        (scores[g] == mine && static_cast<int>(g) < guess)) {
      ++rank;
    }
  }
  return rank;
}

bool CpaRanking::disclosed(std::uint32_t correct_key, double margin) const {
  if (best_guess != static_cast<int>(correct_key)) return false;
  return best_score > runner_up_score * (1.0 + margin);
}

CpaRanking cpa_ranking(const CpaAccumulator& acc) {
  CpaRanking r;
  r.scores = acc.scores();
  for (std::size_t g = 0; g < r.scores.size(); ++g) {
    if (r.best_guess < 0 || r.scores[g] > r.best_score) {
      r.best_guess = static_cast<int>(g);
      r.best_score = r.scores[g];
    }
  }
  for (std::size_t g = 0; g < r.scores.size(); ++g) {
    if (static_cast<int>(g) == r.best_guess) continue;
    r.runner_up_score = std::max(r.runner_up_score, r.scores[g]);
  }
  return r;
}

MtdResult estimate_mtd(const TraceFeeder& feeder,
                       const HypothesisFn& hypothesis,
                       std::uint32_t correct_key, const MtdOptions& mtd,
                       const CpaOptions& opts) {
  SECFLOW_CHECK(mtd.step > 0, "MTD step must be positive");
  SECFLOW_CHECK(mtd.max_traces >= mtd.step,
                "MTD budget smaller than one step");
  SECFLOW_CHECK(mtd.persist > 0, "MTD persist must be positive");

  MtdResult out;
  CpaAccumulator acc;  // shaped on the first batch
  bool have_shape = false;
  int run_start = -1;  // trace count where the current disclosure run began
  int run_len = 0;
  for (int fed = 0; fed < mtd.max_traces;) {
    const int begin = fed;
    const int end = std::min(fed + mtd.step, mtd.max_traces);
    std::vector<CpaMeasurement> batch = feeder(begin, end);
    SECFLOW_CHECK(static_cast<int>(batch.size()) == end - begin,
                  "MTD feeder returned " + std::to_string(batch.size()) +
                      " traces for [" + std::to_string(begin) + ", " +
                      std::to_string(end) + ")");
    if (!have_shape) {
      SECFLOW_CHECK(!batch.front().samples.empty(), "MTD: empty trace");
      acc = CpaAccumulator(opts.n_guesses,
                           static_cast<int>(batch.front().samples.size()));
      have_shape = true;
    }
    // Streaming: each batch is folded via the same shard machinery, then
    // merged onto the running total in arrival (= index) order.
    CpaAccumulator batch_acc =
        accumulate_cpa(batch, hypothesis, opts);
    acc.merge(batch_acc);
    fed = end;
    out.traces_fed = fed;

    const CpaRanking ranking = cpa_ranking(acc);
    out.checkpoints.push_back(fed);
    out.ranks.push_back(ranking.rank_of(static_cast<int>(correct_key)));
    if (ranking.disclosed(correct_key, mtd.margin)) {
      if (run_len == 0) run_start = fed;
      ++run_len;
      if (run_len >= mtd.persist) {
        out.mtd = run_start;
        out.disclosed = true;
        return out;  // early stop: no need to burn the remaining budget
      }
    } else {
      run_len = 0;
      run_start = -1;
    }
  }
  // Disclosure held through the final checkpoint without reaching the
  // persist count: credit the run (the budget cut it short), matching the
  // DPA persist-to-grid-end semantics.
  if (run_len > 0) {
    out.mtd = run_start;
    out.disclosed = true;
  }
  return out;
}

bool mtd_exceeds(int later, int later_budget, int earlier) {
  if (earlier < 0) return false;  // earlier already hidden: nothing beats it
  if (later < 0) return later_budget >= earlier;
  return later > earlier;
}

}  // namespace secflow
