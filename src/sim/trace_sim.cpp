#include "sim/trace_sim.h"

#include "base/error.h"

namespace secflow {

std::vector<SimTrace> simulate_traces(const Netlist& nl, const CapTable& caps,
                                      const PowerSimOptions& opts,
                                      int n_traces, std::uint64_t master_seed,
                                      const TraceTask& task,
                                      const Parallelism& par) {
  SECFLOW_CHECK(n_traces >= 0, "negative trace count");
  SECFLOW_CHECK(task != nullptr, "simulate_traces needs a task");
  return parallel_map(
      static_cast<std::size_t>(n_traces), par, [&](std::size_t i) {
        PowerSimulator sim(nl, caps, opts);
        Rng rng = Rng::stream(master_seed, static_cast<std::uint64_t>(i));
        return task(sim, rng, static_cast<int>(i));
      });
}

}  // namespace secflow
