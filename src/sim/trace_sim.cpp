#include "sim/trace_sim.h"

#include "base/error.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace secflow {

std::vector<SimTrace> simulate_traces(const CompiledSimModel& model,
                                      int n_traces, std::uint64_t master_seed,
                                      const TraceTask& task,
                                      const Parallelism& par) {
  SECFLOW_CHECK(n_traces >= 0, "negative trace count");
  SECFLOW_CHECK(task != nullptr, "simulate_traces needs a task");
  std::vector<SimTrace> out(static_cast<std::size_t>(n_traces));
  parallel_for(
      static_cast<std::size_t>(n_traces), par,
      [&](std::size_t begin, std::size_t end) {
        // One span per claimed chunk: each worker's claimed ranges show as
        // blocks on its own track in the trace viewer.
        Span span("sim.trace_chunk", "sim");
        span.arg("begin", static_cast<std::uint64_t>(begin));
        span.arg("end", static_cast<std::uint64_t>(end));
        // One simulator per chunk; reset() restores the power-up state
        // between traces, so trace i is independent of chunk boundaries.
        PowerSimulator sim(model);
        for (std::size_t i = begin; i < end; ++i) {
          if (i != begin) sim.reset();
          Rng rng = Rng::stream(master_seed, static_cast<std::uint64_t>(i));
          out[i] = task(sim, rng, static_cast<int>(i));
        }
        Metrics::global().add("sim.traces",
                              static_cast<std::uint64_t>(end - begin));
      });
  return out;
}

std::vector<SimTrace> simulate_traces(const Netlist& nl, const CapTable& caps,
                                      const PowerSimOptions& opts,
                                      int n_traces, std::uint64_t master_seed,
                                      const TraceTask& task,
                                      const Parallelism& par) {
  const CompiledSimModel model(nl, caps, opts);
  return simulate_traces(model, n_traces, master_seed, task, par);
}

}  // namespace secflow
