// Compile-once / simulate-many power-simulation model.
//
// Bulk workloads (DPA campaigns, fuzz oracles, energy tables) simulate
// thousands of independent traces of the *same* netlist.  Everything that
// depends only on (netlist, extracted caps, options) is resolved once into
// an immutable CompiledSimModel:
//
//   * per-net switched-capacitance constants — resolved cap, supply charge
//     per rising edge, booked energy, current-pulse time constant, and the
//     per-sample-bin exponential decay factor (one std::exp per net at
//     build time instead of two per sample bin per event at run time);
//   * a CSR fanout adjacency from each net to its combinational sink
//     gates, each gate carrying its resolved output net, flattened input
//     net indices, truth table, and load-dependent delay;
//   * flop lists split by capture edge with resolved D/Q nets;
//   * the resolved clock port/net and the list of data-input ports;
//   * sampling constants (sample period, samples per cycle).
//
// PowerSimulator then holds only cheap mutable trace state and borrows a
// `const CompiledSimModel&`; the model is safe to share across any number
// of simulators on any number of threads (it is never written after
// construction).  The model borrows the Netlist, which must outlive it.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "base/units.h"
#include "netlist/logic_fn.h"
#include "netlist/netlist.h"

namespace secflow {

using CapTable = std::unordered_map<std::string, double>;  // net -> fF

struct PowerSimOptions {
  SamplingSpec sampling;
  Process018 process;
  /// Data input arrival time after the active edge [ps].
  double input_delay_ps = 100.0;
  /// Minimum current-pulse time constant [ps].
  double min_tau_ps = 30.0;
  /// Drive all data input ports to 0 at the falling edge (WDDL mode).
  bool precharge_inputs = false;
  /// Delay from the ideal clock edge to the clock *net* transition seen by
  /// gates (clock-tree insertion delay).  Must exceed the flop clk->q
  /// delay so WDDL output AND gates open on the new slave value.
  double clock_net_delay_ps = 250.0;
};

class CompiledSimModel {
 public:
  /// Build the model once for (netlist, caps, options).  `caps` is taken
  /// by reference and only read during construction — no copy is kept;
  /// `nl` is borrowed and must outlive the model.
  CompiledSimModel(const Netlist& nl, const CapTable& caps,
                   const PowerSimOptions& opts = {});

  const Netlist& netlist() const { return *nl_; }
  const PowerSimOptions& options() const { return opts_; }

  // --- resolved clock and ports --------------------------------------------
  PortId clock_port() const { return clock_port_; }
  NetId clock_net() const { return clock_net_; }
  /// True for input ports the testbench may drive (input dir, not the
  /// clock).  Index-based: no name lookup.
  bool is_data_input(PortId pid) const {
    return data_input_flag_[pid.index()] != 0;
  }
  struct DataInput {
    PortId port;
    NetId net;
  };
  const std::vector<DataInput>& data_inputs() const { return data_inputs_; }

  // --- per-net power constants ---------------------------------------------
  double net_cap_ff(NetId id) const { return net_cap_ff_[id.index()]; }
  /// Supply charge drawn by a rising transition [fC]: (C_net + C_internal
  /// of the driver) * VDD.
  double charge_fc(std::size_t net_idx) const { return charge_fc_[net_idx]; }
  /// Energy booked per rising transition [pJ].
  double rise_energy_pj(std::size_t net_idx) const {
    return rise_energy_pj_[net_idx];
  }
  /// Current-pulse time constant [ps]: max(min_tau, R_drive * C_net).
  double tau_ps(std::size_t net_idx) const { return tau_ps_[net_idx]; }
  /// exp(-sample_dt / tau): the per-sample-bin decay of the pulse.
  double bin_decay(std::size_t net_idx) const { return bin_decay_[net_idx]; }

  // --- sampling constants ---------------------------------------------------
  double sample_dt_ps() const { return sample_dt_ps_; }
  int samples_per_cycle() const { return samples_per_cycle_; }
  double nominal_period_ps() const { return nominal_period_ps_; }

  // --- compiled combinational gates + CSR fanout adjacency -----------------
  struct Gate {
    std::int32_t out_net = -1;      ///< output net index
    std::int32_t first_input = 0;   ///< offset into gate_input_nets()
    std::int32_t n_inputs = 0;
    double delay_ps = 0.0;          ///< intrinsic + R_drive * C(out)
    LogicFn fn;
  };
  const std::vector<Gate>& gates() const { return gates_; }
  const std::int32_t* gate_input_nets(const Gate& g) const {
    return gate_input_nets_.data() + g.first_input;
  }
  /// Compiled-gate ids of the combinational sinks of a net (CSR row).
  struct SinkRange {
    const std::int32_t* begin_;
    const std::int32_t* end_;
    const std::int32_t* begin() const { return begin_; }
    const std::int32_t* end() const { return end_; }
  };
  SinkRange sinks_of(std::size_t net_idx) const {
    return {net_sinks_.data() + net_sink_offset_[net_idx],
            net_sinks_.data() + net_sink_offset_[net_idx + 1]};
  }

  // --- flops, split by capture edge ----------------------------------------
  struct Flop {
    InstId inst;            ///< index for flop-state storage
    NetId d;                ///< D input net (always valid; checked at build)
    NetId q;                ///< Q output net (invalid = unconnected)
    double clk_to_q_ps = 0.0;
    LogicFn fn;             ///< D -> captured-state function
  };
  const std::vector<Flop>& flops(bool rising_edge) const {
    return rising_edge ? posedge_flops_ : negedge_flops_;
  }

  std::size_t n_nets() const { return net_cap_ff_.size(); }
  std::size_t n_instances() const { return nl_->n_instances(); }
  std::size_t n_ports() const { return nl_->n_ports(); }

 private:
  const Netlist* nl_;
  PowerSimOptions opts_;

  PortId clock_port_;
  NetId clock_net_;
  std::vector<char> data_input_flag_;
  std::vector<DataInput> data_inputs_;

  std::vector<double> net_cap_ff_;
  std::vector<double> charge_fc_;
  std::vector<double> rise_energy_pj_;
  std::vector<double> tau_ps_;
  std::vector<double> bin_decay_;

  double sample_dt_ps_ = 0.0;
  int samples_per_cycle_ = 0;
  double nominal_period_ps_ = 0.0;

  std::vector<Gate> gates_;
  std::vector<std::int32_t> gate_input_nets_;
  std::vector<std::int32_t> net_sink_offset_;  ///< n_nets + 1 entries
  std::vector<std::int32_t> net_sinks_;

  std::vector<Flop> posedge_flops_;
  std::vector<Flop> negedge_flops_;
};

}  // namespace secflow
