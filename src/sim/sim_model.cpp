#include "sim/sim_model.h"

#include <algorithm>
#include <cmath>

#include "base/error.h"

namespace secflow {

CompiledSimModel::CompiledSimModel(const Netlist& nl, const CapTable& caps,
                                   const PowerSimOptions& opts)
    : nl_(&nl), opts_(opts) {
  const std::size_t n_nets = nl.n_nets();

  // Sampling constants.
  sample_dt_ps_ = opts_.sampling.sample_dt_s() * 1e12;
  samples_per_cycle_ = opts_.sampling.samples_per_cycle;
  nominal_period_ps_ = opts_.sampling.cycle_s() * 1e12;

  // Clock resolution (moved from the per-instance PowerSimulator ctor; the
  // invariants are the same: one clock net, driven by an input port).
  for (InstId iid : nl.instance_ids()) {
    const CellType& type = nl.cell_of(iid);
    if (type.kind != CellKind::kFlop) continue;
    const NetId ck =
        nl.instance(iid).conns[static_cast<std::size_t>(type.ck_pin())];
    SECFLOW_CHECK(ck.valid(), "flop without clock net");
    SECFLOW_CHECK(!clock_net_.valid() || clock_net_ == ck,
                  "multiple clock nets");
    clock_net_ = ck;
  }
  if (clock_net_.valid()) {
    const auto port = nl.driving_port(clock_net_);
    SECFLOW_CHECK(port.has_value(), "clock must be driven by an input port");
    clock_port_ = *port;
  }

  // Data-input ports: every input except the clock, with its net resolved.
  data_input_flag_.assign(nl.n_ports(), 0);
  for (PortId pid : nl.port_ids()) {
    const Port& p = nl.port(pid);
    if (p.dir != PinDir::kInput) continue;
    if (clock_port_.valid() && pid == clock_port_) continue;
    data_input_flag_[pid.index()] = 1;
    data_inputs_.push_back(DataInput{pid, p.net});
  }

  // Per-net cap resolution: the one place net names are hash-looked-up.
  net_cap_ff_.resize(n_nets);
  for (NetId id : nl.net_ids()) {
    const auto it = caps.find(nl.net(id).name);
    if (it != caps.end()) {
      net_cap_ff_[id.index()] = it->second;
    } else {
      // Fallback: sink pin caps plus a nominal local wire.
      double c = 1.0;
      for (const PinRef& p : nl.net(id).pins) {
        const CellType& type = nl.cell_of(p.inst);
        const PinDef& pin = type.pins[static_cast<std::size_t>(p.pin)];
        if (pin.dir == PinDir::kInput) c += pin.cap_ff;
      }
      net_cap_ff_[id.index()] = c;
    }
  }

  // Per-net power constants.  A rising edge on net n draws
  // Q = (C_net + C_internal(driver)) * VDD as a pulse with time constant
  // tau = max(min_tau, R_drive * C_net); the sampled deposit decays by
  // exp(-dt/tau) per bin, precomputed here so the simulator needs just one
  // exp per event (the fractional first bin) plus multiplies.
  charge_fc_.resize(n_nets);
  rise_energy_pj_.resize(n_nets);
  tau_ps_.resize(n_nets);
  bin_decay_.resize(n_nets);
  for (NetId id : nl.net_ids()) {
    const std::size_t i = id.index();
    double c = net_cap_ff_[i];
    double tau = opts_.min_tau_ps;
    if (const auto drv = nl.driver(id)) {
      const CellType& type = nl.cell_of(drv->inst);
      c += type.internal_cap_ff;
      tau = std::max(tau, type.drive_res_kohm * net_cap_ff_[i]);
    }
    charge_fc_[i] = c * opts_.process.vdd_v;
    rise_energy_pj_[i] = opts_.process.switch_energy_pj(c);
    tau_ps_[i] = tau;
    bin_decay_[i] = std::exp(-sample_dt_ps_ / tau);
  }

  // Compiled combinational gates, then the net -> sink-gate CSR.
  std::vector<std::int32_t> gate_of_inst(nl.n_instances(), -1);
  for (InstId iid : nl.instance_ids()) {
    const CellType& type = nl.cell_of(iid);
    if (type.kind != CellKind::kCombinational) continue;
    const Instance& in = nl.instance(iid);
    const int out_pin = type.output_pin();
    const NetId out = in.conns[static_cast<std::size_t>(out_pin)];
    if (!out.valid()) continue;  // dangling output: nothing to propagate
    Gate g;
    g.out_net = out.value();
    g.first_input = static_cast<std::int32_t>(gate_input_nets_.size());
    g.fn = type.function;
    g.delay_ps =
        type.intrinsic_delay_ps + type.drive_res_kohm * net_cap_ff(out);
    for (int pin : type.input_pins()) {
      const NetId net = in.conns[static_cast<std::size_t>(pin)];
      gate_input_nets_.push_back(net.valid() ? net.value() : -1);
      ++g.n_inputs;
    }
    gate_of_inst[iid.index()] = static_cast<std::int32_t>(gates_.size());
    gates_.push_back(g);
  }

  // CSR: counting pass, prefix sum, fill pass.  Sink order per net matches
  // the net's pin order, preserving the event schedule (and therefore the
  // FIFO sequence numbers) of the pre-compiled simulator.
  net_sink_offset_.assign(n_nets + 1, 0);
  for (NetId id : nl.net_ids()) {
    for (const PinRef& sink : nl.net(id).pins) {
      const std::int32_t g = gate_of_inst[sink.inst.index()];
      if (g < 0) continue;
      // Only input pins of the gate are fanout; its own output pin also
      // appears on the driven net's pin list.
      const CellType& type = nl.cell_of(sink.inst);
      if (type.pins[static_cast<std::size_t>(sink.pin)].dir != PinDir::kInput)
        continue;
      ++net_sink_offset_[id.index() + 1];
    }
  }
  for (std::size_t i = 0; i < n_nets; ++i) {
    net_sink_offset_[i + 1] += net_sink_offset_[i];
  }
  net_sinks_.resize(static_cast<std::size_t>(net_sink_offset_[n_nets]));
  std::vector<std::int32_t> cursor(net_sink_offset_.begin(),
                                   net_sink_offset_.end() - 1);
  for (NetId id : nl.net_ids()) {
    for (const PinRef& sink : nl.net(id).pins) {
      const std::int32_t g = gate_of_inst[sink.inst.index()];
      if (g < 0) continue;
      const CellType& type = nl.cell_of(sink.inst);
      if (type.pins[static_cast<std::size_t>(sink.pin)].dir != PinDir::kInput)
        continue;
      net_sinks_[static_cast<std::size_t>(cursor[id.index()]++)] = g;
    }
  }

  // Flops, split by capture edge, in instance order (capture simultaneity
  // and Q-update order are preserved).
  for (InstId iid : nl.instance_ids()) {
    const CellType& type = nl.cell_of(iid);
    if (type.kind != CellKind::kFlop) continue;
    const Instance& in = nl.instance(iid);
    Flop f;
    f.inst = iid;
    f.d = in.conns[static_cast<std::size_t>(type.d_pin())];
    SECFLOW_CHECK(f.d.valid(), "flop with floating D: " + in.name);
    f.q = in.conns[static_cast<std::size_t>(type.output_pin())];
    f.clk_to_q_ps = type.intrinsic_delay_ps;
    f.fn = type.function;
    (type.negedge_clock ? negedge_flops_ : posedge_flops_).push_back(f);
  }
}

}  // namespace secflow
