// Bulk trace synthesis: simulate N independent stimuli of one netlist,
// one task per trace, in parallel.
//
// The immutable CompiledSimModel is shared read-only by every worker; each
// worker owns ONE PowerSimulator for its whole claimed chunk and reset()s
// it between traces (fresh flop/net state without rebuilding or
// reallocating).  Each task gets a private RNG stream split from the
// master seed (Rng::stream(seed, i)), so trace i is bit-identical no
// matter the thread count — the determinism contract the DPA campaigns
// and the regression tests rely on.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "base/parallel.h"
#include "base/rng.h"
#include "sim/power_sim.h"

namespace secflow {

/// Output of one simulated stimulus: the recorded supply-current cycle
/// plus the packed observable the attacker reads (circuit-specific).
struct SimTrace {
  CycleTrace cycle;
  std::uint32_t observable = 0;
};

/// One task: drive `sim` (fresh state, keyed RNG stream) and return the
/// recorded trace.  Must not touch anything but its arguments.
using TraceTask = std::function<SimTrace(PowerSimulator& sim, Rng& rng,
                                         int index)>;

/// Simulate `n_traces` independent tasks against a prebuilt model.
/// Results are indexed by task, identical for every thread count
/// (including 1 == serial).
std::vector<SimTrace> simulate_traces(const CompiledSimModel& model,
                                      int n_traces, std::uint64_t master_seed,
                                      const TraceTask& task,
                                      const Parallelism& par = {});

/// Convenience: compile the model once from (netlist, caps, options), then
/// simulate.  Prefer the model overload when running several campaigns on
/// the same design.
std::vector<SimTrace> simulate_traces(const Netlist& nl, const CapTable& caps,
                                      const PowerSimOptions& opts,
                                      int n_traces, std::uint64_t master_seed,
                                      const TraceTask& task,
                                      const Parallelism& par = {});

}  // namespace secflow
