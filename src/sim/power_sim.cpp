#include "sim/power_sim.h"

#include <algorithm>
#include <cmath>

#include "base/error.h"

namespace secflow {

double CycleTrace::peak_ma() const {
  double p = 0.0;
  for (double v : current_ma) p = std::max(p, std::abs(v));
  return p;
}

PowerSimulator::PowerSimulator(const CompiledSimModel& model)
    : model_(model),
      net_val_(model.n_nets(), 0),
      mid_val_(model.n_nets(), 0),
      net_next_(model.n_nets(), 0),
      pending_(model.n_nets(), 0),
      flop_state_(model.n_instances(), 0),
      input_val_(model.n_ports(), 0) {}

PowerSimulator::PowerSimulator(const Netlist& nl, const CapTable& caps,
                               const PowerSimOptions& opts)
    : owned_(std::make_unique<CompiledSimModel>(nl, caps, opts)),
      model_(*owned_),
      net_val_(model_.n_nets(), 0),
      mid_val_(model_.n_nets(), 0),
      net_next_(model_.n_nets(), 0),
      pending_(model_.n_nets(), 0),
      flop_state_(model_.n_instances(), 0),
      input_val_(model_.n_ports(), 0) {}

void PowerSimulator::reset() {
  std::fill(net_val_.begin(), net_val_.end(), 0);
  std::fill(mid_val_.begin(), mid_val_.end(), 0);
  std::fill(net_next_.begin(), net_next_.end(), 0);
  std::fill(pending_.begin(), pending_.end(), 0);
  std::fill(flop_state_.begin(), flop_state_.end(), 0);
  std::fill(input_val_.begin(), input_val_.end(), 0);
  heap_.clear();
  seq_ = 0;
  now_ps_ = 0.0;
}

void PowerSimulator::set_input(const std::string& port, bool value) {
  const Netlist& nl = model_.netlist();
  const PortId pid = nl.find_port(port);
  SECFLOW_CHECK(pid.valid(), "unknown port: " + port);
  SECFLOW_CHECK(nl.port(pid).dir == PinDir::kInput,
                "not an input port: " + port);
  SECFLOW_CHECK(!(model_.clock_port().valid() && pid == model_.clock_port()),
                "the clock is driven by the simulator");
  input_val_[pid.index()] = value ? 1 : 0;
}

void PowerSimulator::set_input(PortId port, bool value) {
  SECFLOW_CHECK(model_.is_data_input(port),
                "not a data input port: " + model_.netlist().port(port).name);
  input_val_[port.index()] = value ? 1 : 0;
}

void PowerSimulator::push_event(Event ev) {
  heap_.push_back(ev);
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
}

PowerSimulator::Event PowerSimulator::pop_event() {
  std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
  const Event ev = heap_.back();
  heap_.pop_back();
  return ev;
}

void PowerSimulator::schedule(double t, NetId net, bool value) {
  const std::size_t idx = net.index();
  const char v = value ? 1 : 0;
  // Dedup against the value the net will hold once the queue drains: the
  // last scheduled value while events are in flight, the settled value
  // otherwise (net_next_ goes stale between event bursts).
  if (pending_[idx] == 0 ? net_val_[idx] == v : net_next_[idx] == v) return;
  net_next_[idx] = v;
  ++pending_[idx];
  push_event(Event{t, net, value, seq_++});
}

void PowerSimulator::deposit_charge(CycleTrace& trace, double t_ps,
                                    std::size_t net_idx) const {
  // Exponential pulse i(t) = (Q/tau) e^{-(t-t0)/tau}, discretized so the
  // sampled sum carries exactly Q.  fC per ps is mA.
  //
  // Per bin [t0, t1) the delivered charge is Q (f(t0) - f(t1)) with
  // f(t) = e^{-(t-t_ps)/tau}; consecutive bin edges satisfy
  // f(t + dt) = f(t) * e^{-dt/tau}, so after the first (fractional) bin the
  // loop needs one multiply per bin instead of two std::exp calls.
  const double dt = model_.sample_dt_ps();
  const int n = static_cast<int>(trace.current_ma.size());
  int bin = static_cast<int>(t_ps / dt);
  if (bin >= n) return;  // event spilled past the cycle end
  const double charge_fc = model_.charge_fc(net_idx);
  const double tau_ps = model_.tau_ps(net_idx);
  const double decay = model_.bin_decay(net_idx);
  // First bin starts at the event itself (f = 1) unless the event time was
  // clamped below the window, in which case the pulse is already partway
  // decayed at t = 0.
  double f_prev = 1.0;
  if (bin < 0) {
    bin = 0;
    f_prev = std::exp(t_ps / tau_ps);
  }
  // f at the first bin's right edge; thereafter advanced by the recurrence.
  double f_next = std::exp(-((bin + 1) * dt - t_ps) / tau_ps);
  double remaining = charge_fc;
  for (int k = bin; k < n && remaining > 1e-9; ++k) {
    const double q = charge_fc * (f_prev - f_next);
    trace.current_ma[static_cast<std::size_t>(k)] += q / dt;
    remaining -= q;
    f_prev = f_next;
    f_next *= decay;
  }
}

void PowerSimulator::apply_event(const Event& ev, CycleTrace* trace,
                                 double t_offset) {
  const std::size_t idx = ev.net.index();
  --pending_[idx];
  if (net_val_[idx] == (ev.value ? 1 : 0)) return;
  net_val_[idx] = ev.value ? 1 : 0;
  if (trace != nullptr) {
    ++trace->transitions;
    if (ev.value) {
      // Rising edge draws supply charge for the net plus the driver's
      // internal nodes; all constants are precompiled per net.
      trace->energy_pj += model_.rise_energy_pj(idx);
      deposit_charge(*trace, ev.time_ps - t_offset, idx);
    }
  }
  // Propagate to combinational sinks via the compiled CSR adjacency.
  for (const std::int32_t gid : model_.sinks_of(idx)) {
    const CompiledSimModel::Gate& g =
        model_.gates()[static_cast<std::size_t>(gid)];
    const std::int32_t* inputs = model_.gate_input_nets(g);
    std::uint64_t bits = 0;
    for (std::int32_t k = 0; k < g.n_inputs; ++k) {
      const std::int32_t net = inputs[k];
      if (net >= 0 && net_val_[static_cast<std::size_t>(net)]) {
        bits |= std::uint64_t{1} << k;
      }
    }
    schedule(ev.time_ps + g.delay_ps, NetId(g.out_net), g.fn.eval(bits));
  }
}

void PowerSimulator::drain_until(double t_end, CycleTrace* trace,
                                 double t_offset) {
  while (!heap_.empty() && heap_.front().time_ps <= t_end) {
    const Event ev = pop_event();
    apply_event(ev, trace, t_offset);
  }
}

void PowerSimulator::capture_flops(bool rising) {
  // Capture simultaneously from current values, then schedule Q updates.
  const std::vector<CompiledSimModel::Flop>& flops = model_.flops(rising);
  capture_scratch_.resize(flops.size());
  for (std::size_t i = 0; i < flops.size(); ++i) {
    capture_scratch_[i] =
        flops[i].fn.eval(net_val_[flops[i].d.index()] ? 1 : 0) ? 1 : 0;
  }
  const double edge = now_ps_;
  for (std::size_t i = 0; i < flops.size(); ++i) {
    const CompiledSimModel::Flop& f = flops[i];
    const bool v = capture_scratch_[i] != 0;
    flop_state_[f.inst.index()] = v ? 1 : 0;
    if (f.q.valid()) schedule(edge + f.clk_to_q_ps, f.q, v);
  }
}

CycleTrace PowerSimulator::run_cycle(double period_ps) {
  const double period =
      period_ps > 0.0 ? period_ps : model_.nominal_period_ps();
  const PowerSimOptions& opts = model_.options();
  CycleTrace trace;
  trace.current_ma.assign(
      static_cast<std::size_t>(model_.samples_per_cycle()), 0.0);
  const double start = now_ps_;

  // Rising edge.
  capture_flops(/*rising=*/true);
  if (model_.clock_net().valid()) {
    schedule(start + opts.clock_net_delay_ps, model_.clock_net(), true);
  }
  for (const CompiledSimModel::DataInput& di : model_.data_inputs()) {
    schedule(start + opts.input_delay_ps, di.net,
             input_val_[di.port.index()] != 0);
  }
  now_ps_ = start;
  drain_until(start + period / 2, &trace, start);
  now_ps_ = start + period / 2;
  mid_val_ = net_val_;

  // Falling edge.
  capture_flops(/*rising=*/false);
  if (model_.clock_net().valid()) {
    schedule(now_ps_ + opts.clock_net_delay_ps, model_.clock_net(), false);
  }
  if (opts.precharge_inputs) {
    for (const CompiledSimModel::DataInput& di : model_.data_inputs()) {
      schedule(now_ps_ + opts.input_delay_ps, di.net, false);
    }
  }
  drain_until(start + period, &trace, start);
  now_ps_ = start + period;
  return trace;
}

bool PowerSimulator::net_value(const std::string& net) const {
  const NetId id = model_.netlist().find_net(net);
  SECFLOW_CHECK(id.valid(), "unknown net: " + net);
  return net_val_[id.index()] != 0;
}

bool PowerSimulator::net_value(NetId net) const {
  return net_val_[net.index()] != 0;
}

bool PowerSimulator::output(const std::string& port) const {
  const PortId pid = model_.netlist().find_port(port);
  SECFLOW_CHECK(pid.valid(), "unknown port: " + port);
  return output(pid);
}

bool PowerSimulator::output(PortId port) const {
  return net_val_[model_.netlist().port(port).net.index()] != 0;
}

bool PowerSimulator::output_at_eval(const std::string& port) const {
  const PortId pid = model_.netlist().find_port(port);
  SECFLOW_CHECK(pid.valid(), "unknown port: " + port);
  return output_at_eval(pid);
}

bool PowerSimulator::output_at_eval(PortId port) const {
  return mid_val_[model_.netlist().port(port).net.index()] != 0;
}

bool PowerSimulator::flop_state(InstId flop) const {
  return flop_state_[flop.index()] != 0;
}

void PowerSimulator::set_flop_state(InstId flop, bool value) {
  const Netlist& nl = model_.netlist();
  SECFLOW_CHECK(nl.cell_of(flop).kind == CellKind::kFlop, "not a flop");
  flop_state_[flop.index()] = value ? 1 : 0;
  // Drive its Q immediately (initialization convenience).
  const Instance& in = nl.instance(flop);
  const CellType& type = nl.cell_of(flop);
  const NetId q = in.conns[static_cast<std::size_t>(type.output_pin())];
  if (q.valid()) schedule(now_ps_, q, value);
}

void PowerSimulator::settle() {
  for (const CompiledSimModel::DataInput& di : model_.data_inputs()) {
    schedule(now_ps_, di.net, input_val_[di.port.index()] != 0);
  }
  // Event-driven simulation only re-evaluates gates whose inputs change;
  // seed every combinational output once so gates whose inputs happen to
  // match the all-zero reset state still assume consistent values.
  for (const CompiledSimModel::Gate& g : model_.gates()) {
    const std::int32_t* inputs = model_.gate_input_nets(g);
    std::uint64_t bits = 0;
    for (std::int32_t k = 0; k < g.n_inputs; ++k) {
      const std::int32_t net = inputs[k];
      if (net >= 0 && net_val_[static_cast<std::size_t>(net)]) {
        bits |= std::uint64_t{1} << k;
      }
    }
    schedule(now_ps_, NetId(g.out_net), g.fn.eval(bits));
  }
  while (!heap_.empty()) {
    const Event ev = pop_event();
    now_ps_ = std::max(now_ps_, ev.time_ps);
    apply_event(ev, nullptr, now_ps_);
  }
}

EnergyStats compute_energy_stats(const std::vector<double>& energies_pj) {
  EnergyStats s;
  if (energies_pj.empty()) return s;
  s.min_pj = energies_pj[0];
  s.max_pj = energies_pj[0];
  double sum = 0.0;
  for (double e : energies_pj) {
    sum += e;
    s.min_pj = std::min(s.min_pj, e);
    s.max_pj = std::max(s.max_pj, e);
  }
  s.mean_pj = sum / static_cast<double>(energies_pj.size());
  double var = 0.0;
  for (double e : energies_pj) var += (e - s.mean_pj) * (e - s.mean_pj);
  var /= static_cast<double>(energies_pj.size());
  if (s.mean_pj > 0.0) {
    s.ned = (s.max_pj - s.min_pj) / s.mean_pj;
    s.nsd = std::sqrt(var) / s.mean_pj;
  }
  return s;
}

}  // namespace secflow
