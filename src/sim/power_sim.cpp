#include "sim/power_sim.h"

#include <algorithm>
#include <cmath>

#include "base/error.h"

namespace secflow {

double CycleTrace::peak_ma() const {
  double p = 0.0;
  for (double v : current_ma) p = std::max(p, std::abs(v));
  return p;
}

PowerSimulator::PowerSimulator(const Netlist& nl, CapTable caps,
                               const PowerSimOptions& opts)
    : nl_(nl),
      caps_(std::move(caps)),
      opts_(opts),
      net_val_(nl.n_nets(), 0),
      mid_val_(nl.n_nets(), 0),
      net_next_(nl.n_nets(), 0),
      pending_(nl.n_nets(), 0),
      flop_state_(nl.n_instances(), 0),
      input_val_(nl.n_ports(), 0) {
  cap_of_.resize(nl.n_nets());
  for (NetId id : nl.net_ids()) {
    const auto it = caps_.find(nl.net(id).name);
    if (it != caps_.end()) {
      cap_of_[id.index()] = it->second;
    } else {
      // Fallback: sink pin caps plus a nominal local wire.
      double c = 1.0;
      for (const PinRef& p : nl.net(id).pins) {
        const CellType& type = nl.cell_of(p.inst);
        const PinDef& pin = type.pins[static_cast<std::size_t>(p.pin)];
        if (pin.dir == PinDir::kInput) c += pin.cap_ff;
      }
      cap_of_[id.index()] = c;
    }
  }
  find_clock();
}

void PowerSimulator::find_clock() {
  for (InstId iid : nl_.instance_ids()) {
    const CellType& type = nl_.cell_of(iid);
    if (type.kind != CellKind::kFlop) continue;
    const NetId ck =
        nl_.instance(iid).conns[static_cast<std::size_t>(type.ck_pin())];
    SECFLOW_CHECK(ck.valid(), "flop without clock net");
    SECFLOW_CHECK(!clock_net_.valid() || clock_net_ == ck,
                  "multiple clock nets");
    clock_net_ = ck;
  }
  if (clock_net_.valid()) {
    const auto port = nl_.driving_port(clock_net_);
    SECFLOW_CHECK(port.has_value(), "clock must be driven by an input port");
    clock_port_ = *port;
  }
}

void PowerSimulator::set_input(const std::string& port, bool value) {
  const PortId pid = nl_.find_port(port);
  SECFLOW_CHECK(pid.valid(), "unknown port: " + port);
  SECFLOW_CHECK(nl_.port(pid).dir == PinDir::kInput,
                "not an input port: " + port);
  SECFLOW_CHECK(!(clock_port_.valid() && pid == clock_port_),
                "the clock is driven by the simulator");
  input_val_[pid.index()] = value ? 1 : 0;
}

double PowerSimulator::net_cap(NetId id) const { return cap_of_[id.index()]; }

double PowerSimulator::gate_delay(InstId driver, NetId out) const {
  const CellType& type = nl_.cell_of(driver);
  return type.intrinsic_delay_ps + type.drive_res_kohm * net_cap(out);
}

void PowerSimulator::schedule(double t, NetId net, bool value) {
  const std::size_t idx = net.index();
  const char v = value ? 1 : 0;
  // Dedup against the value the net will hold once the queue drains: the
  // last scheduled value while events are in flight, the settled value
  // otherwise (net_next_ goes stale between event bursts).
  if (pending_[idx] == 0 ? net_val_[idx] == v : net_next_[idx] == v) return;
  net_next_[idx] = v;
  ++pending_[idx];
  queue_.push(Event{t, net, value, seq_++});
}

void PowerSimulator::deposit_charge(CycleTrace& trace, double t_ps,
                                    double charge_fc, double tau_ps) const {
  // Exponential pulse i(t) = (Q/tau) e^{-(t-t0)/tau}, discretized so the
  // sampled sum carries exactly Q.  fC per ps is mA.
  const double dt = opts_.sampling.sample_dt_s() * 1e12;  // ps per sample
  const int n = static_cast<int>(trace.current_ma.size());
  int bin = static_cast<int>(t_ps / dt);
  if (bin >= n) return;  // event spilled past the cycle end
  if (bin < 0) bin = 0;
  double remaining = charge_fc;
  for (int k = bin; k < n && remaining > 1e-9; ++k) {
    const double t0 = std::max(t_ps, k * dt);
    const double t1 = (k + 1) * dt;
    if (t1 <= t0) continue;
    // Charge delivered within [t0, t1).
    const double q = charge_fc * (std::exp(-(t0 - t_ps) / tau_ps) -
                                  std::exp(-(t1 - t_ps) / tau_ps));
    trace.current_ma[static_cast<std::size_t>(k)] += q / dt;
    remaining -= q;
  }
}

void PowerSimulator::apply_event(const Event& ev, CycleTrace* trace,
                                 double t_offset) {
  const std::size_t idx = ev.net.index();
  --pending_[idx];
  if (net_val_[idx] == (ev.value ? 1 : 0)) return;
  net_val_[idx] = ev.value ? 1 : 0;
  if (trace != nullptr) {
    ++trace->transitions;
    if (ev.value) {
      // Rising edge draws supply charge for the net plus the driver's
      // internal nodes.
      double c = net_cap(ev.net);
      double tau = opts_.min_tau_ps;
      if (const auto drv = nl_.driver(ev.net)) {
        const CellType& type = nl_.cell_of(drv->inst);
        c += type.internal_cap_ff;
        tau = std::max(tau, type.drive_res_kohm * net_cap(ev.net));
      }
      const double q_fc = c * opts_.process.vdd_v;
      trace->energy_pj += opts_.process.switch_energy_pj(c);
      deposit_charge(*trace, ev.time_ps - t_offset, q_fc, tau);
    }
  }
  // Propagate to combinational sinks.
  for (const PinRef& sink : nl_.net(ev.net).pins) {
    const CellType& type = nl_.cell_of(sink.inst);
    if (type.kind != CellKind::kCombinational) continue;
    const Instance& in = nl_.instance(sink.inst);
    const int out_pin = type.output_pin();
    const NetId out = in.conns[static_cast<std::size_t>(out_pin)];
    if (!out.valid()) continue;
    std::uint64_t bits = 0;
    int k = 0;
    for (int pin : type.input_pins()) {
      const NetId net = in.conns[static_cast<std::size_t>(pin)];
      if (net.valid() && net_val_[net.index()]) bits |= std::uint64_t{1} << k;
      ++k;
    }
    schedule(ev.time_ps + gate_delay(sink.inst, out),
             out, type.function.eval(bits));
  }
}

void PowerSimulator::drain_until(double t_end, CycleTrace* trace,
                                 double t_offset) {
  while (!queue_.empty() && queue_.top().time_ps <= t_end) {
    const Event ev = queue_.top();
    queue_.pop();
    apply_event(ev, trace, t_offset);
  }
}

void PowerSimulator::capture_flops(bool rising) {
  // Capture simultaneously from current values, then schedule Q updates.
  std::vector<std::pair<InstId, bool>> captured;
  for (InstId iid : nl_.instance_ids()) {
    const CellType& type = nl_.cell_of(iid);
    if (type.kind != CellKind::kFlop) continue;
    if (type.negedge_clock == rising) continue;
    const Instance& in = nl_.instance(iid);
    const NetId d = in.conns[static_cast<std::size_t>(type.d_pin())];
    SECFLOW_CHECK(d.valid(), "flop with floating D: " + in.name);
    const bool v =
        type.function.eval(net_val_[d.index()] ? 1 : 0);
    captured.emplace_back(iid, v);
  }
  const double edge = now_ps_;
  for (const auto& [iid, v] : captured) {
    flop_state_[iid.index()] = v ? 1 : 0;
    const CellType& type = nl_.cell_of(iid);
    const Instance& in = nl_.instance(iid);
    const NetId q = in.conns[static_cast<std::size_t>(type.output_pin())];
    if (q.valid()) schedule(edge + type.intrinsic_delay_ps, q, v);
  }
}

CycleTrace PowerSimulator::run_cycle(double period_ps) {
  const double period =
      period_ps > 0.0 ? period_ps : opts_.sampling.cycle_s() * 1e12;
  CycleTrace trace;
  trace.current_ma.assign(
      static_cast<std::size_t>(opts_.sampling.samples_per_cycle), 0.0);
  const double start = now_ps_;

  // Rising edge.
  capture_flops(/*rising=*/true);
  if (clock_net_.valid()) {
    schedule(start + opts_.clock_net_delay_ps, clock_net_, true);
  }
  for (PortId pid : nl_.port_ids()) {
    const Port& p = nl_.port(pid);
    if (p.dir != PinDir::kInput) continue;
    if (clock_port_.valid() && pid == clock_port_) continue;
    schedule(start + opts_.input_delay_ps, p.net,
             input_val_[pid.index()] != 0);
  }
  now_ps_ = start;
  drain_until(start + period / 2, &trace, start);
  now_ps_ = start + period / 2;
  mid_val_ = net_val_;

  // Falling edge.
  capture_flops(/*rising=*/false);
  if (clock_net_.valid()) {
    schedule(now_ps_ + opts_.clock_net_delay_ps, clock_net_, false);
  }
  if (opts_.precharge_inputs) {
    for (PortId pid : nl_.port_ids()) {
      const Port& p = nl_.port(pid);
      if (p.dir != PinDir::kInput) continue;
      if (clock_port_.valid() && pid == clock_port_) continue;
      schedule(now_ps_ + opts_.input_delay_ps, p.net, false);
    }
  }
  drain_until(start + period, &trace, start);
  now_ps_ = start + period;
  return trace;
}

bool PowerSimulator::net_value(const std::string& net) const {
  const NetId id = nl_.find_net(net);
  SECFLOW_CHECK(id.valid(), "unknown net: " + net);
  return net_val_[id.index()] != 0;
}

bool PowerSimulator::output(const std::string& port) const {
  const PortId pid = nl_.find_port(port);
  SECFLOW_CHECK(pid.valid(), "unknown port: " + port);
  return net_val_[nl_.port(pid).net.index()] != 0;
}

bool PowerSimulator::output_at_eval(const std::string& port) const {
  const PortId pid = nl_.find_port(port);
  SECFLOW_CHECK(pid.valid(), "unknown port: " + port);
  return mid_val_[nl_.port(pid).net.index()] != 0;
}

bool PowerSimulator::flop_state(InstId flop) const {
  return flop_state_[flop.index()] != 0;
}

void PowerSimulator::set_flop_state(InstId flop, bool value) {
  SECFLOW_CHECK(nl_.cell_of(flop).kind == CellKind::kFlop, "not a flop");
  flop_state_[flop.index()] = value ? 1 : 0;
  // Drive its Q immediately (initialization convenience).
  const Instance& in = nl_.instance(flop);
  const CellType& type = nl_.cell_of(flop);
  const NetId q = in.conns[static_cast<std::size_t>(type.output_pin())];
  if (q.valid()) schedule(now_ps_, q, value);
}

void PowerSimulator::settle() {
  for (PortId pid : nl_.port_ids()) {
    const Port& p = nl_.port(pid);
    if (p.dir != PinDir::kInput) continue;
    if (clock_port_.valid() && pid == clock_port_) continue;
    schedule(now_ps_, p.net, input_val_[pid.index()] != 0);
  }
  // Event-driven simulation only re-evaluates gates whose inputs change;
  // seed every combinational output once so gates whose inputs happen to
  // match the all-zero reset state still assume consistent values.
  for (InstId iid : nl_.instance_ids()) {
    const CellType& type = nl_.cell_of(iid);
    if (type.kind != CellKind::kCombinational) continue;
    const Instance& in = nl_.instance(iid);
    const NetId out = in.conns[static_cast<std::size_t>(type.output_pin())];
    if (!out.valid()) continue;
    std::uint64_t bits = 0;
    int k = 0;
    for (int pin : type.input_pins()) {
      const NetId net = in.conns[static_cast<std::size_t>(pin)];
      if (net.valid() && net_val_[net.index()]) bits |= std::uint64_t{1} << k;
      ++k;
    }
    schedule(now_ps_, out, type.function.eval(bits));
  }
  while (!queue_.empty()) {
    const Event ev = queue_.top();
    queue_.pop();
    now_ps_ = std::max(now_ps_, ev.time_ps);
    apply_event(ev, nullptr, now_ps_);
  }
}

EnergyStats compute_energy_stats(const std::vector<double>& energies_pj) {
  EnergyStats s;
  if (energies_pj.empty()) return s;
  s.min_pj = energies_pj[0];
  s.max_pj = energies_pj[0];
  double sum = 0.0;
  for (double e : energies_pj) {
    sum += e;
    s.min_pj = std::min(s.min_pj, e);
    s.max_pj = std::max(s.max_pj, e);
  }
  s.mean_pj = sum / static_cast<double>(energies_pj.size());
  double var = 0.0;
  for (double e : energies_pj) var += (e - s.mean_pj) * (e - s.mean_pj);
  var /= static_cast<double>(energies_pj.size());
  if (s.mean_pj > 0.0) {
    s.ned = (s.max_pj - s.min_pj) / s.mean_pj;
    s.nsd = std::sqrt(var) / s.mean_pj;
  }
  return s;
}

}  // namespace secflow
