// Event-driven gate-level power simulation (the HSpice stand-in).
//
// Switched-capacitance model: every rising net transition draws
// Q = (C_net + C_internal(driver)) * VDD from the supply at the event's
// (load-dependent) time; each charge is deposited on the sampled
// supply-current trace as an exponentially decaying pulse.  The paper's
// measurement setup is reproduced: 125 MHz clock, 800 samples per cycle.
//
// One cycle is simulated in two half-phases so both regular synchronous
// designs and WDDL differential designs run on the same engine:
//   t=0    rising clock edge:  posedge flops capture, clock net -> 1,
//          new input values arrive; events propagate.
//   t=T/2  falling clock edge: negedge flops (WDDL masters) capture,
//          clock net -> 0; with precharge_inputs, all data inputs -> 0
//          (the WDDL precharge wave); events propagate to t=T.
//
// Compile-once / simulate-many: everything derived from (netlist, caps,
// options) lives in an immutable CompiledSimModel (sim/sim_model.h); a
// PowerSimulator borrows the model and holds only mutable trace state, so
// bulk campaigns build the model once and reuse one simulator per worker
// via reset().  The two-argument convenience constructor builds and owns
// a private model for tests and examples.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "base/units.h"
#include "netlist/netlist.h"
#include "sim/sim_model.h"

namespace secflow {

struct CycleTrace {
  std::vector<double> current_ma;  ///< samples_per_cycle supply samples
  double energy_pj = 0.0;          ///< total supply charge * VDD
  int transitions = 0;             ///< net value changes (both directions)

  double peak_ma() const;
};

class PowerSimulator {
 public:
  /// Borrow a shared compiled model (the bulk-simulation path).  The model
  /// must outlive the simulator.
  explicit PowerSimulator(const CompiledSimModel& model);

  /// Convenience: compile a private model from (netlist, caps, options).
  /// `caps` is only read during construction (no copy is kept).
  PowerSimulator(const Netlist& nl, const CapTable& caps,
                 const PowerSimOptions& opts = {});

  /// Return to the power-up state: all nets/flops/inputs 0, empty event
  /// queue, t = 0.  A reset simulator is bit-identical to a freshly
  /// constructed one, but keeps its buffers (no allocation churn).
  void reset();

  /// Set a data input port's value for the next cycle's evaluate phase.
  void set_input(const std::string& port, bool value);
  void set_input(PortId port, bool value);

  /// Simulate one full clock cycle; `period_ps` overrides the nominal
  /// period (used by the DFA glitch experiment).  Returns the supply
  /// current trace.
  CycleTrace run_cycle(double period_ps = 0.0);

  /// Settled value of a net / output port after the last cycle.
  bool net_value(const std::string& net) const;
  bool net_value(NetId net) const;
  bool output(const std::string& port) const;
  bool output(PortId port) const;
  /// Output port value snapshotted at the end of the evaluate phase (T/2)
  /// of the last cycle — the observable of a WDDL design, whose rails are
  /// precharged to 0 by the end of the full cycle.
  bool output_at_eval(const std::string& port) const;
  bool output_at_eval(PortId port) const;
  bool flop_state(InstId flop) const;
  void set_flop_state(InstId flop, bool value);

  /// Force-settle current input values without booking power (testbench
  /// initialization).
  void settle();

  const Netlist& netlist() const { return model_.netlist(); }
  const CompiledSimModel& model() const { return model_; }

 private:
  struct Event {
    double time_ps;
    NetId net;
    bool value;
    long seq;  // FIFO tie-break for determinism
    bool operator>(const Event& o) const {
      return time_ps != o.time_ps ? time_ps > o.time_ps : seq > o.seq;
    }
  };

  void schedule(double t, NetId net, bool value);
  void apply_event(const Event& ev, CycleTrace* trace, double t_offset);
  void deposit_charge(CycleTrace& trace, double t_ps,
                      std::size_t net_idx) const;
  void capture_flops(bool rising);
  void drain_until(double t_end, CycleTrace* trace, double t_offset = 0.0);
  void push_event(Event ev);
  Event pop_event();

  std::unique_ptr<const CompiledSimModel> owned_;  // convenience ctor only
  const CompiledSimModel& model_;
  std::vector<char> net_val_;
  std::vector<char> mid_val_;     // snapshot at T/2 of the last cycle
  std::vector<char> net_next_;    // last scheduled value per net
  std::vector<int> pending_;      // in-flight events per net
  std::vector<char> flop_state_;
  std::vector<char> input_val_;   // per port
  std::vector<Event> heap_;       // binary min-heap on (time, seq)
  std::vector<char> capture_scratch_;  // per-flop captured values
  long seq_ = 0;
  double now_ps_ = 0.0;
};

/// Energy statistics over a set of per-cycle energies: the paper's
/// normalized energy deviation (max-min)/mean and normalized standard
/// deviation sigma/mean.
struct EnergyStats {
  double mean_pj = 0.0;
  double min_pj = 0.0;
  double max_pj = 0.0;
  double ned = 0.0;  ///< (max - min) / mean
  double nsd = 0.0;  ///< stddev / mean
};

EnergyStats compute_energy_stats(const std::vector<double>& energies_pj);

}  // namespace secflow
