#include "flow/flow.h"

#include <chrono>
#include <sstream>
#include <utility>
#include <vector>

#include "base/error.h"
#include "ckpt/fingerprint.h"
#include "ckpt/hash.h"
#include "ckpt/serialize.h"
#include "ckpt/store.h"
#include "netlist/netlist_ops.h"
#include "netlist/verilog_parser.h"
#include "netlist/verilog_writer.h"
#include "obs/trace.h"

namespace secflow {
namespace {

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double lap_ms() {
    const auto now = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(now - start_).count();
    start_ = now;
    return ms;
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// The clock net name of a mapped netlist (net driving flop CK pins), or
/// empty for combinational designs.
std::string clock_net_name(const Netlist& nl) {
  for (InstId iid : nl.instance_ids()) {
    const CellType& type = nl.cell_of(iid);
    if (type.kind != CellKind::kFlop) continue;
    const NetId ck =
        nl.instance(iid).conns[static_cast<std::size_t>(type.ck_pin())];
    if (ck.valid()) return nl.net(ck).name;
  }
  return {};
}

/// Stage option structs whose thread count is on auto (0) inherit the
/// flow-level Parallelism, so one knob controls the whole flow while an
/// explicit per-stage setting still wins.
FlowOptions resolve_parallelism(const FlowOptions& opts) {
  FlowOptions o = opts;
  if (o.place.parallelism.n_threads == 0) o.place.parallelism = o.parallelism;
  if (o.route.parallelism.n_threads == 0) o.route.parallelism = o.parallelism;
  if (o.extract.parallelism.n_threads == 0)
    o.extract.parallelism = o.parallelism;
  return o;
}

std::size_t stage_idx(FlowStage s) { return static_cast<std::size_t>(s); }

/// Per-run cache driver: records keys and outcomes in StageTimings, loads
/// hits from the store, persists misses, and enforces resume_from (a stage
/// before the resume point must hit — recomputing it would defeat the
/// point of resuming).
class StageCache {
 public:
  StageCache(const FlowOptions& o, StageTimings& t) : o_(o), t_(t) {
    if (!o.cache_dir.empty()) store_.emplace(o.cache_dir);
  }

  /// Cache lookup for stage `s` under `key`; the artifact on a hit.
  std::optional<Artifact> begin(FlowStage s, std::uint64_t key) {
    t_.cache_key[stage_idx(s)] = key;
    if (!store_) {
      t_.cache[stage_idx(s)] = CacheOutcome::kDisabled;
      return std::nullopt;
    }
    std::optional<Artifact> a = store_->load(flow_stage_name(s), key);
    if (a) {
      t_.cache[stage_idx(s)] = CacheOutcome::kHit;
      return a;
    }
    SECFLOW_CHECK(!before_resume(s),
                  std::string("FlowOptions::resume_from: no cached ") +
                      flow_stage_name(s) + " artifact in " + o_.cache_dir +
                      " for key " + hash_hex(key) +
                      " — run the upstream stages without resume_from first");
    t_.cache[stage_idx(s)] = CacheOutcome::kMiss;
    return std::nullopt;
  }

  /// Persist the artifact computed for a missed stage (no-op otherwise).
  void finish(FlowStage s, Artifact a) {
    if (!store_ || t_.cache[stage_idx(s)] != CacheOutcome::kMiss) return;
    a.kind = flow_stage_name(s);
    a.key = t_.cache_key[stage_idx(s)];
    store_->save(a);
  }

  bool stop_after(FlowStage s) const {
    return o_.stop_after && *o_.stop_after == s;
  }

 private:
  bool before_resume(FlowStage s) const {
    return o_.resume_from && stage_idx(s) < stage_idx(*o_.resume_from);
  }

  const FlowOptions& o_;
  StageTimings& t_;
  std::optional<ArtifactStore> store_;
};

/// Span name of one pipeline stage (stable literals — Span keeps the
/// pointer).
const char* flow_span_name(FlowStage s) {
  switch (s) {
    case FlowStage::kSynthesis: return "flow.synthesis";
    case FlowStage::kSubstitution: return "flow.substitution";
    case FlowStage::kPlacement: return "flow.placement";
    case FlowStage::kRouting: return "flow.routing";
    case FlowStage::kDecomposition: return "flow.decomposition";
    case FlowStage::kExtraction: return "flow.extraction";
  }
  return "flow.?";
}

/// Close out one executed stage: record its wall time, attach the cache
/// verdict to the stage span, and emit one info log line.
void finish_stage(FlowStage s, Span& span, Stopwatch& sw, StageTimings& t,
                  double& ms_slot) {
  ms_slot = sw.lap_ms();
  const char* outcome = cache_outcome_name(t.outcome(s));
  span.arg("cache", outcome);
  if (t.key(s) != 0) span.arg("key", hash_hex(t.key(s)));
  SECFLOW_LOG_INFO("flow", "stage done",
                   LogField("stage", flow_stage_name(s)),
                   LogField("ms", ms_slot), LogField("cache", outcome));
}

void reject_secure_only_stage(const std::optional<FlowStage>& s,
                              const char* which) {
  if (!s) return;
  SECFLOW_CHECK(
      *s != FlowStage::kSubstitution && *s != FlowStage::kDecomposition,
      std::string("FlowOptions: ") + which + " = " + flow_stage_name(*s) +
          " names a secure-only stage; the regular flow does not run it");
}

Netlist take_netlist(std::optional<Netlist>&& n,
                     const std::shared_ptr<const CellLibrary>& lib) {
  return n ? std::move(*n) : Netlist("(not run)", lib);
}

DefDesign take_def(std::optional<DefDesign>&& d) {
  return d ? std::move(*d) : DefDesign{};
}

void append_common(std::ostringstream& os, const FlowArtifacts& r) {
  os << "  die:         " << r.die_area_um2() << " um^2\n";
  os << "  wirelength:  " << dbu_to_um(r.def.total_wirelength()) << " um, "
     << r.def.total_vias() << " vias\n";
  os << "  runtime:     " << r.timings.total_ms() << " ms ("
     << r.timings.n_threads
     << (r.timings.n_threads == 1 ? " thread)\n" : " threads)\n");
  if (r.timings.cache_hits() > 0) {
    os << "  checkpoints: " << r.timings.cache_hits() << " stage(s) loaded, "
       << r.timings.cache_misses() << " computed\n";
  }
}

}  // namespace

const char* flow_kind_name(FlowKind k) {
  switch (k) {
    case FlowKind::kRegular: return "regular";
    case FlowKind::kSecure: return "secure";
  }
  return "?";
}

const char* flow_stage_name(FlowStage s) {
  switch (s) {
    case FlowStage::kSynthesis: return "synthesis";
    case FlowStage::kSubstitution: return "substitution";
    case FlowStage::kPlacement: return "placement";
    case FlowStage::kRouting: return "routing";
    case FlowStage::kDecomposition: return "decomposition";
    case FlowStage::kExtraction: return "extraction";
  }
  return "?";
}

const char* cache_outcome_name(CacheOutcome c) {
  switch (c) {
    case CacheOutcome::kNotRun: return "not-run";
    case CacheOutcome::kDisabled: return "off";
    case CacheOutcome::kMiss: return "miss";
    case CacheOutcome::kHit: return "hit";
  }
  return "?";
}

double StageTimings::stage_ms(FlowStage s) const {
  switch (s) {
    case FlowStage::kSynthesis: return synthesis_ms;
    case FlowStage::kSubstitution: return substitution_ms;
    case FlowStage::kPlacement: return place_ms;
    case FlowStage::kRouting: return route_ms;
    case FlowStage::kDecomposition: return decomposition_ms;
    case FlowStage::kExtraction: return extraction_ms;
  }
  return 0.0;
}

int StageTimings::cache_hits() const {
  int n = 0;
  for (const CacheOutcome c : cache) n += (c == CacheOutcome::kHit) ? 1 : 0;
  return n;
}

int StageTimings::cache_misses() const {
  int n = 0;
  for (const CacheOutcome c : cache) n += (c == CacheOutcome::kMiss) ? 1 : 0;
  return n;
}

void FlowOptions::validate() const {
  // Every rule is checked and every failure collected, so a caller (a
  // campaign spec with several bad overrides, say) sees the complete list
  // in one Error instead of fixing violations one round trip at a time.
  std::vector<std::string> violations;
  const auto require = [&violations](bool ok, const char* msg) {
    if (!ok) violations.emplace_back(msg);
  };
  require(!(shielded_pairs && route_mode == RouteMode::kQuickLShaped),
          "FlowOptions: shielded_pairs requires RouteMode::kDetailed — quick "
          "L-shaped routing produces no conflict-checked geometry to shield");
  require(place.aspect_ratio > 0.0,
          "FlowOptions: place.aspect_ratio must be > 0");
  require(place.fill_factor > 0.0 && place.fill_factor <= 1.0,
          "FlowOptions: place.fill_factor must be in (0, 1]");
  require(place.sa_moves_per_instance >= 0,
          "FlowOptions: place.sa_moves_per_instance must be >= 0");
  require(place.sa_batch >= 1, "FlowOptions: place.sa_batch must be >= 1");
  require(extract.coupling_max_sep_um >= 0.0,
          "FlowOptions: extract.coupling_max_sep_um must be >= 0");
  require(extract.variation_sigma >= 0.0,
          "FlowOptions: extract.variation_sigma must be >= 0");
  require(route.max_iterations >= 1,
          "FlowOptions: route.max_iterations must be >= 1");
  require(route.window_margin >= 0,
          "FlowOptions: route.window_margin must be >= 0");
  require(route.window_escalation >= 2,
          "FlowOptions: route.window_escalation must be >= 2 — the search "
          "window must grow on escalation or congested nets never reach "
          "full-grid search");
  require(parallelism.n_threads >= 0 && place.parallelism.n_threads >= 0 &&
              route.parallelism.n_threads >= 0 &&
              extract.parallelism.n_threads >= 0,
          "FlowOptions: thread counts must be >= 0 (0 = auto)");
  require(!(resume_from && cache_dir.empty()),
          "FlowOptions: resume_from requires cache_dir — the skipped "
          "stages' artifacts must come from the checkpoint store");
  require(!resume_from || *resume_from != FlowStage::kSynthesis,
          "FlowOptions: resume_from = synthesis is just a full run; "
          "leave it unset");
  require(!(resume_from && stop_after &&
            static_cast<int>(*stop_after) < static_cast<int>(*resume_from)),
          "FlowOptions: stop_after precedes resume_from — no stage "
          "would run");

  if (violations.empty()) return;
  if (violations.size() == 1) throw Error(violations[0]);
  std::string msg = "FlowOptions: " + std::to_string(violations.size()) +
                    " violations:";
  for (const std::string& v : violations) msg += "\n  - " + v;
  throw Error(msg);
}

std::array<std::uint64_t, kNumFlowStages> compute_stage_keys(
    FlowKind kind, const AigCircuit& circuit, const CellLibrary& library,
    const FlowOptions& opts) {
  const bool secure = kind == FlowKind::kSecure;
  SynthConstraints synth = opts.synth;
  if (secure && synth.allowed_cells.empty()) synth = wddl_synth_constraints();

  std::array<std::uint64_t, kNumFlowStages> keys{};
  std::uint64_t chain = Hasher()
                            .add(kCkptFormatVersion)
                            .add(flow_kind_name(kind))
                            .add(fingerprint(circuit))
                            .add(fingerprint(library))
                            .digest();
  chain = Hasher().add(chain).add("synthesis").add(fingerprint(synth))
              .digest();
  keys[stage_idx(FlowStage::kSynthesis)] = chain;

  if (secure) {
    chain = Hasher().add(chain).add("substitution").digest();
    keys[stage_idx(FlowStage::kSubstitution)] = chain;
  }

  Hasher place_h;
  place_h.add(chain)
      .add("placement")
      .add(fingerprint(opts.place))
      .add(fingerprint(opts.extract.process));
  if (secure) place_h.add(opts.shielded_pairs);
  chain = place_h.digest();
  keys[stage_idx(FlowStage::kPlacement)] = chain;

  chain = Hasher()
              .add(chain)
              .add("routing")
              .add(fingerprint(opts.route))
              .add(static_cast<int>(opts.route_mode))
              .digest();
  keys[stage_idx(FlowStage::kRouting)] = chain;

  if (secure) {
    const Process018& pr = opts.extract.process;
    chain = Hasher()
                .add(chain)
                .add("decomposition")
                .add(pr.wire_pitch_um)
                .add(pr.wire_width_um)
                .add(opts.shielded_pairs)
                .digest();
    keys[stage_idx(FlowStage::kDecomposition)] = chain;
  }

  chain = Hasher().add(chain).add("extraction").add(fingerprint(opts.extract))
              .digest();
  keys[stage_idx(FlowStage::kExtraction)] = chain;
  return keys;
}

SynthConstraints wddl_synth_constraints() {
  SynthConstraints c;
  c.allowed_cells = {"NAND2", "NAND3", "NOR2", "NOR3", "AND2", "AND3",
                     "OR2",   "OR3",   "XOR2", "XNOR2", "AOI21", "AOI22",
                     "AOI32", "OAI21", "OAI22", "MUX2"};
  return c;
}

CompiledSimModel compile_power_model(const RegularFlowResult& result,
                                     PowerSimOptions opts) {
  return CompiledSimModel(result.rtl, result.caps, opts);
}

CompiledSimModel compile_power_model(const SecureFlowResult& result,
                                     PowerSimOptions opts) {
  opts.precharge_inputs = true;  // WDDL: inputs precharge to (0,0)
  return CompiledSimModel(result.diff, result.caps, opts);
}

RegularFlowResult run_regular_flow(const AigCircuit& circuit,
                                   std::shared_ptr<const CellLibrary> library,
                                   const FlowOptions& opts) {
  opts.validate();
  reject_secure_only_stage(opts.resume_from, "resume_from");
  reject_secure_only_stage(opts.stop_after, "stop_after");
  const FlowOptions o = resolve_parallelism(opts);
  if (o.log_level) Logger::global().set_level(*o.log_level);
  Stopwatch sw;
  StageTimings t;
  t.n_threads = o.parallelism.resolved_threads();
  StageCache cache(o, t);
  Span flow_span("flow.regular", "flow");
  flow_span.arg("design", circuit.name);
  SECFLOW_LOG_INFO("flow", "regular flow start",
                   LogField("design", circuit.name),
                   LogField("threads", t.n_threads));

  // Cache-key chain: every stage key hashes the full upstream chain, so a
  // changed early input re-keys (and re-runs) everything downstream while
  // an unchanged prefix keeps hitting.  compute_stage_keys is the single
  // source of truth for the chain (the campaign scheduler keys off it too).
  const auto keys = compute_stage_keys(FlowKind::kRegular, circuit, *library, o);
  const auto key_of = [&keys](FlowStage s) { return keys[stage_idx(s)]; };

  // Logic synthesis -> rtl.v.
  std::optional<Netlist> rtl;
  {
    Span span(flow_span_name(FlowStage::kSynthesis), "flow");
    if (const auto a = cache.begin(FlowStage::kSynthesis,
                                   key_of(FlowStage::kSynthesis))) {
      rtl = parse_verilog(a->section("rtl.v"), library);
    } else {
      rtl = technology_map(circuit, library, o.synth);
      rtl->validate();
      Artifact out;
      out.add("rtl.v", write_verilog(*rtl));
      cache.finish(FlowStage::kSynthesis, std::move(out));
    }
    finish_stage(FlowStage::kSynthesis, span, sw, t, t.synthesis_ms);
  }
  bool done = cache.stop_after(FlowStage::kSynthesis);

  // Placement.
  LefLibrary lef;
  std::optional<DefDesign> def;
  if (!done) {
    Span span(flow_span_name(FlowStage::kPlacement), "flow");
    lef = generate_lef(*library, LefGenOptions{o.extract.process});
    if (const auto a = cache.begin(FlowStage::kPlacement,
                                   key_of(FlowStage::kPlacement))) {
      def = parse_def(a->section("placed.def"));
    } else {
      def = place_design(*rtl, lef, o.place);
      Artifact out;
      out.add("placed.def", write_def(*def));
      cache.finish(FlowStage::kPlacement, std::move(out));
    }
    finish_stage(FlowStage::kPlacement, span, sw, t, t.place_ms);
    done = cache.stop_after(FlowStage::kPlacement);
  }

  // Routing.
  RouteStats rs;
  if (!done) {
    Span span(flow_span_name(FlowStage::kRouting), "flow");
    if (const auto a = cache.begin(FlowStage::kRouting,
                                   key_of(FlowStage::kRouting))) {
      def = parse_def(a->section("routed.def"));
      rs = parse_route_stats(a->section("route_stats"));
    } else {
      rs = o.route_mode == RouteMode::kQuickLShaped
               ? route_design_quick(*rtl, lef, *def)
               : route_design(*rtl, lef, *def, o.route);
      Artifact out;
      out.add("routed.def", write_def(*def));
      out.add("route_stats", write_route_stats(rs));
      cache.finish(FlowStage::kRouting, std::move(out));
    }
    finish_stage(FlowStage::kRouting, span, sw, t, t.route_ms);
    done = cache.stop_after(FlowStage::kRouting);
  }

  // Extraction + switched-cap table + STA.
  Extraction ex;
  CapTable caps;
  TimingReport timing;
  if (!done) {
    Span span(flow_span_name(FlowStage::kExtraction), "flow");
    if (const auto a = cache.begin(FlowStage::kExtraction,
                                   key_of(FlowStage::kExtraction))) {
      ex = parse_extraction(a->section("extraction"));
      caps = parse_cap_table(a->section("caps"));
      timing = parse_timing_report(a->section("timing"));
    } else {
      ex = extract_parasitics(*def, *rtl, o.extract);
      caps = build_cap_table(*rtl, ex);
      timing = analyze_timing(*rtl, caps);
      Artifact out;
      out.add("extraction", write_extraction(ex));
      out.add("caps", write_cap_table(caps));
      out.add("timing", write_timing_report(timing));
      cache.finish(FlowStage::kExtraction, std::move(out));
    }
    finish_stage(FlowStage::kExtraction, span, sw, t, t.extraction_ms);
  }

  const FlowStage completed = o.stop_after.value_or(FlowStage::kExtraction);
  return RegularFlowResult{{std::move(*rtl), std::move(lef),
                            take_def(std::move(def)), rs, std::move(ex),
                            std::move(caps), t, std::move(timing),
                            completed}};
}

SecureFlowResult run_secure_flow(const AigCircuit& circuit,
                                 std::shared_ptr<const CellLibrary> library,
                                 const FlowOptions& opts) {
  opts.validate();
  Stopwatch sw;
  StageTimings t;

  FlowOptions o = resolve_parallelism(opts);
  if (o.log_level) Logger::global().set_level(*o.log_level);
  t.n_threads = o.parallelism.resolved_threads();
  if (o.synth.allowed_cells.empty()) o.synth = wddl_synth_constraints();
  StageCache cache(o, t);
  Span flow_span("flow.secure", "flow");
  flow_span.arg("design", circuit.name);
  SECFLOW_LOG_INFO("flow", "secure flow start",
                   LogField("design", circuit.name),
                   LogField("threads", t.n_threads));

  const auto keys = compute_stage_keys(FlowKind::kSecure, circuit, *library, o);
  const auto key_of = [&keys](FlowStage s) { return keys[stage_idx(s)]; };

  // Logic synthesis, restricted to WDDL-supported gates.
  std::optional<Netlist> rtl;
  {
    Span span(flow_span_name(FlowStage::kSynthesis), "flow");
    if (const auto a = cache.begin(FlowStage::kSynthesis,
                                   key_of(FlowStage::kSynthesis))) {
      rtl = parse_verilog(a->section("rtl.v"), library);
    } else {
      rtl = technology_map(circuit, library, o.synth);
      rtl->validate();
      Artifact out;
      out.add("rtl.v", write_verilog(*rtl));
      cache.finish(FlowStage::kSynthesis, std::move(out));
    }
    finish_stage(FlowStage::kSynthesis, span, sw, t, t.synthesis_ms);
  }
  bool done = cache.stop_after(FlowStage::kSynthesis);

  // Cell substitution: rtl.v -> fat.v + differential netlist, verified
  // equivalent (LEC) before anything downstream consumes it.  The artifact
  // carries the fat cell library too, so a hit can reparse fat.v without
  // regenerating the compound inventory.
  std::shared_ptr<WddlLibrary> wlib;
  std::optional<Netlist> fat;
  std::optional<Netlist> diff;
  SubstitutionStats sub_stats;
  LecResult lec;
  if (!done) {
    Span span(flow_span_name(FlowStage::kSubstitution), "flow");
    if (const auto a = cache.begin(FlowStage::kSubstitution,
                                   key_of(FlowStage::kSubstitution))) {
      std::shared_ptr<const CellLibrary> fat_lib =
          std::make_shared<CellLibrary>(
              parse_cell_library(a->section("fat_lib")));
      fat = parse_verilog(a->section("fat.v"), fat_lib);
      diff = parse_verilog(a->section("diff.v"), library);
      sub_stats = parse_substitution_stats(a->section("stats"));
      lec = parse_lec_result(a->section("lec"));
    } else {
      wlib = std::make_shared<WddlLibrary>(library);
      SubstitutionResult sub = substitute_cells(*rtl, *wlib);
      fat = std::move(sub.fat);
      sub_stats = sub.stats;
      diff = expand_differential(*fat, *wlib);
      lec = check_equivalence(*rtl, *fat);
      SECFLOW_CHECK(lec.equivalent,
                    "secure flow LEC failed: " +
                        (lec.mismatches.empty() ? std::string("?")
                                                : lec.mismatches[0].what));
      Artifact out;
      out.add("fat_lib", write_cell_library(fat->library()));
      out.add("fat.v", write_verilog(*fat));
      out.add("diff.v", write_verilog(*diff));
      out.add("stats", write_substitution_stats(sub_stats));
      out.add("lec", write_lec_result(lec));
      cache.finish(FlowStage::kSubstitution, std::move(out));
    }
    finish_stage(FlowStage::kSubstitution, span, sw, t, t.substitution_ms);
    done = done || cache.stop_after(FlowStage::kSubstitution);
  }

  // Fat place: doubled pitch and width — tripled with shielded pairs,
  // reserving a third track for the shield wire.
  LefLibrary fat_lef;
  std::optional<DefDesign> fat_def;
  if (!done) {
    Span span(flow_span_name(FlowStage::kPlacement), "flow");
    LefGenOptions fat_gen{o.extract.process};
    fat_gen.wire_scale = o.shielded_pairs ? 3.0 : 2.0;
    fat_lef = generate_lef(fat->library(), fat_gen);
    if (const auto a = cache.begin(FlowStage::kPlacement,
                                   key_of(FlowStage::kPlacement))) {
      fat_def = parse_def(a->section("placed.def"));
    } else {
      fat_def = place_design(*fat, fat_lef, o.place);
      Artifact out;
      out.add("placed.def", write_def(*fat_def));
      cache.finish(FlowStage::kPlacement, std::move(out));
    }
    finish_stage(FlowStage::kPlacement, span, sw, t, t.place_ms);
    done = cache.stop_after(FlowStage::kPlacement);
  }

  // Fat route.
  RouteStats rs;
  if (!done) {
    Span span(flow_span_name(FlowStage::kRouting), "flow");
    if (const auto a = cache.begin(FlowStage::kRouting,
                                   key_of(FlowStage::kRouting))) {
      fat_def = parse_def(a->section("routed.def"));
      rs = parse_route_stats(a->section("route_stats"));
    } else {
      rs = o.route_mode == RouteMode::kQuickLShaped
               ? route_design_quick(*fat, fat_lef, *fat_def)
               : route_design(*fat, fat_lef, *fat_def, o.route);
      Artifact out;
      out.add("routed.def", write_def(*fat_def));
      out.add("route_stats", write_route_stats(rs));
      cache.finish(FlowStage::kRouting, std::move(out));
    }
    finish_stage(FlowStage::kRouting, span, sw, t, t.route_ms);
    done = cache.stop_after(FlowStage::kRouting);
  }

  // Interconnect decomposition + stream-out verification with the
  // differential library (re-verified results ride in the checkpoint).
  const Process018& pr = o.extract.process;
  LefLibrary diff_lef;
  std::optional<DefDesign> diff_def;
  CheckResult stream_check;
  if (!done) {
    Span span(flow_span_name(FlowStage::kDecomposition), "flow");
    diff_lef = make_diff_lef(fat_lef, pr.wire_pitch_um, pr.wire_width_um);
    if (const auto a = cache.begin(FlowStage::kDecomposition,
                                   key_of(FlowStage::kDecomposition))) {
      diff_def = parse_def(a->section("diff.def"));
      stream_check = parse_check_result(a->section("stream_check"));
    } else {
      DecomposeOptions dopts;
      dopts.add_shields = o.shielded_pairs;
      const std::string clk = clock_net_name(*fat);
      if (!clk.empty()) dopts.single_ended_nets.push_back(clk);
      diff_def = decompose_interconnect(*fat_def, um_to_dbu(pr.wire_pitch_um),
                                        um_to_dbu(pr.wire_width_um), dopts);

      // Stream-out verification (the paper's "importing the differential
      // gate level netlist" check): rail symmetry plus per-rail pin
      // connectivity against the differential LEF.
      stream_check = check_differential_symmetry(
          *diff_def, um_to_dbu(pr.wire_pitch_um));
      SECFLOW_CHECK(stream_check.ok, "decomposition symmetry check failed");
      const CheckResult rail_check = check_stream_out(
          *fat, diff_lef, *diff_def, 5 * fat_lef.track_pitch_dbu());
      SECFLOW_CHECK(rail_check.ok,
                    "stream-out rail connectivity check failed: " +
                        (rail_check.issues.empty()
                             ? std::string("?")
                             : rail_check.issues[0].net + " " +
                                   rail_check.issues[0].what));
      stream_check.nets_checked += rail_check.nets_checked;
      stream_check.pins_checked += rail_check.pins_checked;

      Artifact out;
      out.add("diff.def", write_def(*diff_def));
      out.add("stream_check", write_check_result(stream_check));
      cache.finish(FlowStage::kDecomposition, std::move(out));
    }
    finish_stage(FlowStage::kDecomposition, span, sw, t, t.decomposition_ms);
    done = cache.stop_after(FlowStage::kDecomposition);
  }

  // Extraction + switched-cap table + STA on the differential design.
  Extraction ex;
  CapTable caps;
  TimingReport timing;
  if (!done) {
    Span span(flow_span_name(FlowStage::kExtraction), "flow");
    if (const auto a = cache.begin(FlowStage::kExtraction,
                                   key_of(FlowStage::kExtraction))) {
      ex = parse_extraction(a->section("extraction"));
      caps = parse_cap_table(a->section("caps"));
      timing = parse_timing_report(a->section("timing"));
    } else {
      ex = extract_parasitics(*diff_def, *diff, o.extract);
      caps = build_cap_table(*diff, ex);
      timing = analyze_timing(*diff, caps);
      Artifact out;
      out.add("extraction", write_extraction(ex));
      out.add("caps", write_cap_table(caps));
      out.add("timing", write_timing_report(timing));
      cache.finish(FlowStage::kExtraction, std::move(out));
    }
    finish_stage(FlowStage::kExtraction, span, sw, t, t.extraction_ms);

    // The evaluate wave must settle within the first half cycle so the
    // WDDL masters capture valid differential data at the falling edge.
    // Cheap, so re-checked even when the timing came from the cache.
    const double half_cycle_ps = SamplingSpec{}.cycle_s() * 1e12 / 2;
    SECFLOW_CHECK(timing.critical_delay_ps < half_cycle_ps,
                  "WDDL evaluation (" +
                      std::to_string(timing.critical_delay_ps) +
                      " ps) does not fit the evaluate half-cycle");
  }

  const FlowStage completed = o.stop_after.value_or(FlowStage::kExtraction);
  return SecureFlowResult{
      {std::move(*rtl), std::move(diff_lef), take_def(std::move(diff_def)),
       rs, std::move(ex), std::move(caps), t, std::move(timing), completed},
      wlib,
      take_netlist(std::move(fat), library),
      take_netlist(std::move(diff), library),
      std::move(fat_lef),
      take_def(std::move(fat_def)),
      sub_stats,
      lec,
      stream_check};
}

namespace {

/// Common FlowReport fields shared by both flow kinds.  Stages that never
/// ran stay as "not-run" rows with 0 ms and no key, so every report lists
/// all six pipeline stages in order.
FlowReport base_flow_report(const FlowArtifacts& r, const char* flow_kind,
                            const Netlist& final_netlist) {
  FlowReport rep;
  rep.flow = flow_kind;
  rep.design = r.rtl.name();
  rep.completed_through = flow_stage_name(r.completed_through);
  rep.n_threads = r.timings.n_threads;
  rep.cells = final_netlist.n_instances();
  rep.cell_area_um2 = final_netlist.total_area_um2();
  rep.die_area_um2 = r.die_area_um2();
  rep.wirelength_um = dbu_to_um(r.def.total_wirelength());
  rep.vias = r.def.total_vias();
  rep.route_nets = r.route_stats.nets_routed;
  rep.route_iterations = r.route_stats.iterations;
  rep.critical_delay_ps = r.timing.critical_delay_ps;
  rep.total_ms = r.timings.total_ms();
  for (int i = 0; i < kNumFlowStages; ++i) {
    const FlowStage s = static_cast<FlowStage>(i);
    StageEntry e;
    e.name = flow_stage_name(s);
    e.ms = r.timings.stage_ms(s);
    e.cache = cache_outcome_name(r.timings.outcome(s));
    e.cache_key = r.timings.key(s) != 0 ? hash_hex(r.timings.key(s)) : "";
    rep.stages.push_back(std::move(e));
  }
  return rep;
}

}  // namespace

FlowReport build_flow_report(const RegularFlowResult& r) {
  return base_flow_report(r, "regular", r.rtl);
}

FlowReport build_flow_report(const SecureFlowResult& r) {
  FlowReport rep = base_flow_report(r, "secure", r.diff);
  rep.secure.present = true;
  rep.secure.fat_cells = r.fat.n_instances();
  rep.secure.diff_cells = r.diff.n_instances();
  rep.secure.inverters_removed = r.sub_stats.inverters_removed;
  rep.secure.lec_equivalent = r.lec.equivalent;
  rep.secure.lec_points = r.lec.compared_points;
  rep.secure.stream_check_ok = r.stream_out_check.ok;
  return rep;
}

std::string flow_report(const FlowArtifacts& r) {
  std::ostringstream os;
  os << "flow: " << r.rtl.name() << "\n";
  os << "  cells:       " << r.rtl.n_instances() << " (area "
     << r.rtl.total_area_um2() << " um^2)\n";
  append_common(os, r);
  return os.str();
}

std::string flow_report(const SecureFlowResult& r) {
  std::ostringstream os;
  os << "secure flow: " << r.rtl.name() << "\n";
  os << "  rtl cells:   " << r.rtl.n_instances() << "\n";
  os << "  fat cells:   " << r.fat.n_instances() << " ("
     << r.sub_stats.inverters_removed << " inverters removed)\n";
  os << "  diff cells:  " << r.diff.n_instances() << " (area "
     << r.diff.total_area_um2() << " um^2)\n";
  append_common(os, r);
  os << "  LEC:         " << (r.lec.equivalent ? "pass" : "FAIL") << " ("
     << r.lec.compared_points << " points)\n";
  os << "  eval timing: " << r.timing.critical_delay_ps
     << " ps critical (half-cycle budget 4000 ps)\n";
  return os.str();
}

}  // namespace secflow
