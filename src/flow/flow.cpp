#include "flow/flow.h"

#include <chrono>
#include <sstream>

#include "base/error.h"
#include "netlist/netlist_ops.h"

namespace secflow {
namespace {

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double lap_ms() {
    const auto now = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(now - start_).count();
    start_ = now;
    return ms;
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// The clock net name of a mapped netlist (net driving flop CK pins), or
/// empty for combinational designs.
std::string clock_net_name(const Netlist& nl) {
  for (InstId iid : nl.instance_ids()) {
    const CellType& type = nl.cell_of(iid);
    if (type.kind != CellKind::kFlop) continue;
    const NetId ck =
        nl.instance(iid).conns[static_cast<std::size_t>(type.ck_pin())];
    if (ck.valid()) return nl.net(ck).name;
  }
  return {};
}

/// Stage option structs whose thread count is on auto (0) inherit the
/// flow-level Parallelism, so one knob controls the whole flow while an
/// explicit per-stage setting still wins.
FlowOptions resolve_parallelism(const FlowOptions& opts) {
  FlowOptions o = opts;
  if (o.place.parallelism.n_threads == 0) o.place.parallelism = o.parallelism;
  if (o.extract.parallelism.n_threads == 0)
    o.extract.parallelism = o.parallelism;
  return o;
}

void append_common(std::ostringstream& os, const FlowArtifacts& r) {
  os << "  die:         " << r.die_area_um2() << " um^2\n";
  os << "  wirelength:  " << dbu_to_um(r.def.total_wirelength()) << " um, "
     << r.def.total_vias() << " vias\n";
  os << "  runtime:     " << r.timings.total_ms() << " ms ("
     << r.timings.n_threads
     << (r.timings.n_threads == 1 ? " thread)\n" : " threads)\n");
}

}  // namespace

void FlowOptions::validate() const {
  SECFLOW_CHECK(
      !(shielded_pairs && route_mode == RouteMode::kQuickLShaped),
      "FlowOptions: shielded_pairs requires RouteMode::kDetailed — quick "
      "L-shaped routing produces no conflict-checked geometry to shield");
  SECFLOW_CHECK(place.aspect_ratio > 0.0,
                "FlowOptions: place.aspect_ratio must be > 0");
  SECFLOW_CHECK(place.fill_factor > 0.0 && place.fill_factor <= 1.0,
                "FlowOptions: place.fill_factor must be in (0, 1]");
  SECFLOW_CHECK(place.sa_moves_per_instance >= 0,
                "FlowOptions: place.sa_moves_per_instance must be >= 0");
  SECFLOW_CHECK(place.sa_batch >= 1,
                "FlowOptions: place.sa_batch must be >= 1");
  SECFLOW_CHECK(extract.coupling_max_sep_um >= 0.0,
                "FlowOptions: extract.coupling_max_sep_um must be >= 0");
  SECFLOW_CHECK(extract.variation_sigma >= 0.0,
                "FlowOptions: extract.variation_sigma must be >= 0");
  SECFLOW_CHECK(parallelism.n_threads >= 0 &&
                    place.parallelism.n_threads >= 0 &&
                    extract.parallelism.n_threads >= 0,
                "FlowOptions: thread counts must be >= 0 (0 = auto)");
}

SynthConstraints wddl_synth_constraints() {
  SynthConstraints c;
  c.allowed_cells = {"NAND2", "NAND3", "NOR2", "NOR3", "AND2", "AND3",
                     "OR2",   "OR3",   "XOR2", "XNOR2", "AOI21", "AOI22",
                     "AOI32", "OAI21", "OAI22", "MUX2"};
  return c;
}

RegularFlowResult run_regular_flow(const AigCircuit& circuit,
                                   std::shared_ptr<const CellLibrary> library,
                                   const FlowOptions& opts) {
  opts.validate();
  const FlowOptions o = resolve_parallelism(opts);
  Stopwatch sw;
  StageTimings t;
  t.n_threads = o.parallelism.resolved_threads();

  Netlist rtl = technology_map(circuit, library, o.synth);
  rtl.validate();
  t.synthesis_ms = sw.lap_ms();

  LefLibrary lef = generate_lef(*library, LefGenOptions{o.extract.process});
  DefDesign def = place_design(rtl, lef, o.place);
  t.place_ms = sw.lap_ms();

  RouteStats rs = o.route_mode == RouteMode::kQuickLShaped
                      ? route_design_quick(rtl, lef, def)
                      : route_design(rtl, lef, def, o.route);
  t.route_ms = sw.lap_ms();

  Extraction ex = extract_parasitics(def, rtl, o.extract);
  CapTable caps = build_cap_table(rtl, ex);
  t.extraction_ms = sw.lap_ms();
  TimingReport timing = analyze_timing(rtl, caps);

  return RegularFlowResult{{std::move(rtl), std::move(lef), std::move(def),
                            rs, std::move(ex), std::move(caps), t,
                            std::move(timing)}};
}

SecureFlowResult run_secure_flow(const AigCircuit& circuit,
                                 std::shared_ptr<const CellLibrary> library,
                                 const FlowOptions& opts) {
  opts.validate();
  Stopwatch sw;
  StageTimings t;

  // Logic synthesis, restricted to WDDL-supported gates.
  FlowOptions o = resolve_parallelism(opts);
  t.n_threads = o.parallelism.resolved_threads();
  if (o.synth.allowed_cells.empty()) o.synth = wddl_synth_constraints();
  Netlist rtl = technology_map(circuit, library, o.synth);
  rtl.validate();
  t.synthesis_ms = sw.lap_ms();

  // Cell substitution: rtl.v -> fat.v + differential netlist.
  auto wlib = std::make_shared<WddlLibrary>(library);
  SubstitutionResult sub = substitute_cells(rtl, *wlib);
  Netlist diff = expand_differential(sub.fat, *wlib);
  t.substitution_ms = sw.lap_ms();

  // Verification: fat netlist is logically equivalent to the original.
  const LecResult lec = check_equivalence(rtl, sub.fat);
  SECFLOW_CHECK(lec.equivalent,
                "secure flow LEC failed: " +
                    (lec.mismatches.empty() ? std::string("?")
                                            : lec.mismatches[0].what));

  // Fat place & route: doubled pitch and width — tripled with shielded
  // pairs, reserving a third track for the shield wire.
  LefGenOptions fat_gen{o.extract.process};
  fat_gen.wire_scale = o.shielded_pairs ? 3.0 : 2.0;
  LefLibrary fat_lef = generate_lef(*wlib->fat_library(), fat_gen);
  DefDesign fat_def = place_design(sub.fat, fat_lef, o.place);
  t.place_ms = sw.lap_ms();
  RouteStats rs = o.route_mode == RouteMode::kQuickLShaped
                      ? route_design_quick(sub.fat, fat_lef, fat_def)
                      : route_design(sub.fat, fat_lef, fat_def, o.route);
  t.route_ms = sw.lap_ms();

  // Interconnect decomposition + stream-out with the differential library.
  const Process018& pr = o.extract.process;
  DecomposeOptions dopts;
  dopts.add_shields = o.shielded_pairs;
  const std::string clk = clock_net_name(sub.fat);
  if (!clk.empty()) dopts.single_ended_nets.push_back(clk);
  DefDesign diff_def = decompose_interconnect(
      fat_def, um_to_dbu(pr.wire_pitch_um), um_to_dbu(pr.wire_width_um),
      dopts);
  LefLibrary diff_lef =
      make_diff_lef(fat_lef, pr.wire_pitch_um, pr.wire_width_um);
  t.decomposition_ms = sw.lap_ms();

  // Stream-out verification (the paper's "importing the differential gate
  // level netlist" check): rail symmetry plus per-rail pin connectivity
  // against the differential LEF.
  CheckResult stream_check = check_differential_symmetry(
      diff_def, um_to_dbu(pr.wire_pitch_um));
  SECFLOW_CHECK(stream_check.ok, "decomposition symmetry check failed");
  const CheckResult rail_check = check_stream_out(
      sub.fat, diff_lef, diff_def, 5 * fat_lef.track_pitch_dbu());
  SECFLOW_CHECK(rail_check.ok,
                "stream-out rail connectivity check failed: " +
                    (rail_check.issues.empty()
                         ? std::string("?")
                         : rail_check.issues[0].net + " " +
                               rail_check.issues[0].what));
  stream_check.nets_checked += rail_check.nets_checked;
  stream_check.pins_checked += rail_check.pins_checked;

  Extraction ex = extract_parasitics(diff_def, diff, o.extract);
  CapTable caps = build_cap_table(diff, ex);
  t.extraction_ms = sw.lap_ms();

  // The evaluate wave must settle within the first half cycle so the WDDL
  // masters capture valid differential data at the falling edge.
  TimingReport timing = analyze_timing(diff, caps);
  const double half_cycle_ps = SamplingSpec{}.cycle_s() * 1e12 / 2;
  SECFLOW_CHECK(timing.critical_delay_ps < half_cycle_ps,
                "WDDL evaluation (" +
                    std::to_string(timing.critical_delay_ps) +
                    " ps) does not fit the evaluate half-cycle");

  return SecureFlowResult{
      {std::move(rtl), std::move(diff_lef), std::move(diff_def), rs,
       std::move(ex), std::move(caps), t, std::move(timing)},
      wlib,
      std::move(sub.fat),
      std::move(diff),
      std::move(fat_lef),
      std::move(fat_def),
      sub.stats,
      lec,
      stream_check};
}

std::string flow_report(const FlowArtifacts& r) {
  std::ostringstream os;
  os << "flow: " << r.rtl.name() << "\n";
  os << "  cells:       " << r.rtl.n_instances() << " (area "
     << r.rtl.total_area_um2() << " um^2)\n";
  append_common(os, r);
  return os.str();
}

std::string flow_report(const SecureFlowResult& r) {
  std::ostringstream os;
  os << "secure flow: " << r.rtl.name() << "\n";
  os << "  rtl cells:   " << r.rtl.n_instances() << "\n";
  os << "  fat cells:   " << r.fat.n_instances() << " ("
     << r.sub_stats.inverters_removed << " inverters removed)\n";
  os << "  diff cells:  " << r.diff.n_instances() << " (area "
     << r.diff.total_area_um2() << " um^2)\n";
  append_common(os, r);
  os << "  LEC:         " << (r.lec.equivalent ? "pass" : "FAIL") << " ("
     << r.lec.compared_points << " points)\n";
  os << "  eval timing: " << r.timing.critical_delay_ps
     << " ps critical (half-cycle budget 4000 ps)\n";
  return os.str();
}

}  // namespace secflow
