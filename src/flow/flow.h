// The two design flows of the paper (Fig 1).
//
// RegularFlow: logic synthesis -> place & route -> extraction, with
// ordinary single-ended standard cells.
//
// SecureFlow: the same flow with the two extra backend steps —
//   cell substitution      rtl.v -> fat.v (+ differential netlist), and
//   interconnect decomposition  fat.def -> diff.def —
// plus the verification hooks the paper lists: a logic equivalence check
// between the fat and original netlists, and a connectivity check between
// the differential netlist and the decomposed design during stream-out.
//
// Both flows return every artifact (netlists, LEFs, DEFs, extraction,
// switched-capacitance table) so experiments can replay any stage.  The
// common artifacts live in the FlowArtifacts base — for the secure flow,
// `lef`/`def` are the stream-out (differential) library and layout — and
// SecureFlowResult adds the intermediate fat/differential artifacts.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "base/parallel.h"
#include "extract/extract.h"
#include "obs/log.h"
#include "obs/report.h"
#include "lec/lec.h"
#include "lef/lef.h"
#include "netlist/netlist.h"
#include "pnr/check.h"
#include "pnr/decompose.h"
#include "pnr/def.h"
#include "pnr/place.h"
#include "pnr/route.h"
#include "sim/power_sim.h"
#include "sta/sta.h"
#include "synth/circuit.h"
#include "synth/techmap.h"
#include "wddl/cell_substitution.h"
#include "wddl/wddl_library.h"

namespace secflow {

/// How the flow routes the placed design.
enum class RouteMode {
  kDetailed,     ///< conflict-checked grid routing (the paper's flow)
  kQuickLShaped  ///< L-shaped, no conflict checks (scale benchmarks only)
};

/// Which of the paper's two flows (Fig 1) to run.
enum class FlowKind {
  kRegular,  ///< ordinary single-ended standard cells
  kSecure    ///< WDDL substitution + differential routing
};

/// "regular" | "secure" — the FlowReport vocabulary.
const char* flow_kind_name(FlowKind k);

/// The pipeline stages of Fig 1, in execution order.  kSubstitution and
/// kDecomposition exist only in the secure flow; the regular flow rejects
/// them as resume/stop points.
enum class FlowStage {
  kSynthesis = 0,
  kSubstitution,
  kPlacement,
  kRouting,
  kDecomposition,
  kExtraction,
};
inline constexpr int kNumFlowStages = 6;

/// Stage name ("synthesis", ...) — also the checkpoint file prefix.
const char* flow_stage_name(FlowStage s);

/// What the stage-artifact cache did for one stage of one run.
enum class CacheOutcome {
  kNotRun,    ///< stage never executed (stopped earlier, or N/A to the flow)
  kDisabled,  ///< executed with no cache_dir configured
  kMiss,      ///< executed and its artifact saved to the cache
  kHit,       ///< artifact deserialized from the cache; stage skipped
};

/// "not-run", "off", "miss", "hit" — the FlowReport vocabulary.
const char* cache_outcome_name(CacheOutcome c);

struct FlowOptions {
  SynthConstraints synth;
  PlaceOptions place;        ///< paper defaults: aspect 1, fill 80 %
  RouteOptions route;
  ExtractOptions extract;
  RouteMode route_mode = RouteMode::kDetailed;
  /// The paper's "shielded lines" strengthening option: route fat wires at
  /// triple width/pitch and emit a grounded shield wire beside every
  /// differential pair during decomposition (costs silicon area).
  bool shielded_pairs = false;
  /// Parallelism applied to every parallel stage (placement annealing,
  /// extraction) whose own option struct leaves the thread count on auto.
  Parallelism parallelism;

  /// Stage-artifact checkpoint directory.  Non-empty enables per-stage
  /// caching: each stage's cache key hashes the upstream chain plus its own
  /// options, a hit deserializes the stage's artifacts and skips the work,
  /// a miss computes and saves them.  Empty disables checkpointing.
  std::string cache_dir;
  /// First stage to actually execute.  Every stage before it MUST load from
  /// cache_dir (Error otherwise) — use after an earlier run with stop_after
  /// or a warm cache.  Requires cache_dir; kSynthesis is rejected (that is
  /// just a full run — leave unset).
  std::optional<FlowStage> resume_from;
  /// Last stage to execute; the flow returns after checkpointing it.
  /// Artifacts of later stages stay default-initialized — check
  /// FlowArtifacts::completed_through before using them.
  std::optional<FlowStage> stop_after;

  /// When set, the flow applies this level to Logger::global() before
  /// running (otherwise SECFLOW_LOG / the current level stands).  Pure
  /// observability: excluded from cache keys, never affects artifacts.
  std::optional<LogLevel> log_level;

  /// Reject inconsistent combinations with a descriptive Error before the
  /// flow spends minutes producing a silently wrong artifact.  Called by
  /// run_regular_flow / run_secure_flow.  Every violation is collected and
  /// reported in one Error message (one line per offending knob), so a
  /// campaign spec with several bad overrides surfaces them all at once.
  void validate() const;
};

/// The per-stage content-address chain a run of `kind` on this
/// circuit/library/options would use, without running anything: keys[s] is
/// the cache key stage `s` files its checkpoint under (0 for stages the
/// kind never runs — substitution/decomposition in the regular flow).
/// stop_after/resume_from are ignored: the chain addresses content, not
/// control flow.  run_regular_flow / run_secure_flow use this exact
/// function for their cache lookups, so two option sets agreeing on a key
/// prefix are guaranteed to share those stages' checkpoints — the campaign
/// scheduler's dependency analysis is built on that guarantee.
std::array<std::uint64_t, kNumFlowStages> compute_stage_keys(
    FlowKind kind, const AigCircuit& circuit, const CellLibrary& library,
    const FlowOptions& opts);

struct StageTimings {
  double synthesis_ms = 0.0;
  double substitution_ms = 0.0;   // secure flow only
  double place_ms = 0.0;
  double route_ms = 0.0;
  double decomposition_ms = 0.0;  // secure flow only
  double extraction_ms = 0.0;
  /// Threads the flow's parallel stages resolved to (1 = serial).
  int n_threads = 1;
  /// Per-stage cache verdict, indexed by FlowStage.  On a kHit the stage's
  /// *_ms above measures deserialization, not computation.
  std::array<CacheOutcome, kNumFlowStages> cache{};
  /// Per-stage cache keys (0 for stages that never ran), indexed by
  /// FlowStage — the content addresses the checkpoint files live under.
  std::array<std::uint64_t, kNumFlowStages> cache_key{};

  double total_ms() const {
    return synthesis_ms + substitution_ms + place_ms + route_ms +
           decomposition_ms + extraction_ms;
  }
  CacheOutcome outcome(FlowStage s) const {
    return cache[static_cast<std::size_t>(s)];
  }
  /// Wall time of one stage (the *_ms field matching `s`).
  double stage_ms(FlowStage s) const;
  std::uint64_t key(FlowStage s) const {
    return cache_key[static_cast<std::size_t>(s)];
  }
  int cache_hits() const;
  int cache_misses() const;
};

/// Artifacts common to both flows.  For the regular flow these are the
/// only artifacts; for the secure flow `lef`/`def`/`extraction`/`caps`
/// describe the final (differential) layout.
struct FlowArtifacts {
  Netlist rtl;          ///< single-ended mapped netlist
  LefLibrary lef;       ///< physical library of the final layout
  DefDesign def;        ///< the final placed-and-routed layout
  RouteStats route_stats;
  Extraction extraction;
  CapTable caps;        ///< switched-capacitance table for the simulator
  StageTimings timings;
  TimingReport timing;  ///< STA on the extracted design
  /// Last stage that actually produced artifacts (kExtraction for a full
  /// run; earlier under FlowOptions::stop_after — later members are then
  /// default-initialized placeholders).
  FlowStage completed_through = FlowStage::kExtraction;

  double die_area_um2() const { return def.die_area_um2(); }
};

struct RegularFlowResult : FlowArtifacts {};

struct SecureFlowResult : FlowArtifacts {
  // Base members for the secure flow: `lef` is diff_lib.lef, `def` is
  // diff.def (the layout), `extraction`/`caps` are on the differential
  // netlist, and `timing` is STA on it.  WDDL evaluates in the first half
  // cycle (masters capture at the falling edge), so the critical delay
  // must fit period/2; run_secure_flow throws when it does not.
  //
  // `wlib` is null when the substitution stage was loaded from cache: the
  // fat netlist then carries a deserialized fat library
  // (fat.library_ptr()) instead of a live compound inventory.
  std::shared_ptr<WddlLibrary> wlib;
  Netlist fat;                       ///< fat.v
  Netlist diff;                      ///< differential netlist
  LefLibrary fat_lef;                ///< fat_lib.lef
  DefDesign fat_def;                 ///< fat.def
  SubstitutionStats sub_stats;
  LecResult lec;                     ///< fat.v == rtl.v
  CheckResult stream_out_check;      ///< diff netlist == diff.def wiring
};

/// Compile the simulate-many power model for a finished flow: the attacked
/// netlist (rtl for the regular flow, the differential netlist for the
/// secure flow — with WDDL input precharge forced on) plus its extracted
/// cap table.  The model borrows the result's netlist, so the flow result
/// must outlive it.  Build once, then share across simulate_traces /
/// run_des_dpa_campaign / DFA sweeps.
CompiledSimModel compile_power_model(const RegularFlowResult& result,
                                     PowerSimOptions opts = {});
CompiledSimModel compile_power_model(const SecureFlowResult& result,
                                     PowerSimOptions opts = {});

/// Run the regular (reference) flow on an elaborated circuit.
RegularFlowResult run_regular_flow(const AigCircuit& circuit,
                                   std::shared_ptr<const CellLibrary> library,
                                   const FlowOptions& opts = {});

/// Run the secure flow.  Throws Error if a verification step fails.
SecureFlowResult run_secure_flow(const AigCircuit& circuit,
                                 std::shared_ptr<const CellLibrary> library,
                                 const FlowOptions& opts = {});

/// The synthesis gate whitelist for WDDL designs (cells with compound
/// counterparts; XOR/XNOR allowed — their compounds exist — but INV-heavy
/// mapping is discouraged since inverters dissolve into rail swaps).
SynthConstraints wddl_synth_constraints();

/// Human-readable one-design flow report (areas, cells, wirelength).  The
/// SecureFlowResult overload appends the secure-only artifacts and
/// verification verdicts.
std::string flow_report(const FlowArtifacts& r);
std::string flow_report(const SecureFlowResult& r);

/// Machine-readable counterpart of flow_report(): per-stage timings with
/// cache outcomes/keys, route/timing statistics and (secure overload) the
/// verification verdicts, as an obs/report.h FlowReport.  Callers attach
/// DPA results (sca/dpa_experiment.h) and a metrics snapshot before
/// serializing with flow_report_json().
FlowReport build_flow_report(const RegularFlowResult& r);
FlowReport build_flow_report(const SecureFlowResult& r);

}  // namespace secflow
