// The two design flows of the paper (Fig 1).
//
// RegularFlow: logic synthesis -> place & route -> extraction, with
// ordinary single-ended standard cells.
//
// SecureFlow: the same flow with the two extra backend steps —
//   cell substitution      rtl.v -> fat.v (+ differential netlist), and
//   interconnect decomposition  fat.def -> diff.def —
// plus the verification hooks the paper lists: a logic equivalence check
// between the fat and original netlists, and a connectivity check between
// the differential netlist and the decomposed design during stream-out.
//
// Both flows return every artifact (netlists, LEFs, DEFs, extraction,
// switched-capacitance table) so experiments can replay any stage.
#pragma once

#include <memory>
#include <string>

#include "extract/extract.h"
#include "lec/lec.h"
#include "lef/lef.h"
#include "netlist/netlist.h"
#include "pnr/check.h"
#include "pnr/decompose.h"
#include "pnr/def.h"
#include "pnr/place.h"
#include "pnr/route.h"
#include "sim/power_sim.h"
#include "sta/sta.h"
#include "synth/circuit.h"
#include "synth/techmap.h"
#include "wddl/cell_substitution.h"
#include "wddl/wddl_library.h"

namespace secflow {

struct FlowOptions {
  SynthConstraints synth;
  PlaceOptions place;        ///< paper defaults: aspect 1, fill 80 %
  RouteOptions route;
  ExtractOptions extract;
  /// L-shaped non-conflict-checked routing (scale benchmarks only).
  bool quick_route = false;
  /// The paper's "shielded lines" strengthening option: route fat wires at
  /// triple width/pitch and emit a grounded shield wire beside every
  /// differential pair during decomposition (costs silicon area).
  bool shielded_pairs = false;
};

struct StageTimings {
  double synthesis_ms = 0.0;
  double substitution_ms = 0.0;   // secure flow only
  double place_ms = 0.0;
  double route_ms = 0.0;
  double decomposition_ms = 0.0;  // secure flow only
  double extraction_ms = 0.0;
};

struct RegularFlowResult {
  Netlist rtl;
  LefLibrary lef;
  DefDesign def;
  RouteStats route_stats;
  Extraction extraction;
  CapTable caps;
  StageTimings timings;
  TimingReport timing;  ///< STA on the extracted design

  double die_area_um2() const { return def.die_area_um2(); }
};

struct SecureFlowResult {
  Netlist rtl;                       ///< single-ended mapped netlist
  std::shared_ptr<WddlLibrary> wlib;
  Netlist fat;                       ///< fat.v
  Netlist diff;                      ///< differential netlist
  LefLibrary fat_lef;                ///< fat_lib.lef
  LefLibrary diff_lef;               ///< diff_lib.lef
  DefDesign fat_def;                 ///< fat.def
  DefDesign diff_def;                ///< diff.def (the layout)
  RouteStats route_stats;
  SubstitutionStats sub_stats;
  LecResult lec;                     ///< fat.v == rtl.v
  CheckResult stream_out_check;      ///< diff netlist == diff.def wiring
  Extraction extraction;             ///< on diff.def
  CapTable caps;                     ///< for the differential netlist
  StageTimings timings;
  /// STA on the differential netlist.  WDDL evaluates in the first half
  /// cycle (masters capture at the falling edge), so the critical delay
  /// must fit period/2; run_secure_flow throws when it does not.
  TimingReport timing;

  double die_area_um2() const { return diff_def.die_area_um2(); }
};

/// Run the regular (reference) flow on an elaborated circuit.
RegularFlowResult run_regular_flow(const AigCircuit& circuit,
                                   std::shared_ptr<const CellLibrary> library,
                                   const FlowOptions& opts = {});

/// Run the secure flow.  Throws Error if a verification step fails.
SecureFlowResult run_secure_flow(const AigCircuit& circuit,
                                 std::shared_ptr<const CellLibrary> library,
                                 const FlowOptions& opts = {});

/// The synthesis gate whitelist for WDDL designs (cells with compound
/// counterparts; XOR/XNOR allowed — their compounds exist — but INV-heavy
/// mapping is discouraged since inverters dissolve into rail swaps).
SynthConstraints wddl_synth_constraints();

/// Human-readable one-design flow report (areas, cells, wirelength).
std::string flow_report(const RegularFlowResult& r);
std::string flow_report(const SecureFlowResult& r);

}  // namespace secflow
