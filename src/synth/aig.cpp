#include "synth/aig.h"

#include <algorithm>

#include "base/error.h"

namespace secflow {

Aig::Aig() {
  nodes_.push_back(Node{});  // node 0: constant 0
}

AigLit Aig::new_input(const std::string& name) {
  const std::uint32_t id = static_cast<std::uint32_t>(nodes_.size());
  Node n;
  n.input = true;
  n.name = name;
  nodes_.push_back(std::move(n));
  ++n_inputs_;
  return aig_lit(id, false);
}

AigLit Aig::land(AigLit a, AigLit b) {
  // Constant folding and trivial cases.
  if (a == kAigFalse || b == kAigFalse) return kAigFalse;
  if (a == kAigTrue) return b;
  if (b == kAigTrue) return a;
  if (a == b) return a;
  if (a == aig_not(b)) return kAigFalse;
  // Canonical order for structural hashing.
  if (a > b) std::swap(a, b);
  const std::uint64_t key = (static_cast<std::uint64_t>(a) << 32) | b;
  const auto it = strash_.find(key);
  if (it != strash_.end()) return aig_lit(it->second, false);
  const std::uint32_t id = static_cast<std::uint32_t>(nodes_.size());
  Node n;
  n.f0 = a;
  n.f1 = b;
  nodes_.push_back(std::move(n));
  strash_.emplace(key, id);
  ++n_ands_;
  return aig_lit(id, false);
}

AigLit Aig::land_many(std::vector<AigLit> lits) {
  if (lits.empty()) return kAigTrue;
  while (lits.size() > 1) {
    std::vector<AigLit> next;
    next.reserve((lits.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < lits.size(); i += 2) {
      next.push_back(land(lits[i], lits[i + 1]));
    }
    if (lits.size() % 2) next.push_back(lits.back());
    lits = std::move(next);
  }
  return lits.front();
}

AigLit Aig::lor_many(std::vector<AigLit> lits) {
  for (AigLit& l : lits) l = aig_not(l);
  return aig_not(land_many(std::move(lits)));
}

bool Aig::is_input(std::uint32_t node) const {
  SECFLOW_CHECK(node < nodes_.size(), "bad AIG node");
  return nodes_[node].input;
}

bool Aig::is_and(std::uint32_t node) const {
  SECFLOW_CHECK(node < nodes_.size(), "bad AIG node");
  return node != 0 && !nodes_[node].input;
}

AigLit Aig::fanin0(std::uint32_t node) const {
  SECFLOW_CHECK(is_and(node), "fanin of non-AND node");
  return nodes_[node].f0;
}

AigLit Aig::fanin1(std::uint32_t node) const {
  SECFLOW_CHECK(is_and(node), "fanin of non-AND node");
  return nodes_[node].f1;
}

const std::string& Aig::input_name(std::uint32_t node) const {
  SECFLOW_CHECK(is_input(node), "name of non-input node");
  return nodes_[node].name;
}

bool Aig::eval(AigLit root, const std::vector<bool>& input_values) const {
  std::vector<char> value(nodes_.size(), 0);
  value[0] = 0;
  for (std::uint32_t id = 1; id < nodes_.size(); ++id) {
    const Node& n = nodes_[id];
    if (n.input) {
      value[id] = id < input_values.size() && input_values[id] ? 1 : 0;
    } else {
      const bool v0 = (value[aig_node(n.f0)] != 0) != aig_complemented(n.f0);
      const bool v1 = (value[aig_node(n.f1)] != 0) != aig_complemented(n.f1);
      value[id] = (v0 && v1) ? 1 : 0;
    }
  }
  return (value[aig_node(root)] != 0) != aig_complemented(root);
}

std::vector<std::uint32_t> Aig::and_nodes() const {
  std::vector<std::uint32_t> out;
  out.reserve(n_ands_);
  for (std::uint32_t id = 1; id < nodes_.size(); ++id) {
    if (!nodes_[id].input) out.push_back(id);
  }
  return out;
}

std::vector<std::uint32_t> Aig::input_nodes() const {
  std::vector<std::uint32_t> out;
  out.reserve(n_inputs_);
  for (std::uint32_t id = 1; id < nodes_.size(); ++id) {
    if (nodes_[id].input) out.push_back(id);
  }
  return out;
}

}  // namespace secflow
