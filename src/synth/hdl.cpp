#include "synth/hdl.h"

#include <cctype>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <unordered_map>

#include "base/error.h"

namespace secflow {
namespace {

// --- lexer ------------------------------------------------------------------

struct Token {
  enum Kind { kIdent, kLiteral, kNumber, kPunct, kEnd } kind = kEnd;
  std::string text;
  int line = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  Token next() {
    skip();
    if (pos_ >= text_.size()) return {Token::kEnd, "", line_};
    const char c = text_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string s;
      while (pos_ < text_.size()) {
        const char d = text_[pos_];
        if (std::isalnum(static_cast<unsigned char>(d)) || d == '_' ||
            d == '$') {
          s += d;
          ++pos_;
        } else {
          break;
        }
      }
      return {Token::kIdent, s, line_};
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::string s;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        s += text_[pos_++];
      }
      if (pos_ < text_.size() && text_[pos_] == '\'') {
        // Sized literal: WIDTH'b0101 / WIDTH'd46.
        s += text_[pos_++];
        while (pos_ < text_.size()) {
          const char d = text_[pos_];
          if (std::isalnum(static_cast<unsigned char>(d)) || d == '_') {
            s += d;
            ++pos_;
          } else {
            break;
          }
        }
        return {Token::kLiteral, s, line_};
      }
      return {Token::kNumber, s, line_};
    }
    // Two-character operator <=.
    if (c == '<' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '=') {
      pos_ += 2;
      return {Token::kPunct, "<=", line_};
    }
    ++pos_;
    return {Token::kPunct, std::string(1, c), line_};
  }

 private:
  void skip() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '/' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '/') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else if (c == '/' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '*') {
        pos_ += 2;
        while (pos_ + 1 < text_.size() &&
               !(text_[pos_] == '*' && text_[pos_ + 1] == '/')) {
          if (text_[pos_] == '\n') ++line_;
          ++pos_;
        }
        pos_ = std::min(pos_ + 2, text_.size());
      } else {
        break;
      }
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

// --- AST ---------------------------------------------------------------------

struct Expr {
  enum Kind { kConst, kIdent, kBitSel, kNot, kBinary, kTernary } kind = kConst;
  std::vector<bool> const_bits;  // kConst, LSB first
  std::string ident;             // kIdent / kBitSel
  int bit = -1;                  // kBitSel
  char op = 0;                   // kBinary: & | ^
  std::unique_ptr<Expr> a, b, c;
  int line = 0;
};

struct Assign {
  std::string name;
  int bit = -1;  // -1 = whole signal
  std::unique_ptr<Expr> rhs;
  int line = 0;
};

enum class SigKind { kInput, kOutput, kWire, kReg };

struct Signal {
  SigKind kind = SigKind::kWire;
  int width = 1;
};

struct Module {
  std::string name;
  std::vector<std::pair<std::string, Signal>> decl_order;  // ports first
  std::unordered_map<std::string, Signal> signals;
  std::vector<Assign> assigns;      // continuous
  std::vector<Assign> reg_assigns;  // nonblocking, single clock domain
  std::string clock;
};

// --- parser ------------------------------------------------------------------

class HdlParser {
 public:
  explicit HdlParser(const std::string& text) : lexer_(text) { advance(); }

  Module parse() {
    Module m;
    expect_ident("module");
    m.name = expect_name("module name");
    expect_punct("(");
    if (!at_punct(")")) {
      for (;;) {
        parse_port_decl(m);
        if (at_punct(")")) break;
        expect_punct(",");
      }
    }
    expect_punct(")");
    expect_punct(";");
    while (!at_ident("endmodule")) {
      if (cur_.kind == Token::kEnd) fail("unexpected end of file");
      parse_item(m);
    }
    expect_ident("endmodule");
    return m;
  }

 private:
  void declare(Module& m, const std::string& name, Signal sig) {
    if (m.signals.contains(name)) fail("duplicate signal: " + name);
    m.signals.emplace(name, sig);
    m.decl_order.emplace_back(name, sig);
  }

  int parse_optional_range() {
    if (!at_punct("[")) return 1;
    advance();
    const int msb = expect_int("range msb");
    expect_punct(":");
    const int lsb = expect_int("range lsb");
    expect_punct("]");
    if (lsb != 0 || msb < 0) fail("only [N:0] ranges are supported");
    return msb + 1;
  }

  void parse_port_decl(Module& m) {
    const std::string dir = expect_name("port direction");
    if (dir != "input" && dir != "output") {
      fail("expected input/output, got '" + dir + "'");
    }
    Signal sig;
    sig.kind = dir == "input" ? SigKind::kInput : SigKind::kOutput;
    sig.width = parse_optional_range();
    const std::string name = expect_name("port name");
    declare(m, name, sig);
  }

  void parse_item(Module& m) {
    const std::string head = expect_name("item");
    if (head == "wire" || head == "reg") {
      Signal sig;
      sig.kind = head == "wire" ? SigKind::kWire : SigKind::kReg;
      sig.width = parse_optional_range();
      for (;;) {
        declare(m, expect_name("signal name"), sig);
        if (at_punct(";")) break;
        expect_punct(",");
      }
      expect_punct(";");
    } else if (head == "assign") {
      Assign a = parse_assign_target();
      expect_punct("=");
      a.rhs = parse_expr();
      expect_punct(";");
      m.assigns.push_back(std::move(a));
    } else if (head == "always") {
      parse_always(m);
    } else {
      fail("unsupported construct: '" + head + "'");
    }
  }

  Assign parse_assign_target() {
    Assign a;
    a.line = cur_.line;
    a.name = expect_name("assignment target");
    if (at_punct("[")) {
      advance();
      a.bit = expect_int("bit index");
      expect_punct("]");
    }
    return a;
  }

  void parse_always(Module& m) {
    expect_punct("@");
    expect_punct("(");
    expect_ident("posedge");
    const std::string clk = expect_name("clock name");
    if (m.clock.empty()) {
      m.clock = clk;
    } else if (m.clock != clk) {
      fail("multiple clock domains are not supported");
    }
    expect_punct(")");
    const bool block = at_ident("begin");
    if (block) advance();
    do {
      Assign a = parse_assign_target();
      expect_punct("<=");
      a.rhs = parse_expr();
      expect_punct(";");
      m.reg_assigns.push_back(std::move(a));
    } while (block && !at_ident("end"));
    if (block) expect_ident("end");
  }

  // Precedence (lowest first): ?: , | , ^ , & , ~/primary.
  std::unique_ptr<Expr> parse_expr() {
    auto cond = parse_or();
    if (at_punct("?")) {
      advance();
      auto e = std::make_unique<Expr>();
      e->kind = Expr::kTernary;
      e->line = cur_.line;
      e->a = std::move(cond);
      e->b = parse_expr();
      expect_punct(":");
      e->c = parse_expr();
      return e;
    }
    return cond;
  }

  std::unique_ptr<Expr> parse_or() {
    auto lhs = parse_xor();
    while (at_punct("|")) {
      advance();
      auto e = std::make_unique<Expr>();
      e->kind = Expr::kBinary;
      e->op = '|';
      e->line = cur_.line;
      e->a = std::move(lhs);
      e->b = parse_xor();
      lhs = std::move(e);
    }
    return lhs;
  }

  std::unique_ptr<Expr> parse_xor() {
    auto lhs = parse_and();
    while (at_punct("^")) {
      advance();
      auto e = std::make_unique<Expr>();
      e->kind = Expr::kBinary;
      e->op = '^';
      e->line = cur_.line;
      e->a = std::move(lhs);
      e->b = parse_and();
      lhs = std::move(e);
    }
    return lhs;
  }

  std::unique_ptr<Expr> parse_and() {
    auto lhs = parse_unary();
    while (at_punct("&")) {
      advance();
      auto e = std::make_unique<Expr>();
      e->kind = Expr::kBinary;
      e->op = '&';
      e->line = cur_.line;
      e->a = std::move(lhs);
      e->b = parse_unary();
      lhs = std::move(e);
    }
    return lhs;
  }

  std::unique_ptr<Expr> parse_unary() {
    if (at_punct("~")) {
      advance();
      auto e = std::make_unique<Expr>();
      e->kind = Expr::kNot;
      e->line = cur_.line;
      e->a = parse_unary();
      return e;
    }
    if (at_punct("(")) {
      advance();
      auto e = parse_expr();
      expect_punct(")");
      return e;
    }
    if (cur_.kind == Token::kLiteral) {
      auto e = std::make_unique<Expr>();
      e->kind = Expr::kConst;
      e->line = cur_.line;
      e->const_bits = parse_literal(cur_.text);
      advance();
      return e;
    }
    if (cur_.kind == Token::kIdent) {
      auto e = std::make_unique<Expr>();
      e->line = cur_.line;
      e->ident = cur_.text;
      advance();
      if (at_punct("[")) {
        advance();
        e->kind = Expr::kBitSel;
        e->bit = expect_int("bit index");
        expect_punct("]");
      } else {
        e->kind = Expr::kIdent;
      }
      return e;
    }
    fail("expected expression, got '" + cur_.text + "'");
  }

  std::vector<bool> parse_literal(const std::string& text) {
    const std::size_t q = text.find('\'');
    SECFLOW_CHECK(q != std::string::npos, "literal without '");
    const int width = std::stoi(text.substr(0, q));
    if (width < 1 || width > 64) fail("literal width out of range");
    const char base = text[q + 1];
    const std::string digits = text.substr(q + 2);
    std::uint64_t value = 0;
    if (base == 'b' || base == 'B') {
      for (char c : digits) {
        if (c == '_') continue;
        if (c != '0' && c != '1') fail("bad binary literal: " + text);
        value = (value << 1) | static_cast<std::uint64_t>(c - '0');
      }
    } else if (base == 'd' || base == 'D') {
      for (char c : digits) {
        if (c == '_') continue;
        if (!std::isdigit(static_cast<unsigned char>(c))) {
          fail("bad decimal literal: " + text);
        }
        value = value * 10 + static_cast<std::uint64_t>(c - '0');
      }
    } else if (base == 'h' || base == 'H') {
      for (char c : digits) {
        if (c == '_') continue;
        if (!std::isxdigit(static_cast<unsigned char>(c))) {
          fail("bad hex literal: " + text);
        }
        const int d = std::isdigit(static_cast<unsigned char>(c))
                          ? c - '0'
                          : std::tolower(c) - 'a' + 10;
        value = (value << 4) | static_cast<std::uint64_t>(d);
      }
    } else {
      fail("unsupported literal base in " + text);
    }
    std::vector<bool> bits(static_cast<std::size_t>(width));
    for (int i = 0; i < width; ++i) bits[static_cast<std::size_t>(i)] = (value >> i) & 1;
    return bits;
  }

  void advance() { cur_ = lexer_.next(); }
  [[noreturn]] void fail(const std::string& msg) {
    throw ParseError("hdl line " + std::to_string(cur_.line), msg);
  }
  bool at_punct(const std::string& p) const {
    return cur_.kind == Token::kPunct && cur_.text == p;
  }
  bool at_ident(const std::string& s) const {
    return cur_.kind == Token::kIdent && cur_.text == s;
  }
  void expect_punct(const std::string& p) {
    if (!at_punct(p)) fail("expected '" + p + "', got '" + cur_.text + "'");
    advance();
  }
  void expect_ident(const std::string& s) {
    if (!at_ident(s)) fail("expected '" + s + "', got '" + cur_.text + "'");
    advance();
  }
  std::string expect_name(const std::string& what) {
    if (cur_.kind != Token::kIdent) {
      fail("expected " + what + ", got '" + cur_.text + "'");
    }
    std::string s = cur_.text;
    advance();
    return s;
  }
  int expect_int(const std::string& what) {
    if (cur_.kind != Token::kNumber) {
      fail("expected " + what + ", got '" + cur_.text + "'");
    }
    const int v = std::stoi(cur_.text);
    advance();
    return v;
  }

  Lexer lexer_;
  Token cur_;
};

// --- elaboration -------------------------------------------------------------

class Elaborator {
 public:
  explicit Elaborator(Module m) : m_(std::move(m)) {}

  AigCircuit elaborate() {
    AigCircuit c;
    c.name = m_.name;
    c.clock = m_.clock.empty() ? "clk" : m_.clock;

    validate_clock();
    index_assigns();

    // Create AIG inputs for input ports (clock excluded) and register Qs.
    for (const auto& [name, sig] : m_.decl_order) {
      if (sig.kind == SigKind::kInput && name != m_.clock) {
        auto& bits = values_[name];
        bits.resize(static_cast<std::size_t>(sig.width));
        for (int i = 0; i < sig.width; ++i) {
          const std::string bn = circuit_bit_name(name, i, sig.width);
          bits[static_cast<std::size_t>(i)] = c.aig.new_input(bn);
          c.inputs.push_back(CircuitBit{bn, bits[static_cast<std::size_t>(i)]});
        }
        resolved_.insert(name);
      } else if (sig.kind == SigKind::kReg) {
        auto& bits = values_[name];
        bits.resize(static_cast<std::size_t>(sig.width));
        for (int i = 0; i < sig.width; ++i) {
          const std::string bn = circuit_bit_name(name, i, sig.width);
          bits[static_cast<std::size_t>(i)] = c.aig.new_input("reg:" + bn);
          c.regs.push_back(CircuitReg{bn, bits[static_cast<std::size_t>(i)], 0});
        }
        resolved_.insert(name);
      }
    }
    aig_ = &c.aig;

    // Register next-states.
    std::size_t reg_base = 0;
    for (const auto& [name, sig] : m_.decl_order) {
      if (sig.kind != SigKind::kReg) continue;
      for (int i = 0; i < sig.width; ++i) {
        const std::string bn = circuit_bit_name(name, i, sig.width);
        CircuitReg* reg = nullptr;
        for (std::size_t r = reg_base; r < c.regs.size(); ++r) {
          if (c.regs[r].name == bn) {
            reg = &c.regs[r];
            break;
          }
        }
        SECFLOW_CHECK(reg != nullptr, "internal: reg bit lost");
        reg->next = reg_next_bit(name, i, sig.width);
      }
    }

    // Output ports.
    for (const auto& [name, sig] : m_.decl_order) {
      if (sig.kind != SigKind::kOutput) continue;
      const std::vector<AigLit> bits = signal_value(name);
      for (int i = 0; i < sig.width; ++i) {
        c.outputs.push_back(
            CircuitBit{circuit_bit_name(name, i, sig.width),
                       bits[static_cast<std::size_t>(i)]});
      }
    }
    return c;
  }

 private:
  void validate_clock() {
    if (m_.clock.empty()) return;
    const auto it = m_.signals.find(m_.clock);
    if (it == m_.signals.end() || it->second.kind != SigKind::kInput ||
        it->second.width != 1) {
      throw ParseError("hdl", "clock " + m_.clock +
                                  " must be a scalar input port");
    }
  }

  void index_assigns() {
    for (const Assign& a : m_.assigns) {
      const Signal& sig = signal(a.name, a.line);
      if (sig.kind == SigKind::kInput) {
        throw ParseError(loc(a.line), "cannot assign input " + a.name);
      }
      if (sig.kind == SigKind::kReg) {
        throw ParseError(loc(a.line),
                         "reg " + a.name + " must be assigned with <=");
      }
      register_target(comb_assign_, a, sig);
    }
    for (const Assign& a : m_.reg_assigns) {
      const Signal& sig = signal(a.name, a.line);
      if (sig.kind != SigKind::kReg) {
        throw ParseError(loc(a.line),
                         "<= target " + a.name + " must be a reg");
      }
      register_target(reg_assign_, a, sig);
    }
  }

  void register_target(std::map<std::pair<std::string, int>, const Assign*>& dst,
                       const Assign& a, const Signal& sig) {
    if (a.bit >= sig.width) {
      throw ParseError(loc(a.line), "bit index out of range: " + a.name);
    }
    const auto key = std::make_pair(a.name, a.bit);
    if (dst.contains(key) ||
        (a.bit == -1 && has_any_bit(dst, a.name)) ||
        (a.bit >= 0 && dst.contains(std::make_pair(a.name, -1)))) {
      throw ParseError(loc(a.line), "multiple drivers for " + a.name);
    }
    dst.emplace(key, &a);
  }

  static bool has_any_bit(
      const std::map<std::pair<std::string, int>, const Assign*>& dst,
      const std::string& name) {
    const auto it = dst.lower_bound(std::make_pair(name, -1));
    return it != dst.end() && it->first.first == name;
  }

  const Signal& signal(const std::string& name, int line) {
    const auto it = m_.signals.find(name);
    if (it == m_.signals.end()) {
      throw ParseError(loc(line), "undefined signal: " + name);
    }
    return it->second;
  }

  AigLit reg_next_bit(const std::string& name, int bit, int width) {
    const auto whole = reg_assign_.find(std::make_pair(name, -1));
    if (whole != reg_assign_.end()) {
      const std::vector<AigLit> rhs = eval(*whole->second->rhs);
      if (static_cast<int>(rhs.size()) != width) {
        throw ParseError(loc(whole->second->line),
                         "width mismatch assigning " + name);
      }
      return rhs[static_cast<std::size_t>(bit)];
    }
    const auto one = reg_assign_.find(std::make_pair(name, bit));
    if (one == reg_assign_.end()) {
      throw ParseError("hdl", "reg bit never assigned: " + name + "[" +
                                  std::to_string(bit) + "]");
    }
    const std::vector<AigLit> rhs = eval(*one->second->rhs);
    if (rhs.size() != 1) {
      throw ParseError(loc(one->second->line),
                       "bit assignment needs 1-bit rhs: " + name);
    }
    return rhs[0];
  }

  /// Value of a whole signal, computing wire assignments on demand.
  std::vector<AigLit> signal_value(const std::string& name) {
    const auto it = values_.find(name);
    if (it != values_.end() && resolved_.contains(name)) return it->second;
    if (in_flight_.contains(name)) {
      throw ParseError("hdl", "combinational loop through " + name);
    }
    const Signal& sig = signal(name, 0);
    in_flight_.insert(name);
    std::vector<AigLit> bits(static_cast<std::size_t>(sig.width));
    const auto whole = comb_assign_.find(std::make_pair(name, -1));
    if (whole != comb_assign_.end()) {
      const std::vector<AigLit> rhs = eval(*whole->second->rhs);
      if (static_cast<int>(rhs.size()) != sig.width) {
        throw ParseError(loc(whole->second->line),
                         "width mismatch assigning " + name);
      }
      bits = rhs;
    } else {
      for (int i = 0; i < sig.width; ++i) {
        const auto one = comb_assign_.find(std::make_pair(name, i));
        if (one == comb_assign_.end()) {
          throw ParseError("hdl", "signal never assigned: " + name +
                                      (sig.width > 1 ? "[" + std::to_string(i) + "]"
                                                     : ""));
        }
        const std::vector<AigLit> rhs = eval(*one->second->rhs);
        if (rhs.size() != 1) {
          throw ParseError(loc(one->second->line),
                           "bit assignment needs 1-bit rhs: " + name);
        }
        bits[static_cast<std::size_t>(i)] = rhs[0];
      }
    }
    in_flight_.erase(name);
    values_[name] = bits;
    resolved_.insert(name);
    return bits;
  }

  std::vector<AigLit> eval(const Expr& e) {
    switch (e.kind) {
      case Expr::kConst: {
        std::vector<AigLit> bits;
        bits.reserve(e.const_bits.size());
        for (bool b : e.const_bits) bits.push_back(b ? kAigTrue : kAigFalse);
        return bits;
      }
      case Expr::kIdent: {
        if (e.ident == m_.clock) {
          throw ParseError(loc(e.line), "clock used in expression");
        }
        return signal_value(e.ident);
      }
      case Expr::kBitSel: {
        const std::vector<AigLit> v = signal_value(e.ident);
        if (e.bit < 0 || e.bit >= static_cast<int>(v.size())) {
          throw ParseError(loc(e.line), "bit index out of range: " + e.ident);
        }
        return {v[static_cast<std::size_t>(e.bit)]};
      }
      case Expr::kNot: {
        std::vector<AigLit> v = eval(*e.a);
        for (AigLit& l : v) l = aig_not(l);
        return v;
      }
      case Expr::kBinary: {
        const std::vector<AigLit> a = eval(*e.a);
        const std::vector<AigLit> b = eval(*e.b);
        if (a.size() != b.size()) {
          throw ParseError(loc(e.line), "operand width mismatch");
        }
        std::vector<AigLit> out(a.size());
        for (std::size_t i = 0; i < a.size(); ++i) {
          switch (e.op) {
            case '&': out[i] = aig_->land(a[i], b[i]); break;
            case '|': out[i] = aig_->lor(a[i], b[i]); break;
            case '^': out[i] = aig_->lxor(a[i], b[i]); break;
            default: throw ParseError(loc(e.line), "bad operator");
          }
        }
        return out;
      }
      case Expr::kTernary: {
        const std::vector<AigLit> cond = eval(*e.a);
        if (cond.size() != 1) {
          throw ParseError(loc(e.line), "ternary condition must be 1 bit");
        }
        const std::vector<AigLit> t = eval(*e.b);
        const std::vector<AigLit> f = eval(*e.c);
        if (t.size() != f.size()) {
          throw ParseError(loc(e.line), "ternary arm width mismatch");
        }
        std::vector<AigLit> out(t.size());
        for (std::size_t i = 0; i < t.size(); ++i) {
          out[i] = aig_->lmux(cond[0], t[i], f[i]);
        }
        return out;
      }
    }
    throw ParseError(loc(e.line), "bad expression");
  }

  static std::string loc(int line) {
    return "hdl line " + std::to_string(line);
  }

  Module m_;
  Aig* aig_ = nullptr;
  std::unordered_map<std::string, std::vector<AigLit>> values_;
  std::set<std::string> resolved_;
  std::set<std::string> in_flight_;
  std::map<std::pair<std::string, int>, const Assign*> comb_assign_;
  std::map<std::pair<std::string, int>, const Assign*> reg_assign_;
};

}  // namespace

AigCircuit parse_hdl(const std::string& source) {
  Module m = HdlParser(source).parse();
  return Elaborator(std::move(m)).elaborate();
}

AigCircuit parse_hdl_file(const std::string& path) {
  std::ifstream f(path);
  SECFLOW_CHECK(f.good(), "cannot open: " + path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return parse_hdl(ss.str());
}

}  // namespace secflow
