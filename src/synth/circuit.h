// Bit-level circuit on top of the AIG: named inputs/outputs and registers.
//
// AigCircuit is the synthesis-facing intermediate form: the mini-HDL
// front-end (hdl_parser.h) and the programmatic CircuitBuilder both produce
// it, and the technology mapper (techmap.h) consumes it.  Register outputs
// are AIG primary inputs; their next-state literals close the sequential
// loop at mapping time via DFF cells.
#pragma once

#include <string>
#include <vector>

#include "synth/aig.h"

namespace secflow {

struct CircuitBit {
  std::string name;  ///< scalar signal name (vector bits use name_<i>)
  AigLit lit = 0;
};

struct CircuitReg {
  std::string name;
  AigLit q = 0;     ///< register output (an AIG primary input)
  AigLit next = 0;  ///< next-state function
};

struct AigCircuit {
  Aig aig;
  std::vector<CircuitBit> inputs;
  std::vector<CircuitBit> outputs;
  std::vector<CircuitReg> regs;
  std::string name = "top";
  std::string clock = "clk";  ///< clock port name (present iff regs exist)
};

/// Convenience builder for constructing AigCircuits from C++ (used by the
/// crypto circuit generators and tests).
class CircuitBuilder {
 public:
  explicit CircuitBuilder(std::string module_name);

  /// Declare an input vector; returns its bit literals, LSB first.
  std::vector<AigLit> input(const std::string& name, int width = 1);
  /// Declare a register vector; returns the Q literals, LSB first.
  std::vector<AigLit> reg(const std::string& name, int width = 1);
  /// Set a register's next-state bits (same order as reg() returned).
  void set_next(const std::string& name, const std::vector<AigLit>& next);
  /// Declare an output vector driven by `bits`.
  void output(const std::string& name, const std::vector<AigLit>& bits);

  Aig& aig() { return circuit_.aig; }
  /// Finalize: checks every register got a next-state and returns the
  /// circuit (builder must not be used afterwards).
  AigCircuit take();

 private:
  AigCircuit circuit_;
  std::vector<std::string> pending_regs_;

  static std::string bit_name(const std::string& base, int bit, int width);
};

/// Name of bit `bit` of a `width`-wide signal (name itself when width==1).
std::string circuit_bit_name(const std::string& base, int bit, int width);

}  // namespace secflow
