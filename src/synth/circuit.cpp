#include "synth/circuit.h"

#include <algorithm>

#include "base/error.h"

namespace secflow {

std::string circuit_bit_name(const std::string& base, int bit, int width) {
  return width == 1 ? base : base + "_" + std::to_string(bit);
}

CircuitBuilder::CircuitBuilder(std::string module_name) {
  circuit_.name = std::move(module_name);
}

std::string CircuitBuilder::bit_name(const std::string& base, int bit,
                                     int width) {
  return circuit_bit_name(base, bit, width);
}

std::vector<AigLit> CircuitBuilder::input(const std::string& name, int width) {
  SECFLOW_CHECK(width >= 1, "input width");
  std::vector<AigLit> bits;
  bits.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    const std::string bn = bit_name(name, i, width);
    const AigLit lit = circuit_.aig.new_input(bn);
    circuit_.inputs.push_back(CircuitBit{bn, lit});
    bits.push_back(lit);
  }
  return bits;
}

std::vector<AigLit> CircuitBuilder::reg(const std::string& name, int width) {
  SECFLOW_CHECK(width >= 1, "reg width");
  std::vector<AigLit> bits;
  bits.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    const std::string bn = bit_name(name, i, width);
    const AigLit q = circuit_.aig.new_input("reg:" + bn);
    circuit_.regs.push_back(CircuitReg{bn, q, 0});
    pending_regs_.push_back(bn);
    bits.push_back(q);
  }
  return bits;
}

void CircuitBuilder::set_next(const std::string& name,
                              const std::vector<AigLit>& next) {
  int matched = 0;
  for (CircuitReg& r : circuit_.regs) {
    // Vector bits are name_<i>; scalar is the plain name.
    for (std::size_t i = 0; i < next.size(); ++i) {
      const std::string bn =
          bit_name(name, static_cast<int>(i), static_cast<int>(next.size()));
      if (r.name == bn) {
        r.next = next[i];
        ++matched;
        pending_regs_.erase(
            std::remove(pending_regs_.begin(), pending_regs_.end(), bn),
            pending_regs_.end());
      }
    }
  }
  SECFLOW_CHECK(matched == static_cast<int>(next.size()),
                "set_next: register " + name + " width mismatch or unknown");
}

void CircuitBuilder::output(const std::string& name,
                            const std::vector<AigLit>& bits) {
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const std::string bn =
        bit_name(name, static_cast<int>(i), static_cast<int>(bits.size()));
    circuit_.outputs.push_back(CircuitBit{bn, bits[i]});
  }
}

AigCircuit CircuitBuilder::take() {
  SECFLOW_CHECK(pending_regs_.empty(),
                "register without next-state: " +
                    (pending_regs_.empty() ? "" : pending_regs_.front()));
  return std::move(circuit_);
}

}  // namespace secflow
