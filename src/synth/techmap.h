// Technology mapping: AigCircuit -> standard-cell Netlist.
//
// Cut-based structural mapping with exact boolean matching:
//  * enumerate K-feasible cuts per AIG node (K = max library arity),
//  * compute each cut's truth table,
//  * match against library cells under all input permutations and input
//    phase assignments (precomputed match tables),
//  * area-oriented dynamic programming over both output phases, with
//    inverters bridging phases,
//  * cover extraction instantiates the chosen cells, DFFs for registers,
//    INV/BUF/TIE cells at the boundaries.
//
// The constraints object mirrors the paper's synthesis `script`: it
// restricts the gates available to the mapper (for the secure flow, the
// cells that have WDDL counterparts).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "netlist/netlist.h"
#include "synth/circuit.h"

namespace secflow {

struct SynthConstraints {
  /// Cell names the mapper may use; empty means the whole library.
  /// INV/BUF/DFF/TIE0/TIE1 are always available (flow infrastructure).
  std::vector<std::string> allowed_cells;
  /// Maximum cut width (clamped to LogicFn::kMaxInputs).
  int max_cut_size = 5;
  /// Cuts retained per node (smallest first).
  int max_cuts_per_node = 12;
};

/// Map `circuit` onto `library` cells.  Throws Error if some node cannot be
/// realized with the allowed cells.
Netlist technology_map(const AigCircuit& circuit,
                       std::shared_ptr<const CellLibrary> library,
                       const SynthConstraints& constraints = {});

}  // namespace secflow
