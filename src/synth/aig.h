// And-Inverter Graph with structural hashing and constant folding.
//
// Literals encode (node, phase): lit = 2*node + complement.  Node 0 is the
// constant-0 node, so literal 0 is constant 0 and literal 1 is constant 1.
// Primary inputs are nodes with no fanin; AND nodes have two fanin literals.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace secflow {

using AigLit = std::uint32_t;

inline constexpr AigLit kAigFalse = 0;
inline constexpr AigLit kAigTrue = 1;

inline constexpr AigLit aig_not(AigLit l) { return l ^ 1u; }
inline constexpr std::uint32_t aig_node(AigLit l) { return l >> 1; }
inline constexpr bool aig_complemented(AigLit l) { return (l & 1u) != 0; }
inline constexpr AigLit aig_lit(std::uint32_t node, bool complemented) {
  return (node << 1) | (complemented ? 1u : 0u);
}

class Aig {
 public:
  Aig();

  /// Create a primary input node; returns its positive literal.
  AigLit new_input(const std::string& name = "");

  /// Structural-hashed AND with constant folding (a&0=0, a&1=a, a&a=a,
  /// a&!a=0).  Returns an existing node when one matches.
  AigLit land(AigLit a, AigLit b);

  AigLit lor(AigLit a, AigLit b) {
    return aig_not(land(aig_not(a), aig_not(b)));
  }
  AigLit lxor(AigLit a, AigLit b) {
    return lor(land(a, aig_not(b)), land(aig_not(a), b));
  }
  AigLit lxnor(AigLit a, AigLit b) { return aig_not(lxor(a, b)); }
  AigLit lnand(AigLit a, AigLit b) { return aig_not(land(a, b)); }
  AigLit lnor(AigLit a, AigLit b) { return aig_not(lor(a, b)); }
  /// sel ? t : f
  AigLit lmux(AigLit sel, AigLit t, AigLit f) {
    return lor(land(sel, t), land(aig_not(sel), f));
  }
  /// AND/OR over a list (balanced tree); empty list yields the identity
  /// element (1 for AND, 0 for OR).
  AigLit land_many(std::vector<AigLit> lits);
  AigLit lor_many(std::vector<AigLit> lits);

  std::uint32_t n_nodes() const { return static_cast<std::uint32_t>(nodes_.size()); }
  std::uint32_t n_ands() const { return n_ands_; }
  std::uint32_t n_inputs() const { return n_inputs_; }

  bool is_input(std::uint32_t node) const;
  bool is_const(std::uint32_t node) const { return node == 0; }
  bool is_and(std::uint32_t node) const;
  AigLit fanin0(std::uint32_t node) const;
  AigLit fanin1(std::uint32_t node) const;
  const std::string& input_name(std::uint32_t node) const;

  /// Evaluate a literal given values for all primary inputs
  /// (indexed by node id; non-input entries ignored).
  bool eval(AigLit root, const std::vector<bool>& input_values) const;

  /// All AND node ids in topological (creation) order.
  std::vector<std::uint32_t> and_nodes() const;
  /// All primary input node ids in creation order.
  std::vector<std::uint32_t> input_nodes() const;

 private:
  struct Node {
    AigLit f0 = 0;   // fanins; meaningful only for AND nodes
    AigLit f1 = 0;
    bool input = false;
    std::string name;  // inputs only
  };

  std::vector<Node> nodes_;
  std::unordered_map<std::uint64_t, std::uint32_t> strash_;
  std::uint32_t n_ands_ = 0;
  std::uint32_t n_inputs_ = 0;
};

}  // namespace secflow
