#include "synth/techmap.h"

#include <algorithm>
#include <array>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "base/error.h"
#include "netlist/netlist_ops.h"

namespace secflow {
namespace {

/// One way to realize a truth table with a library cell: connect cell input
/// pin j to cut leaf perm[j], complemented when (phase_mask >> j) & 1.
struct CellMatch {
  CellTypeId cell;
  std::vector<int> perm;
  unsigned phase_mask = 0;
};

/// Key for match lookup: (arity, truth table).
using TableKey = std::uint64_t;
TableKey table_key(int arity, std::uint64_t table) {
  return (static_cast<std::uint64_t>(arity) << 58) | table;
}

/// Precomputed boolean-matching tables for the allowed library subset.
class MatchLibrary {
 public:
  MatchLibrary(const CellLibrary& lib, const SynthConstraints& cons) {
    std::unordered_set<std::string> allowed(cons.allowed_cells.begin(),
                                            cons.allowed_cells.end());
    for (CellTypeId id : lib.all()) {
      const CellType& c = lib.cell(id);
      if (c.kind != CellKind::kCombinational) continue;
      if (!allowed.empty() && !allowed.contains(c.name) && c.name != "INV" &&
          c.name != "BUF") {
        continue;
      }
      add_cell(id, c);
      if (c.name == "INV") inv_ = id;
      if (c.name == "BUF") buf_ = id;
    }
    SECFLOW_CHECK(inv_.valid(), "library must provide an INV cell");
  }

  const std::vector<CellMatch>* find(int arity, std::uint64_t table) const {
    const auto it = matches_.find(table_key(arity, table));
    return it == matches_.end() ? nullptr : &it->second;
  }

  CellTypeId inv() const { return inv_; }
  CellTypeId buf() const { return buf_; }

 private:
  void add_cell(CellTypeId id, const CellType& c) {
    const int n = c.n_inputs();
    if (n < 1 || n > LogicFn::kMaxInputs) return;
    std::vector<int> perm(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) perm[static_cast<std::size_t>(i)] = i;
    // All input permutations x all input phase assignments.
    std::sort(perm.begin(), perm.end());
    do {
      for (unsigned mask = 0; mask < (1u << n); ++mask) {
        const std::uint64_t t = realized_table(c.function, perm, mask);
        auto& slot = matches_[table_key(n, t)];
        // Keep only the cheapest few realizations per table.
        if (slot.size() < 3) {
          slot.push_back(CellMatch{id, perm, mask});
        }
      }
    } while (std::next_permutation(perm.begin(), perm.end()));
  }

  /// Truth table of f(y) with y_j = x_{perm[j]} ^ mask_j, over leaf vars x.
  static std::uint64_t realized_table(const LogicFn& f,
                                      const std::vector<int>& perm,
                                      unsigned mask) {
    const int n = f.n_inputs();
    const unsigned rows = 1u << n;
    std::uint64_t t = 0;
    for (unsigned r = 0; r < rows; ++r) {
      unsigned row = 0;
      for (int j = 0; j < n; ++j) {
        const unsigned bit =
            ((r >> perm[static_cast<std::size_t>(j)]) & 1u) ^
            ((mask >> j) & 1u);
        row |= bit << j;
      }
      if (f.eval(row)) t |= std::uint64_t{1} << r;
    }
    return t;
  }

  std::unordered_map<TableKey, std::vector<CellMatch>> matches_;
  CellTypeId inv_;
  CellTypeId buf_;
};

using Cut = std::vector<std::uint32_t>;  // sorted leaf node ids

/// Merge two cuts; empty result means the union exceeds `k` leaves.
Cut merge_cuts(const Cut& a, const Cut& b, int k) {
  Cut out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  if (static_cast<int>(out.size()) > k) out.clear();
  return out;
}

class Mapper {
 public:
  Mapper(const AigCircuit& circuit, std::shared_ptr<const CellLibrary> library,
         const SynthConstraints& cons)
      : c_(circuit),
        lib_(std::move(library)),
        cons_(cons),
        matcher_(*lib_, cons),
        nl_(circuit.name, lib_) {
    cons_.max_cut_size = std::min(cons_.max_cut_size, LogicFn::kMaxInputs);
  }

  Netlist run() {
    enumerate_cuts();
    dynamic_programming();
    build_netlist();
    return std::move(nl_);
  }

 private:
  // --- cut enumeration ----------------------------------------------------
  void enumerate_cuts() {
    const std::uint32_t n = c_.aig.n_nodes();
    cuts_.resize(n);
    for (std::uint32_t id = 1; id < n; ++id) {
      if (c_.aig.is_input(id)) {
        cuts_[id] = {Cut{id}};
        continue;
      }
      const std::uint32_t n0 = aig_node(c_.aig.fanin0(id));
      const std::uint32_t n1 = aig_node(c_.aig.fanin1(id));
      std::vector<Cut> out;
      for (const Cut& ca : cuts_for_merge(n0)) {
        for (const Cut& cb : cuts_for_merge(n1)) {
          Cut m = merge_cuts(ca, cb, cons_.max_cut_size);
          if (!m.empty()) out.push_back(std::move(m));
        }
      }
      // Dedupe, keep smallest cuts first, cap the list.
      std::sort(out.begin(), out.end(),
                [](const Cut& a, const Cut& b) {
                  return a.size() != b.size() ? a.size() < b.size() : a < b;
                });
      out.erase(std::unique(out.begin(), out.end()), out.end());
      if (static_cast<int>(out.size()) > cons_.max_cuts_per_node) {
        out.resize(static_cast<std::size_t>(cons_.max_cuts_per_node));
      }
      cuts_[id] = std::move(out);
    }
  }

  /// Cuts usable when merging at a fanout: the node's own cuts plus its
  /// trivial cut (so the fanout can stop at this node).
  std::vector<Cut> cuts_for_merge(std::uint32_t node) const {
    if (node == 0) return {};  // constants are folded; never seen here
    std::vector<Cut> cs = cuts_[node];
    if (c_.aig.is_and(node)) cs.push_back(Cut{node});
    return cs;
  }

  /// Truth table of `node` as a function of the (sorted) cut leaves.
  std::uint64_t cut_table(std::uint32_t node, const Cut& cut) const {
    std::unordered_map<std::uint32_t, std::uint64_t> memo;
    const int k = static_cast<int>(cut.size());
    for (int i = 0; i < k; ++i) {
      // Variable pattern for leaf i over 2^k rows.
      std::uint64_t t = 0;
      for (unsigned r = 0; r < (1u << k); ++r) {
        if ((r >> i) & 1u) t |= std::uint64_t{1} << r;
      }
      memo[cut[static_cast<std::size_t>(i)]] = t;
    }
    const std::uint64_t ones =
        k >= 6 ? ~std::uint64_t{0} : ((std::uint64_t{1} << (1u << k)) - 1);
    return cone_table(node, memo, ones);
  }

  std::uint64_t cone_table(
      std::uint32_t node,
      std::unordered_map<std::uint32_t, std::uint64_t>& memo,
      std::uint64_t ones) const {
    const auto it = memo.find(node);
    if (it != memo.end()) return it->second;
    SECFLOW_CHECK(c_.aig.is_and(node), "cut cone reached a non-leaf input");
    const AigLit l0 = c_.aig.fanin0(node);
    const AigLit l1 = c_.aig.fanin1(node);
    std::uint64_t t0 = cone_table(aig_node(l0), memo, ones);
    std::uint64_t t1 = cone_table(aig_node(l1), memo, ones);
    if (aig_complemented(l0)) t0 = ~t0 & ones;
    if (aig_complemented(l1)) t1 = ~t1 & ones;
    const std::uint64_t t = t0 & t1;
    memo.emplace(node, t);
    return t;
  }

  // --- dynamic programming -------------------------------------------------
  struct Choice {
    enum Kind { kNone, kCell, kInvert } kind = kNone;
    // kCell:
    CellMatch match;
    Cut cut;
  };

  void dynamic_programming() {
    const std::uint32_t n = c_.aig.n_nodes();
    const double kInf = 1e30;
    cost_.assign(n, {kInf, kInf});
    choice_.assign(n, {});
    const double inv_area = lib_->cell(matcher_.inv()).area_um2;

    for (std::uint32_t id = 1; id < n; ++id) {
      if (c_.aig.is_input(id)) {
        cost_[id][0] = 0.0;
        cost_[id][1] = inv_area;
        choice_[id][1].kind = Choice::kInvert;
        continue;
      }
      for (const Cut& cut : cuts_[id]) {
        const std::uint64_t t = cut_table(id, cut);
        const int k = static_cast<int>(cut.size());
        const std::uint64_t ones =
            k >= 6 ? ~std::uint64_t{0} : ((std::uint64_t{1} << (1u << k)) - 1);
        double leaf_cost = 0.0;
        for (std::uint32_t leaf : cut) leaf_cost += cost_[leaf][0];
        try_matches(id, 0, cut, t, leaf_cost);
        try_matches(id, 1, cut, ~t & ones, leaf_cost);
      }
      // Phase bridging with inverters (one relaxation round suffices:
      // an INV chain longer than 1 is never cheaper).
      for (int ph = 0; ph < 2; ++ph) {
        const double via_inv = cost_[id][ph ^ 1] + inv_area;
        if (via_inv < cost_[id][ph]) {
          cost_[id][ph] = via_inv;
          choice_[id][ph] = {};
          choice_[id][ph].kind = Choice::kInvert;
        }
      }
      SECFLOW_CHECK(cost_[id][0] < kInf || cost_[id][1] < kInf,
                    "unmappable AIG node with allowed cell set");
    }
  }

  void try_matches(std::uint32_t id, int phase, const Cut& cut,
                   std::uint64_t table, double leaf_cost) {
    const auto* ms = matcher_.find(static_cast<int>(cut.size()), table);
    if (!ms) return;
    for (const CellMatch& m : *ms) {
      // Phase-corrected leaf costs: a complemented leaf pays its negative
      // phase cost instead.
      double cost = lib_->cell(m.cell).area_um2;
      double adj = leaf_cost;
      for (std::size_t j = 0; j < m.perm.size(); ++j) {
        if ((m.phase_mask >> j) & 1u) {
          const std::uint32_t leaf =
              cut[static_cast<std::size_t>(m.perm[j])];
          adj += cost_[leaf][1] - cost_[leaf][0];
        }
      }
      cost += adj;
      if (cost < cost_[id][phase]) {
        cost_[id][phase] = cost;
        choice_[id][phase].kind = Choice::kCell;
        choice_[id][phase].match = m;
        choice_[id][phase].cut = cut;
      }
    }
  }

  // --- cover extraction ----------------------------------------------------
  void build_netlist() {
    // Ports.
    for (const CircuitBit& in : c_.inputs) {
      const NetId net = nl_.add_net(in.name);
      nl_.add_port(in.name, PinDir::kInput, net);
      net_of_[key(aig_node(in.lit), 0)] = net;
    }
    NetId clock_net;
    if (!c_.regs.empty()) {
      clock_net = nl_.add_net(c_.clock);
      nl_.add_port(c_.clock, PinDir::kInput, clock_net);
    }
    for (const CircuitReg& r : c_.regs) {
      const NetId q = nl_.add_net(r.name + "_q");
      net_of_[key(aig_node(r.q), 0)] = q;
    }
    // Register D inputs and instances.
    for (const CircuitReg& r : c_.regs) {
      const NetId d = materialize(r.next);
      add_flop(nl_, "DFF", r.name + "_reg", d, clock_net,
               net_of_.at(key(aig_node(r.q), 0)));
    }
    // Output ports: each gets its own net; BUF when the driving literal
    // already has a net (so netlists stay writer-safe with named ports).
    for (const CircuitBit& out : c_.outputs) {
      const NetId src = materialize(out.lit);
      const NetId port_net = nl_.add_net(out.name);
      nl_.add_port(out.name, PinDir::kOutput, port_net);
      SECFLOW_CHECK(matcher_.buf().valid(), "library must provide BUF");
      add_gate(nl_, "BUF", "obuf_" + out.name, {src}, port_net);
    }
  }

  static std::uint64_t key(std::uint32_t node, int phase) {
    return (static_cast<std::uint64_t>(node) << 1) | static_cast<unsigned>(phase);
  }

  /// Net carrying literal `lit` (creating logic as needed).
  NetId materialize(AigLit lit) {
    const std::uint32_t node = aig_node(lit);
    const int phase = aig_complemented(lit) ? 1 : 0;
    if (node == 0) return const_net(phase != 0);
    return node_net(node, phase);
  }

  NetId const_net(bool one) {
    NetId& net = one ? const1_ : const0_;
    if (!net.valid()) {
      const std::string cell = one ? "TIE1" : "TIE0";
      net = nl_.add_net(one ? "const1" : "const0");
      add_gate(nl_, cell, one ? "tie1" : "tie0", {}, net);
    }
    return net;
  }

  NetId node_net(std::uint32_t node, int phase) {
    const auto it = net_of_.find(key(node, phase));
    if (it != net_of_.end()) return it->second;
    // If the opposite phase is already materialized, share its cone
    // through an inverter rather than duplicating logic.
    if (const auto other = net_of_.find(key(node, phase ^ 1));
        other != net_of_.end()) {
      const NetId net = new_net();
      add_gate(nl_, "INV", new_inst("inv"), {other->second}, net);
      net_of_.emplace(key(node, phase), net);
      return net;
    }
    const Choice& ch = choice_[node][phase];
    NetId net;
    if (ch.kind == Choice::kInvert) {
      const NetId src = node_net(node, phase ^ 1);
      net = new_net();
      add_gate(nl_, "INV", new_inst("inv"), {src}, net);
    } else {
      SECFLOW_CHECK(ch.kind == Choice::kCell, "cover reached unmapped node");
      const CellType& cell = lib_->cell(ch.match.cell);
      std::vector<NetId> ins(ch.match.perm.size());
      for (std::size_t j = 0; j < ch.match.perm.size(); ++j) {
        const std::uint32_t leaf =
            ch.cut[static_cast<std::size_t>(ch.match.perm[j])];
        const int leaf_phase = (ch.match.phase_mask >> j) & 1u;
        ins[j] = node_net(leaf, leaf_phase);
      }
      net = new_net();
      add_gate(nl_, cell.name, new_inst("g"), ins, net);
    }
    net_of_.emplace(key(node, phase), net);
    return net;
  }

  NetId new_net() { return nl_.add_net("n" + std::to_string(net_counter_++)); }
  std::string new_inst(const std::string& prefix) {
    return prefix + std::to_string(inst_counter_++);
  }

  const AigCircuit& c_;
  std::shared_ptr<const CellLibrary> lib_;
  SynthConstraints cons_;
  MatchLibrary matcher_;
  Netlist nl_;
  std::vector<std::vector<Cut>> cuts_;
  std::vector<std::array<double, 2>> cost_;
  std::vector<std::array<Choice, 2>> choice_;
  std::unordered_map<std::uint64_t, NetId> net_of_;
  NetId const0_, const1_;
  int net_counter_ = 0;
  int inst_counter_ = 0;
};

}  // namespace

Netlist technology_map(const AigCircuit& circuit,
                       std::shared_ptr<const CellLibrary> library,
                       const SynthConstraints& constraints) {
  SECFLOW_CHECK(library != nullptr, "technology_map needs a library");
  return Mapper(circuit, std::move(library), constraints).run();
}

}  // namespace secflow
