// Mini-HDL front-end: a small synthesizable Verilog subset.
//
// Supported constructs:
//
//   module NAME (input clk, input [3:0] a, output [3:0] y, ...);
//     wire [3:0] w;           // and scalar: wire s;
//     reg  [3:0] r;
//     assign w = a ^ 4'b0110;
//     assign y = r;
//     assign w[2] = a[0] & s; // bit-granular assignment
//     always @(posedge clk) begin
//       r <= w & a;
//     end
//   endmodule
//
// Expressions: & | ^ ~, parentheses, ternary c ? t : f, identifiers,
// bit-select x[i], sized binary/decimal literals (4'b0101, 6'd46).
// Vector operators require equal operand widths; a ternary condition must
// be 1 bit wide.  Exactly one clock domain (posedge) is supported.
//
// The parser elaborates directly to an AigCircuit (bit-blasted), ready for
// technology mapping.
#pragma once

#include <string>

#include "synth/circuit.h"

namespace secflow {

/// Parse and elaborate mini-HDL source.  Throws ParseError on syntax or
/// elaboration errors (width mismatch, undefined signal, combinational
/// loop, multiple drivers).
AigCircuit parse_hdl(const std::string& source);

/// Parse a file.
AigCircuit parse_hdl_file(const std::string& path);

}  // namespace secflow
