// Geometric parasitic extraction (the Virtuoso stand-in).
//
// Computes per-net resistance, ground capacitance (area + fringe + vias +
// sink pin caps) and same-layer coupling capacitance to neighbouring
// wires.  The security property of the secure flow lives or dies on these
// numbers: matched rails -> matched switched charge -> no DPA leakage.
// A configurable process-variation sigma models the residual mismatch the
// paper acknowledges ("perfect security does not exist").
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "base/parallel.h"
#include "base/rng.h"
#include "base/units.h"
#include "lef/lef.h"
#include "netlist/netlist.h"
#include "pnr/def.h"

namespace secflow {

struct NetParasitics {
  double wire_cap_ff = 0.0;      ///< area + fringe + via caps
  double pin_cap_ff = 0.0;       ///< connected sink pin caps
  double coupling_cap_ff = 0.0;  ///< total lateral coupling
  double res_kohm = 0.0;
  std::vector<std::pair<std::string, double>> couplings;  ///< per neighbour

  double total_cap_ff() const {
    return wire_cap_ff + pin_cap_ff + coupling_cap_ff;
  }
};

struct ExtractOptions {
  Process018 process;
  /// Ignore lateral coupling beyond this separation.
  double coupling_max_sep_um = 1.2;
  /// Relative 1-sigma process variation applied to every net's caps
  /// (deterministic per seed).  0 disables.
  double variation_sigma = 0.0;
  std::uint64_t seed = 7;
  /// Per-net RC and same-layer coupling scans run as independent tasks;
  /// pairwise couplings are merged serially in net order afterwards, so
  /// the extraction is bit-identical for any thread count.
  Parallelism parallelism;
};

struct Extraction {
  std::unordered_map<std::string, NetParasitics> nets;

  const NetParasitics* find(const std::string& net) const {
    const auto it = nets.find(net);
    return it == nets.end() ? nullptr : &it->second;
  }
  double total_cap_ff() const;
};

/// Extract parasitics for every routed net of `design`.  Pin caps come
/// from `nl` (nets matched by name; nets absent from the netlist get wire
/// caps only).
Extraction extract_parasitics(const DefDesign& design, const Netlist& nl,
                              const ExtractOptions& opts = {});

/// Per-net switched-capacitance table for the power simulator: routed nets
/// use extracted values; netlist-internal nets (inside WDDL compounds, not
/// routed at the top level) get sink pin caps plus a fixed local-wire
/// estimate.  Keys are netlist net names.
std::unordered_map<std::string, double> build_cap_table(
    const Netlist& nl, const Extraction& ex,
    double internal_wire_ff = 0.8);

/// Rail mismatch report for differential designs: |C(n_t) - C(n_f)| per
/// pair, keyed by the fat net base name.
std::unordered_map<std::string, double> rail_mismatch_ff(const Extraction& ex);

/// The paper's "balanced intrinsic capacitances / custom designed cells"
/// strengthening option (end of section 3): pad the lighter rail of every
/// _t/_f pair toward the heavier one.  strength 1.0 equalizes the pair
/// exactly (dummy capacitance added inside the compound); 0 is a no-op.
/// Returns the number of pairs adjusted.
int balance_rail_caps(std::unordered_map<std::string, double>& caps,
                      double strength = 1.0);

}  // namespace secflow
