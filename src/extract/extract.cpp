#include "extract/extract.h"

#include <algorithm>

#include "base/error.h"

namespace secflow {

double Extraction::total_cap_ff() const {
  double c = 0.0;
  for (const auto& [name, p] : nets) c += p.total_cap_ff();
  return c;
}

Extraction extract_parasitics(const DefDesign& design, const Netlist& nl,
                              const ExtractOptions& opts) {
  const Process018& pr = opts.process;
  Extraction ex;

  // Wire geometry: every net's RC is an independent task.
  const std::size_t n_nets = design.nets.size();
  {
    std::vector<NetParasitics> per_net = parallel_map(
        n_nets, opts.parallelism, [&](std::size_t i) {
          const DefNet& net = design.nets[i];
          NetParasitics p;
          for (const Segment& s : net.wires) {
            const double len_um = dbu_to_um(s.length());
            const double w_um = dbu_to_um(s.width);
            if (len_um <= 0.0) continue;
            p.wire_cap_ff += len_um * w_um * pr.wire_c_area_ff_per_um2;
            p.wire_cap_ff += 2.0 * len_um * pr.wire_c_fringe_ff_per_um;
            p.res_kohm += pr.wire_r_ohm_per_sq * (len_um / w_um) * 1e-3;
          }
          for (std::size_t v = 0; v < net.vias.size(); ++v) {
            p.wire_cap_ff += pr.via_c_ff;
            p.res_kohm += pr.via_r_ohm * 1e-3;
          }
          return p;
        });
    for (std::size_t i = 0; i < n_nets; ++i) {
      ex.nets.emplace(design.nets[i].name, std::move(per_net[i]));
    }
  }

  // Lateral coupling between different nets, same layer.  The quadratic
  // pair scan parallelizes over the first net of each pair; every task
  // only writes its own bucket, and buckets are merged serially in net
  // order below, reproducing the serial accumulation exactly.
  const std::int64_t max_sep = um_to_dbu(opts.coupling_max_sep_um);
  {
    std::vector<std::vector<std::pair<std::size_t, double>>> coupled =
        parallel_map(n_nets, opts.parallelism, [&](std::size_t i) {
          std::vector<std::pair<std::size_t, double>> out;
          const DefNet& a = design.nets[i];
          for (std::size_t j = i + 1; j < n_nets; ++j) {
            const DefNet& b = design.nets[j];
            double cc = 0.0;
            for (const Segment& sa : a.wires) {
              for (const Segment& sb : b.wires) {
                std::int64_t sep = 0;
                const std::int64_t run = parallel_run_length(sa, sb, &sep);
                if (run <= 0 || sep == 0 || sep > max_sep) continue;
                // Coupling scales with run length and inversely with
                // separation (normalized to the minimum pitch).
                const double pitch_um = pr.wire_pitch_um;
                cc += pr.wire_c_couple_ff_per_um * dbu_to_um(run) *
                      (pitch_um / dbu_to_um(sep));
              }
            }
            if (cc > 0.0) out.emplace_back(j, cc);
          }
          return out;
        });
    for (std::size_t i = 0; i < n_nets; ++i) {
      for (const auto& [j, cc] : coupled[i]) {
        const DefNet& a = design.nets[i];
        const DefNet& b = design.nets[j];
        ex.nets[a.name].coupling_cap_ff += cc;
        ex.nets[a.name].couplings.emplace_back(b.name, cc);
        ex.nets[b.name].coupling_cap_ff += cc;
        ex.nets[b.name].couplings.emplace_back(a.name, cc);
      }
    }
  }

  // Sink pin capacitance from the netlist.
  for (NetId nid : nl.net_ids()) {
    const Net& net = nl.net(nid);
    const auto it = ex.nets.find(net.name);
    if (it == ex.nets.end()) continue;
    for (const PinRef& p : net.pins) {
      const CellType& type = nl.cell_of(p.inst);
      const PinDef& pin = type.pins[static_cast<std::size_t>(p.pin)];
      if (pin.dir == PinDir::kInput) it->second.pin_cap_ff += pin.cap_ff;
    }
  }

  // Process variation.
  if (opts.variation_sigma > 0.0) {
    Rng rng(opts.seed);
    // Deterministic order: iterate DEF nets, not the hash map.
    for (const DefNet& net : design.nets) {
      NetParasitics& p = ex.nets[net.name];
      const double factor =
          std::max(0.0, 1.0 + opts.variation_sigma * rng.next_gaussian());
      p.wire_cap_ff *= factor;
      p.coupling_cap_ff *= factor;
      for (auto& [other, c] : p.couplings) c *= factor;
    }
  }
  return ex;
}

std::unordered_map<std::string, double> build_cap_table(
    const Netlist& nl, const Extraction& ex, double internal_wire_ff) {
  std::unordered_map<std::string, double> table;
  table.reserve(nl.n_nets());
  for (NetId nid : nl.net_ids()) {
    const Net& net = nl.net(nid);
    if (const NetParasitics* p = ex.find(net.name)) {
      table.emplace(net.name, p->total_cap_ff());
      continue;
    }
    // Compound-internal net: pins + short local wire.
    double c = internal_wire_ff;
    for (const PinRef& pr : net.pins) {
      const CellType& type = nl.cell_of(pr.inst);
      const PinDef& pin = type.pins[static_cast<std::size_t>(pr.pin)];
      if (pin.dir == PinDir::kInput) c += pin.cap_ff;
    }
    table.emplace(net.name, c);
  }
  return table;
}

int balance_rail_caps(std::unordered_map<std::string, double>& caps,
                      double strength) {
  SECFLOW_CHECK(strength >= 0.0 && strength <= 1.0,
                "balance strength out of range");
  int adjusted = 0;
  for (auto& [name, c] : caps) {
    if (name.size() < 2 || name.substr(name.size() - 2) != "_t") continue;
    const auto f = caps.find(name.substr(0, name.size() - 2) + "_f");
    if (f == caps.end()) continue;
    const double target = std::max(c, f->second);
    c += strength * (target - c);
    f->second += strength * (target - f->second);
    ++adjusted;
  }
  return adjusted;
}

std::unordered_map<std::string, double> rail_mismatch_ff(
    const Extraction& ex) {
  std::unordered_map<std::string, double> out;
  for (const auto& [name, p] : ex.nets) {
    if (name.size() < 2 || name.substr(name.size() - 2) != "_t") continue;
    const std::string base = name.substr(0, name.size() - 2);
    const NetParasitics* f = ex.find(base + "_f");
    if (f == nullptr) continue;
    out.emplace(base, std::abs(p.total_cap_ff() - f->total_cap_ff()));
  }
  return out;
}

}  // namespace secflow
