#include "crypto/des.h"

#include "base/error.h"
#include "wddl/qm.h"

namespace secflow {
namespace {

// FIPS 46-3 substitution tables, S1..S8, row-major (4 rows x 16 columns).
constexpr std::uint8_t kSboxes[8][4][16] = {
    {{14, 4, 13, 1, 2, 15, 11, 8, 3, 10, 6, 12, 5, 9, 0, 7},
     {0, 15, 7, 4, 14, 2, 13, 1, 10, 6, 12, 11, 9, 5, 3, 8},
     {4, 1, 14, 8, 13, 6, 2, 11, 15, 12, 9, 7, 3, 10, 5, 0},
     {15, 12, 8, 2, 4, 9, 1, 7, 5, 11, 3, 14, 10, 0, 6, 13}},
    {{15, 1, 8, 14, 6, 11, 3, 4, 9, 7, 2, 13, 12, 0, 5, 10},
     {3, 13, 4, 7, 15, 2, 8, 14, 12, 0, 1, 10, 6, 9, 11, 5},
     {0, 14, 7, 11, 10, 4, 13, 1, 5, 8, 12, 6, 9, 3, 2, 15},
     {13, 8, 10, 1, 3, 15, 4, 2, 11, 6, 7, 12, 0, 5, 14, 9}},
    {{10, 0, 9, 14, 6, 3, 15, 5, 1, 13, 12, 7, 11, 4, 2, 8},
     {13, 7, 0, 9, 3, 4, 6, 10, 2, 8, 5, 14, 12, 11, 15, 1},
     {13, 6, 4, 9, 8, 15, 3, 0, 11, 1, 2, 12, 5, 10, 14, 7},
     {1, 10, 13, 0, 6, 9, 8, 7, 4, 15, 14, 3, 11, 5, 2, 12}},
    {{7, 13, 14, 3, 0, 6, 9, 10, 1, 2, 8, 5, 11, 12, 4, 15},
     {13, 8, 11, 5, 6, 15, 0, 3, 4, 7, 2, 12, 1, 10, 14, 9},
     {10, 6, 9, 0, 12, 11, 7, 13, 15, 1, 3, 14, 5, 2, 8, 4},
     {3, 15, 0, 6, 10, 1, 13, 8, 9, 4, 5, 11, 12, 7, 2, 14}},
    {{2, 12, 4, 1, 7, 10, 11, 6, 8, 5, 3, 15, 13, 0, 14, 9},
     {14, 11, 2, 12, 4, 7, 13, 1, 5, 0, 15, 10, 3, 9, 8, 6},
     {4, 2, 1, 11, 10, 13, 7, 8, 15, 9, 12, 5, 6, 3, 0, 14},
     {11, 8, 12, 7, 1, 14, 2, 13, 6, 15, 0, 9, 10, 4, 5, 3}},
    {{12, 1, 10, 15, 9, 2, 6, 8, 0, 13, 3, 4, 14, 7, 5, 11},
     {10, 15, 4, 2, 7, 12, 9, 5, 6, 1, 13, 14, 0, 11, 3, 8},
     {9, 14, 15, 5, 2, 8, 12, 3, 7, 0, 4, 10, 1, 13, 11, 6},
     {4, 3, 2, 12, 9, 5, 15, 10, 11, 14, 1, 7, 6, 0, 8, 13}},
    {{4, 11, 2, 14, 15, 0, 8, 13, 3, 12, 9, 7, 5, 10, 6, 1},
     {13, 0, 11, 7, 4, 9, 1, 10, 14, 3, 5, 12, 2, 15, 8, 6},
     {1, 4, 11, 13, 12, 3, 7, 14, 10, 15, 6, 8, 0, 5, 9, 2},
     {6, 11, 13, 8, 1, 4, 10, 7, 9, 5, 0, 15, 14, 2, 3, 12}},
    {{13, 2, 8, 4, 6, 15, 11, 1, 10, 9, 3, 14, 5, 0, 12, 7},
     {1, 15, 13, 8, 10, 3, 7, 4, 12, 5, 6, 11, 0, 14, 9, 2},
     {7, 11, 4, 1, 9, 12, 14, 2, 0, 6, 10, 13, 15, 3, 5, 8},
     {2, 1, 14, 7, 4, 10, 8, 13, 15, 12, 9, 0, 3, 5, 6, 11}}};

}  // namespace

std::uint32_t des_sbox(int box, std::uint32_t in) {
  SECFLOW_CHECK(box >= 1 && box <= 8, "S-box index out of range");
  SECFLOW_CHECK(in < 64, "S-box input out of range");
  const std::uint32_t row = ((in >> 4) & 2) | (in & 1);
  const std::uint32_t col = (in >> 1) & 0xF;
  return kSboxes[box - 1][row][col];
}

AigCircuit make_des_dpa_circuit(const DesDpaOptions& opts) {
  CircuitBuilder cb("des_dpa");
  Aig& g = cb.aig();
  const std::vector<AigLit> pl = cb.input("pl", 4);
  const std::vector<AigLit> pr = cb.input("pr", 6);
  const std::vector<AigLit> k = cb.input("k", 6);

  // Registered plaintext halves (loaded every cycle).
  const std::vector<AigLit> PL = cb.reg("PL", 4);
  const std::vector<AigLit> PR = cb.reg("PR", 6);
  cb.set_next("PL", pl);
  cb.set_next("PR", pr);

  // S-box input: PR ^ K.
  std::vector<AigLit> sin(6);
  for (int i = 0; i < 6; ++i) {
    sin[static_cast<std::size_t>(i)] =
        g.lxor(PR[static_cast<std::size_t>(i)], k[static_cast<std::size_t>(i)]);
  }

  // S-box as minimized two-level logic per output bit (overlapping cubes,
  // like synthesized PLA logic — not a one-hot minterm decoder, whose
  // uniform activity would be unrepresentative of mapped standard cells).
  std::vector<AigLit> sout(4, kAigFalse);
  for (int bit = 0; bit < 4; ++bit) {
    std::uint64_t table = 0;
    for (std::uint32_t v = 0; v < 64; ++v) {
      if ((des_sbox(opts.sbox, v) >> bit) & 1) table |= std::uint64_t{1} << v;
    }
    const std::vector<Cube> sop = minimize_sop(LogicFn(6, table));
    std::vector<AigLit> products;
    for (const Cube& cube : sop) {
      std::vector<AigLit> lits;
      for (int i = 0; i < 6; ++i) {
        if (!((cube.mask >> i) & 1u)) continue;
        const AigLit x = sin[static_cast<std::size_t>(i)];
        lits.push_back(((cube.value >> i) & 1u) ? x : aig_not(x));
      }
      products.push_back(g.land_many(lits));
    }
    sout[static_cast<std::size_t>(bit)] = g.lor_many(products);
  }

  // Registered ciphertext halves, as in Fig 4: CL <= PL ^ S(PR ^ K),
  // CR <= PR.  The observable lags the plaintext registers by one cycle.
  std::vector<AigLit> cl_next(4);
  for (int i = 0; i < 4; ++i) {
    cl_next[static_cast<std::size_t>(i)] = g.lxor(
        PL[static_cast<std::size_t>(i)], sout[static_cast<std::size_t>(i)]);
  }
  const std::vector<AigLit> CL = cb.reg("CL", 4);
  const std::vector<AigLit> CR = cb.reg("CR", 6);
  cb.set_next("CL", cl_next);
  cb.set_next("CR", PR);
  cb.output("cl", CL);
  cb.output("cr", CR);
  return cb.take();
}

std::uint32_t des_dpa_reference(std::uint32_t pl, std::uint32_t pr,
                                std::uint32_t k, int sbox) {
  SECFLOW_CHECK(pl < 16 && pr < 64 && k < 64, "operand out of range");
  const std::uint32_t cl = pl ^ des_sbox(sbox, pr ^ k);
  return cl | (pr << 4);
}

bool des_dpa_selection(std::uint32_t cl, std::uint32_t cr, std::uint32_t k,
                       int bit, int sbox) {
  SECFLOW_CHECK(bit >= 0 && bit < 4, "selection bit out of range");
  const std::uint32_t predicted_pl = cl ^ des_sbox(sbox, cr ^ k);
  return (predicted_pl >> bit) & 1;
}

}  // namespace secflow
