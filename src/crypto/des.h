// DES S-boxes and the paper's DPA test circuit (Fig 4).
//
// The test circuit is the reduced DES module of Tiri et al., CHES'03 [5]:
// a 4-bit register PL and a 6-bit register PR load fresh plaintext every
// cycle; the S1 substitution box transforms PR ^ K and its output XORs
// with PL to form the ciphertext half CL; CR is PR itself.  The attacker
// observes (CL, CR) and the supply current, guesses K, and predicts a bit
// of PL with the selection function D(K, C) = bit b of CL ^ S1(CR ^ K).
#pragma once

#include <cstdint>

#include "synth/circuit.h"

namespace secflow {

/// DES S-box lookup: `box` in [1,8], `in` a 6-bit value (b5 b0 select the
/// row, b4..b1 the column), returns the 4-bit substitution.
std::uint32_t des_sbox(int box, std::uint32_t in);

struct DesDpaOptions {
  int sbox = 1;  ///< which S-box implements the substitution (paper: S1)
};

/// Build the Fig 4 circuit: inputs pl[3:0], pr[5:0], k[5:0], clk; output
/// registers CL <= PL ^ Sbox(PR ^ k) and CR <= PR, where PL/PR are the
/// registered plaintext halves.  The ciphertext (cl, cr) observable at the
/// ports therefore lags the plaintext registers by one clock cycle.
AigCircuit make_des_dpa_circuit(const DesDpaOptions& opts = {});

/// Software reference of one encryption step: given the *registered*
/// plaintext (pl, pr) and key k, returns packed ciphertext (cl | cr<<4).
std::uint32_t des_dpa_reference(std::uint32_t pl, std::uint32_t pr,
                                std::uint32_t k, int sbox = 1);

/// The DPA selection function: predicted bit `bit` of PL from the observed
/// ciphertext (cl, cr) under key guess `k`.
bool des_dpa_selection(std::uint32_t cl, std::uint32_t cr, std::uint32_t k,
                       int bit, int sbox = 1);

}  // namespace secflow
