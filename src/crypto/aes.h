// AES S-box circuit generators, used to build designs at the scale of the
// paper's 39 K-gate prototype ("high-throughput AES, controller and
// fingerprint processor") for the flow-runtime benchmarks.
#pragma once

#include <cstdint>

#include "synth/circuit.h"

namespace secflow {

/// Rijndael forward S-box lookup.
std::uint8_t aes_sbox(std::uint8_t in);

/// A registered array of `n_boxes` AES S-boxes: inputs x_<j> (8 bits per
/// box), outputs y_<j>; each box output is registered.  Mapping one box
/// yields several hundred cells, so tens of boxes reach the paper's 39 K
/// gate scale.
AigCircuit make_aes_sbox_array(int n_boxes);

}  // namespace secflow
