// secflow public API — the one header applications include.
//
// Everything exported here is the supported surface: the two flows
// (flow/flow.h), the campaign batch engine (campaign/), design entry
// (HDL parsing, the built-in 0.18 um library), writers for the standard
// interchange formats, the experiment toolkit (simulation, DPA/DFA/EMA
// analysis, DES/AES models), and the observability layer (reports,
// logging, metrics, tracing).
//
// Headers NOT listed here are internal: the placer/router/decomposer
// (pnr/*), equivalence checking internals (lec/*), the checkpoint
// store's hashing and serialization machinery (ckpt/* beyond what
// flow.h re-exports), the AIG core (synth/aig.h), and the Quine-
// McCluskey minimizer (wddl/qm.h).  They may change without notice;
// include them directly only from code inside this repository.
// DESIGN.md ("Public API vs internals") records the policy.
#pragma once

// Foundations: Error/ParseError, SECFLOW_CHECK, deterministic RNG,
// thread-pool parallelism knobs (Parallelism, SECFLOW_THREADS).
#include "base/error.h"
#include "base/parallel.h"
#include "base/rng.h"
#include "base/units.h"

// Design entry and cell libraries.
#include "liberty/builtin_lib.h"
#include "liberty/liberty_parser.h"
#include "netlist/cell_library.h"
#include "netlist/netlist.h"
#include "synth/circuit.h"
#include "synth/hdl.h"

// The two flows of the paper (Fig 1) and their options/results.
#include "flow/flow.h"

// Batch evaluation: campaign specs, the DAG scheduler, the report.
#include "campaign/campaign.h"
#include "campaign/report.h"
#include "campaign/spec.h"

// Differential flow-fuzzer: random sequential designs, the metamorphic /
// security / cross-check oracle catalogue, reproducer minimization.
#include "fuzz/fuzzer.h"
#include "fuzz/generator.h"
#include "fuzz/minimize.h"
#include "fuzz/oracles.h"
#include "fuzz/program.h"

// Netlist analysis and transformation helpers.
#include "netlist/netlist_ops.h"
#include "sta/sta.h"
#include "synth/techmap.h"
#include "wddl/wddl_library.h"

// Writers for standard interchange formats.
#include "lef/lef_io.h"
#include "netlist/verilog_parser.h"
#include "netlist/verilog_writer.h"
#include "pnr/def.h"

// Experiment toolkit: simulation, side-channel and fault analysis,
// reference cipher models.
#include "crypto/aes.h"
#include "crypto/des.h"
#include "sca/dfa.h"
#include "sca/dpa.h"
#include "sca/dpa_experiment.h"
#include "sca/ema.h"
#include "sca/selection.h"
#include "sca/trace_io.h"
#include "sim/power_sim.h"
#include "sim/trace_sim.h"

// Statistical leakage assessment: streaming accumulators, CPA, TVLA,
// guessing entropy and MTD estimation, and the leakage report.
#include "leakage/accumulators.h"
#include "leakage/assess.h"
#include "leakage/cpa.h"
#include "leakage/report.h"
#include "leakage/tvla.h"

// Observability: flow reports, structured logs, metrics, trace spans.
#include "obs/json.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
