// Selection functions and key-guess enumeration shared by every power
// attack in sca/ and leakage/.
//
// DPA (difference of means, sca/dpa.h) partitions traces by a single
// predicted bit; CPA (Pearson correlation, leakage/cpa.h) correlates
// against a multi-bit leakage hypothesis.  Both derive their prediction
// from the same intermediate value — for the paper's Fig 4 circuit, the
// PL register nibble reconstructed from the observed ciphertext under a
// key guess.  That core lives here, once, so the two attacks cannot
// drift: des_selection() is a bit extraction of des_predict_pl(), and the
// CPA hypotheses are Hamming weight/distance of the same value.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

namespace secflow {

/// Selection function: predicted target bit from the ciphertext under a
/// key guess (the DPA partition predicate).
using SelectionFn = std::function<bool(std::uint32_t ciphertext,
                                       std::uint32_t key_guess)>;

/// Leakage hypothesis: predicted relative power of one trace from its
/// observables under a key guess (the CPA correlation target).  `prev_ct`
/// is the ciphertext of the preceding encryption — Hamming-distance
/// models predict register flips, which need both.
using HypothesisFn = std::function<double(std::uint32_t ciphertext,
                                          std::uint32_t prev_ct,
                                          std::uint32_t key_guess)>;

/// The Fig 4 subkey is 6 bits: every attack enumerates these guesses.
inline constexpr int kDesKeyGuesses = 64;

/// Number of set bits.
int hamming_weight(std::uint32_t v);

/// The shared attack core: the PL register nibble reconstructed from the
/// packed ciphertext (cl | cr << 4) under a key guess,
/// PL = CL ^ Sbox(CR ^ K).  Exact for the correct guess.
std::uint32_t des_predict_pl(std::uint32_t ciphertext, std::uint32_t guess,
                             int sbox = 1);

/// DPA selection for the Fig 4 packing: bit `bit` of des_predict_pl.
SelectionFn des_selection(int bit, int sbox = 1);

/// CPA power models over the predicted intermediate.
enum class PowerModel {
  kHammingWeight,    ///< HW(PL): value-dependent leakage
  kHammingDistance,  ///< HW(PL_prev ^ PL): register-flip leakage
};

/// "hw" | "hd" — the leakage-report vocabulary.
const char* power_model_name(PowerModel m);

/// Inverse of power_model_name; nullopt on unknown text.
std::optional<PowerModel> parse_power_model(const std::string& text);

/// The hypothesis for `model` on the Fig 4 circuit, built on
/// des_predict_pl (the same core the DPA selection uses).
HypothesisFn des_hypothesis(PowerModel model, int sbox = 1);

}  // namespace secflow
