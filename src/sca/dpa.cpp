#include "sca/dpa.h"

#include <algorithm>

#include "base/error.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace secflow {

double peak_to_peak(const std::vector<double>& trace) {
  if (trace.empty()) return 0.0;
  const auto [lo, hi] = std::minmax_element(trace.begin(), trace.end());
  return *hi - *lo;
}

DpaAnalysis::DpaAnalysis(SelectionFn selection, const DpaOptions& opts)
    : selection_(std::move(selection)), opts_(opts) {
  SECFLOW_CHECK(selection_ != nullptr, "DPA needs a selection function");
  SECFLOW_CHECK(opts_.n_key_guesses > 1, "need at least 2 key guesses");
}

void DpaAnalysis::add_measurement(DpaMeasurement m) {
  SECFLOW_CHECK(traces_.empty() ||
                    m.samples.size() == traces_.front().samples.size(),
                "trace length mismatch");
  traces_.push_back(std::move(m));
}

std::vector<double> DpaAnalysis::differential_trace(std::uint32_t guess,
                                                    int n) const {
  const std::size_t count =
      n <= 0 ? traces_.size()
             : std::min<std::size_t>(static_cast<std::size_t>(n),
                                     traces_.size());
  SECFLOW_CHECK(count > 0, "no measurements");
  const std::size_t len = traces_.front().samples.size();
  std::vector<double> sum1(len, 0.0), sum0(len, 0.0);
  std::size_t n1 = 0, n0 = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const DpaMeasurement& m = traces_[i];
    if (selection_(m.ciphertext, guess)) {
      ++n1;
      for (std::size_t s = 0; s < len; ++s) sum1[s] += m.samples[s];
    } else {
      ++n0;
      for (std::size_t s = 0; s < len; ++s) sum0[s] += m.samples[s];
    }
  }
  std::vector<double> diff(len, 0.0);
  if (n1 == 0 || n0 == 0) return diff;  // degenerate split: flat trace
  for (std::size_t s = 0; s < len; ++s) {
    diff[s] = sum1[s] / static_cast<double>(n1) -
              sum0[s] / static_cast<double>(n0);
  }
  return diff;
}

DpaResult DpaAnalysis::analyze(std::uint32_t correct_key, int n) const {
  DpaResult r;
  r.n_measurements =
      n <= 0 ? static_cast<int>(traces_.size())
             : std::min<int>(n, static_cast<int>(traces_.size()));
  // Each key guess partitions and accumulates independently; the ranking
  // below runs serially over the per-guess results, so the outcome is
  // identical for any thread count.
  r.peak_to_peak.assign(static_cast<std::size_t>(opts_.n_key_guesses), 0.0);
  parallel_for(
      static_cast<std::size_t>(opts_.n_key_guesses), opts_.parallelism,
      [&](std::size_t begin, std::size_t end) {
        Span span("dpa.guess_chunk", "sca");
        span.arg("begin", static_cast<std::uint64_t>(begin));
        span.arg("end", static_cast<std::uint64_t>(end));
        for (std::size_t g = begin; g < end; ++g) {
          r.peak_to_peak[g] = peak_to_peak(differential_trace(
              static_cast<std::uint32_t>(g), r.n_measurements));
        }
        Metrics::global().add("sca.dpa.guesses",
                              static_cast<std::uint64_t>(end - begin));
      });
  double best = -1.0, second = -1.0;
  for (int g = 0; g < opts_.n_key_guesses; ++g) {
    const double pp = r.peak_to_peak[static_cast<std::size_t>(g)];
    if (pp > best) {
      second = best;
      best = pp;
      r.best_guess = g;
    } else if (pp > second) {
      second = pp;
    }
  }
  r.disclosed = r.best_guess == static_cast<int>(correct_key) &&
                best > second * (1.0 + opts_.margin);
  return r;
}

int DpaAnalysis::measurements_to_disclosure(
    std::uint32_t correct_key, const std::vector<int>& grid) const {
  int mtd = -1;
  for (int m : grid) {
    if (m > n_measurements()) break;
    if (analyze(correct_key, m).disclosed) {
      if (mtd < 0) mtd = m;
    } else {
      mtd = -1;  // disclosure must persist
    }
  }
  return mtd;
}

}  // namespace secflow
