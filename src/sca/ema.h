// Electromagnetic Analysis feasibility model (paper section 4.2, Fig 7).
//
// The differential routes are two antiparallel current filaments about one
// pitch apart; the measurement probe sits millimetres away.  A single
// filament's field falls as 1/d; the antiparallel pair forms a line dipole
// whose net field falls as s/d^2 relative, i.e. the pair's field is
// suppressed by a factor ~ s/d versus a single wire.  This module
// quantifies that suppression over the paper's geometry (s ~= 1 um,
// d = 1..10 mm, L = 10..100 um).
#pragma once

namespace secflow {

struct EmaGeometry {
  double wire_length_um = 100.0;  ///< antenna length (10..100 um)
  double separation_um = 1.0;     ///< differential pair spacing (~1 pitch)
  double probe_distance_mm = 1.0; ///< probe standoff (1..10 mm)
};

struct EmaFigures {
  /// |B| of a single filament at the probe, arbitrary units (I = 1).
  double single_wire_field;
  /// |B| of the antiparallel pair at the probe.
  double differential_pair_field;
  /// pair / single: the attenuation the probe must overcome to tell which
  /// rail carried the charge.
  double suppression_ratio;
};

/// Magnetostatic estimate for the Fig 7 geometry.
EmaFigures ema_far_field(const EmaGeometry& g);

/// Number of bits of additional measurement precision an EMA needs over a
/// direct power attack to resolve the rail asymmetry: log2(1/suppression).
double ema_extra_precision_bits(const EmaGeometry& g);

}  // namespace secflow
