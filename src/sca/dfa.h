// Differential Fault Analysis countermeasure (paper section 4.3).
//
// WDDL's redundant encoding makes fault detection possible: a valid
// evaluated signal is exactly one of (t, f); if a register captures (0,0)
// at the clock edge, the evaluation did not complete — a clock-glitch
// attack — and the circuit must raise an alarm.  DfaMonitor scans the WDDL
// master registers of a differential netlist after a cycle and reports
// rail pairs that captured an invalid code.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.h"
#include "sim/power_sim.h"

namespace secflow {

struct DfaAlarm {
  std::string register_name;  ///< fat-level register (compound) name
  bool both_zero = false;     ///< (0,0): evaluation incomplete (glitch)
  bool both_one = false;      ///< (1,1): corrupted differential state
};

class DfaMonitor {
 public:
  /// `diff` must be a differential netlist from expand_differential(): the
  /// monitor pairs master flops named <reg>_t_mst / <reg>_f_mst.
  explicit DfaMonitor(const Netlist& diff);

  /// Check the master rail pairs' captured states in `sim`.
  std::vector<DfaAlarm> check(const PowerSimulator& sim) const;

  int n_monitored_registers() const {
    return static_cast<int>(pairs_.size());
  }

 private:
  struct RailPair {
    std::string name;
    InstId t_master;
    InstId f_master;
  };
  std::vector<RailPair> pairs_;
};

}  // namespace secflow
