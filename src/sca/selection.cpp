#include "sca/selection.h"

#include "crypto/des.h"

namespace secflow {

int hamming_weight(std::uint32_t v) {
  int n = 0;
  for (; v != 0; v &= v - 1) ++n;
  return n;
}

std::uint32_t des_predict_pl(std::uint32_t ciphertext, std::uint32_t guess,
                             int sbox) {
  const std::uint32_t cl = ciphertext & 0xF;
  const std::uint32_t cr = (ciphertext >> 4) & 0x3F;
  return (cl ^ des_sbox(sbox, cr ^ guess)) & 0xF;
}

SelectionFn des_selection(int bit, int sbox) {
  return [bit, sbox](std::uint32_t ciphertext, std::uint32_t guess) {
    return ((des_predict_pl(ciphertext, guess, sbox) >> bit) & 1) != 0;
  };
}

const char* power_model_name(PowerModel m) {
  return m == PowerModel::kHammingWeight ? "hw" : "hd";
}

std::optional<PowerModel> parse_power_model(const std::string& text) {
  if (text == "hw") return PowerModel::kHammingWeight;
  if (text == "hd") return PowerModel::kHammingDistance;
  return std::nullopt;
}

HypothesisFn des_hypothesis(PowerModel model, int sbox) {
  if (model == PowerModel::kHammingWeight) {
    return [sbox](std::uint32_t ct, std::uint32_t, std::uint32_t guess) {
      return static_cast<double>(hamming_weight(des_predict_pl(ct, guess,
                                                               sbox)));
    };
  }
  return [sbox](std::uint32_t ct, std::uint32_t prev_ct, std::uint32_t guess) {
    return static_cast<double>(hamming_weight(
        des_predict_pl(ct, guess, sbox) ^
        des_predict_pl(prev_ct, guess, sbox)));
  };
}

}  // namespace secflow
