#include "sca/ema.h"

#include <cmath>

#include "base/error.h"

namespace secflow {

EmaFigures ema_far_field(const EmaGeometry& g) {
  SECFLOW_CHECK(g.wire_length_um > 0 && g.separation_um > 0 &&
                    g.probe_distance_mm > 0,
                "EMA geometry must be positive");
  const double L = g.wire_length_um * 1e-6;
  const double s = g.separation_um * 1e-6;
  const double d = g.probe_distance_mm * 1e-3;

  // Finite straight filament, probe on the perpendicular bisector:
  // B = (mu0 I / 4 pi d) * L / sqrt(d^2 + (L/2)^2); with I = 1 and the
  // constant folded out (all figures are ratios).
  const double single = (1.0 / d) * (L / std::sqrt(d * d + 0.25 * L * L));
  // Antiparallel pair: fields cancel to first order; the residual is the
  // gradient times the separation: |B_pair| ~= |dB/dd| * s ~= B * s * 2/d
  // in the far field (d >> L).
  const double pair = single * (2.0 * s / d);

  EmaFigures f;
  f.single_wire_field = single;
  f.differential_pair_field = pair;
  f.suppression_ratio = pair / single;
  return f;
}

double ema_extra_precision_bits(const EmaGeometry& g) {
  const EmaFigures f = ema_far_field(g);
  return std::log2(1.0 / f.suppression_ratio);
}

}  // namespace secflow
