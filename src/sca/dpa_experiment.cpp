#include "sca/dpa_experiment.h"

#include "base/error.h"
#include "base/rng.h"
#include "crypto/des.h"

namespace secflow {
namespace {

/// Set a multi-bit input on a single-ended or differential simulator.
void drive_value(PowerSimulator& sim, const std::string& base, int width,
                 std::uint32_t value, bool differential) {
  for (int i = 0; i < width; ++i) {
    const std::string bit = base + "_" + std::to_string(i);
    const bool v = (value >> i) & 1;
    if (differential) {
      sim.set_input(bit + "_t", v);
      sim.set_input(bit + "_f", !v);
    } else {
      sim.set_input(bit, v);
    }
  }
}

/// Read a multi-bit observable.  A WDDL design is observable only during
/// the evaluate phase (rails precharge to 0 afterwards); a regular design
/// is read at the end of the cycle, when everything has settled.
std::uint32_t read_value(const PowerSimulator& sim, const std::string& base,
                         int width, bool differential) {
  std::uint32_t v = 0;
  for (int i = 0; i < width; ++i) {
    const std::string bit = base + "_" + std::to_string(i);
    const bool b = differential ? sim.output_at_eval(bit + "_t")
                                : sim.output(bit);
    if (b) v |= 1u << i;
  }
  return v;
}

}  // namespace

SelectionFn des_selection(int bit, int sbox) {
  return [bit, sbox](std::uint32_t ciphertext, std::uint32_t guess) {
    const std::uint32_t cl = ciphertext & 0xF;
    const std::uint32_t cr = (ciphertext >> 4) & 0x3F;
    return des_dpa_selection(cl, cr, guess, bit, sbox);
  };
}

DesDpaCampaign run_des_dpa_campaign(const Netlist& nl, const CapTable& caps,
                                    const DesDpaSetup& setup,
                                    bool differential) {
  PowerSimOptions opts;
  opts.precharge_inputs = differential;
  PowerSimulator sim(nl, caps, opts);
  Rng rng(setup.seed);
  Rng noise_rng(setup.seed ^ 0x5CA1AB1Eu);

  drive_value(sim, "k", 6, setup.key, differential);

  DesDpaCampaign campaign{
      DpaAnalysis(des_selection(setup.select_bit, setup.sbox)), {}};

  for (int i = 0; i < setup.warmup_cycles; ++i) {
    drive_value(sim, "pl", 4, static_cast<std::uint32_t>(rng.next_below(16)),
                differential);
    drive_value(sim, "pr", 6, static_cast<std::uint32_t>(rng.next_below(64)),
                differential);
    sim.run_cycle();
  }

  // The CL/CR registers delay the observable by one cycle: the trace of
  // cycle i (where the predicted PL bits live) pairs with the ciphertext
  // read during cycle i+1.
  DpaMeasurement pending;
  bool have_pending = false;
  for (int i = 0; i < setup.n_measurements + 1; ++i) {
    drive_value(sim, "pl", 4, static_cast<std::uint32_t>(rng.next_below(16)),
                differential);
    drive_value(sim, "pr", 6, static_cast<std::uint32_t>(rng.next_below(64)),
                differential);
    CycleTrace trace = sim.run_cycle();
    if (have_pending) {
      const std::uint32_t cl = read_value(sim, "cl", 4, differential);
      const std::uint32_t cr = read_value(sim, "cr", 6, differential);
      pending.ciphertext = cl | (cr << 4);
      campaign.dpa.add_measurement(std::move(pending));
    }
    pending = DpaMeasurement{};
    pending.samples = std::move(trace.current_ma);
    if (setup.noise_ma > 0.0) {
      for (double& s : pending.samples) {
        s += setup.noise_ma * noise_rng.next_gaussian();
      }
    }
    have_pending = true;
    campaign.cycle_energies_pj.push_back(trace.energy_pj);
  }
  campaign.cycle_energies_pj.pop_back();  // keep n_measurements entries
  return campaign;
}

DpaAnalysis run_des_dpa_regular(const Netlist& rtl, const CapTable& caps,
                                const DesDpaSetup& setup) {
  return run_des_dpa_campaign(rtl, caps, setup, /*differential=*/false).dpa;
}

DpaAnalysis run_des_dpa_secure(const Netlist& diff, const CapTable& caps,
                               const DesDpaSetup& setup) {
  return run_des_dpa_campaign(diff, caps, setup, /*differential=*/true).dpa;
}

}  // namespace secflow
