#include "sca/dpa_experiment.h"

#include <algorithm>

#include "base/error.h"
#include "base/rng.h"
#include "crypto/des.h"
#include "obs/log.h"
#include "obs/trace.h"
#include "sim/trace_sim.h"

namespace secflow {
namespace {

std::vector<DesBitPorts> resolve_bits(const Netlist& nl,
                                      const std::string& base, int width,
                                      bool differential) {
  std::vector<DesBitPorts> ports(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    const std::string bit = base + "_" + std::to_string(i);
    DesBitPorts& b = ports[static_cast<std::size_t>(i)];
    if (differential) {
      b.t = nl.find_port(bit + "_t");
      b.f = nl.find_port(bit + "_f");
      SECFLOW_CHECK(b.t.valid() && b.f.valid(), "missing rail ports: " + bit);
    } else {
      b.t = nl.find_port(bit);
      SECFLOW_CHECK(b.t.valid(), "unknown port: " + bit);
    }
  }
  return ports;
}

}  // namespace

DesPortMap DesPortMap::resolve(const Netlist& nl, bool differential) {
  DesPortMap m;
  m.differential = differential;
  m.k = resolve_bits(nl, "k", 6, differential);
  m.pl = resolve_bits(nl, "pl", 4, differential);
  m.pr = resolve_bits(nl, "pr", 6, differential);
  m.cl = resolve_bits(nl, "cl", 4, differential);
  m.cr = resolve_bits(nl, "cr", 6, differential);
  return m;
}

void DesPortMap::drive(PowerSimulator& sim,
                       const std::vector<DesBitPorts>& ports,
                       std::uint32_t value) const {
  for (std::size_t i = 0; i < ports.size(); ++i) {
    const bool v = (value >> i) & 1;
    sim.set_input(ports[i].t, v);
    if (differential) sim.set_input(ports[i].f, !v);
  }
}

std::uint32_t DesPortMap::read(const PowerSimulator& sim,
                               const std::vector<DesBitPorts>& ports) const {
  std::uint32_t v = 0;
  for (std::size_t i = 0; i < ports.size(); ++i) {
    const bool b = differential ? sim.output_at_eval(ports[i].t)
                                : sim.output(ports[i].t);
    if (b) v |= 1u << i;
  }
  return v;
}

DesDpaCampaign run_des_dpa_campaign(const CompiledSimModel& model,
                                    const DesDpaSetup& setup,
                                    bool differential) {
  Span span("sca.dpa.campaign", "sca");
  span.arg("measurements", setup.n_measurements);
  span.arg("differential", differential ? "true" : "false");
  SECFLOW_LOG_INFO("sca", "DPA campaign start",
                   LogField("measurements", setup.n_measurements),
                   LogField("differential", differential));

  // Resolve the Fig 4 interface once; the per-trace task below does no
  // string lookups.
  const DesPortMap ports = DesPortMap::resolve(model.netlist(), differential);

  // One task per measurement.  The task replays a four-cycle
  // mini-campaign on a reset simulator so the recorded cycle carries
  // exactly the register activity the attack targets:
  //   cycle 1  the previous plaintext reaches the PL/PR registers,
  //   cycle 2  the target plaintext arrives at the register inputs,
  //   cycle 3  PL/PR transition previous -> target   (the recorded trace),
  //   cycle 4  the ciphertext reaches the CL/CR output registers.
  const TraceTask task = [&](PowerSimulator& sim, Rng& rng, int) {
    const auto prev_pl = static_cast<std::uint32_t>(rng.next_below(16));
    const auto prev_pr = static_cast<std::uint32_t>(rng.next_below(64));
    const auto pl = static_cast<std::uint32_t>(rng.next_below(16));
    const auto pr = static_cast<std::uint32_t>(rng.next_below(64));
    ports.drive(sim, ports.k, setup.key);
    ports.drive(sim, ports.pl, prev_pl);
    ports.drive(sim, ports.pr, prev_pr);
    sim.settle();
    sim.run_cycle();
    ports.drive(sim, ports.pl, pl);
    ports.drive(sim, ports.pr, pr);
    sim.run_cycle();
    SimTrace out;
    out.cycle = sim.run_cycle();
    sim.run_cycle();
    const std::uint32_t cl = ports.read(sim, ports.cl);
    const std::uint32_t cr = ports.read(sim, ports.cr);
    out.observable = cl | (cr << 4);
    if (setup.noise_ma > 0.0) {
      for (double& s : out.cycle.current_ma) {
        s += setup.noise_ma * rng.next_gaussian();
      }
    }
    return out;
  };

  std::vector<SimTrace> traces = simulate_traces(
      model, setup.n_measurements, setup.seed, task, setup.parallelism);

  DpaOptions dpa_opts;
  dpa_opts.parallelism = setup.parallelism;
  DesDpaCampaign campaign{
      DpaAnalysis(des_selection(setup.select_bit, setup.sbox), dpa_opts), {}};
  campaign.cycle_energies_pj.reserve(traces.size());
  for (SimTrace& t : traces) {
    campaign.cycle_energies_pj.push_back(t.cycle.energy_pj);
    campaign.dpa.add_measurement(
        DpaMeasurement{std::move(t.cycle.current_ma), t.observable});
  }
  return campaign;
}

DesDpaCampaign run_des_dpa_campaign(const Netlist& nl, const CapTable& caps,
                                    const DesDpaSetup& setup,
                                    bool differential) {
  PowerSimOptions opts;
  opts.precharge_inputs = differential;
  const CompiledSimModel model(nl, caps, opts);
  return run_des_dpa_campaign(model, setup, differential);
}

void attach_dpa(FlowReport& report, const DpaResult& result,
                const std::vector<double>& cycle_energies_pj) {
  DpaSection& d = report.dpa;
  d.present = true;
  d.n_measurements = result.n_measurements;
  d.best_guess = result.best_guess;
  d.disclosed = result.disclosed;
  d.best_peak = 0.0;
  d.runner_up_peak = 0.0;
  for (std::size_t g = 0; g < result.peak_to_peak.size(); ++g) {
    const double pp = result.peak_to_peak[g];
    if (static_cast<int>(g) == result.best_guess) {
      d.best_peak = pp;
    } else {
      d.runner_up_peak = std::max(d.runner_up_peak, pp);
    }
  }
  d.mean_cycle_energy_pj = 0.0;
  if (!cycle_energies_pj.empty()) {
    double sum = 0.0;
    for (const double e : cycle_energies_pj) sum += e;
    d.mean_cycle_energy_pj = sum / static_cast<double>(cycle_energies_pj.size());
  }
}

DpaAnalysis run_des_dpa_regular(const Netlist& rtl, const CapTable& caps,
                                const DesDpaSetup& setup) {
  return run_des_dpa_campaign(rtl, caps, setup, /*differential=*/false).dpa;
}

DpaAnalysis run_des_dpa_secure(const Netlist& diff, const CapTable& caps,
                               const DesDpaSetup& setup) {
  return run_des_dpa_campaign(diff, caps, setup, /*differential=*/true).dpa;
}

}  // namespace secflow
