#include "sca/dfa.h"

#include <unordered_map>

#include "base/error.h"

namespace secflow {

DfaMonitor::DfaMonitor(const Netlist& diff) {
  std::unordered_map<std::string, InstId> masters;
  for (InstId iid : diff.instance_ids()) {
    if (diff.cell_of(iid).kind != CellKind::kFlop) continue;
    const std::string& name = diff.instance(iid).name;
    if (name.ends_with("_mst")) masters.emplace(name, iid);
  }
  for (const auto& [name, iid] : masters) {
    if (!name.ends_with("_t_mst")) continue;
    const std::string base = name.substr(0, name.size() - 6);
    const auto f = masters.find(base + "_f_mst");
    SECFLOW_CHECK(f != masters.end(),
                  "unpaired WDDL master register: " + name);
    pairs_.push_back(RailPair{base, iid, f->second});
  }
  SECFLOW_CHECK(!pairs_.empty(),
                "DfaMonitor: no WDDL registers in netlist " + diff.name());
}

std::vector<DfaAlarm> DfaMonitor::check(const PowerSimulator& sim) const {
  std::vector<DfaAlarm> alarms;
  for (const RailPair& p : pairs_) {
    const bool t = sim.flop_state(p.t_master);
    const bool f = sim.flop_state(p.f_master);
    if (t == f) {
      DfaAlarm a;
      a.register_name = p.name;
      a.both_zero = !t;
      a.both_one = t;
      alarms.push_back(a);
    }
  }
  return alarms;
}

}  // namespace secflow
