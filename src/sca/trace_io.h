// CSV export for traces and per-guess series, so DPA results can be
// plotted outside (gnuplot/python) in the same form as the paper's Fig 6.
#pragma once

#include <string>
#include <vector>

namespace secflow {

/// Write columns side by side: header `names`, then max(len) rows (short
/// columns padded with empty cells).  Throws Error on I/O failure.
void write_series_csv(const std::string& path,
                      const std::vector<std::string>& names,
                      const std::vector<std::vector<double>>& columns);

/// One row per trace, one column per sample.
void write_traces_csv(const std::string& path,
                      const std::vector<std::vector<double>>& traces);

}  // namespace secflow
