// CSV import/export for power traces and per-guess series: export so DPA
// results can be plotted outside (gnuplot/python) in the same form as the
// paper's Fig 6, import so externally captured traces can feed the
// statistical leakage-assessment engine (leakage/).
//
// The loader is strict: every row must carry the same number of samples
// as the first (a short row is a truncated record), and every cell must
// parse as a finite double — NaN/Inf would silently poison one-pass
// mean/variance/correlation accumulators, so they are rejected at the
// boundary with a clean Error naming the offending row and column.
#pragma once

#include <string>
#include <vector>

namespace secflow {

/// Write columns side by side: header `names`, then max(len) rows (short
/// columns padded with empty cells).  Throws Error on I/O failure.
void write_series_csv(const std::string& path,
                      const std::vector<std::string>& names,
                      const std::vector<std::vector<double>>& columns);

/// One row per trace, one column per sample.
void write_traces_csv(const std::string& path,
                      const std::vector<std::vector<double>>& traces);

/// Parse trace rows from CSV text (the write_traces_csv format).  Throws
/// Error on a non-numeric or non-finite (NaN/Inf) cell, an empty cell, or
/// a row whose sample count differs from the first row's (truncated or
/// ragged record).  Empty input yields an empty set.
std::vector<std::vector<double>> parse_traces_csv(const std::string& text);

/// parse_traces_csv over a file's contents; throws Error when the file
/// cannot be read.
std::vector<std::vector<double>> read_traces_csv(const std::string& path);

}  // namespace secflow
