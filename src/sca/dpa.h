// Differential Power Analysis (Kocher et al.) as used in the paper's
// evaluation (section 3, Fig 6).
//
// Supply-current traces, one per encryption, are partitioned into two sets
// by a single-bit selection function under each key guess; the
// differential trace is the difference of the two set means.  A wrong
// guess splits traces randomly and the differential tends to zero; the
// correct guess produces peaks.  Disclosure is declared when the correct
// key's peak-to-peak dominates every other guess by a margin, and the MTD
// (measurements to disclosure) is the smallest trace count from which
// disclosure persists.
#pragma once

#include <cstdint>
#include <vector>

#include "base/parallel.h"
#include "sca/selection.h"

namespace secflow {

/// One power measurement: the supply-current samples of one encryption and
/// the observables the attacker sees.
struct DpaMeasurement {
  std::vector<double> samples;
  std::uint32_t ciphertext = 0;  ///< packed observable (circuit-specific)
};

struct DpaOptions {
  int n_key_guesses = 64;
  /// Disclosure requires the best guess to beat the runner-up by this
  /// relative margin.
  double margin = 0.05;
  /// Key-guess sweep parallelism: analyze() partitions traces and
  /// accumulates the differential trace of each guess as an independent
  /// task, so results are bit-identical for any thread count.
  Parallelism parallelism;
};

struct DpaResult {
  int n_measurements = 0;
  std::vector<double> peak_to_peak;  ///< per key guess
  int best_guess = -1;
  bool disclosed = false;  ///< best guess equals the correct key, with margin
};

class DpaAnalysis {
 public:
  DpaAnalysis(SelectionFn selection, const DpaOptions& opts = {});

  void add_measurement(DpaMeasurement m);
  int n_measurements() const { return static_cast<int>(traces_.size()); }

  /// Analyze the first `n` measurements (0 = all) against `correct_key`.
  DpaResult analyze(std::uint32_t correct_key, int n = 0) const;

  /// Measurements-to-disclosure: the smallest count m in `grid` such that
  /// analyze(correct_key, m') discloses for every grid point m' >= m.
  /// Returns -1 when the key is still hidden at the largest grid point.
  int measurements_to_disclosure(std::uint32_t correct_key,
                                 const std::vector<int>& grid) const;

  /// Differential trace for one key guess over the first n measurements.
  std::vector<double> differential_trace(std::uint32_t guess, int n = 0) const;

 private:
  SelectionFn selection_;
  DpaOptions opts_;
  std::vector<DpaMeasurement> traces_;
};

/// max(trace) - min(trace); 0 for empty traces.
double peak_to_peak(const std::vector<double>& trace);

}  // namespace secflow
