#include "sca/trace_io.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "base/error.h"

namespace secflow {
namespace {

double parse_cell(const std::string& cell, std::size_t row, std::size_t col) {
  const std::string where = "traces csv row " + std::to_string(row + 1) +
                            " column " + std::to_string(col + 1);
  SECFLOW_CHECK(!cell.empty(), where + ": empty cell (truncated record?)");
  const char* begin = cell.c_str();
  char* end = nullptr;
  const double v = std::strtod(begin, &end);
  SECFLOW_CHECK(end == begin + cell.size(),
                where + ": not a number: '" + cell + "'");
  SECFLOW_CHECK(std::isfinite(v),
                where + ": non-finite sample '" + cell +
                    "' would poison one-pass statistics");
  return v;
}

}  // namespace

void write_series_csv(const std::string& path,
                      const std::vector<std::string>& names,
                      const std::vector<std::vector<double>>& columns) {
  SECFLOW_CHECK(names.size() == columns.size(),
                "series names/columns mismatch");
  std::ofstream f(path);
  SECFLOW_CHECK(f.good(), "cannot open for write: " + path);
  for (std::size_t i = 0; i < names.size(); ++i) {
    f << (i ? "," : "") << names[i];
  }
  f << '\n';
  std::size_t rows = 0;
  for (const auto& c : columns) rows = std::max(rows, c.size());
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t i = 0; i < columns.size(); ++i) {
      if (i) f << ',';
      if (r < columns[i].size()) f << columns[i][r];
    }
    f << '\n';
  }
  SECFLOW_CHECK(f.good(), "write failed: " + path);
}

void write_traces_csv(const std::string& path,
                      const std::vector<std::vector<double>>& traces) {
  std::ofstream f(path);
  SECFLOW_CHECK(f.good(), "cannot open for write: " + path);
  for (const auto& t : traces) {
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (i) f << ',';
      f << t[i];
    }
    f << '\n';
  }
  SECFLOW_CHECK(f.good(), "write failed: " + path);
}

std::vector<std::vector<double>> parse_traces_csv(const std::string& text) {
  std::vector<std::vector<double>> traces;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    std::vector<double> row;
    std::size_t start = 0;
    while (true) {
      const std::size_t comma = line.find(',', start);
      const std::string cell =
          line.substr(start, comma == std::string::npos ? std::string::npos
                                                        : comma - start);
      row.push_back(parse_cell(cell, traces.size(), row.size()));
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
    SECFLOW_CHECK(traces.empty() || row.size() == traces.front().size(),
                  "traces csv row " + std::to_string(traces.size() + 1) +
                      ": " + std::to_string(row.size()) + " samples, expected " +
                      std::to_string(traces.front().size()) +
                      " (truncated record)");
    traces.push_back(std::move(row));
  }
  return traces;
}

std::vector<std::vector<double>> read_traces_csv(const std::string& path) {
  std::ifstream f(path);
  SECFLOW_CHECK(f.good(), "cannot open for read: " + path);
  std::ostringstream text;
  text << f.rdbuf();
  SECFLOW_CHECK(!f.bad(), "read failed: " + path);
  return parse_traces_csv(text.str());
}

}  // namespace secflow
