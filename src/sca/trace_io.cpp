#include "sca/trace_io.h"

#include <algorithm>
#include <fstream>

#include "base/error.h"

namespace secflow {

void write_series_csv(const std::string& path,
                      const std::vector<std::string>& names,
                      const std::vector<std::vector<double>>& columns) {
  SECFLOW_CHECK(names.size() == columns.size(),
                "series names/columns mismatch");
  std::ofstream f(path);
  SECFLOW_CHECK(f.good(), "cannot open for write: " + path);
  for (std::size_t i = 0; i < names.size(); ++i) {
    f << (i ? "," : "") << names[i];
  }
  f << '\n';
  std::size_t rows = 0;
  for (const auto& c : columns) rows = std::max(rows, c.size());
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t i = 0; i < columns.size(); ++i) {
      if (i) f << ',';
      if (r < columns[i].size()) f << columns[i][r];
    }
    f << '\n';
  }
  SECFLOW_CHECK(f.good(), "write failed: " + path);
}

void write_traces_csv(const std::string& path,
                      const std::vector<std::vector<double>>& traces) {
  std::ofstream f(path);
  SECFLOW_CHECK(f.good(), "cannot open for write: " + path);
  for (const auto& t : traces) {
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (i) f << ',';
      f << t[i];
    }
    f << '\n';
  }
  SECFLOW_CHECK(f.good(), "write failed: " + path);
}

}  // namespace secflow
