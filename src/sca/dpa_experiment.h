// The paper's DPA experiment (section 3): drive the reduced-DES circuit
// with random plaintexts and a fixed secret key, record one supply-current
// trace per encryption, and mount the DPA of Fig 6.
//
// Works on any implementation of the Fig 4 interface — the regular
// single-ended netlist or the WDDL differential netlist — given the
// netlist and its extracted switched-capacitance table.
//
// Each measurement is an independent simulation task (previous plaintext,
// target plaintext, and measurement noise all drawn from the per-trace
// RNG stream Rng::stream(seed, i)), so the campaign parallelizes across
// traces with bit-identical results at any thread count.
#pragma once

#include <cstdint>
#include <vector>

#include "base/parallel.h"
#include "netlist/netlist.h"
#include "obs/report.h"
#include "sca/dpa.h"
#include "sim/power_sim.h"

namespace secflow {

/// Pre-resolved port ids for one bit of the Fig 4 interface.  For a
/// differential netlist each bit has a true and a false rail;
/// single-ended designs leave `f` invalid.
struct DesBitPorts {
  PortId t;
  PortId f;
};

/// The Fig 4 interface (pl/pr/k inputs, cl/cr outputs, rails suffixed
/// _t/_f on differential netlists), resolved to PortIds once per campaign
/// so per-trace tasks never hash a port name.  Shared by the DPA campaign
/// and the leakage-assessment campaigns (leakage/assess.h).
struct DesPortMap {
  std::vector<DesBitPorts> k, pl, pr, cl, cr;
  bool differential = false;

  /// Resolve from port names; throws Error on a missing port/rail.
  static DesPortMap resolve(const Netlist& nl, bool differential);

  /// Drive a multi-bit input (both rails on differential designs).
  void drive(PowerSimulator& sim, const std::vector<DesBitPorts>& ports,
             std::uint32_t value) const;

  /// Read a multi-bit observable.  A WDDL design is observable only
  /// during the evaluate phase (rails precharge to 0 afterwards); a
  /// regular design reads the settled end-of-cycle value.
  std::uint32_t read(const PowerSimulator& sim,
                     const std::vector<DesBitPorts>& ports) const;
};

struct DesDpaSetup {
  std::uint32_t key = 46;      ///< the paper's secret key
  int select_bit = 2;          ///< "3rd bit of PL"
  int sbox = 1;
  int n_measurements = 2000;   ///< the paper's trace count
  std::uint64_t seed = 2025;
  /// Gaussian measurement noise added per sample [mA] (the paper's traces
  /// include measurement noise; 0 disables).
  double noise_ma = 0.0;
  /// Trace-synthesis and key-guess-sweep parallelism.
  Parallelism parallelism;
};

/// Run the measurement campaign on a regular (single-ended) reduced-DES
/// netlist with ports pl_*, pr_*, k_*, clk, cl_*, cr_*.
DpaAnalysis run_des_dpa_regular(const Netlist& rtl, const CapTable& caps,
                                const DesDpaSetup& setup);

/// Run the campaign on the WDDL differential netlist (rail ports *_t/_f).
DpaAnalysis run_des_dpa_secure(const Netlist& diff, const CapTable& caps,
                               const DesDpaSetup& setup);

/// Per-cycle energies recorded during a campaign (for the NED/NSD table).
struct DesDpaCampaign {
  DpaAnalysis dpa;
  std::vector<double> cycle_energies_pj;
};

DesDpaCampaign run_des_dpa_campaign(const Netlist& nl, const CapTable& caps,
                                    const DesDpaSetup& setup,
                                    bool differential);

/// Run the campaign against a prebuilt simulation model (compile once,
/// attack many).  The model's options must already carry the right
/// precharge mode (precharge_inputs == differential); all DES port names
/// are resolved to PortIds once, so the per-trace task does no string
/// lookups.
DesDpaCampaign run_des_dpa_campaign(const CompiledSimModel& model,
                                    const DesDpaSetup& setup,
                                    bool differential);

/// Fill FlowReport::dpa from an analyzed campaign: measurement count,
/// ranked guess, disclosure verdict, best/runner-up peaks, and the mean
/// per-cycle energy (pass an empty vector when energies were not kept).
void attach_dpa(FlowReport& report, const DpaResult& result,
                const std::vector<double>& cycle_energies_pj);

}  // namespace secflow
