// Logic equivalence checking between flow artifacts (paper section 2.3:
// "A logic equivalence checker, such as Formality or Verplex LEC, verifies
// the equivalence between the fat gate level netlist and the original
// netlist").
//
// Sequential netlists are compared combinationally with register
// correspondence by instance name: for each pair of corresponding flops
// the next-state cones must match (the flop's input function — identity
// for DFF, inversion for the WDDL rail-swapped variant — is applied), and
// every output-port cone must match.  Cones are compared as BDDs over the
// shared primary inputs and register outputs.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.h"

namespace secflow {

struct LecMismatch {
  std::string what;           ///< port or flop name
  std::string counterexample; ///< input/state assignment exhibiting the diff
};

struct LecResult {
  bool equivalent = false;
  int compared_points = 0;
  std::vector<LecMismatch> mismatches;
};

/// Check combinational equivalence of `a` and `b` with name-based port and
/// register correspondence.  Structural differences (missing ports or
/// registers) are reported as mismatches.
LecResult check_equivalence(const Netlist& a, const Netlist& b);

}  // namespace secflow
