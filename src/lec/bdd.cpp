#include "lec/bdd.h"

#include <cstdint>
#include <functional>

#include "base/error.h"

namespace secflow {
namespace {

std::uint64_t triple_key(std::uint32_t a, std::uint32_t b, std::uint32_t c) {
  // 21 bits per field is ample for this package's sizes.
  return (static_cast<std::uint64_t>(a) << 42) |
         (static_cast<std::uint64_t>(b) << 21) | c;
}

}  // namespace

Bdd::Bdd() {
  nodes_.push_back(Node{});  // 0: false terminal
  nodes_.push_back(Node{});  // 1: true terminal
}

BddRef Bdd::make(int var, BddRef lo, BddRef hi) {
  if (lo == hi) return lo;
  const std::uint64_t key =
      triple_key(static_cast<std::uint32_t>(var), lo, hi);
  const auto it = unique_.find(key);
  if (it != unique_.end()) return it->second;
  const BddRef id = static_cast<BddRef>(nodes_.size());
  nodes_.push_back(Node{var, lo, hi});
  unique_.emplace(key, id);
  return id;
}

BddRef Bdd::var(int index) {
  SECFLOW_CHECK(index >= 0, "negative BDD variable");
  const auto it = vars_.find(index);
  if (it != vars_.end()) return it->second;
  const BddRef v = make(index, kFalse, kTrue);
  vars_.emplace(index, v);
  return v;
}

int Bdd::top_var(BddRef f, BddRef g, BddRef h) const {
  int top = INT32_MAX;
  for (BddRef r : {f, g, h}) {
    if (r > kTrue && nodes_[r].var < top) top = nodes_[r].var;
  }
  return top;
}

BddRef Bdd::cofactor(BddRef f, int v, bool value) const {
  if (f <= kTrue) return f;
  const Node& n = nodes_[f];
  if (n.var != v) return f;
  return value ? n.hi : n.lo;
}

BddRef Bdd::ite(BddRef i, BddRef t, BddRef e) {
  // Terminal cases.
  if (i == kTrue) return t;
  if (i == kFalse) return e;
  if (t == e) return t;
  if (t == kTrue && e == kFalse) return i;
  const std::uint64_t key = triple_key(i, t, e);
  if (const auto it = ite_cache_.find(key); it != ite_cache_.end()) {
    return it->second;
  }
  const int v = top_var(i, t, e);
  const BddRef hi = ite(cofactor(i, v, true), cofactor(t, v, true),
                        cofactor(e, v, true));
  const BddRef lo = ite(cofactor(i, v, false), cofactor(t, v, false),
                        cofactor(e, v, false));
  const BddRef r = make(v, lo, hi);
  ite_cache_.emplace(key, r);
  return r;
}

BddRef Bdd::bdd_not(BddRef f) { return ite(f, kFalse, kTrue); }
BddRef Bdd::bdd_and(BddRef f, BddRef g) { return ite(f, g, kFalse); }
BddRef Bdd::bdd_or(BddRef f, BddRef g) { return ite(f, kTrue, g); }
BddRef Bdd::bdd_xor(BddRef f, BddRef g) { return ite(f, bdd_not(g), g); }

BddRef Bdd::apply_fn(const LogicFn& fn, const std::vector<BddRef>& args) {
  SECFLOW_CHECK(static_cast<int>(args.size()) >= fn.n_inputs(),
                "apply_fn: not enough arguments");
  // Shannon expansion over the function's inputs, highest index first:
  // split the table into the cofactor sub-tables for input i = 0 / 1.
  const std::function<BddRef(std::uint64_t, int)> expand =
      [&](std::uint64_t table, int k) -> BddRef {
    if (k == 0) return (table & 1) ? kTrue : kFalse;
    const int i = k - 1;
    const unsigned half = 1u << i;
    std::uint64_t lo_t = 0, hi_t = 0;
    for (unsigned r = 0; r < half; ++r) {
      if ((table >> r) & 1) lo_t |= std::uint64_t{1} << r;
      if ((table >> (r | half)) & 1) hi_t |= std::uint64_t{1} << r;
    }
    const BddRef lo = expand(lo_t, k - 1);
    const BddRef hi = expand(hi_t, k - 1);
    return ite(args[static_cast<std::size_t>(i)], hi, lo);
  };
  return expand(fn.table(), fn.n_inputs());
}

bool Bdd::eval(BddRef f, const std::vector<bool>& assignment) const {
  while (f > kTrue) {
    const Node& n = nodes_[f];
    const bool v = n.var < static_cast<int>(assignment.size()) &&
                   assignment[static_cast<std::size_t>(n.var)];
    f = v ? n.hi : n.lo;
  }
  return f == kTrue;
}

std::vector<bool> Bdd::any_sat(BddRef f, int n_vars) const {
  SECFLOW_CHECK(f != kFalse, "any_sat of constant false");
  std::vector<bool> out(static_cast<std::size_t>(n_vars), false);
  while (f > kTrue) {
    const Node& n = nodes_[f];
    if (n.hi != kFalse) {
      if (n.var < n_vars) out[static_cast<std::size_t>(n.var)] = true;
      f = n.hi;
    } else {
      f = n.lo;
    }
  }
  return out;
}

}  // namespace secflow
