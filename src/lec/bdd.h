// Reduced Ordered Binary Decision Diagrams.
//
// A small from-scratch BDD package sufficient for combinational
// equivalence checking of flow artifacts (the role Formality / Verplex LEC
// play in the paper).  Nodes live in a unique table, so two functions are
// equivalent iff their root ids are equal.  Variable order is creation
// order.  No complement edges (kept simple; sizes here are modest).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "netlist/logic_fn.h"

namespace secflow {

using BddRef = std::uint32_t;

class Bdd {
 public:
  static constexpr BddRef kFalse = 0;
  static constexpr BddRef kTrue = 1;

  Bdd();

  /// Create (or return) the variable with this index; variables are
  /// ordered by index in every BDD.
  BddRef var(int index);

  BddRef bdd_not(BddRef f);
  BddRef bdd_and(BddRef f, BddRef g);
  BddRef bdd_or(BddRef f, BddRef g);
  BddRef bdd_xor(BddRef f, BddRef g);
  /// if-then-else: i ? t : e (the core operation).
  BddRef ite(BddRef i, BddRef t, BddRef e);

  /// BDD of `fn` applied to the given argument BDDs.
  BddRef apply_fn(const LogicFn& fn, const std::vector<BddRef>& args);

  /// Evaluate under an assignment (indexed by variable index).
  bool eval(BddRef f, const std::vector<bool>& assignment) const;

  /// One satisfying assignment of f (f must not be kFalse); variables not
  /// on the path default to false.  Used for counterexamples.
  std::vector<bool> any_sat(BddRef f, int n_vars) const;

  std::size_t n_nodes() const { return nodes_.size(); }

 private:
  struct Node {
    int var = -1;  // -1 for terminals
    BddRef lo = 0;
    BddRef hi = 0;
  };

  BddRef make(int var, BddRef lo, BddRef hi);
  int top_var(BddRef f, BddRef g, BddRef h) const;
  BddRef cofactor(BddRef f, int var, bool value) const;

  std::vector<Node> nodes_;
  std::unordered_map<std::uint64_t, BddRef> unique_;
  std::unordered_map<std::uint64_t, BddRef> ite_cache_;
  std::unordered_map<int, BddRef> vars_;
};

}  // namespace secflow
