#include "lec/lec.h"

#include <map>
#include <unordered_map>

#include "base/error.h"
#include "lec/bdd.h"

namespace secflow {
namespace {

/// Builds BDDs for every net of one netlist over a shared variable space.
class ConeBuilder {
 public:
  ConeBuilder(const Netlist& nl, Bdd& bdd,
              const std::map<std::string, int>& input_vars,
              const std::map<std::string, int>& state_vars)
      : nl_(nl), bdd_(bdd) {
    net_bdd_.assign(nl.n_nets(), Bdd::kFalse);

    for (PortId pid : nl.port_ids()) {
      const Port& p = nl.port(pid);
      if (p.dir != PinDir::kInput) continue;
      const auto it = input_vars.find(p.name);
      SECFLOW_CHECK(it != input_vars.end(), "missing input var " + p.name);
      net_bdd_[p.net.index()] = bdd_.var(it->second);
    }
    for (InstId iid : nl.instance_ids()) {
      const Instance& in = nl.instance(iid);
      const CellType& type = nl.cell_of(iid);
      if (type.kind != CellKind::kFlop) continue;
      const auto it = state_vars.find(in.name);
      if (it == state_vars.end()) continue;  // reported by caller
      const NetId q = in.conns[static_cast<std::size_t>(type.output_pin())];
      if (!q.valid()) continue;
      net_bdd_[q.index()] = bdd_.var(it->second);
    }
    for (InstId iid : nl.topological_order()) {
      const Instance& in = nl.instance(iid);
      const CellType& type = nl.cell_of(iid);
      if (type.kind == CellKind::kFlop) continue;
      const int out_pin = type.output_pin();
      if (out_pin < 0) continue;
      const NetId out = in.conns[static_cast<std::size_t>(out_pin)];
      if (!out.valid()) continue;
      std::vector<BddRef> args;
      for (int pin : type.input_pins()) {
        const NetId net = in.conns[static_cast<std::size_t>(pin)];
        SECFLOW_CHECK(net.valid(), "floating input in LEC: " + in.name);
        args.push_back(net_bdd_[net.index()]);
      }
      net_bdd_[out.index()] = bdd_.apply_fn(type.function, args);
    }
  }

  BddRef net(NetId id) const { return net_bdd_[id.index()]; }

  /// Next-state function of a flop: its input function applied to the D
  /// cone (identity for DFF, inversion for rail-swapped variants).
  BddRef next_state(InstId flop) const {
    const Instance& in = nl_.instance(flop);
    const CellType& type = nl_.cell_of(flop);
    const NetId d = in.conns[static_cast<std::size_t>(type.d_pin())];
    SECFLOW_CHECK(d.valid(), "flop without D in LEC: " + in.name);
    return bdd_.apply_fn(type.function, {net_bdd_[d.index()]});
  }

 private:
  const Netlist& nl_;
  Bdd& bdd_;
  std::vector<BddRef> net_bdd_;
};

std::string format_counterexample(const Bdd& bdd, BddRef diff,
                                  const std::vector<std::string>& var_names) {
  const std::vector<bool> assignment =
      bdd.any_sat(diff, static_cast<int>(var_names.size()));
  std::string out;
  for (std::size_t i = 0; i < var_names.size(); ++i) {
    if (!out.empty()) out += ' ';
    out += var_names[i] + "=" + (assignment[i] ? "1" : "0");
  }
  return out;
}

}  // namespace

LecResult check_equivalence(const Netlist& a, const Netlist& b) {
  LecResult result;
  result.equivalent = true;

  // Shared variable space: union of input ports and flop instance names.
  std::map<std::string, int> input_vars;
  std::map<std::string, int> state_vars;
  std::vector<std::string> var_names;
  auto collect_inputs = [&](const Netlist& nl) {
    for (PortId pid : nl.port_ids()) {
      const Port& p = nl.port(pid);
      if (p.dir != PinDir::kInput) continue;
      if (!input_vars.contains(p.name)) {
        input_vars.emplace(p.name, static_cast<int>(var_names.size()));
        var_names.push_back(p.name);
      }
    }
  };
  auto collect_states = [&](const Netlist& nl) {
    for (InstId iid : nl.instance_ids()) {
      if (nl.cell_of(iid).kind != CellKind::kFlop) continue;
      const std::string& name = nl.instance(iid).name;
      if (!state_vars.contains(name)) {
        state_vars.emplace(name, static_cast<int>(var_names.size()));
        var_names.push_back(name);
      }
    }
  };
  collect_inputs(a);
  collect_inputs(b);
  collect_states(a);
  collect_states(b);

  Bdd bdd;
  const ConeBuilder cone_a(a, bdd, input_vars, state_vars);
  const ConeBuilder cone_b(b, bdd, input_vars, state_vars);

  auto report = [&](const std::string& what, BddRef fa, BddRef fb) {
    ++result.compared_points;
    if (fa == fb) return;
    result.equivalent = false;
    const BddRef diff = bdd.bdd_xor(fa, fb);
    result.mismatches.push_back(
        LecMismatch{what, format_counterexample(bdd, diff, var_names)});
  };

  // Output ports.
  for (PortId pid : a.port_ids()) {
    const Port& pa = a.port(pid);
    if (pa.dir != PinDir::kOutput) continue;
    const PortId qid = b.find_port(pa.name);
    if (!qid.valid() || b.port(qid).dir != PinDir::kOutput) {
      result.equivalent = false;
      result.mismatches.push_back(
          LecMismatch{"output " + pa.name + " missing in " + b.name(), ""});
      continue;
    }
    report("output " + pa.name, cone_a.net(pa.net),
           cone_b.net(b.port(qid).net));
  }
  for (PortId pid : b.port_ids()) {
    const Port& pb = b.port(pid);
    if (pb.dir == PinDir::kOutput && !a.find_port(pb.name).valid()) {
      result.equivalent = false;
      result.mismatches.push_back(
          LecMismatch{"output " + pb.name + " missing in " + a.name(), ""});
    }
  }

  // Registers (name correspondence).
  std::unordered_map<std::string, InstId> flops_b;
  for (InstId iid : b.instance_ids()) {
    if (b.cell_of(iid).kind == CellKind::kFlop) {
      flops_b.emplace(b.instance(iid).name, iid);
    }
  }
  for (InstId iid : a.instance_ids()) {
    if (a.cell_of(iid).kind != CellKind::kFlop) continue;
    const std::string& name = a.instance(iid).name;
    const auto it = flops_b.find(name);
    if (it == flops_b.end()) {
      result.equivalent = false;
      result.mismatches.push_back(
          LecMismatch{"register " + name + " missing in " + b.name(), ""});
      continue;
    }
    report("register " + name, cone_a.next_state(iid),
           cone_b.next_state(it->second));
    flops_b.erase(it);
  }
  for (const auto& [name, iid] : flops_b) {
    result.equivalent = false;
    result.mismatches.push_back(
        LecMismatch{"register " + name + " missing in " + a.name(), ""});
  }
  return result;
}

}  // namespace secflow
