// Machine-readable campaign report.
//
// One JSON document per campaign run: per-job status, scheduling edges
// (waited_on), artifact content digests, the full per-job FlowReport
// (with DPA verdicts when an attack ran), and the cache-hit matrix
// (jobs × pipeline stages) that shows exactly which shared stages the
// scheduler deduplicated.  `secflow_cli campaign ... --out report.json`
// dumps it, CI archives it, and scripts diff digests across runs.
//
// Schema identifier: "secflow.campaign-report/1".  Per-job flow reports
// embed as secflow.flow-report/1 objects and are validated by the same
// validator the single-flow path uses.
#pragma once

#include <string>

#include "campaign/campaign.h"
#include "obs/json.h"

namespace secflow {

inline constexpr const char* kCampaignReportSchema =
    "secflow.campaign-report/1";

/// The report as pretty-printed JSON (ends with a newline).
std::string campaign_report_json(const CampaignResult& r);

/// Check a parsed document against the secflow.campaign-report/1 schema:
/// required members with the right types, job statuses from the known
/// vocabulary, cache-matrix rows matching the job list, digests 16 hex
/// digits, embedded flow reports valid.  Throws Error on violation.
void validate_campaign_report(const JsonValue& doc);

/// Inverse of campaign_report_json; validates first.  Throws
/// Error/ParseError on malformed or schema-violating input.
CampaignResult parse_campaign_report(const std::string& json);

}  // namespace secflow
