#include "campaign/report.h"

#include "base/error.h"

namespace secflow {
namespace {

const char* const kCacheVocabulary[] = {"not-run", "off", "miss", "hit"};

/// The cache row of one job: six stage verdicts, "not-run" for jobs whose
/// flow never produced a report (failed before the first stage).
JsonValue cache_row(const JobOutcome& job) {
  JsonValue stages = JsonValue::array();
  if (job.ok) {
    for (const StageEntry& s : job.report.stages) stages.push_back(s.cache);
  } else {
    for (int i = 0; i < kNumFlowStages; ++i) stages.push_back("not-run");
  }
  JsonValue row = JsonValue::object();
  row.set("job", job.name);
  row.set("stages", std::move(stages));
  return row;
}

const JsonValue& member(const JsonValue& obj, std::string_view key,
                        JsonValue::Kind kind, const char* where) {
  const JsonValue* v = obj.find(key);
  SECFLOW_CHECK(v != nullptr, std::string("campaign report: ") + where +
                                  " lacks required member '" +
                                  std::string(key) + "'");
  SECFLOW_CHECK(v->kind() == kind, std::string("campaign report: ") + where +
                                       " member '" + std::string(key) +
                                       "' has the wrong type");
  return *v;
}

double num(const JsonValue& obj, std::string_view key, const char* where) {
  return member(obj, key, JsonValue::Kind::kNumber, where).as_number();
}

std::string str(const JsonValue& obj, std::string_view key,
                const char* where) {
  return member(obj, key, JsonValue::Kind::kString, where).as_string();
}

}  // namespace

std::string campaign_report_json(const CampaignResult& r) {
  JsonValue doc = JsonValue::object();
  doc.set("schema", kCampaignReportSchema);
  doc.set("campaign", r.campaign);
  doc.set("n_jobs", static_cast<std::int64_t>(r.jobs.size()));
  doc.set("n_ok", r.n_ok);
  doc.set("n_failed", r.n_failed);
  doc.set("wall_ms", r.wall_ms);

  // Cache totals + the jobs × stages matrix, derived from the per-job
  // stage entries so the matrix can never disagree with the reports.
  int hits = 0;
  int misses = 0;
  JsonValue matrix = JsonValue::array();
  for (const JobOutcome& job : r.jobs) {
    if (job.ok) {
      for (const StageEntry& s : job.report.stages) {
        hits += s.cache == "hit" ? 1 : 0;
        misses += s.cache == "miss" ? 1 : 0;
      }
    }
    matrix.push_back(cache_row(job));
  }
  JsonValue cache = JsonValue::object();
  cache.set("hits", hits);
  cache.set("misses", misses);
  cache.set("matrix", std::move(matrix));
  doc.set("cache", std::move(cache));

  JsonValue jobs = JsonValue::array();
  for (const JobOutcome& job : r.jobs) {
    JsonValue jv = JsonValue::object();
    jv.set("name", job.name);
    jv.set("status", job.ok ? "ok" : "error");
    jv.set("error", job.error);
    jv.set("wall_ms", job.wall_ms);
    JsonValue waited = JsonValue::array();
    for (const std::string& producer : job.waited_on) {
      waited.push_back(producer);
    }
    jv.set("waited_on", std::move(waited));
    JsonValue artifacts = JsonValue::object();
    for (const auto& [name, digest] : job.artifacts) {
      artifacts.set(name, digest);
    }
    jv.set("artifacts", std::move(artifacts));
    jv.set("report", job.ok ? flow_report_to_json(job.report) : JsonValue());
    jobs.push_back(std::move(jv));
  }
  doc.set("jobs", std::move(jobs));
  return json_dump(doc, 2) + "\n";
}

void validate_campaign_report(const JsonValue& doc) {
  SECFLOW_CHECK(doc.is_object(),
                "campaign report: document is not an object");
  const std::string schema = str(doc, "schema", "document");
  SECFLOW_CHECK(schema == kCampaignReportSchema,
                "campaign report: unknown schema '" + schema + "' (want " +
                    kCampaignReportSchema + ")");
  str(doc, "campaign", "document");
  const auto n_jobs = static_cast<std::size_t>(num(doc, "n_jobs", "document"));
  num(doc, "n_ok", "document");
  num(doc, "n_failed", "document");
  num(doc, "wall_ms", "document");

  const JsonValue& jobs =
      member(doc, "jobs", JsonValue::Kind::kArray, "document");
  SECFLOW_CHECK(jobs.items().size() == n_jobs,
                "campaign report: n_jobs disagrees with the jobs array");
  for (const JsonValue& j : jobs.items()) {
    SECFLOW_CHECK(j.is_object(),
                  "campaign report: job entry is not an object");
    str(j, "name", "job");
    const std::string status = str(j, "status", "job");
    SECFLOW_CHECK(status == "ok" || status == "error",
                  "campaign report: job status must be 'ok' or 'error', "
                  "got '" + status + "'");
    str(j, "error", "job");
    num(j, "wall_ms", "job");
    const JsonValue& waited =
        member(j, "waited_on", JsonValue::Kind::kArray, "job");
    for (const JsonValue& w : waited.items()) {
      SECFLOW_CHECK(w.is_string(),
                    "campaign report: waited_on entries must be strings");
    }
    const JsonValue& artifacts =
        member(j, "artifacts", JsonValue::Kind::kObject, "job");
    for (const auto& [name, digest] : artifacts.members()) {
      SECFLOW_CHECK(digest.is_string() && digest.as_string().size() == 16,
                    "campaign report: artifact '" + name +
                        "' digest must be 16 hex digits");
    }
    const JsonValue* report = j.find("report");
    SECFLOW_CHECK(report != nullptr &&
                      (report->is_null() || report->is_object()),
                  "campaign report: job report must be null or an object");
    SECFLOW_CHECK((status == "ok") == report->is_object(),
                  "campaign report: ok jobs carry a report, failed jobs "
                  "carry null");
    if (report->is_object()) validate_flow_report(*report);
  }

  const JsonValue& cache =
      member(doc, "cache", JsonValue::Kind::kObject, "document");
  num(cache, "hits", "cache");
  num(cache, "misses", "cache");
  const JsonValue& matrix =
      member(cache, "matrix", JsonValue::Kind::kArray, "cache");
  SECFLOW_CHECK(matrix.items().size() == n_jobs,
                "campaign report: cache matrix must have one row per job");
  for (const JsonValue& row : matrix.items()) {
    SECFLOW_CHECK(row.is_object(),
                  "campaign report: cache matrix row is not an object");
    str(row, "job", "cache matrix row");
    const JsonValue& stages =
        member(row, "stages", JsonValue::Kind::kArray, "cache matrix row");
    SECFLOW_CHECK(static_cast<int>(stages.items().size()) == kNumFlowStages,
                  "campaign report: cache matrix row must have one entry "
                  "per pipeline stage");
    for (const JsonValue& s : stages.items()) {
      SECFLOW_CHECK(s.is_string(),
                    "campaign report: cache verdicts must be strings");
      bool known = false;
      for (const char* v : kCacheVocabulary) known = known || s.as_string() == v;
      SECFLOW_CHECK(known, "campaign report: unknown cache verdict '" +
                               s.as_string() + "'");
    }
  }
}

CampaignResult parse_campaign_report(const std::string& json) {
  const JsonValue doc = json_parse(json);
  validate_campaign_report(doc);

  CampaignResult r;
  r.campaign = str(doc, "campaign", "document");
  r.n_ok = static_cast<int>(num(doc, "n_ok", "document"));
  r.n_failed = static_cast<int>(num(doc, "n_failed", "document"));
  r.wall_ms = num(doc, "wall_ms", "document");
  for (const JsonValue& j : doc.find("jobs")->items()) {
    JobOutcome out;
    out.name = str(j, "name", "job");
    out.ok = str(j, "status", "job") == "ok";
    out.error = str(j, "error", "job");
    out.wall_ms = num(j, "wall_ms", "job");
    for (const JsonValue& w : j.find("waited_on")->items()) {
      out.waited_on.push_back(w.as_string());
    }
    for (const auto& [name, digest] : j.find("artifacts")->members()) {
      out.artifacts.emplace_back(name, digest.as_string());
    }
    if (out.ok) out.report = flow_report_from_json(*j.find("report"));
    r.jobs.push_back(std::move(out));
  }
  return r;
}

}  // namespace secflow
