// Campaign specification: N flow jobs declared in one JSON document.
//
// A campaign is the paper's experimental unit scaled up — Fig 6 is a
// regular-vs-secure comparison, a security-closure sweep is the same
// design across option variants and seeds.  The spec declares the job
// set (circuit × flow kind × seed × option overrides); the engine
// (campaign.h) schedules it so jobs sharing a checkpoint-key prefix
// compute shared stages once.
//
// Schema "secflow.campaign/1":
//
//   {
//     "schema": "secflow.campaign/1",
//     "name": "regular-vs-secure",
//     "cache_dir": "ckpt",               // optional; enables stage sharing
//     "threads": 0,                      // optional; concurrent jobs, 0 = auto
//     "jobs": [
//       {
//         "name": "des-secure",          // optional; default "job<N>"
//         "circuit": {"builtin": "des-dpa"},   // or {"hdl": "module ..."}
//                                              // or {"file": "path.v"}
//         "flow": "secure",              // "regular" | "secure"
//         "seed": 1,                     // optional; DPA measurement seed
//         "dpa": {"n_measurements": 400, "noise_ma": 0.0,
//                 "select_bit": 2, "sbox": 1, "key": 46},   // optional
//         "options": {                   // optional FlowOptions overrides
//           "route_mode": "quick",       // "detailed" | "quick"
//           "shielded_pairs": true,
//           "stop_after": "routing",
//           "place":   {"aspect_ratio": 1.0, "fill_factor": 0.8,
//                       "sa_moves_per_instance": 60, "sa_batch": 16,
//                       "margin_tracks": 8, "seed": 1},
//           "route":   {"via_cost": 3, "max_iterations": 48},
//           "extract": {"coupling_max_sep_um": 1.2,
//                       "variation_sigma": 0.0, "seed": 7}
//         }
//       }
//     ]
//   }
//
// Parsing is strict: unknown members, wrong types and inconsistent
// combinations are rejected, and ALL problems are collected into one
// Error (one line per violation) so a bad spec is fixed in one pass.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "base/parallel.h"
#include "flow/flow.h"

namespace secflow {

inline constexpr const char* kCampaignSpecSchema = "secflow.campaign/1";

/// Where a job's circuit comes from.  Elaboration happens inside the job
/// (a bad HDL file fails that job, not the campaign).
enum class CircuitSourceKind {
  kBuiltinDesDpa,  ///< make_des_dpa_circuit() — the paper's Fig 4 module
  kHdlText,        ///< inline mini-HDL in the spec
  kHdlFile,        ///< path to a mini-HDL file
};

struct CircuitSource {
  CircuitSourceKind kind = CircuitSourceKind::kBuiltinDesDpa;
  std::string text;  ///< HDL source or file path ("" for builtins)
};

/// DPA attack parameters of one job (paper section 3 defaults).
struct DpaParams {
  int n_measurements = 2000;
  double noise_ma = 0.0;
  int select_bit = 2;
  int sbox = 1;
  std::uint32_t key = 46;
};

struct CampaignJob {
  std::string name;
  CircuitSource circuit;
  FlowKind flow = FlowKind::kSecure;
  /// Seed of the DPA measurement RNG streams (layout seeds are option
  /// overrides: place.seed / extract.seed — they change artifacts and
  /// therefore cache keys; this one never does).
  std::uint64_t seed = 2025;
  bool has_dpa = false;
  DpaParams dpa;
  /// Flow options after applying the spec's overrides.  cache_dir /
  /// resume_from / log_level are engine-owned and not override-able.
  FlowOptions options;
};

struct CampaignSpec {
  std::string name;
  /// Checkpoint directory shared by every job ("" disables sharing).
  std::string cache_dir;
  /// Jobs running concurrently (0 = auto: SECFLOW_THREADS / hardware).
  int threads = 0;
  std::vector<CampaignJob> jobs;

  /// Re-check invariants (job names unique, DPA needs extraction, every
  /// job's FlowOptions valid).  Collects all violations into one Error.
  /// parse_campaign_spec has already called this.
  void validate() const;
};

/// Parse and validate a spec document.  Throws ParseError on malformed
/// JSON; throws Error listing every schema/consistency violation at once.
CampaignSpec parse_campaign_spec(const std::string& json_text);

}  // namespace secflow
