#include "campaign/spec.h"

#include <optional>
#include <set>
#include <utility>

#include "base/error.h"
#include "obs/json.h"

namespace secflow {
namespace {

/// Violation collector: parsing keeps going after an error so the final
/// Error lists everything wrong with the spec, not just the first hit.
class Violations {
 public:
  void add(std::string msg) { msgs_.push_back(std::move(msg)); }

  void throw_if_any() const {
    if (msgs_.empty()) return;
    if (msgs_.size() == 1) throw Error("campaign spec: " + msgs_[0]);
    std::string msg = "campaign spec: " + std::to_string(msgs_.size()) +
                      " violations:";
    for (const std::string& m : msgs_) msg += "\n  - " + m;
    throw Error(msg);
  }

 private:
  std::vector<std::string> msgs_;
};

/// Reject members outside the schema — a typo like "flowkind" must not
/// silently parse as "use every default".
void check_members(const JsonValue& obj, const char* where,
                   std::initializer_list<const char*> allowed,
                   Violations& errs) {
  for (const auto& [key, value] : obj.members()) {
    bool known = false;
    for (const char* a : allowed) known = known || key == a;
    if (!known) {
      errs.add(std::string(where) + ": unknown member '" + key + "'");
    }
  }
}

const JsonValue* want(const JsonValue& obj, const char* key,
                      JsonValue::Kind kind, const char* where,
                      Violations& errs) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) return nullptr;
  if (v->kind() != kind) {
    errs.add(std::string(where) + ": member '" + key +
             "' has the wrong type");
    return nullptr;
  }
  return v;
}

/// Overwrite `out` when the member exists and is a number (error when it
/// exists with another type).
void opt_number(const JsonValue& obj, const char* key, const char* where,
                Violations& errs, double& out) {
  if (const JsonValue* v = want(obj, key, JsonValue::Kind::kNumber, where,
                                errs)) {
    out = v->as_number();
  }
}

void opt_int(const JsonValue& obj, const char* key, const char* where,
             Violations& errs, int& out) {
  double d = out;
  opt_number(obj, key, where, errs, d);
  out = static_cast<int>(d);
}

void opt_u64(const JsonValue& obj, const char* key, const char* where,
             Violations& errs, std::uint64_t& out) {
  double d = static_cast<double>(out);
  opt_number(obj, key, where, errs, d);
  out = static_cast<std::uint64_t>(d);
}

void opt_bool(const JsonValue& obj, const char* key, const char* where,
              Violations& errs, bool& out) {
  if (const JsonValue* v = want(obj, key, JsonValue::Kind::kBool, where,
                                errs)) {
    out = v->as_bool();
  }
}

std::optional<FlowStage> parse_stage_name(const std::string& name) {
  for (int i = 0; i < kNumFlowStages; ++i) {
    const FlowStage s = static_cast<FlowStage>(i);
    if (name == flow_stage_name(s)) return s;
  }
  return std::nullopt;
}

CircuitSource parse_circuit(const JsonValue& v, const char* where,
                            Violations& errs) {
  CircuitSource src;
  if (!v.is_object()) {
    errs.add(std::string(where) + ": 'circuit' must be an object");
    return src;
  }
  check_members(v, where, {"builtin", "hdl", "file"}, errs);
  int n_sources = 0;
  if (const JsonValue* b = want(v, "builtin", JsonValue::Kind::kString,
                                where, errs)) {
    ++n_sources;
    src.kind = CircuitSourceKind::kBuiltinDesDpa;
    if (b->as_string() != "des-dpa") {
      errs.add(std::string(where) + ": unknown builtin circuit '" +
               b->as_string() + "' (only \"des-dpa\")");
    }
  }
  if (const JsonValue* h = want(v, "hdl", JsonValue::Kind::kString, where,
                                errs)) {
    ++n_sources;
    src.kind = CircuitSourceKind::kHdlText;
    src.text = h->as_string();
  }
  if (const JsonValue* f = want(v, "file", JsonValue::Kind::kString, where,
                                errs)) {
    ++n_sources;
    src.kind = CircuitSourceKind::kHdlFile;
    src.text = f->as_string();
  }
  if (n_sources != 1) {
    errs.add(std::string(where) +
             ": 'circuit' needs exactly one of builtin/hdl/file");
  }
  return src;
}

void parse_options(const JsonValue& v, const std::string& where,
                   Violations& errs, FlowOptions& o) {
  if (!v.is_object()) {
    errs.add(where + ": 'options' must be an object");
    return;
  }
  check_members(v, where.c_str(),
                {"route_mode", "shielded_pairs", "stop_after", "place",
                 "route", "extract"},
                errs);
  if (const JsonValue* rm = want(v, "route_mode", JsonValue::Kind::kString,
                                 where.c_str(), errs)) {
    if (rm->as_string() == "detailed") {
      o.route_mode = RouteMode::kDetailed;
    } else if (rm->as_string() == "quick") {
      o.route_mode = RouteMode::kQuickLShaped;
    } else {
      errs.add(where + ": route_mode must be \"detailed\" or \"quick\", got '" +
               rm->as_string() + "'");
    }
  }
  opt_bool(v, "shielded_pairs", where.c_str(), errs, o.shielded_pairs);
  if (const JsonValue* sa = want(v, "stop_after", JsonValue::Kind::kString,
                                 where.c_str(), errs)) {
    const auto stage = parse_stage_name(sa->as_string());
    if (stage) {
      o.stop_after = *stage;
    } else {
      errs.add(where + ": unknown stop_after stage '" + sa->as_string() +
               "'");
    }
  }
  if (const JsonValue* p = want(v, "place", JsonValue::Kind::kObject,
                                where.c_str(), errs)) {
    const std::string w = where + ".place";
    check_members(*p, w.c_str(),
                  {"aspect_ratio", "fill_factor", "sa_moves_per_instance",
                   "sa_batch", "margin_tracks", "seed"},
                  errs);
    opt_number(*p, "aspect_ratio", w.c_str(), errs, o.place.aspect_ratio);
    opt_number(*p, "fill_factor", w.c_str(), errs, o.place.fill_factor);
    opt_int(*p, "sa_moves_per_instance", w.c_str(), errs,
            o.place.sa_moves_per_instance);
    opt_int(*p, "sa_batch", w.c_str(), errs, o.place.sa_batch);
    opt_int(*p, "margin_tracks", w.c_str(), errs, o.place.margin_tracks);
    opt_u64(*p, "seed", w.c_str(), errs, o.place.seed);
  }
  if (const JsonValue* r = want(v, "route", JsonValue::Kind::kObject,
                                where.c_str(), errs)) {
    const std::string w = where + ".route";
    check_members(*r, w.c_str(), {"via_cost", "max_iterations"}, errs);
    opt_int(*r, "via_cost", w.c_str(), errs, o.route.via_cost);
    opt_int(*r, "max_iterations", w.c_str(), errs, o.route.max_iterations);
  }
  if (const JsonValue* e = want(v, "extract", JsonValue::Kind::kObject,
                                where.c_str(), errs)) {
    const std::string w = where + ".extract";
    check_members(*e, w.c_str(),
                  {"coupling_max_sep_um", "variation_sigma", "seed"}, errs);
    opt_number(*e, "coupling_max_sep_um", w.c_str(), errs,
               o.extract.coupling_max_sep_um);
    opt_number(*e, "variation_sigma", w.c_str(), errs,
               o.extract.variation_sigma);
    opt_u64(*e, "seed", w.c_str(), errs, o.extract.seed);
  }
}

CampaignJob parse_job(const JsonValue& v, std::size_t index,
                      Violations& errs) {
  CampaignJob job;
  job.name = "job" + std::to_string(index);
  const std::string where = "jobs[" + std::to_string(index) + "]";
  if (!v.is_object()) {
    errs.add(where + ": job entry must be an object");
    return job;
  }
  check_members(v, where.c_str(),
                {"name", "circuit", "flow", "seed", "dpa", "options"}, errs);

  if (const JsonValue* n = want(v, "name", JsonValue::Kind::kString,
                                where.c_str(), errs)) {
    if (n->as_string().empty()) {
      errs.add(where + ": name must not be empty");
    } else {
      job.name = n->as_string();
    }
  }

  if (const JsonValue* c = v.find("circuit")) {
    job.circuit = parse_circuit(*c, where.c_str(), errs);
  } else {
    errs.add(where + ": missing required member 'circuit'");
  }

  if (const JsonValue* f = want(v, "flow", JsonValue::Kind::kString,
                                where.c_str(), errs)) {
    if (f->as_string() == "regular") {
      job.flow = FlowKind::kRegular;
    } else if (f->as_string() == "secure") {
      job.flow = FlowKind::kSecure;
    } else {
      errs.add(where + ": flow must be \"regular\" or \"secure\", got '" +
               f->as_string() + "'");
    }
  } else if (v.find("flow") == nullptr) {
    errs.add(where + ": missing required member 'flow'");
  }

  opt_u64(v, "seed", where.c_str(), errs, job.seed);

  if (const JsonValue* d = want(v, "dpa", JsonValue::Kind::kObject,
                                where.c_str(), errs)) {
    job.has_dpa = true;
    const std::string w = where + ".dpa";
    check_members(*d, w.c_str(),
                  {"n_measurements", "noise_ma", "select_bit", "sbox", "key"},
                  errs);
    opt_int(*d, "n_measurements", w.c_str(), errs, job.dpa.n_measurements);
    opt_number(*d, "noise_ma", w.c_str(), errs, job.dpa.noise_ma);
    opt_int(*d, "select_bit", w.c_str(), errs, job.dpa.select_bit);
    opt_int(*d, "sbox", w.c_str(), errs, job.dpa.sbox);
    std::uint64_t key = job.dpa.key;
    opt_u64(*d, "key", w.c_str(), errs, key);
    job.dpa.key = static_cast<std::uint32_t>(key);
  }

  if (const JsonValue* o = v.find("options")) {
    parse_options(*o, where + ".options", errs, job.options);
  }
  return job;
}

void validate_into(const CampaignSpec& spec, Violations& errs) {
  if (spec.jobs.empty()) errs.add("campaign has no jobs");
  if (spec.threads < 0) errs.add("threads must be >= 0 (0 = auto)");

  std::set<std::string> seen;
  for (std::size_t i = 0; i < spec.jobs.size(); ++i) {
    const CampaignJob& job = spec.jobs[i];
    const std::string where = "job '" + job.name + "'";
    if (!seen.insert(job.name).second) {
      errs.add(where + ": duplicate job name");
    }
    if (job.has_dpa) {
      if (job.dpa.n_measurements < 1) {
        errs.add(where + ": dpa.n_measurements must be >= 1");
      }
      if (job.dpa.noise_ma < 0.0) {
        errs.add(where + ": dpa.noise_ma must be >= 0");
      }
      if (job.options.stop_after &&
          *job.options.stop_after != FlowStage::kExtraction) {
        errs.add(where + ": dpa needs the extracted capacitance table — "
                 "remove stop_after or run through extraction");
      }
    }
    if (job.flow == FlowKind::kRegular && job.options.stop_after &&
        (*job.options.stop_after == FlowStage::kSubstitution ||
         *job.options.stop_after == FlowStage::kDecomposition)) {
      errs.add(where + ": stop_after names a secure-only stage but the "
               "flow is regular");
    }
    try {
      job.options.validate();
    } catch (const Error& e) {
      errs.add(where + ": " + e.what());
    }
  }
}

}  // namespace

void CampaignSpec::validate() const {
  Violations errs;
  validate_into(*this, errs);
  errs.throw_if_any();
}

CampaignSpec parse_campaign_spec(const std::string& json_text) {
  const JsonValue doc = json_parse(json_text);  // ParseError when malformed

  Violations errs;
  CampaignSpec spec;
  if (!doc.is_object()) {
    errs.add("document is not an object");
    errs.throw_if_any();
  }
  check_members(doc, "document",
                {"schema", "name", "cache_dir", "threads", "jobs"}, errs);

  if (const JsonValue* s = want(doc, "schema", JsonValue::Kind::kString,
                                "document", errs)) {
    if (s->as_string() != kCampaignSpecSchema) {
      errs.add("unknown schema '" + s->as_string() + "' (want " +
               kCampaignSpecSchema + ")");
    }
  } else if (doc.find("schema") == nullptr) {
    errs.add("missing required member 'schema'");
  }

  if (const JsonValue* n = want(doc, "name", JsonValue::Kind::kString,
                                "document", errs)) {
    spec.name = n->as_string();
  }
  if (const JsonValue* c = want(doc, "cache_dir", JsonValue::Kind::kString,
                                "document", errs)) {
    spec.cache_dir = c->as_string();
  }
  opt_int(doc, "threads", "document", errs, spec.threads);

  if (const JsonValue* jobs = want(doc, "jobs", JsonValue::Kind::kArray,
                                   "document", errs)) {
    for (std::size_t i = 0; i < jobs->items().size(); ++i) {
      spec.jobs.push_back(parse_job(jobs->items()[i], i, errs));
    }
  } else if (doc.find("jobs") == nullptr) {
    errs.add("missing required member 'jobs'");
  }

  validate_into(spec, errs);
  errs.throw_if_any();
  return spec;
}

}  // namespace secflow
