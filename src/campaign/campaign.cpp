#include "campaign/campaign.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "base/error.h"
#include "ckpt/hash.h"
#include "ckpt/serialize.h"
#include "crypto/des.h"
#include "lef/lef_io.h"
#include "liberty/builtin_lib.h"
#include "netlist/verilog_writer.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pnr/def.h"
#include "sca/dpa_experiment.h"
#include "synth/hdl.h"

namespace secflow {
namespace {

double wall_ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

void add_digest(std::vector<std::pair<std::string, std::string>>& out,
                const char* name, const std::string& text) {
  out.emplace_back(name, hash_hex(fnv1a(text)));
}

bool reached(const FlowArtifacts& r, FlowStage s) {
  return static_cast<int>(r.completed_through) >= static_cast<int>(s);
}

AigCircuit elaborate(const CircuitSource& src) {
  switch (src.kind) {
    case CircuitSourceKind::kBuiltinDesDpa: return make_des_dpa_circuit();
    case CircuitSourceKind::kHdlText: return parse_hdl(src.text);
    case CircuitSourceKind::kHdlFile: return parse_hdl_file(src.text);
  }
  throw Error("campaign: unknown circuit source kind");
}

/// Everything the scheduler precomputes about one job before launch.
struct PreparedJob {
  const CampaignJob* job = nullptr;
  FlowOptions options;                 ///< spec overrides + engine cache_dir
  std::optional<AigCircuit> circuit;   ///< nullopt when elaboration failed
  std::string prepare_error;
  std::array<std::uint64_t, kNumFlowStages> keys{};  ///< 0 = stage not run
};

PreparedJob prepare_job(const CampaignJob& job, const CampaignSpec& spec,
                        const CellLibrary& library) {
  PreparedJob p;
  p.job = &job;
  p.options = job.options;
  p.options.cache_dir = spec.cache_dir;
  try {
    p.circuit = elaborate(job.circuit);
    p.keys = compute_stage_keys(job.flow, *p.circuit, library, p.options);
    // Stages past stop_after never run, so they neither produce nor
    // consume checkpoints — drop them from the dependency analysis.
    if (p.options.stop_after) {
      for (int i = static_cast<int>(*p.options.stop_after) + 1;
           i < kNumFlowStages; ++i) {
        p.keys[static_cast<std::size_t>(i)] = 0;
      }
    }
  } catch (const std::exception& e) {
    p.prepare_error = e.what();
  }
  return p;
}

void run_dpa(const CampaignJob& job, const Netlist& nl, const CapTable& caps,
             FlowReport& report) {
  DesDpaSetup setup;
  setup.key = job.dpa.key;
  setup.select_bit = job.dpa.select_bit;
  setup.sbox = job.dpa.sbox;
  setup.n_measurements = job.dpa.n_measurements;
  setup.noise_ma = job.dpa.noise_ma;
  setup.seed = job.seed;
  const DesDpaCampaign dpa = run_des_dpa_campaign(
      nl, caps, setup, /*differential=*/job.flow == FlowKind::kSecure);
  attach_dpa(report, dpa.dpa.analyze(setup.key), dpa.cycle_energies_pj);
}

/// One job, start to finish, with every failure folded into the outcome.
JobOutcome execute_job(const PreparedJob& p,
                       std::shared_ptr<const CellLibrary> library) {
  const CampaignJob& job = *p.job;
  JobOutcome out;
  out.name = job.name;
  Span span("campaign.job", "campaign");
  span.arg("job", job.name);
  const auto t0 = std::chrono::steady_clock::now();
  try {
    SECFLOW_CHECK(p.prepare_error.empty(), p.prepare_error);
    if (job.flow == FlowKind::kRegular) {
      const RegularFlowResult r =
          run_regular_flow(*p.circuit, library, p.options);
      out.report = build_flow_report(r);
      out.artifacts = artifact_digests(r);
      if (job.has_dpa) run_dpa(job, r.rtl, r.caps, out.report);
    } else {
      const SecureFlowResult r =
          run_secure_flow(*p.circuit, library, p.options);
      out.report = build_flow_report(r);
      out.artifacts = artifact_digests(r);
      if (job.has_dpa) run_dpa(job, r.diff, r.caps, out.report);
    }
    out.ok = true;
  } catch (const std::exception& e) {
    out.ok = false;
    out.error = e.what();
    out.report = FlowReport{};
    out.artifacts.clear();
  }
  out.wall_ms = wall_ms_since(t0);
  span.arg("status", out.ok ? "ok" : "error");
  SECFLOW_LOG_INFO("campaign", "job done", LogField("job", job.name),
                   LogField("status", out.ok ? "ok" : "error"),
                   LogField("ms", out.wall_ms));
  return out;
}

}  // namespace

std::vector<std::pair<std::string, std::string>> artifact_digests(
    const RegularFlowResult& r) {
  std::vector<std::pair<std::string, std::string>> v;
  add_digest(v, "rtl.v", write_verilog(r.rtl));
  if (reached(r, FlowStage::kPlacement)) {
    add_digest(v, "lib.lef", write_lef(r.lef));
    add_digest(v, "design.def", write_def(r.def));
  }
  if (reached(r, FlowStage::kRouting)) {
    add_digest(v, "route_stats", write_route_stats(r.route_stats));
  }
  if (reached(r, FlowStage::kExtraction)) {
    add_digest(v, "extraction", write_extraction(r.extraction));
    add_digest(v, "caps", write_cap_table(r.caps));
    add_digest(v, "timing", write_timing_report(r.timing));
  }
  return v;
}

std::vector<std::pair<std::string, std::string>> artifact_digests(
    const SecureFlowResult& r) {
  std::vector<std::pair<std::string, std::string>> v;
  add_digest(v, "rtl.v", write_verilog(r.rtl));
  if (reached(r, FlowStage::kSubstitution)) {
    add_digest(v, "fat.v", write_verilog(r.fat));
    add_digest(v, "diff.v", write_verilog(r.diff));
  }
  if (reached(r, FlowStage::kPlacement)) {
    add_digest(v, "fat_lib.lef", write_lef(r.fat_lef));
    add_digest(v, "fat.def", write_def(r.fat_def));
  }
  if (reached(r, FlowStage::kRouting)) {
    add_digest(v, "route_stats", write_route_stats(r.route_stats));
  }
  if (reached(r, FlowStage::kDecomposition)) {
    add_digest(v, "diff_lib.lef", write_lef(r.lef));
    add_digest(v, "diff.def", write_def(r.def));
  }
  if (reached(r, FlowStage::kExtraction)) {
    add_digest(v, "extraction", write_extraction(r.extraction));
    add_digest(v, "caps", write_cap_table(r.caps));
    add_digest(v, "timing", write_timing_report(r.timing));
  }
  return v;
}

CampaignResult run_campaign(const CampaignSpec& spec,
                            std::shared_ptr<const CellLibrary> library) {
  spec.validate();
  if (!library) library = builtin_stdcell018();
  const std::size_t n = spec.jobs.size();
  const int max_concurrent = std::min(
      static_cast<int>(n), Parallelism{spec.threads}.resolved_threads());

  Span campaign_span("campaign.run", "campaign");
  campaign_span.arg("campaign", spec.name);
  SECFLOW_LOG_INFO("campaign", "campaign start",
                   LogField("campaign", spec.name),
                   LogField("jobs", static_cast<std::int64_t>(n)),
                   LogField("concurrency", max_concurrent));
  const auto t0 = std::chrono::steady_clock::now();

  // Phase 1: elaborate circuits and compute every job's key chain.
  std::vector<PreparedJob> prepared;
  prepared.reserve(n);
  for (const CampaignJob& job : spec.jobs) {
    prepared.push_back(prepare_job(job, spec, *library));
  }

  // Phase 2: dependency edges.  The first job holding a stage key is its
  // producer; later holders wait for it, then hit the checkpoint store.
  // Without a cache directory there is nothing to share, so every job is
  // independent.  Producer indices always precede dependents (spec
  // order), so the graph is acyclic by construction.
  std::vector<std::vector<std::size_t>> dependents(n);
  std::vector<int> blockers(n, 0);
  if (!spec.cache_dir.empty()) {
    std::unordered_map<std::uint64_t, std::size_t> producer_of;
    for (std::size_t i = 0; i < n; ++i) {
      std::vector<std::size_t> waits;
      for (const std::uint64_t key : prepared[i].keys) {
        if (key == 0) continue;
        const auto [it, inserted] = producer_of.try_emplace(key, i);
        if (!inserted && it->second != i) waits.push_back(it->second);
      }
      std::sort(waits.begin(), waits.end());
      waits.erase(std::unique(waits.begin(), waits.end()), waits.end());
      for (const std::size_t producer : waits) {
        dependents[producer].push_back(i);
        ++blockers[i];
      }
    }
  }

  // Phase 3: execute.  Ready jobs are dispatched to the pool up to the
  // concurrency cap; each completion unblocks its dependents.  Workers
  // never wait on other jobs (the DAG is tracked with counters), so the
  // pool stays deadlock-free.
  CampaignResult result;
  result.campaign = spec.name;
  result.jobs.resize(n);

  struct Sched {
    std::mutex mu;
    std::condition_variable done_cv;
    std::vector<std::size_t> ready;
    int active = 0;
    std::size_t completed = 0;
  } sched;

  for (std::size_t i = 0; i < n; ++i) {
    if (blockers[i] == 0) sched.ready.push_back(i);
  }

  ThreadPool& pool = ThreadPool::global();
  pool.ensure_workers(max_concurrent);

  // Launch as many ready jobs as the cap allows.  Caller holds sched.mu;
  // pool.submit takes only the pool's own lock, so the order is acyclic.
  std::function<void()> launch_ready = [&] {
    while (sched.active < max_concurrent && !sched.ready.empty()) {
      const std::size_t i = sched.ready.front();
      sched.ready.erase(sched.ready.begin());
      ++sched.active;
      pool.submit([&, i] {
        JobOutcome out = execute_job(prepared[i], library);
        std::lock_guard<std::mutex> inner(sched.mu);
        result.jobs[i] = std::move(out);
        --sched.active;
        ++sched.completed;
        for (const std::size_t dep : dependents[i]) {
          if (--blockers[dep] == 0) sched.ready.push_back(dep);
        }
        launch_ready();
        sched.done_cv.notify_all();
      });
    }
  };

  {
    std::unique_lock<std::mutex> lock(sched.mu);
    launch_ready();
    sched.done_cv.wait(lock, [&] { return sched.completed == n; });
  }

  // Record who each job waited on (stable, spec-ordered names).
  for (std::size_t producer = 0; producer < n; ++producer) {
    for (const std::size_t dep : dependents[producer]) {
      result.jobs[dep].waited_on.push_back(spec.jobs[producer].name);
    }
  }

  for (const JobOutcome& out : result.jobs) {
    if (out.ok) {
      ++result.n_ok;
    } else {
      ++result.n_failed;
    }
  }
  result.wall_ms = wall_ms_since(t0);
  Metrics::global().add("campaign.jobs.ok",
                        static_cast<std::uint64_t>(result.n_ok));
  Metrics::global().add("campaign.jobs.failed",
                        static_cast<std::uint64_t>(result.n_failed));
  SECFLOW_LOG_INFO("campaign", "campaign done",
                   LogField("campaign", spec.name),
                   LogField("ok", result.n_ok),
                   LogField("failed", result.n_failed),
                   LogField("ms", result.wall_ms));
  return result;
}

}  // namespace secflow
