// Campaign engine: DAG-scheduled multi-flow batch runs.
//
// Executes a CampaignSpec's job set on the shared ThreadPool.  Before
// anything runs, every job's per-stage content-address chain is computed
// (flow/compute_stage_keys — the exact keys the flows themselves cache
// under), and jobs sharing a key are topologically ordered: the first
// job holding a key is its producer, every later holder waits for it and
// then loads the shared stages from the checkpoint store instead of
// recomputing them.  Jobs with disjoint chains run concurrently.  One
// failed job records an error outcome; its siblings (and even its
// dependents, which simply recompute what the producer never saved)
// complete normally.
//
// Every job's flow executes on one pool worker, where nested
// parallel_for calls run inline — so a campaign run is bit-identical to
// running each job standalone, at any SECFLOW_THREADS.  JobOutcome
// carries content digests of every produced artifact to make that
// property checkable (and cheap to diff across runs).
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "campaign/spec.h"
#include "flow/flow.h"
#include "obs/report.h"

namespace secflow {

/// What one campaign job produced.
struct JobOutcome {
  std::string name;
  bool ok = false;
  std::string error;    ///< diagnostic when !ok ("" otherwise)
  double wall_ms = 0.0;
  /// Producer jobs this one was scheduled after (checkpoint-key sharing).
  std::vector<std::string> waited_on;
  /// The job's flow report (with DPA section when the spec asked for an
  /// attack).  Meaningful only when ok.
  FlowReport report;
  /// name -> 16-hex FNV digest of each serialized artifact the flow
  /// produced (rtl.v, design.def, caps, ...), for byte-identity checks.
  std::vector<std::pair<std::string, std::string>> artifacts;

  bool operator==(const JobOutcome&) const = default;
};

struct CampaignResult {
  std::string campaign;
  double wall_ms = 0.0;
  int n_ok = 0;
  int n_failed = 0;
  std::vector<JobOutcome> jobs;  ///< spec order, one entry per spec job

  bool operator==(const CampaignResult&) const = default;
};

/// Content digests of every artifact a flow produced (bounded by
/// FlowArtifacts::completed_through).  The campaign engine records these
/// per job; tests compare them against standalone runs.
std::vector<std::pair<std::string, std::string>> artifact_digests(
    const RegularFlowResult& r);
std::vector<std::pair<std::string, std::string>> artifact_digests(
    const SecureFlowResult& r);

/// Run the whole campaign.  `library` defaults to builtin_stdcell018().
/// Throws only on spec-level errors (validate()); per-job failures are
/// isolated into their JobOutcome.
CampaignResult run_campaign(const CampaignSpec& spec,
                            std::shared_ptr<const CellLibrary> library =
                                nullptr);

}  // namespace secflow
