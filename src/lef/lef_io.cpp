#include "lef/lef_io.h"

#include <fstream>
#include <sstream>

#include "base/error.h"
#include "base/strings.h"

namespace secflow {
namespace {

/// Whitespace token stream with one-token lookahead.
class TokenStream {
 public:
  explicit TokenStream(const std::string& text) {
    std::istringstream is(text);
    std::string tok;
    while (is >> tok) tokens_.push_back(tok);
  }

  bool done() const { return pos_ >= tokens_.size(); }
  const std::string& peek() const {
    static const std::string kEnd = "<eof>";
    return done() ? kEnd : tokens_[pos_];
  }
  std::string next() {
    SECFLOW_CHECK(!done(), "unexpected end of LEF");
    return tokens_[pos_++];
  }
  void expect(const std::string& kw) {
    const std::string t = next();
    if (t != kw) {
      throw ParseError("lef token " + std::to_string(pos_),
                       "expected '" + kw + "', got '" + t + "'");
    }
  }
  double number() {
    const std::string t = next();
    try {
      return std::stod(t);
    } catch (const std::exception&) {
      throw ParseError("lef token " + std::to_string(pos_),
                       "expected number, got '" + t + "'");
    }
  }

 private:
  std::vector<std::string> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string write_lef(const LefLibrary& lib) {
  std::ostringstream os;
  os << "VERSION 5.6 ;\n";
  for (const LefLayer& l : lib.layers()) {
    os << "LAYER " << l.name << "\n";
    os << "  DIRECTION "
       << (l.dir == LayerDir::kHorizontal ? "HORIZONTAL" : "VERTICAL")
       << " ;\n";
    os << "  PITCH " << l.pitch_um << " ;\n";
    os << "  WIDTH " << l.width_um << " ;\n";
    os << "END " << l.name << "\n";
  }
  for (const LefMacro& m : lib.macros()) {
    os << "MACRO " << m.name << "\n";
    os << "  SIZE " << dbu_to_um(m.width_dbu) << " BY "
       << dbu_to_um(m.height_dbu) << " ;\n";
    for (const LefPin& p : m.pins) {
      os << "  PIN " << p.name << " DIRECTION "
         << (p.dir == PinDir::kInput ? "INPUT" : "OUTPUT") << " ORIGIN "
         << dbu_to_um(p.offset.x) << ' ' << dbu_to_um(p.offset.y) << " ;\n";
    }
    os << "END " << m.name << "\n";
  }
  os << "END LIBRARY\n";
  return os.str();
}

void write_lef_file(const LefLibrary& lib, const std::string& path) {
  std::ofstream f(path);
  SECFLOW_CHECK(f.good(), "cannot open for write: " + path);
  f << write_lef(lib);
  SECFLOW_CHECK(f.good(), "write failed: " + path);
}

LefLibrary parse_lef(const std::string& text, const std::string& name) {
  TokenStream ts(text);
  LefLibrary lib(name);
  while (!ts.done()) {
    const std::string kw = ts.next();
    if (kw == "VERSION") {
      ts.number();
      ts.expect(";");
    } else if (kw == "LAYER") {
      LefLayer layer;
      layer.name = ts.next();
      while (ts.peek() != "END") {
        const std::string attr = ts.next();
        if (attr == "DIRECTION") {
          const std::string d = ts.next();
          layer.dir = (d == "VERTICAL") ? LayerDir::kVertical
                                        : LayerDir::kHorizontal;
          ts.expect(";");
        } else if (attr == "PITCH") {
          layer.pitch_um = ts.number();
          ts.expect(";");
        } else if (attr == "WIDTH") {
          layer.width_um = ts.number();
          ts.expect(";");
        } else {
          throw ParseError("lef", "unknown layer attribute: " + attr);
        }
      }
      ts.expect("END");
      ts.expect(layer.name);
      lib.add_layer(std::move(layer));
    } else if (kw == "MACRO") {
      LefMacro m;
      m.name = ts.next();
      while (ts.peek() != "END") {
        const std::string attr = ts.next();
        if (attr == "SIZE") {
          m.width_dbu = um_to_dbu(ts.number());
          ts.expect("BY");
          m.height_dbu = um_to_dbu(ts.number());
          ts.expect(";");
        } else if (attr == "PIN") {
          LefPin p;
          p.name = ts.next();
          ts.expect("DIRECTION");
          const std::string d = ts.next();
          p.dir = (d == "OUTPUT") ? PinDir::kOutput : PinDir::kInput;
          ts.expect("ORIGIN");
          p.offset.x = um_to_dbu(ts.number());
          p.offset.y = um_to_dbu(ts.number());
          ts.expect(";");
          m.pins.push_back(std::move(p));
        } else {
          throw ParseError("lef", "unknown macro attribute: " + attr);
        }
      }
      ts.expect("END");
      ts.expect(m.name);
      lib.add_macro(std::move(m));
    } else if (kw == "END") {
      ts.expect("LIBRARY");
      break;
    } else {
      throw ParseError("lef", "unknown keyword: " + kw);
    }
  }
  return lib;
}

LefLibrary parse_lef_file(const std::string& path) {
  std::ifstream f(path);
  SECFLOW_CHECK(f.good(), "cannot open: " + path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return parse_lef(ss.str(), path);
}

}  // namespace secflow
