// Physical library (LEF-lite): routing layers and cell macros.
//
// Three physical views exist in the secure flow (paper Fig 1):
//  * the single-ended library for the regular flow;
//  * `fat_lib.lef`: WDDL compound macros and a FAT wire definition whose
//    width/pitch are doubled, so the router reserves two adjacent tracks
//    for every fat wire;
//  * `diff_lib.lef`: the same macros with the normal wire definition, used
//    during stream-out after interconnect decomposition.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "base/geometry.h"
#include "base/units.h"
#include "netlist/cell_library.h"

namespace secflow {

enum class LayerDir { kHorizontal, kVertical };

struct LefLayer {
  std::string name;
  LayerDir dir = LayerDir::kHorizontal;
  double pitch_um = 0.0;
  double width_um = 0.0;
};

struct LefPin {
  std::string name;
  PinDir dir = PinDir::kInput;
  Point offset;  ///< pin location relative to macro origin [DBU]
};

struct LefMacro {
  std::string name;
  std::int64_t width_dbu = 0;
  std::int64_t height_dbu = 0;
  std::vector<LefPin> pins;

  const LefPin* find_pin(const std::string& pin_name) const;
};

class LefLibrary {
 public:
  explicit LefLibrary(std::string name = "lef") : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  void add_layer(LefLayer layer);
  void add_macro(LefMacro macro);

  const std::vector<LefLayer>& layers() const { return layers_; }
  const LefMacro& macro(const std::string& name) const;
  bool has_macro(const std::string& name) const;
  std::size_t n_macros() const { return macros_.size(); }
  const std::vector<LefMacro>& macros() const { return macros_; }

  /// Routing track pitch of layer 0 in DBU (uniform across layers here).
  std::int64_t track_pitch_dbu() const;
  /// Drawn wire width in DBU.
  std::int64_t wire_width_dbu() const;

 private:
  std::string name_;
  std::vector<LefLayer> layers_;
  std::vector<LefMacro> macros_;
  std::unordered_map<std::string, std::size_t> macro_by_name_;
};

/// Options controlling physical library generation.
struct LefGenOptions {
  Process018 process;
  int n_routing_layers = 5;
  /// Multiply wire width and pitch (2.0 generates the fat library).
  double wire_scale = 1.0;
};

/// Generate a physical library matching `cells`: one macro per cell with
/// deterministically placed pins (snapped to the routing grid), plus
/// routing layer definitions (M1 horizontal, M2 vertical, M3 horizontal).
LefLibrary generate_lef(const CellLibrary& cells, const LefGenOptions& opts);

}  // namespace secflow
