#include "lef/lef.h"

#include "base/error.h"

namespace secflow {

const LefPin* LefMacro::find_pin(const std::string& pin_name) const {
  for (const LefPin& p : pins) {
    if (p.name == pin_name) return &p;
  }
  return nullptr;
}

void LefLibrary::add_layer(LefLayer layer) {
  layers_.push_back(std::move(layer));
}

void LefLibrary::add_macro(LefMacro macro) {
  SECFLOW_CHECK(!macro_by_name_.contains(macro.name),
                "duplicate macro: " + macro.name);
  macro_by_name_.emplace(macro.name, macros_.size());
  macros_.push_back(std::move(macro));
}

const LefMacro& LefLibrary::macro(const std::string& name) const {
  const auto it = macro_by_name_.find(name);
  SECFLOW_CHECK(it != macro_by_name_.end(), "unknown macro: " + name);
  return macros_[it->second];
}

bool LefLibrary::has_macro(const std::string& name) const {
  return macro_by_name_.contains(name);
}

std::int64_t LefLibrary::track_pitch_dbu() const {
  SECFLOW_CHECK(!layers_.empty(), "no layers in LEF library");
  return um_to_dbu(layers_.front().pitch_um);
}

std::int64_t LefLibrary::wire_width_dbu() const {
  SECFLOW_CHECK(!layers_.empty(), "no layers in LEF library");
  return um_to_dbu(layers_.front().width_um);
}

LefLibrary generate_lef(const CellLibrary& cells, const LefGenOptions& opts) {
  LefLibrary lef(cells.name() + (opts.wire_scale > 1.0 ? "_fat" : "_lef"));

  const double pitch = opts.process.wire_pitch_um * opts.wire_scale;
  const double width = opts.process.wire_width_um * opts.wire_scale;
  for (int i = 0; i < opts.n_routing_layers; ++i) {
    // M1/M3 horizontal, M2 vertical (standard HVH assignment).
    lef.add_layer(LefLayer{"M" + std::to_string(i + 1),
                           (i % 2 == 0) ? LayerDir::kHorizontal
                                        : LayerDir::kVertical,
                           pitch, width});
  }

  const std::int64_t pitch_dbu = um_to_dbu(pitch);
  for (CellTypeId id : cells.all()) {
    const CellType& c = cells.cell(id);
    LefMacro m;
    m.name = c.name;
    m.width_dbu = um_to_dbu(c.width_um);
    m.height_dbu = um_to_dbu(c.height_um);
    // Pins snapped to the routing grid, spread across the cell: inputs on
    // the lower half, output on the upper half, left to right.
    int in_idx = 0;
    const int n_in = c.n_inputs();
    for (std::size_t pi = 0; pi < c.pins.size(); ++pi) {
      const PinDef& p = c.pins[pi];
      LefPin lp;
      lp.name = p.name;
      lp.dir = p.dir;
      std::int64_t x;
      std::int64_t y;
      if (p.dir == PinDir::kInput) {
        const std::int64_t slot =
            n_in > 0 ? (m.width_dbu * (2 * in_idx + 1)) / (2 * n_in)
                     : m.width_dbu / 2;
        x = slot;
        y = m.height_dbu / 4;
        ++in_idx;
      } else {
        x = m.width_dbu / 2;
        y = (3 * m.height_dbu) / 4;
      }
      // Snap to routing grid so the router can reach the pin exactly.
      lp.offset = {(x / pitch_dbu) * pitch_dbu, (y / pitch_dbu) * pitch_dbu};
      m.pins.push_back(lp);
    }
    lef.add_macro(std::move(m));
  }
  return lef;
}

}  // namespace secflow
