// LEF-lite text reader/writer.
//
// Format (whitespace-separated keywords, ';'-terminated statements):
//
//   VERSION 5.6 ;
//   LAYER M1
//     DIRECTION HORIZONTAL ;
//     PITCH 0.56 ;
//     WIDTH 0.28 ;
//   END M1
//   MACRO INV
//     SIZE 1.32 BY 5.04 ;
//     PIN A DIRECTION INPUT ORIGIN 0.28 1.12 ;
//     PIN Y DIRECTION OUTPUT ORIGIN 0.56 3.92 ;
//   END INV
//   END LIBRARY
#pragma once

#include <string>

#include "lef/lef.h"

namespace secflow {

std::string write_lef(const LefLibrary& lib);
void write_lef_file(const LefLibrary& lib, const std::string& path);

LefLibrary parse_lef(const std::string& text, const std::string& name = "lef");
LefLibrary parse_lef_file(const std::string& path);

}  // namespace secflow
