// Quickstart: take a small design from HDL to a DPA-resistant layout with
// the secure digital design flow, writing every flow artifact of Fig 1 to
// ./quickstart_out/ (rtl.v, fat.v, diff.v, lib LEFs, fat.def, diff.def).
//
//   $ ./quickstart
#include <cstdio>
#include <filesystem>

#include "secflow.h"

using namespace secflow;

int main() {
  // 1. Logic design: the creative part, untouched by the secure flow.
  const char* source = R"(
    module greeter (input clk, input [3:0] data, input [3:0] key,
                    output [3:0] out);
      wire [3:0] mixed;
      assign mixed = data ^ key;
      reg [3:0] state;
      always @(posedge clk) state <= mixed ^ (state & data);
      assign out = state;
    endmodule
  )";
  const AigCircuit circuit = parse_hdl(source);
  std::printf("elaborated '%s': %u AIG nodes, %zu inputs, %zu regs\n",
              circuit.name.c_str(), circuit.aig.n_ands(),
              circuit.inputs.size(), circuit.regs.size());

  // 2. The secure flow: synthesis -> cell substitution -> fat P&R ->
  //    interconnect decomposition -> stream out, with built-in checks.
  const auto lib = builtin_stdcell018();
  const SecureFlowResult secure = run_secure_flow(circuit, lib);
  std::printf("\n%s\n", flow_report(secure).c_str());

  // 3. Artifacts on disk, exactly the files of the paper's Fig 1.
  const std::filesystem::path out = "quickstart_out";
  std::filesystem::create_directories(out);
  write_verilog_file(secure.rtl, (out / "rtl.v").string());
  write_verilog_file(secure.fat, (out / "fat.v").string());
  write_verilog_file(secure.diff, (out / "diff.v").string());
  write_lef_file(secure.fat_lef, (out / "fat_lib.lef").string());
  write_lef_file(secure.lef, (out / "diff_lib.lef").string());
  write_def_file(secure.fat_def, (out / "fat.def").string());
  write_def_file(secure.def, (out / "diff.def").string());
  {
    std::FILE* f = std::fopen((out / "lib.lib").string().c_str(), "w");
    const std::string lib_text = write_liberty(*lib);
    std::fwrite(lib_text.data(), 1, lib_text.size(), f);
    std::fclose(f);
  }
  std::printf("flow artifacts written to %s/\n", out.string().c_str());

  // 4. For comparison: the regular flow on the same design.
  const RegularFlowResult regular = run_regular_flow(circuit, lib);
  std::printf("\n%s\n", flow_report(regular).c_str());
  std::printf("secure / regular die area: %.2fx\n",
              secure.die_area_um2() / regular.die_area_um2());
  return 0;
}
