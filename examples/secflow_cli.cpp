// Command-line driver for the secure digital design flow.
//
//   secflow_cli flow <design.v> [--regular] [--out DIR] [--quick-route]
//                    [--report FILE] [--trace FILE] [--log LEVEL]
//       run the secure (default) or regular flow on a mini-HDL design and
//       write every Fig 1 artifact into DIR (default: <module>_out/);
//       --report dumps the machine-readable JSON flow report, --trace a
//       Chrome trace-event file (open in chrome://tracing or Perfetto)
//   secflow_cli report <design.v>
//       synthesize only and print netlist statistics + timing
//   secflow_cli wddl-lib
//       print the generated WDDL compound-cell inventory
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include "base/error.h"
#include "flow/flow.h"
#include "lef/lef_io.h"
#include "liberty/builtin_lib.h"
#include "liberty/liberty_parser.h"
#include "netlist/netlist_ops.h"
#include "netlist/verilog_writer.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "sta/sta.h"
#include "synth/hdl.h"
#include "wddl/wddl_library.h"

using namespace secflow;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: secflow_cli flow <design.v> [--regular] [--out DIR] "
               "[--quick-route]\n"
               "                   [--report FILE] [--trace FILE] "
               "[--log LEVEL]\n"
               "       secflow_cli report <design.v>\n"
               "       secflow_cli wddl-lib\n");
  return 2;
}

int cmd_flow(int argc, char** argv) {
  if (argc < 1) return usage();
  const std::string input = argv[0];
  bool regular = false;
  bool quick = false;
  std::string out_dir;
  std::string report_path;
  std::string trace_path;
  FlowOptions opts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--regular") == 0) {
      regular = true;
    } else if (std::strcmp(argv[i], "--quick-route") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--report") == 0 && i + 1 < argc) {
      report_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--log") == 0 && i + 1 < argc) {
      const auto lvl = parse_log_level(argv[++i]);
      if (!lvl) {
        std::fprintf(stderr, "unknown log level: %s\n", argv[i]);
        return usage();
      }
      opts.log_level = *lvl;
    } else {
      return usage();
    }
  }
  const AigCircuit circuit = parse_hdl_file(input);
  if (out_dir.empty()) out_dir = circuit.name + "_out";
  const auto lib = builtin_stdcell018();
  if (quick) opts.route_mode = RouteMode::kQuickLShaped;

  // Observability is opt-in: collecting spans/metrics costs nothing to the
  // artifacts (bit-identical either way) but does cost memory and time.
  if (!trace_path.empty()) Tracer::global().set_enabled(true);
  if (!report_path.empty()) Metrics::global().set_enabled(true);

  std::filesystem::create_directories(out_dir);
  const std::filesystem::path out = out_dir;
  FlowReport rep;
  if (regular) {
    const RegularFlowResult r = run_regular_flow(circuit, lib, opts);
    std::printf("%s", flow_report(r).c_str());
    write_verilog_file(r.rtl, (out / "rtl.v").string());
    write_lef_file(r.lef, (out / "lib.lef").string());
    write_def_file(r.def, (out / "design.def").string());
    std::printf("%s", timing_report_text(r.timing).c_str());
    rep = build_flow_report(r);
  } else {
    const SecureFlowResult r = run_secure_flow(circuit, lib, opts);
    std::printf("%s", flow_report(r).c_str());
    write_verilog_file(r.rtl, (out / "rtl.v").string());
    write_verilog_file(r.fat, (out / "fat.v").string());
    write_verilog_file(r.diff, (out / "diff.v").string());
    write_lef_file(r.fat_lef, (out / "fat_lib.lef").string());
    write_lef_file(r.lef, (out / "diff_lib.lef").string());
    write_def_file(r.fat_def, (out / "fat.def").string());
    write_def_file(r.def, (out / "diff.def").string());
    std::printf("%s", timing_report_text(r.timing).c_str());
    rep = build_flow_report(r);
  }
  if (!report_path.empty()) {
    attach_metrics(rep, Metrics::global().snapshot());
    std::ofstream f(report_path);
    f << flow_report_json(rep);
    SECFLOW_CHECK(f.good(), "cannot write report to " + report_path);
    std::printf("flow report written to %s\n", report_path.c_str());
  }
  if (!trace_path.empty()) {
    Tracer::global().write_chrome_trace(trace_path);
    std::printf("trace written to %s (open in chrome://tracing)\n",
                trace_path.c_str());
  }
  std::printf("artifacts written to %s/\n", out_dir.c_str());
  return 0;
}

int cmd_report(int argc, char** argv) {
  if (argc < 1) return usage();
  const AigCircuit circuit = parse_hdl_file(argv[0]);
  const auto lib = builtin_stdcell018();
  const Netlist rtl = technology_map(circuit, lib);
  std::printf("module %s: %zu cells, %zu nets, %.1f um^2 cell area\n",
              rtl.name().c_str(), rtl.n_instances(), rtl.n_nets(),
              rtl.total_area_um2());
  for (const auto& [cell, count] : cell_histogram(rtl)) {
    std::printf("  %-8s x%d\n", cell.c_str(), count);
  }
  std::printf("%s", timing_report_text(analyze_timing(rtl, {})).c_str());
  return 0;
}

int cmd_wddl_lib() {
  const auto lib = builtin_stdcell018();
  WddlLibrary wlib(lib);
  const int n = wlib.generate_full_inventory();
  std::printf("%d WDDL compound cells from %zu base cells:\n", n, lib->size());
  for (const WddlCompound* c : wlib.all()) {
    std::printf("  %-18s area %8.2f um^2  (", c->name.c_str(), c->area_um2);
    bool first = true;
    for (const auto& [prim, count] : c->primitives) {
      std::printf("%s%dx%s", first ? "" : " ", count, prim.c_str());
      first = false;
    }
    std::printf(")\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "flow") return cmd_flow(argc - 2, argv + 2);
    if (cmd == "report") return cmd_report(argc - 2, argv + 2);
    if (cmd == "wddl-lib") return cmd_wddl_lib();
  } catch (const secflow::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
