// Command-line driver for the secure digital design flow.
//
//   secflow_cli flow <design.v> [--regular] [--out DIR] [--quick-route]
//                    [--report FILE] [--trace FILE] [--log LEVEL]
//       run the secure (default) or regular flow on a mini-HDL design and
//       write every Fig 1 artifact into DIR (default: <module>_out/);
//       --report dumps the machine-readable JSON flow report, --trace a
//       Chrome trace-event file (open in chrome://tracing or Perfetto)
//   secflow_cli report <design.v>
//       synthesize only and print netlist statistics + timing
//   secflow_cli wddl-lib
//       print the generated WDDL compound-cell inventory
//   secflow_cli campaign <spec.json> [--out FILE] [--cache DIR]
//                        [--threads N] [--log LEVEL]
//       run a batch of flows through the DAG scheduler and write the
//       secflow.campaign-report/1 JSON document
//   secflow_cli fuzz [--seed N] [--count M] [--deep-every K]
//                    [--corpus DIR] [--inject KIND] [--keep-going]
//                    [--no-minimize] [--replay FILE]
//       drive random sequential designs through the oracle catalogue;
//       failures are minimized into replayable fuzz-corpus reproducers
//   secflow_cli leakage [design.v] [--des] [--flow regular|secure]
//                       [--traces N] [--tvla-traces N] [--model hw|hd]
//                       [--mtd-max N] [--mtd-step N] [--ge K] [--seed N]
//                       [--noise X] [--out FILE] [--cache DIR]
//                       [--threads N] [--log LEVEL]
//       run the flow, then the statistical leakage assessment on the
//       extracted design: the built-in DES example (--des) gets the full
//       battery (TVLA + CPA + guessing entropy + MTD), arbitrary designs
//       the model-free TVLA; writes a secflow.leakage-report/1 document
//
// Every subcommand accepts --help.  Options take either `--key value`
// or `--key=value`.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "base/arg_parser.h"
#include "secflow.h"

using namespace secflow;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: secflow_cli <command> [options]\n"
               "\n"
               "commands:\n"
               "  flow <design.v>       run the secure (or --regular) flow\n"
               "  report <design.v>     synthesize only, print statistics\n"
               "  wddl-lib              print the WDDL compound-cell "
               "inventory\n"
               "  campaign <spec.json>  run a batch campaign, write the "
               "JSON report\n"
               "  fuzz                  fuzz both flows with the oracle "
               "catalogue\n"
               "  leakage [design.v]    statistical leakage assessment "
               "(TVLA/CPA/MTD)\n"
               "\n"
               "run 'secflow_cli <command> --help' for per-command "
               "options\n");
  return 2;
}

LogLevel parse_log_or_throw(const std::string& text) {
  const auto lvl = parse_log_level(text);
  SECFLOW_CHECK(lvl.has_value(), "unknown log level: " + text);
  return *lvl;
}

int cmd_flow(int argc, char** argv) {
  ArgParser args("secflow_cli flow",
                 "Run the secure (default) or regular flow on a mini-HDL "
                 "design and\nwrite every Fig 1 artifact.");
  args.positional("design.v", "mini-HDL input file");
  args.flag("regular", "run the regular flow instead of the secure one");
  args.flag("quick-route", "L-shaped quick routing instead of maze routing");
  args.option("out", "DIR", "artifact directory (default: <module>_out/)");
  args.option("report", "FILE", "write the JSON flow report here");
  args.option("trace", "FILE", "write a Chrome trace-event file here");
  args.option("log", "LEVEL", "log level: debug|info|warn|error|off");
  if (!args.parse(argc, argv)) return 0;

  FlowOptions opts;
  if (args.has("log")) opts.log_level = parse_log_or_throw(args.get("log"));
  if (args.has("quick-route")) opts.route_mode = RouteMode::kQuickLShaped;
  const std::string report_path = args.get("report");
  const std::string trace_path = args.get("trace");

  const AigCircuit circuit = parse_hdl_file(args.pos("design.v"));
  const std::string out_dir = args.get("out", circuit.name + "_out");
  const auto lib = builtin_stdcell018();

  // Observability is opt-in: collecting spans/metrics costs nothing to the
  // artifacts (bit-identical either way) but does cost memory and time.
  if (!trace_path.empty()) Tracer::global().set_enabled(true);
  if (!report_path.empty()) Metrics::global().set_enabled(true);

  std::filesystem::create_directories(out_dir);
  const std::filesystem::path out = out_dir;
  FlowReport rep;
  if (args.has("regular")) {
    const RegularFlowResult r = run_regular_flow(circuit, lib, opts);
    std::printf("%s", flow_report(r).c_str());
    write_verilog_file(r.rtl, (out / "rtl.v").string());
    write_lef_file(r.lef, (out / "lib.lef").string());
    write_def_file(r.def, (out / "design.def").string());
    std::printf("%s", timing_report_text(r.timing).c_str());
    rep = build_flow_report(r);
  } else {
    const SecureFlowResult r = run_secure_flow(circuit, lib, opts);
    std::printf("%s", flow_report(r).c_str());
    write_verilog_file(r.rtl, (out / "rtl.v").string());
    write_verilog_file(r.fat, (out / "fat.v").string());
    write_verilog_file(r.diff, (out / "diff.v").string());
    write_lef_file(r.fat_lef, (out / "fat_lib.lef").string());
    write_lef_file(r.lef, (out / "diff_lib.lef").string());
    write_def_file(r.fat_def, (out / "fat.def").string());
    write_def_file(r.def, (out / "diff.def").string());
    std::printf("%s", timing_report_text(r.timing).c_str());
    rep = build_flow_report(r);
  }
  if (!report_path.empty()) {
    attach_metrics(rep, Metrics::global().snapshot());
    std::ofstream f(report_path);
    f << flow_report_json(rep);
    SECFLOW_CHECK(f.good(), "cannot write report to " + report_path);
    std::printf("flow report written to %s\n", report_path.c_str());
  }
  if (!trace_path.empty()) {
    Tracer::global().write_chrome_trace(trace_path);
    std::printf("trace written to %s (open in chrome://tracing)\n",
                trace_path.c_str());
  }
  std::printf("artifacts written to %s/\n", out_dir.c_str());
  return 0;
}

int cmd_report(int argc, char** argv) {
  ArgParser args("secflow_cli report",
                 "Synthesize a design and print netlist statistics and "
                 "timing.");
  args.positional("design.v", "mini-HDL input file");
  if (!args.parse(argc, argv)) return 0;

  const AigCircuit circuit = parse_hdl_file(args.pos("design.v"));
  const auto lib = builtin_stdcell018();
  const Netlist rtl = technology_map(circuit, lib);
  std::printf("module %s: %zu cells, %zu nets, %.1f um^2 cell area\n",
              rtl.name().c_str(), rtl.n_instances(), rtl.n_nets(),
              rtl.total_area_um2());
  for (const auto& [cell, count] : cell_histogram(rtl)) {
    std::printf("  %-8s x%d\n", cell.c_str(), count);
  }
  std::printf("%s", timing_report_text(analyze_timing(rtl, {})).c_str());
  return 0;
}

int cmd_wddl_lib(int argc, char** argv) {
  ArgParser args("secflow_cli wddl-lib",
                 "Print the generated WDDL compound-cell inventory.");
  if (!args.parse(argc, argv)) return 0;

  const auto lib = builtin_stdcell018();
  WddlLibrary wlib(lib);
  const int n = wlib.generate_full_inventory();
  std::printf("%d WDDL compound cells from %zu base cells:\n", n, lib->size());
  for (const WddlCompound* c : wlib.all()) {
    std::printf("  %-18s area %8.2f um^2  (", c->name.c_str(), c->area_um2);
    bool first = true;
    for (const auto& [prim, count] : c->primitives) {
      std::printf("%s%dx%s", first ? "" : " ", count, prim.c_str());
      first = false;
    }
    std::printf(")\n");
  }
  return 0;
}

int cmd_campaign(int argc, char** argv) {
  ArgParser args("secflow_cli campaign",
                 "Run a batch of flows described by a secflow.campaign/1 "
                 "JSON spec\nthrough the DAG scheduler and write the "
                 "campaign report.");
  args.positional("spec.json", "campaign spec file");
  args.option("out", "FILE",
              "write the campaign report here (default: stdout)");
  args.option("cache", "DIR", "checkpoint directory (overrides the spec)");
  args.option("threads", "N", "concurrent jobs (overrides the spec)");
  args.option("log", "LEVEL", "log level: debug|info|warn|error|off");
  if (!args.parse(argc, argv)) return 0;

  std::ifstream in(args.pos("spec.json"));
  SECFLOW_CHECK(in.good(), "cannot read spec " + args.pos("spec.json"));
  std::ostringstream text;
  text << in.rdbuf();
  CampaignSpec spec = parse_campaign_spec(text.str());
  if (args.has("cache")) spec.cache_dir = args.get("cache");
  if (args.has("threads")) spec.threads = std::stoi(args.get("threads"));
  if (args.has("log")) {
    const LogLevel lvl = parse_log_or_throw(args.get("log"));
    for (CampaignJob& job : spec.jobs) job.options.log_level = lvl;
  }

  const CampaignResult result = run_campaign(spec);
  const std::string json = campaign_report_json(result);
  validate_campaign_report(json_parse(json));
  const std::string out_path = args.get("out");
  if (out_path.empty()) {
    std::printf("%s", json.c_str());
  } else {
    std::ofstream f(out_path);
    f << json;
    SECFLOW_CHECK(f.good(), "cannot write report to " + out_path);
    std::printf("campaign '%s': %d ok, %d failed, report written to %s\n",
                result.campaign.c_str(), result.n_ok, result.n_failed,
                out_path.c_str());
  }
  return result.n_failed == 0 ? 0 : 1;
}

int cmd_fuzz(int argc, char** argv) {
  ArgParser args("secflow_cli fuzz",
                 "Generate random sequential mini-HDL designs and drive "
                 "them through\nthe metamorphic / security-invariant / "
                 "cross-check oracle catalogue.\nFailures are delta-debugged "
                 "to a minimal reproducer in the corpus\ndirectory; --replay "
                 "re-runs a stored reproducer bit-exactly.");
  args.option("seed", "N", "campaign seed (default 1)");
  args.option("count", "M", "number of designs to fuzz (default 100)");
  args.option("deep-every", "K",
              "run the full-flow deep oracles every K-th case "
              "(default 10, 0 = never)");
  args.option("corpus", "DIR",
              "reproducer directory (default fuzz-corpus)");
  args.option("inject", "KIND",
              "plant a bug to self-test the oracles: "
              "pin-swap|rail-swap|cap-imbalance");
  args.flag("keep-going", "continue after the first failure");
  args.flag("no-minimize", "store failures without delta-debugging");
  args.option("replay", "FILE", "replay a stored reproducer and exit");
  if (!args.parse(argc, argv)) return 0;

  if (args.has("replay")) {
    const ReplayResult r = replay_repro(args.get("replay"));
    std::printf("replay %s: battery digest %016llx (stored %016llx) %s\n",
                args.get("replay").c_str(),
                static_cast<unsigned long long>(r.replayed_digest),
                static_cast<unsigned long long>(r.stored_digest),
                r.digest_match ? "MATCH" : "MISMATCH");
    if (r.still_fails)
      std::printf("oracle '%s' still fails (reproducer is live)\n",
                  r.oracle.c_str());
    else
      std::printf("no oracle fails any more (bug fixed or environment "
                  "changed)\n");
    return r.digest_match ? 0 : 1;
  }

  FuzzOptions opts;
  if (args.has("seed")) opts.seed = std::stoull(args.get("seed"));
  if (args.has("count")) opts.count = std::stoi(args.get("count"));
  if (args.has("deep-every")) opts.deep_every = std::stoi(args.get("deep-every"));
  opts.corpus_dir = args.get("corpus", "fuzz-corpus");
  if (args.has("inject")) opts.inject = parse_fault_kind(args.get("inject"));
  opts.stop_on_failure = !args.has("keep-going");
  opts.minimize = !args.has("no-minimize");

  const FuzzRunResult run = run_fuzz(opts);
  for (const FuzzCaseResult& c : run.cases) {
    if (c.ok && !c.skipped) continue;
    if (c.skipped) {
      std::printf("case %d (seed %016llx): skipped, fault not injectable\n",
                  c.index, static_cast<unsigned long long>(c.design_seed));
      continue;
    }
    std::printf("case %d (seed %016llx): FAIL %s — %s\n", c.index,
                static_cast<unsigned long long>(c.design_seed),
                c.oracle.c_str(), c.detail.c_str());
    std::printf("  reproducer (%d HDL lines): %s\n", c.minimized_lines,
                c.repro_path.c_str());
  }
  std::printf("fuzz seed %llu: %d ok, %d failed, %d skipped of %zu run\n",
              static_cast<unsigned long long>(opts.seed), run.n_ok,
              run.n_failed, run.n_skipped, run.cases.size());
  return run.all_ok() ? 0 : 1;
}

int cmd_leakage(int argc, char** argv) {
  ArgParser args("secflow_cli leakage",
                 "Run a flow, then the statistical leakage assessment on "
                 "the extracted\ndesign.  The built-in DES example (--des) "
                 "gets the full battery — TVLA,\nCPA key recovery, "
                 "guessing-entropy curves and MTD estimation; an\n"
                 "arbitrary design gets the model-free fixed-vs-random "
                 "TVLA.");
  args.positional("design.v", "mini-HDL input file (omit with --des)",
                  /*required=*/false);
  args.flag("des", "assess the paper's built-in reduced-DES example");
  args.option("flow", "KIND", "regular|secure (default: secure)");
  args.option("traces", "N", "CPA trace budget (default 800)");
  args.option("tvla-traces", "N", "TVLA trace budget (default 600)");
  args.option("model", "M", "CPA power model: hw|hd (default hd)");
  args.option("mtd-max", "N", "MTD trace budget (default 2000)");
  args.option("mtd-step", "N", "MTD feed/check granularity (default 100)");
  args.option("ge", "K",
              "guessing-entropy sub-campaigns (default 0 = off)");
  args.option("seed", "N", "campaign seed (default 2025)");
  args.option("noise", "X", "Gaussian noise per sample in mA (default 0.05)");
  args.option("out", "FILE",
              "write the secflow.leakage-report/1 JSON here");
  args.option("cache", "DIR",
              "checkpoint directory for flow stages and trace blocks");
  args.option("threads", "N", "worker threads (0 = auto)");
  args.option("log", "LEVEL", "log level: debug|info|warn|error|off");
  if (!args.parse(argc, argv)) return 0;

  const bool builtin_des = args.has("des");
  SECFLOW_CHECK(builtin_des || !args.pos("design.v").empty(),
                "pass a design.v or --des");
  const std::string flow_kind = args.get("flow", "secure");
  SECFLOW_CHECK(flow_kind == "regular" || flow_kind == "secure",
                "--flow must be regular or secure, got '" + flow_kind + "'");
  const bool secure = flow_kind == "secure";

  LeakageSetup setup;
  if (args.has("seed")) setup.seed = std::stoull(args.get("seed"));
  if (args.has("traces")) setup.cpa_traces = std::stoi(args.get("traces"));
  if (args.has("tvla-traces"))
    setup.tvla_traces = std::stoi(args.get("tvla-traces"));
  if (args.has("noise")) setup.noise_ma = std::stod(args.get("noise"));
  if (args.has("model")) {
    const auto model = parse_power_model(args.get("model"));
    SECFLOW_CHECK(model.has_value(),
                  "--model must be hw or hd, got '" + args.get("model") + "'");
    setup.model = *model;
  }
  if (args.has("mtd-max")) setup.mtd.max_traces = std::stoi(args.get("mtd-max"));
  if (args.has("mtd-step")) setup.mtd.step = std::stoi(args.get("mtd-step"));
  if (args.has("ge")) setup.ge_campaigns = std::stoi(args.get("ge"));
  if (args.has("threads"))
    setup.parallelism.n_threads = std::stoi(args.get("threads"));
  setup.cache_dir = args.get("cache");

  FlowOptions opts;
  opts.parallelism = setup.parallelism;
  opts.cache_dir = setup.cache_dir;
  if (args.has("log")) opts.log_level = parse_log_or_throw(args.get("log"));
  Metrics::global().set_enabled(true);

  const AigCircuit circuit = builtin_des
                                 ? make_des_dpa_circuit()
                                 : parse_hdl_file(args.pos("design.v"));
  const auto lib = builtin_stdcell018();

  LeakageReport report;
  if (secure) {
    const SecureFlowResult r = run_secure_flow(circuit, lib, opts);
    setup.base_key = r.timings.key(FlowStage::kExtraction);
    setup.design = circuit.name;
    const CompiledSimModel model = compile_power_model(r);
    report = builtin_des
                 ? assess_des_leakage(model, /*differential=*/true, setup)
                 : assess_tvla_leakage(model, /*differential=*/true, setup);
  } else {
    const RegularFlowResult r = run_regular_flow(circuit, lib, opts);
    setup.base_key = r.timings.key(FlowStage::kExtraction);
    setup.design = circuit.name;
    const CompiledSimModel model = compile_power_model(r);
    report = builtin_des
                 ? assess_des_leakage(model, /*differential=*/false, setup)
                 : assess_tvla_leakage(model, /*differential=*/false, setup);
  }

  if (report.tvla.present) {
    std::printf("TVLA  max |t| %.2f over %lld samples (threshold %.1f): %s\n",
                report.tvla.max_abs_t,
                static_cast<long long>(report.tvla.n_samples),
                report.tvla.threshold,
                report.tvla.leaks ? "LEAKS" : "no leak detected");
  }
  if (report.cpa.present) {
    std::printf("CPA   best guess %lld (correct %lld, rank %lld) at %lld "
                "traces: %s\n",
                static_cast<long long>(report.cpa.best_guess),
                static_cast<long long>(report.cpa.correct_key),
                static_cast<long long>(report.cpa.correct_rank),
                static_cast<long long>(report.cpa.n_traces),
                report.cpa.disclosed ? "key DISCLOSED" : "key hidden");
  }
  if (report.mtd.present) {
    if (report.mtd.mtd >= 0) {
      std::printf("MTD   %lld traces to disclosure\n",
                  static_cast<long long>(report.mtd.mtd));
    } else {
      std::printf("MTD   key hidden at %lld traces\n",
                  static_cast<long long>(report.mtd.max_traces));
    }
  }
  if (report.ge.present) {
    for (std::size_t i = 0; i < report.ge.trace_grid.size(); ++i) {
      std::printf("GE    %5lld traces: mean rank %.2f, success rate %.2f\n",
                  static_cast<long long>(report.ge.trace_grid[i]),
                  report.ge.guessing_entropy[i], report.ge.success_rate[i]);
    }
  }
  std::printf("trace cache: %lld hits, %lld misses\n",
              static_cast<long long>(report.trace_cache_hits),
              static_cast<long long>(report.trace_cache_misses));

  const std::string json = leakage_report_json(report);
  validate_leakage_report(json_parse(json));
  const std::string out_path = args.get("out");
  if (!out_path.empty()) {
    std::ofstream f(out_path);
    f << json;
    SECFLOW_CHECK(f.good(), "cannot write report to " + out_path);
    std::printf("leakage report written to %s\n", out_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "flow") return cmd_flow(argc - 2, argv + 2);
    if (cmd == "report") return cmd_report(argc - 2, argv + 2);
    if (cmd == "wddl-lib") return cmd_wddl_lib(argc - 2, argv + 2);
    if (cmd == "campaign") return cmd_campaign(argc - 2, argv + 2);
    if (cmd == "fuzz") return cmd_fuzz(argc - 2, argv + 2);
    if (cmd == "leakage") return cmd_leakage(argc - 2, argv + 2);
  } catch (const secflow::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
