// The flow is algorithm-agnostic (the paper's "major advantage ... that it
// is independent of the cryptographic algorithm or arithmetic
// implemented"): push a home-grown toy cipher through the same secure flow
// without touching any security-specific knob, then confirm the layout's
// rails are matched and the energy signature is flat.
//
//   $ ./custom_cipher
#include <cstdio>

#include "secflow.h"

using namespace secflow;

int main() {
  // A toy 8-bit substitution-permutation round, written like any other RTL.
  const AigCircuit circuit = parse_hdl(R"(
    module toy_spn (input clk, input [7:0] pt, input [7:0] k, output [7:0] ct);
      wire [7:0] keyed;
      assign keyed = pt ^ k;
      // A 4-bit "S-box" applied twice (y = ~x rotated), then a swap.
      wire [7:0] subbed;
      assign subbed[0] = ~keyed[1];
      assign subbed[1] = keyed[2] ^ keyed[0];
      assign subbed[2] = ~(keyed[3] & keyed[1]);
      assign subbed[3] = keyed[0] | keyed[2];
      assign subbed[4] = ~keyed[5];
      assign subbed[5] = keyed[6] ^ keyed[4];
      assign subbed[6] = ~(keyed[7] & keyed[5]);
      assign subbed[7] = keyed[4] | keyed[6];
      reg [7:0] state;
      always @(posedge clk) state <= subbed ^ state;
      assign ct = state;
    endmodule
  )");

  const auto lib = builtin_stdcell018();
  std::printf("running the secure flow on '%s'...\n", circuit.name.c_str());
  const SecureFlowResult secure = run_secure_flow(circuit, lib);
  std::printf("%s\n", flow_report(secure).c_str());

  // Rail matching comes for free from the flow.
  const auto mismatch = rail_mismatch_ff(secure.extraction);
  double worst = 0.0;
  for (const auto& [net, mm] : mismatch) worst = std::max(worst, mm);
  std::printf("differential pairs: %zu, worst rail mismatch %.2f fF\n",
              mismatch.size(), worst);

  // Flat energy signature, again with zero algorithm-specific effort.
  PowerSimOptions opts;
  opts.precharge_inputs = true;
  PowerSimulator sim(secure.diff, secure.caps, opts);
  Rng rng(1);
  std::vector<double> energies;
  for (int i = 0; i < 64; ++i) {
    for (int b = 0; b < 8; ++b) {
      const bool pt = rng.next_bool();
      const bool kb = (0xA5 >> b) & 1;
      sim.set_input("pt_" + std::to_string(b) + "_t", pt);
      sim.set_input("pt_" + std::to_string(b) + "_f", !pt);
      sim.set_input("k_" + std::to_string(b) + "_t", kb);
      sim.set_input("k_" + std::to_string(b) + "_f", !kb);
    }
    const CycleTrace t = sim.run_cycle();
    if (i >= 4) energies.push_back(t.energy_pj);
  }
  const EnergyStats st = compute_energy_stats(energies);
  std::printf("energy over 60 random encryptions: mean %.2f pJ, "
              "NED %.1f%%, NSD %.2f%%\n",
              st.mean_pj, 100 * st.ned, 100 * st.nsd);
  std::printf("\nno security expertise was used in writing toy_spn — that is "
              "the flow's point.\n");
  return 0;
}
