// WDDL's built-in Differential Fault Analysis countermeasure (paper
// section 4.3): a clock-glitch attack leaves register rail pairs in the
// invalid (0,0) state, which the alarm logic detects.
//
//   $ ./fault_detection
#include <cstdio>

#include "secflow.h"

using namespace secflow;

namespace {

void drive(PowerSimulator& sim, std::uint32_t pl, std::uint32_t pr,
           std::uint32_t k) {
  auto rails = [&](const std::string& base, int width, std::uint32_t v) {
    for (int b = 0; b < width; ++b) {
      sim.set_input(base + "_" + std::to_string(b) + "_t", (v >> b) & 1);
      sim.set_input(base + "_" + std::to_string(b) + "_f", !((v >> b) & 1));
    }
  };
  rails("pl", 4, pl);
  rails("pr", 6, pr);
  rails("k", 6, k);
}

}  // namespace

int main() {
  std::printf("building the WDDL reduced-DES module...\n");
  const auto lib = builtin_stdcell018();
  const SecureFlowResult secure =
      run_secure_flow(make_des_dpa_circuit(), lib);
  const DfaMonitor monitor(secure.diff);
  std::printf("alarm monitor attached to %d WDDL registers\n\n",
              monitor.n_monitored_registers());

  PowerSimOptions opts;
  opts.precharge_inputs = true;
  PowerSimulator sim(secure.diff, secure.caps, opts);
  Rng rng(7);

  // Reset sequence: WDDL registers power up in the invalid (0,0) state;
  // two cycles flush valid differential data through the pipeline before
  // the alarm is armed (a real IC gates the alarm with its reset).
  for (int i = 0; i < 2; ++i) {
    drive(sim, static_cast<std::uint32_t>(rng.next_below(16)),
          static_cast<std::uint32_t>(rng.next_below(64)), 46);
    sim.run_cycle();
  }

  std::printf("%-8s %-12s %-10s %s\n", "cycle", "period", "alarms",
              "comment");
  for (int cycle = 0; cycle < 8; ++cycle) {
    drive(sim, static_cast<std::uint32_t>(rng.next_below(16)),
          static_cast<std::uint32_t>(rng.next_below(64)), 46);
    // The attacker glitches cycle 5: the clock runs 10x too fast, the
    // evaluation wave cannot reach the registers before capture.
    const bool glitch = cycle == 5;
    sim.run_cycle(glitch ? 800.0 : 0.0);
    const auto alarms = monitor.check(sim);
    std::printf("%-8d %-12s %-10zu %s\n", cycle,
                glitch ? "800 ps !" : "8000 ps", alarms.size(),
                alarms.empty()
                    ? "valid differential state"
                    : ("ALARM: " + alarms[0].register_name +
                       " captured (0,0) — wipe secrets and halt")
                          .c_str());
    if (!alarms.empty()) {
      std::printf("\nfault detected: in a deployed IC this would zeroize the "
                  "key registers.\n");
      break;
    }
  }
  return 0;
}
