// Mount the paper's DPA (section 3) against both implementations of the
// reduced-DES module and watch the secret key appear — or not.
//
//   $ ./dpa_attack [n_traces]     (default 800)
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "secflow.h"

using namespace secflow;

namespace {

void report(const char* label, const DpaAnalysis& dpa,
            const DesDpaSetup& setup) {
  const DpaResult r = dpa.analyze(setup.key);
  std::vector<std::pair<double, int>> ranked;
  for (int g = 0; g < 64; ++g) {
    ranked.push_back({r.peak_to_peak[static_cast<std::size_t>(g)], g});
  }
  std::sort(ranked.rbegin(), ranked.rend());
  std::printf("\n%s (%d traces):\n", label, r.n_measurements);
  std::printf("  top guesses: ");
  for (int i = 0; i < 5; ++i) {
    std::printf("%s%d (%.3f)%s", ranked[i].second == (int)setup.key ? "[" : "",
                ranked[i].second, ranked[i].first,
                ranked[i].second == (int)setup.key ? "]" : "");
    std::printf(i < 4 ? ", " : "\n");
  }
  std::printf("  secret key %u: rank %ld, %s\n", setup.key,
              1 + std::distance(ranked.begin(),
                                std::find_if(ranked.begin(), ranked.end(),
                                             [&](const auto& p) {
                                               return p.second ==
                                                      (int)setup.key;
                                             })),
              r.disclosed ? "DISCLOSED" : "still hidden");
}

}  // namespace

int main(int argc, char** argv) {
  DesDpaSetup setup;
  setup.n_measurements = argc > 1 ? std::atoi(argv[1]) : 800;

  std::printf("building the reduced-DES module (paper Fig 4), key = %u...\n",
              setup.key);
  const auto lib = builtin_stdcell018();
  const AigCircuit circuit = make_des_dpa_circuit();
  const RegularFlowResult regular = run_regular_flow(circuit, lib);
  const SecureFlowResult secure = run_secure_flow(circuit, lib);

  std::printf("collecting %d power traces per implementation "
              "(125 MHz, 800 samples/cycle)...\n",
              setup.n_measurements);
  const DpaAnalysis ref =
      run_des_dpa_regular(regular.rtl, regular.caps, setup);
  const DpaAnalysis sec = run_des_dpa_secure(secure.diff, secure.caps, setup);

  report("regular CMOS implementation", ref, setup);
  report("WDDL secure implementation", sec, setup);

  std::printf("\ndifferential trace of the correct key (regular flow), "
              "max |sample|:\n  ");
  const auto diff = ref.differential_trace(setup.key);
  const auto peak = std::max_element(
      diff.begin(), diff.end(),
      [](double a, double b) { return std::abs(a) < std::abs(b); });
  std::printf("%.4f mA at sample %ld of %zu\n", *peak,
              std::distance(diff.begin(), peak), diff.size());

  // Export the Fig 6-style series for plotting.
  std::vector<std::string> names;
  std::vector<std::vector<double>> cols;
  for (int g = 0; g < 64; g += 21) {
    names.push_back("guess" + std::to_string(g));
    cols.push_back(ref.differential_trace(static_cast<std::uint32_t>(g)));
  }
  names.push_back("key46");
  cols.push_back(diff);
  write_series_csv("dpa_differential_traces.csv", names, cols);
  std::printf("differential traces written to dpa_differential_traces.csv\n");
  return 0;
}
