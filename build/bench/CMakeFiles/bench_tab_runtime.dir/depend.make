# Empty dependencies file for bench_tab_runtime.
# This may be replaced when dependencies are built.
