file(REMOVE_RECURSE
  "CMakeFiles/bench_tab_runtime.dir/bench_tab_runtime.cpp.o"
  "CMakeFiles/bench_tab_runtime.dir/bench_tab_runtime.cpp.o.d"
  "bench_tab_runtime"
  "bench_tab_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
