# Empty dependencies file for bench_router_scale.
# This may be replaced when dependencies are built.
