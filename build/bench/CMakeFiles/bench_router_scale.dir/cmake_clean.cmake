file(REMOVE_RECURSE
  "CMakeFiles/bench_router_scale.dir/bench_router_scale.cpp.o"
  "CMakeFiles/bench_router_scale.dir/bench_router_scale.cpp.o.d"
  "bench_router_scale"
  "bench_router_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_router_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
