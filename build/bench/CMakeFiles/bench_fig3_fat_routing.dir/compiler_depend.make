# Empty compiler generated dependencies file for bench_fig3_fat_routing.
# This may be replaced when dependencies are built.
