file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_fat_routing.dir/bench_fig3_fat_routing.cpp.o"
  "CMakeFiles/bench_fig3_fat_routing.dir/bench_fig3_fat_routing.cpp.o.d"
  "bench_fig3_fat_routing"
  "bench_fig3_fat_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_fat_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
