# Empty compiler generated dependencies file for bench_ablation_security.
# This may be replaced when dependencies are built.
