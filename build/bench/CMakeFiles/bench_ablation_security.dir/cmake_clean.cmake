file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_security.dir/bench_ablation_security.cpp.o"
  "CMakeFiles/bench_ablation_security.dir/bench_ablation_security.cpp.o.d"
  "bench_ablation_security"
  "bench_ablation_security.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_security.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
