file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_dpa.dir/bench_fig6_dpa.cpp.o"
  "CMakeFiles/bench_fig6_dpa.dir/bench_fig6_dpa.cpp.o.d"
  "bench_fig6_dpa"
  "bench_fig6_dpa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_dpa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
