
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_tab_energy.cpp" "bench/CMakeFiles/bench_tab_energy.dir/bench_tab_energy.cpp.o" "gcc" "bench/CMakeFiles/bench_tab_energy.dir/bench_tab_energy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/flow/CMakeFiles/secflow_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/sta/CMakeFiles/secflow_sta.dir/DependInfo.cmake"
  "/root/repo/build/src/sca/CMakeFiles/secflow_sca.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/secflow_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/secflow_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/extract/CMakeFiles/secflow_extract.dir/DependInfo.cmake"
  "/root/repo/build/src/pnr/CMakeFiles/secflow_pnr.dir/DependInfo.cmake"
  "/root/repo/build/src/lec/CMakeFiles/secflow_lec.dir/DependInfo.cmake"
  "/root/repo/build/src/wddl/CMakeFiles/secflow_wddl.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/secflow_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/lef/CMakeFiles/secflow_lef.dir/DependInfo.cmake"
  "/root/repo/build/src/liberty/CMakeFiles/secflow_liberty.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/secflow_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/secflow_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
