# Empty dependencies file for bench_tab_energy.
# This may be replaced when dependencies are built.
