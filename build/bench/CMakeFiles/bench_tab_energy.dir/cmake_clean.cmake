file(REMOVE_RECURSE
  "CMakeFiles/bench_tab_energy.dir/bench_tab_energy.cpp.o"
  "CMakeFiles/bench_tab_energy.dir/bench_tab_energy.cpp.o.d"
  "bench_tab_energy"
  "bench_tab_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
