file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_wddl_gates.dir/bench_fig2_wddl_gates.cpp.o"
  "CMakeFiles/bench_fig2_wddl_gates.dir/bench_fig2_wddl_gates.cpp.o.d"
  "bench_fig2_wddl_gates"
  "bench_fig2_wddl_gates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_wddl_gates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
