# Empty compiler generated dependencies file for bench_fig2_wddl_gates.
# This may be replaced when dependencies are built.
