file(REMOVE_RECURSE
  "CMakeFiles/bench_sec41_timing.dir/bench_sec41_timing.cpp.o"
  "CMakeFiles/bench_sec41_timing.dir/bench_sec41_timing.cpp.o.d"
  "bench_sec41_timing"
  "bench_sec41_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec41_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
