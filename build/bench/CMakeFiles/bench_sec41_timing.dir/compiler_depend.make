# Empty compiler generated dependencies file for bench_sec41_timing.
# This may be replaced when dependencies are built.
