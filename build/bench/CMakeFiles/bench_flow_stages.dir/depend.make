# Empty dependencies file for bench_flow_stages.
# This may be replaced when dependencies are built.
