file(REMOVE_RECURSE
  "CMakeFiles/bench_flow_stages.dir/bench_flow_stages.cpp.o"
  "CMakeFiles/bench_flow_stages.dir/bench_flow_stages.cpp.o.d"
  "bench_flow_stages"
  "bench_flow_stages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_flow_stages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
