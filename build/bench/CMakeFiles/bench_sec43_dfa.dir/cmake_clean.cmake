file(REMOVE_RECURSE
  "CMakeFiles/bench_sec43_dfa.dir/bench_sec43_dfa.cpp.o"
  "CMakeFiles/bench_sec43_dfa.dir/bench_sec43_dfa.cpp.o.d"
  "bench_sec43_dfa"
  "bench_sec43_dfa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec43_dfa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
