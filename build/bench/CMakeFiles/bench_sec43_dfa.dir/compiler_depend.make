# Empty compiler generated dependencies file for bench_sec43_dfa.
# This may be replaced when dependencies are built.
