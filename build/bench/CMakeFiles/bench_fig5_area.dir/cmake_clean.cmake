file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_area.dir/bench_fig5_area.cpp.o"
  "CMakeFiles/bench_fig5_area.dir/bench_fig5_area.cpp.o.d"
  "bench_fig5_area"
  "bench_fig5_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
