# Empty dependencies file for bench_fig7_ema.
# This may be replaced when dependencies are built.
