file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_ema.dir/bench_fig7_ema.cpp.o"
  "CMakeFiles/bench_fig7_ema.dir/bench_fig7_ema.cpp.o.d"
  "bench_fig7_ema"
  "bench_fig7_ema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_ema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
