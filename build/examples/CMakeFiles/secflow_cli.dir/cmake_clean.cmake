file(REMOVE_RECURSE
  "CMakeFiles/secflow_cli.dir/secflow_cli.cpp.o"
  "CMakeFiles/secflow_cli.dir/secflow_cli.cpp.o.d"
  "secflow_cli"
  "secflow_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secflow_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
