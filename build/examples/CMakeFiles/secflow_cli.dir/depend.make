# Empty dependencies file for secflow_cli.
# This may be replaced when dependencies are built.
