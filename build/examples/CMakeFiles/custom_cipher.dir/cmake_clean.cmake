file(REMOVE_RECURSE
  "CMakeFiles/custom_cipher.dir/custom_cipher.cpp.o"
  "CMakeFiles/custom_cipher.dir/custom_cipher.cpp.o.d"
  "custom_cipher"
  "custom_cipher.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_cipher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
