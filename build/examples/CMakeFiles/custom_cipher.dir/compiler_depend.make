# Empty compiler generated dependencies file for custom_cipher.
# This may be replaced when dependencies are built.
