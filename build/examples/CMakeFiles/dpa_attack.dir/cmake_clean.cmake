file(REMOVE_RECURSE
  "CMakeFiles/dpa_attack.dir/dpa_attack.cpp.o"
  "CMakeFiles/dpa_attack.dir/dpa_attack.cpp.o.d"
  "dpa_attack"
  "dpa_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpa_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
