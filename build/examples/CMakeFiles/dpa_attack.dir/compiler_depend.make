# Empty compiler generated dependencies file for dpa_attack.
# This may be replaced when dependencies are built.
