# Empty compiler generated dependencies file for fault_detection.
# This may be replaced when dependencies are built.
