file(REMOVE_RECURSE
  "CMakeFiles/fault_detection.dir/fault_detection.cpp.o"
  "CMakeFiles/fault_detection.dir/fault_detection.cpp.o.d"
  "fault_detection"
  "fault_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
