file(REMOVE_RECURSE
  "CMakeFiles/liberty_test.dir/liberty_test.cpp.o"
  "CMakeFiles/liberty_test.dir/liberty_test.cpp.o.d"
  "liberty_test"
  "liberty_test.pdb"
  "liberty_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/liberty_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
