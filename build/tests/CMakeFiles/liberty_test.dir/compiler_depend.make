# Empty compiler generated dependencies file for liberty_test.
# This may be replaced when dependencies are built.
