file(REMOVE_RECURSE
  "CMakeFiles/hdl_test.dir/hdl_test.cpp.o"
  "CMakeFiles/hdl_test.dir/hdl_test.cpp.o.d"
  "hdl_test"
  "hdl_test.pdb"
  "hdl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
