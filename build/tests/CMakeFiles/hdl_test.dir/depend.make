# Empty dependencies file for hdl_test.
# This may be replaced when dependencies are built.
