# Empty dependencies file for logic_fn_test.
# This may be replaced when dependencies are built.
