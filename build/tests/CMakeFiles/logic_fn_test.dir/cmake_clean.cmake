file(REMOVE_RECURSE
  "CMakeFiles/logic_fn_test.dir/logic_fn_test.cpp.o"
  "CMakeFiles/logic_fn_test.dir/logic_fn_test.cpp.o.d"
  "logic_fn_test"
  "logic_fn_test.pdb"
  "logic_fn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logic_fn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
