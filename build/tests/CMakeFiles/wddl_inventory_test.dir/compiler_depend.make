# Empty compiler generated dependencies file for wddl_inventory_test.
# This may be replaced when dependencies are built.
