file(REMOVE_RECURSE
  "CMakeFiles/wddl_inventory_test.dir/wddl_inventory_test.cpp.o"
  "CMakeFiles/wddl_inventory_test.dir/wddl_inventory_test.cpp.o.d"
  "wddl_inventory_test"
  "wddl_inventory_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wddl_inventory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
