# Empty compiler generated dependencies file for def_test.
# This may be replaced when dependencies are built.
