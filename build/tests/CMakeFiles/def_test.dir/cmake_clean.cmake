file(REMOVE_RECURSE
  "CMakeFiles/def_test.dir/def_test.cpp.o"
  "CMakeFiles/def_test.dir/def_test.cpp.o.d"
  "def_test"
  "def_test.pdb"
  "def_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/def_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
