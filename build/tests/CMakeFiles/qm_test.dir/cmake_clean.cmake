file(REMOVE_RECURSE
  "CMakeFiles/qm_test.dir/qm_test.cpp.o"
  "CMakeFiles/qm_test.dir/qm_test.cpp.o.d"
  "qm_test"
  "qm_test.pdb"
  "qm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
