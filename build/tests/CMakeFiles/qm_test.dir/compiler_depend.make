# Empty compiler generated dependencies file for qm_test.
# This may be replaced when dependencies are built.
