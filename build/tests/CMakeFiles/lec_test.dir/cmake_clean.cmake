file(REMOVE_RECURSE
  "CMakeFiles/lec_test.dir/lec_test.cpp.o"
  "CMakeFiles/lec_test.dir/lec_test.cpp.o.d"
  "lec_test"
  "lec_test.pdb"
  "lec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
