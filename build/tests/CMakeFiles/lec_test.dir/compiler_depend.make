# Empty compiler generated dependencies file for lec_test.
# This may be replaced when dependencies are built.
