# Empty dependencies file for lef_test.
# This may be replaced when dependencies are built.
