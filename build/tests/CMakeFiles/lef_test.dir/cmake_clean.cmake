file(REMOVE_RECURSE
  "CMakeFiles/lef_test.dir/lef_test.cpp.o"
  "CMakeFiles/lef_test.dir/lef_test.cpp.o.d"
  "lef_test"
  "lef_test.pdb"
  "lef_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lef_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
