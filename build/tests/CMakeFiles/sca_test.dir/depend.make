# Empty dependencies file for sca_test.
# This may be replaced when dependencies are built.
