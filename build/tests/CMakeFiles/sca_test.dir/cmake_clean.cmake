file(REMOVE_RECURSE
  "CMakeFiles/sca_test.dir/sca_test.cpp.o"
  "CMakeFiles/sca_test.dir/sca_test.cpp.o.d"
  "sca_test"
  "sca_test.pdb"
  "sca_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sca_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
