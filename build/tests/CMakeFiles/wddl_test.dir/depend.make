# Empty dependencies file for wddl_test.
# This may be replaced when dependencies are built.
