file(REMOVE_RECURSE
  "CMakeFiles/wddl_test.dir/wddl_test.cpp.o"
  "CMakeFiles/wddl_test.dir/wddl_test.cpp.o.d"
  "wddl_test"
  "wddl_test.pdb"
  "wddl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wddl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
