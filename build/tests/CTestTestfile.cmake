# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/base_test[1]_include.cmake")
include("/root/repo/build/tests/logic_fn_test[1]_include.cmake")
include("/root/repo/build/tests/netlist_test[1]_include.cmake")
include("/root/repo/build/tests/verilog_test[1]_include.cmake")
include("/root/repo/build/tests/liberty_test[1]_include.cmake")
include("/root/repo/build/tests/lef_test[1]_include.cmake")
include("/root/repo/build/tests/aig_test[1]_include.cmake")
include("/root/repo/build/tests/hdl_test[1]_include.cmake")
include("/root/repo/build/tests/techmap_test[1]_include.cmake")
include("/root/repo/build/tests/qm_test[1]_include.cmake")
include("/root/repo/build/tests/wddl_test[1]_include.cmake")
include("/root/repo/build/tests/lec_test[1]_include.cmake")
include("/root/repo/build/tests/pnr_test[1]_include.cmake")
include("/root/repo/build/tests/extract_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/sca_test[1]_include.cmake")
include("/root/repo/build/tests/sta_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/parser_robustness_test[1]_include.cmake")
include("/root/repo/build/tests/render_test[1]_include.cmake")
include("/root/repo/build/tests/def_test[1]_include.cmake")
add_test(flow_test "/root/repo/build/tests/flow_test")
set_tests_properties(flow_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;33;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(wddl_inventory_test "/root/repo/build/tests/wddl_inventory_test")
set_tests_properties(wddl_inventory_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;42;add_test;/root/repo/tests/CMakeLists.txt;0;")
