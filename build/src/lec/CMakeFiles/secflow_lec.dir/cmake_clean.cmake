file(REMOVE_RECURSE
  "CMakeFiles/secflow_lec.dir/bdd.cpp.o"
  "CMakeFiles/secflow_lec.dir/bdd.cpp.o.d"
  "CMakeFiles/secflow_lec.dir/lec.cpp.o"
  "CMakeFiles/secflow_lec.dir/lec.cpp.o.d"
  "libsecflow_lec.a"
  "libsecflow_lec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secflow_lec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
