# Empty dependencies file for secflow_lec.
# This may be replaced when dependencies are built.
