file(REMOVE_RECURSE
  "libsecflow_lec.a"
)
