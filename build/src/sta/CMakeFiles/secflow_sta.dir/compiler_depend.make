# Empty compiler generated dependencies file for secflow_sta.
# This may be replaced when dependencies are built.
