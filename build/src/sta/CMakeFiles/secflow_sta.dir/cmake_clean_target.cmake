file(REMOVE_RECURSE
  "libsecflow_sta.a"
)
