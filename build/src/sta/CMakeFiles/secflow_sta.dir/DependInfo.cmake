
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sta/sta.cpp" "src/sta/CMakeFiles/secflow_sta.dir/sta.cpp.o" "gcc" "src/sta/CMakeFiles/secflow_sta.dir/sta.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/secflow_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/secflow_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/secflow_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
