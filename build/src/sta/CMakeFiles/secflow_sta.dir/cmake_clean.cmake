file(REMOVE_RECURSE
  "CMakeFiles/secflow_sta.dir/sta.cpp.o"
  "CMakeFiles/secflow_sta.dir/sta.cpp.o.d"
  "libsecflow_sta.a"
  "libsecflow_sta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secflow_sta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
