file(REMOVE_RECURSE
  "libsecflow_extract.a"
)
