file(REMOVE_RECURSE
  "CMakeFiles/secflow_extract.dir/extract.cpp.o"
  "CMakeFiles/secflow_extract.dir/extract.cpp.o.d"
  "libsecflow_extract.a"
  "libsecflow_extract.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secflow_extract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
