# Empty compiler generated dependencies file for secflow_extract.
# This may be replaced when dependencies are built.
