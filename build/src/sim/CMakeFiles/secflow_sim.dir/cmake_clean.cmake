file(REMOVE_RECURSE
  "CMakeFiles/secflow_sim.dir/power_sim.cpp.o"
  "CMakeFiles/secflow_sim.dir/power_sim.cpp.o.d"
  "libsecflow_sim.a"
  "libsecflow_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secflow_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
