file(REMOVE_RECURSE
  "libsecflow_sim.a"
)
