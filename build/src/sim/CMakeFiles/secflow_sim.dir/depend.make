# Empty dependencies file for secflow_sim.
# This may be replaced when dependencies are built.
