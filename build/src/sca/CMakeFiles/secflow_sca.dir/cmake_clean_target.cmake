file(REMOVE_RECURSE
  "libsecflow_sca.a"
)
