# Empty dependencies file for secflow_sca.
# This may be replaced when dependencies are built.
