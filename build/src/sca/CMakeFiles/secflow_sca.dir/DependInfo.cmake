
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sca/dfa.cpp" "src/sca/CMakeFiles/secflow_sca.dir/dfa.cpp.o" "gcc" "src/sca/CMakeFiles/secflow_sca.dir/dfa.cpp.o.d"
  "/root/repo/src/sca/dpa.cpp" "src/sca/CMakeFiles/secflow_sca.dir/dpa.cpp.o" "gcc" "src/sca/CMakeFiles/secflow_sca.dir/dpa.cpp.o.d"
  "/root/repo/src/sca/dpa_experiment.cpp" "src/sca/CMakeFiles/secflow_sca.dir/dpa_experiment.cpp.o" "gcc" "src/sca/CMakeFiles/secflow_sca.dir/dpa_experiment.cpp.o.d"
  "/root/repo/src/sca/ema.cpp" "src/sca/CMakeFiles/secflow_sca.dir/ema.cpp.o" "gcc" "src/sca/CMakeFiles/secflow_sca.dir/ema.cpp.o.d"
  "/root/repo/src/sca/trace_io.cpp" "src/sca/CMakeFiles/secflow_sca.dir/trace_io.cpp.o" "gcc" "src/sca/CMakeFiles/secflow_sca.dir/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/secflow_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/secflow_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/secflow_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/secflow_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/wddl/CMakeFiles/secflow_wddl.dir/DependInfo.cmake"
  "/root/repo/build/src/liberty/CMakeFiles/secflow_liberty.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/secflow_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
