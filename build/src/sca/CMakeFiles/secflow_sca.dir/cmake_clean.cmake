file(REMOVE_RECURSE
  "CMakeFiles/secflow_sca.dir/dfa.cpp.o"
  "CMakeFiles/secflow_sca.dir/dfa.cpp.o.d"
  "CMakeFiles/secflow_sca.dir/dpa.cpp.o"
  "CMakeFiles/secflow_sca.dir/dpa.cpp.o.d"
  "CMakeFiles/secflow_sca.dir/dpa_experiment.cpp.o"
  "CMakeFiles/secflow_sca.dir/dpa_experiment.cpp.o.d"
  "CMakeFiles/secflow_sca.dir/ema.cpp.o"
  "CMakeFiles/secflow_sca.dir/ema.cpp.o.d"
  "CMakeFiles/secflow_sca.dir/trace_io.cpp.o"
  "CMakeFiles/secflow_sca.dir/trace_io.cpp.o.d"
  "libsecflow_sca.a"
  "libsecflow_sca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secflow_sca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
