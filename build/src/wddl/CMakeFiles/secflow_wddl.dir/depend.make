# Empty dependencies file for secflow_wddl.
# This may be replaced when dependencies are built.
