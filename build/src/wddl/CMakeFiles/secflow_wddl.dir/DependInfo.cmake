
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wddl/cell_substitution.cpp" "src/wddl/CMakeFiles/secflow_wddl.dir/cell_substitution.cpp.o" "gcc" "src/wddl/CMakeFiles/secflow_wddl.dir/cell_substitution.cpp.o.d"
  "/root/repo/src/wddl/qm.cpp" "src/wddl/CMakeFiles/secflow_wddl.dir/qm.cpp.o" "gcc" "src/wddl/CMakeFiles/secflow_wddl.dir/qm.cpp.o.d"
  "/root/repo/src/wddl/wddl_library.cpp" "src/wddl/CMakeFiles/secflow_wddl.dir/wddl_library.cpp.o" "gcc" "src/wddl/CMakeFiles/secflow_wddl.dir/wddl_library.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/secflow_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/liberty/CMakeFiles/secflow_liberty.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/secflow_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
