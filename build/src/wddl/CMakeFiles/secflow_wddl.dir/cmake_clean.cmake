file(REMOVE_RECURSE
  "CMakeFiles/secflow_wddl.dir/cell_substitution.cpp.o"
  "CMakeFiles/secflow_wddl.dir/cell_substitution.cpp.o.d"
  "CMakeFiles/secflow_wddl.dir/qm.cpp.o"
  "CMakeFiles/secflow_wddl.dir/qm.cpp.o.d"
  "CMakeFiles/secflow_wddl.dir/wddl_library.cpp.o"
  "CMakeFiles/secflow_wddl.dir/wddl_library.cpp.o.d"
  "libsecflow_wddl.a"
  "libsecflow_wddl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secflow_wddl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
