file(REMOVE_RECURSE
  "libsecflow_wddl.a"
)
