# Empty compiler generated dependencies file for secflow_wddl.
# This may be replaced when dependencies are built.
