# Empty dependencies file for secflow_lef.
# This may be replaced when dependencies are built.
