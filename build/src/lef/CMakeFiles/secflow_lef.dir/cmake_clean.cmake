file(REMOVE_RECURSE
  "CMakeFiles/secflow_lef.dir/lef.cpp.o"
  "CMakeFiles/secflow_lef.dir/lef.cpp.o.d"
  "CMakeFiles/secflow_lef.dir/lef_io.cpp.o"
  "CMakeFiles/secflow_lef.dir/lef_io.cpp.o.d"
  "libsecflow_lef.a"
  "libsecflow_lef.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secflow_lef.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
