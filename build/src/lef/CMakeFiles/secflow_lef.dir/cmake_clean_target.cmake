file(REMOVE_RECURSE
  "libsecflow_lef.a"
)
