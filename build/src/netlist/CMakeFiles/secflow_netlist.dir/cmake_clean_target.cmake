file(REMOVE_RECURSE
  "libsecflow_netlist.a"
)
