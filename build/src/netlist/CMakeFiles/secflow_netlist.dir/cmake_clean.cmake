file(REMOVE_RECURSE
  "CMakeFiles/secflow_netlist.dir/cell_library.cpp.o"
  "CMakeFiles/secflow_netlist.dir/cell_library.cpp.o.d"
  "CMakeFiles/secflow_netlist.dir/logic_fn.cpp.o"
  "CMakeFiles/secflow_netlist.dir/logic_fn.cpp.o.d"
  "CMakeFiles/secflow_netlist.dir/netlist.cpp.o"
  "CMakeFiles/secflow_netlist.dir/netlist.cpp.o.d"
  "CMakeFiles/secflow_netlist.dir/netlist_ops.cpp.o"
  "CMakeFiles/secflow_netlist.dir/netlist_ops.cpp.o.d"
  "CMakeFiles/secflow_netlist.dir/verilog_parser.cpp.o"
  "CMakeFiles/secflow_netlist.dir/verilog_parser.cpp.o.d"
  "CMakeFiles/secflow_netlist.dir/verilog_writer.cpp.o"
  "CMakeFiles/secflow_netlist.dir/verilog_writer.cpp.o.d"
  "libsecflow_netlist.a"
  "libsecflow_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secflow_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
