# Empty compiler generated dependencies file for secflow_netlist.
# This may be replaced when dependencies are built.
