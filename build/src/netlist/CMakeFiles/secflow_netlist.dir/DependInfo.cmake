
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netlist/cell_library.cpp" "src/netlist/CMakeFiles/secflow_netlist.dir/cell_library.cpp.o" "gcc" "src/netlist/CMakeFiles/secflow_netlist.dir/cell_library.cpp.o.d"
  "/root/repo/src/netlist/logic_fn.cpp" "src/netlist/CMakeFiles/secflow_netlist.dir/logic_fn.cpp.o" "gcc" "src/netlist/CMakeFiles/secflow_netlist.dir/logic_fn.cpp.o.d"
  "/root/repo/src/netlist/netlist.cpp" "src/netlist/CMakeFiles/secflow_netlist.dir/netlist.cpp.o" "gcc" "src/netlist/CMakeFiles/secflow_netlist.dir/netlist.cpp.o.d"
  "/root/repo/src/netlist/netlist_ops.cpp" "src/netlist/CMakeFiles/secflow_netlist.dir/netlist_ops.cpp.o" "gcc" "src/netlist/CMakeFiles/secflow_netlist.dir/netlist_ops.cpp.o.d"
  "/root/repo/src/netlist/verilog_parser.cpp" "src/netlist/CMakeFiles/secflow_netlist.dir/verilog_parser.cpp.o" "gcc" "src/netlist/CMakeFiles/secflow_netlist.dir/verilog_parser.cpp.o.d"
  "/root/repo/src/netlist/verilog_writer.cpp" "src/netlist/CMakeFiles/secflow_netlist.dir/verilog_writer.cpp.o" "gcc" "src/netlist/CMakeFiles/secflow_netlist.dir/verilog_writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/secflow_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
