# Empty dependencies file for secflow_netlist.
# This may be replaced when dependencies are built.
