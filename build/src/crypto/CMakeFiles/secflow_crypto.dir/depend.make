# Empty dependencies file for secflow_crypto.
# This may be replaced when dependencies are built.
