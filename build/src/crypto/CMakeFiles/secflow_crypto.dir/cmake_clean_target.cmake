file(REMOVE_RECURSE
  "libsecflow_crypto.a"
)
