file(REMOVE_RECURSE
  "CMakeFiles/secflow_crypto.dir/aes.cpp.o"
  "CMakeFiles/secflow_crypto.dir/aes.cpp.o.d"
  "CMakeFiles/secflow_crypto.dir/des.cpp.o"
  "CMakeFiles/secflow_crypto.dir/des.cpp.o.d"
  "libsecflow_crypto.a"
  "libsecflow_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secflow_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
