# Empty dependencies file for secflow_liberty.
# This may be replaced when dependencies are built.
