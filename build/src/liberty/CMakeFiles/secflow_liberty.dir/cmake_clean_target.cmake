file(REMOVE_RECURSE
  "libsecflow_liberty.a"
)
