file(REMOVE_RECURSE
  "CMakeFiles/secflow_liberty.dir/bool_expr.cpp.o"
  "CMakeFiles/secflow_liberty.dir/bool_expr.cpp.o.d"
  "CMakeFiles/secflow_liberty.dir/builtin_lib.cpp.o"
  "CMakeFiles/secflow_liberty.dir/builtin_lib.cpp.o.d"
  "CMakeFiles/secflow_liberty.dir/liberty_parser.cpp.o"
  "CMakeFiles/secflow_liberty.dir/liberty_parser.cpp.o.d"
  "libsecflow_liberty.a"
  "libsecflow_liberty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secflow_liberty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
