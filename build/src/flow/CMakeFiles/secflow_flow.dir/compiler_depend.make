# Empty compiler generated dependencies file for secflow_flow.
# This may be replaced when dependencies are built.
