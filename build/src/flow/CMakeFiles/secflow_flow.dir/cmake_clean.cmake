file(REMOVE_RECURSE
  "CMakeFiles/secflow_flow.dir/flow.cpp.o"
  "CMakeFiles/secflow_flow.dir/flow.cpp.o.d"
  "libsecflow_flow.a"
  "libsecflow_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secflow_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
