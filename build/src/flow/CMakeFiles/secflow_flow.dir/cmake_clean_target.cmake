file(REMOVE_RECURSE
  "libsecflow_flow.a"
)
