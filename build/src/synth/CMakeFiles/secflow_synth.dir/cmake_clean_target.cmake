file(REMOVE_RECURSE
  "libsecflow_synth.a"
)
