# Empty compiler generated dependencies file for secflow_synth.
# This may be replaced when dependencies are built.
