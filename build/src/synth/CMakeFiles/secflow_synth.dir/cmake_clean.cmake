file(REMOVE_RECURSE
  "CMakeFiles/secflow_synth.dir/aig.cpp.o"
  "CMakeFiles/secflow_synth.dir/aig.cpp.o.d"
  "CMakeFiles/secflow_synth.dir/circuit.cpp.o"
  "CMakeFiles/secflow_synth.dir/circuit.cpp.o.d"
  "CMakeFiles/secflow_synth.dir/hdl.cpp.o"
  "CMakeFiles/secflow_synth.dir/hdl.cpp.o.d"
  "CMakeFiles/secflow_synth.dir/techmap.cpp.o"
  "CMakeFiles/secflow_synth.dir/techmap.cpp.o.d"
  "libsecflow_synth.a"
  "libsecflow_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secflow_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
