
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/base/error.cpp" "src/base/CMakeFiles/secflow_base.dir/error.cpp.o" "gcc" "src/base/CMakeFiles/secflow_base.dir/error.cpp.o.d"
  "/root/repo/src/base/geometry.cpp" "src/base/CMakeFiles/secflow_base.dir/geometry.cpp.o" "gcc" "src/base/CMakeFiles/secflow_base.dir/geometry.cpp.o.d"
  "/root/repo/src/base/rng.cpp" "src/base/CMakeFiles/secflow_base.dir/rng.cpp.o" "gcc" "src/base/CMakeFiles/secflow_base.dir/rng.cpp.o.d"
  "/root/repo/src/base/strings.cpp" "src/base/CMakeFiles/secflow_base.dir/strings.cpp.o" "gcc" "src/base/CMakeFiles/secflow_base.dir/strings.cpp.o.d"
  "/root/repo/src/base/units.cpp" "src/base/CMakeFiles/secflow_base.dir/units.cpp.o" "gcc" "src/base/CMakeFiles/secflow_base.dir/units.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
