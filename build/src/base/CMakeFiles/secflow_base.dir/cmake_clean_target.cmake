file(REMOVE_RECURSE
  "libsecflow_base.a"
)
