# Empty dependencies file for secflow_base.
# This may be replaced when dependencies are built.
