file(REMOVE_RECURSE
  "CMakeFiles/secflow_base.dir/error.cpp.o"
  "CMakeFiles/secflow_base.dir/error.cpp.o.d"
  "CMakeFiles/secflow_base.dir/geometry.cpp.o"
  "CMakeFiles/secflow_base.dir/geometry.cpp.o.d"
  "CMakeFiles/secflow_base.dir/rng.cpp.o"
  "CMakeFiles/secflow_base.dir/rng.cpp.o.d"
  "CMakeFiles/secflow_base.dir/strings.cpp.o"
  "CMakeFiles/secflow_base.dir/strings.cpp.o.d"
  "CMakeFiles/secflow_base.dir/units.cpp.o"
  "CMakeFiles/secflow_base.dir/units.cpp.o.d"
  "libsecflow_base.a"
  "libsecflow_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secflow_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
