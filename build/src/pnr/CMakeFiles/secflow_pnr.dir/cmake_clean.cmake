file(REMOVE_RECURSE
  "CMakeFiles/secflow_pnr.dir/check.cpp.o"
  "CMakeFiles/secflow_pnr.dir/check.cpp.o.d"
  "CMakeFiles/secflow_pnr.dir/decompose.cpp.o"
  "CMakeFiles/secflow_pnr.dir/decompose.cpp.o.d"
  "CMakeFiles/secflow_pnr.dir/def.cpp.o"
  "CMakeFiles/secflow_pnr.dir/def.cpp.o.d"
  "CMakeFiles/secflow_pnr.dir/place.cpp.o"
  "CMakeFiles/secflow_pnr.dir/place.cpp.o.d"
  "CMakeFiles/secflow_pnr.dir/render.cpp.o"
  "CMakeFiles/secflow_pnr.dir/render.cpp.o.d"
  "CMakeFiles/secflow_pnr.dir/route.cpp.o"
  "CMakeFiles/secflow_pnr.dir/route.cpp.o.d"
  "libsecflow_pnr.a"
  "libsecflow_pnr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secflow_pnr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
