file(REMOVE_RECURSE
  "libsecflow_pnr.a"
)
