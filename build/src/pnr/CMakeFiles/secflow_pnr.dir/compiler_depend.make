# Empty compiler generated dependencies file for secflow_pnr.
# This may be replaced when dependencies are built.
