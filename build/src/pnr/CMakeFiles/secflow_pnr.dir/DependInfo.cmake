
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pnr/check.cpp" "src/pnr/CMakeFiles/secflow_pnr.dir/check.cpp.o" "gcc" "src/pnr/CMakeFiles/secflow_pnr.dir/check.cpp.o.d"
  "/root/repo/src/pnr/decompose.cpp" "src/pnr/CMakeFiles/secflow_pnr.dir/decompose.cpp.o" "gcc" "src/pnr/CMakeFiles/secflow_pnr.dir/decompose.cpp.o.d"
  "/root/repo/src/pnr/def.cpp" "src/pnr/CMakeFiles/secflow_pnr.dir/def.cpp.o" "gcc" "src/pnr/CMakeFiles/secflow_pnr.dir/def.cpp.o.d"
  "/root/repo/src/pnr/place.cpp" "src/pnr/CMakeFiles/secflow_pnr.dir/place.cpp.o" "gcc" "src/pnr/CMakeFiles/secflow_pnr.dir/place.cpp.o.d"
  "/root/repo/src/pnr/render.cpp" "src/pnr/CMakeFiles/secflow_pnr.dir/render.cpp.o" "gcc" "src/pnr/CMakeFiles/secflow_pnr.dir/render.cpp.o.d"
  "/root/repo/src/pnr/route.cpp" "src/pnr/CMakeFiles/secflow_pnr.dir/route.cpp.o" "gcc" "src/pnr/CMakeFiles/secflow_pnr.dir/route.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/secflow_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/lef/CMakeFiles/secflow_lef.dir/DependInfo.cmake"
  "/root/repo/build/src/wddl/CMakeFiles/secflow_wddl.dir/DependInfo.cmake"
  "/root/repo/build/src/liberty/CMakeFiles/secflow_liberty.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/secflow_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
