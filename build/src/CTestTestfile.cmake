# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("base")
subdirs("netlist")
subdirs("liberty")
subdirs("lef")
subdirs("synth")
subdirs("wddl")
subdirs("lec")
subdirs("pnr")
subdirs("extract")
subdirs("sim")
subdirs("sta")
subdirs("sca")
subdirs("crypto")
subdirs("flow")
