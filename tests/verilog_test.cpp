#include <gtest/gtest.h>

#include "base/error.h"
#include "liberty/builtin_lib.h"
#include "netlist/netlist_ops.h"
#include "netlist/verilog_parser.h"
#include "netlist/verilog_writer.h"

namespace secflow {
namespace {

class VerilogTest : public ::testing::Test {
 protected:
  std::shared_ptr<const CellLibrary> lib_ = builtin_stdcell018();
};

TEST_F(VerilogTest, ParseMinimalModule) {
  const std::string src = R"(
    // a 2-input NAND wrapper
    module top (a, b, y);
      input a, b;
      output y;
      NAND2 u1 (.A(a), .B(b), .Y(y));
    endmodule
  )";
  const Netlist nl = parse_verilog(src, lib_);
  EXPECT_EQ(nl.name(), "top");
  EXPECT_EQ(nl.n_ports(), 3u);
  EXPECT_EQ(nl.n_instances(), 1u);
  nl.validate();
}

TEST_F(VerilogTest, ParseWiresAndComments) {
  const std::string src = R"(
    module m (a, y);
      input a;
      output y;
      wire n1; /* internal
                  node */
      INV u1 (.A(a), .Y(n1));
      INV u2 (.A(n1), .Y(y));
    endmodule
  )";
  const Netlist nl = parse_verilog(src, lib_);
  EXPECT_EQ(nl.n_instances(), 2u);
  EXPECT_TRUE(nl.find_net("n1").valid());
  nl.validate();
}

TEST_F(VerilogTest, ImplicitNetsCreated) {
  const std::string src = R"(
    module m (a, y);
      input a;
      output y;
      INV u1 (.A(a), .Y(undeclared));
      INV u2 (.A(undeclared), .Y(y));
    endmodule
  )";
  const Netlist nl = parse_verilog(src, lib_);
  EXPECT_TRUE(nl.find_net("undeclared").valid());
  nl.validate();
}

TEST_F(VerilogTest, RejectsUnknownCell) {
  const std::string src =
      "module m (a); input a; BOGUS u1 (.A(a)); endmodule";
  EXPECT_THROW(parse_verilog(src, lib_), ParseError);
}

TEST_F(VerilogTest, RejectsUnknownPin) {
  const std::string src =
      "module m (a); input a; INV u1 (.Z(a)); endmodule";
  EXPECT_THROW(parse_verilog(src, lib_), ParseError);
}

TEST_F(VerilogTest, RejectsUndeclaredHeaderPort) {
  const std::string src = "module m (a, ghost); input a; endmodule";
  EXPECT_THROW(parse_verilog(src, lib_), ParseError);
}

TEST_F(VerilogTest, RejectsTruncatedFile) {
  EXPECT_THROW(parse_verilog("module m (a); input a;", lib_), ParseError);
}

TEST_F(VerilogTest, ErrorCarriesLineNumber) {
  const std::string src = "module m (a);\ninput a;\nBOGUS u (.A(a));\n";
  try {
    parse_verilog(src, lib_);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST_F(VerilogTest, RoundTripPreservesStructure) {
  Netlist nl("rt", lib_);
  const NetId a = nl.add_net("a");
  const NetId b = nl.add_net("b");
  const NetId n1 = nl.add_net("n1");
  const NetId y = nl.add_net("y");
  const NetId ck = nl.add_net("ck");
  const NetId q = nl.add_net("q");
  nl.add_port("a", PinDir::kInput, a);
  nl.add_port("b", PinDir::kInput, b);
  nl.add_port("ck", PinDir::kInput, ck);
  nl.add_port("y", PinDir::kOutput, y);
  add_gate(nl, "AOI22", "g1", {a, b, a, b}, n1);
  add_flop(nl, "DFF", "r1", n1, ck, q);
  add_gate(nl, "INV", "g2", {q}, y);

  const std::string text = write_verilog(nl);
  const Netlist back = parse_verilog(text, lib_);
  EXPECT_EQ(back.name(), nl.name());
  EXPECT_EQ(back.n_instances(), nl.n_instances());
  EXPECT_EQ(back.n_ports(), nl.n_ports());
  EXPECT_EQ(back.n_nets(), nl.n_nets());
  EXPECT_EQ(cell_histogram(back), cell_histogram(nl));
  back.validate();

  // Same logic: exhaustive input sweep agrees between the two netlists.
  FunctionalSim s1(nl), s2(back);
  for (int av = 0; av < 2; ++av) {
    for (int bv = 0; bv < 2; ++bv) {
      s1.set_input("a", av);
      s1.set_input("b", bv);
      s2.set_input("a", av);
      s2.set_input("b", bv);
      s1.propagate();
      s2.propagate();
      s1.step_clock();
      s2.step_clock();
      EXPECT_EQ(s1.output("y"), s2.output("y"));
    }
  }
}

TEST_F(VerilogTest, EscapedIdentifier) {
  const std::string src =
      "module m (a, y); input a; output y; INV \\u1$x (.A(a), .Y(y)); "
      "endmodule";
  const Netlist nl = parse_verilog(src, lib_);
  EXPECT_TRUE(nl.find_instance("u1$x").valid());
}

}  // namespace
}  // namespace secflow
