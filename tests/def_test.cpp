#include "pnr/def.h"

#include <gtest/gtest.h>

#include "base/error.h"
#include "liberty/builtin_lib.h"

namespace secflow {
namespace {

DefDesign sample() {
  DefDesign d;
  d.name = "s";
  d.die = {{0, 0}, {20000, 10000}};
  d.row_height_dbu = 5040;
  d.track_pitch_dbu = 560;
  d.components.push_back(DefComponent{"u1", "INV", {560, 0}});
  d.components.push_back(DefComponent{"u2", "NAND2", {5600, 5040}});
  DefNet a{"a",
           {Segment{{0, 0}, {2000, 0}, 0, 280},
            Segment{{2000, 0}, {2000, 3000}, 1, 280}},
           {DefVia{{2000, 0}, 0, 1}}};
  DefNet b{"b", {Segment{{0, 560}, {1000, 560}, 2, 280}}, {}};
  d.nets = {a, b};
  return d;
}

TEST(DefDesign, Lookups) {
  const DefDesign d = sample();
  ASSERT_NE(d.find_component("u1"), nullptr);
  EXPECT_EQ(d.find_component("u1")->macro, "INV");
  EXPECT_EQ(d.find_component("nope"), nullptr);
  ASSERT_NE(d.find_net("a"), nullptr);
  EXPECT_EQ(d.find_net("zz"), nullptr);
}

TEST(DefDesign, Totals) {
  const DefDesign d = sample();
  EXPECT_EQ(d.nets[0].total_wirelength(), 5000);
  EXPECT_EQ(d.total_wirelength(), 6000);
  EXPECT_EQ(d.total_vias(), 1);
  EXPECT_DOUBLE_EQ(d.die_area_um2(), 20.0 * 10.0);
}

TEST(DefDesign, PinPosition) {
  const DefDesign d = sample();
  const auto cells = builtin_stdcell018();
  const LefLibrary lef = generate_lef(*cells, {});
  const Point a = d.pin_position(lef, "u1", "A");
  const Point expected =
      Point{560, 0} + lef.macro("INV").find_pin("A")->offset;
  EXPECT_EQ(a, expected);
  EXPECT_THROW(d.pin_position(lef, "ghost", "A"), Error);
  EXPECT_THROW(d.pin_position(lef, "u1", "GHOST"), Error);
}

TEST(DefDesign, MutableNetLookup) {
  DefDesign d = sample();
  DefNet* n = d.find_net("b");
  ASSERT_NE(n, nullptr);
  n->wires.push_back(Segment{{0, 0}, {100, 0}, 0, 280});
  EXPECT_EQ(d.find_net("b")->wires.size(), 2u);
}

TEST(DefDesign, EmptyDesignSerializes) {
  DefDesign d;
  d.name = "empty";
  const DefDesign back = parse_def(write_def(d));
  EXPECT_EQ(back.name, "empty");
  EXPECT_TRUE(back.components.empty());
  EXPECT_TRUE(back.nets.empty());
}

}  // namespace
}  // namespace secflow
