#include "wddl/qm.h"

#include "wddl/wddl_library.h"

#include <gtest/gtest.h>

namespace secflow {
namespace {

TEST(Qm, Constants) {
  EXPECT_TRUE(minimize_sop(LogicFn::constant(false)).empty());
  const auto one = minimize_sop(LogicFn::constant(true));
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].mask, 0u);
}

TEST(Qm, SingleLiteral) {
  const auto sop = minimize_sop(LogicFn::identity());
  ASSERT_EQ(sop.size(), 1u);
  EXPECT_EQ(sop[0].n_literals(), 1);
  EXPECT_TRUE(sop[0].covers(1));
  EXPECT_FALSE(sop[0].covers(0));

  const auto inv = minimize_sop(LogicFn::inverter());
  ASSERT_EQ(inv.size(), 1u);
  EXPECT_TRUE(inv[0].covers(0));
  EXPECT_FALSE(inv[0].covers(1));
}

TEST(Qm, NandIsTwoNegativeLiterals) {
  // !(ab) = !a + !b: two cubes of one literal each.
  const auto sop = minimize_sop(LogicFn::nand_n(2));
  EXPECT_EQ(sop.size(), 2u);
  EXPECT_EQ(sop_literals(sop), 2);
}

TEST(Qm, AndIsOneCube) {
  const auto sop = minimize_sop(LogicFn::and_n(3));
  ASSERT_EQ(sop.size(), 1u);
  EXPECT_EQ(sop[0].n_literals(), 3);
}

TEST(Qm, XorNeedsTwoCubes) {
  const auto sop = minimize_sop(LogicFn::xor_n(2));
  EXPECT_EQ(sop.size(), 2u);
  EXPECT_EQ(sop_literals(sop), 4);
}

TEST(Qm, Aoi32Complement) {
  // !AOI32 = A0 A1 A2 + B0 B1: exactly the AND-OR structure of Fig 2.
  const std::vector<std::string> in = {"A0", "A1", "A2", "B0", "B1"};
  LogicFn aoi(5, 0);
  {
    std::uint64_t t = 0;
    for (unsigned i = 0; i < 32; ++i) {
      const bool a = (i & 1) && (i & 2) && (i & 4);
      const bool b = (i & 8) && (i & 16);
      if (!(a || b)) t |= std::uint64_t{1} << i;
    }
    aoi = LogicFn(5, t);
  }
  const auto on = minimize_sop(aoi.complemented());
  ASSERT_EQ(on.size(), 2u);
  EXPECT_EQ(sop_literals(on), 5);
}

// Property: for every 3- and 4-input table, the minimized SOP equals the
// function and never exceeds the canonical minterm expansion in size.
class QmSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(QmSweepTest, CoverIsExactAndNoWorseThanMinterms) {
  const int n = GetParam();
  const unsigned rows = 1u << n;
  // Deterministic pseudo-random subset of tables plus structured ones.
  std::vector<std::uint64_t> tables = {0x1, 0x80, 0x96, 0xE8, 0x7F, 0xFE};
  std::uint64_t x = 0x12345678;
  for (int i = 0; i < 40; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    tables.push_back(x & ((rows >= 64) ? ~0ull : ((1ull << rows) - 1)));
  }
  for (std::uint64_t t : tables) {
    const LogicFn f(n, t);
    const auto sop = minimize_sop(f);
    int minterms = 0;
    for (unsigned r = 0; r < rows; ++r) {
      EXPECT_EQ(eval_sop(sop, r), f.eval(r)) << "table " << t << " row " << r;
      if (f.eval(r)) ++minterms;
    }
    EXPECT_LE(static_cast<int>(sop.size()), std::max(minterms, 1));
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, QmSweepTest, ::testing::Values(2, 3, 4, 5));

TEST(Qm, ReductionTreePlan) {
  EXPECT_TRUE(plan_reduction_tree(0).empty());
  EXPECT_TRUE(plan_reduction_tree(1).empty());
  EXPECT_EQ(plan_reduction_tree(2), (std::vector<int>{2}));
  EXPECT_EQ(plan_reduction_tree(3), (std::vector<int>{3}));
  EXPECT_EQ(plan_reduction_tree(4), (std::vector<int>{2, 3}));
  // Every plan reduces n operands to exactly one.
  for (int n = 2; n <= 12; ++n) {
    int count = n;
    for (int arity : plan_reduction_tree(n)) count += 1 - arity;
    EXPECT_EQ(count, 1) << n;
  }
}

}  // namespace
}  // namespace secflow
