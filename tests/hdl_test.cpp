#include "synth/hdl.h"

#include <gtest/gtest.h>

#include "base/error.h"

namespace secflow {
namespace {

/// Evaluate a combinational AigCircuit output for given input bit values
/// keyed by scalar bit name.
bool eval_output(const AigCircuit& c, const std::string& out_name,
                 const std::vector<std::pair<std::string, bool>>& ins) {
  std::vector<bool> vals(c.aig.n_nodes(), false);
  for (const auto& [name, v] : ins) {
    bool found = false;
    for (const CircuitBit& b : c.inputs) {
      if (b.name == name) {
        vals[aig_node(b.lit)] = v;
        found = true;
      }
    }
    EXPECT_TRUE(found) << "no input " << name;
  }
  for (const CircuitBit& b : c.outputs) {
    if (b.name == out_name) return c.aig.eval(b.lit, vals);
  }
  ADD_FAILURE() << "no output " << out_name;
  return false;
}

TEST(Hdl, CombinationalExpressions) {
  const AigCircuit c = parse_hdl(R"(
    module m (input a, input b, input s, output y, output z);
      wire t;
      assign t = a ^ b;
      assign y = s ? t : ~a;
      assign z = (a | b) & ~s;
    endmodule
  )");
  EXPECT_EQ(c.name, "m");
  EXPECT_TRUE(c.regs.empty());
  for (unsigned i = 0; i < 8; ++i) {
    const bool a = i & 1, b = i & 2, s = i & 4;
    EXPECT_EQ(eval_output(c, "y", {{"a", a}, {"b", b}, {"s", s}}),
              s ? (a != b) : !a)
        << i;
    EXPECT_EQ(eval_output(c, "z", {{"a", a}, {"b", b}, {"s", s}}),
              (a || b) && !s)
        << i;
  }
}

TEST(Hdl, VectorOperationsAndLiterals) {
  const AigCircuit c = parse_hdl(R"(
    module m (input [3:0] a, output [3:0] y);
      assign y = a ^ 4'b0110;
    endmodule
  )");
  ASSERT_EQ(c.inputs.size(), 4u);
  ASSERT_EQ(c.outputs.size(), 4u);
  for (unsigned v = 0; v < 16; ++v) {
    for (int bit = 0; bit < 4; ++bit) {
      const bool expect = ((v ^ 0b0110u) >> bit) & 1;
      EXPECT_EQ(eval_output(c, "y_" + std::to_string(bit),
                            {{"a_0", (v >> 0) & 1},
                             {"a_1", (v >> 1) & 1},
                             {"a_2", (v >> 2) & 1},
                             {"a_3", (v >> 3) & 1}}),
                expect)
          << v << " bit " << bit;
    }
  }
}

TEST(Hdl, DecimalAndHexLiterals) {
  const AigCircuit c = parse_hdl(R"(
    module m (input [5:0] a, output [5:0] y, output [5:0] z);
      assign y = a ^ 6'd46;
      assign z = a & 6'h2E;
    endmodule
  )");
  // 46 = 0b101110 = 0x2E.
  for (int bit = 0; bit < 6; ++bit) {
    const bool kbit = (46 >> bit) & 1;
    std::vector<std::pair<std::string, bool>> ins;
    for (int i = 0; i < 6; ++i) ins.emplace_back("a_" + std::to_string(i), true);
    EXPECT_EQ(eval_output(c, "y_" + std::to_string(bit), ins), !kbit);
    EXPECT_EQ(eval_output(c, "z_" + std::to_string(bit), ins), kbit);
  }
}

TEST(Hdl, BitSelectAndBitAssign) {
  const AigCircuit c = parse_hdl(R"(
    module m (input [1:0] a, output [1:0] y);
      assign y[0] = a[1];
      assign y[1] = ~a[0];
    endmodule
  )");
  EXPECT_EQ(eval_output(c, "y_0", {{"a_0", false}, {"a_1", true}}), true);
  EXPECT_EQ(eval_output(c, "y_1", {{"a_0", false}, {"a_1", true}}), true);
  EXPECT_EQ(eval_output(c, "y_1", {{"a_0", true}, {"a_1", false}}), false);
}

TEST(Hdl, RegistersElaborate) {
  const AigCircuit c = parse_hdl(R"(
    module m (input clk, input [1:0] d, output [1:0] q);
      reg [1:0] r;
      always @(posedge clk) begin
        r <= d ^ r;
      end
      assign q = r;
    endmodule
  )");
  EXPECT_EQ(c.clock, "clk");
  ASSERT_EQ(c.regs.size(), 2u);
  EXPECT_EQ(c.regs[0].name, "r_0");
  EXPECT_NE(c.regs[0].next, 0u);
  // Clock is not a data input.
  for (const CircuitBit& b : c.inputs) EXPECT_NE(b.name, "clk");
}

TEST(Hdl, WiresResolveOutOfOrder) {
  const AigCircuit c = parse_hdl(R"(
    module m (input a, output y);
      wire w2, w1;
      assign y = w2;
      assign w2 = ~w1;
      assign w1 = ~a;
    endmodule
  )");
  EXPECT_EQ(eval_output(c, "y", {{"a", true}}), true);
  EXPECT_EQ(eval_output(c, "y", {{"a", false}}), false);
}

TEST(Hdl, ErrorUndefinedSignal) {
  EXPECT_THROW(parse_hdl(R"(
    module m (input a, output y);
      assign y = ghost;
    endmodule)"),
               ParseError);
}

TEST(Hdl, ErrorWidthMismatch) {
  EXPECT_THROW(parse_hdl(R"(
    module m (input [3:0] a, input [1:0] b, output [3:0] y);
      assign y = a & b;
    endmodule)"),
               ParseError);
}

TEST(Hdl, ErrorCombinationalLoop) {
  EXPECT_THROW(parse_hdl(R"(
    module m (input a, output y);
      wire w;
      assign w = ~w;
      assign y = w;
    endmodule)"),
               ParseError);
}

TEST(Hdl, ErrorMultipleDrivers) {
  EXPECT_THROW(parse_hdl(R"(
    module m (input a, output y);
      assign y = a;
      assign y = ~a;
    endmodule)"),
               ParseError);
}

TEST(Hdl, ErrorMultipleClocks) {
  EXPECT_THROW(parse_hdl(R"(
    module m (input c1, input c2, input d, output q);
      reg r1, r2;
      always @(posedge c1) r1 <= d;
      always @(posedge c2) r2 <= d;
      assign q = r1 & r2;
    endmodule)"),
               ParseError);
}

TEST(Hdl, ErrorAssignToInput) {
  EXPECT_THROW(parse_hdl(R"(
    module m (input a, output y);
      assign a = y;
    endmodule)"),
               ParseError);
}

TEST(Hdl, ErrorRegContinuousAssign) {
  EXPECT_THROW(parse_hdl(R"(
    module m (input clk, input a, output y);
      reg r;
      assign r = a;
      always @(posedge clk) r <= a;
      assign y = r;
    endmodule)"),
               ParseError);
}

TEST(Hdl, ErrorNeverAssigned) {
  EXPECT_THROW(parse_hdl(R"(
    module m (input a, output y);
      wire w;
      assign y = w;
    endmodule)"),
               ParseError);
}

TEST(Hdl, ErrorClockInExpression) {
  EXPECT_THROW(parse_hdl(R"(
    module m (input clk, input a, output y);
      reg r;
      always @(posedge clk) r <= a;
      assign y = r & clk;
    endmodule)"),
               ParseError);
}

TEST(Hdl, ErrorBitOutOfRange) {
  EXPECT_THROW(parse_hdl(R"(
    module m (input [1:0] a, output y);
      assign y = a[5];
    endmodule)"),
               ParseError);
}

}  // namespace
}  // namespace secflow
