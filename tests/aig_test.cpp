#include "synth/aig.h"

#include <gtest/gtest.h>

#include "base/error.h"
#include "synth/circuit.h"

namespace secflow {
namespace {

TEST(Aig, LiteralEncoding) {
  EXPECT_EQ(aig_not(kAigFalse), kAigTrue);
  EXPECT_EQ(aig_node(aig_lit(5, true)), 5u);
  EXPECT_TRUE(aig_complemented(aig_lit(5, true)));
  EXPECT_FALSE(aig_complemented(aig_lit(5, false)));
}

TEST(Aig, ConstantFolding) {
  Aig g;
  const AigLit a = g.new_input("a");
  EXPECT_EQ(g.land(a, kAigFalse), kAigFalse);
  EXPECT_EQ(g.land(kAigFalse, a), kAigFalse);
  EXPECT_EQ(g.land(a, kAigTrue), a);
  EXPECT_EQ(g.land(a, a), a);
  EXPECT_EQ(g.land(a, aig_not(a)), kAigFalse);
  EXPECT_EQ(g.n_ands(), 0u);
}

TEST(Aig, StructuralHashing) {
  Aig g;
  const AigLit a = g.new_input("a");
  const AigLit b = g.new_input("b");
  const AigLit x = g.land(a, b);
  const AigLit y = g.land(b, a);  // commuted: same node
  EXPECT_EQ(x, y);
  EXPECT_EQ(g.n_ands(), 1u);
  const AigLit z = g.land(aig_not(a), b);  // different
  EXPECT_NE(x, z);
  EXPECT_EQ(g.n_ands(), 2u);
}

TEST(Aig, EvalBasicGates) {
  Aig g;
  const AigLit a = g.new_input("a");
  const AigLit b = g.new_input("b");
  const AigLit and_ab = g.land(a, b);
  const AigLit or_ab = g.lor(a, b);
  const AigLit xor_ab = g.lxor(a, b);
  std::vector<bool> vals(g.n_nodes(), false);
  for (int av = 0; av < 2; ++av) {
    for (int bv = 0; bv < 2; ++bv) {
      vals[aig_node(a)] = av;
      vals[aig_node(b)] = bv;
      EXPECT_EQ(g.eval(and_ab, vals), av && bv);
      EXPECT_EQ(g.eval(or_ab, vals), av || bv);
      EXPECT_EQ(g.eval(xor_ab, vals), av != bv);
      EXPECT_EQ(g.eval(aig_not(and_ab), vals), !(av && bv));
    }
  }
}

TEST(Aig, Mux) {
  Aig g;
  const AigLit s = g.new_input("s");
  const AigLit t = g.new_input("t");
  const AigLit f = g.new_input("f");
  const AigLit m = g.lmux(s, t, f);
  std::vector<bool> vals(g.n_nodes(), false);
  for (unsigned i = 0; i < 8; ++i) {
    vals[aig_node(s)] = i & 1;
    vals[aig_node(t)] = i & 2;
    vals[aig_node(f)] = i & 4;
    EXPECT_EQ(g.eval(m, vals), (i & 1) ? ((i & 2) != 0) : ((i & 4) != 0));
  }
}

TEST(Aig, ManyInputReductions) {
  Aig g;
  std::vector<AigLit> lits;
  for (int i = 0; i < 5; ++i) lits.push_back(g.new_input());
  const AigLit all = g.land_many(lits);
  const AigLit any = g.lor_many(lits);
  std::vector<bool> vals(g.n_nodes() + 16, false);
  for (unsigned m = 0; m < 32; ++m) {
    for (int i = 0; i < 5; ++i) vals[aig_node(lits[i])] = (m >> i) & 1;
    EXPECT_EQ(g.eval(all, vals), m == 31);
    EXPECT_EQ(g.eval(any, vals), m != 0);
  }
  EXPECT_EQ(g.land_many({}), kAigTrue);
  EXPECT_EQ(g.lor_many({}), kAigFalse);
}

TEST(Aig, NodeIntrospection) {
  Aig g;
  const AigLit a = g.new_input("alpha");
  const AigLit b = g.new_input("beta");
  const AigLit x = g.land(a, aig_not(b));
  EXPECT_TRUE(g.is_input(aig_node(a)));
  EXPECT_FALSE(g.is_and(aig_node(a)));
  EXPECT_TRUE(g.is_and(aig_node(x)));
  EXPECT_EQ(g.input_name(aig_node(a)), "alpha");
  EXPECT_EQ(g.input_nodes().size(), 2u);
  EXPECT_EQ(g.and_nodes().size(), 1u);
  // Fanins of the AND node (canonically ordered).
  const AigLit f0 = g.fanin0(aig_node(x));
  const AigLit f1 = g.fanin1(aig_node(x));
  EXPECT_TRUE((f0 == a && f1 == aig_not(b)) || (f0 == aig_not(b) && f1 == a));
  EXPECT_THROW(g.fanin0(aig_node(a)), Error);
}

TEST(CircuitBuilder, BuildsNamedCircuit) {
  CircuitBuilder cb("tiny");
  const auto a = cb.input("a", 2);
  const auto r = cb.reg("r", 2);
  std::vector<AigLit> next = {cb.aig().lxor(a[0], r[0]),
                              cb.aig().land(a[1], r[1])};
  cb.set_next("r", next);
  cb.output("y", r);
  const AigCircuit c = cb.take();
  EXPECT_EQ(c.name, "tiny");
  ASSERT_EQ(c.inputs.size(), 2u);
  EXPECT_EQ(c.inputs[0].name, "a_0");
  EXPECT_EQ(c.inputs[1].name, "a_1");
  ASSERT_EQ(c.regs.size(), 2u);
  EXPECT_EQ(c.regs[0].name, "r_0");
  EXPECT_EQ(c.regs[0].next, next[0]);
  ASSERT_EQ(c.outputs.size(), 2u);
  EXPECT_EQ(c.outputs[0].name, "y_0");
}

TEST(CircuitBuilder, ScalarNamesHaveNoSuffix) {
  CircuitBuilder cb("s");
  const auto a = cb.input("a");
  cb.output("y", a);
  const AigCircuit c = cb.take();
  EXPECT_EQ(c.inputs[0].name, "a");
  EXPECT_EQ(c.outputs[0].name, "y");
}

TEST(CircuitBuilder, MissingNextStateThrows) {
  CircuitBuilder cb("bad");
  cb.reg("r", 1);
  EXPECT_THROW(cb.take(), Error);
}

TEST(CircuitBuilder, SetNextUnknownRegThrows) {
  CircuitBuilder cb("bad");
  cb.reg("r", 2);
  EXPECT_THROW(cb.set_next("nope", {kAigFalse}), Error);
  EXPECT_THROW(cb.set_next("r", {kAigFalse}), Error);  // width mismatch
}

}  // namespace
}  // namespace secflow
