// Cross-module property tests: randomized designs swept through the
// physical pipeline and the WDDL transform, checking the invariants of
// DESIGN.md section 5 on every instance.
#include <gtest/gtest.h>

#include "base/rng.h"
#include "lec/lec.h"
#include "liberty/builtin_lib.h"
#include "netlist/netlist_ops.h"
#include "netlist/verilog_parser.h"
#include "netlist/verilog_writer.h"
#include "pnr/check.h"
#include "pnr/decompose.h"
#include "pnr/place.h"
#include "pnr/route.h"
#include "synth/techmap.h"
#include "wddl/cell_substitution.h"
#include "wddl/wddl_library.h"

namespace secflow {
namespace {

/// Deterministic random combinational circuit over n inputs.
AigCircuit random_circuit(std::uint64_t seed, int n_inputs, int n_ops,
                          int n_outputs) {
  CircuitBuilder cb("rnd" + std::to_string(seed));
  Rng rng(seed);
  std::vector<AigLit> pool = cb.input("x", n_inputs);
  for (int i = 0; i < n_ops; ++i) {
    const AigLit a = pool[rng.next_below(pool.size())];
    const AigLit b = pool[rng.next_below(pool.size())];
    AigLit r;
    switch (rng.next_below(4)) {
      case 0: r = cb.aig().land(a, b); break;
      case 1: r = cb.aig().lor(a, b); break;
      case 2: r = cb.aig().lxor(a, b); break;
      default: r = aig_not(cb.aig().lor(a, aig_not(b))); break;
    }
    pool.push_back(r);
  }
  std::vector<AigLit> outs;
  for (int i = 0; i < n_outputs; ++i) {
    outs.push_back(pool[pool.size() - 1 - static_cast<std::size_t>(i)]);
  }
  cb.output("y", outs);
  return cb.take();
}

class PipelineSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineSweep, RegularPnrStaysClean) {
  const auto lib = builtin_stdcell018();
  const AigCircuit c = random_circuit(GetParam(), 5, 18, 3);
  const Netlist rtl = technology_map(c, lib);
  const LefLibrary lef = generate_lef(*lib, {});
  DefDesign def = place_design(rtl, lef);
  route_design(rtl, lef, def);
  EXPECT_TRUE(check_shorts(def, def.track_pitch_dbu).ok);
  EXPECT_TRUE(check_connectivity(rtl, lef, def, 4 * def.track_pitch_dbu).ok);
}

TEST_P(PipelineSweep, SecureTransformPreservesLogicAndPrecharge) {
  const auto lib = builtin_stdcell018();
  const AigCircuit c = random_circuit(GetParam() ^ 0xABCD, 5, 18, 3);
  const Netlist rtl =
      technology_map(c, lib, SynthConstraints{{"NAND2", "NOR2", "AND2", "OR2",
                                               "XOR2", "AOI21", "OAI21"}});
  WddlLibrary wlib(lib);
  const SubstitutionResult sub = substitute_cells(rtl, wlib);
  // LEC: fat == rtl.
  EXPECT_TRUE(check_equivalence(rtl, sub.fat).equivalent);

  const Netlist diff = expand_differential(sub.fat, wlib);
  diff.validate();
  FunctionalSim sim(diff);
  // Precharge: all-zero inputs zero every net.
  for (const CircuitBit& in : c.inputs) {
    sim.set_input(in.name + "_t", false);
    sim.set_input(in.name + "_f", false);
  }
  sim.propagate();
  for (NetId id : diff.net_ids()) {
    EXPECT_FALSE(sim.net_value(id)) << diff.net(id).name;
  }
  // Random evaluations: rails complementary, value correct.
  FunctionalSim ref(rtl);
  Rng rng(GetParam());
  for (int trial = 0; trial < 8; ++trial) {
    for (const CircuitBit& in : c.inputs) {
      const bool v = rng.next_bool();
      sim.set_input(in.name + "_t", v);
      sim.set_input(in.name + "_f", !v);
      ref.set_input(in.name, v);
    }
    sim.propagate();
    ref.propagate();
    for (const CircuitBit& out : c.outputs) {
      EXPECT_EQ(sim.output(out.name + "_t"), ref.output(out.name));
      EXPECT_NE(sim.output(out.name + "_t"), sim.output(out.name + "_f"));
    }
  }
}

TEST_P(PipelineSweep, DecompositionInvariants) {
  const auto lib = builtin_stdcell018();
  const AigCircuit c = random_circuit(GetParam() ^ 0x1357, 4, 12, 2);
  const Netlist rtl = technology_map(c, lib);
  WddlLibrary wlib(lib);
  const SubstitutionResult sub = substitute_cells(rtl, wlib);
  LefGenOptions fat_gen;
  fat_gen.wire_scale = 2.0;
  const LefLibrary fat_lef = generate_lef(*wlib.fat_library(), fat_gen);
  DefDesign fat_def = place_design(sub.fat, fat_lef);
  route_design(sub.fat, fat_lef, fat_def);
  const Process018 pr;
  const DefDesign diff = decompose_interconnect(
      fat_def, um_to_dbu(pr.wire_pitch_um), um_to_dbu(pr.wire_width_um));
  const CheckResult sym =
      check_differential_symmetry(diff, um_to_dbu(pr.wire_pitch_um));
  EXPECT_TRUE(sym.ok) << (sym.issues.empty() ? "" : sym.issues[0].net);
  // Width reduction really happened.
  for (const DefNet& net : diff.nets) {
    for (const Segment& s : net.wires) {
      EXPECT_EQ(s.width, um_to_dbu(pr.wire_width_um));
    }
  }
}

TEST_P(PipelineSweep, VerilogRoundTripIsStable) {
  const auto lib = builtin_stdcell018();
  const AigCircuit c = random_circuit(GetParam() ^ 0x9999, 4, 14, 2);
  const Netlist rtl = technology_map(c, lib);
  const std::string once = write_verilog(rtl);
  const std::string twice = write_verilog(parse_verilog(once, lib));
  EXPECT_EQ(once, twice);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace secflow
