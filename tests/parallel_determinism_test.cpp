// End-to-end determinism of the parallel execution layer: trace
// synthesis and the DPA campaign must be bit-identical for any thread
// count (1 == serial, 2, 8 — more threads than this box has cores).
// This is the contract that makes SECFLOW_THREADS a pure performance
// knob: no experiment result may depend on it.
//
// Also the target of the TSan certification build:
//   cmake -B build-tsan -DSECFLOW_SANITIZE=thread && ctest -R Parallel
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "base/rng.h"
#include "crypto/des.h"
#include "liberty/builtin_lib.h"
#include "sca/dpa_experiment.h"
#include "sim/trace_sim.h"
#include "synth/techmap.h"

namespace secflow {
namespace {

class ParallelDeterminism : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    lib_ = builtin_stdcell018();
    rtl_ = new Netlist(technology_map(make_des_dpa_circuit(), lib_));
  }
  static void TearDownTestSuite() {
    delete rtl_;
    rtl_ = nullptr;
    lib_.reset();
  }

  static std::shared_ptr<const CellLibrary> lib_;
  static Netlist* rtl_;
};

std::shared_ptr<const CellLibrary> ParallelDeterminism::lib_;
Netlist* ParallelDeterminism::rtl_ = nullptr;

/// Simulate n random encryptions of the reduced-DES module with the given
/// thread count; every stochastic choice comes from the per-trace stream.
std::vector<SimTrace> encrypt_traces(const Netlist& nl, int n, int threads) {
  const TraceTask task = [](PowerSimulator& sim, Rng& rng, int) {
    auto drive = [&sim](const std::string& base, int width, std::uint32_t v) {
      for (int i = 0; i < width; ++i) {
        sim.set_input(base + "_" + std::to_string(i), (v >> i) & 1);
      }
    };
    drive("k", 6, 46);
    drive("pl", 4, static_cast<std::uint32_t>(rng.next_below(16)));
    drive("pr", 6, static_cast<std::uint32_t>(rng.next_below(64)));
    sim.settle();
    sim.run_cycle();
    drive("pl", 4, static_cast<std::uint32_t>(rng.next_below(16)));
    drive("pr", 6, static_cast<std::uint32_t>(rng.next_below(64)));
    sim.run_cycle();
    SimTrace out;
    out.cycle = sim.run_cycle();
    sim.run_cycle();
    for (int i = 0; i < 4; ++i) {
      if (sim.output("cl_" + std::to_string(i))) out.observable |= 1u << i;
    }
    return out;
  };
  Parallelism par;
  par.n_threads = threads;
  return simulate_traces(nl, {}, PowerSimOptions{}, n, 77, task, par);
}

TEST_F(ParallelDeterminism, SimulateTracesBitIdenticalAcrossThreadCounts) {
  const std::vector<SimTrace> serial = encrypt_traces(*rtl_, 24, 1);
  ASSERT_EQ(serial.size(), 24u);
  for (int threads : {2, 8}) {
    const std::vector<SimTrace> par = encrypt_traces(*rtl_, 24, threads);
    ASSERT_EQ(par.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(par[i].observable, serial[i].observable) << "trace " << i;
      EXPECT_EQ(par[i].cycle.energy_pj, serial[i].cycle.energy_pj);
      ASSERT_EQ(par[i].cycle.current_ma, serial[i].cycle.current_ma)
          << "trace " << i << " @ " << threads << " threads";
    }
  }
}

TEST_F(ParallelDeterminism, DpaCampaignBitIdenticalAcrossThreadCounts) {
  DesDpaSetup setup;
  setup.n_measurements = 30;
  setup.noise_ma = 0.05;  // exercises the per-trace noise stream too
  auto campaign = [&](int threads) {
    DesDpaSetup s = setup;
    s.parallelism.n_threads = threads;
    return run_des_dpa_campaign(*rtl_, {}, s, /*differential=*/false);
  };
  const DesDpaCampaign serial = campaign(1);
  const DpaResult serial_r = serial.dpa.analyze(setup.key);
  for (int threads : {2, 8}) {
    const DesDpaCampaign par = campaign(threads);
    ASSERT_EQ(par.cycle_energies_pj, serial.cycle_energies_pj)
        << "@ " << threads << " threads";
    const DpaResult r = par.dpa.analyze(setup.key);
    EXPECT_EQ(r.best_guess, serial_r.best_guess);
    EXPECT_EQ(r.disclosed, serial_r.disclosed);
    ASSERT_EQ(r.peak_to_peak, serial_r.peak_to_peak)
        << "@ " << threads << " threads";
  }
}

TEST_F(ParallelDeterminism, GuessSweepBitIdenticalAcrossThreadCounts) {
  // Synthetic traces; only DpaAnalysis::analyze's guess sweep is parallel.
  auto analysis = [](int threads) {
    DpaOptions opts;
    opts.parallelism.n_threads = threads;
    DpaAnalysis dpa(des_selection(2), opts);
    Rng rng(11);
    for (int i = 0; i < 200; ++i) {
      DpaMeasurement m;
      m.ciphertext = static_cast<std::uint32_t>(rng.next_below(1024));
      m.samples.assign(16, 0.0);
      for (double& s : m.samples) s = rng.next_gaussian();
      dpa.add_measurement(std::move(m));
    }
    return dpa;
  };
  const DpaResult serial = analysis(1).analyze(46);
  for (int threads : {2, 8}) {
    const DpaResult par = analysis(threads).analyze(46);
    EXPECT_EQ(par.best_guess, serial.best_guess);
    ASSERT_EQ(par.peak_to_peak, serial.peak_to_peak);
  }
}

}  // namespace
}  // namespace secflow
