// Campaign engine tests: spec parsing (strict, aggregated violations),
// DAG-scheduled batch execution with checkpoint sharing, bit-equality of
// campaign jobs and standalone flows, per-job failure isolation, report
// schema round-trips, and warm-rerun speedup.
#include "campaign/campaign.h"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "base/error.h"
#include "campaign/report.h"
#include "campaign/spec.h"
#include "liberty/builtin_lib.h"
#include "obs/json.h"
#include "synth/hdl.h"

namespace secflow {
namespace {

namespace fs = std::filesystem;

/// Same mid-size registered design flow_ckpt_test uses: big enough that
/// a cold secure flow spends real time routing (warm-speedup margin),
/// small enough to keep the suite fast.
constexpr const char* kMidDesign = R"(
  module mid (input clk, input [7:0] a, input [7:0] b, output [7:0] y);
    reg [7:0] r1;
    reg [7:0] r2;
    wire [7:0] m;
    wire [7:0] s;
    assign m = (a & r2) ^ (b | r1);
    assign s = r1[0] ? (m ^ b) : (m & a);
    always @(posedge clk) begin
      r1 <= m ^ a;
      r2 <= s | b;
    end
    assign y = r2 ^ r1;
  endmodule)";

constexpr const char* kTinyDesign = R"(
  module tiny (input a, input b, input c, output x);
    assign x = (a & b) | c;
  endmodule)";

std::string error_message(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const Error& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected an Error";
  return "";
}

// ---------------------------------------------------------------------------
// Spec parsing.

TEST(CampaignSpec, ParsesFullDocument) {
  const CampaignSpec spec = parse_campaign_spec(R"({
    "schema": "secflow.campaign/1",
    "name": "sweep",
    "cache_dir": "ckpt",
    "threads": 3,
    "jobs": [
      {"name": "a", "circuit": {"builtin": "des-dpa"}, "flow": "secure",
       "seed": 7,
       "dpa": {"n_measurements": 400, "noise_ma": 0.5, "select_bit": 3,
               "sbox": 2, "key": 11},
       "options": {"route_mode": "quick", "shielded_pairs": false,
                   "place": {"seed": 5, "sa_batch": 8},
                   "route": {"via_cost": 4},
                   "extract": {"variation_sigma": 0.01}}},
      {"circuit": {"hdl": "module m(input a, output y); assign y = a; endmodule"},
       "flow": "regular",
       "options": {"stop_after": "placement"}}
    ]
  })");
  EXPECT_EQ(spec.name, "sweep");
  EXPECT_EQ(spec.cache_dir, "ckpt");
  EXPECT_EQ(spec.threads, 3);
  ASSERT_EQ(spec.jobs.size(), 2u);

  const CampaignJob& a = spec.jobs[0];
  EXPECT_EQ(a.name, "a");
  EXPECT_EQ(a.circuit.kind, CircuitSourceKind::kBuiltinDesDpa);
  EXPECT_EQ(a.flow, FlowKind::kSecure);
  EXPECT_EQ(a.seed, 7u);
  ASSERT_TRUE(a.has_dpa);
  EXPECT_EQ(a.dpa.n_measurements, 400);
  EXPECT_DOUBLE_EQ(a.dpa.noise_ma, 0.5);
  EXPECT_EQ(a.dpa.select_bit, 3);
  EXPECT_EQ(a.dpa.sbox, 2);
  EXPECT_EQ(a.dpa.key, 11u);
  EXPECT_EQ(a.options.route_mode, RouteMode::kQuickLShaped);
  EXPECT_FALSE(a.options.shielded_pairs);
  EXPECT_EQ(a.options.place.seed, 5u);
  EXPECT_EQ(a.options.place.sa_batch, 8);
  EXPECT_EQ(a.options.route.via_cost, 4);
  EXPECT_DOUBLE_EQ(a.options.extract.variation_sigma, 0.01);

  const CampaignJob& b = spec.jobs[1];
  EXPECT_EQ(b.name, "job1");  // default name
  EXPECT_EQ(b.circuit.kind, CircuitSourceKind::kHdlText);
  EXPECT_EQ(b.flow, FlowKind::kRegular);
  EXPECT_FALSE(b.has_dpa);
  ASSERT_TRUE(b.options.stop_after.has_value());
  EXPECT_EQ(*b.options.stop_after, FlowStage::kPlacement);
}

TEST(CampaignSpec, MalformedJsonIsParseError) {
  EXPECT_THROW(parse_campaign_spec("{\"schema\": "), ParseError);
  EXPECT_THROW(parse_campaign_spec("not json at all"), ParseError);
  EXPECT_THROW(parse_campaign_spec(""), ParseError);
}

TEST(CampaignSpec, AggregatesAllViolationsIntoOneError) {
  // Five independent problems; the error must name every one of them.
  const std::string msg = error_message([] {
    parse_campaign_spec(R"({
      "schema": "secflow.campaign/2",
      "name": "bad",
      "threads": -2,
      "jobs": [
        {"name": "x", "flow": "sideways"},
        {"name": "x", "circuit": {"builtin": "des-dpa"}, "flow": "secure",
         "optionz": {}}
      ]
    })");
  });
  EXPECT_NE(msg.find("violations"), std::string::npos) << msg;
  EXPECT_NE(msg.find("unknown schema"), std::string::npos) << msg;
  EXPECT_NE(msg.find("threads must be >= 0"), std::string::npos) << msg;
  EXPECT_NE(msg.find("missing required member 'circuit'"), std::string::npos)
      << msg;
  EXPECT_NE(msg.find("flow must be \"regular\" or \"secure\""),
            std::string::npos)
      << msg;
  EXPECT_NE(msg.find("duplicate job name"), std::string::npos) << msg;
  EXPECT_NE(msg.find("unknown member 'optionz'"), std::string::npos) << msg;
}

TEST(CampaignSpec, RejectsUnknownAndConflictingMembers) {
  // Unknown top-level member.
  EXPECT_NE(error_message([] {
              parse_campaign_spec(R"({
                "schema": "secflow.campaign/1", "name": "x", "jobz": []
              })");
            }).find("unknown member 'jobz'"),
            std::string::npos);
  // Circuit with two sources.
  EXPECT_NE(error_message([] {
              parse_campaign_spec(R"({
                "schema": "secflow.campaign/1", "name": "x",
                "jobs": [{"circuit": {"builtin": "des-dpa", "file": "a.v"},
                          "flow": "secure"}]
              })");
            }).find("exactly one of builtin/hdl/file"),
            std::string::npos);
  // DPA without extraction.
  EXPECT_NE(error_message([] {
              parse_campaign_spec(R"({
                "schema": "secflow.campaign/1", "name": "x",
                "jobs": [{"circuit": {"builtin": "des-dpa"}, "flow": "secure",
                          "dpa": {"n_measurements": 10},
                          "options": {"stop_after": "routing"}}]
              })");
            }).find("dpa needs the extracted capacitance table"),
            std::string::npos);
  // Secure-only stage on a regular flow.
  EXPECT_NE(error_message([] {
              parse_campaign_spec(R"({
                "schema": "secflow.campaign/1", "name": "x",
                "jobs": [{"circuit": {"builtin": "des-dpa"}, "flow": "regular",
                          "options": {"stop_after": "substitution"}}]
              })");
            }).find("secure-only stage"),
            std::string::npos);
  // Invalid FlowOptions value surfaces with the job's name.
  EXPECT_NE(error_message([] {
              parse_campaign_spec(R"({
                "schema": "secflow.campaign/1", "name": "x",
                "jobs": [{"name": "badfill",
                          "circuit": {"builtin": "des-dpa"}, "flow": "secure",
                          "options": {"place": {"fill_factor": 2.0}}}]
              })");
            }).find("job 'badfill'"),
            std::string::npos);
  // Empty campaign.
  EXPECT_NE(error_message([] {
              parse_campaign_spec(R"({
                "schema": "secflow.campaign/1", "name": "x", "jobs": []
              })");
            }).find("no jobs"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Failure isolation (cheap: tiny design, no cache).

TEST(CampaignRun, PoisonedJobFailsWithoutAbortingSiblings) {
  CampaignSpec spec;
  spec.name = "poison";
  spec.threads = 2;

  CampaignJob good;
  good.name = "good";
  good.circuit = {CircuitSourceKind::kHdlText, kTinyDesign};
  good.flow = FlowKind::kRegular;
  good.options.stop_after = FlowStage::kPlacement;

  CampaignJob bad = good;
  bad.name = "bad";
  bad.circuit = {CircuitSourceKind::kHdlText, "module broken("};

  CampaignJob missing = good;
  missing.name = "missing";
  missing.circuit = {CircuitSourceKind::kHdlFile, "/nonexistent/x.v"};

  spec.jobs = {good, bad, missing};
  const CampaignResult r = run_campaign(spec);
  ASSERT_EQ(r.jobs.size(), 3u);
  EXPECT_EQ(r.n_ok, 1);
  EXPECT_EQ(r.n_failed, 2);

  EXPECT_TRUE(r.jobs[0].ok);
  EXPECT_FALSE(r.jobs[0].artifacts.empty());
  EXPECT_FALSE(r.jobs[1].ok);
  EXPECT_FALSE(r.jobs[1].error.empty());
  EXPECT_TRUE(r.jobs[1].artifacts.empty());
  EXPECT_FALSE(r.jobs[2].ok);
  EXPECT_FALSE(r.jobs[2].error.empty());

  // A failed-campaign report still validates and round-trips.
  const std::string json = campaign_report_json(r);
  validate_campaign_report(json_parse(json));
  EXPECT_EQ(parse_campaign_report(json), r);
}

TEST(CampaignRun, RejectsInvalidSpec) {
  CampaignSpec spec;
  spec.name = "empty";
  EXPECT_THROW(run_campaign(spec), Error);
}

// ---------------------------------------------------------------------------
// End-to-end batch execution on the mid design.  One cold campaign per
// test binary; the individual tests inspect its outcome and run the warm
// rerun / standalone comparisons against it.

class CampaignE2E : public ::testing::Test {
 protected:
  static CampaignSpec make_spec() {
    CampaignSpec spec;
    spec.name = "mid-sweep";
    spec.cache_dir = cache_dir_.string();

    CampaignJob sec;
    sec.name = "sec-base";
    sec.circuit = {CircuitSourceKind::kHdlText, kMidDesign};
    sec.flow = FlowKind::kSecure;

    // Same layout, different extraction -> shares 5 of 6 stage keys.
    CampaignJob sec_var = sec;
    sec_var.name = "sec-var";
    sec_var.options.extract.variation_sigma = 0.02;
    sec_var.options.extract.seed = 11;

    // Different placement seed -> shares only synthesis + substitution.
    CampaignJob sec_seed = sec;
    sec_seed.name = "sec-seed";
    sec_seed.options.place.seed = 2;

    // A pure prefix of sec-base: every stage it runs is shared.
    CampaignJob sec_stop = sec;
    sec_stop.name = "sec-stop";
    sec_stop.options.stop_after = FlowStage::kPlacement;

    CampaignJob reg;
    reg.name = "reg-base";
    reg.circuit = {CircuitSourceKind::kHdlText, kMidDesign};
    reg.flow = FlowKind::kRegular;

    // Same synthesis/placement, different routing.
    CampaignJob reg_quick = reg;
    reg_quick.name = "reg-quick";
    reg_quick.options.route_mode = RouteMode::kQuickLShaped;

    spec.jobs = {sec, sec_var, sec_seed, sec_stop, reg, reg_quick};
    return spec;
  }

  static void SetUpTestSuite() {
    cache_dir_ = fs::path(::testing::TempDir()) / "campaign_cache";
    fs::remove_all(cache_dir_);
    const auto t0 = std::chrono::steady_clock::now();
    cold_ = new CampaignResult(run_campaign(make_spec()));
    cold_ms_ = std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
  }

  static void TearDownTestSuite() {
    delete cold_;
    cold_ = nullptr;
    fs::remove_all(cache_dir_);
  }

  static const JobOutcome& job(const CampaignResult& r,
                               const std::string& name) {
    for (const JobOutcome& j : r.jobs) {
      if (j.name == name) return j;
    }
    throw Error("no job named " + name);
  }

  static std::vector<std::string> cache_row(const JobOutcome& j) {
    std::vector<std::string> row;
    for (const StageEntry& s : j.report.stages) row.push_back(s.cache);
    return row;
  }

  static fs::path cache_dir_;
  static CampaignResult* cold_;
  static double cold_ms_;
};

fs::path CampaignE2E::cache_dir_;
CampaignResult* CampaignE2E::cold_ = nullptr;
double CampaignE2E::cold_ms_ = 0.0;

using Row = std::vector<std::string>;

TEST_F(CampaignE2E, AllJobsSucceed) {
  EXPECT_EQ(cold_->campaign, "mid-sweep");
  EXPECT_EQ(cold_->n_ok, 6);
  EXPECT_EQ(cold_->n_failed, 0);
  for (const JobOutcome& j : cold_->jobs) {
    EXPECT_TRUE(j.ok) << j.name << ": " << j.error;
    EXPECT_FALSE(j.artifacts.empty()) << j.name;
  }
}

TEST_F(CampaignE2E, SharedPrefixJobsHitTheCache) {
  // Producers compute, dependents reuse: the scheduler ran sec-base
  // first, so every stage another job shares with it is a hit.
  EXPECT_EQ(cache_row(job(*cold_, "sec-base")),
            Row({"miss", "miss", "miss", "miss", "miss", "miss"}));
  EXPECT_EQ(cache_row(job(*cold_, "sec-var")),
            Row({"hit", "hit", "hit", "hit", "hit", "miss"}));
  EXPECT_EQ(cache_row(job(*cold_, "sec-seed")),
            Row({"hit", "hit", "miss", "miss", "miss", "miss"}));
  EXPECT_EQ(cache_row(job(*cold_, "sec-stop")),
            Row({"hit", "hit", "hit", "not-run", "not-run", "not-run"}));
  EXPECT_EQ(cache_row(job(*cold_, "reg-base")),
            Row({"miss", "not-run", "miss", "miss", "not-run", "miss"}));
  EXPECT_EQ(cache_row(job(*cold_, "reg-quick")),
            Row({"hit", "not-run", "hit", "miss", "not-run", "miss"}));
}

TEST_F(CampaignE2E, DependentsRecordTheirProducers) {
  EXPECT_TRUE(job(*cold_, "sec-base").waited_on.empty());
  EXPECT_EQ(job(*cold_, "sec-var").waited_on,
            std::vector<std::string>{"sec-base"});
  EXPECT_EQ(job(*cold_, "sec-seed").waited_on,
            std::vector<std::string>{"sec-base"});
  EXPECT_EQ(job(*cold_, "sec-stop").waited_on,
            std::vector<std::string>{"sec-base"});
  EXPECT_TRUE(job(*cold_, "reg-base").waited_on.empty());
  EXPECT_EQ(job(*cold_, "reg-quick").waited_on,
            std::vector<std::string>{"reg-base"});
}

TEST_F(CampaignE2E, JobsAreBitIdenticalToStandaloneFlows) {
  // Every campaign job must produce exactly the artifacts a standalone
  // run_*_flow call produces with the same options — spec order, one
  // shared cache, no scheduler and no concurrency involved.  This pins
  // down that the DAG scheduler and the thread pool add nothing: a
  // campaign is observationally a sequence of plain flow calls.
  const fs::path dir = fs::path(::testing::TempDir()) / "campaign_standalone";
  fs::remove_all(dir);
  const CampaignSpec spec = make_spec();
  const AigCircuit circuit = parse_hdl(kMidDesign);
  const auto lib = builtin_stdcell018();
  for (const CampaignJob& j : spec.jobs) {
    FlowOptions standalone = j.options;
    standalone.cache_dir = dir.string();
    std::vector<std::pair<std::string, std::string>> expected;
    if (j.flow == FlowKind::kRegular) {
      expected = artifact_digests(run_regular_flow(circuit, lib, standalone));
    } else {
      expected = artifact_digests(run_secure_flow(circuit, lib, standalone));
    }
    EXPECT_EQ(job(*cold_, j.name).artifacts, expected) << j.name;
  }
  fs::remove_all(dir);
}

TEST_F(CampaignE2E, ProducerJobsMatchCachelessStandaloneFlows) {
  // Jobs that computed every stage themselves (no cache hits) must be
  // byte-identical to a flow run with caching disabled entirely.  (Jobs
  // downstream of a cache hit legitimately differ in enumeration-order
  // cosmetics — a netlist reparsed from the store may number nets
  // differently than one built in memory; see flow_ckpt_test.)
  const CampaignSpec spec = make_spec();
  const AigCircuit circuit = parse_hdl(kMidDesign);
  const auto lib = builtin_stdcell018();
  FlowOptions no_cache;
  EXPECT_EQ(job(*cold_, "sec-base").artifacts,
            artifact_digests(run_secure_flow(circuit, lib, no_cache)));
  EXPECT_EQ(job(*cold_, "reg-base").artifacts,
            artifact_digests(run_regular_flow(circuit, lib, no_cache)));
}

TEST_F(CampaignE2E, WarmRerunHitsEverything) {
  const CampaignResult warm = run_campaign(make_spec());
  EXPECT_EQ(warm.n_ok, 6);
  for (const JobOutcome& j : warm.jobs) {
    for (const StageEntry& s : j.report.stages) {
      EXPECT_NE(s.cache, "miss") << j.name << " stage " << s.name;
    }
    // Same artifacts as the cold campaign, fetched instead of computed.
    EXPECT_EQ(j.artifacts, job(*cold_, j.name).artifacts) << j.name;
  }
  // No wall-clock bar: the windowed incremental router finishes these
  // small flows in milliseconds, so fetching artifacts from the store is
  // not reliably 5x faster than recomputing them.  The cache contract is
  // the no-miss stages and identical artifact digests asserted above.
}

TEST_F(CampaignE2E, SingleThreadedRerunMatches) {
  // Concurrency must not leak into results: a threads=1 rerun (warm,
  // same cache) reproduces every artifact digest.
  CampaignSpec spec = make_spec();
  spec.threads = 1;
  const CampaignResult serial = run_campaign(spec);
  ASSERT_EQ(serial.jobs.size(), cold_->jobs.size());
  for (std::size_t i = 0; i < serial.jobs.size(); ++i) {
    EXPECT_EQ(serial.jobs[i].artifacts, cold_->jobs[i].artifacts)
        << serial.jobs[i].name;
    EXPECT_EQ(serial.jobs[i].report.cells, cold_->jobs[i].report.cells);
  }
}

TEST_F(CampaignE2E, ReportRoundTripsThroughSchemaValidator) {
  const std::string json = campaign_report_json(*cold_);
  const JsonValue doc = json_parse(json);
  validate_campaign_report(doc);

  // Totals in the document match the result.
  EXPECT_EQ(doc.find("n_ok")->as_number(), 6.0);
  EXPECT_EQ(doc.find("n_failed")->as_number(), 0.0);
  const JsonValue& cache = *doc.find("cache");
  // miss count: 6 (sec-base) + 1 + 4 + 0 + 4 (reg-base) + 2 = 17;
  // hit count:  0            + 5 + 2 + 3 + 0            + 2 = 12.
  EXPECT_EQ(cache.find("misses")->as_number(), 17.0);
  EXPECT_EQ(cache.find("hits")->as_number(), 12.0);

  // Full structural round-trip.
  EXPECT_EQ(parse_campaign_report(json), *cold_);

  // Tampered documents are rejected.
  JsonValue bad = json_parse(json);
  bad.set("schema", "secflow.campaign-report/9");
  EXPECT_THROW(validate_campaign_report(bad), Error);
}

// ---------------------------------------------------------------------------
// DPA integration: a campaign job with a "dpa" section runs the attack
// on its extracted netlist and folds the verdict into the flow report.

TEST(CampaignDpa, RegularFlowJobCarriesDpaVerdict) {
  CampaignSpec spec;
  spec.name = "dpa";
  CampaignJob j;
  j.name = "des-reg";
  j.circuit = {CircuitSourceKind::kBuiltinDesDpa, ""};
  j.flow = FlowKind::kRegular;
  j.seed = 99;
  j.has_dpa = true;
  j.dpa.n_measurements = 120;
  j.options.route_mode = RouteMode::kQuickLShaped;
  spec.jobs = {j};

  const CampaignResult r = run_campaign(spec);
  ASSERT_EQ(r.n_ok, 1);
  const DpaSection& dpa = r.jobs[0].report.dpa;
  ASSERT_TRUE(dpa.present);
  EXPECT_EQ(dpa.n_measurements, 120);
  EXPECT_GE(dpa.best_guess, 0);
  EXPECT_GT(dpa.best_peak, 0.0);
  EXPECT_GT(dpa.mean_cycle_energy_pj, 0.0);

  const std::string json = campaign_report_json(r);
  validate_campaign_report(json_parse(json));
  const CampaignResult parsed = parse_campaign_report(json);
  EXPECT_TRUE(parsed.jobs[0].report.dpa.present);
  EXPECT_EQ(parsed, r);
}

}  // namespace
}  // namespace secflow
