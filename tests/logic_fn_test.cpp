#include "netlist/logic_fn.h"

#include <gtest/gtest.h>

#include "base/error.h"

namespace secflow {
namespace {

TEST(LogicFn, Constants) {
  EXPECT_FALSE(LogicFn::constant(false).eval(0));
  EXPECT_TRUE(LogicFn::constant(true).eval(0));
  EXPECT_EQ(LogicFn::constant(true).n_inputs(), 0);
}

TEST(LogicFn, BufferAndInverter) {
  const LogicFn buf = LogicFn::identity();
  const LogicFn inv = LogicFn::inverter();
  EXPECT_FALSE(buf.eval(0));
  EXPECT_TRUE(buf.eval(1));
  EXPECT_TRUE(inv.eval(0));
  EXPECT_FALSE(inv.eval(1));
}

TEST(LogicFn, AndOrFamilies) {
  for (int n = 1; n <= 6; ++n) {
    const LogicFn a = LogicFn::and_n(n);
    const LogicFn o = LogicFn::or_n(n);
    const unsigned rows = 1u << n;
    for (unsigned i = 0; i < rows; ++i) {
      EXPECT_EQ(a.eval(i), i == rows - 1) << "AND" << n << " row " << i;
      EXPECT_EQ(o.eval(i), i != 0) << "OR" << n << " row " << i;
      EXPECT_EQ(LogicFn::nand_n(n).eval(i), !(i == rows - 1));
      EXPECT_EQ(LogicFn::nor_n(n).eval(i), !(i != 0));
    }
  }
}

TEST(LogicFn, XorParity) {
  for (int n = 1; n <= 4; ++n) {
    const LogicFn x = LogicFn::xor_n(n);
    for (unsigned i = 0; i < (1u << n); ++i) {
      EXPECT_EQ(x.eval(i), (__builtin_popcount(i) & 1) != 0);
      EXPECT_EQ(LogicFn::xnor_n(n).eval(i), (__builtin_popcount(i) & 1) == 0);
    }
  }
}

TEST(LogicFn, Mux2) {
  const LogicFn m = LogicFn::mux2();
  // inputs: bit0=d0, bit1=d1, bit2=sel
  EXPECT_FALSE(m.eval(0b000));
  EXPECT_TRUE(m.eval(0b001));   // sel=0 -> d0=1
  EXPECT_FALSE(m.eval(0b010));  // sel=0, d1=1 ignored
  EXPECT_TRUE(m.eval(0b110));   // sel=1 -> d1=1
  EXPECT_FALSE(m.eval(0b101));  // sel=1, d1=0
}

TEST(LogicFn, Complemented) {
  const LogicFn f = LogicFn::and_n(2);
  const LogicFn g = f.complemented();
  for (unsigned i = 0; i < 4; ++i) EXPECT_EQ(g.eval(i), !f.eval(i));
  EXPECT_EQ(g.complemented(), f);
}

TEST(LogicFn, DualOfAndIsOr) {
  EXPECT_EQ(LogicFn::and_n(2).dual(), LogicFn::or_n(2));
  EXPECT_EQ(LogicFn::or_n(3).dual(), LogicFn::and_n(3));
  // Even-arity XOR duals to XNOR; odd-arity XOR is self-dual.
  EXPECT_EQ(LogicFn::xor_n(2).dual(), LogicFn::xnor_n(2));
  EXPECT_EQ(LogicFn::xor_n(3).dual(), LogicFn::xor_n(3));
}

TEST(LogicFn, DualIsInvolution) {
  // Property: dual(dual(f)) == f for arbitrary tables.
  for (std::uint64_t t = 0; t < 256; ++t) {
    const LogicFn f(3, t);
    EXPECT_EQ(f.dual().dual(), f) << "table " << t;
  }
}

TEST(LogicFn, DualDefinition) {
  // Property: f_dual(x) == !f(!x) pointwise.
  for (std::uint64_t t = 0; t < 256; t += 7) {
    const LogicFn f(3, t);
    const LogicFn d = f.dual();
    for (unsigned x = 0; x < 8; ++x) {
      EXPECT_EQ(d.eval(x), !f.eval(~x & 7)) << "t=" << t << " x=" << x;
    }
  }
}

TEST(LogicFn, WithInputInverted) {
  const LogicFn f = LogicFn::and_n(2);
  const LogicFn g = f.with_input_inverted(0);  // g(a,b) = !a & b
  EXPECT_FALSE(g.eval(0b11));
  EXPECT_TRUE(g.eval(0b10));
  EXPECT_FALSE(g.eval(0b00));
  // Double inversion restores.
  EXPECT_EQ(g.with_input_inverted(0), f);
}

TEST(LogicFn, PositiveUnate) {
  EXPECT_TRUE(LogicFn::and_n(3).is_positive_unate());
  EXPECT_TRUE(LogicFn::or_n(2).is_positive_unate());
  EXPECT_TRUE(LogicFn::identity().is_positive_unate());
  EXPECT_TRUE(LogicFn::constant(true).is_positive_unate());
  EXPECT_FALSE(LogicFn::inverter().is_positive_unate());
  EXPECT_FALSE(LogicFn::nand_n(2).is_positive_unate());
  EXPECT_FALSE(LogicFn::xor_n(2).is_positive_unate());
}

TEST(LogicFn, DependsOn) {
  const LogicFn f = LogicFn::and_n(2);
  EXPECT_TRUE(f.depends_on(0));
  EXPECT_TRUE(f.depends_on(1));
  // f(a,b) = a: does not depend on b.
  const LogicFn g(2, 0b1010);
  EXPECT_TRUE(g.depends_on(0));
  EXPECT_FALSE(g.depends_on(1));
}

TEST(LogicFn, OnsetSize) {
  EXPECT_EQ(LogicFn::and_n(2).onset_size(), 1);
  EXPECT_EQ(LogicFn::or_n(2).onset_size(), 3);
  EXPECT_EQ(LogicFn::xor_n(3).onset_size(), 4);
  EXPECT_EQ(LogicFn::constant(false).onset_size(), 0);
}

TEST(LogicFn, SopString) {
  EXPECT_EQ(LogicFn::constant(false).to_sop_string({}), "0");
  EXPECT_EQ(LogicFn::constant(true).to_sop_string({}), "1");
  EXPECT_EQ(LogicFn::and_n(2).to_sop_string({"A", "B"}), "A&B");
}

TEST(LogicFn, RejectsTooManyInputs) {
  EXPECT_THROW(LogicFn(7, 0), Error);
  EXPECT_THROW(LogicFn(-1, 0), Error);
}

TEST(LogicFn, TableMasked) {
  // Bits above 2^n must be ignored.
  const LogicFn f(1, 0xFF);
  EXPECT_EQ(f.table(), 0b11u);
}

// Property sweep: dual() and complemented() commute; both are involutions.
class LogicFnPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LogicFnPropertyTest, DualComplementCommute) {
  const LogicFn f(4, GetParam());
  EXPECT_EQ(f.dual().complemented(), f.complemented().dual());
}

TEST_P(LogicFnPropertyTest, DualViaComplementAllInputs) {
  LogicFn g = LogicFn(4, GetParam()).complemented();
  for (int i = 0; i < 4; ++i) g = g.with_input_inverted(i);
  EXPECT_EQ(g, LogicFn(4, GetParam()).dual());
}

INSTANTIATE_TEST_SUITE_P(Tables, LogicFnPropertyTest,
                         ::testing::Values(0x0000u, 0xFFFFu, 0x8000u, 0x8888u,
                                           0x6996u, 0xFEE8u, 0x0001u, 0x7FFFu,
                                           0x5555u, 0x3C3Cu, 0x1248u, 0x9D2Bu));

}  // namespace
}  // namespace secflow
